// The event-driven federation runtime beyond the paper's setting: 32
// clients on a two-tier heterogeneous network (a quarter on 1 Gbps
// datacenter links, the rest on a 10 Mbps edge tier) with heterogeneous
// device speeds, run under all three participation policies:
//
//   sync            full barrier — every round waits for the slowest link
//   sampled_sync    a quarter of the fleet per round
//   buffered_async  FedBuff-style: aggregate every 8 arrivals,
//                   staleness-weighted
//
// All runs use FedSZ compression; the interesting column is *virtual* time:
// how long the simulated federation takes to reach the same number of
// aggregations when stragglers exist.
//
//   ./build/heterogeneous_async [rounds] [clients] [codec-spec]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/codec_spec.hpp"
#include "core/fl/coordinator.hpp"
#include "core/fl/scheduler.hpp"
#include "data/synthetic.hpp"

int main(int argc, char** argv) {
  using namespace fedsz;
  const int rounds = argc > 1 ? std::atoi(argv[1]) : 4;
  const std::size_t clients =
      argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 32;
  const std::string spec = argc > 3 ? argv[3] : "fedsz";

  nn::ModelConfig model;
  model.arch = "mobilenet_v2";
  model.scale = nn::ModelScale::kTiny;
  auto [train, test] = data::make_dataset("cifar10");

  auto run_with = [&](core::SchedulerPtr scheduler) {
    core::FlRunConfig config;
    config.clients = clients;
    config.rounds = rounds;
    config.eval_limit = 128;
    config.threads = 8;
    config.client.batch_size = 8;
    config.evaluate_every_round = false;
    config.compute_jitter = 0.4;  // devices are not all the same speed
    net::HeterogeneousNetworkConfig links;
    links.distribution = net::LinkDistribution::kTwoTier;
    links.two_tier_fast_fraction = 0.25;
    links.two_tier_fast_mbps = 1000.0;
    links.two_tier_slow_mbps = 10.0;
    config.heterogeneous = links;
    // Comm-level spec keys (downlink=/downmode=/ef=) configure the run.
    const core::CodecSpec parsed = core::parse_codec_spec(spec);
    config.apply_comm_spec(parsed);
    core::FlCoordinator coordinator(model, data::take(train, clients * 16),
                                    data::take(test, 128), config,
                                    core::make_codec(parsed),
                                    std::move(scheduler));
    return coordinator.run();
  };

  std::printf(
      "Two-tier federation: %zu clients (25%% @ 1 Gbps, 75%% @ 10 Mbps),\n"
      "%d aggregations, FedSZ-compressed updates\n\n",
      clients, rounds);
  std::printf("%-20s %14s %12s %14s %10s\n", "scheduler", "virtual time",
              "bytes", "participants", "accuracy");
  struct Policy {
    const char* label;
    core::SchedulerPtr scheduler;
  };
  const Policy policies[] = {
      {"sync", core::make_sync_scheduler()},
      {"sampled_sync(0.25)", core::make_sampled_sync_scheduler(0.25)},
      {"buffered_async(8)", core::make_buffered_async_scheduler({8, 0.5})},
  };
  for (const Policy& policy : policies) {
    const core::FlRunResult result = run_with(policy.scheduler);
    std::size_t bytes = 0, participants = 0, stale = 0;
    for (const core::RoundRecord& record : result.rounds) {
      bytes += record.bytes_sent;
      participants += record.participants;
      for (const core::ClientTraceEntry& entry : record.clients)
        if (entry.dispatch_round < record.round) ++stale;
    }
    std::printf("%-20s %13.1fs %12zu %14zu %9.1f%%\n", policy.label,
                result.total_virtual_seconds, bytes, participants,
                result.final_accuracy * 100.0);
    if (stale > 0)
      std::printf("%-20s   (%zu stale updates folded, "
                  "staleness-weighted)\n",
                  "", stale);
  }
  std::printf(
      "\nThe full barrier pays the slow tier's transfer every round;\n"
      "sampling cuts participants per round, and buffered async keeps\n"
      "aggregating while stragglers are still uploading.\n");
  return 0;
}

// Bidirectional federation: the global-model broadcast is no longer free.
// Eight clients on a constrained edge fleet run FedAvg where BOTH legs of
// every round ride the virtual clock — the broadcast is FedSZ-compressed
// (delta mode: each client receives only the change against the model it
// last acknowledged) and the uplink runs at an aggressive bound with
// per-client error feedback soaking up the quantization error.
//
//   ./build/bidirectional_comms [rounds] [clients] [comm-spec]
//
// comm-spec is a full codec spec whose comm keys configure the run, e.g.
//   "fedsz:eb=rel:1e-1,downlink=fedsz:eb=rel:1e-3,downmode=delta,ef=on"
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/codec_spec.hpp"
#include "core/fl/coordinator.hpp"
#include "data/synthetic.hpp"

int main(int argc, char** argv) {
  using namespace fedsz;
  const int rounds = argc > 1 ? std::atoi(argv[1]) : 4;
  const std::size_t clients =
      argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 8;
  const std::string spec =
      argc > 3 ? argv[3]
               : "fedsz:eb=rel:1e-1,downlink=fedsz:eb=rel:1e-3,"
                 "downmode=delta,ef=on";

  nn::ModelConfig model;
  model.arch = "mobilenet_v2";
  model.scale = nn::ModelScale::kTiny;
  auto [train, test] = data::make_dataset("cifar10");

  const core::CodecSpec parsed = core::parse_codec_spec(spec);
  core::FlRunConfig config;
  config.clients = clients;
  config.rounds = rounds;
  config.eval_limit = 128;
  config.threads = 4;
  config.client.batch_size = 8;
  config.apply_comm_spec(parsed);  // downlink= / downmode= / ef=
  net::HeterogeneousNetworkConfig links;
  links.distribution = net::LinkDistribution::kUniformEdge;
  links.edge_min_mbps = 4.0;
  links.edge_max_mbps = 20.0;
  config.heterogeneous = links;

  core::FlCoordinator coordinator(model, data::take(train, clients * 24),
                                  data::take(test, 128), config,
                                  core::make_codec(parsed));
  const core::FlRunResult result = coordinator.run();

  std::printf(
      "Bidirectional FedAvg: %zu clients, comm spec\n  %s\n"
      "(downlink %s, mode %s, error feedback %s)\n\n",
      clients, core::format_codec_spec(parsed).c_str(),
      config.downlink_spec.empty() ? "free" : config.downlink_spec.c_str(),
      core::downlink_mode_name(config.downlink_mode).c_str(),
      config.error_feedback ? "on" : "off");
  std::printf("%-6s %10s %12s %12s %14s %12s\n", "round", "accuracy",
              "up bytes", "down bytes", "virtual time", "EF residual");
  for (const core::RoundRecord& record : result.rounds)
    std::printf("%-6d %9.1f%% %12s %12s %13.1fs %12.3f\n", record.round,
                record.accuracy * 100.0,
                std::to_string(record.bytes_sent).c_str(),
                std::to_string(record.downlink_bytes).c_str(),
                record.virtual_seconds, record.mean_ef_residual_norm);
  std::printf(
      "\nfinal accuracy %.1f%% after %.1f virtual seconds; downlink ratio "
      "%.2fx in the last round\n",
      result.final_accuracy * 100.0, result.total_virtual_seconds,
      result.rounds.back().downlink_compression_ratio());
  return 0;
}

// Quickstart: compress and decompress a model update with FedSZ.
//
// Builds a small ResNet analogue, takes its state dict (the object a
// federated client would ship to the server), runs it through the FedSZ
// pipeline (Algorithm 1 partitioning + SZ2 lossy + blosc-lz lossless), and
// verifies the reconstruction: lossless entries bit-exact, lossy entries
// within the relative error bound.
//
//   ./build/examples/quickstart
#include <cstdio>

#include "core/fedsz.hpp"
#include "nn/models.hpp"
#include "util/stats.hpp"

int main() {
  using namespace fedsz;

  // 1. A model update. Any StateDict works — this one comes from the model
  //    zoo, but you can populate your own with StateDict::set().
  nn::ModelConfig model_config;
  model_config.arch = "resnet";
  model_config.scale = nn::ModelScale::kBench;
  nn::BuiltModel built = nn::build_model(model_config);
  StateDict update = built.model.state_dict();
  std::printf("model update: %zu tensors, %zu bytes\n", update.size(),
              update.total_bytes());

  // 2. Configure FedSZ. Defaults follow the paper's recommendation:
  //    SZ2 at relative bound 1e-2, blosc-lz for the metadata partition,
  //    lossy threshold of 1000 elements. `parallelism = 0` fans the chunked
  //    compression pipeline out over every hardware thread — the bitstream
  //    is byte-identical to the serial setting, only wall-clock changes.
  core::FedSzConfig config;
  config.bound = lossy::ErrorBound::relative(1e-2);
  config.parallelism = 0;
  core::FedSz fedsz(config);

  // Inspect what Algorithm 1 will do before compressing.
  const core::Partition partition = core::partition_state_dict(update, 1000);
  std::printf("partition: %zu lossy tensors (%.2f%% of bytes), %zu lossless\n",
              partition.lossy_names.size(),
              partition.lossy_fraction() * 100.0,
              partition.lossless_names.size());

  // 3. Compress.
  core::CompressionStats stats;
  const Bytes bitstream = fedsz.compress(update, &stats);
  std::printf("compressed: %zu -> %zu bytes (%.2fx) in %.3fs\n",
              stats.original_bytes, stats.compressed_bytes, stats.ratio(),
              stats.compress_seconds);

  // 4. Decompress (server side) and verify. The same CompressionStats type
  //    reports the decode pass (decompress_seconds, per-path tensor counts).
  core::CompressionStats decode_stats;
  const StateDict restored =
      fedsz.decompress({bitstream.data(), bitstream.size()}, &decode_stats);
  std::printf("decompressed in %.3fs (%zu lossy / %zu lossless tensors)\n",
              decode_stats.decompress_seconds, decode_stats.lossy_tensors,
              decode_stats.lossless_tensors);

  double worst_relative_error = 0.0;
  std::size_t exact = 0;
  for (const auto& [name, tensor] : update) {
    const Tensor& back = restored.get(name);
    if (tensor.equals(back)) {
      ++exact;
      continue;
    }
    const double range = stats::summarize(tensor.span()).range();
    const double err = stats::max_abs_error(tensor.span(), back.span());
    if (range > 0.0)
      worst_relative_error = std::max(worst_relative_error, err / range);
  }
  std::printf(
      "verification: %zu/%zu tensors bit-exact; worst lossy error %.2e of\n"
      "value range (bound: 1.00e-02)\n",
      exact, update.size(), worst_relative_error);
  return worst_relative_error <= 1e-2 * (1 + 1e-6) ? 0 : 1;
}

// Privacy noise exploration (Section VII-D): is the error a lossy
// compressor injects into a model update shaped like differential-privacy
// noise?
//
// Compresses a trained update at several large relative bounds, collects the
// per-parameter reconstruction error, fits Laplace and Normal distributions
// by maximum likelihood, compares Kolmogorov-Smirnov distances, and — as a
// DP-flavored illustration — reports the epsilon a genuine Laplace mechanism
// with the fitted scale would correspond to for a unit-sensitivity query.
//
//   ./build/examples/privacy_noise
#include <cstdio>

#include "core/dp_analysis.hpp"
#include "core/fedsz.hpp"
#include "data/dataloader.hpp"
#include "data/synthetic.hpp"
#include "nn/loss.hpp"
#include "nn/models.hpp"
#include "nn/optimizer.hpp"

namespace {

// Briefly train so weights have the spiky trained distribution the paper
// analyzes (initialization alone is uniform and less representative).
fedsz::StateDict trained_update() {
  using namespace fedsz;
  nn::ModelConfig config;
  config.arch = "alexnet";
  config.scale = nn::ModelScale::kTiny;
  nn::BuiltModel built = nn::build_model(config);
  auto [train, test] = data::make_dataset("cifar10");
  data::DataLoader loader(data::take(train, 256), 32, true, 5);
  nn::Sgd optimizer(built.model.parameters(), {0.03f, 0.9f, 0.0f});
  for (int epoch = 0; epoch < 2; ++epoch) {
    loader.reset();
    data::Batch batch;
    while (loader.next(batch)) {
      built.model.zero_grad();
      const Tensor logits = built.model.forward(batch.images, true);
      const nn::LossResult loss = nn::softmax_cross_entropy(
          logits, {batch.labels.data(), batch.labels.size()});
      built.model.backward(loss.grad_logits);
      optimizer.step();
    }
  }
  return built.model.state_dict();
}

}  // namespace

int main() {
  using namespace fedsz;
  const StateDict update = trained_update();
  std::printf(
      "FedSZ decompression error as a differential-privacy noise source\n"
      "(trained AlexNet analogue, %zu parameters)\n\n",
      update.total_parameters());

  std::printf("%-10s %-12s %-12s %-12s %-12s %-10s\n", "REL bound",
              "Laplace b", "KS(Laplace)", "KS(Normal)", "better fit",
              "eps (sens=1)");
  for (const double rel : {0.5, 0.1, 0.05, 0.01}) {
    core::FedSzConfig config;
    config.bound = lossy::ErrorBound::relative(rel);
    core::FedSz fedsz(config);
    const Bytes blob = fedsz.compress(update);
    const StateDict restored = fedsz.decompress({blob.data(), blob.size()});
    const core::ErrorDistribution dist =
        core::analyze_state_dict_errors(update, restored);
    // A Laplace mechanism adding Lap(b) noise to a sensitivity-1 query is
    // (1/b)-differentially private; purely illustrative here, since the
    // compressor's noise is bounded and data-dependent (the paper makes the
    // same caveat).
    const double eps_dp = dist.laplace.b > 0.0 ? 1.0 / dist.laplace.b : 0.0;
    std::printf("%-10.2f %-12.5f %-12.4f %-12.4f %-12s %-10.1f\n", rel,
                dist.laplace.b, dist.ks_laplace, dist.ks_normal,
                dist.laplace_fits_better() ? "Laplace" : "Normal", eps_dp);
  }
  std::printf(
      "\nReading: at large bounds most weights quantize to the central bin,\n"
      "so the injected error inherits the weights' Laplacian shape — the\n"
      "paper's observation that lossy compression resembles a Laplace\n"
      "mechanism. The resemblance is NOT a DP guarantee (error is bounded\n"
      "and data-dependent); see Section VII-D and EXPERIMENTS.md.\n");
  return 0;
}

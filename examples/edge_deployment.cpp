// Edge deployment decision: should this client compress before uploading?
//
// The paper's Eqn (1) answers per link: compression pays iff
// t_C + t_D + S'/B_N < S/B_N. This example measures FedSZ's actual codec
// times and sizes for a model update on this host, then walks bandwidth
// tiers from a 3G uplink to a datacenter LAN, printing the decision, the
// speedup, and the break-even bandwidth — how an edge device with a known
// uplink would decide at runtime.
//
//   ./build/examples/edge_deployment [arch]
#include <cstdio>
#include <string>

#include "core/fedsz.hpp"
#include "net/bandwidth.hpp"
#include "nn/models.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace fedsz;
  const std::string arch = argc > 1 ? argv[1] : "alexnet";
  nn::ModelConfig model_config;
  model_config.arch = arch;
  model_config.scale = nn::ModelScale::kBench;
  nn::BuiltModel built = nn::build_model(model_config);
  const StateDict update = built.model.state_dict();
  const std::size_t raw_bytes = update.serialize().size();

  core::FedSz fedsz{core::FedSzConfig{}};
  Timer timer;
  const Bytes blob = fedsz.compress(update);
  const double compress_seconds = timer.seconds();
  core::CompressionStats decode_stats;
  fedsz.decompress({blob.data(), blob.size()}, &decode_stats);
  const double decompress_seconds = decode_stats.decompress_seconds;

  std::printf(
      "%s update: %zu bytes raw, %zu compressed (%.2fx)\n"
      "codec cost on this host: compress %.3fs + decompress %.3fs\n\n",
      nn::model_display_name(arch).c_str(), raw_bytes, blob.size(),
      static_cast<double>(raw_bytes) / static_cast<double>(blob.size()),
      compress_seconds, decompress_seconds);

  struct Tier {
    const char* label;
    double mbps;
  };
  const Tier tiers[] = {{"3G uplink", 2.0},       {"LTE uplink", 10.0},
                        {"home broadband", 50.0}, {"fast fiber", 500.0},
                        {"datacenter LAN", 10000.0}};
  std::printf("%-16s %10s %14s %14s %10s\n", "link", "Mbps",
              "compressed(s)", "raw(s)", "decision");
  for (const Tier& tier : tiers) {
    const net::SimulatedNetwork network({tier.mbps, 0.0});
    const net::CompressionDecision decision = net::evaluate_compression(
        raw_bytes, blob.size(), compress_seconds, decompress_seconds,
        network);
    std::printf("%-16s %10.0f %14.3f %14.3f %10s\n", tier.label, tier.mbps,
                decision.compressed_seconds, decision.uncompressed_seconds,
                decision.worthwhile ? "COMPRESS" : "send raw");
  }

  // Break-even bandwidth: where Eqn (1) flips (bisection over the link rate).
  double lo = 0.1, hi = 1e5;
  for (int i = 0; i < 60; ++i) {
    const double mid = 0.5 * (lo + hi);
    const net::SimulatedNetwork network({mid, 0.0});
    if (net::evaluate_compression(raw_bytes, blob.size(), compress_seconds,
                                  decompress_seconds, network)
            .worthwhile)
      lo = mid;
    else
      hi = mid;
  }
  std::printf(
      "\nbreak-even bandwidth: ~%.0f Mbps — below this, FedSZ compression\n"
      "saves wall-clock time on every update (paper: ~500 Mbps).\n",
      lo);
  return 0;
}

// Federated training with compressed communication — the paper's headline
// scenario. Runs FedAvg over four clients on the synthetic CIFAR-10 task
// twice: once uncompressed and once through a codec spec string (default
// "fedsz-parallel": the chunked FedSZ pipeline over every hardware thread
// at REL 1e-2), then compares accuracy trajectories, bytes moved, and
// simulated 10 Mbps transfer time.
//
//   ./build/examples/federated_training [rounds] [clients] [codec-spec]
//                                       [trace.json]
//
// Try a policy-driven codec, e.g.:
//   ./build/federated_training 6 4 "fedsz:policy=schedule:0.5,eb=rel:1e-1"
// A fourth argument writes the compressed run's full per-round trace
// (every client delivery, JSON) to that path.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/codec_spec.hpp"
#include "core/fl/coordinator.hpp"
#include "core/fl/trace.hpp"
#include "data/synthetic.hpp"

namespace {

fedsz::core::FlRunResult run(fedsz::core::UpdateCodecPtr codec, int rounds,
                             std::size_t clients,
                             const fedsz::core::CodecSpec* comm = nullptr) {
  using namespace fedsz;
  nn::ModelConfig model;
  model.arch = "mobilenet_v2";
  model.scale = nn::ModelScale::kTiny;
  auto [train, test] = data::make_dataset("cifar10");
  core::FlRunConfig config;
  config.clients = clients;
  config.rounds = rounds;
  config.eval_limit = 256;
  config.threads = clients;
  config.network.bandwidth_mbps = 10.0;
  config.client.batch_size = 16;
  config.client.sgd.learning_rate = 0.05f;
  // Comm-level spec keys (downlink=/downmode=/ef=) configure the run.
  if (comm) config.apply_comm_spec(*comm);
  core::FlCoordinator coordinator(model,
                                  data::take(train, clients * 128),
                                  data::take(test, 256), config,
                                  std::move(codec));
  return coordinator.run();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fedsz;
  const int rounds = argc > 1 ? std::atoi(argv[1]) : 6;
  const std::size_t clients = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 4;
  // One construction path for every codec: the spec grammar. The default,
  // "fedsz-parallel", fans the chunked pipeline over every hardware thread;
  // its bitstream (and thus every byte/accuracy figure) is identical to the
  // serial "fedsz" — only compression wall-clock changes.
  const std::string spec = argc > 3 ? argv[3] : "fedsz-parallel";
  std::printf(
      "FedAvg on synthetic CIFAR-10: %zu clients, %d rounds, 10 Mbps link,\n"
      "codec spec \"%s\"\n\n",
      clients, rounds, spec.c_str());

  const core::FlRunResult raw = run(core::make_identity_codec(), rounds,
                                    clients);
  const core::CodecSpec parsed = core::parse_codec_spec(spec);
  const core::FlRunResult compressed =
      run(core::make_codec(parsed), rounds, clients, &parsed);

  std::printf("%-8s %-22s %-22s\n", "round", "uncompressed acc / comm",
              "compressed acc / comm");
  double raw_comm = 0.0, fedsz_comm = 0.0;
  std::size_t raw_bytes = 0, fedsz_bytes = 0;
  for (int r = 0; r < rounds; ++r) {
    const auto& a = raw.rounds[static_cast<std::size_t>(r)];
    const auto& b = compressed.rounds[static_cast<std::size_t>(r)];
    std::printf("%-8d %5.1f%% / %6.3fs       %5.1f%% / %6.3fs\n", r,
                a.accuracy * 100.0, a.comm_seconds, b.accuracy * 100.0,
                b.comm_seconds);
    raw_comm += a.comm_seconds;
    fedsz_comm += b.comm_seconds;
    raw_bytes += a.bytes_sent;
    fedsz_bytes += b.bytes_sent;
  }
  std::printf(
      "\ntotals: uncompressed %zu bytes, %.2fs simulated transfer\n"
      "        fedsz        %zu bytes, %.2fs simulated transfer\n"
      "        -> %.2fx fewer bytes, %.2fx less transfer time,\n"
      "           final accuracy %.1f%% vs %.1f%% (uncompressed)\n",
      raw_bytes, raw_comm, fedsz_bytes, fedsz_comm,
      static_cast<double>(raw_bytes) / static_cast<double>(fedsz_bytes),
      raw_comm / fedsz_comm, compressed.final_accuracy * 100.0,
      raw.final_accuracy * 100.0);
  if (argc > 4) {
    core::write_trace(argv[4], compressed);
    std::printf("\nwrote full trace to %s\n", argv[4]);
  }
  return 0;
}

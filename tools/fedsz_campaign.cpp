// Campaign driver: one binary that runs a full federated campaign either
// in-process (FlCoordinator — flat or hierarchical, checkpoint/resume
// supported) or distributed (FederatedRoot + one fedsz_edge_worker process
// per tier-1 edge, selected by a transport=tcp:<port> comm key in the
// codec spec).
//
//   # in-process, checkpointed every round, resumable after a crash:
//   ./build/fedsz_campaign --clients 8 --rounds 6
//       --codec "fedsz:eb=rel:1e-2,topology=hier:2,checkpoint=/tmp/run.ck:1"
//   ./build/fedsz_campaign --clients 8 --rounds 6 --resume --codec "...same..."
//
//   # distributed: root + auto-spawned TCP workers, trace to JSON:
//   ./build/fedsz_campaign --clients 8 --rounds 4 --trace run.json
//       --codec "fedsz:eb=rel:1e-2,topology=hier:2,transport=tcp:0"
//
// Per-round output lines carry ONLY virtual-clock-deterministic fields
// (accuracy, bytes, weights) — two runs of the same config produce
// byte-identical ROUND lines, which is exactly what the multi-process
// equality and kill-and-resume CI checks diff.
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/codec_spec.hpp"
#include "core/fl/coordinator.hpp"
#include "core/fl/federation.hpp"
#include "core/fl/trace.hpp"
#include "data/synthetic.hpp"

namespace {

using namespace fedsz;

struct Options {
  std::string codec = "fedsz:eb=rel:1e-2";
  std::size_t clients = 8;
  int rounds = 4;
  std::uint64_t seed = 42;
  std::size_t take = 0;  // 0 = clients * 64 (a fast default), see below
  std::string arch = "mobilenet_v2";
  std::string trace_path;
  bool resume = false;
  bool spawn_workers = true;
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--codec SPEC] [--clients N] [--rounds N] [--seed S]\n"
      "          [--take N] [--arch NAME] [--trace FILE] [--resume]\n"
      "          [--no-spawn]\n",
      argv0);
  std::exit(2);
}

Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--codec") {
      opt.codec = value();
    } else if (arg == "--clients") {
      opt.clients = std::strtoul(value(), nullptr, 10);
    } else if (arg == "--rounds") {
      opt.rounds = std::atoi(value());
    } else if (arg == "--seed") {
      opt.seed = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--take") {
      opt.take = std::strtoul(value(), nullptr, 10);
    } else if (arg == "--arch") {
      opt.arch = value();
    } else if (arg == "--trace") {
      opt.trace_path = value();
    } else if (arg == "--resume") {
      opt.resume = true;
    } else if (arg == "--no-spawn") {
      opt.spawn_workers = false;
    } else {
      usage(argv[0]);
    }
  }
  if (opt.take == 0) opt.take = opt.clients * 64;
  return opt;
}

/// The fedsz_edge_worker binary next to this one (same build directory).
std::string sibling_worker_path() {
  char buffer[4096];
  const ssize_t got = ::readlink("/proc/self/exe", buffer, sizeof(buffer) - 1);
  if (got <= 0) return "fedsz_edge_worker";
  buffer[got] = '\0';
  std::string path(buffer);
  const std::size_t slash = path.rfind('/');
  if (slash == std::string::npos) return "fedsz_edge_worker";
  return path.substr(0, slash + 1) + "fedsz_edge_worker";
}

pid_t spawn_worker(const std::string& binary, const std::string& endpoint) {
  const pid_t pid = ::fork();
  if (pid < 0) {
    std::perror("fork");
    std::exit(1);
  }
  if (pid == 0) {
    ::execl(binary.c_str(), binary.c_str(), "--connect", endpoint.c_str(),
            static_cast<char*>(nullptr));
    std::fprintf(stderr, "fedsz_campaign: exec %s: %s\n", binary.c_str(),
                 std::strerror(errno));
    ::_exit(127);
  }
  return pid;
}

void print_result(const core::FlRunResult& result) {
  for (const core::RoundRecord& r : result.rounds) {
    std::printf(
        "ROUND %d accuracy=%.9f bytes=%zu raw=%zu backhaul=%zu "
        "backhaul_raw=%zu participants=%zu eligible=%zu weight=%.17g "
        "virtual=%.17g\n",
        r.round, r.accuracy, r.bytes_sent, r.raw_bytes, r.backhaul_bytes,
        r.backhaul_raw_bytes, r.participants, r.eligible_clients,
        r.aggregate_weight, r.virtual_seconds);
  }
  // Campaign-total round count (a resumed run's result carries only the
  // replayed rounds, but its records keep their campaign round indices),
  // so an uninterrupted run and a resume print the same DONE line.
  const std::size_t rounds =
      result.rounds.empty()
          ? 0
          : static_cast<std::size_t>(result.rounds.back().round) + 1;
  std::printf("DONE rounds=%zu final_accuracy=%.9f virtual=%.17g\n", rounds,
              result.final_accuracy, result.total_virtual_seconds);
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_args(argc, argv);
  try {
    const core::CodecSpec spec = core::parse_codec_spec(opt.codec);
    nn::ModelConfig model;
    model.arch = opt.arch;
    model.scale = nn::ModelScale::kTiny;
    core::FlRunConfig config;
    config.apply_comm_spec(spec);
    config.clients = opt.clients;
    config.rounds = opt.rounds;
    config.seed = opt.seed;
    config.eval_limit = 256;
    config.threads = std::max<std::size_t>(1, opt.clients);
    config.client.batch_size = 16;
    config.client.sgd.learning_rate = 0.05f;
    config.resume = opt.resume;

    const core::DatasetSpec dataset{"cifar10", 7, opt.take};
    auto [train, test] = data::make_dataset(dataset.name, dataset.seed);
    core::FlRunResult result;
    if (!config.transport.empty()) {
      core::FederatedRoot root(model, dataset, data::take(test, 256), config,
                               spec);
      std::printf("federation: listening on 127.0.0.1:%u, %zu edges\n",
                  root.port(), root.edge_count());
      std::fflush(stdout);
      std::vector<pid_t> workers;
      if (opt.spawn_workers) {
        const std::string binary = sibling_worker_path();
        const std::string endpoint =
            "127.0.0.1:" + std::to_string(root.port());
        for (std::size_t e = 0; e < root.edge_count(); ++e)
          workers.push_back(spawn_worker(binary, endpoint));
      }
      result = root.run();
      for (const pid_t pid : workers) {
        int status = 0;
        ::waitpid(pid, &status, 0);
      }
    } else {
      core::FlCoordinator coordinator(model, data::take(train, opt.take),
                                      data::take(test, 256), config,
                                      core::make_codec(spec));
      result = coordinator.run();
    }
    print_result(result);
    if (!opt.trace_path.empty()) core::write_trace(opt.trace_path, result);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "fedsz_campaign: %s\n", error.what());
    return 1;
  }
  return 0;
}

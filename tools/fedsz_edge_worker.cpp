// Edge worker process for distributed federation runs. Connects to a
// FederatedRoot (see core/fl/federation.hpp), receives its manifest over
// the wire, rebuilds its deterministic slice of the run, and trains
// whatever cohorts the root assigns until BYE.
//
//   ./build/fedsz_edge_worker --connect 127.0.0.1:47001
//
// Exit status: 0 after a clean BYE (or root EOF), 1 on transport or
// protocol failure. Normally spawned by `fedsz_campaign` (one worker per
// tier-1 edge), but any process may connect — workers are interchangeable
// until the handshake assigns them an edge index.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/fl/federation.hpp"
#include "net/transport.hpp"

int main(int argc, char** argv) {
  std::string endpoint = "127.0.0.1:0";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--connect" && i + 1 < argc) {
      endpoint = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s --connect <host>:<port>\n", argv[0]);
      return 2;
    }
  }
  const std::size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos) {
    std::fprintf(stderr, "fedsz_edge_worker: bad endpoint '%s'\n",
                 endpoint.c_str());
    return 2;
  }
  const std::string host = endpoint.substr(0, colon);
  const int port = std::atoi(endpoint.c_str() + colon + 1);
  if (port <= 0 || port > 65535) {
    std::fprintf(stderr, "fedsz_edge_worker: bad port in '%s'\n",
                 endpoint.c_str());
    return 2;
  }
  try {
    fedsz::core::run_edge_worker(
        fedsz::net::tcp_connect(host, static_cast<std::uint16_t>(port)));
  } catch (const std::exception& error) {
    std::fprintf(stderr, "fedsz_edge_worker: %s\n", error.what());
    return 1;
  }
  return 0;
}

// Counting replacement of the global allocator, for the bench binaries'
// allocations-per-encode columns. Lives in the same translation unit as
// benchx::allocation_count() on purpose: a bench that calls the counter
// pulls this object out of the archive, which installs the counting
// operator new/delete set for the whole binary; benches that never ask for
// the count link the standard allocator as before.
#include <atomic>
#include <cstdlib>
#include <new>

#include "common.hpp"

namespace {

std::atomic<std::uint64_t> g_allocations{0};

void* counted_alloc(std::size_t size) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}

void* counted_aligned_alloc(std::size_t size, std::align_val_t al) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  std::size_t alignment = static_cast<std::size_t>(al);
  if (alignment < sizeof(void*)) alignment = sizeof(void*);
  void* p = nullptr;
  if (posix_memalign(&p, alignment, size ? size : 1) != 0) return nullptr;
  return p;
}

}  // namespace

namespace fedsz::benchx {

std::uint64_t allocation_count() {
  return g_allocations.load(std::memory_order_relaxed);
}

}  // namespace fedsz::benchx

void* operator new(std::size_t size) {
  if (void* p = counted_alloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  if (void* p = counted_alloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, std::align_val_t al) {
  if (void* p = counted_aligned_alloc(size, al)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size, std::align_val_t al) {
  if (void* p = counted_aligned_alloc(size, al)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new(std::size_t size, std::align_val_t al,
                   const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(size, al);
}

void* operator new[](std::size_t size, std::align_val_t al,
                     const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(size, al);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  std::free(p);
}

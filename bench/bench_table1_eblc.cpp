// Table I: EBLC comparison across models for CIFAR-10 — runtime, throughput,
// compression ratio, and Top-1 accuracy for SZ2/SZ3/SZx/ZFP at relative
// error bounds 1e-2 / 1e-3 / 1e-4.
//
// Runtime/throughput/CR are measured by compressing the lossy partition of
// a briefly-trained bench-scale model (the paper uses a Raspberry Pi 5;
// absolute times shift with the host, relative ordering is the result).
// Accuracy is the Top-1 score of the model after a lossy round trip of its
// weights (the paper's FL-training accuracy column is regenerated in full by
// bench_fig4_convergence; this per-codec inference proxy surfaces the same
// pass/fail signal at a fraction of the cost).
#include <cstdio>

#include "common.hpp"
#include "core/fedsz.hpp"
#include "data/dataloader.hpp"
#include "data/synthetic.hpp"
#include "nn/metrics.hpp"

namespace {

using namespace fedsz;

double accuracy_after_roundtrip(const std::string& arch,
                                const StateDict& trained,
                                const lossy::LossyCodec& codec, double rel) {
  StateDict mutated = trained;
  for (auto& [name, tensor] : mutated.entries_mutable()) {
    if (!core::is_lossy_entry(name, tensor.numel(), 1000)) continue;
    const Bytes blob =
        codec.compress(tensor.span(), lossy::ErrorBound::relative(rel));
    auto values = codec.decompress({blob.data(), blob.size()});
    tensor = Tensor::from_data(tensor.shape(), std::move(values));
  }
  const data::SyntheticSpec spec = data::dataset_spec("cifar10");
  nn::ModelConfig config;
  config.arch = arch;
  config.scale = nn::ModelScale::kBench;
  config.in_channels = spec.channels;
  config.image_size = spec.image_size;
  config.num_classes = spec.classes;
  nn::BuiltModel built = nn::build_model(config);
  built.model.load_state_dict(mutated);
  auto [train, test] = data::make_dataset("cifar10");
  const data::Batch batch = data::full_batch(*data::take(test, 128));
  const Tensor logits = built.model.forward(batch.images, false);
  return nn::top1_accuracy(logits, {batch.labels.data(),
                                    batch.labels.size()});
}

}  // namespace

int main() {
  using namespace fedsz;
  std::printf(
      "Table I: EBLC comparison across models for CIFAR-10\n"
      "(bench-scale analogues; runtime/throughput on this host; accuracy =\n"
      " Top-1 after one lossy round trip of the trained weights)\n\n");
  const double bounds[] = {1e-2, 1e-3, 1e-4};
  for (const std::string& arch : nn::model_architectures()) {
    const StateDict trained = benchx::trained_state_dict(arch, "cifar10");
    const auto values = benchx::lossy_partition_values(trained);
    std::printf("Model: %s (lossy partition: %s)\n",
                nn::model_display_name(arch).c_str(),
                benchx::fmt_bytes(values.size() * sizeof(float)).c_str());
    benchx::Table table({"Compressor", "REL bound", "Runtime (s)",
                         "Throughput (MB/s)", "Compression Ratio",
                         "Top-1 Accuracy (%)"});
    for (const lossy::LossyCodec* codec : lossy::all_lossy_codecs()) {
      for (const double rel : bounds) {
        const benchx::CodecTiming timing = benchx::measure_lossy(
            *codec, {values.data(), values.size()},
            lossy::ErrorBound::relative(rel));
        const double accuracy =
            accuracy_after_roundtrip(arch, trained, *codec, rel);
        table.add_row({codec->name(), benchx::fmt(rel, 4),
                       benchx::fmt(timing.compress_seconds, 4),
                       benchx::fmt(timing.throughput_mb_s(), 2),
                       benchx::fmt(timing.ratio(), 3),
                       benchx::fmt(accuracy * 100.0, 2)});
      }
    }
    table.print();
    std::printf("\n");
  }
  std::printf(
      "Expected shape (paper): SZx fastest by orders of magnitude; SZ2 best\n"
      "CR/accuracy balance; SZ3 close to SZ2 but slower; ZFP lowest CR on\n"
      "1-D spiky weights. Note: this SZx honors the error bound, so the\n"
      "paper's SZx accuracy collapse does not reproduce (see EXPERIMENTS.md).\n");
  return 0;
}

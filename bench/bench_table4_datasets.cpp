// Table IV: dataset characteristics for FedSZ benchmarking — sample counts,
// input dimensions and class counts of the three synthetic dataset
// analogues (plus the substitution note for Caltech101's scaled resolution).
#include <cstdio>

#include "common.hpp"
#include "data/synthetic.hpp"

int main() {
  using namespace fedsz;
  std::printf("Table IV: Dataset characteristics for FedSZ benchmarking\n\n");
  benchx::Table table({"Dataset", "# of Samples", "Input Dimension",
                       "Classes", "Channels"});
  for (const std::string& name : data::dataset_names()) {
    const data::SyntheticSpec spec = data::dataset_spec(name);
    table.add_row({spec.name,
                   std::to_string(spec.train_size + spec.test_size),
                   std::to_string(spec.image_size) + " x " +
                       std::to_string(spec.image_size),
                   std::to_string(spec.classes),
                   std::to_string(spec.channels)});
  }
  table.print();
  std::printf(
      "\nPaper: CIFAR-10 60k/32x32/10, Fashion-MNIST 70k/28x28/10,\n"
      "Caltech101 9k/224x224/101. The Caltech analogue is scaled to 64x64\n"
      "for laptop-scale training (documented in DESIGN.md).\n");
  return 0;
}

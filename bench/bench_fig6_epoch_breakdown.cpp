// Figure 6: client runtime-per-epoch breakdown with FedSZ compression —
// mean client training time, server-side validation time, and total
// compression time per communication round, for every model x dataset pair
// at REL 1e-2.
#include <cstdio>

#include "common.hpp"
#include "core/fl/coordinator.hpp"
#include "data/synthetic.hpp"

int main(int argc, char** argv) {
  using namespace fedsz;
  const benchx::BenchOptions options = benchx::parse_bench_options(argc, argv);
  std::printf(
      "Figure 6: client runtime per epoch breakdown (FedSZ SZ2 @ REL 1e-2,\n"
      "tiny-scale models, 4 clients)\n\n");
  for (const std::string& dataset : data::dataset_names()) {
    const data::SyntheticSpec spec = data::dataset_spec(dataset);
    std::printf("Dataset: %s\n", dataset.c_str());
    benchx::Table table({"Model", "Client Training (s)", "Validation (s)",
                         "Compression (s)", "Compression share",
                         "Plan (lossy/lossless)"});
    for (const std::string& arch : nn::model_architectures()) {
      nn::ModelConfig model;
      model.arch = arch;
      model.scale = nn::ModelScale::kTiny;
      model.in_channels = spec.channels;
      model.image_size = spec.image_size;
      model.num_classes = spec.classes;
      auto [train, test] = data::make_dataset(dataset);
      core::FlRunConfig config;
      config.clients = options.clients > 0 ? options.clients : 4;
      config.rounds = options.rounds > 0 ? options.rounds : 2;
      config.eval_limit = 256;
      config.threads = options.threads_or(4);
      config.seed = options.seed_or(config.seed);
      config.client.batch_size = 16;
      const std::size_t train_samples = spec.image_size >= 64 ? 256 : 512;
      core::FlCoordinator coordinator(model, data::take(train, train_samples),
                                      data::take(test, 256), config,
                                      core::make_fedsz_codec());
      const core::FlRunResult result = coordinator.run();
      // Use the second round (first pays cache warm-up). Compression time is
      // the per-round compress + decompress means the coordinator already
      // aggregates from CompressionStats — no separate seconds out-params.
      const core::RoundRecord& record = result.rounds.back();
      const double compression =
          record.compress_seconds + record.decompress_seconds;
      const double total =
          record.train_seconds + record.eval_seconds + compression;
      const core::ClientTraceEntry& first_client = record.clients.front();
      table.add_row({nn::model_display_name(arch),
                     benchx::fmt(record.train_seconds, 3),
                     benchx::fmt(record.eval_seconds, 3),
                     benchx::fmt(compression, 4),
                     benchx::fmt(compression / total * 100.0, 1) + "%",
                     std::to_string(first_client.lossy_tensors) + "/" +
                         std::to_string(first_client.lossless_tensors)});
    }
    table.print();
    std::printf("\n");
  }
  std::printf(
      "Shape to check (paper Fig. 6): compression is a small slice of the\n"
      "epoch — the paper reports an average of 4.7%% of client wall time,\n"
      "worst case 17%% (AlexNet/CIFAR-10).\n");
  return 0;
}

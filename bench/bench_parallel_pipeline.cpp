// Parallel chunked pipeline: single-thread vs N-thread FedSZ compress and
// decompress on Table-III-sized models. The chunk pipeline splits every
// lossy tensor into fixed-size chunks and fans codec work out over a thread
// pool, overlapping the lossless partition with the lossy chunks; this bench
// reports the wall-clock speedup of that fan-out, the steady-state heap
// allocations per compress call (the leased-workspace + per-thread arena
// design targets a constant, thread-count-independent number), and verifies
// that every thread count emits the identical bitstream.
//
// On a machine with >= 4 hardware threads the 4-thread compress path is
// expected to run >= 2x faster than the serial path (compression dominates
// the codec cost profile — Table I — so this is the knob that shortens FL
// rounds). The printed "hw threads" line gives the context for interpreting
// the numbers on smaller machines.
//
// --json emits the shared bench schema (runs keyed by `name` with *_mb_s
// and allocs_per_encode fields) consumed by bench/compare_baselines.py
// against bench/baselines/BENCH_parallel_pipeline.json.
#include <cstdio>

#include "common.hpp"
#include "core/fedsz.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace {

using namespace fedsz;

struct PipelineTiming {
  double compress_seconds = 0.0;
  double decompress_seconds = 0.0;
  double allocs_per_encode = 0.0;
  std::size_t chunks = 0;
  Bytes bitstream;
};

PipelineTiming measure(const StateDict& dict, std::size_t parallelism,
                       int repetitions) {
  core::FedSzConfig config;
  config.parallelism = parallelism;
  const core::FedSz fedsz{config};
  PipelineTiming timing;
  (void)fedsz.compress(dict);  // warm-up: pool threads, workspace, arenas
  double best_compress = 1e30, best_decompress = 1e30;
  const std::uint64_t allocs_before = benchx::allocation_count();
  for (int rep = 0; rep < repetitions; ++rep) {
    core::CompressionStats stats;
    Timer timer;
    Bytes blob = fedsz.compress(dict, &stats);
    best_compress = std::min(best_compress, timer.seconds());
    timing.chunks = stats.lossy_chunks;
    timing.bitstream = std::move(blob);
  }
  timing.allocs_per_encode =
      static_cast<double>(benchx::allocation_count() - allocs_before) /
      static_cast<double>(repetitions);
  for (int rep = 0; rep < repetitions; ++rep) {
    Timer timer;
    (void)fedsz.decompress(
        {timing.bitstream.data(), timing.bitstream.size()});
    best_decompress = std::min(best_decompress, timer.seconds());
  }
  timing.compress_seconds = best_compress;
  timing.decompress_seconds = best_decompress;
  return timing;
}

void bench_model(const std::string& arch, int repetitions,
                 benchx::JsonValue* runs) {
  const StateDict dict = benchx::trained_state_dict(arch, "cifar10");
  const double mb = static_cast<double>(dict.total_bytes()) / 1e6;
  std::printf("\n%s: %zu tensors, %.2f MB\n", arch.c_str(), dict.size(), mb);

  const PipelineTiming serial = measure(dict, 1, repetitions);
  benchx::Table table({"threads", "compress (s)", "MB/s", "speedup",
                       "decompress (s)", "speedup", "allocs/encode",
                       "identical bytes"});
  const auto emit_run = [&](std::size_t threads, const PipelineTiming& t,
                            bool identical) {
    if (runs == nullptr) return;
    benchx::JsonValue run = benchx::JsonValue::object();
    run.set("name", arch + "/threads=" + std::to_string(threads))
        .set("arch", arch)
        .set("threads", threads)
        .set("compress_mb_s", mb / t.compress_seconds)
        .set("decompress_mb_s", mb / t.decompress_seconds)
        .set("allocs_per_encode", t.allocs_per_encode)
        .set("identical_bytes", identical);
    runs->push(std::move(run));
  };
  table.add_row({"1 (serial)", benchx::fmt(serial.compress_seconds),
                 benchx::fmt(mb / serial.compress_seconds, 1), "1.000",
                 benchx::fmt(serial.decompress_seconds), "1.000",
                 benchx::fmt(serial.allocs_per_encode, 1), "yes"});
  emit_run(1, serial, true);
  for (const std::size_t threads : {std::size_t{2}, std::size_t{4},
                                    std::size_t{8}}) {
    const PipelineTiming parallel = measure(dict, threads, repetitions);
    const bool identical = parallel.bitstream == serial.bitstream;
    table.add_row(
        {std::to_string(threads), benchx::fmt(parallel.compress_seconds),
         benchx::fmt(mb / parallel.compress_seconds, 1),
         benchx::fmt(serial.compress_seconds / parallel.compress_seconds),
         benchx::fmt(parallel.decompress_seconds),
         benchx::fmt(serial.decompress_seconds /
                     parallel.decompress_seconds),
         benchx::fmt(parallel.allocs_per_encode, 1),
         identical ? "yes" : "NO"});
    emit_run(threads, parallel, identical);
    if (!identical) {
      std::printf("ERROR: %zu-thread bitstream differs from serial!\n",
                  threads);
    }
  }
  table.print();
  std::printf("chunks: %zu (chunk_elements=%zu)\n", serial.chunks,
              core::FedSzConfig{}.chunk_elements);
}

}  // namespace

int main(int argc, char** argv) {
  const benchx::BenchOptions options = benchx::parse_bench_options(argc, argv);
  std::printf(
      "Parallel chunked FedSZ pipeline: serial vs N-thread compress path\n"
      "on Table-III model analogues (bench scale). Expectation on >=4 hw\n"
      "threads: >=2x compress speedup at 4 threads, identical bitstreams\n"
      "at every thread count.\n");
  std::printf("hw threads on this machine: %zu\n",
              ThreadPool::hardware_threads());
  const int repetitions = options.smoke ? 2 : (benchx::full_grid() ? 5 : 3);
  benchx::JsonValue runs = benchx::JsonValue::array();
  for (const std::string& arch : nn::model_architectures())
    bench_model(arch, repetitions,
                options.json_path.empty() ? nullptr : &runs);
  if (!options.json_path.empty()) {
    benchx::JsonValue json = benchx::JsonValue::object();
    json.set("bench", "parallel_pipeline")
        .set("smoke", options.smoke)
        .set("reps", repetitions)
        .set("runs", std::move(runs));
    benchx::write_json(options.json_path, json);
    std::printf("\nwrote %s\n", options.json_path.c_str());
  }
  return 0;
}

// Parallel chunked pipeline: single-thread vs N-thread FedSZ compress and
// decompress on Table-III-sized models. The chunk pipeline splits every
// lossy tensor into fixed-size chunks and fans codec work out over a thread
// pool, overlapping the lossless partition with the lossy chunks; this bench
// reports the wall-clock speedup of that fan-out and verifies that every
// thread count emits the identical bitstream.
//
// On a machine with >= 4 hardware threads the 4-thread compress path is
// expected to run >= 2x faster than the serial path (compression dominates
// the codec cost profile — Table I — so this is the knob that shortens FL
// rounds). The printed "hw threads" line gives the context for interpreting
// the numbers on smaller machines.
#include <cstdio>

#include "common.hpp"
#include "core/fedsz.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace {

using namespace fedsz;

struct PipelineTiming {
  double compress_seconds = 0.0;
  double decompress_seconds = 0.0;
  std::size_t chunks = 0;
  Bytes bitstream;
};

PipelineTiming measure(const StateDict& dict, std::size_t parallelism,
                       int repetitions) {
  core::FedSzConfig config;
  config.parallelism = parallelism;
  const core::FedSz fedsz{config};
  PipelineTiming timing;
  double best_compress = 1e30, best_decompress = 1e30;
  for (int rep = 0; rep < repetitions; ++rep) {
    core::CompressionStats stats;
    Timer timer;
    Bytes blob = fedsz.compress(dict, &stats);
    best_compress = std::min(best_compress, timer.seconds());
    timing.chunks = stats.lossy_chunks;
    timer.reset();
    (void)fedsz.decompress({blob.data(), blob.size()});
    best_decompress = std::min(best_decompress, timer.seconds());
    timing.bitstream = std::move(blob);
  }
  timing.compress_seconds = best_compress;
  timing.decompress_seconds = best_decompress;
  return timing;
}

void bench_model(const std::string& arch) {
  const StateDict dict = benchx::trained_state_dict(arch, "cifar10");
  const double mb = static_cast<double>(dict.total_bytes()) / 1e6;
  std::printf("\n%s: %zu tensors, %.2f MB\n", arch.c_str(), dict.size(), mb);

  const int repetitions = benchx::full_grid() ? 5 : 3;
  const PipelineTiming serial = measure(dict, 1, repetitions);
  benchx::Table table({"threads", "compress (s)", "MB/s", "speedup",
                       "decompress (s)", "speedup", "identical bytes"});
  table.add_row({"1 (serial)", benchx::fmt(serial.compress_seconds),
                 benchx::fmt(mb / serial.compress_seconds, 1), "1.000",
                 benchx::fmt(serial.decompress_seconds), "1.000", "yes"});
  for (const std::size_t threads : {std::size_t{2}, std::size_t{4},
                                    std::size_t{8}}) {
    const PipelineTiming parallel = measure(dict, threads, repetitions);
    const bool identical = parallel.bitstream == serial.bitstream;
    table.add_row(
        {std::to_string(threads), benchx::fmt(parallel.compress_seconds),
         benchx::fmt(mb / parallel.compress_seconds, 1),
         benchx::fmt(serial.compress_seconds / parallel.compress_seconds),
         benchx::fmt(parallel.decompress_seconds),
         benchx::fmt(serial.decompress_seconds /
                     parallel.decompress_seconds),
         identical ? "yes" : "NO"});
    if (!identical) {
      std::printf("ERROR: %zu-thread bitstream differs from serial!\n",
                  threads);
    }
  }
  table.print();
  std::printf("chunks: %zu (chunk_elements=%zu)\n", serial.chunks,
              core::FedSzConfig{}.chunk_elements);
}

}  // namespace

int main() {
  std::printf(
      "Parallel chunked FedSZ pipeline: serial vs N-thread compress path\n"
      "on Table-III model analogues (bench scale). Expectation on >=4 hw\n"
      "threads: >=2x compress speedup at 4 threads, identical bitstreams\n"
      "at every thread count.\n");
  std::printf("hw threads on this machine: %zu\n",
              ThreadPool::hardware_threads());
  for (const std::string& arch : nn::model_architectures())
    bench_model(arch);
  return 0;
}

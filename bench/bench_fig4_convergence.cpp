// Figure 4: accuracy convergence comparison for EBLCs — FedAvg with four
// clients, one local epoch per round, compressing every client update with
// each candidate compressor (plus the uncompressed baseline), reporting
// Top-1 accuracy per round.
//
// Default: three models on the CIFAR-10 analogue at tiny scale and 6 rounds
// (one column of the paper's 3x3 grid). Set FEDSZ_BENCH_FULL=1 for the full
// model x dataset grid at 10 rounds.
#include <cstdio>

#include "common.hpp"
#include "core/fl/coordinator.hpp"
#include "data/synthetic.hpp"

namespace {

using namespace fedsz;

core::FlRunResult run(const std::string& arch, const std::string& dataset,
                      core::UpdateCodecPtr codec, int rounds,
                      const benchx::BenchOptions& options) {
  const data::SyntheticSpec spec = data::dataset_spec(dataset);
  nn::ModelConfig model;
  model.arch = arch;
  model.scale = nn::ModelScale::kTiny;
  model.in_channels = spec.channels;
  model.image_size = spec.image_size;
  model.num_classes = spec.classes;
  auto [train, test] = data::make_dataset(dataset);
  core::FlRunConfig config;
  config.clients = options.clients > 0 ? options.clients : 4;
  config.rounds = rounds;
  config.eval_limit = 256;
  config.threads = options.threads_or(4);
  config.client.batch_size = 16;
  // AlexNet (no BatchNorm) diverges at the BN models' rate.
  config.client.sgd.learning_rate = arch == "alexnet" ? 0.02f : 0.05f;
  config.seed = options.seed_or(42);
  const std::size_t train_samples = spec.image_size >= 64 ? 256 : 512;
  core::FlCoordinator coordinator(model, data::take(train, train_samples),
                                  data::take(test, 256), config,
                                  std::move(codec));
  return coordinator.run();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fedsz;
  const benchx::BenchOptions options = benchx::parse_bench_options(argc, argv);
  const bool full = benchx::full_grid() && !options.smoke;
  const int rounds =
      options.rounds > 0 ? options.rounds : (full ? 10 : (options.smoke ? 2 : 6));
  const std::vector<std::string> datasets =
      full ? data::dataset_names() : std::vector<std::string>{"cifar10"};
  std::printf(
      "Figure 4: accuracy convergence per compressor (FedAvg, 4 clients,\n"
      "%d rounds, REL bound 1e-2)%s\n\n",
      rounds, full ? "" : " — set FEDSZ_BENCH_FULL=1 for the full grid");

  struct Config {
    std::string label;
    core::UpdateCodecPtr codec;
  };
  std::vector<Config> configs;
  configs.push_back({"Uncompressed", core::make_identity_codec()});
  for (const lossy::LossyCodec* lossy_codec : lossy::all_lossy_codecs()) {
    core::FedSzConfig fc;
    fc.lossy_id = lossy_codec->id();
    configs.push_back({"FedSZ-" + lossy_codec->name(),
                       core::make_fedsz_codec(fc)});
  }

  for (const std::string& dataset : datasets) {
    for (const std::string& arch : nn::model_architectures()) {
      std::printf("Model=%s Dataset=%s\n",
                  nn::model_display_name(arch).c_str(), dataset.c_str());
      std::vector<std::string> headers{"Compression Type"};
      for (int r = 0; r < rounds; ++r)
        headers.push_back("R" + std::to_string(r));
      benchx::Table table(std::move(headers));
      for (const Config& config : configs) {
        const core::FlRunResult result =
            run(arch, dataset, config.codec, rounds, options);
        std::vector<std::string> row{config.label};
        for (const core::RoundRecord& record : result.rounds)
          row.push_back(benchx::fmt(record.accuracy * 100.0, 1));
        table.add_row(std::move(row));
      }
      table.print();
      std::printf("\n");
    }
  }
  std::printf(
      "Shape to check (paper Fig. 4): SZ2/SZ3/ZFP curves track the\n"
      "uncompressed curve at REL 1e-2. (The paper's SZx collapse to 10%%\n"
      "does not reproduce with an error-bound-honoring SZx; see\n"
      "EXPERIMENTS.md.)\n");
  return 0;
}

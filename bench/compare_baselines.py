#!/usr/bin/env python3
"""CI perf-regression gate over the bench --json outputs.

Usage:
    python3 bench/compare_baselines.py BASELINE.json CURRENT.json \
        [--tolerance 0.25]

Both files use the shared bench schema: a top-level "runs" array whose
entries carry a unique "name" plus numeric metrics. Runs are matched by
name; every metric ending in "_mb_s" (throughput — higher is better) must
not drop more than --tolerance (default 25%) below the baseline, a slack
chosen to sit above CI-runner noise while still catching real regressions
like an accidentally de-vectorized hot loop.

Deterministic (virtual-clock) benches like bench_hierarchy gate harder:
integer metrics ending in "_bytes" or "_count" must match the baseline
exactly — a byte-count or eligibility-count drift means the compression
or participation trajectory moved, which should only happen on purpose
(regenerate the baseline in the same PR) — and
"max_peak_decoded_per_node" must not exceed the baseline (the streaming
O(fan-in) memory bound). Other fields (ratio, allocs_per_encode) are
reported informationally but do not gate, except identical_bytes which
must stay true when present.

Exit status: 0 when every gated metric passes, 1 on any regression,
2 on malformed input or runs present in the baseline but missing from the
current output (a silently dropped benchmark should fail CI too).
"""

import argparse
import json
import sys


def load_runs(path):
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    runs = doc.get("runs")
    if not isinstance(runs, list):
        raise ValueError(f"{path}: no 'runs' array")
    by_name = {}
    for run in runs:
        name = run.get("name")
        if not isinstance(name, str):
            raise ValueError(f"{path}: run without a 'name'")
        if name in by_name:
            raise ValueError(f"{path}: duplicate run name {name!r}")
        by_name[name] = run
    return by_name


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed fractional throughput drop (default 0.25 = 25%%)",
    )
    args = parser.parse_args()

    try:
        baseline = load_runs(args.baseline)
        current = load_runs(args.current)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    failures = []
    missing = sorted(set(baseline) - set(current))
    if missing:
        for name in missing:
            print(f"MISSING  {name}: in baseline but not in current output")
        return 2
    # New runs don't gate (there is nothing to compare against), but print
    # them so a PR adding rows remembers to regenerate the baseline file.
    for name in sorted(set(current) - set(baseline)):
        print(f"{'NEW':>10}  {name}: not in baseline — regenerate to gate it")

    for name in sorted(baseline):
        base_run, cur_run = baseline[name], current[name]
        for key in sorted(base_run):
            base_val = base_run[key]
            if key.endswith("_mb_s") and isinstance(base_val, (int, float)):
                cur_val = cur_run.get(key)
                if not isinstance(cur_val, (int, float)):
                    failures.append(f"{name}.{key}: missing in current output")
                    continue
                floor = base_val * (1.0 - args.tolerance)
                status = "ok" if cur_val >= floor else "REGRESSION"
                print(
                    f"{status:>10}  {name}.{key}: "
                    f"{base_val:.1f} -> {cur_val:.1f} MB/s "
                    f"(floor {floor:.1f})"
                )
                if cur_val < floor:
                    failures.append(
                        f"{name}.{key}: {cur_val:.1f} < floor {floor:.1f} "
                        f"(baseline {base_val:.1f})"
                    )
            elif key == "identical_bytes" and base_val is True:
                if cur_run.get(key) is not True:
                    failures.append(f"{name}.identical_bytes: no longer true")
            elif (
                key.endswith("_bytes")
                and isinstance(base_val, int)
                and not isinstance(base_val, bool)
            ):
                cur_val = cur_run.get(key)
                status = "ok" if cur_val == base_val else "DRIFT"
                print(f"{status:>10}  {name}.{key}: {base_val} -> {cur_val}")
                if cur_val != base_val:
                    failures.append(
                        f"{name}.{key}: {cur_val} != baseline {base_val} "
                        "(deterministic byte count moved; regenerate the "
                        "baseline if this is intentional)"
                    )
            elif (
                key.endswith("_count")
                and isinstance(base_val, int)
                and not isinstance(base_val, bool)
            ):
                cur_val = cur_run.get(key)
                status = "ok" if cur_val == base_val else "DRIFT"
                print(f"{status:>10}  {name}.{key}: {base_val} -> {cur_val}")
                if cur_val != base_val:
                    failures.append(
                        f"{name}.{key}: {cur_val} != baseline {base_val} "
                        "(deterministic eligibility/participation count "
                        "moved; regenerate the baseline if this is "
                        "intentional)"
                    )
            elif key == "max_peak_decoded_per_node" and isinstance(
                base_val, (int, float)
            ):
                cur_val = cur_run.get(key)
                status = (
                    "ok"
                    if isinstance(cur_val, (int, float)) and cur_val <= base_val
                    else "REGRESSION"
                )
                print(f"{status:>10}  {name}.{key}: {base_val} -> {cur_val}")
                if status != "ok":
                    failures.append(
                        f"{name}.{key}: {cur_val} exceeds baseline "
                        f"{base_val} (streaming memory bound regressed)"
                    )

    if failures:
        print(f"\n{len(failures)} perf gate failure(s):")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(f"\nall {len(baseline)} runs within {args.tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())

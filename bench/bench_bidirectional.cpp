// Bidirectional communication sweep: uplink x downlink error bounds through
// the event-driven runtime, with and without per-client error feedback.
// The paper models only the client->server uplink; this bench quantifies
// what charging the global-model broadcast against each client's own link
// changes — total virtual round time, bytes in each direction, and the
// accuracy cost of a lossy broadcast — plus how error feedback recovers
// accuracy when the uplink bound turns aggressive.
//
//   bench_bidirectional [--clients N] [--rounds N] [--seed N] [--threads N]
//                       [--json PATH] [--smoke]
#include <cstdio>

#include "common.hpp"
#include "core/codec_spec.hpp"
#include "core/fl/coordinator.hpp"
#include "data/synthetic.hpp"

namespace {

using namespace fedsz;

struct SweepResult {
  double accuracy = 0.0;
  std::size_t uplink_bytes = 0;
  std::size_t downlink_bytes = 0;
  double virtual_seconds = 0.0;
  double mean_ef_residual_norm = 0.0;
};

SweepResult run_pair(const std::string& uplink, const std::string& downlink,
                     bool error_feedback,
                     const benchx::BenchOptions& options) {
  auto [train, test] = data::make_dataset("cifar10");
  nn::ModelConfig model;
  model.arch = "mobilenet_v2";
  model.scale = nn::ModelScale::kTiny;
  core::FlRunConfig config;
  config.clients = options.clients > 0 ? options.clients : 8;
  config.rounds = options.rounds > 0 ? options.rounds : (options.smoke ? 2 : 4);
  config.eval_limit = options.smoke ? 64 : 192;
  config.threads = options.threads_or(4);
  config.seed = options.seed_or(11);
  config.client.batch_size = 8;
  config.client.sgd.learning_rate = 0.05f;
  config.evaluate_every_round = false;
  config.downlink_spec = downlink;
  config.error_feedback = error_feedback;
  net::HeterogeneousNetworkConfig links;
  links.distribution = net::LinkDistribution::kUniformEdge;
  links.edge_min_mbps = 4.0;
  links.edge_max_mbps = 20.0;
  links.seed = config.seed ^ 0x11775533ull;
  config.heterogeneous = links;
  const std::size_t samples = options.smoke ? 96 : 256;
  core::FlCoordinator coordinator(
      model, data::take(train, samples),
      data::take(test, options.smoke ? 64 : 192), config,
      core::make_codec(uplink));
  const core::FlRunResult result = coordinator.run();
  SweepResult out;
  out.accuracy = result.final_accuracy;
  out.virtual_seconds = result.total_virtual_seconds;
  for (const core::RoundRecord& record : result.rounds) {
    out.uplink_bytes += record.bytes_sent;
    out.downlink_bytes += record.downlink_bytes;
    out.mean_ef_residual_norm += record.mean_ef_residual_norm;
  }
  out.mean_ef_residual_norm /= static_cast<double>(result.rounds.size());
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fedsz;
  const benchx::BenchOptions options = benchx::parse_bench_options(argc, argv);

  struct Leg {
    std::string label;
    std::string spec;
  };
  std::vector<Leg> uplinks;
  std::vector<Leg> downlinks;
  if (options.smoke) {
    uplinks = {{"up 1e-1", "fedsz:eb=rel:1e-1"}};
    downlinks = {{"free", ""}, {"down 1e-3", "fedsz:eb=rel:1e-3"}};
  } else {
    uplinks = {{"up 1e-3", "fedsz:eb=rel:1e-3"},
               {"up 1e-2", "fedsz:eb=rel:1e-2"},
               {"up 1e-1", "fedsz:eb=rel:1e-1"}};
    downlinks = {{"free", ""},
                 {"down identity", "identity"},
                 {"down 1e-3", "fedsz:eb=rel:1e-3"},
                 {"down 1e-2", "fedsz:eb=rel:1e-2"}};
  }

  std::printf(
      "Bidirectional sweep: uplink x downlink bounds, %s clients on a\n"
      "4..20 Mbps uniform-edge fleet ('free' = the paper's unmodeled\n"
      "lossless broadcast)\n\n",
      options.clients > 0 ? std::to_string(options.clients).c_str() : "8");

  benchx::JsonValue json = benchx::JsonValue::object();
  json.set("bench", "bidirectional").set("smoke", options.smoke);
  benchx::JsonValue runs_json = benchx::JsonValue::array();

  for (const bool ef : {false, true}) {
    std::printf("Error feedback: %s\n", ef ? "on" : "off");
    benchx::Table table({"Uplink", "Downlink", "Accuracy", "Up bytes",
                         "Down bytes", "Virtual time (s)", "EF residual"});
    for (const Leg& up : uplinks) {
      for (const Leg& down : downlinks) {
        const SweepResult result = run_pair(up.spec, down.spec, ef, options);
        table.add_row({up.label, down.label,
                       benchx::fmt(result.accuracy * 100.0, 1) + "%",
                       benchx::fmt_bytes(result.uplink_bytes),
                       benchx::fmt_bytes(result.downlink_bytes),
                       benchx::fmt(result.virtual_seconds, 1),
                       benchx::fmt(result.mean_ef_residual_norm, 3)});
        runs_json.push(benchx::JsonValue::object()
                           .set("uplink", up.spec)
                           .set("downlink", down.spec)
                           .set("error_feedback", ef)
                           .set("accuracy", result.accuracy)
                           .set("uplink_bytes", result.uplink_bytes)
                           .set("downlink_bytes", result.downlink_bytes)
                           .set("virtual_seconds", result.virtual_seconds)
                           .set("mean_ef_residual_norm",
                                result.mean_ef_residual_norm));
      }
    }
    table.print();
    std::printf("\n");
  }
  json.set("runs", std::move(runs_json));

  std::printf(
      "Shape to check: any non-free downlink adds bytes and virtual time to\n"
      "every round (the broadcast now rides each client's own link); at the\n"
      "aggressive up 1e-1 bound the EF-on panel recovers most of the\n"
      "accuracy the EF-off panel loses.\n");
  if (!options.json_path.empty()) {
    benchx::write_json(options.json_path, json);
    std::printf("\nwrote %s\n", options.json_path.c_str());
  }
  return 0;
}

// Hierarchical-topology bench: multi-tier sharded aggregation vs the flat
// star, past where the paper's Fig. 9 stops. Clients are sharded under
// tier-1 edges (topology=hier:<N>[x<M>...]); every interior node
// stream-folds its children, re-encodes the weight-carrying partial mean
// through its tier's backhaul codec, and ships it over a per-node backhaul
// link drawn from the two_tier distribution. The sweep is clients x tier
// shape x backhaul bound; the numbers to watch are root-link ingress bytes
// (O(top-tier nodes), not O(clients) — and a second telescoping step down
// for depth-2 trees) and per-node peak decoded updates (streaming keeps
// every aggregation point at 1 <= its fan-in regardless of population).
//
//   bench_hierarchy [--clients N] [--rounds N] [--bandwidth MBPS]
//                   [--codec SPEC] [--seed N] [--threads N] [--json PATH]
//                   [--trace PATH] [--out PATH] [--smoke]
//
// --trace writes the LAST grid entry's full campaign trace (every round,
// client delivery, and shipped partial) as JSON via core/fl/trace.hpp.
//
// --smoke runs one 1024-client fanout-32 round plus a depth-2 32x8 round
// and FAILS (exit 1) if any aggregation point ever held more than its
// fan-in's worth of decoded updates — the CI guard for the O(fanout)
// memory claim at every depth.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/codec_spec.hpp"
#include "core/fl/coordinator.hpp"
#include "core/fl/trace.hpp"
#include "data/synthetic.hpp"

namespace {

using namespace fedsz;

struct HierarchyRun {
  double virtual_seconds = 0.0;
  double final_accuracy = 0.0;
  std::size_t uplink_bytes = 0;      // client->edge traffic (all rounds)
  std::size_t root_bytes = 0;        // TOP tier->root (hier) or uplink (flat)
  std::size_t backhaul_bytes = 0;    // merged partials, every tier
  double backhaul_ratio = 0.0;       // raw/compressed over the partials
  std::size_t edges = 0;             // partials shipped per round, all tiers
  std::size_t peak_nodes = 0;        // entries in peak_decoded_per_node
  std::size_t max_peak = 0;          // worst node's live decoded payloads
};

HierarchyRun run_hierarchy(std::size_t clients,
                           const std::vector<std::size_t>& tiers,
                           const std::string& backhaul_spec, int rounds,
                           std::size_t samples_per_client,
                           std::size_t threads, double bandwidth_mbps,
                           std::uint64_t seed, core::UpdateCodecPtr codec,
                           core::FlRunResult* full_result = nullptr) {
  nn::ModelConfig model;
  model.arch = "mobilenet_v2";
  model.scale = nn::ModelScale::kTiny;
  auto [train, test] = data::make_dataset("cifar10");
  core::FlRunConfig config;
  config.clients = clients;
  config.rounds = rounds;
  config.eval_limit = 32;
  config.threads = threads;
  config.seed = seed;
  config.network.bandwidth_mbps = bandwidth_mbps;
  config.client.batch_size = 1;
  config.evaluate_every_round = false;
  if (!tiers.empty()) {
    config.topology.mode = core::TopologyMode::kHier;
    config.topology.tiers = tiers;
    config.topology.backhaul_spec = backhaul_spec;
    // Per-edge backhaul links from the two_tier distribution: a quarter of
    // the edges sit on datacenter fiber, the rest on metro uplinks.
    net::HeterogeneousNetworkConfig backhaul;
    backhaul.distribution = net::LinkDistribution::kTwoTier;
    backhaul.two_tier_fast_fraction = 0.25;
    backhaul.two_tier_fast_mbps = 1000.0;
    backhaul.two_tier_slow_mbps = 100.0;
    backhaul.seed = seed ^ 0xBAC4AA1ull;
    config.topology.backhaul_heterogeneous = backhaul;
  }
  core::FlCoordinator coordinator(
      model, data::take(train, clients * samples_per_client),
      data::take(test, 32), config, std::move(codec));
  core::FlRunResult result = coordinator.run();

  HierarchyRun out;
  out.virtual_seconds = result.total_virtual_seconds;
  out.final_accuracy = result.final_accuracy;
  out.peak_nodes = result.peak_decoded_per_node.size();
  for (const std::size_t p : result.peak_decoded_per_node)
    out.max_peak = std::max(out.max_peak, p);
  std::size_t backhaul_raw = 0;
  for (const core::RoundRecord& record : result.rounds) {
    out.uplink_bytes += record.bytes_sent;
    out.edges = std::max(out.edges, record.edges.size());
    if (!tiers.empty()) {
      // Only the TOP tier's partials land on the root link; lower tiers
      // terminate at interior parents.
      out.root_bytes += record.backhaul_tier_bytes.back();
      out.backhaul_bytes += record.backhaul_bytes;
      backhaul_raw += record.backhaul_raw_bytes;
    } else {
      out.root_bytes += record.bytes_sent;  // flat: clients hit the root
      out.backhaul_bytes += record.bytes_sent;
    }
  }
  out.backhaul_ratio =
      out.backhaul_bytes > 0 && !tiers.empty()
          ? static_cast<double>(backhaul_raw) /
                static_cast<double>(out.backhaul_bytes)
          : 1.0;
  if (full_result) *full_result = std::move(result);
  return out;
}

std::string tiers_label(const std::vector<std::size_t>& tiers) {
  if (tiers.empty()) return "flat";
  std::string label = "hier:";
  for (std::size_t l = 0; l < tiers.size(); ++l)
    label += (l ? "x" : "") + std::to_string(tiers[l]);
  return label;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fedsz;
  const benchx::BenchOptions options = benchx::parse_bench_options(argc, argv);
  const bool full = benchx::full_grid() && !options.smoke;
  const std::uint64_t seed = options.seed_or(42);
  const std::size_t threads = options.threads_or(4);
  const double mbps =
      options.bandwidth_mbps > 0.0 ? options.bandwidth_mbps : 10.0;
  const int rounds = options.rounds > 0 ? options.rounds : 1;
  auto uplink_codec = [&] {
    return options.codec.empty() ? core::make_fedsz_codec()
                                 : core::make_codec(options.codec);
  };
  benchx::JsonValue json = benchx::JsonValue::object();
  json.set("bench", "hierarchy")
      .set("bandwidth_mbps", mbps)
      .set("rounds", rounds)
      .set("smoke", options.smoke)
      .set("codec", options.codec.empty() ? "fedsz" : options.codec);

  std::printf(
      "Hierarchical topology: sharded edge aggregation vs the flat star\n"
      "(tiny MobileNet-V2, per-edge two_tier backhaul, slow tier @ 100 "
      "Mbps)\n\n");

  bool peak_ok = true;
  benchx::JsonValue runs = benchx::JsonValue::array();
  benchx::Table table({"Clients", "Topology", "Backhaul", "Edges",
                       "Uplink bytes", "Root ingress", "Max peak/node",
                       "Virtual (s)"});
  core::FlRunResult traced;  // the last grid entry's full result (--trace)
  auto record_run = [&](std::size_t clients,
                        const std::vector<std::size_t>& tiers,
                        const std::string& backhaul,
                        std::size_t samples_per_client) {
    const HierarchyRun run = run_hierarchy(
        clients, tiers, backhaul, rounds, samples_per_client, threads, mbps,
        seed, uplink_codec(),
        options.trace_path.empty() ? nullptr : &traced);
    // Streaming keeps every aggregation point at one live decoded payload,
    // so the worst tier's fan-in bounds every node with room to spare.
    const std::size_t bound =
        tiers.empty() ? clients
                      : *std::max_element(tiers.begin(), tiers.end());
    if (run.max_peak > bound) peak_ok = false;
    table.add_row({std::to_string(clients), tiers_label(tiers),
                   backhaul.empty() ? "identity" : backhaul,
                   std::to_string(run.edges),
                   benchx::fmt_bytes(run.uplink_bytes),
                   benchx::fmt_bytes(run.root_bytes),
                   std::to_string(run.max_peak),
                   benchx::fmt(run.virtual_seconds, 2)});
    // Unique per grid entry — compare_baselines.py matches runs by name.
    const std::string run_name = std::to_string(clients) + "c/" +
                                 tiers_label(tiers) + "/" +
                                 (backhaul.empty() ? "identity" : backhaul);
    runs.push(benchx::JsonValue::object()
                  .set("name", run_name)
                  .set("clients", clients)
                  .set("topology", tiers_label(tiers))
                  .set("backhaul", backhaul.empty() ? "identity" : backhaul)
                  .set("edges", run.edges)
                  .set("uplink_bytes", run.uplink_bytes)
                  .set("root_ingress_bytes", run.root_bytes)
                  .set("backhaul_bytes", run.backhaul_bytes)
                  .set("backhaul_ratio", run.backhaul_ratio)
                  .set("max_peak_decoded_per_node", run.max_peak)
                  .set("peak_nodes", run.peak_nodes)
                  .set("virtual_seconds", run.virtual_seconds)
                  .set("final_accuracy", run.final_accuracy));
    return run;
  };

  if (options.smoke) {
    // The CI guard: one 1024-client fanout-32 round, then the same
    // population through a depth-2 32x8 tree. Root ingress must telescope
    // (O(edges), then O(tier-2 nodes)) and no aggregation point may ever
    // hold more than its fan-in's worth of decoded updates.
    const std::size_t clients = options.clients > 0 ? options.clients : 1024;
    record_run(clients, {32}, "fedsz:eb=rel:1e-3", /*samples_per_client=*/1);
    record_run(clients, {32, 8}, "fedsz:eb=rel:1e-3",
               /*samples_per_client=*/1);
  } else {
    const std::vector<std::size_t> populations =
        full ? std::vector<std::size_t>{256, 1024}
             : std::vector<std::size_t>{32, 128};
    const std::vector<std::size_t> fanouts =
        full ? std::vector<std::size_t>{16, 32, 64}
             : std::vector<std::size_t>{4, 16};
    const std::size_t samples = full ? 4 : 2;
    for (const std::size_t clients : populations) {
      record_run(clients, {}, "", samples);  // flat reference
      for (const std::size_t fanout : fanouts) {
        if (fanout >= clients) continue;
        record_run(clients, {fanout}, "", samples);
      }
    }
    const std::size_t clients = populations.back();
    const std::size_t fanout = fanouts.back();
    // Depth-2 panel at the largest population: grouping the tier-1 edges
    // under a second tier telescopes root ingress a second time.
    const std::vector<std::size_t> depth2 =
        full ? std::vector<std::size_t>{32, 8}
             : std::vector<std::size_t>{8, 4};
    record_run(clients, depth2, "", samples);
    record_run(clients, depth2, "fedsz:eb=rel:1e-3", samples);
    // Backhaul-bound sweep at a fixed one-tier shape: lossy partial
    // re-encoding shrinks the root link a second time, and the sparse
    // backhaul races the SZ bounds on the same tree.
    for (const char* backhaul :
         {"fedsz:eb=rel:1e-3", "fedsz:eb=rel:1e-2",
          "sparse:eb=rel:1e-2,sparsity=0.9,bits=8"})
      record_run(clients, {fanout}, backhaul, samples);
  }
  table.print();
  json.set("runs", std::move(runs));
  json.set("peak_bound_ok", peak_ok);

  std::printf(
      "\nShape to check: root ingress shrinks from O(clients) updates to\n"
      "O(edges) partials the moment the topology goes hierarchical, and a\n"
      "lossy backhaul bound shrinks it again; 'Max peak/node' stays at 1 —\n"
      "every aggregation point streams, so memory is O(1) per node and\n"
      "O(fanout) is a loose upper bound.\n");

  if (!options.json_path.empty()) {
    benchx::write_json(options.json_path, json);
    std::printf("\nwrote %s\n", options.json_path.c_str());
  }
  if (!options.trace_path.empty()) {
    core::write_trace(options.trace_path, traced);
    std::printf("\nwrote %s\n", options.trace_path.c_str());
  }
  if (!peak_ok) {
    std::fprintf(stderr,
                 "FAIL: a node exceeded the O(fanout) decoded-update bound\n");
    return 1;
  }
  return 0;
}

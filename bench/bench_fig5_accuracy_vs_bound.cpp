// Figure 5: inference accuracy across models and datasets while varying the
// FedSZ relative error bound from 1e-5 to 1e-1 (log sweep), against the
// uncompressed baseline. The paper's claim: accuracy holds to within ~0.5%
// for bounds <= 1e-2, then falls off a cliff.
//
// Default: three models on CIFAR-10 (FEDSZ_BENCH_FULL=1 for all datasets).
#include <cstdio>

#include "common.hpp"
#include "core/fl/coordinator.hpp"
#include "data/synthetic.hpp"

namespace {

using namespace fedsz;

double final_accuracy(const std::string& arch, const std::string& dataset,
                      core::UpdateCodecPtr codec) {
  const data::SyntheticSpec spec = data::dataset_spec(dataset);
  nn::ModelConfig model;
  model.arch = arch;
  model.scale = nn::ModelScale::kTiny;
  model.in_channels = spec.channels;
  model.image_size = spec.image_size;
  model.num_classes = spec.classes;
  auto [train, test] = data::make_dataset(dataset);
  core::FlRunConfig config;
  config.clients = 4;
  config.rounds = 4;
  config.eval_limit = 192;
  config.threads = 4;
  config.client.batch_size = 16;
  // AlexNet (no BatchNorm) diverges at the BN models' rate.
  config.client.sgd.learning_rate = arch == "alexnet" ? 0.02f : 0.05f;
  config.seed = 7;
  config.evaluate_every_round = false;
  const std::size_t train_samples = spec.image_size >= 64 ? 256 : 512;
  core::FlCoordinator coordinator(model, data::take(train, train_samples),
                                  data::take(test, 256), config,
                                  std::move(codec));
  return coordinator.run().final_accuracy;
}

}  // namespace

int main() {
  using namespace fedsz;
  const bool full = benchx::full_grid();
  const std::vector<std::string> datasets =
      full ? data::dataset_names() : std::vector<std::string>{"cifar10"};
  const double bounds[] = {1e-5, 1e-4, 1e-3, 1e-2, 1e-1};
  std::printf(
      "Figure 5: Top-1 accuracy vs FedSZ REL error bound (FedAvg, 4\n"
      "clients, 4 rounds)%s\n\n",
      full ? "" : " — set FEDSZ_BENCH_FULL=1 for all datasets");

  for (const std::string& dataset : datasets) {
    std::printf("Dataset: %s\n", dataset.c_str());
    benchx::Table table({"Model", "1e-5", "1e-4", "1e-3", "1e-2", "1e-1",
                         "Uncompressed"});
    for (const std::string& arch : nn::model_architectures()) {
      std::vector<std::string> row{nn::model_display_name(arch)};
      for (const double rel : bounds) {
        core::FedSzConfig fc;
        fc.bound = lossy::ErrorBound::relative(rel);
        row.push_back(benchx::fmt(
            final_accuracy(arch, dataset, core::make_fedsz_codec(fc)) * 100.0,
            1));
      }
      row.push_back(benchx::fmt(
          final_accuracy(arch, dataset, core::make_identity_codec()) * 100.0,
          1));
      table.add_row(std::move(row));
    }
    table.print();
    std::printf("\n");
  }
  std::printf(
      "Shape to check (paper Fig. 5): accuracy flat and within noise of the\n"
      "uncompressed column up to 1e-2, degrading at 1e-1.\n");
  return 0;
}

// Figure 5 (policy-sweep edition): final inference accuracy across update
// codec specs — the paper's REL error-bound sweep (1e-5..1e-1) plus the
// policy-driven variants (layerwise, schedule, magnitude) — against the
// uncompressed baseline. Every codec is constructed from a spec string via
// the codec_spec grammar (parse_codec_spec + make_codec), so the sweep doubles as an end-to-end exercise of the
// spec grammar. The paper's claim: accuracy holds to within ~0.5% for
// bounds <= 1e-2, then falls off a cliff at 1e-1.
//
//   bench_fig5_accuracy_vs_bound [--clients N] [--rounds N] [--json PATH]
//                                [--smoke]
//
// Default: three models on CIFAR-10 (FEDSZ_BENCH_FULL=1 for all datasets);
// --smoke shrinks to one model and three specs for CI.
#include <cstdio>

#include "common.hpp"
#include "core/codec_spec.hpp"
#include "core/fl/coordinator.hpp"
#include "data/synthetic.hpp"

namespace {

using namespace fedsz;

struct SweepResult {
  double accuracy = 0.0;
  std::size_t bytes_sent = 0;
  std::size_t raw_bytes = 0;
  double mean_bound = 0.0;  // mean trace bound over all folded updates
};

SweepResult run_spec(const std::string& arch, const std::string& dataset,
                     const std::string& spec,
                     const benchx::BenchOptions& options) {
  const data::SyntheticSpec data_spec = data::dataset_spec(dataset);
  nn::ModelConfig model;
  model.arch = arch;
  model.scale = nn::ModelScale::kTiny;
  model.in_channels = data_spec.channels;
  model.image_size = data_spec.image_size;
  model.num_classes = data_spec.classes;
  auto [train, test] = data::make_dataset(dataset);
  core::FlRunConfig config;
  config.clients = options.clients > 0 ? options.clients : 4;
  config.rounds = options.rounds > 0 ? options.rounds : (options.smoke ? 2 : 4);
  config.eval_limit = options.smoke ? 96 : 192;
  config.threads = options.threads_or(4);
  config.client.batch_size = 16;
  // AlexNet (no BatchNorm) diverges at the BN models' rate.
  config.client.sgd.learning_rate = arch == "alexnet" ? 0.02f : 0.05f;
  config.seed = options.seed_or(7);
  config.evaluate_every_round = false;
  const std::size_t train_samples =
      options.smoke ? 128 : (data_spec.image_size >= 64 ? 256 : 512);
  // Parse the spec once so comm-level keys (downlink=/downmode=/ef=) in a
  // --codec override configure the run instead of being dropped.
  const core::CodecSpec parsed = core::parse_codec_spec(spec);
  config.apply_comm_spec(parsed);
  core::FlCoordinator coordinator(model, data::take(train, train_samples),
                                  data::take(test, options.smoke ? 128 : 256),
                                  config, core::make_codec(parsed));
  const core::FlRunResult result = coordinator.run();
  SweepResult out;
  out.accuracy = result.final_accuracy;
  double bound_sum = 0.0;
  std::size_t folded = 0;
  for (const core::RoundRecord& record : result.rounds) {
    out.bytes_sent += record.bytes_sent;
    out.raw_bytes += record.raw_bytes;
    for (const core::ClientTraceEntry& entry : record.clients) {
      bound_sum += entry.bound_value;
      ++folded;
    }
  }
  out.mean_bound = folded > 0 ? bound_sum / static_cast<double>(folded) : 0.0;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fedsz;
  const benchx::BenchOptions options = benchx::parse_bench_options(argc, argv);
  const bool full = benchx::full_grid() && !options.smoke;
  const std::vector<std::string> datasets =
      full ? data::dataset_names() : std::vector<std::string>{"cifar10"};
  const std::vector<std::string> archs =
      options.smoke ? std::vector<std::string>{"mobilenet_v2"}
                    : nn::model_architectures();
  // Spec strings, label -> spec: the paper's bound sweep plus the policy
  // variants at the paper's default 1e-2 base bound.
  struct SpecEntry {
    std::string label;
    std::string spec;
  };
  std::vector<SpecEntry> specs;
  if (options.smoke) {
    specs = {{"1e-3", "fedsz:eb=rel:1e-3"},
             {"schedule", "fedsz:policy=schedule:0.5"},
             {"sparse+ef", "sparse:eb=rel:1e-2,sparsity=0.9,bits=8,ef=on"},
             {"raw", "identity"}};
  } else {
    specs = {{"1e-5", "fedsz:eb=rel:1e-5"},
             {"1e-4", "fedsz:eb=rel:1e-4"},
             {"1e-3", "fedsz:eb=rel:1e-3"},
             {"1e-2", "fedsz:eb=rel:1e-2"},
             {"1e-1", "fedsz:eb=rel:1e-1"},
             {"layerwise", "fedsz:policy=layerwise"},
             {"schedule", "fedsz:policy=schedule:0.5"},
             {"magnitude", "fedsz:policy=magnitude"},
             {"sparse", "sparse:eb=rel:1e-2,sparsity=0.9,bits=8"},
             {"sparse+ef", "sparse:eb=rel:1e-2,sparsity=0.9,bits=8,ef=on"},
             {"gradaware+ef",
              "sparse:eb=rel:1e-2,sparsity=0.9,bits=8,policy=gradaware:0.5,"
              "ef=on"},
             {"raw", "identity"}};
  }

  std::printf(
      "Figure 5: Top-1 accuracy vs update-codec spec (FedAvg, %s clients)\n"
      "specs are codec_spec grammar strings; policy columns use the 1e-2 "
      "base bound%s\n\n",
      options.clients > 0 ? std::to_string(options.clients).c_str() : "4",
      full ? "" : " — set FEDSZ_BENCH_FULL=1 for all datasets");

  benchx::JsonValue json = benchx::JsonValue::object();
  json.set("bench", "fig5_accuracy_vs_bound").set("smoke", options.smoke);
  benchx::JsonValue runs_json = benchx::JsonValue::array();
  for (const std::string& dataset : datasets) {
    std::printf("Dataset: %s\n", dataset.c_str());
    std::vector<std::string> headers{"Model"};
    for (const SpecEntry& entry : specs) headers.push_back(entry.label);
    benchx::Table table(std::move(headers));
    for (const std::string& arch : archs) {
      std::vector<std::string> row{nn::model_display_name(arch)};
      for (const SpecEntry& entry : specs) {
        const SweepResult result =
            run_spec(arch, dataset, entry.spec, options);
        row.push_back(benchx::fmt(result.accuracy * 100.0, 1));
        runs_json.push(benchx::JsonValue::object()
                           .set("dataset", dataset)
                           .set("arch", arch)
                           .set("label", entry.label)
                           .set("spec", entry.spec)
                           .set("accuracy", result.accuracy)
                           .set("bytes_sent", result.bytes_sent)
                           .set("raw_bytes", result.raw_bytes)
                           .set("mean_bound", result.mean_bound));
      }
      table.add_row(std::move(row));
    }
    table.print();
    std::printf("\n");
  }
  json.set("runs", std::move(runs_json));

  std::printf(
      "Shape to check (paper Fig. 5): accuracy flat and within noise of the\n"
      "raw column up to 1e-2, degrading at 1e-1; the policy columns track\n"
      "the 1e-2 column while shipping fewer bytes early (schedule) or\n"
      "per-layer-tuned bounds (layerwise/magnitude); the sparse columns\n"
      "trade a small accuracy dip (recovered by ef=on over rounds) for a\n"
      "strictly higher compression ratio than any SZ column.\n");
  if (!options.json_path.empty()) {
    benchx::write_json(options.json_path, json);
    std::printf("\nwrote %s\n", options.json_path.c_str());
  }
  return 0;
}

// Client-population bench: device-class mixes and diurnal availability
// driving per-round eligibility on the virtual clock, swept against the
// codec and topology axes. Each grid entry runs a short campaign with a
// population= preset (or none) over the flat star and a sharded tree and
// reports the virtual-clock-deterministic counters: uplink bytes, summed
// eligible/ineligible/participant counts, and virtual time.
//
//   bench_population [--clients N] [--rounds N] [--bandwidth MBPS]
//                    [--codec SPEC] [--seed N] [--threads N] [--json PATH]
//                    [--trace PATH] [--out PATH] [--smoke]
//
// --trace writes the LAST grid entry's full campaign trace (every round,
// client delivery, and shipped partial) as JSON via core/fl/trace.hpp.
//
// --smoke runs a CI-sized grid and then replays one diurnal hierarchical
// entry at 1 and 4 worker threads, FAILING (exit 1) if any per-round
// eligible/ineligible/participant count or byte total differs — the CI
// guard that eligibility draws ride the deterministic virtual clock, not
// wall-clock thread interleaving. compare_baselines.py additionally gates
// the *_bytes and *_count metrics exactly against the committed baseline
// at bench/baselines/BENCH_population.json.
#include <cstdio>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/codec_spec.hpp"
#include "core/fl/coordinator.hpp"
#include "core/fl/population.hpp"
#include "core/fl/trace.hpp"
#include "data/synthetic.hpp"

namespace {

using namespace fedsz;

struct PopulationRun {
  double virtual_seconds = 0.0;
  double final_accuracy = 0.0;
  std::size_t uplink_bytes = 0;      // client->parent traffic (all rounds)
  std::size_t eligible_count = 0;    // summed over rounds
  std::size_t ineligible_count = 0;  // summed over rounds
  std::size_t participants_count = 0;
};

core::FlRunResult run_campaign(std::size_t clients,
                               const std::string& population_spec,
                               std::size_t fanout, int rounds,
                               std::size_t samples_per_client,
                               std::size_t threads, double bandwidth_mbps,
                               std::uint64_t seed, core::UpdateCodecPtr codec) {
  nn::ModelConfig model;
  model.arch = "mobilenet_v2";
  model.scale = nn::ModelScale::kTiny;
  auto [train, test] = data::make_dataset("cifar10");
  core::FlRunConfig config;
  config.clients = clients;
  config.rounds = rounds;
  config.eval_limit = 32;
  config.threads = threads;
  config.seed = seed;
  config.network.bandwidth_mbps = bandwidth_mbps;
  config.client.batch_size = 1;
  config.evaluate_every_round = false;
  if (!population_spec.empty())
    config.population = core::parse_population_spec(population_spec);
  if (fanout > 0) {
    config.topology.mode = core::TopologyMode::kHier;
    config.topology.tiers = {fanout};
    config.topology.backhaul_spec = "fedsz:eb=rel:1e-3";
  }
  core::FlCoordinator coordinator(
      model, data::take(train, clients * samples_per_client),
      data::take(test, 32), config, std::move(codec));
  return coordinator.run();
}

PopulationRun summarize(const core::FlRunResult& result) {
  PopulationRun out;
  out.virtual_seconds = result.total_virtual_seconds;
  out.final_accuracy = result.final_accuracy;
  for (const core::RoundRecord& record : result.rounds) {
    out.uplink_bytes += record.bytes_sent;
    out.eligible_count += record.eligible_clients;
    out.ineligible_count += record.ineligible_clients;
    out.participants_count += record.participants;
  }
  return out;
}

std::string topology_label(std::size_t fanout) {
  return fanout > 0 ? "hier:" + std::to_string(fanout) : "flat";
}

/// Per-round equality on every virtual-clock-deterministic counter. Any
/// mismatch means eligibility or delivery leaked wall-clock scheduling.
bool rounds_identical(const core::FlRunResult& a, const core::FlRunResult& b) {
  if (a.rounds.size() != b.rounds.size()) return false;
  for (std::size_t r = 0; r < a.rounds.size(); ++r) {
    const core::RoundRecord& x = a.rounds[r];
    const core::RoundRecord& y = b.rounds[r];
    if (x.eligible_clients != y.eligible_clients ||
        x.ineligible_clients != y.ineligible_clients ||
        x.participants != y.participants || x.bytes_sent != y.bytes_sent ||
        x.virtual_seconds != y.virtual_seconds)
      return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fedsz;
  const benchx::BenchOptions options = benchx::parse_bench_options(argc, argv);
  const bool full = benchx::full_grid() && !options.smoke;
  const std::uint64_t seed = options.seed_or(42);
  const std::size_t threads = options.threads_or(4);
  const double mbps =
      options.bandwidth_mbps > 0.0 ? options.bandwidth_mbps : 10.0;
  const int rounds = options.rounds > 0 ? options.rounds : 2;
  const std::size_t clients =
      options.clients > 0 ? options.clients : (full ? 64 : 24);
  auto uplink_codec = [&] {
    return options.codec.empty() ? core::make_fedsz_codec()
                                 : core::make_codec(options.codec);
  };
  benchx::JsonValue json = benchx::JsonValue::object();
  json.set("bench", "population")
      .set("bandwidth_mbps", mbps)
      .set("rounds", rounds)
      .set("clients", clients)
      .set("smoke", options.smoke)
      .set("codec", options.codec.empty() ? "fedsz" : options.codec);

  std::printf(
      "Client populations: device-class mixes and diurnal availability\n"
      "(tiny MobileNet-V2, %d round(s), %zu clients, population-owned "
      "links)\n\n",
      rounds, clients);

  benchx::JsonValue runs = benchx::JsonValue::array();
  benchx::Table table({"Population", "Topology", "Eligible", "Ineligible",
                       "Participants", "Uplink bytes", "Virtual (s)"});
  core::FlRunResult traced;  // the last grid entry's full result (--trace)
  auto record_run = [&](const std::string& population, std::size_t fanout) {
    core::FlRunResult result =
        run_campaign(clients, population, fanout, rounds,
                     /*samples_per_client=*/2, threads, mbps, seed,
                     uplink_codec());
    const PopulationRun run = summarize(result);
    const std::string pop_label = population.empty() ? "none" : population;
    table.add_row({pop_label, topology_label(fanout),
                   std::to_string(run.eligible_count),
                   std::to_string(run.ineligible_count),
                   std::to_string(run.participants_count),
                   benchx::fmt_bytes(run.uplink_bytes),
                   benchx::fmt(run.virtual_seconds, 2)});
    // Unique per grid entry — compare_baselines.py matches runs by name.
    runs.push(benchx::JsonValue::object()
                  .set("name", pop_label + "/" + topology_label(fanout))
                  .set("population", pop_label)
                  .set("topology", topology_label(fanout))
                  .set("eligible_count", run.eligible_count)
                  .set("ineligible_count", run.ineligible_count)
                  .set("participants_count", run.participants_count)
                  .set("uplink_bytes", run.uplink_bytes)
                  .set("virtual_seconds", run.virtual_seconds)
                  .set("final_accuracy", run.final_accuracy));
    if (!options.trace_path.empty()) traced = std::move(result);
  };

  const std::vector<std::string> populations =
      full ? std::vector<std::string>{"", "mixed:seed=7", "mobile:seed=7",
                                      "iot_fleet:seed=7",
                                      "mixed:period=30;jitter=0.5;seed=7",
                                      "mobile:avail=flat:0.6;seed=7"}
           : std::vector<std::string>{"", "mixed:seed=7",
                                      "iot_fleet:period=30;jitter=0.5;seed=7"};
  const std::vector<std::size_t> fanouts =
      full ? std::vector<std::size_t>{0, 8, 16} : std::vector<std::size_t>{0,
                                                                           4};
  for (const std::string& population : populations)
    for (const std::size_t fanout : fanouts) record_run(population, fanout);

  table.print();
  json.set("runs", std::move(runs));

  // Thread-count invariance guard: eligibility draws and mid-round delivery
  // ride the virtual clock, so a diurnal hierarchical campaign must produce
  // identical per-round counters at any worker-thread count.
  bool thread_invariant_ok = true;
  if (options.smoke) {
    const std::string guard_pop = "mixed:period=30;jitter=0.5;seed=7";
    const core::FlRunResult one =
        run_campaign(clients, guard_pop, 4, rounds, 2, /*threads=*/1, mbps,
                     seed, uplink_codec());
    const core::FlRunResult four =
        run_campaign(clients, guard_pop, 4, rounds, 2, /*threads=*/4, mbps,
                     seed, uplink_codec());
    thread_invariant_ok = rounds_identical(one, four);
    std::printf("\nthread-invariance guard (%s, hier:4, 1 vs 4 threads): %s\n",
                guard_pop.c_str(), thread_invariant_ok ? "ok" : "MISMATCH");
  }
  json.set("thread_invariant_ok", thread_invariant_ok);

  std::printf(
      "\nShape to check: 'none' keeps every client eligible every round;\n"
      "diurnal presets leave a seed-deterministic slice of the population\n"
      "offline (eligible + ineligible == clients each round), and the\n"
      "participant/byte counters shrink with them. All counts are virtual-\n"
      "clock deterministic — the committed baseline gates them exactly.\n");

  if (!options.json_path.empty()) {
    benchx::write_json(options.json_path, json);
    std::printf("\nwrote %s\n", options.json_path.c_str());
  }
  if (!options.trace_path.empty()) {
    core::write_trace(options.trace_path, traced);
    std::printf("\nwrote %s\n", options.trace_path.c_str());
  }
  if (!thread_invariant_ok) {
    std::fprintf(stderr,
                 "FAIL: eligibility/delivery counters changed with the "
                 "worker-thread count\n");
    return 1;
  }
  return 0;
}

// Figure 10: distribution of FedSZ decompression errors at large relative
// error bounds (0.5 / 0.1 / 0.05) — ASCII density histograms with
// maximum-likelihood Laplace and Normal fits and Kolmogorov-Smirnov
// goodness-of-fit, probing the paper's differential-privacy observation
// (Section VII-D).
#include <cstdio>

#include "common.hpp"
#include "core/dp_analysis.hpp"

int main() {
  using namespace fedsz;
  const StateDict trained = benchx::trained_state_dict("alexnet", "cifar10");
  const auto weights = benchx::lossy_partition_values(trained);
  const lossy::LossyCodec& sz2 = lossy::lossy_codec(lossy::LossyId::kSz2);
  std::printf(
      "Figure 10: decompression-error distribution of SZ2 on trained\n"
      "AlexNet weights (n=%zu)\n\n",
      weights.size());

  for (const double rel : {0.5, 0.1, 0.05}) {
    const Bytes blob = sz2.compress({weights.data(), weights.size()},
                                    lossy::ErrorBound::relative(rel));
    const auto back = sz2.decompress({blob.data(), blob.size()});
    const core::ErrorDistribution dist = core::analyze_errors(
        {weights.data(), weights.size()}, {back.data(), back.size()}, 41);
    std::printf("REL bound = %.2f\n", rel);
    double peak = 0.0;
    for (std::size_t i = 0; i < dist.histogram.counts.size(); ++i)
      peak = std::max(peak, dist.histogram.density(i));
    for (std::size_t i = 0; i < dist.histogram.counts.size(); ++i) {
      const double center = dist.histogram.lo +
                            (static_cast<double>(i) + 0.5) *
                                dist.histogram.bin_width();
      const int bar = peak > 0.0
          ? static_cast<int>(dist.histogram.density(i) / peak * 56.0) : 0;
      std::printf("%10.4f | %-56.*s\n", center, bar,
                  "########################################################");
    }
    std::printf(
        "  Laplace fit: mu=%.5f b=%.5f (KS=%.4f)\n"
        "  Normal fit:  mu=%.5f sigma=%.5f (KS=%.4f)\n"
        "  %s fits better\n\n",
        dist.laplace.mu, dist.laplace.b, dist.ks_laplace, dist.normal.mu,
        dist.normal.sigma, dist.ks_normal,
        dist.laplace_fits_better() ? "Laplace" : "Normal");
  }
  std::printf(
      "Shape to check (paper Fig. 10): errors are zero-centred and sharply\n"
      "peaked. At REL 0.5 nearly all weights quantize to the central bin, so\n"
      "the error inherits the Laplacian weight distribution (Laplace fit\n"
      "wins); at tighter bounds this implementation's per-bin uniform\n"
      "component flattens the peak — a partial reproduction recorded in\n"
      "EXPERIMENTS.md.\n");
  return 0;
}

// Figure 2: FL model parameters vs scientific simulation data — the paper
// contrasts spiky weight snippets against smooth MIRANDA slices. This bench
// quantifies the contrast: roughness (normalized total variation) and the
// SZ3 compression ratio of each snippet, plus short value series for visual
// inspection.
#include <cstdio>

#include "common.hpp"
#include "data/scientific.hpp"
#include "util/stats.hpp"

namespace {

void print_series(const char* label, std::span<const float> values) {
  std::printf("%-24s", label);
  for (std::size_t i = 0; i < std::min<std::size_t>(values.size(), 12); ++i)
    std::printf(" %7.3f", values[i]);
  std::printf(" ...\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fedsz;
  const benchx::BenchOptions options = benchx::parse_bench_options(argc, argv);
  std::printf(
      "Figure 2: FL model parameters vs scientific simulation data\n\n");
  const StateDict trained = benchx::trained_state_dict("alexnet", "cifar10");
  const auto weights = benchx::lossy_partition_values(trained);
  const auto field = data::smooth_field(weights.size(), options.seed_or(17));

  // Paper-style snippets: five 500-element windows of the weight stream and
  // smooth-field slices.
  const std::size_t offsets[] = {500, 59500, 200000 % weights.size(),
                                 weights.size() / 2, weights.size() - 600};
  const lossy::LossyCodec& sz3 = lossy::lossy_codec(lossy::LossyId::kSz3);
  const lossy::ErrorBound bound = lossy::ErrorBound::relative(1e-3);

  benchx::Table table({"Snippet", "Kind", "Roughness", "SZ3 CR @1e-3"});
  int index = 0;
  for (const std::size_t offset : offsets) {
    const std::size_t start = std::min(offset, weights.size() - 500);
    std::span<const float> snippet{weights.data() + start, 500};
    const Bytes blob = sz3.compress(snippet, bound);
    table.add_row({"weights[" + std::to_string(start) + ":+500]",
                   "FL parameters", benchx::fmt(stats::roughness(snippet), 4),
                   benchx::fmt(2000.0 / static_cast<double>(blob.size()), 2)});
    if (index == 0) print_series("weights snippet:", snippet);
    ++index;
  }
  for (int slice = 0; slice < 4; ++slice) {
    const std::size_t start = slice * (field.size() / 4);
    std::span<const float> snippet{field.data() + start, 500};
    const Bytes blob = sz3.compress(snippet, bound);
    table.add_row({"field[" + std::to_string(start) + ":+500]",
                   "scientific field",
                   benchx::fmt(stats::roughness(snippet), 4),
                   benchx::fmt(2000.0 / static_cast<double>(blob.size()), 2)});
    if (slice == 0) print_series("smooth field slice:", snippet);
  }
  std::printf("\n");
  table.print();
  std::printf(
      "\nShape to check: weight snippets are one to two orders of magnitude\n"
      "rougher than the smooth field and compress far worse at the same\n"
      "bound — the paper's motivation for characterizing EBLC on FL data.\n");
  return 0;
}

#include "common.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "core/fedsz.hpp"
#include "data/dataloader.hpp"
#include "data/synthetic.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "util/timer.hpp"

namespace fedsz::benchx {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void Table::print() const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());
  auto print_row = [&](const std::vector<std::string>& row) {
    std::printf("|");
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      std::printf(" %-*s |", static_cast<int>(widths[c]), cell.c_str());
    }
    std::printf("\n");
  };
  print_row(headers_);
  std::printf("|");
  for (const std::size_t w : widths) {
    for (std::size_t i = 0; i < w + 2; ++i) std::printf("-");
    std::printf("|");
  }
  std::printf("\n");
  for (const auto& row : rows_) print_row(row);
}

std::string fmt(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

std::string fmt_bytes(std::size_t bytes) {
  char buffer[64];
  if (bytes >= 1024 * 1024)
    std::snprintf(buffer, sizeof(buffer), "%.2fMB",
                  static_cast<double>(bytes) / (1024.0 * 1024.0));
  else if (bytes >= 1024)
    std::snprintf(buffer, sizeof(buffer), "%.1fKB",
                  static_cast<double>(bytes) / 1024.0);
  else
    std::snprintf(buffer, sizeof(buffer), "%zuB", bytes);
  return buffer;
}

bool full_grid() {
  const char* env = std::getenv("FEDSZ_BENCH_FULL");
  return env != nullptr && env[0] == '1';
}

namespace {

[[noreturn]] void usage_and_exit(const char* program, int code) {
  std::fprintf(
      code == 0 ? stdout : stderr,
      "usage: %s [--clients N] [--rounds N] [--bandwidth MBPS]\n"
      "          [--codec SPEC] [--seed N] [--threads N] [--json PATH]\n"
      "          [--trace PATH] [--out PATH] [--smoke] [--help]\n"
      "SPEC is a codec spec string (core/codec_spec.hpp): a family\n"
      "(identity, fedsz, fedsz-parallel) optionally followed by options,\n"
      "e.g. fedsz:lossy=sz3,eb=rel:1e-3,lossless=zstd,policy=schedule.\n"
      "Zero/omitted values keep the bench's defaults; --smoke shrinks the\n"
      "grid to a CI-sized run; --json also writes machine-readable output;\n"
      "--trace writes the last campaign's full per-round trace as JSON\n"
      "(campaign benches only); --out sends the console output to a file\n"
      "instead of stdout.\n",
      program);
  std::exit(code);
}

}  // namespace

BenchOptions parse_bench_options(int argc, char** argv) {
  BenchOptions options;
  const char* program = argc > 0 ? argv[0] : "bench";
  auto value_of = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "%s: missing value for %s\n", program, argv[i]);
      usage_and_exit(program, 2);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    char* end = nullptr;
    if (flag == "--help" || flag == "-h") {
      usage_and_exit(program, 0);
    } else if (flag == "--smoke") {
      options.smoke = true;
    } else if (flag == "--clients") {
      const char* value = value_of(i);
      options.clients = std::strtoul(value, &end, 10);
      if (end == value || *end != '\0' || options.clients == 0) {
        std::fprintf(stderr, "%s: --clients wants a positive integer\n",
                     program);
        usage_and_exit(program, 2);
      }
    } else if (flag == "--rounds") {
      const char* value = value_of(i);
      options.rounds = static_cast<int>(std::strtol(value, &end, 10));
      if (end == value || *end != '\0' || options.rounds <= 0) {
        std::fprintf(stderr, "%s: --rounds wants a positive integer\n",
                     program);
        usage_and_exit(program, 2);
      }
    } else if (flag == "--bandwidth") {
      const char* value = value_of(i);
      options.bandwidth_mbps = std::strtod(value, &end);
      if (end == value || *end != '\0' || !(options.bandwidth_mbps > 0.0)) {
        std::fprintf(stderr, "%s: --bandwidth wants a positive Mbps value\n",
                     program);
        usage_and_exit(program, 2);
      }
    } else if (flag == "--codec") {
      options.codec = value_of(i);
    } else if (flag == "--seed") {
      const char* value = value_of(i);
      options.seed = std::strtoull(value, &end, 10);
      // strtoull silently wraps a leading '-'; only bare digits are valid.
      if (end == value || *end != '\0' || value[0] == '-') {
        std::fprintf(stderr, "%s: --seed wants a non-negative integer\n",
                     program);
        usage_and_exit(program, 2);
      }
      options.has_seed = true;
    } else if (flag == "--threads") {
      const char* value = value_of(i);
      options.threads = std::strtoul(value, &end, 10);
      if (end == value || *end != '\0' || value[0] == '-' ||
          options.threads == 0) {
        std::fprintf(stderr, "%s: --threads wants a positive integer\n",
                     program);
        usage_and_exit(program, 2);
      }
    } else if (flag == "--json") {
      options.json_path = value_of(i);
    } else if (flag == "--trace") {
      options.trace_path = value_of(i);
    } else if (flag == "--out") {
      options.out_path = value_of(i);
    } else {
      std::fprintf(stderr, "%s: unknown flag '%s'\n", program, flag.c_str());
      usage_and_exit(program, 2);
    }
  }
  if (!options.out_path.empty()) {
    // Reopen stdout onto the file so every bench's printf-based tables land
    // there without each binary (or a CI step) redirecting the stream.
    if (!std::freopen(options.out_path.c_str(), "w", stdout)) {
      std::fprintf(stderr, "%s: --out cannot open '%s'\n", program,
                   options.out_path.c_str());
      std::exit(2);
    }
  }
  return options;
}

namespace {

std::filesystem::path cache_path(const std::string& arch,
                                 const std::string& dataset,
                                 nn::ModelScale scale, int epochs,
                                 std::size_t samples) {
  const char* scale_name = scale == nn::ModelScale::kTiny    ? "tiny"
                           : scale == nn::ModelScale::kBench ? "bench"
                                                             : "paper";
  // v2: per-architecture learning rates (AlexNet diverged at the v1 rate).
  return std::filesystem::path("bench_cache") /
         (arch + "_" + dataset + "_" + scale_name + "_" +
          std::to_string(epochs) + "e_" + std::to_string(samples) + "_v2.sd");
}

}  // namespace

StateDict trained_state_dict(const std::string& arch,
                             const std::string& dataset, nn::ModelScale scale,
                             int epochs, std::size_t samples) {
  const std::filesystem::path path =
      cache_path(arch, dataset, scale, epochs, samples);
  if (std::filesystem::exists(path)) {
    std::ifstream in(path, std::ios::binary);
    Bytes bytes((std::istreambuf_iterator<char>(in)),
                std::istreambuf_iterator<char>());
    return StateDict::deserialize({bytes.data(), bytes.size()});
  }

  const data::SyntheticSpec spec = data::dataset_spec(dataset);
  nn::ModelConfig config;
  config.arch = arch;
  config.scale = scale;
  config.in_channels = spec.channels;
  config.image_size = spec.image_size;
  config.num_classes = spec.classes;
  nn::BuiltModel built = nn::build_model(config);

  auto [train, test] = data::make_dataset(dataset);
  data::DataLoader loader(data::take(train, samples), 32, true, 17);
  // AlexNet (no BatchNorm) diverges at the BN models' rate.
  const float lr = arch == "alexnet" ? 0.015f : 0.03f;
  nn::Sgd optimizer(built.model.parameters(), {lr, 0.9f, 0.0f});
  for (int epoch = 0; epoch < epochs; ++epoch) {
    loader.reset();
    data::Batch batch;
    while (loader.next(batch)) {
      built.model.zero_grad();
      const Tensor logits = built.model.forward(batch.images, true);
      const nn::LossResult loss = nn::softmax_cross_entropy(
          logits, {batch.labels.data(), batch.labels.size()});
      built.model.backward(loss.grad_logits);
      optimizer.step();
    }
  }
  StateDict dict = built.model.state_dict();
  std::filesystem::create_directories(path.parent_path());
  const Bytes bytes = dict.serialize();
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  return dict;
}

std::vector<float> lossy_partition_values(const StateDict& dict,
                                          std::size_t threshold) {
  std::vector<float> values;
  for (const auto& [name, tensor] : dict)
    if (core::is_lossy_entry(name, tensor.numel(), threshold))
      values.insert(values.end(), tensor.data(),
                    tensor.data() + tensor.numel());
  return values;
}

Bytes lossless_partition_bytes(const StateDict& dict, std::size_t threshold) {
  StateDict partition;
  for (const auto& [name, tensor] : dict)
    if (!core::is_lossy_entry(name, tensor.numel(), threshold))
      partition.set(name, tensor);
  return partition.serialize();
}

CodecTiming measure_lossy(const lossy::LossyCodec& codec,
                          std::span<const float> data,
                          const lossy::ErrorBound& bound, int repetitions) {
  CodecTiming timing;
  timing.raw_bytes = data.size() * sizeof(float);
  Bytes compressed;
  double best_compress = 1e300, best_decompress = 1e300;
  for (int rep = 0; rep < repetitions; ++rep) {
    Timer timer;
    compressed = codec.compress(data, bound);
    best_compress = std::min(best_compress, timer.seconds());
    timer.reset();
    volatile std::size_t sink =
        codec.decompress({compressed.data(), compressed.size()}).size();
    (void)sink;
    best_decompress = std::min(best_decompress, timer.seconds());
  }
  timing.compress_seconds = best_compress;
  timing.decompress_seconds = best_decompress;
  timing.compressed_bytes = compressed.size();
  return timing;
}

CodecTiming measure_lossless(const lossless::LosslessCodec& codec,
                             ByteSpan data, int repetitions) {
  CodecTiming timing;
  timing.raw_bytes = data.size();
  Bytes compressed;
  double best_compress = 1e300, best_decompress = 1e300;
  for (int rep = 0; rep < repetitions; ++rep) {
    Timer timer;
    compressed = codec.compress(data);
    best_compress = std::min(best_compress, timer.seconds());
    timer.reset();
    volatile std::size_t sink =
        codec.decompress({compressed.data(), compressed.size()}).size();
    (void)sink;
    best_decompress = std::min(best_decompress, timer.seconds());
  }
  timing.compress_seconds = best_compress;
  timing.decompress_seconds = best_decompress;
  timing.compressed_bytes = compressed.size();
  return timing;
}

}  // namespace fedsz::benchx

// Table V: FedSZ compression ratios for every model x dataset combination at
// relative error bounds 1e-1 / 1e-2 / 1e-3 / 1e-4 — the full pipeline
// (Algorithm 1 partitioning + SZ2 + blosc-lz) applied to trained updates.
#include <cstdio>

#include "common.hpp"
#include "core/codec_spec.hpp"
#include "core/fedsz.hpp"
#include "data/synthetic.hpp"

int main(int argc, char** argv) {
  using namespace fedsz;
  const benchx::BenchOptions options = benchx::parse_bench_options(argc, argv);
  std::printf(
      "Table V: FedSZ compression ratios (SZ2 + blosc-lz full pipeline)\n\n");
  const double bounds[] = {1e-1, 1e-2, 1e-3, 1e-4};
  for (const std::string& dataset : data::dataset_names()) {
    const data::SyntheticSpec spec = data::dataset_spec(dataset);
    // Larger images train slower; shrink the calibration set accordingly.
    const std::size_t samples = spec.image_size >= 64 ? 192 : 768;
    std::printf("Dataset: %s\n", dataset.c_str());
    benchx::Table table({"Model", "REL 1e-1", "REL 1e-2", "REL 1e-3",
                         "REL 1e-4", "Sparse 1e-2"});
    for (const std::string& arch : nn::model_architectures()) {
      const StateDict trained = benchx::trained_state_dict(
          arch, dataset, nn::ModelScale::kBench, 1, samples);
      std::vector<std::string> row{nn::model_display_name(arch)};
      for (const double rel : bounds) {
        core::FedSzConfig config;
        config.bound = lossy::ErrorBound::relative(rel);
        config.parallelism = options.threads_or(1);
        core::CompressionStats stats;
        core::FedSz(config).compress(trained, &stats);
        row.push_back(benchx::fmt(stats.ratio(), 2) + "x");
      }
      // The sparse contender at the paper's default bound: top-10% survivors
      // quantized to 8-bit codes, same Algorithm-1 partitioning around it.
      core::FedSzConfig sparse_config = core::codec_spec_config(
          core::parse_codec_spec("sparse:eb=rel:1e-2,sparsity=0.9,bits=8"));
      sparse_config.parallelism = options.threads_or(1);
      core::CompressionStats sparse_stats;
      core::FedSz(sparse_config).compress(trained, &sparse_stats);
      row.push_back(benchx::fmt(sparse_stats.ratio(), 2) + "x");
      table.add_row(std::move(row));
    }
    table.print();
    std::printf("\n");
  }
  std::printf(
      "Paper reference (CIFAR-10): AlexNet 54.5/12.6/5.5/3.5x,\n"
      "MobileNetV2 11.1/5.4/3.2/1.9x, ResNet50 20.2/7.0/4.0/2.7x.\n"
      "Shape to check: ratios fall monotonically with the bound; the\n"
      "FC-dominated AlexNet compresses best, MobileNetV2 worst; the sparse\n"
      "column beats the REL 1e-2 column on every model.\n");
  return 0;
}

// Figure 7: total communication time (compression + transfer +
// decompression) for a client update over a simulated 10 Mbps network,
// sweeping the FedSZ relative error bound 1e-5..1e-2, against the
// uncompressed transfer — per model.
#include <cstdio>

#include "common.hpp"
#include "core/fedsz.hpp"
#include "net/bandwidth.hpp"
#include "util/timer.hpp"

int main() {
  using namespace fedsz;
  const net::SimulatedNetwork network({10.0, 0.0});
  std::printf(
      "Figure 7: total communication time over a 10 Mbps link vs REL bound\n"
      "(bench-scale trained models; time = t_C + transfer(S') + t_D)\n\n");
  const double bounds[] = {1e-5, 1e-4, 1e-3, 1e-2};
  for (const std::string& arch : nn::model_architectures()) {
    const StateDict trained = benchx::trained_state_dict(arch, "cifar10");
    const std::size_t raw_bytes = trained.serialize().size();
    const double uncompressed_seconds = network.transfer_seconds(raw_bytes);
    std::printf("Model: %s (update %s, uncompressed transfer %ss)\n",
                nn::model_display_name(arch).c_str(),
                benchx::fmt_bytes(raw_bytes).c_str(),
                benchx::fmt(uncompressed_seconds, 2).c_str());
    benchx::Table table({"REL bound", "CR", "FedSZ time (s)",
                         "Uncompressed (s)", "Speedup"});
    for (const double rel : bounds) {
      core::FedSzConfig config;
      config.bound = lossy::ErrorBound::relative(rel);
      const core::FedSz fedsz(config);
      core::CompressionStats stats;
      Timer timer;
      const Bytes blob = fedsz.compress(trained, &stats);
      const double compress_seconds = timer.seconds();
      double decompress_seconds = 0.0;
      fedsz.decompress({blob.data(), blob.size()}, &decompress_seconds);
      const net::CompressionDecision decision = net::evaluate_compression(
          raw_bytes, blob.size(), compress_seconds, decompress_seconds,
          network);
      table.add_row({benchx::fmt(rel, 5), benchx::fmt(stats.ratio(), 2),
                     benchx::fmt(decision.compressed_seconds, 3),
                     benchx::fmt(decision.uncompressed_seconds, 3),
                     benchx::fmt(decision.speedup(), 2) + "x"});
    }
    table.print();
    std::printf("\n");
  }
  std::printf(
      "Shape to check (paper Fig. 7): an order-of-magnitude reduction at\n"
      "every bound, growing as the bound loosens (paper: 13.26x for AlexNet\n"
      "at 1e-2 on 10 Mbps).\n");
  return 0;
}

// Figure 7: total communication time (compression + transfer +
// decompression) for a client update over a simulated 10 Mbps network,
// sweeping the FedSZ relative error bound 1e-5..1e-2, against the
// uncompressed transfer — per model. A second panel replays the Eqn (1)
// decision per client over a heterogeneous log-normal WAN, where
// compress-or-not genuinely differs link by link. A third panel models the
// BIDIRECTIONAL round trip: the global-model broadcast (encode + transfer +
// decode) now rides the same link before the uplink starts, compressed or
// raw.
//
//   bench_fig7_comm_time [--bandwidth MBPS] [--seed N] [--threads N]
//                        [--json PATH] [--smoke]
#include <cstdio>

#include "common.hpp"
#include "core/fedsz.hpp"
#include "net/bandwidth.hpp"
#include "net/heterogeneous.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace fedsz;
  const benchx::BenchOptions options = benchx::parse_bench_options(argc, argv);
  const double mbps =
      options.bandwidth_mbps > 0.0 ? options.bandwidth_mbps : 10.0;
  const net::SimulatedNetwork network({mbps, 0.0});
  benchx::JsonValue json = benchx::JsonValue::object();
  json.set("bench", "fig7_comm_time").set("bandwidth_mbps", mbps);
  benchx::JsonValue models_json = benchx::JsonValue::array();

  std::printf(
      "Figure 7: total communication time over a %.0f Mbps link vs REL "
      "bound\n(bench-scale trained models; time = t_C + transfer(S') + "
      "t_D)\n\n",
      mbps);
  const std::vector<double> bounds =
      options.smoke ? std::vector<double>{1e-2}
                    : std::vector<double>{1e-5, 1e-4, 1e-3, 1e-2};
  const std::vector<std::string> archs =
      options.smoke ? std::vector<std::string>{"alexnet"}
                    : nn::model_architectures();
  for (const std::string& arch : archs) {
    const StateDict trained = benchx::trained_state_dict(arch, "cifar10");
    const std::size_t raw_bytes = trained.serialize().size();
    const double uncompressed_seconds = network.transfer_seconds(raw_bytes);
    std::printf("Model: %s (update %s, uncompressed transfer %ss)\n",
                nn::model_display_name(arch).c_str(),
                benchx::fmt_bytes(raw_bytes).c_str(),
                benchx::fmt(uncompressed_seconds, 2).c_str());
    benchx::JsonValue model_json = benchx::JsonValue::object();
    model_json.set("arch", arch).set("raw_bytes", raw_bytes);
    benchx::JsonValue bounds_json = benchx::JsonValue::array();
    benchx::Table table({"REL bound", "CR", "FedSZ time (s)",
                         "Uncompressed (s)", "Speedup"});
    for (const double rel : bounds) {
      core::FedSzConfig config;
      config.bound = lossy::ErrorBound::relative(rel);
      config.parallelism = options.threads_or(1);
      const core::FedSz fedsz(config);
      core::CompressionStats stats;
      Timer timer;
      const Bytes blob = fedsz.compress(trained, &stats);
      const double compress_seconds = timer.seconds();
      core::CompressionStats decode_stats;
      fedsz.decompress({blob.data(), blob.size()}, &decode_stats);
      const net::CompressionDecision decision = net::evaluate_compression(
          raw_bytes, blob.size(), compress_seconds,
          decode_stats.decompress_seconds, network);
      table.add_row({benchx::fmt(rel, 5), benchx::fmt(stats.ratio(), 2),
                     benchx::fmt(decision.compressed_seconds, 3),
                     benchx::fmt(decision.uncompressed_seconds, 3),
                     benchx::fmt(decision.speedup(), 2) + "x"});
      bounds_json.push(benchx::JsonValue::object()
                           .set("rel_bound", rel)
                           .set("ratio", stats.ratio())
                           .set("fedsz_seconds", decision.compressed_seconds)
                           .set("uncompressed_seconds",
                                decision.uncompressed_seconds)
                           .set("worthwhile", decision.worthwhile));
    }
    table.print();
    std::printf("\n");
    model_json.set("bounds", std::move(bounds_json));
    models_json.push(std::move(model_json));
  }
  json.set("models", std::move(models_json));

  // Per-client Eqn (1) over a heterogeneous WAN: same AlexNet update and
  // codec timings, but every client faces its own drawn link, so the
  // compress-or-not verdict differs across the fleet.
  {
    const StateDict trained = benchx::trained_state_dict("alexnet", "cifar10");
    const std::size_t raw_bytes = trained.serialize().size();
    const core::FedSz fedsz(core::FedSzConfig{});
    core::CompressionStats stats;
    Timer timer;
    const Bytes blob = fedsz.compress(trained, &stats);
    const double compress_seconds = timer.seconds();
    core::CompressionStats decode_stats;
    fedsz.decompress({blob.data(), blob.size()}, &decode_stats);
    const double decompress_seconds = decode_stats.decompress_seconds;

    const std::size_t clients =
        options.clients > 0 ? options.clients : (options.smoke ? 4 : 8);
    net::HeterogeneousNetworkConfig links;
    links.distribution = net::LinkDistribution::kLogNormalWan;
    links.wan_median_mbps = mbps * 5.0;
    links.wan_log_sigma = 1.5;
    if (options.has_seed) links.seed = options.seed;
    const net::HeterogeneousNetwork wan(links, clients);
    std::printf(
        "Per-client Eqn (1) on a log-normal WAN (AlexNet @ REL 1e-2,\n"
        "median %.0f Mbps, sigma 1.5): compression pays only on slow "
        "links\n",
        links.wan_median_mbps);
    benchx::JsonValue clients_json = benchx::JsonValue::array();
    benchx::Table table({"Client", "Link (Mbps)", "FedSZ (s)", "Raw (s)",
                         "Compress?"});
    for (std::size_t i = 0; i < clients; ++i) {
      const net::CompressionDecision decision = net::evaluate_compression(
          raw_bytes, blob.size(), compress_seconds, decompress_seconds,
          wan.link(i));
      table.add_row(
          {std::to_string(i),
           benchx::fmt(wan.link(i).profile().bandwidth_mbps, 1),
           benchx::fmt(decision.compressed_seconds, 3),
           benchx::fmt(decision.uncompressed_seconds, 3),
           decision.worthwhile ? "yes" : "no"});
      clients_json.push(
          benchx::JsonValue::object()
              .set("client", i)
              .set("bandwidth_mbps", wan.link(i).profile().bandwidth_mbps)
              .set("fedsz_seconds", decision.compressed_seconds)
              .set("uncompressed_seconds", decision.uncompressed_seconds)
              .set("worthwhile", decision.worthwhile));
    }
    table.print();
    json.set("per_client_wan", std::move(clients_json));
  }

  // Bidirectional panel: the same AlexNet state rides the link TWICE per
  // round — global broadcast down, update up — so the honest per-round comm
  // time includes both legs. Compare a raw broadcast against routing the
  // broadcast through the same FedSZ path as the uplink.
  {
    const StateDict trained = benchx::trained_state_dict("alexnet", "cifar10");
    const std::size_t raw_bytes = trained.serialize().size();
    core::FedSzConfig config;
    config.parallelism = options.threads_or(1);
    const core::FedSz fedsz(config);
    core::CompressionStats stats;
    Timer timer;
    const Bytes blob = fedsz.compress(trained, &stats);
    const double compress_seconds = timer.seconds();
    core::CompressionStats decode_stats;
    fedsz.decompress({blob.data(), blob.size()}, &decode_stats);
    const double codec_seconds =
        compress_seconds + decode_stats.decompress_seconds;
    const double raw_transfer = network.transfer_seconds(raw_bytes);
    const double fedsz_transfer = network.transfer_seconds(blob.size());
    const double uplink_only = codec_seconds + fedsz_transfer;
    const double raw_downlink = raw_transfer + uplink_only;
    const double fedsz_downlink = codec_seconds + fedsz_transfer + uplink_only;
    std::printf(
        "\nBidirectional round trip (AlexNet @ REL 1e-2, %.0f Mbps):\n",
        mbps);
    benchx::Table table({"Comm model", "Down (s)", "Up (s)", "Total (s)"});
    table.add_row({"uplink only (paper)", "0.000",
                   benchx::fmt(uplink_only, 3), benchx::fmt(uplink_only, 3)});
    table.add_row({"raw broadcast", benchx::fmt(raw_transfer, 3),
                   benchx::fmt(uplink_only, 3),
                   benchx::fmt(raw_downlink, 3)});
    table.add_row({"FedSZ broadcast",
                   benchx::fmt(codec_seconds + fedsz_transfer, 3),
                   benchx::fmt(uplink_only, 3),
                   benchx::fmt(fedsz_downlink, 3)});
    table.print();
    json.set("bidirectional",
             benchx::JsonValue::object()
                 .set("uplink_only_seconds", uplink_only)
                 .set("raw_broadcast_total_seconds", raw_downlink)
                 .set("fedsz_broadcast_total_seconds", fedsz_downlink));
  }

  std::printf(
      "\nShape to check (paper Fig. 7): an order-of-magnitude reduction at\n"
      "every bound, growing as the bound loosens (paper: 13.26x for AlexNet\n"
      "at 1e-2 on 10 Mbps). In the bidirectional panel a raw broadcast\n"
      "roughly doubles round comm time; a compressed one nearly removes the\n"
      "gap.\n");
  if (!options.json_path.empty()) {
    benchx::write_json(options.json_path, json);
    std::printf("\nwrote %s\n", options.json_path.c_str());
  }
  return 0;
}

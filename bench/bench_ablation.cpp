// Ablations for the design choices called out in DESIGN.md §5:
//  1. Algorithm 1's partition rule vs lossy-compressing everything —
//     the justification for keeping BN statistics/metadata lossless.
//  2. blosc-lz byte-shuffle on/off — why shuffle+fast-LZ wins on floats.
//  3. Relative vs absolute error bounding — why REL adapts across layers
//     with different dynamic ranges (Section V-D1).
#include <cstdio>

#include "common.hpp"
#include "compress/lossless/lz77.hpp"
#include "core/fedsz.hpp"
#include "data/dataloader.hpp"
#include "data/synthetic.hpp"
#include "nn/metrics.hpp"
#include "util/stats.hpp"

namespace {

using namespace fedsz;

double evaluate(const std::string& arch, const StateDict& dict) {
  const data::SyntheticSpec spec = data::dataset_spec("cifar10");
  nn::ModelConfig config;
  config.arch = arch;
  config.scale = nn::ModelScale::kBench;
  config.in_channels = spec.channels;
  config.image_size = spec.image_size;
  config.num_classes = spec.classes;
  nn::BuiltModel built = nn::build_model(config);
  built.model.load_state_dict(dict);
  auto [train, test] = data::make_dataset("cifar10");
  const data::Batch batch = data::full_batch(*data::take(test, 256));
  const Tensor logits = built.model.forward(batch.images, false);
  return nn::top1_accuracy(logits,
                           {batch.labels.data(), batch.labels.size()});
}

StateDict lossy_roundtrip(const StateDict& dict, bool partitioned,
                          double rel) {
  const lossy::LossyCodec& sz2 = lossy::lossy_codec(lossy::LossyId::kSz2);
  StateDict out = dict;
  for (auto& [name, tensor] : out.entries_mutable()) {
    const bool compress_lossy =
        partitioned ? core::is_lossy_entry(name, tensor.numel(), 1000)
                    : tensor.numel() > 1;  // "lossy everything" ablation
    if (!compress_lossy) continue;
    const Bytes blob =
        sz2.compress(tensor.span(), lossy::ErrorBound::relative(rel));
    tensor = Tensor::from_data(tensor.shape(),
                               sz2.decompress({blob.data(), blob.size()}));
  }
  return out;
}

void ablation_partition_rule() {
  std::printf(
      "Ablation 1: Algorithm 1 partition rule vs lossy-everything\n"
      "(Top-1 after a lossy round trip of a trained MobileNet-V2 update —\n"
      " the BN-statistics-rich model where the rule matters most)\n\n");
  const StateDict trained =
      benchx::trained_state_dict("mobilenet_v2", "cifar10");
  benchx::Table table({"REL bound", "Partitioned (Algorithm 1)",
                       "Lossy everything"});
  for (const double rel : {1e-2, 5e-2, 1e-1}) {
    const double partitioned =
        evaluate("mobilenet_v2", lossy_roundtrip(trained, true, rel));
    const double everything =
        evaluate("mobilenet_v2", lossy_roundtrip(trained, false, rel));
    table.add_row({benchx::fmt(rel, 3),
                   benchx::fmt(partitioned * 100.0, 1) + "%",
                   benchx::fmt(everything * 100.0, 1) + "%"});
  }
  table.print();
  std::printf(
      "Expected: lossy-compressing BN running statistics and small tensors\n"
      "costs accuracy that the partitioned pipeline keeps (Section V-C).\n\n");
}

void ablation_shuffle() {
  std::printf(
      "Ablation 2: byte-shuffle inside the fast-LZ path (blosc-lz design)\n\n");
  const StateDict trained = benchx::trained_state_dict("alexnet", "cifar10");
  const Bytes metadata = benchx::lossless_partition_bytes(trained);
  // Shuffled vs raw bytes through the same zstd-like entropy/LZ stack, plus
  // the production blosc-lz codec (shuffle + LZ4-style tokens, no entropy).
  const auto& zstd = lossless::lossless_codec(lossless::LosslessId::kZstd);
  const auto& blosc = lossless::lossless_codec(lossless::LosslessId::kBloscLz);
  const Bytes padded(metadata.begin(),
                     metadata.begin() + metadata.size() / 4 * 4);
  const Bytes shuffled =
      lossless::shuffle_bytes({padded.data(), padded.size()}, 4);
  benchx::Table table({"Pipeline", "Compressed", "Ratio"});
  auto add = [&](const std::string& label, std::size_t compressed) {
    table.add_row({label, benchx::fmt_bytes(compressed),
                   benchx::fmt(static_cast<double>(padded.size()) /
                                   static_cast<double>(compressed),
                               3)});
  };
  add("zstd-like on raw bytes",
      zstd.compress({padded.data(), padded.size()}).size());
  add("zstd-like on shuffled bytes",
      zstd.compress({shuffled.data(), shuffled.size()}).size());
  add("blosc-lz (shuffle + fast LZ)",
      blosc.compress({padded.data(), padded.size()}).size());
  table.print();
  std::printf(
      "Expected: shuffling groups the similar high bytes of neighboring\n"
      "floats, lifting every back end — the Table II explanation for\n"
      "blosc-lz reaching xz-class ratios at >10x the speed.\n\n");
}

void ablation_rel_vs_abs() {
  std::printf(
      "Ablation 3: relative vs absolute error bounds (Section V-D1)\n"
      "(SZ2 on two layers of a trained AlexNet with different dynamic\n"
      " ranges; ABS bound fixed to 1e-2)\n\n");
  const StateDict trained = benchx::trained_state_dict("alexnet", "cifar10");
  const lossy::LossyCodec& sz2 = lossy::lossy_codec(lossy::LossyId::kSz2);
  benchx::Table table({"Tensor", "Range", "Mode", "CR", "Max error/range"});
  for (const auto& [name, tensor] : trained) {
    if (!core::is_lossy_entry(name, tensor.numel(), 1000)) continue;
    const double range = stats::summarize(tensor.span()).range();
    for (const bool relative : {true, false}) {
      const lossy::ErrorBound bound =
          relative ? lossy::ErrorBound::relative(1e-2)
                   : lossy::ErrorBound::absolute(1e-2);
      const Bytes blob = sz2.compress(tensor.span(), bound);
      const auto back = sz2.decompress({blob.data(), blob.size()});
      const double err =
          stats::max_abs_error(tensor.span(), {back.data(), back.size()});
      table.add_row({name, benchx::fmt(range, 3),
                     relative ? "REL 1e-2" : "ABS 1e-2",
                     benchx::fmt(static_cast<double>(tensor.numel() * 4) /
                                     static_cast<double>(blob.size()),
                                 2),
                     benchx::fmt(err / range, 4)});
    }
  }
  table.print();
  std::printf(
      "Expected: ABS over-compresses narrow-range layers (relative error\n"
      "blows past 1e-2 of range) and under-compresses wide ones; REL holds\n"
      "the normalized error constant across layers.\n");
}

}  // namespace

int main() {
  ablation_partition_rule();
  ablation_shuffle();
  ablation_rel_vs_abs();
  return 0;
}

// Shared utilities for the benchmark harness: fixed-width table printing in
// the paper's row/column layout, a common CLI (--clients/--rounds/
// --bandwidth/--codec/--json/--out/--smoke) with a machine-readable JSON
// emitter (util/json.hpp), codec timing helpers, and a disk cache of
// briefly-trained models so every bench binary measures compression on
// trained (spiky, zero-centred) weights without re-paying training time.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "compress/lossless/lossless.hpp"
#include "compress/lossy/lossy.hpp"
#include "nn/models.hpp"
#include "tensor/state_dict.hpp"
#include "util/json.hpp"

namespace fedsz::benchx {

/// Fixed-width console table. Columns are sized to the widest cell.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);
  void add_row(std::vector<std::string> cells);
  void print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

std::string fmt(double value, int precision = 3);
std::string fmt_bytes(std::size_t bytes);

/// True when FEDSZ_BENCH_FULL=1: run the paper's full grid instead of the
/// laptop-scale default subset.
bool full_grid();

// ---- shared bench CLI ----

/// Flags every bench binary understands. Zero / empty means "use the
/// bench's default"; --smoke shrinks the grid to a CI-sized run.
struct BenchOptions {
  std::size_t clients = 0;     // --clients N
  int rounds = 0;              // --rounds N
  double bandwidth_mbps = 0.0; // --bandwidth MBPS
  std::string codec;           // --codec SPEC (codec spec string)
  std::string json_path;       // --json PATH (write machine-readable output)
  /// --trace PATH: benches that run full federated campaigns write the
  /// last run's complete trace (core/fl/trace.hpp JSON: every round,
  /// client delivery, and shipped partial) to this file.
  std::string trace_path;
  /// --out PATH: the console output (tables and shape notes) goes to this
  /// file instead of stdout, so CI artifact steps don't shell-redirect.
  /// Applied inside parse_bench_options (stdout is reopened onto the
  /// file); exits(2) when the file cannot be opened.
  std::string out_path;
  bool smoke = false;          // --smoke
  /// --seed N: RNG seed for runs/networks/data draws. has_seed
  /// distinguishes an explicit 0 from "keep the bench's default".
  std::uint64_t seed = 0;
  bool has_seed = false;
  std::size_t threads = 0;     // --threads N (0 = bench default)

  /// The seed to use: the --seed value when given, else `fallback`.
  std::uint64_t seed_or(std::uint64_t fallback) const {
    return has_seed ? seed : fallback;
  }
  /// The thread count to use: the --threads value when given, else
  /// `fallback`.
  std::size_t threads_or(std::size_t fallback) const {
    return threads > 0 ? threads : fallback;
  }
};

/// Parse the shared flags. Prints usage and exits(2) on unknown flags or
/// malformed values; exits(0) on --help.
BenchOptions parse_bench_options(int argc, char** argv);

/// The JSON emitter now lives in the library (util/json.hpp) where it is
/// unit-tested; these aliases keep every bench's benchx::JsonValue spelling
/// working unchanged.
using util::JsonValue;
using util::write_json;

/// Train a bench-scale model for `epochs` passes over `samples` synthetic
/// samples and return its state dict. Results are cached under
/// ./bench_cache/ so repeated bench binaries do not retrain.
StateDict trained_state_dict(const std::string& arch,
                             const std::string& dataset,
                             nn::ModelScale scale = nn::ModelScale::kBench,
                             int epochs = 1, std::size_t samples = 768);

/// Concatenated float storage of every tensor routed to the lossy path by
/// Algorithm 1 (the payload the EBLC benchmarks compress).
std::vector<float> lossy_partition_values(const StateDict& dict,
                                          std::size_t threshold = 1000);

/// Serialized bytes of the lossless partition (the "metadata" payload of
/// Table II).
Bytes lossless_partition_bytes(const StateDict& dict,
                               std::size_t threshold = 1000);

struct CodecTiming {
  double compress_seconds = 0.0;
  double decompress_seconds = 0.0;
  std::size_t raw_bytes = 0;
  std::size_t compressed_bytes = 0;
  double ratio() const {
    return compressed_bytes ? static_cast<double>(raw_bytes) /
                                  static_cast<double>(compressed_bytes)
                            : 0.0;
  }
  /// Compression throughput over the raw payload, MB/s.
  double throughput_mb_s() const {
    return compress_seconds > 0.0
               ? static_cast<double>(raw_bytes) / 1e6 / compress_seconds
               : 0.0;
  }
};

CodecTiming measure_lossy(const lossy::LossyCodec& codec,
                          std::span<const float> data,
                          const lossy::ErrorBound& bound, int repetitions = 3);

CodecTiming measure_lossless(const lossless::LosslessCodec& codec,
                             ByteSpan data, int repetitions = 3);

/// Global operator-new calls so far in this process. Defined in
/// alloc_hook.cpp next to a counting replacement of the global allocator:
/// referencing this function links the hook into the binary, so deltas of
/// this counter around an encode measure its heap allocations exactly.
std::uint64_t allocation_count();

}  // namespace fedsz::benchx

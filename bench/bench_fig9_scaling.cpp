// Figure 9: weak and strong scaling of FedSZ vs uncompressed FedAvg on a
// simulated 10 Mbps network — the thread-pool analogue of the paper's
// MPI-rank-per-client runs on the Swing cluster.
//
//  Weak scaling:   one client per worker, workers 2..N (paper: ..128).
//  Strong scaling: a fixed population of clients, workers 2..N.
//
// Reported time per round = measured wall time (training + codec) plus the
// simulated serialized transfer time of all updates over the shared link.
#include <cstdio>
#include <thread>

#include "common.hpp"
#include "core/fl/coordinator.hpp"
#include "data/synthetic.hpp"

namespace {

using namespace fedsz;

double round_time(std::size_t clients, std::size_t threads,
                  core::UpdateCodecPtr codec, std::size_t samples_per_client) {
  nn::ModelConfig model;
  model.arch = "mobilenet_v2";
  model.scale = nn::ModelScale::kTiny;
  auto [train, test] = data::make_dataset("cifar10");
  core::FlRunConfig config;
  config.clients = clients;
  config.rounds = 1;
  config.eval_limit = 64;
  config.threads = threads;
  config.network.bandwidth_mbps = 10.0;
  config.client.batch_size = 16;
  config.evaluate_every_round = false;
  core::FlCoordinator coordinator(
      model, data::take(train, clients * samples_per_client),
      data::take(test, 64), config, std::move(codec));
  const core::FlRunResult result = coordinator.run();
  const core::RoundRecord& record = result.rounds[0];
  // Clients share the 10 Mbps uplink: transfers serialize.
  const double total_comm =
      record.comm_seconds * static_cast<double>(clients);
  return result.total_wall_seconds + total_comm;
}

}  // namespace

int main() {
  using namespace fedsz;
  const std::size_t hw = std::max(2u, std::thread::hardware_concurrency());
  const bool full = benchx::full_grid();
  const std::size_t max_workers = full ? 128 : std::min<std::size_t>(32, hw * 4);
  std::printf(
      "Figure 9: scaling of FedAvg with/without FedSZ @ 10 Mbps\n"
      "(tiny MobileNet-V2, %zu hardware threads%s)\n\n",
      static_cast<std::size_t>(hw),
      full ? "" : "; FEDSZ_BENCH_FULL=1 extends to 128 workers");

  std::printf("(a) Weak scaling: one client per worker, 64 samples each\n");
  benchx::Table weak({"Workers", "FedSZ round (s)", "Uncompressed round (s)",
                      "FedSZ advantage"});
  for (std::size_t workers = 2; workers <= max_workers; workers *= 2) {
    const double fedsz_time =
        round_time(workers, std::min(workers, hw),
                   core::make_fedsz_codec(), 64);
    const double raw_time = round_time(workers, std::min(workers, hw),
                                       core::make_identity_codec(), 64);
    weak.add_row({std::to_string(workers), benchx::fmt(fedsz_time, 2),
                  benchx::fmt(raw_time, 2),
                  benchx::fmt(raw_time / fedsz_time, 2) + "x"});
  }
  weak.print();

  std::printf(
      "\n(b) Strong scaling: %zu clients total, workers 2..%zu\n",
      full ? std::size_t{127} : std::size_t{16}, max_workers);
  const std::size_t population = full ? 127 : 16;
  benchx::Table strong({"Workers", "FedSZ round (s)",
                        "Uncompressed round (s)", "Speedup vs 2 workers"});
  double fedsz_base = 0.0;
  for (std::size_t workers = 2; workers <= std::min(max_workers, hw * 4);
       workers *= 2) {
    const double fedsz_time = round_time(population, std::min(workers, hw),
                                         core::make_fedsz_codec(), 16);
    const double raw_time = round_time(population, std::min(workers, hw),
                                       core::make_identity_codec(), 16);
    if (fedsz_base == 0.0) fedsz_base = fedsz_time;
    strong.add_row({std::to_string(workers), benchx::fmt(fedsz_time, 2),
                    benchx::fmt(raw_time, 2),
                    benchx::fmt(fedsz_base / fedsz_time, 2) + "x"});
  }
  strong.print();
  std::printf(
      "\nShape to check (paper Fig. 9): round time grows with client count\n"
      "(weak) and shrinks with workers (strong); the compressed runs stay\n"
      "well below uncompressed at 10 Mbps because transfers dominate.\n");
  return 0;
}

// Figure 9: weak and strong scaling of FedSZ vs uncompressed FedAvg on a
// simulated 10 Mbps network — run through the event-driven federation
// runtime (virtual clock + SyncScheduler), the thread-pool analogue of the
// paper's MPI-rank-per-client runs on the Swing cluster — plus a scheduler
// comparison (sync / sampled / buffered-async) over a two-tier
// heterogeneous network that only the event runtime can express.
//
//  Weak scaling:   one client per worker, workers 2..N (paper: ..128).
//  Strong scaling: a fixed population of clients, workers 2..N.
//
// Reported time per round = measured wall time (training + codec) plus the
// simulated serialized transfer time of all updates over the shared link
// (summed from the per-client trace).
//
//   bench_fig9_scaling [--clients N] [--rounds N] [--bandwidth MBPS]
//                      [--codec NAME] [--json PATH] [--smoke]
#include <cstdio>
#include <thread>

#include "common.hpp"
#include "core/codec_spec.hpp"
#include "core/fl/coordinator.hpp"
#include "core/fl/scheduler.hpp"
#include "data/synthetic.hpp"

namespace {

using namespace fedsz;

struct RunTimes {
  double round_seconds = 0.0;    // wall + serialized shared-link transfer
  double virtual_seconds = 0.0;  // event-runtime virtual clock
  double final_accuracy = 0.0;
  std::size_t bytes_sent = 0;
  std::size_t root_bytes = 0;  // what actually crosses the root's link
};

RunTimes run_federation(std::size_t clients, std::size_t threads, int rounds,
                        double bandwidth_mbps, core::UpdateCodecPtr codec,
                        std::size_t samples_per_client, std::uint64_t seed,
                        core::SchedulerPtr scheduler = nullptr,
                        bool two_tier = false, std::size_t hier_fanout = 0,
                        const std::string& backhaul_spec = "") {
  nn::ModelConfig model;
  model.arch = "mobilenet_v2";
  model.scale = nn::ModelScale::kTiny;
  auto [train, test] = data::make_dataset("cifar10");
  core::FlRunConfig config;
  config.clients = clients;
  config.rounds = rounds;
  config.eval_limit = 64;
  config.threads = threads;
  config.seed = seed;
  config.network.bandwidth_mbps = bandwidth_mbps;
  if (two_tier) {
    net::HeterogeneousNetworkConfig links;
    links.distribution = net::LinkDistribution::kTwoTier;
    links.two_tier_fast_fraction = 0.25;
    links.two_tier_fast_mbps = 1000.0;
    links.two_tier_slow_mbps = bandwidth_mbps;
    config.heterogeneous = links;
  }
  config.client.batch_size = 16;
  config.evaluate_every_round = false;
  if (hier_fanout > 0) {
    config.topology.mode = core::TopologyMode::kHier;
    config.topology.fanout = hier_fanout;
    config.topology.backhaul_spec = backhaul_spec;
  }
  core::FlCoordinator coordinator(
      model, data::take(train, clients * samples_per_client),
      data::take(test, 64), config, std::move(codec), std::move(scheduler));
  const core::FlRunResult result = coordinator.run();
  RunTimes times;
  times.virtual_seconds = result.total_virtual_seconds;
  times.final_accuracy = result.final_accuracy;
  // Clients share the uplink in the paper's setup: transfers serialize, so
  // charge the sum of per-client transfer times from the trace.
  double total_comm = 0.0;
  for (const core::RoundRecord& record : result.rounds) {
    times.bytes_sent += record.bytes_sent;
    times.root_bytes +=
        hier_fanout > 0 ? record.backhaul_bytes : record.bytes_sent;
    for (const core::ClientTraceEntry& entry : record.clients)
      total_comm += entry.transfer_seconds;
  }
  times.round_seconds =
      (result.total_wall_seconds + total_comm) /
      static_cast<double>(result.rounds.empty() ? 1
                                                : result.rounds.size());
  return times;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fedsz;
  const benchx::BenchOptions options = benchx::parse_bench_options(argc, argv);
  // --threads caps the worker sweep (and makes runs reproducible across
  // machines with different core counts).
  const std::size_t hw = options.threads_or(
      std::max<std::size_t>(2, std::thread::hardware_concurrency()));
  const std::uint64_t seed = options.seed_or(42);
  const bool full = benchx::full_grid() && !options.smoke;
  const double mbps =
      options.bandwidth_mbps > 0.0 ? options.bandwidth_mbps : 10.0;
  const int rounds = options.rounds > 0 ? options.rounds : 1;
  const std::size_t max_workers =
      options.smoke ? 4
                    : (full ? 128 : std::min<std::size_t>(32, hw * 4));
  auto fedsz_codec = [&] {
    return options.codec.empty() ? core::make_fedsz_codec()
                                 : core::make_codec(options.codec);
  };
  benchx::JsonValue json = benchx::JsonValue::object();
  json.set("bench", "fig9_scaling")
      .set("bandwidth_mbps", mbps)
      .set("rounds", rounds)
      .set("smoke", options.smoke)
      .set("codec", options.codec.empty() ? "fedsz" : options.codec);

  std::printf(
      "Figure 9: scaling of FedAvg with/without FedSZ @ %.0f Mbps\n"
      "(tiny MobileNet-V2, event-driven runtime, %zu hardware threads%s)\n\n",
      mbps, static_cast<std::size_t>(hw),
      full ? "" : "; FEDSZ_BENCH_FULL=1 extends to 128 workers");

  std::printf("(a) Weak scaling: one client per worker, 64 samples each\n");
  benchx::JsonValue weak_json = benchx::JsonValue::array();
  benchx::Table weak({"Workers", "FedSZ round (s)", "Uncompressed round (s)",
                      "FedSZ advantage"});
  const std::size_t weak_samples = options.smoke ? 16 : 64;
  for (std::size_t workers = 2; workers <= max_workers; workers *= 2) {
    const RunTimes fedsz_times =
        run_federation(workers, std::min(workers, hw), rounds, mbps,
                       fedsz_codec(), weak_samples, seed);
    const RunTimes raw_times =
        run_federation(workers, std::min(workers, hw), rounds, mbps,
                       core::make_identity_codec(), weak_samples, seed);
    weak.add_row({std::to_string(workers),
                  benchx::fmt(fedsz_times.round_seconds, 2),
                  benchx::fmt(raw_times.round_seconds, 2),
                  benchx::fmt(raw_times.round_seconds /
                                  fedsz_times.round_seconds,
                              2) +
                      "x"});
    weak_json.push(benchx::JsonValue::object()
                       .set("workers", workers)
                       .set("fedsz_round_s", fedsz_times.round_seconds)
                       .set("raw_round_s", raw_times.round_seconds)
                       .set("fedsz_bytes", fedsz_times.bytes_sent)
                       .set("raw_bytes", raw_times.bytes_sent));
  }
  weak.print();
  json.set("weak_scaling", std::move(weak_json));

  const std::size_t population =
      options.clients > 0 ? options.clients
                          : (options.smoke ? 8 : (full ? 127 : 16));
  std::printf("\n(b) Strong scaling: %zu clients total, workers 2..%zu\n",
              population, max_workers);
  benchx::JsonValue strong_json = benchx::JsonValue::array();
  benchx::Table strong({"Workers", "FedSZ round (s)",
                        "Uncompressed round (s)", "Speedup vs 2 workers"});
  const std::size_t strong_samples = options.smoke ? 8 : 16;
  double fedsz_base = 0.0;
  for (std::size_t workers = 2; workers <= std::min(max_workers, hw * 4);
       workers *= 2) {
    const RunTimes fedsz_times =
        run_federation(population, std::min(workers, hw), rounds, mbps,
                       fedsz_codec(), strong_samples, seed);
    const RunTimes raw_times =
        run_federation(population, std::min(workers, hw), rounds, mbps,
                       core::make_identity_codec(), strong_samples, seed);
    if (fedsz_base == 0.0) fedsz_base = fedsz_times.round_seconds;
    strong.add_row({std::to_string(workers),
                    benchx::fmt(fedsz_times.round_seconds, 2),
                    benchx::fmt(raw_times.round_seconds, 2),
                    benchx::fmt(fedsz_base / fedsz_times.round_seconds, 2) +
                        "x"});
    strong_json.push(benchx::JsonValue::object()
                         .set("workers", workers)
                         .set("fedsz_round_s", fedsz_times.round_seconds)
                         .set("raw_round_s", raw_times.round_seconds));
  }
  strong.print();
  json.set("strong_scaling", std::move(strong_json));

  std::printf(
      "\n(c) Schedulers over a two-tier network (%zu clients, 25%% fast "
      "tier,\n    slow tier @ %.0f Mbps, FedSZ): virtual time to %d "
      "aggregation(s)\n",
      population, mbps, rounds);
  benchx::JsonValue sched_json = benchx::JsonValue::array();
  benchx::Table sched({"Scheduler", "Virtual time (s)", "Bytes",
                       "Final accuracy"});
  struct Policy {
    const char* label;
    core::SchedulerPtr scheduler;
  };
  const std::size_t buffer =
      std::max<std::size_t>(1, population / 4);
  const Policy policies[] = {
      {"sync", core::make_sync_scheduler()},
      {"sampled_sync(0.25)", core::make_sampled_sync_scheduler(0.25)},
      {"buffered_async", core::make_buffered_async_scheduler({buffer, 0.5})},
  };
  for (const Policy& policy : policies) {
    const RunTimes times =
        run_federation(population, std::min(max_workers, hw), rounds, mbps,
                       fedsz_codec(), strong_samples, seed, policy.scheduler,
                       /*two_tier=*/true);
    sched.add_row({policy.label, benchx::fmt(times.virtual_seconds, 2),
                   benchx::fmt_bytes(times.bytes_sent),
                   benchx::fmt(times.final_accuracy * 100.0, 1) + "%"});
    sched_json.push(benchx::JsonValue::object()
                        .set("scheduler", policy.label)
                        .set("virtual_seconds", times.virtual_seconds)
                        .set("bytes", times.bytes_sent)
                        .set("final_accuracy", times.final_accuracy));
  }
  sched.print();
  json.set("schedulers", std::move(sched_json));

  // Past where the paper's Fig. 9 stops: the flat star saturates at one
  // aggregation point, so shard clients under edge aggregators that
  // re-encode partial means over their own backhaul. Root-link ingress
  // drops from O(clients) updates to O(edges) partials.
  const std::size_t fanout = std::max<std::size_t>(2, population / 4);
  std::printf(
      "\n(d) Flat vs hierarchical topology (%zu clients, FedSZ uplink):\n"
      "    root-link ingress per run\n",
      population);
  benchx::JsonValue topo_json = benchx::JsonValue::array();
  benchx::Table topo({"Topology", "Backhaul", "Root ingress", "Uplink bytes",
                      "Virtual time (s)"});
  struct TopoCase {
    const char* label;
    std::size_t fanout;
    const char* backhaul;
  };
  const TopoCase topo_cases[] = {
      {"flat", 0, ""},
      {"hier", fanout, "identity"},
      {"hier", fanout, "fedsz:eb=rel:1e-3"},
  };
  for (const TopoCase& tc : topo_cases) {
    const RunTimes times =
        run_federation(population, std::min(max_workers, hw), rounds, mbps,
                       fedsz_codec(), strong_samples, seed, nullptr,
                       /*two_tier=*/false, tc.fanout, tc.backhaul);
    const std::string label =
        tc.fanout == 0 ? "flat" : "hier:" + std::to_string(tc.fanout);
    topo.add_row({label, tc.fanout == 0 ? "-" : tc.backhaul,
                  benchx::fmt_bytes(times.root_bytes),
                  benchx::fmt_bytes(times.bytes_sent),
                  benchx::fmt(times.virtual_seconds, 2)});
    topo_json.push(benchx::JsonValue::object()
                       .set("topology", label)
                       .set("backhaul", tc.backhaul)
                       .set("root_ingress_bytes", times.root_bytes)
                       .set("uplink_bytes", times.bytes_sent)
                       .set("virtual_seconds", times.virtual_seconds));
  }
  topo.print();
  json.set("topology", std::move(topo_json));

  std::printf(
      "\nShape to check (paper Fig. 9): round time grows with client count\n"
      "(weak) and shrinks with workers (strong); the compressed runs stay\n"
      "well below uncompressed at 10 Mbps because transfers dominate. The\n"
      "scheduler panel shows partial participation and buffered-async\n"
      "aggregation finishing far sooner in virtual time than the full\n"
      "barrier on a heterogeneous network. The topology panel shows root\n"
      "ingress dropping to O(edges) partials once aggregation goes\n"
      "hierarchical, shrinking again under a lossy backhaul bound.\n");

  if (!options.json_path.empty()) {
    benchx::write_json(options.json_path, json);
    std::printf("\nwrote %s\n", options.json_path.c_str());
  }
  return 0;
}

// Table III: DNN profile for FedSZ — parameter count, state-dict size, the
// percentage of bytes Algorithm 1 routes to the lossy path, and forward
// FLOPs, for the three model analogues at bench and paper scales.
#include <cstdio>

#include "common.hpp"
#include "core/fedsz.hpp"

namespace {

void profile(fedsz::nn::ModelScale scale, const char* label) {
  using namespace fedsz;
  std::printf("Scale: %s\n", label);
  benchx::Table table({"Model", "Parameters", "Size", "% Lossy Data",
                       "Plan (lossy/lossless)", "FLOPs"});
  for (const std::string& arch : nn::model_architectures()) {
    nn::ModelConfig config;
    config.arch = arch;
    config.scale = scale;
    nn::BuiltModel built = nn::build_model(config);
    StateDict dict = built.model.state_dict();
    const core::Partition partition = core::partition_state_dict(dict, 1000);
    char params[32], flops[32];
    std::snprintf(params, sizeof(params), "%.2e",
                  static_cast<double>(built.model.parameter_count()));
    std::snprintf(flops, sizeof(flops), "%.2e", built.flops);
    table.add_row({nn::model_display_name(arch), params,
                   benchx::fmt_bytes(dict.total_bytes()),
                   benchx::fmt(partition.lossy_fraction() * 100.0, 2) + "%",
                   std::to_string(partition.lossy_names.size()) + "/" +
                       std::to_string(partition.lossless_names.size()),
                   flops});
  }
  table.print();
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf(
      "Table III: DNNs for FedSZ profiling\n"
      "(paper values: MobileNet-V2 3.5e6 params / 96.94%% lossy,\n"
      " ResNet50 4.5e7 / 99.47%%, AlexNet 6.0e7 / 99.98%%)\n\n");
  profile(fedsz::nn::ModelScale::kBench, "bench (default for experiments)");
  profile(fedsz::nn::ModelScale::kPaper, "paper (published widths)");
  std::printf(
      "Shape to check: AlexNet's lossy fraction ~highest (FC-dominated),\n"
      "MobileNet-V2's lowest (many small BN/depthwise tensors).\n");
  return 0;
}

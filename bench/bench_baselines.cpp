// Baseline comparison and the Section III-C composition claim: FedSZ as a
// "last-step" compressor stacks on top of gradient sparsification (Top-K)
// and quantization (QSGD). Reports bytes shipped, compression ratio, and
// Top-1 accuracy after a round trip of a trained update for each codec and
// composition.
#include <cstdio>

#include "common.hpp"
#include "core/baselines.hpp"
#include "data/dataloader.hpp"
#include "data/synthetic.hpp"
#include "nn/metrics.hpp"

namespace {

using namespace fedsz;

double accuracy_of(const StateDict& dict) {
  const data::SyntheticSpec spec = data::dataset_spec("cifar10");
  nn::ModelConfig config;
  config.arch = "alexnet";
  config.scale = nn::ModelScale::kBench;
  config.in_channels = spec.channels;
  config.image_size = spec.image_size;
  config.num_classes = spec.classes;
  nn::BuiltModel built = nn::build_model(config);
  built.model.load_state_dict(dict);
  auto [train, test] = data::make_dataset("cifar10");
  const data::Batch batch = data::full_batch(*data::take(test, 256));
  const Tensor logits = built.model.forward(batch.images, false);
  return nn::top1_accuracy(logits,
                           {batch.labels.data(), batch.labels.size()});
}

}  // namespace

int main() {
  using namespace fedsz;
  const StateDict trained = benchx::trained_state_dict("alexnet", "cifar10");
  const std::size_t raw_bytes = trained.serialize().size();
  std::printf(
      "Baselines & composition: trained AlexNet update (%s), Top-1 after a\n"
      "codec round trip (uncompressed reference accuracy first row)\n\n",
      benchx::fmt_bytes(raw_bytes).c_str());

  struct Entry {
    std::string label;
    core::UpdateCodecPtr codec;
  };
  std::vector<Entry> entries;
  entries.push_back({"uncompressed", core::make_identity_codec()});
  entries.push_back({"fedsz-sz2 @1e-2", core::make_fedsz_codec()});
  entries.push_back({"topk (keep 10%)", core::make_topk_codec({0.1, 1000})});
  entries.push_back({"qsgd (64 levels)", core::make_qsgd_codec({64, 1000, 9})});
  entries.push_back({"topk + fedsz",
                     core::make_composed_codec(
                         core::make_topk_codec({0.1, 1000}),
                         core::make_fedsz_codec())});
  entries.push_back({"qsgd + fedsz",
                     core::make_composed_codec(
                         core::make_qsgd_codec({64, 1000, 9}),
                         core::make_fedsz_codec())});

  benchx::Table table({"Codec", "Bytes", "Ratio", "Top-1 (%)"});
  for (const Entry& entry : entries) {
    const auto encoded = entry.codec->encode(trained);
    const StateDict back = entry.codec->decode(
        {encoded.payload.data(), encoded.payload.size()});
    table.add_row({entry.label, benchx::fmt_bytes(encoded.payload.size()),
                   benchx::fmt(static_cast<double>(raw_bytes) /
                                   static_cast<double>(encoded.payload.size()),
                               2) + "x",
                   benchx::fmt(accuracy_of(back) * 100.0, 1)});
  }
  table.print();
  std::printf(
      "\nReading: FedSZ stacked after Top-K or QSGD shrinks their payloads\n"
      "further (the paper's 'last-step in the communication pipeline'\n"
      "argument) because sparsified/quantized tensors are highly\n"
      "predictable for SZ2's entropy stage.\n");
  return 0;
}

// Figure 3: distribution of trained weights for the three model analogues —
// an ASCII density histogram per model plus summary statistics, showing the
// zero-centred, heavy-tailed shape that motivates relative error bounds
// (Section V-D1).
#include <cstdio>

#include "common.hpp"
#include "util/stats.hpp"

int main() {
  using namespace fedsz;
  std::printf("Figure 3: Distribution of trained weights per model\n\n");
  for (const std::string& arch : nn::model_architectures()) {
    const StateDict trained = benchx::trained_state_dict(arch, "cifar10");
    const auto weights = benchx::lossy_partition_values(trained);
    std::vector<double> values(weights.begin(), weights.end());
    const stats::Summary summary = stats::summarize(
        std::span<const double>(values.data(), values.size()));
    const stats::Histogram hist = stats::histogram(values, 41);
    std::printf("%s: n=%zu range=[%.4f, %.4f] mean=%.5f stddev=%.5f\n",
                nn::model_display_name(arch).c_str(), summary.count,
                summary.min, summary.max, summary.mean, summary.stddev);
    double peak = 0.0;
    for (std::size_t i = 0; i < hist.counts.size(); ++i)
      peak = std::max(peak, hist.density(i));
    for (std::size_t i = 0; i < hist.counts.size(); ++i) {
      const double center =
          hist.lo + (static_cast<double>(i) + 0.5) * hist.bin_width();
      const int bar_length = peak > 0.0
          ? static_cast<int>(hist.density(i) / peak * 60.0) : 0;
      std::printf("%9.4f | %-60.*s %.3f\n", center, bar_length,
                  "############################################################",
                  hist.density(i));
    }
    std::printf("\n");
  }
  std::printf(
      "Shape to check (paper Fig. 3): every model's weights cluster sharply\n"
      "around zero with model-specific dynamic ranges — the argument for\n"
      "RELATIVE error bounds over a fixed absolute bound.\n");
  return 0;
}

// Per-codec micro-benchmarks on the shared bench CLI: compress and
// decompress throughput (MB/s), compression ratio and steady-state
// allocations-per-encode for every lossy codec (at two relative bounds) and
// every lossless codec. Encode runs through compress_into with a reused
// output buffer after one warm-up pass, so the allocation column reports
// exactly what the arena-backed hot path costs per call once the
// thread-local scratch exists. The --json schema (runs keyed by `name` with
// *_mb_s / ratio / allocs_per_encode fields) is shared with
// bench_parallel_pipeline; bench/compare_baselines.py gates CI on both
// against the committed files under bench/baselines/.
#include <cstdio>
#include <cstring>

#include "common.hpp"
#include "compress/sparse/sparse_codec.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace fedsz;

struct MicroResult {
  std::string name;
  std::string kind;  // "lossy" | "lossless" | "sparse"
  double compress_mb_s = 0.0;
  double decompress_mb_s = 0.0;
  double ratio = 0.0;
  double allocs_per_encode = 0.0;
};

std::vector<float> weight_payload(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> values(n);
  for (auto& v : values) v = static_cast<float>(rng.laplace(0.0, 0.05));
  return values;
}

Bytes metadata_payload(std::size_t n_floats, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> values(n_floats);
  for (auto& v : values) v = static_cast<float>(rng.normal(0.0, 0.02));
  Bytes bytes(values.size() * sizeof(float));
  std::memcpy(bytes.data(), values.data(), bytes.size());
  return bytes;
}

/// Best-of-`reps` encode/decode timing plus the mean allocation count per
/// encode across the timed passes (steady state: one warm-up pass first).
template <typename EncodeFn, typename DecodeFn>
MicroResult measure(std::string name, std::string kind, std::size_t raw_bytes,
                    int reps, EncodeFn&& encode, DecodeFn&& decode) {
  MicroResult result;
  result.name = std::move(name);
  result.kind = std::move(kind);

  Bytes blob;
  encode(blob);  // warm-up: builds thread-local arenas, sizes `blob`
  double best_encode = 1e30;
  const std::uint64_t allocs_before = benchx::allocation_count();
  for (int rep = 0; rep < reps; ++rep) {
    Timer timer;
    encode(blob);
    best_encode = std::min(best_encode, timer.seconds());
  }
  result.allocs_per_encode =
      static_cast<double>(benchx::allocation_count() - allocs_before) /
      static_cast<double>(reps);
  result.compress_mb_s =
      static_cast<double>(raw_bytes) / 1e6 / best_encode;
  result.ratio =
      static_cast<double>(raw_bytes) / static_cast<double>(blob.size());

  double best_decode = 1e30;
  for (int rep = 0; rep < reps; ++rep) {
    Timer timer;
    decode(blob);
    best_decode = std::min(best_decode, timer.seconds());
  }
  result.decompress_mb_s =
      static_cast<double>(raw_bytes) / 1e6 / best_decode;
  return result;
}

std::string bound_label(double rel) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", rel);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const benchx::BenchOptions options = benchx::parse_bench_options(argc, argv);
  const int reps = options.smoke ? 3 : 7;
  const std::uint64_t seed = options.seed_or(404);
  (void)options.threads_or(1);  // codec micro-bench is single-threaded

  std::printf(
      "Per-codec micro-benchmarks: compress/decompress MB/s, ratio and\n"
      "steady-state allocations per encode (weight-shaped lossy payload,\n"
      "metadata-shaped lossless payload; best of %d timed passes).\n\n",
      reps);

  const auto values = weight_payload(1 << 18, seed);
  const Bytes metadata = metadata_payload(1 << 16, seed + 1);
  std::vector<MicroResult> results;

  for (const lossy::LossyCodec* codec : lossy::all_lossy_codecs()) {
    for (const double rel : {1e-2, 1e-4}) {
      const lossy::ErrorBound bound = lossy::ErrorBound::relative(rel);
      results.push_back(measure(
          codec->name() + "/rel=" + bound_label(rel), "lossy",
          values.size() * sizeof(float), reps,
          [&](Bytes& blob) {
            codec->compress_into({values.data(), values.size()}, bound, blob);
          },
          [&](const Bytes& blob) {
            (void)codec->decompress({blob.data(), blob.size()});
          }));
    }
  }
  for (const lossless::LosslessCodec* codec :
       lossless::all_lossless_codecs()) {
    results.push_back(measure(
        codec->name(), "lossless", metadata.size(), reps,
        [&](Bytes& blob) {
          codec->compress_into({metadata.data(), metadata.size()}, blob);
        },
        [&](const Bytes& blob) {
          (void)codec->decompress({blob.data(), blob.size()});
        }));
  }
  // Sparse-quantization rows: adaptive thresholding at a relative bound, and
  // the explicit top-10% / 8-bit configuration. Survivors route through the
  // zstd-like backend, same as the container default.
  {
    const lossless::LosslessCodec& backend =
        lossless::lossless_codec(lossless::LosslessId::kZstd);
    const FloatSpan span{values.data(), values.size()};
    struct SparseRow {
      const char* name;
      sparse::SparseParams params;
    };
    const SparseRow rows[] = {
        {"sparse/rel=0.01", {}},
        {"sparse/rel=0.01,s=0.9,b=8", {0.9, 8}},
    };
    for (const SparseRow& row : rows) {
      const double eps =
          lossy::ErrorBound::relative(1e-2).absolute_for(span);
      results.push_back(measure(
          row.name, "sparse", values.size() * sizeof(float), reps,
          [&](Bytes& blob) {
            sparse::sparse_codec().compress_into(span, eps, row.params,
                                                 backend, blob);
          },
          [&](const Bytes& blob) {
            (void)sparse::sparse_codec().decompress(
                {blob.data(), blob.size()});
          }));
    }
  }

  benchx::Table table({"codec", "compress MB/s", "decompress MB/s", "ratio",
                       "allocs/encode"});
  for (const MicroResult& r : results)
    table.add_row({r.name, benchx::fmt(r.compress_mb_s, 1),
                   benchx::fmt(r.decompress_mb_s, 1), benchx::fmt(r.ratio, 2),
                   benchx::fmt(r.allocs_per_encode, 1)});
  table.print();

  if (!options.json_path.empty()) {
    benchx::JsonValue json = benchx::JsonValue::object();
    json.set("bench", "micro_codecs")
        .set("smoke", options.smoke)
        .set("seed", static_cast<std::size_t>(seed))
        .set("reps", reps);
    benchx::JsonValue runs = benchx::JsonValue::array();
    for (const MicroResult& r : results) {
      benchx::JsonValue run = benchx::JsonValue::object();
      run.set("name", r.name)
          .set("kind", r.kind)
          .set("compress_mb_s", r.compress_mb_s)
          .set("decompress_mb_s", r.decompress_mb_s)
          .set("ratio", r.ratio)
          .set("allocs_per_encode", r.allocs_per_encode);
      runs.push(std::move(run));
    }
    json.set("runs", std::move(runs));
    benchx::write_json(options.json_path, json);
    std::printf("\nwrote %s\n", options.json_path.c_str());
  }
  return 0;
}

// Google-benchmark micro-benchmarks for the codec suites: per-codec
// compress/decompress throughput on weight-shaped float payloads and
// metadata-shaped byte payloads. Complements the table benches with
// statistically robust per-operation timings.
#include <benchmark/benchmark.h>

#include <cstring>

#include "common.hpp"
#include "util/rng.hpp"

namespace {

using namespace fedsz;

std::vector<float> weight_payload(std::size_t n) {
  Rng rng(404);
  std::vector<float> values(n);
  for (auto& v : values) v = static_cast<float>(rng.laplace(0.0, 0.05));
  return values;
}

Bytes metadata_payload(std::size_t n_floats) {
  Rng rng(405);
  std::vector<float> values(n_floats);
  for (auto& v : values) v = static_cast<float>(rng.normal(0.0, 0.02));
  Bytes bytes(values.size() * sizeof(float));
  std::memcpy(bytes.data(), values.data(), bytes.size());
  return bytes;
}

void BM_LossyCompress(benchmark::State& state, lossy::LossyId id,
                      double rel) {
  const auto values = weight_payload(1 << 18);
  const lossy::LossyCodec& codec = lossy::lossy_codec(id);
  const lossy::ErrorBound bound = lossy::ErrorBound::relative(rel);
  std::size_t compressed_size = 0;
  for (auto _ : state) {
    Bytes blob = codec.compress({values.data(), values.size()}, bound);
    compressed_size = blob.size();
    benchmark::DoNotOptimize(blob);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(values.size() * 4));
  state.counters["ratio"] =
      static_cast<double>(values.size() * 4) /
      static_cast<double>(compressed_size);
}

void BM_LossyDecompress(benchmark::State& state, lossy::LossyId id,
                        double rel) {
  const auto values = weight_payload(1 << 18);
  const lossy::LossyCodec& codec = lossy::lossy_codec(id);
  const Bytes blob = codec.compress({values.data(), values.size()},
                                    lossy::ErrorBound::relative(rel));
  for (auto _ : state) {
    auto out = codec.decompress({blob.data(), blob.size()});
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(values.size() * 4));
}

void BM_LosslessCompress(benchmark::State& state, lossless::LosslessId id) {
  const Bytes payload = metadata_payload(1 << 16);
  const lossless::LosslessCodec& codec = lossless::lossless_codec(id);
  std::size_t compressed_size = 0;
  for (auto _ : state) {
    Bytes blob = codec.compress({payload.data(), payload.size()});
    compressed_size = blob.size();
    benchmark::DoNotOptimize(blob);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(payload.size()));
  state.counters["ratio"] = static_cast<double>(payload.size()) /
                            static_cast<double>(compressed_size);
}

void BM_LosslessDecompress(benchmark::State& state,
                           lossless::LosslessId id) {
  const Bytes payload = metadata_payload(1 << 16);
  const lossless::LosslessCodec& codec = lossless::lossless_codec(id);
  const Bytes blob = codec.compress({payload.data(), payload.size()});
  for (auto _ : state) {
    auto out = codec.decompress({blob.data(), blob.size()});
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(payload.size()));
}

void register_benchmarks() {
  for (const lossy::LossyCodec* codec : lossy::all_lossy_codecs()) {
    for (const double rel : {1e-2, 1e-4}) {
      const std::string suffix =
          codec->name() + "/rel=" + benchx::fmt(rel, 4);
      benchmark::RegisterBenchmark(("BM_LossyCompress/" + suffix).c_str(),
                                   BM_LossyCompress, codec->id(), rel);
      benchmark::RegisterBenchmark(("BM_LossyDecompress/" + suffix).c_str(),
                                   BM_LossyDecompress, codec->id(), rel);
    }
  }
  for (const lossless::LosslessCodec* codec :
       lossless::all_lossless_codecs()) {
    benchmark::RegisterBenchmark(
        ("BM_LosslessCompress/" + codec->name()).c_str(), BM_LosslessCompress,
        codec->id());
    benchmark::RegisterBenchmark(
        ("BM_LosslessDecompress/" + codec->name()).c_str(),
        BM_LosslessDecompress, codec->id());
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_benchmarks();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

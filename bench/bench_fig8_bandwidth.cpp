// Figure 8: communication time for transmitting the AlexNet update across
// bandwidths 1..1000 Mbps for SZ2 / SZ3 / ZFP / original — the Eqn (1)
// trade-off curve, including the crossover bandwidth beyond which
// compression stops paying. A second panel prices the BIDIRECTIONAL round
// trip (broadcast down + update up) for the same bandwidths.
//
//   bench_fig8_bandwidth [--threads N] [--json PATH] [--smoke]
#include <cstdio>

#include "common.hpp"
#include "core/fedsz.hpp"
#include "net/bandwidth.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace fedsz;
  const benchx::BenchOptions options = benchx::parse_bench_options(argc, argv);
  const StateDict trained = benchx::trained_state_dict("alexnet", "cifar10");
  const std::size_t raw_bytes = trained.serialize().size();
  std::printf(
      "Figure 8: communication time vs bandwidth for the AlexNet update\n"
      "(%s; FedSZ @ REL 1e-2 with each lossy codec)\n\n",
      benchx::fmt_bytes(raw_bytes).c_str());

  struct Candidate {
    std::string label;
    std::size_t bytes;
    double codec_seconds;  // t_C + t_D
  };
  std::vector<Candidate> candidates;
  for (const lossy::LossyId id :
       {lossy::LossyId::kSz2, lossy::LossyId::kSz3, lossy::LossyId::kZfp}) {
    core::FedSzConfig config;
    config.lossy_id = id;
    config.parallelism = options.threads_or(1);
    const core::FedSz fedsz(config);
    Timer timer;
    const Bytes blob = fedsz.compress(trained);
    const double compress_seconds = timer.seconds();
    core::CompressionStats decode_stats;
    fedsz.decompress({blob.data(), blob.size()}, &decode_stats);
    candidates.push_back(
        {lossy::lossy_codec(id).name(), blob.size(),
         compress_seconds + decode_stats.decompress_seconds});
  }
  candidates.push_back({"original", raw_bytes, 0.0});

  std::vector<std::string> headers{"Bandwidth (Mbps)"};
  for (const Candidate& c : candidates) headers.push_back(c.label + " (s)");
  headers.push_back("best");
  benchx::Table table(std::move(headers));
  benchx::JsonValue sweep_json = benchx::JsonValue::array();
  benchx::JsonValue bidi_sweep = benchx::JsonValue::array();
  std::vector<double> crossover(candidates.size(), -1.0);
  const double max_mbps = options.smoke ? 64.0 : 1024.0;
  for (double mbps = 1.0; mbps <= max_mbps; mbps *= 2.0) {
    const net::SimulatedNetwork network({mbps, 0.0});
    std::vector<std::string> row{benchx::fmt(mbps, 0)};
    benchx::JsonValue row_json = benchx::JsonValue::object();
    row_json.set("bandwidth_mbps", mbps);
    double best_time = 1e300;
    std::size_t best_index = 0;
    const double original_time = network.transfer_seconds(raw_bytes);
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      const double total = candidates[i].codec_seconds +
                           network.transfer_seconds(candidates[i].bytes);
      row.push_back(benchx::fmt(total, 3));
      row_json.set(candidates[i].label, total);
      if (total < best_time) {
        best_time = total;
        best_index = i;
      }
      if (crossover[i] < 0.0 && i + 1 < candidates.size() &&
          total >= original_time)
        crossover[i] = mbps;
    }
    row.push_back(candidates[best_index].label);
    row_json.set("best", candidates[best_index].label);
    sweep_json.push(std::move(row_json));
    table.add_row(std::move(row));
  }
  table.print();
  std::printf("\n");

  // Bidirectional panel: the broadcast rides the same link before the
  // uplink. Candidate 0 is SZ2; the last candidate is the raw transfer.
  {
    const Candidate& sz2 = candidates.front();
    std::printf(
        "Bidirectional round trip (broadcast down + update up, SZ2):\n");
    benchx::Table bidi({"Bandwidth (Mbps)", "FedSZ both (s)",
                        "raw down + FedSZ up (s)", "raw both (s)"});
    benchx::JsonValue bidi_json = benchx::JsonValue::array();
    for (double mbps = 1.0; mbps <= max_mbps; mbps *= 4.0) {
      const net::SimulatedNetwork network({mbps, 0.0});
      const double fedsz_leg =
          sz2.codec_seconds + network.transfer_seconds(sz2.bytes);
      const double raw_leg = network.transfer_seconds(raw_bytes);
      bidi.add_row({benchx::fmt(mbps, 0), benchx::fmt(2.0 * fedsz_leg, 3),
                    benchx::fmt(raw_leg + fedsz_leg, 3),
                    benchx::fmt(2.0 * raw_leg, 3)});
      bidi_json.push(benchx::JsonValue::object()
                         .set("bandwidth_mbps", mbps)
                         .set("fedsz_both_seconds", 2.0 * fedsz_leg)
                         .set("raw_down_fedsz_up_seconds",
                              raw_leg + fedsz_leg)
                         .set("raw_both_seconds", 2.0 * raw_leg));
    }
    bidi.print();
    std::printf("\n");
    bidi_sweep = std::move(bidi_json);
  }

  for (std::size_t i = 0; i + 1 < candidates.size(); ++i) {
    if (crossover[i] > 0.0)
      std::printf("%s stops paying off at ~%.0f Mbps\n",
                  candidates[i].label.c_str(), crossover[i]);
    else
      std::printf("%s still pays off at 1024 Mbps\n",
                  candidates[i].label.c_str());
  }
  std::printf(
      "\nShape to check (paper Fig. 8): compression wins below roughly\n"
      "500 Mbps, with SZ2 best at the low end; above the crossover the raw\n"
      "transfer is faster than compress+send+decompress.\n");
  if (!options.json_path.empty()) {
    benchx::JsonValue json = benchx::JsonValue::object();
    json.set("bench", "fig8_bandwidth")
        .set("raw_bytes", raw_bytes)
        .set("sweep", std::move(sweep_json))
        .set("bidirectional_sweep", std::move(bidi_sweep));
    benchx::write_json(options.json_path, json);
    std::printf("\nwrote %s\n", options.json_path.c_str());
  }
  return 0;
}

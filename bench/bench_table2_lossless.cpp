// Table II: lossless compressor comparison for AlexNet metadata — runtime,
// throughput and compression ratio of blosc-lz / gzip / xz / zlib / zstd on
// the serialized lossless partition (biases, small tensors, BN statistics)
// of a trained AlexNet analogue.
#include <cstdio>
#include <cstring>

#include "common.hpp"
#include "util/rng.hpp"

namespace {

void compare(const char* label, fedsz::ByteSpan payload) {
  using namespace fedsz;
  std::printf("%s (%s)\n", label, benchx::fmt_bytes(payload.size()).c_str());
  benchx::Table table({"Compressor", "Runtime (s)", "Throughput (MB/s)",
                       "Compression Ratio"});
  for (const lossless::LosslessCodec* codec :
       lossless::all_lossless_codecs()) {
    const benchx::CodecTiming timing =
        benchx::measure_lossless(*codec, payload, 5);
    table.add_row({codec->name(), benchx::fmt(timing.compress_seconds, 5),
                   benchx::fmt(timing.throughput_mb_s(), 1),
                   benchx::fmt(timing.ratio(), 3)});
  }
  table.print();
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fedsz;
  const benchx::BenchOptions options = benchx::parse_bench_options(argc, argv);
  std::printf(
      "Table II: Lossless compressor comparison for AlexNet metadata\n\n");

  // (a) The actual lossless partition of our briefly-trained analogue.
  // Its biases are still close to the uniform Kaiming init — near
  // maximum-entropy floats — so absolute ratios sit below the paper's
  // (whose AlexNet is fully pretrained); the speed ordering is unaffected.
  const StateDict trained = benchx::trained_state_dict("alexnet", "cifar10");
  const Bytes metadata = benchx::lossless_partition_bytes(trained);
  compare("(a) analogue's lossless partition", {metadata.data(),
                                                metadata.size()});

  // (b) Pretrained-like metadata: biases/BN-stat floats drawn from the
  // concentrated near-zero distribution real pretrained networks exhibit —
  // the payload regime the paper's 1.16-1.25x ratios come from.
  Rng rng(options.seed_or(2024));
  std::vector<float> values(32768);
  for (auto& v : values) v = static_cast<float>(rng.normal(0.0, 0.02));
  Bytes pretrained_like(values.size() * sizeof(float));
  std::memcpy(pretrained_like.data(), values.data(), pretrained_like.size());
  compare("(b) pretrained-like float metadata",
          {pretrained_like.data(), pretrained_like.size()});

  std::printf(
      "Expected shape (paper): blosc-lz fastest by >10x with an xz-class\n"
      "ratio on float metadata; zlib/gzip similar mid ratios; xz slowest\n"
      "with the top ratio. Paper values: blosc 1.248 @ 674 MB/s,\n"
      "gzip/zlib ~1.16 @ 28 MB/s, zstd 1.169 @ 349 MB/s, xz 1.250 @ 4 MB/s.\n");
  return 0;
}

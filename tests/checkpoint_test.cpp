// Checkpoint/resume: the container round-trips and rejects corruption like
// every other untrusted format in the tree, and — the property the whole
// subsystem exists for — a campaign resumed from a checkpoint finishes
// BIT-IDENTICAL to one that never stopped, round for round, including a
// run the OS killed with SIGKILL mid-campaign (exercised through the
// fedsz_campaign binary when the build provides it via FEDSZ_BIN_DIR).
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <fcntl.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/codec_spec.hpp"
#include "core/fl/checkpoint.hpp"
#include "core/fl/coordinator.hpp"
#include "data/synthetic.hpp"

namespace fedsz::core {
namespace {

std::filesystem::path temp_path(const std::string& name) {
  return std::filesystem::temp_directory_path() /
         ("fedsz_ck_" + std::to_string(::getpid()) + "_" + name);
}

struct TempFile {
  explicit TempFile(const std::string& name) : path(temp_path(name)) {
    std::filesystem::remove(path);
  }
  ~TempFile() { std::filesystem::remove(path); }
  std::filesystem::path path;
};

CheckpointState sample_state() {
  CheckpointState state;
  state.completed_rounds = 3;
  state.virtual_now = 12.625;
  state.clock_next_seq = 417;
  state.config_fingerprint = 0xDEADBEEFu;
  state.global_state.set("conv.weight", Tensor::from_data({2, 2}, {1, 2, 3, 4}));
  state.global_state.set("conv.bias", Tensor::from_data({2}, {0.5f, -0.25f}));
  state.aggregator_name = "fedavg";
  state.aggregator_state = {0x01, 0x02, 0xFE};
  Rng cohort(7), failure(13), eligibility(21);
  cohort.next_u64();
  cohort.normal();  // populate the Box-Muller cache
  failure.next_u64();
  failure.next_u64();
  eligibility.uniform();
  eligibility.uniform();
  eligibility.uniform();
  state.cohort_rng = cohort.state();
  state.failure_rng = failure.state();
  state.eligibility_rng = eligibility.state();
  StateDict residual;
  residual.set("conv.weight", Tensor::from_data({2, 2}, {0.1f, 0, -0.1f, 0}));
  state.client_residuals = {residual, StateDict{}};
  state.edge_residuals = {StateDict{}, residual};
  return state;
}

TEST(CheckpointTest, SerializeParseRoundtrip) {
  const CheckpointState state = sample_state();
  const Bytes blob = serialize_checkpoint(state);
  const CheckpointState parsed = parse_checkpoint({blob.data(), blob.size()});
  EXPECT_EQ(parsed.completed_rounds, state.completed_rounds);
  EXPECT_EQ(parsed.virtual_now, state.virtual_now);
  EXPECT_EQ(parsed.clock_next_seq, state.clock_next_seq);
  EXPECT_EQ(parsed.config_fingerprint, state.config_fingerprint);
  EXPECT_EQ(parsed.aggregator_name, state.aggregator_name);
  EXPECT_EQ(parsed.aggregator_state, state.aggregator_state);
  EXPECT_TRUE(parsed.global_state.equals(state.global_state));
  ASSERT_EQ(parsed.client_residuals.size(), 2u);
  EXPECT_TRUE(parsed.client_residuals[0].equals(state.client_residuals[0]));
  ASSERT_EQ(parsed.edge_residuals.size(), 2u);
  // RNG streams resume mid-sequence: the restored generators must produce
  // the exact draws the originals would have.
  Rng original(7);
  original.next_u64();
  original.normal();
  Rng restored;
  restored.restore(parsed.cohort_rng);
  for (int i = 0; i < 8; ++i)
    EXPECT_EQ(restored.next_u64(), original.next_u64());
  Rng elig_original(21);
  elig_original.uniform();
  elig_original.uniform();
  elig_original.uniform();
  Rng elig_restored;
  elig_restored.restore(parsed.eligibility_rng);
  for (int i = 0; i < 8; ++i)
    EXPECT_EQ(elig_restored.next_u64(), elig_original.next_u64());
  // And re-serializing the parse is byte-identical.
  EXPECT_EQ(serialize_checkpoint(parsed), blob);
}

TEST(CheckpointTest, CorruptAndTruncatedRejected) {
  const Bytes blob = serialize_checkpoint(sample_state());
  for (std::size_t at = 0; at < blob.size(); at += 7) {
    Bytes damaged = blob;
    damaged[at] = static_cast<std::uint8_t>(damaged[at] ^ 0x40);
    EXPECT_THROW(parse_checkpoint({damaged.data(), damaged.size()}),
                 CorruptStream)
        << "flip at " << at;
  }
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{4}, blob.size() / 2, blob.size() - 1}) {
    EXPECT_THROW(parse_checkpoint({blob.data(), keep}), CorruptStream)
        << "truncated to " << keep;
  }
}

TEST(CheckpointTest, AtomicWriteReadMissing) {
  TempFile file("atomic.ck");
  EXPECT_FALSE(read_checkpoint(file.path.string()).has_value());
  const CheckpointState state = sample_state();
  write_checkpoint(file.path.string(), state);
  // No torn temp file left behind.
  EXPECT_FALSE(std::filesystem::exists(file.path.string() + ".tmp"));
  const auto loaded = read_checkpoint(file.path.string());
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(serialize_checkpoint(*loaded), serialize_checkpoint(state));
}

// ---- the resume property, in process ----

FlRunResult run_campaign(int rounds, const std::string& checkpoint_path,
                         std::size_t every, bool resume,
                         const std::string& spec_string, float lr = 0.05f) {
  nn::ModelConfig model;
  model.arch = "mobilenet_v2";
  model.scale = nn::ModelScale::kTiny;
  auto [train, test] = data::make_dataset("cifar10");
  const CodecSpec spec = parse_codec_spec(spec_string);
  FlRunConfig config;
  config.clients = 4;
  config.rounds = rounds;
  config.eval_limit = 32;
  config.threads = 2;
  config.seed = 1234;
  config.client.batch_size = 8;
  config.client.sgd.learning_rate = lr;
  config.apply_comm_spec(spec);
  config.checkpoint_path = checkpoint_path;
  config.checkpoint_every = every;
  config.resume = resume;
  FlCoordinator coordinator(model, data::take(train, 4 * 16),
                            data::take(test, 64), config, make_codec(spec));
  return coordinator.run();
}

void expect_rounds_identical(const RoundRecord& a, const RoundRecord& b) {
  EXPECT_EQ(a.round, b.round);
  EXPECT_EQ(a.accuracy, b.accuracy);
  EXPECT_EQ(a.mean_loss, b.mean_loss);
  EXPECT_EQ(a.bytes_sent, b.bytes_sent);
  EXPECT_EQ(a.raw_bytes, b.raw_bytes);
  EXPECT_EQ(a.participants, b.participants);
  EXPECT_EQ(a.virtual_seconds, b.virtual_seconds);
  EXPECT_EQ(a.comm_seconds, b.comm_seconds);
  EXPECT_EQ(a.aggregate_weight, b.aggregate_weight);
  EXPECT_EQ(a.backhaul_bytes, b.backhaul_bytes);
  EXPECT_EQ(a.backhaul_raw_bytes, b.backhaul_raw_bytes);
  EXPECT_EQ(a.mean_ef_residual_norm, b.mean_ef_residual_norm);
  EXPECT_EQ(a.eligible_clients, b.eligible_clients);
  EXPECT_EQ(a.ineligible_clients, b.ineligible_clients);
  EXPECT_EQ(a.clients.size(), b.clients.size());
  EXPECT_EQ(a.edges.size(), b.edges.size());
}

void check_resume_property(const std::string& spec) {
  TempFile ck("resume.ck");
  const FlRunResult full = run_campaign(4, "", 0, false, spec);
  ASSERT_EQ(full.rounds.size(), 4u);
  const FlRunResult head =
      run_campaign(2, ck.path.string(), 1, false, spec);
  ASSERT_EQ(head.rounds.size(), 2u);
  expect_rounds_identical(head.rounds[0], full.rounds[0]);
  expect_rounds_identical(head.rounds[1], full.rounds[1]);
  const FlRunResult resumed =
      run_campaign(4, ck.path.string(), 1, true, spec);
  // The resumed result carries exactly the rounds that still had to run,
  // and each one is bit-identical to the uninterrupted run's.
  ASSERT_EQ(resumed.rounds.size(), 2u);
  expect_rounds_identical(resumed.rounds[0], full.rounds[2]);
  expect_rounds_identical(resumed.rounds[1], full.rounds[3]);
  EXPECT_EQ(resumed.final_accuracy, full.final_accuracy);
  EXPECT_EQ(resumed.total_virtual_seconds, full.total_virtual_seconds);
}

TEST(CheckpointTest, ResumeMatchesUninterruptedFlat) {
  check_resume_property("fedsz:eb=rel:1e-2,ef=on");
}

TEST(CheckpointTest, ResumeMatchesUninterruptedHier) {
  // Hierarchy + edge-side error feedback exercises the edge-residual and
  // virtual-clock restoration paths.
  check_resume_property(
      "fedsz:eb=rel:1e-2,ef=on,topology=hier:2,backhaul=fedsz:eb=rel:1e-2,"
      "edgeef=on");
}

TEST(CheckpointTest, ResumeMatchesUninterruptedDiurnalPopulation) {
  // The eligibility stream advances every round open; restoring it
  // mid-sequence is what keeps the resumed suffix's availability draws —
  // and therefore cohorts, traces, and accuracy — bit-identical. A short
  // diurnal period makes eligibility actually change across the cut.
  check_resume_property(
      "fedsz:eb=rel:1e-2,population=mixed:period=25;jitter=0.5;seed=6");
}

TEST(CheckpointTest, ResumeWithoutCheckpointRunsFresh) {
  TempFile ck("fresh.ck");
  // resume=true against a path that does not exist yet must start from
  // round 0 (the kill-before-first-save case), not fail.
  const FlRunResult fresh =
      run_campaign(2, ck.path.string(), 2, true, "fedsz:eb=rel:1e-2");
  ASSERT_EQ(fresh.rounds.size(), 2u);
  EXPECT_EQ(fresh.rounds[0].round, 0);
}

TEST(CheckpointTest, ResumeRejectsMismatchedConfig) {
  TempFile ck("mismatch.ck");
  run_campaign(1, ck.path.string(), 1, false, "fedsz:eb=rel:1e-2");
  // Same checkpoint, different learning rate: a different experiment. The
  // fingerprint check has to refuse rather than continue it.
  EXPECT_THROW(run_campaign(2, ck.path.string(), 1, true, "fedsz:eb=rel:1e-2",
                            /*lr=*/0.01f),
               InvalidArgument);
}

// ---- kill -9 mid-campaign, through the real binary ----

#ifdef FEDSZ_BIN_DIR

pid_t spawn_campaign(const std::vector<std::string>& args,
                     const std::string& stdout_path) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  const int fd = ::open(stdout_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC,
                        0644);
  if (fd < 0) ::_exit(127);
  ::dup2(fd, STDOUT_FILENO);
  ::close(fd);
  std::vector<char*> argv;
  for (const std::string& arg : args)
    argv.push_back(const_cast<char*>(arg.c_str()));
  argv.push_back(nullptr);
  ::execv(argv[0], argv.data());
  ::_exit(127);
}

std::vector<std::string> campaign_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line))
    if (line.rfind("ROUND", 0) == 0 || line.rfind("DONE", 0) == 0)
      lines.push_back(line);
  return lines;
}

TEST(CheckpointTest, KillNineResumeMatchesUninterrupted) {
  const std::filesystem::path campaign =
      std::filesystem::path(FEDSZ_BIN_DIR) / "fedsz_campaign";
  if (!std::filesystem::exists(campaign))
    GTEST_SKIP() << "fedsz_campaign not built at " << campaign;
  TempFile ck("kill9.ck");
  TempFile full_out("kill9_full.txt");
  TempFile dead_out("kill9_dead.txt");
  TempFile resumed_out("kill9_resumed.txt");
  const std::string spec =
      "fedsz:eb=rel:1e-2,checkpoint=" + ck.path.string() + ":1";
  const std::vector<std::string> base = {
      campaign.string(), "--clients", "4",  "--rounds", "6",
      "--take",          "128",       "--codec", spec};

  // Reference: the campaign that never stops.
  {
    TempFile ref_ck("kill9_ref.ck");
    std::vector<std::string> args = base;
    args.back() = "fedsz:eb=rel:1e-2,checkpoint=" + ref_ck.path.string() + ":1";
    const pid_t pid = spawn_campaign(args, full_out.path.string());
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
  }
  const std::vector<std::string> full = campaign_lines(full_out.path.string());
  ASSERT_EQ(full.size(), 7u);  // 6 ROUND lines + DONE

  // The victim: SIGKILL the instant its first checkpoint lands on disk.
  {
    const pid_t pid = spawn_campaign(base, dead_out.path.string());
    bool seen = false;
    for (int i = 0; i < 24000; ++i) {  // up to ~2 min
      if (std::filesystem::exists(ck.path)) {
        seen = true;
        break;
      }
      ::usleep(5000);
    }
    ::kill(pid, SIGKILL);
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(seen) << "no checkpoint appeared before the timeout";
    ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL)
        << "campaign finished before the kill landed";
  }

  // Resume: the remaining rounds must be byte-identical to the
  // uninterrupted run's ROUND lines, and the DONE summary must match.
  {
    std::vector<std::string> args = base;
    args.push_back("--resume");
    const pid_t pid = spawn_campaign(args, resumed_out.path.string());
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
  }
  const std::vector<std::string> resumed =
      campaign_lines(resumed_out.path.string());
  ASSERT_GE(resumed.size(), 2u) << "resume replayed nothing";
  ASSERT_LE(resumed.size(), full.size());
  const std::size_t offset = full.size() - resumed.size();
  for (std::size_t i = 0; i < resumed.size(); ++i)
    EXPECT_EQ(resumed[i], full[offset + i]) << "line " << i;
}

#endif  // FEDSZ_BIN_DIR

}  // namespace
}  // namespace fedsz::core

// Model-driven property harness for the multi-tier aggregation tree.
// Each iteration draws a random run configuration — topology depth and
// fan-ins, scheduler, uplink/backhaul/downlink codecs, edge ship
// discipline, sharding strategy, and a churn schedule (client dropout,
// edge crashes, straggler eviction) — runs the event-driven coordinator on
// a tiny synthetic workload, and asserts the invariants the design
// guarantees for EVERY configuration:
//
//   1. Liveness: the pump records exactly `rounds` rounds no matter what
//      churn removed (a wedged barrier would hang or under-record).
//   2. Weight conservation: the weight the root merged equals the summed
//      weights of this round's aggregated client updates minus the weight
//      of partials that arrived after their (buffered) parent shipped.
//      Non-aggregated client deliveries carry weight 0.
//   3. Byte accounting: per-tier backhaul splits sum to the round totals,
//      and client uplink bytes sum over exactly the aggregated entries.
//   4. Streaming memory: no aggregation point ever holds more than one
//      decoded payload at a time, regardless of fan-in or thread count.
//   5. Determinism: re-running an identical configuration with a different
//      thread count reproduces the trace byte-for-byte (spot-checked on a
//      subset of iterations — the real work races, the virtual clock
//      doesn't).
//
// Iteration count defaults to 100 and is overridable via FEDSZ_PBT_ITERS
// (CI pins it explicitly; set it low for a quick local smoke). The master
// seed is fixed, so a failure report's iteration index is reproducible.
#include <gtest/gtest.h>

#include <cstdlib>
#include <iterator>
#include <sstream>
#include <string>
#include <vector>

#include "core/codec_spec.hpp"
#include "core/fl/coordinator.hpp"
#include "core/fl/scheduler.hpp"
#include "core/fl/topology.hpp"
#include "data/synthetic.hpp"
#include "util/rng.hpp"

namespace fedsz::core {
namespace {

constexpr std::uint64_t kMasterSeed = 0x7E57C0DE20260809ull;

int iteration_budget() {
  if (const char* env = std::getenv("FEDSZ_PBT_ITERS")) {
    const int parsed = std::atoi(env);
    if (parsed > 0) return parsed;
  }
  return 100;
}

struct DrawnCase {
  FlRunConfig config;
  SchedulerPtr scheduler;  // null = the default sync barrier
  std::string uplink_spec;
  std::string describe;
};

/// One random configuration. Everything is drawn from `rng`, so case i is
/// reproducible from (kMasterSeed, i).
DrawnCase draw_case(Rng& rng) {
  DrawnCase out;
  FlRunConfig& config = out.config;
  config.clients = 2 + rng.uniform_index(7);  // 2..8
  config.rounds = 1 + static_cast<int>(rng.uniform_index(2));
  config.threads = 1 + rng.uniform_index(4);
  config.seed = rng.next_u64();
  config.eval_limit = 8;
  config.evaluate_every_round = false;
  config.client.batch_size = 2;
  if (rng.uniform() < 0.4) config.compute_jitter = rng.uniform(0.1, 0.6);

  const bool hier = rng.uniform() < 0.7;
  if (hier) {
    config.topology.mode = TopologyMode::kHier;
    const std::size_t depth = 1 + rng.uniform_index(3);
    for (std::size_t l = 0; l < depth; ++l)
      config.topology.tiers.push_back(1 + rng.uniform_index(4));
    const char* backhauls[] = {"", "identity", "fedsz:eb=rel:1e-2",
                               "sparse:eb=rel:1e-2,sparsity=0.9,bits=8"};
    config.topology.backhaul_spec =
        backhauls[rng.uniform_index(std::size(backhauls))];
    if (rng.uniform() < 0.3) {
      // Override one random tier's codec.
      config.topology.tier_backhaul_specs.assign(
          1 + rng.uniform_index(depth), "");
      config.topology.tier_backhaul_specs.back() = "fedsz:eb=rel:1e-2";
    }
    if (rng.uniform() < 0.3) {
      config.topology.edge_mode = EdgeMode::kBuffered;
      config.topology.edge_buffer = 1 + rng.uniform_index(3);
    }
    if (rng.uniform() < 0.25) config.topology.edge_error_feedback = true;
    if (rng.uniform() < 0.3)
      config.topology.sharding = ShardStrategy::kShuffled;
  }

  // Scheduler: barrier policies always; FedBuff only where it is legal
  // (flat, churn-free — drawn before churn so the draw can veto it).
  bool continuous = false;
  const double scheduler_draw = rng.uniform();
  if (scheduler_draw < 0.3) {
    out.scheduler = make_sampled_sync_scheduler(0.5);
  } else if (!hier && scheduler_draw > 0.85) {
    out.scheduler = make_buffered_async_scheduler(
        {1 + rng.uniform_index(3), 0.5});
    continuous = true;
  }

  if (!continuous && rng.uniform() < 0.6) {
    if (rng.uniform() < 0.6) config.failures.dropout_rate = rng.uniform(0.1, 0.6);
    if (hier && rng.uniform() < 0.5)
      config.failures.edge_failure_rate = rng.uniform(0.1, 0.6);
    // A deadline anywhere from "evicts everyone" to "evicts nobody" — the
    // invariants must hold across the whole range.
    if (rng.uniform() < 0.4)
      config.failures.straggler_deadline_seconds = rng.uniform(0.01, 2.0);
  }

  // A client population composes with everything barrier-scheduled: device
  // classes reshape links/compute/data, and diurnal or flat eligibility
  // shrinks the cohorts — the invariants must not care who sat out.
  if (!continuous && rng.uniform() < 0.3) {
    const char* presets[] = {"mixed", "mobile", "iot_fleet", "uniform"};
    std::string spec(presets[rng.uniform_index(std::size(presets))]);
    const double avail = rng.uniform();
    if (avail < 0.4) {
      spec += ":period=" + std::to_string(rng.uniform(1.0, 50.0));
    } else if (avail < 0.7) {
      spec += ":avail=flat:" + std::to_string(rng.uniform(0.2, 0.9));
    } else {
      spec += ":avail=always";
    }
    if (rng.uniform() < 0.4)
      spec += ";drop=" + std::to_string(rng.uniform(0.05, 0.4));
    config.population = parse_population_spec(spec);
  }

  const char* uplinks[] = {"identity", "fedsz:eb=rel:1e-2",
                           "sparse:eb=rel:1e-2",
                           "sparse:eb=rel:1e-2,policy=gradaware:0.5"};
  out.uplink_spec = uplinks[rng.uniform_index(std::size(uplinks))];
  if (rng.uniform() < 0.3) config.downlink_spec = "fedsz:eb=rel:1e-2";
  // Label-skewed sharding rides the same draw: the invariants must hold on
  // Dirichlet partitions exactly as on IID ones.
  if (rng.uniform() < 0.25) config.dirichlet_alpha = rng.uniform(0.2, 2.0);

  std::ostringstream desc;
  desc << "clients=" << config.clients << " rounds=" << config.rounds
       << " threads=" << config.threads << " seed=" << config.seed
       << " uplink=" << out.uplink_spec;
  if (hier) {
    desc << " tiers=";
    for (std::size_t l = 0; l < config.topology.tiers.size(); ++l)
      desc << (l ? "x" : "") << config.topology.tiers[l];
    desc << " backhaul='" << config.topology.backhaul_spec << "'"
         << " edgemode=" << edge_mode_name(config.topology.edge_mode)
         << " shard=" << shard_strategy_name(config.topology.sharding);
  } else {
    desc << " flat";
  }
  if (out.scheduler) desc << " scheduler=" << out.scheduler->name();
  if (config.dirichlet_alpha > 0.0)
    desc << " dirichlet=" << config.dirichlet_alpha;
  if (!config.population.empty())
    desc << " population='" << format_population_spec(config.population)
         << "'";
  desc << " dropout=" << config.failures.dropout_rate
       << " edge_fail=" << config.failures.edge_failure_rate
       << " deadline=" << config.failures.straggler_deadline_seconds;
  out.describe = desc.str();
  return out;
}

nn::ModelConfig tiny_model() {
  nn::ModelConfig cfg;
  cfg.arch = "mobilenet_v2";
  cfg.scale = nn::ModelScale::kTiny;
  return cfg;
}

FlRunResult run_case(const DrawnCase& drawn, data::DatasetPtr train,
                     data::DatasetPtr test, std::size_t threads) {
  FlRunConfig config = drawn.config;
  config.threads = threads;
  FlCoordinator coordinator(tiny_model(), std::move(train), std::move(test),
                            config,
                            make_codec(parse_codec_spec(drawn.uplink_spec)),
                            drawn.scheduler);
  return coordinator.run();
}

void check_invariants(const DrawnCase& drawn, const FlRunResult& result) {
  const FlRunConfig& config = drawn.config;
  const bool hier = config.topology.mode == TopologyMode::kHier;

  // 1. Liveness: churn never wedges the barrier or drops a round record.
  ASSERT_EQ(result.rounds.size(), static_cast<std::size_t>(config.rounds));

  // 4. Streaming memory, per aggregation point.
  ASSERT_GE(result.peak_decoded_per_node.size(), 1u);
  for (const std::size_t peak : result.peak_decoded_per_node)
    EXPECT_LE(peak, 1u);
  EXPECT_LE(result.peak_decoded_updates, 1u);

  const std::size_t interior = result.peak_decoded_per_node.size() - 1;
  for (const RoundRecord& record : result.rounds) {
    SCOPED_TRACE(::testing::Message() << "round " << record.round);
    // Eligibility accounting: the two counts always cover the fleet, and
    // ineligible trace entries match the count one-for-one. Without a
    // population everyone is eligible every round.
    EXPECT_EQ(record.eligible_clients + record.ineligible_clients,
              config.clients);
    std::size_t ineligible_traces = 0;
    for (const ClientTraceEntry& entry : record.clients)
      if (entry.status == DeliveryStatus::kIneligible) {
        ++ineligible_traces;
        EXPECT_FALSE(entry.eligible);
      }
    EXPECT_EQ(ineligible_traces, record.ineligible_clients);
    if (config.population.empty()) {
      EXPECT_EQ(record.eligible_clients, config.clients);
      EXPECT_EQ(ineligible_traces, 0u);
    } else {
      EXPECT_GE(record.eligible_clients, 1u);  // zero-eligible fallback
    }
    double aggregated_weight = 0.0;
    std::size_t aggregated = 0, uplink_bytes = 0;
    for (const ClientTraceEntry& entry : record.clients) {
      EXPECT_LT(entry.client, config.clients);
      if (hier) {
        EXPECT_GE(entry.node, 1u);
        EXPECT_LE(entry.node, interior);
      } else {
        EXPECT_EQ(entry.node, 0u);
      }
      if (entry.status == DeliveryStatus::kAggregated) {
        aggregated_weight += entry.weight;
        uplink_bytes += entry.payload_bytes;
        ++aggregated;
      } else {
        // 2 (corollary): churned deliveries never carry weight.
        EXPECT_EQ(entry.weight, 0.0)
            << delivery_status_name(entry.status) << " entry with weight";
      }
      // Crashed edges host nobody this round.
      for (const std::size_t crashed : record.crashed_nodes)
        EXPECT_NE(entry.node, 1 + crashed);
    }
    // 2. Weight conservation: root weight == aggregated client weight
    //    minus what buffered parents shipped without (late partials).
    //    Exact conservation is only a guarantee of the synchronous edge
    //    mode. A buffered interior node ships after K folds, so the
    //    round can close with the rest of the subtree's weight still
    //    sitting in node accumulators (open_round aborts those
    //    leftovers) or in flight (counted in the run-wide late_events).
    //    Either way buffered weight can vanish en route — never
    //    materialize — so under kBuffered the equation relaxes to a
    //    non-negative deficit, and stays exact everywhere else.
    double late_partial_weight = 0.0;
    for (const EdgeTraceEntry& entry : record.edges) {
      EXPECT_GE(entry.tier, 1u);
      if (entry.status == DeliveryStatus::kLate)
        late_partial_weight += entry.weight;
    }
    const double deficit =
        aggregated_weight - late_partial_weight - record.aggregate_weight;
    if (drawn.config.topology.edge_mode == EdgeMode::kBuffered) {
      EXPECT_GE(deficit, -1e-9);
    } else {
      // (late_events can still be nonzero here — a client upload landing
      // after its round closed counts but never folds, so it is absent
      // from both sides of the equation.)
      EXPECT_DOUBLE_EQ(record.aggregate_weight,
                       aggregated_weight - late_partial_weight);
    }
    EXPECT_EQ(record.participants, aggregated);
    // 3. Byte accounting.
    EXPECT_EQ(record.bytes_sent, uplink_bytes);
    std::size_t tier_sum = 0, tier_raw_sum = 0;
    for (const std::size_t b : record.backhaul_tier_bytes) tier_sum += b;
    for (const std::size_t b : record.backhaul_tier_raw_bytes)
      tier_raw_sum += b;
    EXPECT_EQ(tier_sum, record.backhaul_bytes);
    EXPECT_EQ(tier_raw_sum, record.backhaul_raw_bytes);
    if (!hier) {
      EXPECT_TRUE(record.backhaul_tier_bytes.empty());
      EXPECT_TRUE(record.crashed_nodes.empty());
      EXPECT_TRUE(record.edges.empty());
    }
  }
}

void expect_identical(const FlRunResult& a, const FlRunResult& b) {
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  EXPECT_EQ(a.late_events, b.late_events);
  EXPECT_DOUBLE_EQ(a.final_accuracy, b.final_accuracy);
  for (std::size_t r = 0; r < a.rounds.size(); ++r) {
    const RoundRecord& ra = a.rounds[r];
    const RoundRecord& rb = b.rounds[r];
    EXPECT_EQ(ra.bytes_sent, rb.bytes_sent);
    EXPECT_EQ(ra.backhaul_bytes, rb.backhaul_bytes);
    EXPECT_EQ(ra.downlink_bytes, rb.downlink_bytes);
    EXPECT_EQ(ra.participants, rb.participants);
    EXPECT_EQ(ra.eligible_clients, rb.eligible_clients);
    EXPECT_EQ(ra.ineligible_clients, rb.ineligible_clients);
    EXPECT_EQ(ra.crashed_nodes, rb.crashed_nodes);
    EXPECT_DOUBLE_EQ(ra.aggregate_weight, rb.aggregate_weight);
    EXPECT_DOUBLE_EQ(ra.virtual_seconds, rb.virtual_seconds);
    ASSERT_EQ(ra.clients.size(), rb.clients.size());
    for (std::size_t c = 0; c < ra.clients.size(); ++c) {
      EXPECT_EQ(ra.clients[c].client, rb.clients[c].client);
      EXPECT_EQ(ra.clients[c].node, rb.clients[c].node);
      EXPECT_EQ(ra.clients[c].status, rb.clients[c].status);
      EXPECT_EQ(ra.clients[c].payload_bytes, rb.clients[c].payload_bytes);
      EXPECT_DOUBLE_EQ(ra.clients[c].arrival_seconds,
                       rb.clients[c].arrival_seconds);
    }
    ASSERT_EQ(ra.edges.size(), rb.edges.size());
    for (std::size_t e = 0; e < ra.edges.size(); ++e) {
      EXPECT_EQ(ra.edges[e].edge, rb.edges[e].edge);
      EXPECT_EQ(ra.edges[e].status, rb.edges[e].status);
      EXPECT_EQ(ra.edges[e].payload_bytes, rb.edges[e].payload_bytes);
      EXPECT_DOUBLE_EQ(ra.edges[e].weight, rb.edges[e].weight);
    }
  }
}

TEST(TreePropertyTest, RandomConfigurationsHoldTheDesignInvariants) {
  const int iterations = iteration_budget();
  auto [train, test] = data::make_dataset("cifar10");
  const auto train_slice = data::take(train, 16);
  const auto test_slice = data::take(test, 8);
  Rng rng(kMasterSeed);
  // FEDSZ_PBT_ONLY=<i> replays one reported iteration without running the
  // earlier ones (the draws still consume the RNG, so case i is identical).
  const char* only_env = std::getenv("FEDSZ_PBT_ONLY");
  const int only = only_env ? std::atoi(only_env) : -1;
  for (int i = 0; i < iterations; ++i) {
    const DrawnCase drawn = draw_case(rng);
    if (only >= 0 && i != only) continue;
    SCOPED_TRACE(::testing::Message()
                 << "iteration " << i << ": " << drawn.describe);
    const FlRunResult result =
        run_case(drawn, train_slice, test_slice, drawn.config.threads);
    check_invariants(drawn, result);
    if (testing::Test::HasFatalFailure()) return;
    // 5. Thread-count independence, spot-checked to keep the harness fast:
    //    the virtual clock, not the pool, orders every fold.
    if (i % 10 == 0) {
      const std::size_t other = drawn.config.threads == 1 ? 4 : 1;
      expect_identical(result,
                       run_case(drawn, train_slice, test_slice, other));
    }
  }
}

}  // namespace
}  // namespace fedsz::core

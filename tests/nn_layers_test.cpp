// Layer-level tests: numerical gradient checks for every layer type (the
// backbone correctness property of the training substrate), shape handling,
// and BatchNorm running-statistics semantics.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "nn/batchnorm.hpp"
#include "nn/conv.hpp"
#include "nn/layers.hpp"
#include "nn/loss.hpp"
#include "nn/sequential.hpp"
#include "util/rng.hpp"

namespace fedsz::nn {
namespace {

Tensor random_input(Shape shape, std::uint64_t seed) {
  Rng rng(seed);
  Tensor t(std::move(shape));
  for (std::size_t i = 0; i < t.numel(); ++i)
    t[i] = static_cast<float>(rng.normal(0.0, 1.0));
  return t;
}

/// Compare analytic parameter gradients against central differences through
/// a cross-entropy head. Checks up to `per_param` entries per parameter.
void expect_gradients_match(Model& model, const Tensor& input,
                            const std::vector<int>& labels,
                            double tolerance = 0.05,
                            std::size_t per_param = 4) {
  model.zero_grad();
  const Tensor logits = model.forward(input, true);
  const LossResult loss =
      softmax_cross_entropy(logits, {labels.data(), labels.size()});
  model.backward(loss.grad_logits);
  for (const ParamRef& p : model.parameters()) {
    const std::size_t stride =
        std::max<std::size_t>(1, p.value->numel() / per_param);
    for (std::size_t i = 0; i < p.value->numel(); i += stride) {
      const float original = (*p.value)[i];
      const float h = 1e-3f;
      (*p.value)[i] = original + h;
      const double loss_plus =
          softmax_cross_entropy(model.forward(input, true),
                                {labels.data(), labels.size()})
              .loss;
      (*p.value)[i] = original - h;
      const double loss_minus =
          softmax_cross_entropy(model.forward(input, true),
                                {labels.data(), labels.size()})
              .loss;
      (*p.value)[i] = original;
      const double numeric = (loss_plus - loss_minus) / (2.0 * h);
      const double analytic = (*p.grad)[i];
      const double denom =
          std::max(1e-3, std::fabs(numeric) + std::fabs(analytic));
      EXPECT_LT(std::fabs(numeric - analytic) / denom, tolerance)
          << p.name << "[" << i << "]: numeric=" << numeric
          << " analytic=" << analytic;
    }
  }
}

// ---- gradient checks ----

TEST(GradCheck, Linear) {
  Rng rng(1);
  auto root = std::make_shared<Sequential>();
  root->add(std::make_shared<Flatten>());
  root->add(std::make_shared<Linear>(12, 4, rng));
  Model model(root);
  expect_gradients_match(model, random_input({3, 12, 1, 1}, 2), {0, 1, 2});
}

TEST(GradCheck, ConvStride1) {
  Rng rng(3);
  auto root = std::make_shared<Sequential>();
  root->add(std::make_shared<Conv2d>(2, 4, 3, 1, 1, 1, true, rng));
  root->add(std::make_shared<Flatten>());
  root->add(std::make_shared<Linear>(4 * 6 * 6, 3, rng));
  Model model(root);
  expect_gradients_match(model, random_input({2, 2, 6, 6}, 4), {0, 2});
}

TEST(GradCheck, ConvStride2NoPadding) {
  Rng rng(5);
  auto root = std::make_shared<Sequential>();
  root->add(std::make_shared<Conv2d>(3, 5, 3, 2, 0, 1, true, rng));
  root->add(std::make_shared<Flatten>());
  root->add(std::make_shared<Linear>(5 * 3 * 3, 3, rng));
  Model model(root);
  expect_gradients_match(model, random_input({2, 3, 7, 7}, 6), {1, 2});
}

TEST(GradCheck, DepthwiseConv) {
  Rng rng(7);
  auto root = std::make_shared<Sequential>();
  root->add(std::make_shared<Conv2d>(4, 4, 3, 1, 1, /*groups=*/4, false, rng));
  root->add(std::make_shared<Flatten>());
  root->add(std::make_shared<Linear>(4 * 5 * 5, 3, rng));
  Model model(root);
  expect_gradients_match(model, random_input({2, 4, 5, 5}, 8), {0, 1});
}

TEST(GradCheck, GroupedConv) {
  Rng rng(9);
  auto root = std::make_shared<Sequential>();
  root->add(std::make_shared<Conv2d>(4, 6, 3, 1, 1, /*groups=*/2, true, rng));
  root->add(std::make_shared<Flatten>());
  root->add(std::make_shared<Linear>(6 * 4 * 4, 2, rng));
  Model model(root);
  expect_gradients_match(model, random_input({2, 4, 4, 4}, 10), {0, 1});
}

TEST(GradCheck, BatchNormTraining) {
  Rng rng(11);
  auto root = std::make_shared<Sequential>();
  root->add(std::make_shared<Conv2d>(2, 4, 3, 1, 1, 1, false, rng));
  root->add(std::make_shared<BatchNorm2d>(4));
  root->add(std::make_shared<GlobalAvgPool>());
  root->add(std::make_shared<Flatten>());
  root->add(std::make_shared<Linear>(4, 3, rng));
  Model model(root);
  // BN updates running stats every forward; gradcheck's extra forwards only
  // shift them, not the batch statistics used in training mode.
  expect_gradients_match(model, random_input({4, 2, 5, 5}, 12), {0, 1, 2, 0});
}

TEST(GradCheck, MaxPool) {
  Rng rng(13);
  auto root = std::make_shared<Sequential>();
  root->add(std::make_shared<Conv2d>(2, 3, 3, 1, 1, 1, true, rng));
  root->add(std::make_shared<MaxPool2d>(2, 2));
  root->add(std::make_shared<Flatten>());
  root->add(std::make_shared<Linear>(3 * 3 * 3, 2, rng));
  Model model(root);
  expect_gradients_match(model, random_input({2, 2, 6, 6}, 14), {0, 1});
}

TEST(GradCheck, ResidualWithShortcut) {
  Rng rng(15);
  auto main = std::make_shared<Sequential>();
  main->add(std::make_shared<Conv2d>(3, 6, 3, 1, 1, 1, false, rng));
  main->add(std::make_shared<BatchNorm2d>(6));
  auto shortcut = std::make_shared<Sequential>();
  shortcut->add(std::make_shared<Conv2d>(3, 6, 1, 1, 0, 1, false, rng));
  shortcut->add(std::make_shared<BatchNorm2d>(6));
  auto root = std::make_shared<Sequential>();
  root->add(std::make_shared<Residual>(main, shortcut, true));
  root->add(std::make_shared<GlobalAvgPool>());
  root->add(std::make_shared<Flatten>());
  root->add(std::make_shared<Linear>(6, 3, rng));
  Model model(root);
  expect_gradients_match(model, random_input({3, 3, 5, 5}, 16), {0, 1, 2});
}

TEST(GradCheck, IdentityResidual) {
  Rng rng(17);
  auto main = std::make_shared<Sequential>();
  main->add(std::make_shared<Conv2d>(4, 4, 3, 1, 1, 1, true, rng));
  auto root = std::make_shared<Sequential>();
  root->add(std::make_shared<Residual>(main, nullptr, false));
  root->add(std::make_shared<Flatten>());
  root->add(std::make_shared<Linear>(4 * 4 * 4, 2, rng));
  Model model(root);
  expect_gradients_match(model, random_input({2, 4, 4, 4}, 18), {0, 1});
}

// ---- layer behaviours ----

TEST(ReLUTest, ClampsNegativeAndAboveSix) {
  ReLU relu6(6.0f);
  Tensor in = Tensor::from_data({4}, {-1.0f, 0.5f, 6.0f, 9.0f});
  const Tensor out = relu6.forward(in, true);
  EXPECT_EQ(out[0], 0.0f);
  EXPECT_EQ(out[1], 0.5f);
  EXPECT_EQ(out[2], 6.0f);
  EXPECT_EQ(out[3], 6.0f);
  const Tensor grad =
      relu6.backward(Tensor::from_data({4}, {1.0f, 1.0f, 1.0f, 1.0f}));
  EXPECT_EQ(grad[0], 0.0f);
  EXPECT_EQ(grad[1], 1.0f);
  EXPECT_EQ(grad[3], 0.0f);  // clamped region has zero gradient
}

TEST(MaxPoolTest, SelectsMaximumAndRoutesGradient) {
  MaxPool2d pool(2, 2);
  Tensor in = Tensor::from_data({1, 1, 2, 2}, {1.0f, 5.0f, 3.0f, 2.0f});
  const Tensor out = pool.forward(in, true);
  ASSERT_EQ(out.numel(), 1u);
  EXPECT_EQ(out[0], 5.0f);
  const Tensor grad = pool.backward(Tensor::from_data({1, 1, 1, 1}, {2.0f}));
  EXPECT_EQ(grad[1], 2.0f);
  EXPECT_EQ(grad[0], 0.0f);
}

TEST(GlobalAvgPoolTest, AveragesAndDistributes) {
  GlobalAvgPool pool;
  Tensor in = Tensor::from_data({1, 1, 2, 2}, {1.0f, 2.0f, 3.0f, 6.0f});
  const Tensor out = pool.forward(in, true);
  EXPECT_FLOAT_EQ(out[0], 3.0f);
  const Tensor grad = pool.backward(Tensor::from_data({1, 1, 1, 1}, {4.0f}));
  for (std::size_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(grad[i], 1.0f);
}

TEST(BatchNormTest, NormalizesBatchInTraining) {
  BatchNorm2d bn(2);
  Tensor in = random_input({8, 2, 4, 4}, 19);
  const Tensor out = bn.forward(in, true);
  // Per-channel mean ~0, var ~1 after normalization with default gamma/beta.
  for (int c = 0; c < 2; ++c) {
    double sum = 0.0, sum_sq = 0.0;
    int count = 0;
    for (int n = 0; n < 8; ++n)
      for (int i = 0; i < 16; ++i) {
        const float v = out[(n * 2 + c) * 16 + i];
        sum += v;
        sum_sq += v * v;
        ++count;
      }
    EXPECT_NEAR(sum / count, 0.0, 1e-4);
    EXPECT_NEAR(sum_sq / count, 1.0, 1e-2);
  }
}

TEST(BatchNormTest, RunningStatsConvergeToDataStats) {
  BatchNorm2d bn(1);
  Rng rng(21);
  for (int step = 0; step < 200; ++step) {
    Tensor in({16, 1, 2, 2});
    for (std::size_t i = 0; i < in.numel(); ++i)
      in[i] = static_cast<float>(rng.normal(3.0, 2.0));
    bn.forward(in, true);
  }
  std::vector<ParamRef> params;
  std::vector<BufferRef> buffers;
  bn.collect("bn.", params, buffers);
  ASSERT_EQ(buffers.size(), 3u);
  EXPECT_EQ(buffers[0].name, "bn.running_mean");
  EXPECT_NEAR((*buffers[0].value)[0], 3.0f, 0.3f);
  EXPECT_EQ(buffers[1].name, "bn.running_var");
  EXPECT_NEAR((*buffers[1].value)[0], 4.0f, 0.8f);
  EXPECT_EQ(buffers[2].name, "bn.num_batches_tracked");
  EXPECT_EQ((*buffers[2].value)[0], 200.0f);
}

TEST(BatchNormTest, EvalModeUsesRunningStats) {
  BatchNorm2d bn(1);
  Tensor in = Tensor::from_data({1, 1, 1, 2}, {10.0f, 20.0f});
  // Untouched running stats: mean 0, var 1 -> eval output == input (approx).
  const Tensor out = bn.forward(in, false);
  EXPECT_NEAR(out[0], 10.0f, 1e-3);
  EXPECT_NEAR(out[1], 20.0f, 1e-3);
}

TEST(DropoutTest, InactiveInEvalMode) {
  Dropout dropout(0.5f, 23);
  Tensor in = Tensor::full({100}, 1.0f);
  const Tensor out = dropout.forward(in, false);
  for (std::size_t i = 0; i < out.numel(); ++i) EXPECT_EQ(out[i], 1.0f);
}

TEST(DropoutTest, DropsAndRescalesInTraining) {
  Dropout dropout(0.5f, 25);
  Tensor in = Tensor::full({10000}, 1.0f);
  const Tensor out = dropout.forward(in, true);
  std::size_t zeros = 0;
  double sum = 0.0;
  for (std::size_t i = 0; i < out.numel(); ++i) {
    if (out[i] == 0.0f)
      ++zeros;
    else
      EXPECT_FLOAT_EQ(out[i], 2.0f);  // inverted-dropout scaling
    sum += out[i];
  }
  EXPECT_NEAR(static_cast<double>(zeros) / out.numel(), 0.5, 0.05);
  EXPECT_NEAR(sum / out.numel(), 1.0, 0.1);  // expectation preserved
}

TEST(DropoutTest, InvalidProbabilityThrows) {
  EXPECT_THROW(Dropout(-0.1f, 1), InvalidArgument);
  EXPECT_THROW(Dropout(1.0f, 1), InvalidArgument);
}

TEST(LayerShapes, ConvOutputGeometry) {
  Rng rng(27);
  Conv2d conv(3, 8, 3, 2, 1, 1, true, rng);
  const Tensor out = conv.forward(random_input({2, 3, 32, 32}, 28), true);
  EXPECT_EQ(out.shape(), (Shape{2, 8, 16, 16}));
}

TEST(LayerShapes, ShapeMismatchesThrow) {
  Rng rng(29);
  Conv2d conv(3, 8, 3, 1, 1, 1, true, rng);
  EXPECT_THROW(conv.forward(random_input({2, 4, 8, 8}, 30), true),
               InvalidArgument);
  Linear linear(10, 5, rng);
  EXPECT_THROW(linear.forward(random_input({2, 11}, 31), true),
               InvalidArgument);
  EXPECT_THROW(Conv2d(3, 8, 3, 1, 1, 2, true, rng), InvalidArgument);
}

TEST(LossTest, SoftmaxRowsSumToOne) {
  const Tensor logits = random_input({5, 7}, 33);
  const Tensor probs = softmax(logits);
  for (int n = 0; n < 5; ++n) {
    double sum = 0.0;
    for (int c = 0; c < 7; ++c) sum += probs[n * 7 + c];
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(LossTest, CrossEntropyOfUniformLogitsIsLogC) {
  Tensor logits({4, 10});
  const LossResult result =
      softmax_cross_entropy(logits, std::vector<int>{0, 3, 5, 9});
  EXPECT_NEAR(result.loss, std::log(10.0), 1e-5);
}

TEST(LossTest, GradientSumsToZeroPerRow) {
  const Tensor logits = random_input({3, 5}, 35);
  const LossResult result =
      softmax_cross_entropy(logits, std::vector<int>{1, 2, 4});
  for (int n = 0; n < 3; ++n) {
    double sum = 0.0;
    for (int c = 0; c < 5; ++c) sum += result.grad_logits[n * 5 + c];
    EXPECT_NEAR(sum, 0.0, 1e-6);
  }
}

TEST(LossTest, InvalidLabelsThrow) {
  Tensor logits({2, 3});
  EXPECT_THROW(softmax_cross_entropy(logits, std::vector<int>{0, 3}),
               InvalidArgument);
  EXPECT_THROW(softmax_cross_entropy(logits, std::vector<int>{0}),
               InvalidArgument);
}

}  // namespace
}  // namespace fedsz::nn

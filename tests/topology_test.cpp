// Tests for the hierarchical federation topology: client sharding,
// partial-aggregate exactness, the flat-equivalence regression pin
// (hier + identity backhaul + fanout == clients must reproduce the flat
// SyncScheduler trajectory exactly), determinism across thread counts,
// per-tier byte accounting, per-node decoded-update peaks, and the
// degenerate-config rejections.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/codec_spec.hpp"
#include "core/fl/coordinator.hpp"
#include "core/fl/topology.hpp"
#include "data/synthetic.hpp"

namespace fedsz::core {
namespace {

nn::ModelConfig tiny_model() {
  nn::ModelConfig cfg;
  cfg.arch = "mobilenet_v2";
  cfg.scale = nn::ModelScale::kTiny;
  return cfg;
}

TEST(ShardClientsTest, ContiguousShardsCoverEveryClient) {
  const auto shards = shard_clients(10, 4);
  ASSERT_EQ(shards.size(), 3u);  // ceil(10 / 4)
  EXPECT_EQ(shards[0], (std::vector<std::size_t>{0, 1, 2, 3}));
  EXPECT_EQ(shards[1], (std::vector<std::size_t>{4, 5, 6, 7}));
  EXPECT_EQ(shards[2], (std::vector<std::size_t>{8, 9}));  // short tail
  // fanout >= clients collapses to a single edge.
  EXPECT_EQ(shard_clients(3, 8).size(), 1u);
  EXPECT_THROW(shard_clients(0, 4), InvalidArgument);
  EXPECT_THROW(shard_clients(4, 0), InvalidArgument);
}

TEST(TopologyConfigTest, ValidateRejectsDegenerateSpecs) {
  TopologyConfig config;
  EXPECT_NO_THROW(config.validate());  // flat default
  config.mode = TopologyMode::kHier;
  config.fanout = 0;  // hier without a fanout
  EXPECT_THROW(config.validate(), InvalidArgument);
  config.fanout = 4;
  EXPECT_NO_THROW(config.validate());
  config.backhaul_spec = "fedsz:eb=rel:1e-3";
  EXPECT_NO_THROW(config.validate());
  config.backhaul_spec = "not-a-codec";  // malformed backhaul spec
  EXPECT_THROW(config.validate(), InvalidArgument);
  config.backhaul_spec = "fedsz:ef=on";  // comm keys cannot nest
  EXPECT_THROW(config.validate(), InvalidArgument);
  // Flat runs silently dropping hier-only options would mask mistakes.
  config = TopologyConfig{};
  config.fanout = 4;
  EXPECT_THROW(config.validate(), InvalidArgument);
  config = TopologyConfig{};
  config.backhaul_spec = "identity";
  EXPECT_THROW(config.validate(), InvalidArgument);
  config = TopologyConfig{};
  config.tiers = {8, 4};
  EXPECT_THROW(config.validate(), InvalidArgument);
  config = TopologyConfig{};
  config.edge_mode = EdgeMode::kBuffered;
  config.edge_buffer = 2;
  EXPECT_THROW(config.validate(), InvalidArgument);
  config = TopologyConfig{};
  config.sharding = ShardStrategy::kShuffled;
  EXPECT_THROW(config.validate(), InvalidArgument);
}

TEST(TopologyConfigTest, ValidateRejectsDegenerateTierVectors) {
  TopologyConfig config;
  config.mode = TopologyMode::kHier;
  // fanout is one-tier sugar; spelling out BOTH is ambiguous.
  config.fanout = 4;
  config.tiers = {8};
  EXPECT_THROW(config.validate(), InvalidArgument);
  config.fanout = 0;
  EXPECT_NO_THROW(config.validate());
  EXPECT_EQ(config.resolved_tiers(), std::vector<std::size_t>{8});
  // Sugar resolves exactly like the one-entry vector.
  TopologyConfig sugar;
  sugar.mode = TopologyMode::kHier;
  sugar.fanout = 8;
  EXPECT_EQ(sugar.resolved_tiers(), std::vector<std::size_t>{8});
  // Zero fan-ins are degenerate at any depth.
  config.tiers = {8, 0};
  EXPECT_THROW(config.validate(), InvalidArgument);
  config.tiers = {8, 4};
  EXPECT_NO_THROW(config.validate());
  // More per-tier backhaul overrides than tiers.
  config.tier_backhaul_specs = {"", "identity", "identity"};
  EXPECT_THROW(config.validate(), InvalidArgument);
  config.tier_backhaul_specs = {"", "fedsz:eb=rel:1e-3"};
  EXPECT_NO_THROW(config.validate());
  // Per-tier overrides are codec specs: malformed or comm-carrying throws.
  config.tier_backhaul_specs = {"", "fedsz:ef=on"};
  EXPECT_THROW(config.validate(), InvalidArgument);
  config.tier_backhaul_specs.clear();
  // Buffered mode needs a buffer size; sync must not carry one.
  config.edge_mode = EdgeMode::kBuffered;
  config.edge_buffer = 0;
  EXPECT_THROW(config.validate(), InvalidArgument);
  config.edge_buffer = 2;
  EXPECT_NO_THROW(config.validate());
  config.edge_mode = EdgeMode::kSync;
  EXPECT_THROW(config.validate(), InvalidArgument);
}

TEST(TopologyConfigTest, FlRunConfigValidateAndCommSpecRoundTrip) {
  FlRunConfig config;
  config.apply_comm_spec(
      parse_codec_spec("fedsz:topology=hier:8,backhaul=fedsz:eb=rel:1e-3"));
  EXPECT_EQ(config.topology.mode, TopologyMode::kHier);
  EXPECT_EQ(config.topology.tiers, std::vector<std::size_t>{8});
  EXPECT_EQ(config.topology.fanout, 0u);  // the grammar resolves to tiers
  EXPECT_EQ(parse_codec_spec(config.topology.backhaul_spec).bound.value,
            1e-3);
  EXPECT_NO_THROW(config.validate());
  config.topology.tiers.clear();  // degenerate hier flows through validate()
  EXPECT_THROW(config.validate(), InvalidArgument);
  // The full multi-tier key set folds in.
  config = FlRunConfig{};
  config.apply_comm_spec(parse_codec_spec(
      "fedsz:topology=hier:4x2,backhaul2=identity,edgemode=buffered:2,"
      "edgeef=on,shard=shuffled"));
  EXPECT_EQ(config.topology.tiers, (std::vector<std::size_t>{4, 2}));
  ASSERT_EQ(config.topology.tier_backhaul_specs.size(), 2u);
  EXPECT_EQ(config.topology.tier_backhaul_specs[1], "identity");
  EXPECT_EQ(config.topology.edge_mode, EdgeMode::kBuffered);
  EXPECT_EQ(config.topology.edge_buffer, 2u);
  EXPECT_TRUE(config.topology.edge_error_feedback);
  EXPECT_EQ(config.topology.sharding, ShardStrategy::kShuffled);
  EXPECT_NO_THROW(config.validate());
  // Failure-schedule validation flows through FlRunConfig::validate too.
  config.failures.dropout_rate = 1.5;
  EXPECT_THROW(config.validate(), InvalidArgument);
  config.failures.dropout_rate = 0.0;
  config.failures.edge_failure_rate = 0.25;
  config.topology = TopologyConfig{};  // flat: no edges to crash
  EXPECT_THROW(config.validate(), InvalidArgument);
}

TEST(AggregationTreeTest, OwnershipAndConstructionGuards) {
  TopologyConfig config;
  config.mode = TopologyMode::kHier;
  config.fanout = 3;
  const AggregationTree tree(config, 7);
  EXPECT_EQ(tree.edge_count(), 3u);
  EXPECT_EQ(tree.edge_of(0), 0u);
  EXPECT_EQ(tree.edge_of(2), 0u);
  EXPECT_EQ(tree.edge_of(3), 1u);
  EXPECT_EQ(tree.edge_of(6), 2u);
  EXPECT_THROW(tree.edge_of(7), InvalidArgument);
  EXPECT_EQ(tree.edge(2).members().size(), 1u);
  EXPECT_THROW(tree.edge(3), InvalidArgument);
  // Flat configs cannot build a tree, and zero clients cannot shard.
  EXPECT_THROW(AggregationTree(TopologyConfig{}, 4), InvalidArgument);
  EXPECT_THROW(AggregationTree(config, 0), InvalidArgument);
}

TEST(ShardClientsTest, ShuffledShardingIsASeededPermutation) {
  const auto a = shard_clients(10, 4, ShardStrategy::kShuffled, 99);
  const auto b = shard_clients(10, 4, ShardStrategy::kShuffled, 99);
  const auto c = shard_clients(10, 4, ShardStrategy::kShuffled, 100);
  EXPECT_EQ(a, b);  // deterministic per seed
  EXPECT_NE(a, c);  // and actually seed-dependent
  // Shard SIZES match the contiguous split; membership is a permutation.
  const auto contiguous = shard_clients(10, 4);
  ASSERT_EQ(a.size(), contiguous.size());
  std::vector<std::size_t> seen;
  for (std::size_t e = 0; e < a.size(); ++e) {
    EXPECT_EQ(a[e].size(), contiguous[e].size());
    seen.insert(seen.end(), a[e].begin(), a[e].end());
  }
  std::sort(seen.begin(), seen.end());
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(seen[i], i);
  // kContiguous through the 4-arg overload matches the classic split.
  EXPECT_EQ(shard_clients(10, 4, ShardStrategy::kContiguous, 99), contiguous);
}

TEST(AggregationTreeTest, MultiTierShapeParentsAndFlatIndexing) {
  TopologyConfig config;
  config.mode = TopologyMode::kHier;
  config.tiers = {4, 3, 2};
  const AggregationTree tree(config, 23);
  ASSERT_EQ(tree.levels(), 3u);
  EXPECT_EQ(tree.level_size(0), 6u);  // ceil(23 / 4)
  EXPECT_EQ(tree.level_size(1), 2u);  // ceil(6 / 3)
  EXPECT_EQ(tree.level_size(2), 1u);  // ceil(2 / 2)
  EXPECT_EQ(tree.interior_nodes(), 9u);
  // Flat indexing: level 0 first, then level 1, then level 2.
  EXPECT_EQ(tree.flat_index(0, 0), 0u);
  EXPECT_EQ(tree.flat_index(0, 5), 5u);
  EXPECT_EQ(tree.flat_index(1, 0), 6u);
  EXPECT_EQ(tree.flat_index(2, 0), 8u);
  EXPECT_THROW(tree.flat_index(0, 6), InvalidArgument);
  EXPECT_THROW(tree.flat_index(3, 0), InvalidArgument);
  // Parents group by the NEXT tier's fan-in.
  EXPECT_EQ(tree.parent_of(0, 0), 0u);
  EXPECT_EQ(tree.parent_of(0, 2), 0u);
  EXPECT_EQ(tree.parent_of(0, 3), 1u);
  EXPECT_EQ(tree.parent_of(0, 5), 1u);
  EXPECT_EQ(tree.parent_of(1, 0), 0u);
  EXPECT_EQ(tree.parent_of(1, 1), 0u);
  EXPECT_THROW(tree.parent_of(2, 0), InvalidArgument);  // top ships to root
  // Upper-tier members are child level-indices; tiers are 1-based.
  EXPECT_EQ(tree.node(1, 0).members(),
            (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_EQ(tree.node(1, 1).members(), (std::vector<std::size_t>{3, 4, 5}));
  EXPECT_EQ(tree.node(2, 0).tier(), 3u);
  // The short tail still lands somewhere: every client has an owner.
  for (std::size_t i = 0; i < 23; ++i) EXPECT_LT(tree.edge_of(i), 6u);
}

TEST(PartialAggregateTest, MergedPartialsReproduceTheFlatWeightedMean) {
  StateDict reference;
  reference.set("w", Tensor::from_data({4}, {0.0f, 0.0f, 0.0f, 0.0f}));
  auto update = [](float v) {
    StateDict dict;
    dict.set("w", Tensor::from_data({4}, {v, 2 * v, -v, 0.5f * v}));
    return dict;
  };
  // Flat: one accumulator folds all four updates.
  StreamingMean flat;
  flat.begin(reference);
  flat.add(update(1.0f), 10.0);
  flat.add(update(2.0f), 30.0);
  flat.add(update(-3.0f), 20.0);
  flat.add(update(4.0f), 40.0);
  const StateDict flat_mean = flat.finalize();
  // Hier: two edges fold two updates each; the root merges the partials.
  StreamingMean left, right, root;
  left.begin(reference);
  left.add(update(1.0f), 10.0);
  left.add(update(2.0f), 30.0);
  right.begin(reference);
  right.add(update(-3.0f), 20.0);
  right.add(update(4.0f), 40.0);
  const PartialAggregate a = left.finalize_partial();
  const PartialAggregate b = right.finalize_partial();
  EXPECT_DOUBLE_EQ(a.weight, 40.0);
  EXPECT_DOUBLE_EQ(b.weight, 60.0);
  EXPECT_EQ(a.count, 2u);
  root.begin(reference);
  root.add(a.mean, a.weight);
  root.add(b.mean, b.weight);
  const StateDict merged = root.finalize();
  for (std::size_t k = 0; k < 4; ++k)
    EXPECT_NEAR(merged.get("w")[k], flat_mean.get("w")[k], 1e-6f);
  // A single partial merged into a fresh accumulator is bit-exact — the
  // foundation of the flat-equivalence pin below.
  StreamingMean whole, relay;
  whole.begin(reference);
  whole.add(update(1.0f), 10.0);
  whole.add(update(2.0f), 30.0);
  whole.add(update(-3.0f), 20.0);
  whole.add(update(4.0f), 40.0);
  const PartialAggregate all = whole.finalize_partial();
  relay.begin(reference);
  relay.add(all.mean, all.weight);
  EXPECT_TRUE(relay.finalize().equals(flat_mean));
}

TEST(PartialAggregateTest, AggregatorPartialPathAndZeroWeight) {
  auto aggregator = make_fedavg();
  StateDict reference;
  reference.set("w", Tensor::from_data({2}, {0.0f, 0.0f}));
  StateDict update;
  update.set("w", Tensor::from_data({2}, {2.0f, 4.0f}));
  aggregator->begin_round(reference);
  EXPECT_THROW(aggregator->finalize_partial(),
               InvalidArgument);  // nothing folded
  aggregator->begin_round(reference);
  aggregator->accumulate(update, 0.0);  // zero weight is a legal partial
  const PartialAggregate partial = aggregator->finalize_partial();
  EXPECT_DOUBLE_EQ(partial.weight, 0.0);
  EXPECT_EQ(partial.count, 1u);
  // Root side: a zero-weight partial merges as a no-op.
  auto root = make_fedavg();
  StateDict global = reference;
  root->begin_round(global);
  root->merge_partial(partial.mean, partial.weight);
  root->merge_partial(update, 8.0);
  root->finalize(global);
  EXPECT_FLOAT_EQ(global.get("w")[0], 2.0f);
  EXPECT_FLOAT_EQ(global.get("w")[1], 4.0f);
}

// ---- coordinator runs ----

FlRunConfig hier_config(std::size_t clients, int rounds, std::size_t fanout,
                        const std::string& backhaul,
                        std::size_t threads = 2) {
  FlRunConfig config;
  config.clients = clients;
  config.rounds = rounds;
  config.eval_limit = 64;
  config.threads = threads;
  config.seed = 123;
  config.client.batch_size = 16;
  config.topology.mode = TopologyMode::kHier;
  config.topology.fanout = fanout;
  config.topology.backhaul_spec = backhaul;
  return config;
}

TEST(TopologyCoordinatorTest, IdentityBackhaulFanoutNReproducesFlatExactly) {
  auto [train, test] = data::make_dataset("cifar10");
  const auto codec = make_codec(parse_codec_spec("fedsz:eb=rel:1e-2"));

  FlRunConfig flat;
  flat.clients = 3;
  flat.rounds = 3;
  flat.eval_limit = 64;
  flat.threads = 3;
  flat.seed = 123;
  flat.client.batch_size = 16;
  FlCoordinator flat_coordinator(tiny_model(), data::take(train, 96),
                                 data::take(test, 64), flat, codec);
  const FlRunResult flat_result = flat_coordinator.run();

  // One edge folding everyone, identity backhaul: the partial crosses the
  // backhaul bit-exactly and merges bit-exactly, so the accuracy/byte
  // trajectory must match the flat run EXACTLY, round for round.
  FlRunConfig hier = hier_config(3, 3, /*fanout=*/3, "identity", 3);
  FlCoordinator hier_coordinator(tiny_model(), data::take(train, 96),
                                 data::take(test, 64), hier, codec);
  const FlRunResult hier_result = hier_coordinator.run();

  ASSERT_EQ(hier_result.rounds.size(), flat_result.rounds.size());
  for (std::size_t r = 0; r < flat_result.rounds.size(); ++r) {
    EXPECT_DOUBLE_EQ(hier_result.rounds[r].accuracy,
                     flat_result.rounds[r].accuracy)
        << "round " << r;
    EXPECT_EQ(hier_result.rounds[r].bytes_sent,
              flat_result.rounds[r].bytes_sent)
        << "round " << r;
    EXPECT_EQ(hier_result.rounds[r].participants,
              flat_result.rounds[r].participants);
    // The hier run's single partial carries the whole cohort.
    ASSERT_EQ(hier_result.rounds[r].edges.size(), 1u);
    EXPECT_EQ(hier_result.rounds[r].edges[0].cohort, 3u);
    EXPECT_GT(hier_result.rounds[r].backhaul_bytes, 0u);
    // Identity backhaul: the partial ships uncompressed.
    EXPECT_NEAR(hier_result.rounds[r].backhaul_compression_ratio(), 1.0,
                1e-9);
  }
  EXPECT_DOUBLE_EQ(hier_result.final_accuracy, flat_result.final_accuracy);
}

TEST(TopologyCoordinatorTest, DeterministicAndByteIdenticalAcrossThreads) {
  auto [train, test] = data::make_dataset("cifar10");
  auto run_once = [&](std::size_t threads) {
    FlRunConfig config =
        hier_config(8, 2, /*fanout=*/3, "fedsz:eb=rel:1e-2", threads);
    config.downlink_spec = "fedsz:eb=rel:1e-3";
    config.evaluate_every_round = false;
    FlCoordinator coordinator(tiny_model(), data::take(train, 64),
                              data::take(test, 32), config,
                              make_fedsz_codec());
    return coordinator.run();
  };
  const FlRunResult a = run_once(1);
  const FlRunResult b = run_once(4);
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  for (std::size_t r = 0; r < a.rounds.size(); ++r) {
    const RoundRecord& ra = a.rounds[r];
    const RoundRecord& rb = b.rounds[r];
    EXPECT_EQ(ra.bytes_sent, rb.bytes_sent);
    EXPECT_EQ(ra.backhaul_bytes, rb.backhaul_bytes);
    EXPECT_EQ(ra.downlink_bytes, rb.downlink_bytes);
    EXPECT_EQ(ra.backhaul_downlink_bytes, rb.backhaul_downlink_bytes);
    EXPECT_DOUBLE_EQ(ra.virtual_seconds, rb.virtual_seconds);
    ASSERT_EQ(ra.clients.size(), rb.clients.size());
    for (std::size_t c = 0; c < ra.clients.size(); ++c) {
      EXPECT_EQ(ra.clients[c].client, rb.clients[c].client);
      EXPECT_EQ(ra.clients[c].node, rb.clients[c].node);
      EXPECT_EQ(ra.clients[c].payload_bytes, rb.clients[c].payload_bytes);
    }
    ASSERT_EQ(ra.edges.size(), rb.edges.size());
    for (std::size_t e = 0; e < ra.edges.size(); ++e) {
      EXPECT_EQ(ra.edges[e].edge, rb.edges[e].edge);
      EXPECT_EQ(ra.edges[e].payload_bytes, rb.edges[e].payload_bytes);
      EXPECT_DOUBLE_EQ(ra.edges[e].arrival_seconds,
                       rb.edges[e].arrival_seconds);
    }
  }
  EXPECT_DOUBLE_EQ(a.final_accuracy, b.final_accuracy);
}

TEST(TopologyCoordinatorTest, PerTierByteAccountingSumsToRecordTotals) {
  auto [train, test] = data::make_dataset("cifar10");
  FlRunConfig config = hier_config(6, 2, /*fanout=*/2, "fedsz:eb=rel:1e-2");
  config.downlink_spec = "fedsz:eb=rel:1e-3";
  FlCoordinator coordinator(tiny_model(), data::take(train, 48),
                            data::take(test, 32), config,
                            make_fedsz_codec());
  const FlRunResult result = coordinator.run();
  ASSERT_EQ(result.rounds.size(), 2u);
  for (const RoundRecord& record : result.rounds) {
    ASSERT_EQ(record.edges.size(), 3u);  // ceil(6 / 2)
    std::size_t uplink = 0, downlink = 0, backhaul = 0, backhaul_raw = 0,
                backhaul_down = 0;
    for (const ClientTraceEntry& entry : record.clients) {
      uplink += entry.payload_bytes;
      downlink += entry.downlink_bytes;
      EXPECT_GE(entry.node, 1u);  // every update folded at an edge
      EXPECT_LE(entry.node, 3u);
    }
    for (const EdgeTraceEntry& entry : record.edges) {
      backhaul += entry.payload_bytes;
      backhaul_raw += entry.raw_bytes;
      backhaul_down += entry.downlink_bytes;
      EXPECT_EQ(entry.cohort, 2u);
      EXPECT_GT(entry.weight, 0.0);
      EXPECT_GT(entry.transfer_seconds, 0.0);
      EXPECT_GT(entry.downlink_bytes, 0u);  // root->edge broadcast hop
      // The partial merges at the root after it left the edge.
      EXPECT_GE(entry.arrival_seconds, entry.transfer_seconds);
    }
    EXPECT_EQ(record.bytes_sent, uplink);
    EXPECT_EQ(record.downlink_bytes, downlink);
    EXPECT_EQ(record.backhaul_bytes, backhaul);
    EXPECT_EQ(record.backhaul_raw_bytes, backhaul_raw);
    EXPECT_EQ(record.backhaul_downlink_bytes, backhaul_down);
    EXPECT_GT(record.backhaul_bytes, 0u);
    // The lossy backhaul actually compresses the partials.
    EXPECT_GT(record.backhaul_compression_ratio(), 1.0);
    EXPECT_GT(record.backhaul_seconds, 0.0);
  }
}

TEST(TopologyCoordinatorTest, StreamingKeepsEveryNodeAtOneDecodedUpdate) {
  auto [train, test] = data::make_dataset("cifar10");
  FlRunConfig config = hier_config(8, 1, /*fanout=*/4, "");
  config.client.batch_size = 2;
  config.eval_limit = 16;
  config.threads = 4;
  FlCoordinator coordinator(tiny_model(), data::take(train, 16),
                            data::take(test, 16), config,
                            make_identity_codec());
  const FlRunResult result = coordinator.run();
  ASSERT_EQ(result.peak_decoded_per_node.size(), 3u);  // root + 2 edges
  for (const std::size_t peak : result.peak_decoded_per_node) {
    EXPECT_EQ(peak, 1u);
    EXPECT_LE(peak, config.topology.fanout);
  }
  EXPECT_EQ(result.peak_decoded_updates, 1u);
}

TEST(TopologyCoordinatorTest, SampledSchedulerDrawsPerEdgeCohort) {
  auto [train, test] = data::make_dataset("cifar10");
  FlRunConfig config = hier_config(8, 2, /*fanout=*/4, "");
  config.client.batch_size = 2;
  config.eval_limit = 16;
  config.evaluate_every_round = false;
  FlCoordinator coordinator(tiny_model(), data::take(train, 32),
                            data::take(test, 16), config,
                            make_identity_codec(),
                            make_sampled_sync_scheduler(0.5));
  const FlRunResult result = coordinator.run();
  ASSERT_EQ(result.rounds.size(), 2u);
  for (const RoundRecord& record : result.rounds) {
    // ceil(0.5 * 4) sampled under EACH edge, not 4 drawn globally.
    EXPECT_EQ(record.participants, 4u);
    ASSERT_EQ(record.edges.size(), 2u);
    for (const EdgeTraceEntry& entry : record.edges)
      EXPECT_EQ(entry.cohort, 2u);
    // Sampled members stay inside their edge's contiguous shard.
    for (const ClientTraceEntry& entry : record.clients)
      EXPECT_EQ(entry.node, 1u + entry.client / 4);
  }
}

TEST(TopologyCoordinatorTest, FailureFreeChainReproducesFlatExactly) {
  auto [train, test] = data::make_dataset("cifar10");
  const auto codec = make_codec(parse_codec_spec("fedsz:eb=rel:1e-2"));

  FlRunConfig flat;
  flat.clients = 3;
  flat.rounds = 2;
  flat.eval_limit = 64;
  flat.threads = 3;
  flat.seed = 123;
  flat.client.batch_size = 16;
  FlCoordinator flat_coordinator(tiny_model(), data::take(train, 96),
                                 data::take(test, 64), flat, codec);
  const FlRunResult flat_result = flat_coordinator.run();

  // A CHAIN ({clients, 1, 1}): one edge folds everyone, then each upper
  // tier relays a single partial. Single-partial merges are bit-exact and
  // identity re-encodes round-trip, so the multi-tier run must reproduce
  // the flat accuracy/byte trajectory exactly — the telescoped form of the
  // one-tier pin above.
  FlRunConfig chain = flat;
  chain.topology.mode = TopologyMode::kHier;
  chain.topology.tiers = {3, 1, 1};
  FlCoordinator chain_coordinator(tiny_model(), data::take(train, 96),
                                  data::take(test, 64), chain, codec);
  const FlRunResult chain_result = chain_coordinator.run();

  ASSERT_EQ(chain_result.rounds.size(), flat_result.rounds.size());
  for (std::size_t r = 0; r < flat_result.rounds.size(); ++r) {
    const RoundRecord& record = chain_result.rounds[r];
    EXPECT_DOUBLE_EQ(record.accuracy, flat_result.rounds[r].accuracy)
        << "round " << r;
    EXPECT_EQ(record.bytes_sent, flat_result.rounds[r].bytes_sent);
    EXPECT_EQ(record.participants, flat_result.rounds[r].participants);
    EXPECT_DOUBLE_EQ(record.aggregate_weight,
                     flat_result.rounds[r].aggregate_weight);
    // One partial per interior node, tiers 1..3, and the per-tier byte
    // split sums back to the round totals.
    ASSERT_EQ(record.edges.size(), 3u);
    ASSERT_EQ(record.backhaul_tier_bytes.size(), 3u);
    ASSERT_EQ(record.backhaul_tier_raw_bytes.size(), 3u);
    std::size_t tier_sum = 0, tier_raw_sum = 0;
    for (std::size_t t = 0; t < 3; ++t) {
      tier_sum += record.backhaul_tier_bytes[t];
      tier_raw_sum += record.backhaul_tier_raw_bytes[t];
    }
    EXPECT_EQ(tier_sum, record.backhaul_bytes);
    EXPECT_EQ(tier_raw_sum, record.backhaul_raw_bytes);
    for (const EdgeTraceEntry& entry : record.edges) {
      EXPECT_GE(entry.tier, 1u);
      EXPECT_LE(entry.tier, 3u);
      EXPECT_EQ(entry.status, DeliveryStatus::kAggregated);
      EXPECT_EQ(entry.cohort, 3u);  // every partial carries the whole cohort
    }
  }
  EXPECT_DOUBLE_EQ(chain_result.final_accuracy, flat_result.final_accuracy);
  // Every interior node streamed: one decoded payload alive at a time.
  ASSERT_EQ(chain_result.peak_decoded_per_node.size(), 4u);
  for (const std::size_t peak : chain_result.peak_decoded_per_node)
    EXPECT_EQ(peak, 1u);
}

// ---- churn injection ----

TEST(ChurnCoordinatorTest, DropoutConservesAggregateWeight) {
  auto [train, test] = data::make_dataset("cifar10");
  FlRunConfig config = hier_config(6, 2, /*fanout=*/3, "");
  config.evaluate_every_round = false;
  config.eval_limit = 16;
  config.client.batch_size = 2;
  config.failures.dropout_rate = 0.4;
  FlCoordinator coordinator(tiny_model(), data::take(train, 24),
                            data::take(test, 16), config,
                            make_identity_codec());
  const FlRunResult result = coordinator.run();
  ASSERT_EQ(result.rounds.size(), 2u);
  std::size_t dropped = 0;
  for (const RoundRecord& record : result.rounds) {
    double aggregated = 0.0;
    std::size_t folded = 0;
    for (const ClientTraceEntry& entry : record.clients) {
      if (entry.status == DeliveryStatus::kAggregated) {
        EXPECT_GT(entry.weight, 0.0);
        aggregated += entry.weight;
        ++folded;
      } else {
        // A dropped client vanishes before uploading: no payload, no
        // weight, but the trace still records the churn.
        ASSERT_EQ(entry.status, DeliveryStatus::kDropped);
        EXPECT_EQ(entry.weight, 0.0);
        EXPECT_EQ(entry.payload_bytes, 0u);
        ++dropped;
      }
    }
    // The ledger: only aggregated weight reaches the root.
    EXPECT_DOUBLE_EQ(record.aggregate_weight, aggregated);
    EXPECT_EQ(record.participants, folded);
    EXPECT_EQ(record.clients.size(), 6u);  // everyone is traced
  }
  EXPECT_GT(dropped, 0u);  // rate 0.4 over 12 dispatches, pinned seed
}

TEST(ChurnCoordinatorTest, StragglerDeadlineEvictsAndStillClosesRounds) {
  auto [train, test] = data::make_dataset("cifar10");
  auto base = [] {
    FlRunConfig config = hier_config(6, 2, /*fanout=*/3, "");
    config.evaluate_every_round = false;
    config.eval_limit = 16;
    config.client.batch_size = 2;
    config.compute_jitter = 0.5;  // spread arrivals so a deadline can split
    return config;
  };
  auto run = [&](const FlRunConfig& config) {
    FlCoordinator coordinator(tiny_model(), data::take(train, 24),
                              data::take(test, 16), config,
                              make_identity_codec());
    return coordinator.run();
  };
  // Reference run to place the deadline strictly between the 3rd and 4th
  // round-0 arrivals — the draws are seed-deterministic, so the churn run
  // repeats them and exactly three clients straggle past the deadline.
  const FlRunResult reference = run(base());
  std::vector<double> arrivals;
  for (const ClientTraceEntry& entry : reference.rounds[0].clients)
    arrivals.push_back(entry.arrival_seconds);
  std::sort(arrivals.begin(), arrivals.end());
  ASSERT_EQ(arrivals.size(), 6u);
  ASSERT_LT(arrivals[2], arrivals[3]);
  FlRunConfig config = base();
  config.failures.straggler_deadline_seconds =
      0.5 * (arrivals[2] + arrivals[3]);
  const FlRunResult result = run(config);
  ASSERT_EQ(result.rounds.size(), 2u);  // eviction never wedges the pump
  std::size_t evicted_round0 = 0;
  double aggregated = 0.0;
  for (const ClientTraceEntry& entry : result.rounds[0].clients) {
    if (entry.status == DeliveryStatus::kEvicted) {
      EXPECT_EQ(entry.weight, 0.0);
      EXPECT_EQ(entry.payload_bytes, 0u);
      ++evicted_round0;
    } else if (entry.status == DeliveryStatus::kAggregated) {
      aggregated += entry.weight;
    }
  }
  EXPECT_EQ(evicted_round0, 3u);
  EXPECT_EQ(result.rounds[0].participants, 3u);
  EXPECT_DOUBLE_EQ(result.rounds[0].aggregate_weight, aggregated);
  // Later rounds keep running (evicted clients are redispatched).
  EXPECT_EQ(result.rounds[1].clients.size(), 6u);
}

TEST(ChurnCoordinatorTest, EdgeCrashReShardsCohortsToSurvivingSiblings) {
  auto [train, test] = data::make_dataset("cifar10");
  FlRunConfig config = hier_config(6, 3, /*fanout=*/2, "");
  config.evaluate_every_round = false;
  config.eval_limit = 16;
  config.client.batch_size = 2;
  config.failures.edge_failure_rate = 0.5;
  FlCoordinator coordinator(tiny_model(), data::take(train, 24),
                            data::take(test, 16), config,
                            make_identity_codec());
  const FlRunResult result = coordinator.run();
  ASSERT_EQ(result.rounds.size(), 3u);
  std::size_t crashes = 0;
  for (const RoundRecord& record : result.rounds) {
    crashes += record.crashed_nodes.size();
    EXPECT_LT(record.crashed_nodes.size(), 3u);  // one edge always survives
    // Crash or not, full sync participation: every client is re-homed to a
    // surviving sibling and still aggregates.
    ASSERT_EQ(record.clients.size(), 6u);
    double aggregated = 0.0;
    for (const ClientTraceEntry& entry : record.clients) {
      EXPECT_EQ(entry.status, DeliveryStatus::kAggregated);
      aggregated += entry.weight;
      for (const std::size_t crashed : record.crashed_nodes)
        EXPECT_NE(entry.node, 1 + crashed)
            << "client folded at a crashed edge";
    }
    EXPECT_EQ(record.participants, 6u);
    EXPECT_DOUBLE_EQ(record.aggregate_weight, aggregated);
    // Only surviving edges ship partials.
    EXPECT_EQ(record.edges.size(), 3u - record.crashed_nodes.size());
  }
  EXPECT_GT(crashes, 0u);  // rate 0.5 over 9 edge-rounds, pinned seed
}

TEST(ChurnCoordinatorTest, ChurnIsDeterministicAcrossThreadCounts) {
  auto [train, test] = data::make_dataset("cifar10");
  auto run_once = [&](std::size_t threads) {
    FlRunConfig config =
        hier_config(8, 2, /*fanout=*/3, "fedsz:eb=rel:1e-2", threads);
    config.evaluate_every_round = false;
    config.eval_limit = 16;
    config.client.batch_size = 2;
    config.compute_jitter = 0.3;
    config.topology.sharding = ShardStrategy::kShuffled;
    config.failures.dropout_rate = 0.3;
    config.failures.edge_failure_rate = 0.4;
    config.failures.straggler_deadline_seconds = 60.0;
    FlCoordinator coordinator(tiny_model(), data::take(train, 32),
                              data::take(test, 16), config,
                              make_fedsz_codec());
    return coordinator.run();
  };
  // Same seed + same schedule => byte-identical traces, statuses included,
  // no matter how many pool threads race the real work.
  const FlRunResult a = run_once(1);
  const FlRunResult b = run_once(4);
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  EXPECT_EQ(a.late_events, b.late_events);
  for (std::size_t r = 0; r < a.rounds.size(); ++r) {
    const RoundRecord& ra = a.rounds[r];
    const RoundRecord& rb = b.rounds[r];
    EXPECT_EQ(ra.crashed_nodes, rb.crashed_nodes);
    EXPECT_EQ(ra.bytes_sent, rb.bytes_sent);
    EXPECT_EQ(ra.backhaul_bytes, rb.backhaul_bytes);
    EXPECT_EQ(ra.participants, rb.participants);
    EXPECT_DOUBLE_EQ(ra.aggregate_weight, rb.aggregate_weight);
    EXPECT_DOUBLE_EQ(ra.virtual_seconds, rb.virtual_seconds);
    ASSERT_EQ(ra.clients.size(), rb.clients.size());
    for (std::size_t c = 0; c < ra.clients.size(); ++c) {
      EXPECT_EQ(ra.clients[c].client, rb.clients[c].client);
      EXPECT_EQ(ra.clients[c].node, rb.clients[c].node);
      EXPECT_EQ(ra.clients[c].status, rb.clients[c].status);
      EXPECT_EQ(ra.clients[c].payload_bytes, rb.clients[c].payload_bytes);
      EXPECT_DOUBLE_EQ(ra.clients[c].weight, rb.clients[c].weight);
      EXPECT_DOUBLE_EQ(ra.clients[c].arrival_seconds,
                       rb.clients[c].arrival_seconds);
    }
    ASSERT_EQ(ra.edges.size(), rb.edges.size());
    for (std::size_t e = 0; e < ra.edges.size(); ++e) {
      EXPECT_EQ(ra.edges[e].edge, rb.edges[e].edge);
      EXPECT_EQ(ra.edges[e].status, rb.edges[e].status);
      EXPECT_EQ(ra.edges[e].payload_bytes, rb.edges[e].payload_bytes);
      EXPECT_DOUBLE_EQ(ra.edges[e].weight, rb.edges[e].weight);
    }
  }
  EXPECT_DOUBLE_EQ(a.final_accuracy, b.final_accuracy);
}

TEST(ChurnCoordinatorTest, FailuresRequireABarrierScheduler) {
  auto [train, test] = data::make_dataset("cifar10");
  FlRunConfig config;
  config.clients = 4;
  config.rounds = 1;
  config.failures.dropout_rate = 0.5;
  EXPECT_THROW(FlCoordinator(tiny_model(), data::take(train, 16),
                             data::take(test, 16), config,
                             make_identity_codec(),
                             make_buffered_async_scheduler({2, 0.5})),
               InvalidArgument);
}

TEST(TopologyCoordinatorTest, ContinuousSchedulerIsRejected) {
  auto [train, test] = data::make_dataset("cifar10");
  FlRunConfig config = hier_config(4, 1, /*fanout=*/2, "");
  EXPECT_THROW(FlCoordinator(tiny_model(), data::take(train, 16),
                             data::take(test, 16), config,
                             make_identity_codec(),
                             make_buffered_async_scheduler({2, 0.5})),
               InvalidArgument);
}

}  // namespace
}  // namespace fedsz::core

// Golden-fixture backward-compatibility: tiny v1, v2 and v3 bitstreams are
// checked in under tests/data/ together with the StateDicts they must decode
// to, so a future container change cannot silently drop support for old
// streams. The v2 fixture doubles as the ThresholdPolicy byte-regression
// pin: the default-policy writer must still reproduce it bit for bit. The
// v3 fixture pins the mixed-plan per-tensor container (per-tensor codecs,
// bounds and a raw path) the same way, so v3 writer drift is visible.
//
// Regenerate (only when a deliberate format change requires it):
//   FEDSZ_REGEN_GOLDEN=1 ./build/golden_fixture_test
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "core/fedsz.hpp"
#include "util/bytebuffer.hpp"

namespace fedsz::core {
namespace {

std::filesystem::path data_dir() {
  return std::filesystem::path(FEDSZ_TEST_DATA_DIR);
}

Bytes read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    ADD_FAILURE() << "missing golden fixture " << path
                  << " (regenerate with FEDSZ_REGEN_GOLDEN=1)";
    return {};
  }
  return Bytes((std::istreambuf_iterator<char>(in)),
               std::istreambuf_iterator<char>());
}

void write_file(const std::filesystem::path& path, const Bytes& bytes) {
  std::filesystem::create_directories(path.parent_path());
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

/// The fixture update: closed-form values (no RNG), so the generator and
/// the verifier can never drift.
StateDict golden_dict() {
  StateDict dict;
  {
    std::vector<float> values(2500);
    for (std::size_t i = 0; i < values.size(); ++i)
      values[i] = std::sin(static_cast<float>(i) * 0.01f);
    dict.set("features.0.weight", Tensor::from_data({50, 50}, values));
  }
  {
    std::vector<float> values(1500);
    for (std::size_t i = 0; i < values.size(); ++i)
      values[i] = 0.1f * std::cos(static_cast<float>(i) * 0.02f);
    dict.set("classifier.weight", Tensor::from_data({1500}, values));
  }
  {
    std::vector<float> values(16);
    for (std::size_t i = 0; i < values.size(); ++i)
      values[i] = 0.25f * static_cast<float>(i);
    dict.set("features.0.bias", Tensor::from_data({16}, values));
  }
  {
    std::vector<float> values(16);
    for (std::size_t i = 0; i < values.size(); ++i)
      values[i] = 1.0f + 0.125f * static_cast<float>(i);
    dict.set("bn.running_var", Tensor::from_data({16}, values));
  }
  return dict;
}

FedSzConfig golden_config() {
  FedSzConfig config;
  config.bound = lossy::ErrorBound::relative(1e-3);
  config.chunk_elements = 1024;  // the 2500-element tensor spans 3 chunks
  return config;
}

/// A fixed mixed-plan policy for the v3 fixture: two lossy tensors with
/// DIFFERENT codecs and bound modes, one raw tensor, one lossless — every
/// per-tensor branch of the v3 writer in a single stream. Closed-form, so
/// the fixture can always be regenerated from source.
class GoldenMixedPolicy final : public CompressionPolicy {
 public:
  std::string name() const override { return "golden-mixed"; }
  TensorPlan plan(const std::string& name, const Tensor& tensor,
                  const EncodeContext& ctx) const override {
    (void)tensor;
    (void)ctx;
    if (name == "features.0.weight")
      return TensorPlan::lossy(lossy::LossyId::kSz2,
                               lossy::ErrorBound::relative(1e-3));
    if (name == "classifier.weight")
      return TensorPlan::lossy(lossy::LossyId::kSz3,
                               lossy::ErrorBound::absolute(5e-4));
    if (name == "features.0.bias") return TensorPlan::raw();
    return TensorPlan::lossless();
  }
};

FedSzConfig golden_v3_config() {
  FedSzConfig config = golden_config();
  config.policy = std::make_shared<const GoldenMixedPolicy>();
  return config;
}

/// The v4 fixture policy: an SZ tensor and a sparse tensor in ONE stream
/// (the kSparse path tag rides the same v3 container), plus the raw and
/// lossless branches. Closed-form like its siblings.
class GoldenSparseMixedPolicy final : public CompressionPolicy {
 public:
  std::string name() const override { return "golden-sparse-mixed"; }
  TensorPlan plan(const std::string& name, const Tensor& tensor,
                  const EncodeContext& ctx) const override {
    (void)tensor;
    (void)ctx;
    if (name == "features.0.weight")
      return TensorPlan::lossy(lossy::LossyId::kSz2,
                               lossy::ErrorBound::relative(1e-3));
    if (name == "classifier.weight")
      return TensorPlan::sparse(lossy::ErrorBound::relative(1e-3), 0.8, 6);
    if (name == "features.0.bias") return TensorPlan::raw();
    return TensorPlan::lossless();
  }
};

FedSzConfig golden_v4_config() {
  FedSzConfig config = golden_config();
  config.policy = std::make_shared<const GoldenSparseMixedPolicy>();
  return config;
}

/// The original (pre-chunking) v1 writer, reproduced so the fixture can be
/// regenerated from source if ever needed.
Bytes make_v1_stream(const StateDict& dict, const FedSzConfig& config) {
  const lossy::LossyCodec& lossy_codec = lossy::lossy_codec(config.lossy_id);
  const lossless::LosslessCodec& lossless_codec =
      lossless::lossless_codec(config.lossless_id);
  StateDict lossless_partition;
  ByteWriter w;
  const char magic[4] = {'F', 'S', 'Z', '1'};
  w.put_bytes({reinterpret_cast<const std::uint8_t*>(magic), 4});
  w.put_u16(1);
  w.put_u8(static_cast<std::uint8_t>(config.lossy_id));
  w.put_u8(static_cast<std::uint8_t>(config.lossless_id));
  w.put_u8(static_cast<std::uint8_t>(config.bound.mode));
  w.put_f64(config.bound.value);
  std::vector<const StateDict::Entry*> lossy_entries;
  for (const auto& entry : dict) {
    if (is_lossy_entry(entry.first, entry.second.numel(),
                       config.lossy_threshold))
      lossy_entries.push_back(&entry);
    else
      lossless_partition.set(entry.first, entry.second);
  }
  w.put_u32(static_cast<std::uint32_t>(lossy_entries.size()));
  for (const StateDict::Entry* entry : lossy_entries) {
    w.put_string(entry->first);
    const Shape& shape = entry->second.shape();
    w.put_u8(static_cast<std::uint8_t>(shape.size()));
    for (const std::int64_t d : shape)
      w.put_varint(static_cast<std::uint64_t>(d));
    const Bytes payload =
        lossy_codec.compress(entry->second.span(), config.bound);
    w.put_blob({payload.data(), payload.size()});
  }
  const Bytes serialized = lossless_partition.serialize();
  const Bytes lossless_payload =
      lossless_codec.compress({serialized.data(), serialized.size()});
  w.put_blob({lossless_payload.data(), lossless_payload.size()});
  return w.finish();
}

bool regen_requested() {
  const char* env = std::getenv("FEDSZ_REGEN_GOLDEN");
  return env != nullptr && env[0] == '1';
}

void expect_dicts_identical(const StateDict& decoded,
                            const StateDict& expected) {
  ASSERT_EQ(decoded.size(), expected.size());
  for (const auto& [name, tensor] : expected) {
    ASSERT_TRUE(decoded.contains(name)) << name;
    EXPECT_TRUE(decoded.get(name).equals(tensor)) << name;
  }
}

TEST(GoldenFixtures, RegenerateWhenRequested) {
  if (!regen_requested()) GTEST_SKIP() << "set FEDSZ_REGEN_GOLDEN=1 to regen";
  const StateDict dict = golden_dict();
  const FedSz fedsz{golden_config()};
  const Bytes v1 = make_v1_stream(dict, golden_config());
  const Bytes v2 = fedsz.compress(dict);
  write_file(data_dir() / "golden_v1.fsz", v1);
  write_file(data_dir() / "golden_v2.fsz", v2);
  write_file(data_dir() / "golden_v1_expected.sd",
             fedsz.decompress({v1.data(), v1.size()}).serialize());
  write_file(data_dir() / "golden_v2_expected.sd",
             fedsz.decompress({v2.data(), v2.size()}).serialize());
  const FedSz mixed{golden_v3_config()};
  const Bytes v3 = mixed.compress(dict);
  write_file(data_dir() / "golden_v3.fsz", v3);
  write_file(data_dir() / "golden_v3_expected.sd",
             mixed.decompress({v3.data(), v3.size()}).serialize());
  const FedSz sparse_mixed{golden_v4_config()};
  const Bytes v4 = sparse_mixed.compress(dict);
  write_file(data_dir() / "golden_v4.fsz", v4);
  write_file(data_dir() / "golden_v4_expected.sd",
             sparse_mixed.decompress({v4.data(), v4.size()}).serialize());
}

TEST(GoldenFixtures, V1StreamStillDecodesToTheExpectedStateDict) {
  const Bytes stream = read_file(data_dir() / "golden_v1.fsz");
  const Bytes expected_bytes = read_file(data_dir() / "golden_v1_expected.sd");
  ASSERT_FALSE(stream.empty());
  ASSERT_FALSE(expected_bytes.empty());
  // Decode with a default-config codec: everything needed lives in the
  // stream header.
  CompressionStats stats;
  const StateDict decoded =
      FedSz{FedSzConfig{}}.decompress({stream.data(), stream.size()}, &stats);
  expect_dicts_identical(
      decoded,
      StateDict::deserialize({expected_bytes.data(), expected_bytes.size()}));
  EXPECT_EQ(stats.lossy_tensors, 2u);
  EXPECT_EQ(stats.lossless_tensors, 2u);
}

TEST(GoldenFixtures, V2StreamStillDecodesToTheExpectedStateDict) {
  const Bytes stream = read_file(data_dir() / "golden_v2.fsz");
  const Bytes expected_bytes = read_file(data_dir() / "golden_v2_expected.sd");
  ASSERT_FALSE(stream.empty());
  ASSERT_FALSE(expected_bytes.empty());
  CompressionStats stats;
  const StateDict decoded =
      FedSz{FedSzConfig{}}.decompress({stream.data(), stream.size()}, &stats);
  expect_dicts_identical(
      decoded,
      StateDict::deserialize({expected_bytes.data(), expected_bytes.size()}));
  EXPECT_EQ(stats.lossy_tensors, 2u);
  EXPECT_EQ(stats.lossy_chunks, 0u);  // decode does not re-chunk
}

TEST(GoldenFixtures, V3StreamStillDecodesToTheExpectedStateDict) {
  const Bytes stream = read_file(data_dir() / "golden_v3.fsz");
  const Bytes expected_bytes = read_file(data_dir() / "golden_v3_expected.sd");
  ASSERT_FALSE(stream.empty());
  ASSERT_FALSE(expected_bytes.empty());
  // Decode with a default-config codec: the per-tensor plans (codec ids,
  // bounds, paths) all live in the stream header.
  CompressionStats stats;
  const StateDict decoded =
      FedSz{FedSzConfig{}}.decompress({stream.data(), stream.size()}, &stats);
  expect_dicts_identical(
      decoded,
      StateDict::deserialize({expected_bytes.data(), expected_bytes.size()}));
  EXPECT_EQ(stats.lossy_tensors, 2u);
  EXPECT_EQ(stats.raw_tensors, 1u);
  EXPECT_EQ(stats.lossless_tensors, 1u);
  // The raw path ships untouched float bytes: the fixture's bias survives
  // bit for bit.
  const StateDict original = golden_dict();
  EXPECT_TRUE(
      decoded.get("features.0.bias").equals(original.get("features.0.bias")));
}

TEST(GoldenFixtures, V4StreamStillDecodesToTheExpectedStateDict) {
  const Bytes stream = read_file(data_dir() / "golden_v4.fsz");
  const Bytes expected_bytes = read_file(data_dir() / "golden_v4_expected.sd");
  ASSERT_FALSE(stream.empty());
  ASSERT_FALSE(expected_bytes.empty());
  // Decode with a default-config codec: the kSparse path tag and its params
  // live in the per-tensor plan table, like every other path.
  CompressionStats stats;
  const StateDict decoded =
      FedSz{FedSzConfig{}}.decompress({stream.data(), stream.size()}, &stats);
  expect_dicts_identical(
      decoded,
      StateDict::deserialize({expected_bytes.data(), expected_bytes.size()}));
  EXPECT_EQ(stats.lossy_tensors, 1u);
  EXPECT_EQ(stats.sparse_tensors, 1u);
  EXPECT_EQ(stats.raw_tensors, 1u);
  EXPECT_EQ(stats.lossless_tensors, 1u);
  // classifier.weight rode the sparse path at sparsity 0.8: 300 of its 1500
  // coefficients survive, and the counters in old streams must keep saying so.
  EXPECT_EQ(stats.sparse_total_elements, 1500u);
  EXPECT_EQ(stats.sparse_kept_elements, 300u);
}

TEST(GoldenFixtures, SparseMixedWriterStillEmitsTheV4FixtureBytes) {
  // The sparse-path byte-regression pin: the kSparse plan writer must keep
  // producing the exact recorded SZ+sparse container for the fixture update.
  const Bytes fixture = read_file(data_dir() / "golden_v4.fsz");
  ASSERT_FALSE(fixture.empty());
  const Bytes fresh = FedSz{golden_v4_config()}.compress(golden_dict());
  EXPECT_EQ(fresh, fixture);
}

TEST(GoldenFixtures, SingleByteCorruptionOfTheV4StreamNeverCrashes) {
  // Exhaustive single-byte clobber of the real mixed SZ+sparse fixture:
  // every mutation must either decode cleanly (payload bits a lossy stream
  // tolerates) or raise CorruptStream — never crash, never throw anything
  // untyped.
  const Bytes stream = read_file(data_dir() / "golden_v4.fsz");
  ASSERT_FALSE(stream.empty());
  const FedSz codec{FedSzConfig{}};
  for (std::size_t i = 0; i < stream.size(); ++i) {
    Bytes mutated = stream;
    mutated[i] = static_cast<std::uint8_t>(mutated[i] ^ 0xFF);
    try {
      (void)codec.decompress({mutated.data(), mutated.size()});
    } catch (const CorruptStream&) {
      // expected for most positions
    }
  }
}

TEST(GoldenFixtures, MixedPlanWriterStillEmitsTheV3FixtureBytes) {
  // The v3 byte-regression pin: the per-tensor-plan writer must keep
  // producing the exact recorded container for the fixture update.
  const Bytes fixture = read_file(data_dir() / "golden_v3.fsz");
  ASSERT_FALSE(fixture.empty());
  const Bytes fresh = FedSz{golden_v3_config()}.compress(golden_dict());
  EXPECT_EQ(fresh, fixture);
}

TEST(GoldenFixtures, DefaultPolicyWriterStillEmitsTheV2FixtureBytes) {
  // The byte-level regression pin for the redesign's acceptance criterion:
  // the default ThresholdPolicy must keep producing the exact pre-policy
  // v2 container for the fixture update.
  const Bytes fixture = read_file(data_dir() / "golden_v2.fsz");
  ASSERT_FALSE(fixture.empty());
  const Bytes fresh = FedSz{golden_config()}.compress(golden_dict());
  EXPECT_EQ(fresh, fixture);
}

TEST(GoldenFixtures, CorruptedFixtureHeadersStillThrow) {
  // Flipping bytes in real (fixture) streams must keep failing loudly —
  // guards the validation paths against regressions on genuine old data.
  for (const char* name : {"golden_v1.fsz", "golden_v2.fsz", "golden_v3.fsz",
                           "golden_v4.fsz"}) {
    Bytes stream = read_file(data_dir() / name);
    ASSERT_FALSE(stream.empty());
    Bytes bad_version = stream;
    bad_version[4] = 0x77;
    EXPECT_THROW(FedSz{FedSzConfig{}}.decompress(
                     {bad_version.data(), bad_version.size()}),
                 CorruptStream)
        << name;
    Bytes truncated(stream.begin(), stream.begin() + stream.size() / 2);
    EXPECT_THROW(
        FedSz{FedSzConfig{}}.decompress({truncated.data(), truncated.size()}),
        CorruptStream)
        << name;
  }
}

}  // namespace
}  // namespace fedsz::core

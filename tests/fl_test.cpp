// Tests for the FedAvg stack: server aggregation semantics, client rounds,
// and coordinator runs with identity and FedSZ codecs.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "core/fl/coordinator.hpp"
#include "data/synthetic.hpp"

namespace fedsz::core {
namespace {

nn::ModelConfig tiny_model() {
  nn::ModelConfig cfg;
  cfg.arch = "mobilenet_v2";
  cfg.scale = nn::ModelScale::kTiny;
  return cfg;
}

TEST(FlServerTest, AggregateOfIdenticalUpdatesIsThatUpdate) {
  FlServer server(tiny_model());
  StateDict update = server.global_state();
  update.get_mutable(update.entries()[0].first)[0] = 123.0f;
  server.aggregate({{update, 10}, {update, 30}});
  EXPECT_TRUE(server.global_state().equals(update));
}

TEST(FlServerTest, WeightedMeanBySampleCount) {
  FlServer server(tiny_model());
  StateDict a = server.global_state().zeros_like();
  StateDict b = server.global_state().zeros_like();
  const std::string first = a.entries()[0].first;
  a.get_mutable(first)[0] = 0.0f;
  b.get_mutable(first)[0] = 4.0f;
  server.aggregate({{a, 30}, {b, 10}});  // (0*30 + 4*10)/40 = 1
  EXPECT_FLOAT_EQ(server.global_state().get(first)[0], 1.0f);
}

TEST(FlServerTest, AggregateMatchesByNameNotOrder) {
  FlServer server(tiny_model());
  const StateDict& global = server.global_state();
  // Build a reordered copy of the global state.
  StateDict reordered;
  for (auto it = global.entries().rbegin(); it != global.entries().rend();
       ++it)
    reordered.set(it->first, it->second);
  EXPECT_NO_THROW(server.aggregate({{reordered, 1}}));
  EXPECT_TRUE(server.global_state().equals(global));
}

TEST(FlServerTest, EmptyOrZeroWeightUpdatesThrow) {
  FlServer server(tiny_model());
  EXPECT_THROW(server.aggregate({}), InvalidArgument);
  EXPECT_THROW(server.aggregate({{server.global_state(), 0}}),
               InvalidArgument);
}

TEST(FlServerTest, EvaluateReturnsFractionInRange) {
  FlServer server(tiny_model());
  auto [train, test] = data::make_dataset("cifar10");
  const double acc = server.evaluate(*data::take(test, 64));
  EXPECT_GE(acc, 0.0);
  EXPECT_LE(acc, 1.0);
}

TEST(FlClientTest, RoundProducesMatchingStructure) {
  auto [train, test] = data::make_dataset("cifar10");
  ClientConfig config;
  config.local_epochs = 1;
  config.batch_size = 16;
  FlClient client(0, tiny_model(), data::take(train, 64), config);
  FlServer server(tiny_model());
  const ClientRoundResult result = client.run_round(server.global_state());
  EXPECT_EQ(result.samples, 64u);
  EXPECT_GT(result.train_seconds, 0.0);
  EXPECT_EQ(result.update.size(), server.global_state().size());
  // Training must actually move the weights.
  EXPECT_FALSE(result.update.equals(server.global_state()));
}

TEST(FlClientTest, EmptyShardThrows) {
  auto [train, test] = data::make_dataset("cifar10");
  EXPECT_THROW(FlClient(0, tiny_model(), data::take(train, 0),
                        ClientConfig{}),
               InvalidArgument);
}

TEST(FlCoordinatorTest, RunsRoundsAndRecordsMetrics) {
  auto [train, test] = data::make_dataset("cifar10");
  FlRunConfig config;
  config.clients = 2;
  config.rounds = 2;
  config.eval_limit = 64;
  config.threads = 2;
  config.client.batch_size = 16;
  FlCoordinator coordinator(tiny_model(), data::take(train, 128),
                            data::take(test, 64), config,
                            make_identity_codec());
  const FlRunResult result = coordinator.run();
  ASSERT_EQ(result.rounds.size(), 2u);
  for (const RoundRecord& r : result.rounds) {
    EXPECT_GT(r.train_seconds, 0.0);
    EXPECT_GT(r.bytes_sent, 0u);
    EXPECT_EQ(r.raw_bytes, r.bytes_sent);  // identity codec
    EXPECT_NEAR(r.compression_ratio(), 1.0, 1e-9);
    EXPECT_GT(r.comm_seconds, 0.0);
    EXPECT_GE(r.accuracy, 0.0);
  }
  EXPECT_GT(result.total_wall_seconds, 0.0);
}

TEST(FlCoordinatorTest, FedSzCodecReducesBytes) {
  auto [train, test] = data::make_dataset("cifar10");
  FlRunConfig config;
  config.clients = 2;
  config.rounds = 1;
  config.eval_limit = 32;
  config.threads = 2;
  config.client.batch_size = 16;
  // AlexNet: the FC-dominated case where the lossy partition carries nearly
  // all bytes. (A tiny MobileNet is mostly sub-threshold tensors and barely
  // compresses — realistic, but not what this test probes.)
  nn::ModelConfig model = tiny_model();
  model.arch = "alexnet";
  FlCoordinator coordinator(model, data::take(train, 128),
                            data::take(test, 32), config,
                            make_fedsz_codec());
  const FlRunResult result = coordinator.run();
  ASSERT_EQ(result.rounds.size(), 1u);
  EXPECT_GT(result.rounds[0].compression_ratio(), 1.5);
  EXPECT_LT(result.rounds[0].bytes_sent, result.rounds[0].raw_bytes);
  EXPECT_GT(result.rounds[0].compress_seconds, 0.0);
  EXPECT_GT(result.rounds[0].decompress_seconds, 0.0);
}

TEST(FlCoordinatorTest, SimulatedBandwidthDrivesCommTime) {
  auto [train, test] = data::make_dataset("cifar10");
  auto run_at = [&](double mbps) {
    FlRunConfig config;
    config.clients = 1;
    config.rounds = 1;
    config.eval_limit = 16;
    config.network.bandwidth_mbps = mbps;
    config.client.batch_size = 16;
    FlCoordinator coordinator(tiny_model(), data::take(train, 32),
                              data::take(test, 16), config,
                              make_identity_codec());
    return coordinator.run().rounds[0].comm_seconds;
  };
  const double slow = run_at(10.0);
  const double fast = run_at(1000.0);
  EXPECT_NEAR(slow / fast, 100.0, 1.0);
}

TEST(FlCoordinatorTest, DeterministicAccuracyForSameSeed) {
  auto [train, test] = data::make_dataset("cifar10");
  auto run_once = [&] {
    FlRunConfig config;
    config.clients = 2;
    config.rounds = 1;
    config.eval_limit = 64;
    config.threads = 1;
    config.seed = 99;
    config.client.batch_size = 16;
    FlCoordinator coordinator(tiny_model(), data::take(train, 128),
                              data::take(test, 64), config,
                              make_identity_codec());
    return coordinator.run().final_accuracy;
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

TEST(FlCoordinatorTest, InvalidConfigThrows) {
  auto [train, test] = data::make_dataset("cifar10");
  FlRunConfig config;
  config.clients = 0;
  EXPECT_THROW(FlCoordinator(tiny_model(), data::take(train, 32),
                             data::take(test, 16), config,
                             make_identity_codec()),
               InvalidArgument);
  config.clients = 1;
  EXPECT_THROW(FlCoordinator(tiny_model(), data::take(train, 32),
                             data::take(test, 16), config, nullptr),
               InvalidArgument);
}

TEST(FlRunConfigTest, ValidateRejectsDegenerateSettings) {
  FlRunConfig config;
  EXPECT_NO_THROW(config.validate());
  config.clients = 0;
  EXPECT_THROW(config.validate(), InvalidArgument);
  config = {};
  config.rounds = 0;
  EXPECT_THROW(config.validate(), InvalidArgument);
  config = {};
  config.rounds = -3;
  EXPECT_THROW(config.validate(), InvalidArgument);
  config = {};
  config.threads = 0;
  EXPECT_THROW(config.validate(), InvalidArgument);
  config = {};
  config.compute_seconds_per_sample = -1.0;
  EXPECT_THROW(config.validate(), InvalidArgument);
  config = {};
  config.compute_jitter = 1.0;
  EXPECT_THROW(config.validate(), InvalidArgument);
  config = {};
  config.client.local_epochs = 0;
  EXPECT_THROW(config.validate(), InvalidArgument);
  config = {};
  config.client.batch_size = 0;
  EXPECT_THROW(config.validate(), InvalidArgument);
}

// ---- event-driven runtime ----

// The pre-event-runtime coordinator, recreated verbatim: partition IID,
// every round train all clients in index order, encode/decode each update,
// batch-aggregate in index order, evaluate. The event-driven SyncScheduler
// over a homogeneous network must reproduce this trajectory *exactly*.
std::vector<std::pair<double, std::size_t>> legacy_sync_trace(
    const nn::ModelConfig& model, data::DatasetPtr train,
    data::DatasetPtr test, const FlRunConfig& config,
    const UpdateCodecPtr& codec) {
  FlServer server(model);
  Rng rng(config.seed);
  const auto shards =
      data::partition_iid(train->size(), config.clients, rng);
  std::vector<std::unique_ptr<FlClient>> clients;
  for (std::size_t i = 0; i < config.clients; ++i) {
    ClientConfig client_config = config.client;
    client_config.seed = config.seed ^ (0xC11E47ull * (i + 1));
    clients.push_back(std::make_unique<FlClient>(
        static_cast<int>(i), model,
        std::make_shared<data::SubsetDataset>(train, shards[i]),
        client_config));
  }
  std::vector<std::pair<double, std::size_t>> trace;  // (accuracy, bytes)
  for (int round = 0; round < config.rounds; ++round) {
    std::vector<std::pair<StateDict, std::size_t>> updates;
    std::size_t bytes = 0;
    for (auto& client : clients) {
      const ClientRoundResult result =
          client->run_round(server.global_state());
      const UpdateCodec::Encoded encoded = codec->encode(result.update);
      bytes += encoded.payload.size();
      updates.emplace_back(
          codec->decode({encoded.payload.data(), encoded.payload.size()}),
          result.samples);
    }
    server.aggregate(updates);
    trace.emplace_back(server.evaluate(*test, config.eval_limit), bytes);
  }
  return trace;
}

TEST(FlCoordinatorTest, SyncSchedulerReproducesLegacyTrajectoryExactly) {
  auto [train, test] = data::make_dataset("cifar10");
  FlRunConfig config;
  config.clients = 3;
  config.rounds = 3;
  config.eval_limit = 64;
  config.threads = 3;
  config.seed = 123;
  config.client.batch_size = 16;
  const auto codec = make_identity_codec();

  FlCoordinator coordinator(tiny_model(), data::take(train, 96),
                            data::take(test, 64), config, codec,
                            make_sync_scheduler());
  const FlRunResult result = coordinator.run();

  const auto reference = legacy_sync_trace(
      tiny_model(), data::take(train, 96), data::take(test, 64), config,
      codec);
  ASSERT_EQ(result.rounds.size(), reference.size());
  for (std::size_t r = 0; r < reference.size(); ++r) {
    EXPECT_DOUBLE_EQ(result.rounds[r].accuracy, reference[r].first)
        << "round " << r;
    EXPECT_EQ(result.rounds[r].bytes_sent, reference[r].second)
        << "round " << r;
    EXPECT_EQ(result.rounds[r].participants, config.clients);
  }
  EXPECT_EQ(result.scheduler, "sync");
}

TEST(FlCoordinatorTest, RecordsPerClientTraceAndDecisions) {
  auto [train, test] = data::make_dataset("cifar10");
  FlRunConfig config;
  config.clients = 4;
  config.rounds = 1;
  config.eval_limit = 16;
  config.threads = 2;
  config.client.batch_size = 8;
  net::HeterogeneousNetworkConfig links;
  links.distribution = net::LinkDistribution::kTwoTier;
  links.two_tier_fast_fraction = 0.5;
  links.two_tier_fast_mbps = 1000.0;
  links.two_tier_slow_mbps = 1.0;
  config.heterogeneous = links;
  FlCoordinator coordinator(tiny_model(), data::take(train, 64),
                            data::take(test, 16), config,
                            make_identity_codec());
  const FlRunResult result = coordinator.run();
  ASSERT_EQ(result.rounds.size(), 1u);
  const RoundRecord& record = result.rounds[0];
  ASSERT_EQ(record.clients.size(), 4u);
  EXPECT_EQ(record.participants, 4u);
  double slow_transfer = 0.0, fast_transfer = 0.0;
  for (const ClientTraceEntry& entry : record.clients) {
    EXPECT_LT(entry.client, 4u);
    EXPECT_EQ(entry.dispatch_round, 0);
    EXPECT_GE(entry.arrival_seconds, entry.dispatch_seconds);
    EXPECT_GT(entry.transfer_seconds, 0.0);
    EXPECT_GT(entry.payload_bytes, 0u);
    EXPECT_GT(entry.weight, 0.0);
    // Eqn (1) was evaluated against this client's own link.
    EXPECT_GT(entry.decision.uncompressed_seconds, 0.0);
    slow_transfer = std::max(slow_transfer, entry.transfer_seconds);
    fast_transfer = fast_transfer == 0.0
                        ? entry.transfer_seconds
                        : std::min(fast_transfer, entry.transfer_seconds);
  }
  // Identity payloads are equal, so the 1000x bandwidth gap must show up as
  // a 1000x transfer-time gap between tiers.
  EXPECT_NEAR(slow_transfer / fast_transfer, 1000.0, 1.0);
  EXPECT_GT(result.total_virtual_seconds, 0.0);
}

TEST(FlCoordinatorTest, SampledSyncIsDeterministicAtScale) {
  auto [train, test] = data::make_dataset("cifar10");
  auto run_once = [&] {
    FlRunConfig config;
    config.clients = 64;
    config.rounds = 2;
    config.eval_limit = 32;
    config.threads = 4;
    config.seed = 77;
    config.client.batch_size = 2;
    config.evaluate_every_round = false;
    FlCoordinator coordinator(tiny_model(), data::take(train, 128),
                              data::take(test, 32), config,
                              make_identity_codec(),
                              make_sampled_sync_scheduler(0.25));
    return coordinator.run();
  };
  const FlRunResult a = run_once();
  const FlRunResult b = run_once();
  ASSERT_EQ(a.rounds.size(), 2u);
  for (std::size_t r = 0; r < a.rounds.size(); ++r) {
    EXPECT_EQ(a.rounds[r].participants, 16u);  // ceil(0.25 * 64)
    EXPECT_EQ(a.rounds[r].bytes_sent, b.rounds[r].bytes_sent);
    EXPECT_DOUBLE_EQ(a.rounds[r].virtual_seconds,
                     b.rounds[r].virtual_seconds);
    ASSERT_EQ(a.rounds[r].clients.size(), b.rounds[r].clients.size());
    for (std::size_t c = 0; c < a.rounds[r].clients.size(); ++c)
      EXPECT_EQ(a.rounds[r].clients[c].client,
                b.rounds[r].clients[c].client);
  }
  EXPECT_DOUBLE_EQ(a.final_accuracy, b.final_accuracy);
  // Streaming aggregation: one decoded update alive at a time.
  EXPECT_EQ(a.peak_decoded_updates, 1u);
}

TEST(FlCoordinatorTest, BufferedAsyncIsDeterministicWithBoundedMemory) {
  auto [train, test] = data::make_dataset("cifar10");
  auto run_once = [&](std::size_t clients) {
    FlRunConfig config;
    config.clients = clients;
    config.rounds = 3;
    config.eval_limit = 32;
    config.threads = 4;
    config.seed = 5;
    config.client.batch_size = 2;
    config.evaluate_every_round = false;
    config.compute_jitter = 0.5;  // heterogeneous device speeds
    net::HeterogeneousNetworkConfig links;
    links.distribution = net::LinkDistribution::kUniformEdge;
    links.edge_min_mbps = 2.0;
    links.edge_max_mbps = 20.0;
    config.heterogeneous = links;
    FlCoordinator coordinator(
        tiny_model(), data::take(train, clients * 2), data::take(test, 32),
        config, make_identity_codec(),
        make_buffered_async_scheduler({8, 0.5}));
    return coordinator.run();
  };
  const FlRunResult a = run_once(64);
  const FlRunResult b = run_once(64);
  ASSERT_EQ(a.rounds.size(), 3u);
  EXPECT_EQ(a.scheduler, "buffered_async");
  for (std::size_t r = 0; r < a.rounds.size(); ++r) {
    EXPECT_EQ(a.rounds[r].participants, 8u);  // buffer_size arrivals each
    EXPECT_EQ(a.rounds[r].bytes_sent, b.rounds[r].bytes_sent);
    EXPECT_DOUBLE_EQ(a.rounds[r].virtual_seconds,
                     b.rounds[r].virtual_seconds);
    ASSERT_EQ(a.rounds[r].clients.size(), b.rounds[r].clients.size());
    for (std::size_t c = 0; c < a.rounds[r].clients.size(); ++c) {
      EXPECT_EQ(a.rounds[r].clients[c].client,
                b.rounds[r].clients[c].client);
      EXPECT_DOUBLE_EQ(a.rounds[r].clients[c].weight,
                       b.rounds[r].clients[c].weight);
    }
  }
  EXPECT_DOUBLE_EQ(a.final_accuracy, b.final_accuracy);
  // Peak decoded-update memory is O(1): identical at any population size.
  const FlRunResult smaller = run_once(16);
  EXPECT_EQ(a.peak_decoded_updates, 1u);
  EXPECT_EQ(smaller.peak_decoded_updates, a.peak_decoded_updates);
}

TEST(FlCoordinatorTest, BufferedAsyncAppliesStalenessWeights) {
  auto [train, test] = data::make_dataset("cifar10");
  FlRunConfig config;
  config.clients = 8;
  config.rounds = 3;
  config.eval_limit = 16;
  config.threads = 4;
  config.client.batch_size = 4;
  config.evaluate_every_round = false;
  config.compute_jitter = 0.6;  // spread arrivals across aggregations
  FlCoordinator coordinator(tiny_model(), data::take(train, 64),
                            data::take(test, 16), config,
                            make_identity_codec(),
                            make_buffered_async_scheduler({4, 1.0}));
  const FlRunResult result = coordinator.run();
  ASSERT_EQ(result.rounds.size(), 3u);
  // Every client holds 64/8 = 8 samples, so a fresh update weighs exactly
  // 8 and a stale one strictly less (scaled by 1/(1+staleness)).
  bool saw_stale = false;
  for (const RoundRecord& record : result.rounds)
    for (const ClientTraceEntry& entry : record.clients) {
      if (entry.dispatch_round < record.round) {
        saw_stale = true;
        EXPECT_LT(entry.weight, 8.0);
      } else {
        EXPECT_DOUBLE_EQ(entry.weight, 8.0);
      }
    }
  // With 8 continuously-training clients and K=4, later aggregations must
  // fold updates dispatched under an older global.
  EXPECT_TRUE(saw_stale);
}

}  // namespace
}  // namespace fedsz::core

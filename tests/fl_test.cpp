// Tests for the FedAvg stack: server aggregation semantics, client rounds,
// and coordinator runs with identity and FedSZ codecs.
#include <gtest/gtest.h>

#include "core/fl/coordinator.hpp"
#include "data/synthetic.hpp"

namespace fedsz::core {
namespace {

nn::ModelConfig tiny_model() {
  nn::ModelConfig cfg;
  cfg.arch = "mobilenet_v2";
  cfg.scale = nn::ModelScale::kTiny;
  return cfg;
}

TEST(FlServerTest, AggregateOfIdenticalUpdatesIsThatUpdate) {
  FlServer server(tiny_model());
  StateDict update = server.global_state();
  update.get_mutable(update.entries()[0].first)[0] = 123.0f;
  server.aggregate({{update, 10}, {update, 30}});
  EXPECT_TRUE(server.global_state().equals(update));
}

TEST(FlServerTest, WeightedMeanBySampleCount) {
  FlServer server(tiny_model());
  StateDict a = server.global_state().zeros_like();
  StateDict b = server.global_state().zeros_like();
  const std::string first = a.entries()[0].first;
  a.get_mutable(first)[0] = 0.0f;
  b.get_mutable(first)[0] = 4.0f;
  server.aggregate({{a, 30}, {b, 10}});  // (0*30 + 4*10)/40 = 1
  EXPECT_FLOAT_EQ(server.global_state().get(first)[0], 1.0f);
}

TEST(FlServerTest, AggregateMatchesByNameNotOrder) {
  FlServer server(tiny_model());
  const StateDict& global = server.global_state();
  // Build a reordered copy of the global state.
  StateDict reordered;
  for (auto it = global.entries().rbegin(); it != global.entries().rend();
       ++it)
    reordered.set(it->first, it->second);
  EXPECT_NO_THROW(server.aggregate({{reordered, 1}}));
  EXPECT_TRUE(server.global_state().equals(global));
}

TEST(FlServerTest, EmptyOrZeroWeightUpdatesThrow) {
  FlServer server(tiny_model());
  EXPECT_THROW(server.aggregate({}), InvalidArgument);
  EXPECT_THROW(server.aggregate({{server.global_state(), 0}}),
               InvalidArgument);
}

TEST(FlServerTest, EvaluateReturnsFractionInRange) {
  FlServer server(tiny_model());
  auto [train, test] = data::make_dataset("cifar10");
  const double acc = server.evaluate(*data::take(test, 64));
  EXPECT_GE(acc, 0.0);
  EXPECT_LE(acc, 1.0);
}

TEST(FlClientTest, RoundProducesMatchingStructure) {
  auto [train, test] = data::make_dataset("cifar10");
  ClientConfig config;
  config.local_epochs = 1;
  config.batch_size = 16;
  FlClient client(0, tiny_model(), data::take(train, 64), config);
  FlServer server(tiny_model());
  const ClientRoundResult result = client.run_round(server.global_state());
  EXPECT_EQ(result.samples, 64u);
  EXPECT_GT(result.train_seconds, 0.0);
  EXPECT_EQ(result.update.size(), server.global_state().size());
  // Training must actually move the weights.
  EXPECT_FALSE(result.update.equals(server.global_state()));
}

TEST(FlClientTest, EmptyShardThrows) {
  auto [train, test] = data::make_dataset("cifar10");
  EXPECT_THROW(FlClient(0, tiny_model(), data::take(train, 0),
                        ClientConfig{}),
               InvalidArgument);
}

TEST(FlCoordinatorTest, RunsRoundsAndRecordsMetrics) {
  auto [train, test] = data::make_dataset("cifar10");
  FlRunConfig config;
  config.clients = 2;
  config.rounds = 2;
  config.eval_limit = 64;
  config.threads = 2;
  config.client.batch_size = 16;
  FlCoordinator coordinator(tiny_model(), data::take(train, 128),
                            data::take(test, 64), config,
                            make_identity_codec());
  const FlRunResult result = coordinator.run();
  ASSERT_EQ(result.rounds.size(), 2u);
  for (const RoundRecord& r : result.rounds) {
    EXPECT_GT(r.train_seconds, 0.0);
    EXPECT_GT(r.bytes_sent, 0u);
    EXPECT_EQ(r.raw_bytes, r.bytes_sent);  // identity codec
    EXPECT_NEAR(r.compression_ratio(), 1.0, 1e-9);
    EXPECT_GT(r.comm_seconds, 0.0);
    EXPECT_GE(r.accuracy, 0.0);
  }
  EXPECT_GT(result.total_wall_seconds, 0.0);
}

TEST(FlCoordinatorTest, FedSzCodecReducesBytes) {
  auto [train, test] = data::make_dataset("cifar10");
  FlRunConfig config;
  config.clients = 2;
  config.rounds = 1;
  config.eval_limit = 32;
  config.threads = 2;
  config.client.batch_size = 16;
  // AlexNet: the FC-dominated case where the lossy partition carries nearly
  // all bytes. (A tiny MobileNet is mostly sub-threshold tensors and barely
  // compresses — realistic, but not what this test probes.)
  nn::ModelConfig model = tiny_model();
  model.arch = "alexnet";
  FlCoordinator coordinator(model, data::take(train, 128),
                            data::take(test, 32), config,
                            make_fedsz_codec());
  const FlRunResult result = coordinator.run();
  ASSERT_EQ(result.rounds.size(), 1u);
  EXPECT_GT(result.rounds[0].compression_ratio(), 1.5);
  EXPECT_LT(result.rounds[0].bytes_sent, result.rounds[0].raw_bytes);
  EXPECT_GT(result.rounds[0].compress_seconds, 0.0);
  EXPECT_GT(result.rounds[0].decompress_seconds, 0.0);
}

TEST(FlCoordinatorTest, SimulatedBandwidthDrivesCommTime) {
  auto [train, test] = data::make_dataset("cifar10");
  auto run_at = [&](double mbps) {
    FlRunConfig config;
    config.clients = 1;
    config.rounds = 1;
    config.eval_limit = 16;
    config.network.bandwidth_mbps = mbps;
    config.client.batch_size = 16;
    FlCoordinator coordinator(tiny_model(), data::take(train, 32),
                              data::take(test, 16), config,
                              make_identity_codec());
    return coordinator.run().rounds[0].comm_seconds;
  };
  const double slow = run_at(10.0);
  const double fast = run_at(1000.0);
  EXPECT_NEAR(slow / fast, 100.0, 1.0);
}

TEST(FlCoordinatorTest, DeterministicAccuracyForSameSeed) {
  auto [train, test] = data::make_dataset("cifar10");
  auto run_once = [&] {
    FlRunConfig config;
    config.clients = 2;
    config.rounds = 1;
    config.eval_limit = 64;
    config.threads = 1;
    config.seed = 99;
    config.client.batch_size = 16;
    FlCoordinator coordinator(tiny_model(), data::take(train, 128),
                              data::take(test, 64), config,
                              make_identity_codec());
    return coordinator.run().final_accuracy;
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

TEST(FlCoordinatorTest, InvalidConfigThrows) {
  auto [train, test] = data::make_dataset("cifar10");
  FlRunConfig config;
  config.clients = 0;
  EXPECT_THROW(FlCoordinator(tiny_model(), data::take(train, 32),
                             data::take(test, 16), config,
                             make_identity_codec()),
               InvalidArgument);
  config.clients = 1;
  EXPECT_THROW(FlCoordinator(tiny_model(), data::take(train, 32),
                             data::take(test, 16), config, nullptr),
               InvalidArgument);
}

}  // namespace
}  // namespace fedsz::core

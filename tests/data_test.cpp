// Tests for the synthetic datasets, partitioners, loaders, and the smooth
// scientific-field generator.
#include <gtest/gtest.h>

#include <set>

#include "data/dataloader.hpp"
#include "data/partition.hpp"
#include "data/scientific.hpp"
#include "data/synthetic.hpp"
#include "util/stats.hpp"

namespace fedsz::data {
namespace {

TEST(SyntheticSpecs, MatchTableFour) {
  const SyntheticSpec cifar = cifar10_spec();
  EXPECT_EQ(cifar.image_size, 32);
  EXPECT_EQ(cifar.channels, 3);
  EXPECT_EQ(cifar.classes, 10);
  EXPECT_EQ(cifar.train_size + cifar.test_size, 60000u);

  const SyntheticSpec fmnist = fashion_mnist_spec();
  EXPECT_EQ(fmnist.image_size, 28);
  EXPECT_EQ(fmnist.channels, 1);
  EXPECT_EQ(fmnist.train_size + fmnist.test_size, 70000u);

  const SyntheticSpec caltech = caltech101_spec();
  EXPECT_EQ(caltech.classes, 101);
  EXPECT_EQ(caltech.train_size + caltech.test_size, 9000u);
}

TEST(SyntheticSpecs, LookupByName) {
  EXPECT_EQ(dataset_spec("cifar10").name, "cifar10");
  EXPECT_EQ(dataset_spec("fmnist").channels, 1);
  EXPECT_THROW(dataset_spec("imagenet"), InvalidArgument);
  EXPECT_EQ(dataset_names().size(), 3u);
}

TEST(SyntheticDataset, SamplesAreDeterministic) {
  SyntheticImageDataset a(cifar10_spec(), 0);
  SyntheticImageDataset b(cifar10_spec(), 0);
  const Sample sa = a.get(123);
  const Sample sb = b.get(123);
  EXPECT_EQ(sa.label, sb.label);
  EXPECT_TRUE(sa.image.equals(sb.image));
}

TEST(SyntheticDataset, DifferentIndicesDiffer) {
  SyntheticImageDataset ds(cifar10_spec(), 0);
  EXPECT_FALSE(ds.get(0).image.equals(ds.get(10).image));
}

TEST(SyntheticDataset, TrainAndTestSplitsDiffer) {
  SyntheticImageDataset train(cifar10_spec(), 0);
  SyntheticImageDataset test(cifar10_spec(), 1);
  EXPECT_FALSE(train.get(5).image.equals(test.get(5).image));
}

TEST(SyntheticDataset, LabelsAreBalanced) {
  SyntheticImageDataset ds(cifar10_spec(), 0);
  std::vector<int> counts(10, 0);
  for (std::size_t i = 0; i < 1000; ++i) ++counts[ds.get(i).label];
  for (const int c : counts) EXPECT_EQ(c, 100);
}

TEST(SyntheticDataset, ImageShapeMatchesSpec) {
  SyntheticImageDataset ds(caltech101_spec(), 0);
  EXPECT_EQ(ds.image_shape(), (Shape{3, 64, 64}));
  EXPECT_EQ(ds.get(0).image.shape(), (Shape{3, 64, 64}));
  EXPECT_EQ(ds.num_classes(), 101);
}

TEST(SyntheticDataset, OutOfRangeThrows) {
  SyntheticSpec spec = cifar10_spec();
  spec.train_size = 10;
  SyntheticImageDataset ds(spec, 0);
  EXPECT_THROW(ds.get(10), InvalidArgument);
  EXPECT_THROW(SyntheticImageDataset(spec, 2), InvalidArgument);
}

TEST(SyntheticDataset, SameClassSharesStructure) {
  // Same-class images should correlate far more than cross-class ones.
  SyntheticImageDataset ds(cifar10_spec(), 0);
  const Sample a0 = ds.get(0), a1 = ds.get(10);   // both class 0
  const Sample b = ds.get(3);                     // class 3
  ASSERT_EQ(a0.label, a1.label);
  ASSERT_NE(a0.label, b.label);
  const double same = stats::correlation(a0.image.span(), a1.image.span());
  const double cross = stats::correlation(a0.image.span(), b.image.span());
  EXPECT_GT(same, cross + 0.2);
}

TEST(SubsetDatasetTest, ViewsSelectedIndices) {
  auto base = std::make_shared<SyntheticImageDataset>(cifar10_spec(), 0);
  SubsetDataset subset(base, {5, 7, 9});
  EXPECT_EQ(subset.size(), 3u);
  EXPECT_TRUE(subset.get(1).image.equals(base->get(7).image));
  EXPECT_THROW(subset.get(3), InvalidArgument);
}

TEST(SubsetDatasetTest, TakeClampsToSize) {
  SyntheticSpec spec = cifar10_spec();
  spec.train_size = 50;
  auto base = std::make_shared<SyntheticImageDataset>(spec, 0);
  EXPECT_EQ(take(base, 20)->size(), 20u);
  EXPECT_EQ(take(base, 500)->size(), 50u);
}

TEST(PartitionIid, CoversAllIndicesDisjointly) {
  Rng rng(1);
  const auto shards = partition_iid(1000, 7, rng);
  ASSERT_EQ(shards.size(), 7u);
  std::set<std::size_t> seen;
  for (const auto& shard : shards) {
    EXPECT_GE(shard.size(), 1000u / 7);
    EXPECT_LE(shard.size(), 1000u / 7 + 1);
    for (const auto idx : shard) {
      EXPECT_TRUE(seen.insert(idx).second) << "duplicate index " << idx;
      EXPECT_LT(idx, 1000u);
    }
  }
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(PartitionIid, ZeroClientsThrows) {
  Rng rng(2);
  EXPECT_THROW(partition_iid(10, 0, rng), InvalidArgument);
}

TEST(PartitionDirichlet, CoversAllSamples) {
  Rng rng(3);
  std::vector<int> labels(600);
  for (std::size_t i = 0; i < labels.size(); ++i)
    labels[i] = static_cast<int>(i % 6);
  const auto shards = partition_dirichlet(labels, 4, 0.5, rng);
  std::set<std::size_t> seen;
  for (const auto& shard : shards)
    for (const auto idx : shard) EXPECT_TRUE(seen.insert(idx).second);
  EXPECT_EQ(seen.size(), labels.size());
}

TEST(PartitionDirichlet, LowAlphaIsMoreSkewedThanHighAlpha) {
  std::vector<int> labels(2000);
  for (std::size_t i = 0; i < labels.size(); ++i)
    labels[i] = static_cast<int>(i % 10);
  auto skew = [&](double alpha, std::uint64_t seed) {
    Rng rng(seed);
    const auto shards = partition_dirichlet(labels, 8, alpha, rng);
    // Measure max class concentration across shards.
    double worst = 0.0;
    for (const auto& shard : shards) {
      if (shard.empty()) continue;
      std::vector<int> counts(10, 0);
      for (const auto idx : shard) ++counts[labels[idx]];
      const int max_count = *std::max_element(counts.begin(), counts.end());
      worst = std::max(worst, static_cast<double>(max_count) /
                                  static_cast<double>(shard.size()));
    }
    return worst;
  };
  EXPECT_GT(skew(0.05, 4), skew(100.0, 5));
}

TEST(PartitionDirichlet, InvalidArgsThrow) {
  Rng rng(6);
  const std::vector<int> labels{0, 1};
  EXPECT_THROW(partition_dirichlet(labels, 0, 1.0, rng), InvalidArgument);
  EXPECT_THROW(partition_dirichlet(labels, 2, 0.0, rng), InvalidArgument);
}

TEST(PartitionDirichlet, SeededOverloadIsDeterministicAndConserving) {
  std::vector<int> labels(900);
  for (std::size_t i = 0; i < labels.size(); ++i)
    labels[i] = static_cast<int>(i % 9);
  const auto a = partition_dirichlet(labels, 5, 0.3, std::uint64_t{42});
  const auto b = partition_dirichlet(labels, 5, 0.3, std::uint64_t{42});
  EXPECT_EQ(a, b);  // same seed, byte-identical shards
  const auto c = partition_dirichlet(labels, 5, 0.3, std::uint64_t{43});
  EXPECT_NE(a, c);  // different seed, different draw
  // Size conservation: every sample lands in exactly one shard.
  std::set<std::size_t> seen;
  std::size_t total = 0;
  for (const auto& shard : a) {
    total += shard.size();
    for (const auto idx : shard) EXPECT_TRUE(seen.insert(idx).second);
  }
  EXPECT_EQ(total, labels.size());
  EXPECT_EQ(seen.size(), labels.size());
}

TEST(PartitionDirichlet, DatasetLabelsMatchSampleOrder) {
  auto base = std::make_shared<SyntheticImageDataset>(cifar10_spec(), 0);
  const auto subset = take(base, 64);
  const auto labels = dataset_labels(*subset);
  ASSERT_EQ(labels.size(), 64u);
  for (std::size_t i = 0; i < labels.size(); ++i)
    EXPECT_EQ(labels[i], subset->get(i).label);
}

TEST(PartitionDirichlet, EnsureNonemptyShardsRepairsStarvedClients) {
  // Hand-built starvation: one fat shard, two empty ones. The repair moves
  // one sample into each empty shard without losing or duplicating any.
  std::vector<std::vector<std::size_t>> shards(3);
  shards[0] = {0, 1, 2, 3, 4, 5};
  ensure_nonempty_shards(shards);
  std::set<std::size_t> seen;
  std::size_t total = 0;
  for (const auto& shard : shards) {
    EXPECT_FALSE(shard.empty());
    total += shard.size();
    for (const auto idx : shard) EXPECT_TRUE(seen.insert(idx).second);
  }
  EXPECT_EQ(total, 6u);
  // Degenerate input (too few samples to go around) must not throw or spin.
  std::vector<std::vector<std::size_t>> starved(3);
  starved[0] = {0};
  ensure_nonempty_shards(starved);
  EXPECT_EQ(starved[0].size(), 1u);
}

TEST(PartitionSizeskew, PowerLawShrinksTail) {
  Rng rng(11);
  const auto shards = partition_sizeskew(1200, 6, 1.2, rng);
  ASSERT_EQ(shards.size(), 6u);
  // No duplicates, nothing out of range; skew truncates, never invents.
  std::set<std::size_t> seen;
  std::size_t total = 0;
  std::size_t largest = 0, smallest = 1200;
  for (const auto& shard : shards) {
    EXPECT_GE(shard.size(), 1u);
    largest = std::max(largest, shard.size());
    smallest = std::min(smallest, shard.size());
    total += shard.size();
    for (const auto idx : shard) {
      EXPECT_TRUE(seen.insert(idx).second);
      EXPECT_LT(idx, 1200u);
    }
  }
  EXPECT_LT(total, 1200u);  // a real skew drops samples from the tail
  // Rank-1 keeps its full shard; rank-6 keeps ~ 6^-1.2 of it.
  EXPECT_EQ(largest, 200u);
  EXPECT_LE(smallest * 8, largest);
}

TEST(PartitionSizeskew, ZeroExponentIsIdentity) {
  Rng a(12), b(12);
  const auto plain = partition_iid(500, 5, a);
  auto skewed = partition_iid(500, 5, b);
  Rng skew_rng(13);
  apply_sizeskew(skewed, 0.0, skew_rng);
  EXPECT_EQ(plain, skewed);
}

TEST(PartitionSizeskew, SeededRankPermutationIsDeterministic) {
  Rng a(14), b(14), c(15);
  const auto x = partition_sizeskew(800, 7, 0.8, a);
  const auto y = partition_sizeskew(800, 7, 0.8, b);
  const auto z = partition_sizeskew(800, 7, 0.8, c);
  EXPECT_EQ(x, y);
  EXPECT_NE(x, z);  // the rank permutation rides the caller's stream
}

TEST(PartitionSizeskew, ComposesWithDirichlet) {
  std::vector<int> labels(900);
  for (std::size_t i = 0; i < labels.size(); ++i)
    labels[i] = static_cast<int>(i % 9);
  Rng rng(16);
  auto shards = partition_dirichlet(labels, 6, 0.5, rng);
  ensure_nonempty_shards(shards);
  const auto before = shards;
  Rng skew_rng(17);
  apply_sizeskew(shards, 1.5, skew_rng);
  ASSERT_EQ(shards.size(), before.size());
  for (std::size_t s = 0; s < shards.size(); ++s) {
    EXPECT_GE(shards[s].size(), 1u);
    EXPECT_LE(shards[s].size(), before[s].size());
    // Truncation is a prefix cut: surviving indices are unchanged.
    for (std::size_t k = 0; k < shards[s].size(); ++k)
      EXPECT_EQ(shards[s][k], before[s][k]);
  }
}

TEST(PartitionSizeskew, NegativeExponentThrows) {
  Rng rng(18);
  std::vector<std::vector<std::size_t>> shards(2);
  shards[0] = {0, 1};
  shards[1] = {2, 3};
  EXPECT_THROW(apply_sizeskew(shards, -0.5, rng), InvalidArgument);
}

TEST(ShardDataset, ProducesViews) {
  auto base = std::make_shared<SyntheticImageDataset>(cifar10_spec(), 0);
  Rng rng(7);
  const auto indices = partition_iid(100, 4, rng);
  const auto shards = shard_dataset(base, indices);
  ASSERT_EQ(shards.size(), 4u);
  EXPECT_EQ(shards[0]->size(), 25u);
}

TEST(DataLoaderTest, IteratesWholeEpochInBatches) {
  SyntheticSpec spec = cifar10_spec();
  spec.train_size = 70;
  auto ds = std::make_shared<SyntheticImageDataset>(spec, 0);
  DataLoader loader(ds, 32, false);
  EXPECT_EQ(loader.batches_per_epoch(), 3u);
  Batch batch;
  std::size_t total = 0;
  std::vector<std::size_t> sizes;
  while (loader.next(batch)) {
    total += batch.size();
    sizes.push_back(batch.size());
    EXPECT_EQ(batch.images.dim(0), static_cast<std::int64_t>(batch.size()));
  }
  EXPECT_EQ(total, 70u);
  EXPECT_EQ(sizes.back(), 6u);  // final partial batch
}

TEST(DataLoaderTest, ShuffleChangesOrderDeterministically) {
  SyntheticSpec spec = cifar10_spec();
  spec.train_size = 64;
  auto ds = std::make_shared<SyntheticImageDataset>(spec, 0);
  DataLoader a(ds, 64, true, 9);
  DataLoader b(ds, 64, true, 9);
  DataLoader c(ds, 64, true, 10);
  Batch ba, bb, bc;
  a.next(ba);
  b.next(bb);
  c.next(bc);
  EXPECT_EQ(ba.labels, bb.labels);  // same seed, same order
  EXPECT_NE(ba.labels, bc.labels);  // different seed
}

TEST(DataLoaderTest, ResetRestartsEpoch) {
  SyntheticSpec spec = cifar10_spec();
  spec.train_size = 10;
  auto ds = std::make_shared<SyntheticImageDataset>(spec, 0);
  DataLoader loader(ds, 10, false);
  Batch batch;
  EXPECT_TRUE(loader.next(batch));
  EXPECT_FALSE(loader.next(batch));
  loader.reset();
  EXPECT_TRUE(loader.next(batch));
}

TEST(DataLoaderTest, ZeroBatchSizeThrows) {
  auto ds = std::make_shared<SyntheticImageDataset>(cifar10_spec(), 0);
  EXPECT_THROW(DataLoader(ds, 0, false), InvalidArgument);
}

TEST(FullBatch, MaterializesDataset) {
  SyntheticSpec spec = cifar10_spec();
  spec.test_size = 12;
  SyntheticImageDataset ds(spec, 1);
  const Batch batch = full_batch(ds);
  EXPECT_EQ(batch.size(), 12u);
  const Batch limited = full_batch(ds, 5);
  EXPECT_EQ(limited.size(), 5u);
}

TEST(SmoothField, IsSmootherThanWeights) {
  const auto field = smooth_field(4096, 17);
  Rng rng(18);
  std::vector<float> weights(4096);
  for (auto& w : weights) w = static_cast<float>(rng.laplace(0.0, 0.05));
  const double field_roughness =
      stats::roughness({field.data(), field.size()});
  const double weight_roughness =
      stats::roughness({weights.data(), weights.size()});
  EXPECT_LT(field_roughness * 20.0, weight_roughness);
}

TEST(SmoothField, DeterministicPerSeed) {
  EXPECT_EQ(smooth_field(100, 5), smooth_field(100, 5));
  EXPECT_NE(smooth_field(100, 5), smooth_field(100, 6));
}

}  // namespace
}  // namespace fedsz::data

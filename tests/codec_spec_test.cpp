// Tests for the codec spec grammar: parse/format normalization (format of a
// parse is a fixed point), a seeded fuzz round-trip over random CodecSpecs,
// malformed-spec errors that list the valid options, and the
// make_codec_by_name construction path built on top of it.
#include <gtest/gtest.h>

#include <iterator>

#include "core/codec_spec.hpp"
#include "core/fl/population.hpp"
#include "core/policy.hpp"
#include "util/rng.hpp"

namespace fedsz::core {
namespace {

std::string normalize(const std::string& spec) {
  return format_codec_spec(parse_codec_spec(spec));
}

// ---- parsing ----

TEST(CodecSpecParse, BareFamiliesKeepDefaults) {
  const CodecSpec fedsz = parse_codec_spec("fedsz");
  EXPECT_FALSE(fedsz.identity);
  EXPECT_EQ(fedsz.lossy_id, lossy::LossyId::kSz2);
  EXPECT_EQ(fedsz.lossless_id, lossless::LosslessId::kBloscLz);
  EXPECT_EQ(fedsz.bound.mode, lossy::BoundMode::kRelative);
  EXPECT_DOUBLE_EQ(fedsz.bound.value, 1e-2);
  EXPECT_EQ(fedsz.policy, "threshold");
  EXPECT_EQ(fedsz.threads, 1u);

  EXPECT_EQ(parse_codec_spec("fedsz-parallel").threads, 0u);
  EXPECT_TRUE(parse_codec_spec("identity").identity);
  EXPECT_TRUE(parse_codec_spec("uncompressed").identity);
}

TEST(CodecSpecParse, FullSpecFromTheGrammarComment) {
  const CodecSpec spec = parse_codec_spec(
      "fedsz:lossy=sz3,eb=rel:1e-3,lossless=zstd,policy=schedule,chunk=64k,"
      "threads=0");
  EXPECT_EQ(spec.lossy_id, lossy::LossyId::kSz3);
  EXPECT_EQ(spec.lossless_id, lossless::LosslessId::kZstd);
  EXPECT_EQ(spec.bound.mode, lossy::BoundMode::kRelative);
  EXPECT_DOUBLE_EQ(spec.bound.value, 1e-3);
  EXPECT_EQ(spec.policy, "schedule");
  EXPECT_EQ(spec.chunk_elements, 64u * 1024u);
  EXPECT_EQ(spec.threads, 0u);
}

TEST(CodecSpecParse, BoundModesAndBareValues) {
  EXPECT_EQ(parse_codec_spec("fedsz:eb=abs:0.5").bound.mode,
            lossy::BoundMode::kAbsolute);
  EXPECT_EQ(parse_codec_spec("fedsz:eb=rel:0.5").bound.mode,
            lossy::BoundMode::kRelative);
  // A bare float defaults to rel, the paper's convention.
  const CodecSpec bare = parse_codec_spec("fedsz:eb=1e-4");
  EXPECT_EQ(bare.bound.mode, lossy::BoundMode::kRelative);
  EXPECT_DOUBLE_EQ(bare.bound.value, 1e-4);
}

TEST(CodecSpecParse, ScheduleFactorArgument) {
  const CodecSpec spec = parse_codec_spec("fedsz:policy=schedule:0.85");
  EXPECT_EQ(spec.policy, "schedule");
  EXPECT_DOUBLE_EQ(spec.schedule_factor, 0.85);
}

TEST(CodecSpecParse, SparseFamilyAndItsKeys) {
  const CodecSpec spec = parse_codec_spec(
      "sparse:eb=rel:1e-2,sparsity=0.9,bits=8,policy=gradaware:0.7,"
      "lossless=zstd");
  EXPECT_TRUE(spec.sparse);
  EXPECT_FALSE(spec.identity);
  EXPECT_DOUBLE_EQ(spec.sparsity, 0.9);
  EXPECT_EQ(spec.sparse_bits, 8u);
  EXPECT_EQ(spec.policy, "gradaware");
  EXPECT_DOUBLE_EQ(spec.gradaware_beta, 0.7);
  EXPECT_EQ(spec.lossless_id, lossless::LosslessId::kZstd);

  // Bare family: adaptive threshold, adaptive width, threshold policy.
  const CodecSpec bare = parse_codec_spec("sparse");
  EXPECT_TRUE(bare.sparse);
  EXPECT_DOUBLE_EQ(bare.sparsity, 0.0);
  EXPECT_EQ(bare.sparse_bits, 0u);
  EXPECT_EQ(bare.policy, "threshold");

  // The adaptive spellings are explicit no-ops.
  const CodecSpec adaptive =
      parse_codec_spec("sparse:sparsity=adaptive,bits=adaptive");
  EXPECT_DOUBLE_EQ(adaptive.sparsity, 0.0);
  EXPECT_EQ(adaptive.sparse_bits, 0u);

  // Canonical form: sparse family renders without lossy=, keys round-trip.
  const std::string canonical = format_codec_spec(spec);
  EXPECT_EQ(canonical.rfind("sparse:eb=", 0), 0u);
  EXPECT_EQ(canonical.find("lossy="), std::string::npos);
  EXPECT_NE(canonical.find(",sparsity=0.9"), std::string::npos);
  EXPECT_NE(canonical.find(",bits=8"), std::string::npos);
  EXPECT_NE(canonical.find(",policy=gradaware:0.7"), std::string::npos);
  EXPECT_EQ(normalize(canonical), canonical);
}

TEST(CodecSpecParse, GradAwareBetaArgument) {
  // Default beta when the ':' argument is omitted; both families take it.
  EXPECT_DOUBLE_EQ(parse_codec_spec("fedsz:policy=gradaware").gradaware_beta,
                   0.5);
  EXPECT_DOUBLE_EQ(
      parse_codec_spec("fedsz:policy=gradaware:0.25").gradaware_beta, 0.25);
  EXPECT_EQ(parse_codec_spec("sparse:policy=gradaware").policy, "gradaware");
}

TEST(CodecSpecParse, DataKeyIsCommLevel) {
  EXPECT_DOUBLE_EQ(
      parse_codec_spec("fedsz:data=dirichlet:0.3").dirichlet_alpha, 0.3);
  EXPECT_DOUBLE_EQ(parse_codec_spec("fedsz:data=iid").dirichlet_alpha, 0.0);
  // identity accepts comm keys, data= included.
  const CodecSpec identity = parse_codec_spec("identity:data=dirichlet:0.5");
  EXPECT_TRUE(identity.identity);
  EXPECT_DOUBLE_EQ(identity.dirichlet_alpha, 0.5);
  const std::string canonical = format_codec_spec(identity);
  EXPECT_NE(canonical.find("data=dirichlet:0.5"), std::string::npos);
  EXPECT_EQ(normalize(canonical), canonical);
  // data=iid normalizes away (it is the default).
  EXPECT_EQ(normalize("fedsz:data=iid"), normalize("fedsz"));
  // A bare codec cannot honor a sharding directive.
  EXPECT_THROW(make_codec("fedsz:data=dirichlet:0.5"), InvalidArgument);
}

TEST(CodecSpecParse, DataSizeskewComposesWithDirichlet) {
  const CodecSpec skew = parse_codec_spec("fedsz:data=sizeskew:1.5");
  EXPECT_DOUBLE_EQ(skew.sizeskew_s, 1.5);
  EXPECT_DOUBLE_EQ(skew.dirichlet_alpha, 0.0);
  const CodecSpec both =
      parse_codec_spec("identity:data=dirichlet:0.3+sizeskew:1.2");
  EXPECT_DOUBLE_EQ(both.dirichlet_alpha, 0.3);
  EXPECT_DOUBLE_EQ(both.sizeskew_s, 1.2);
  // Canonical order is dirichlet first, whatever the input order was.
  const std::string canonical = format_codec_spec(
      parse_codec_spec("identity:data=sizeskew:1.2+dirichlet:0.3"));
  EXPECT_NE(canonical.find("data=dirichlet:0.3+sizeskew:1.2"),
            std::string::npos);
  EXPECT_EQ(normalize(canonical), canonical);
  // A bare codec cannot honor a sharding directive.
  EXPECT_THROW(make_codec("fedsz:data=sizeskew:1.5"), InvalidArgument);
}

TEST(CodecSpecParse, PopulationKeyIsCommLevel) {
  const CodecSpec spec = parse_codec_spec("fedsz:population=mixed:seed=7");
  EXPECT_EQ(spec.population, "mixed:seed=7");
  const std::string canonical = format_codec_spec(spec);
  EXPECT_NE(canonical.find("population=mixed:seed=7"), std::string::npos);
  EXPECT_EQ(normalize(canonical), canonical);
  // The stored value is itself canonical: explicit defaults fold away and
  // options come out in the grammar's fixed order.
  EXPECT_EQ(parse_codec_spec("identity:population=mixed:avail=diurnal")
                .population,
            "mixed");
  EXPECT_EQ(parse_codec_spec(
                "identity:population=custom:seed=2;mix=laptop*2+iot*1")
                .population,
            "custom:mix=laptop*2+iot*1;seed=2");
  // A bare codec cannot field a client population.
  EXPECT_THROW(make_codec("fedsz:population=mixed"), InvalidArgument);
}

TEST(CodecSpecErrors, MalformedPopulationKeysThrow) {
  for (const char* spec :
       {"fedsz:population=datacenter", "fedsz:population=custom",
        "fedsz:population=mixed:mix=laptop*1",
        "fedsz:population=mixed:avail=flat:0",
        "fedsz:population=mixed:drop=1", "fedsz:population=mixed:wat=1"}) {
    EXPECT_THROW(parse_codec_spec(spec), InvalidArgument) << spec;
  }
}

TEST(CodecSpecErrors, MalformedSparseAndDataKeysThrow) {
  for (const char* spec :
       {// sparse keys demand the sparse family
        "fedsz:sparsity=0.9", "fedsz:bits=8", "identity:sparsity=0.9",
        // the sparse family replaces the lossy codec
        "sparse:lossy=sz3",
        // sparsity: fraction strictly inside (0, 1) or adaptive
        "sparse:sparsity=0", "sparse:sparsity=1", "sparse:sparsity=1.5",
        "sparse:sparsity=-0.5", "sparse:sparsity=", "sparse:sparsity=most",
        // bits: 1..31 or adaptive, no size suffixes
        "sparse:bits=0", "sparse:bits=32", "sparse:bits=8k", "sparse:bits=",
        // gradaware beta strictly inside (0, 1)
        "fedsz:policy=gradaware:0", "fedsz:policy=gradaware:1",
        "fedsz:policy=gradaware:-0.5", "sparse:policy=gradaware:nan",
        // data: iid, dirichlet:<alpha> with alpha > 0, sizeskew:<s> with
        // s > 0 -- '+'-composable, no duplicates, iid composes with nothing
        "fedsz:data=", "fedsz:data=dirichlet", "fedsz:data=dirichlet:",
        "fedsz:data=dirichlet:0", "fedsz:data=dirichlet:-1",
        "fedsz:data=skewed", "fedsz:data=sizeskew", "fedsz:data=sizeskew:",
        "fedsz:data=sizeskew:0", "fedsz:data=sizeskew:-1",
        "fedsz:data=iid+sizeskew:1", "fedsz:data=sizeskew:1+sizeskew:2",
        "fedsz:data=dirichlet:0.5+dirichlet:0.5"}) {
    EXPECT_THROW(parse_codec_spec(spec), InvalidArgument) << spec;
  }
}

TEST(CodecSpecErrors, ConfigRejectsSparseKnobsOnNonSparseSpecs) {
  // A hand-built spec (not via the parser) with sparse knobs but a fedsz
  // family cannot honor them; codec_spec_config must refuse rather than
  // silently drop the sparsification.
  CodecSpec spec;
  spec.sparsity = 0.9;
  EXPECT_THROW(codec_spec_config(spec), InvalidArgument);
  CodecSpec bits_only;
  bits_only.sparse_bits = 8;
  EXPECT_THROW(codec_spec_config(bits_only), InvalidArgument);
}

TEST(MakeCodecByName, SparseFamilyWrapsThePolicyInTheOverlay) {
  const auto codec = make_codec_by_name("sparse:eb=rel:1e-2,sparsity=0.9");
  const auto* fedsz = dynamic_cast<const FedSzCodec*>(codec.get());
  ASSERT_NE(fedsz, nullptr);
  EXPECT_EQ(fedsz->fedsz().policy().name(), "sparse+threshold");

  const auto gradaware =
      make_codec_by_name("sparse:eb=rel:1e-2,policy=gradaware:0.5");
  const auto* gradaware_fedsz =
      dynamic_cast<const FedSzCodec*>(gradaware.get());
  ASSERT_NE(gradaware_fedsz, nullptr);
  EXPECT_EQ(gradaware_fedsz->fedsz().policy().name(), "sparse+gradaware");
}

TEST(CodecSpecParse, CommKeysDownlinkDownmodeEf) {
  const CodecSpec spec = parse_codec_spec(
      "fedsz:eb=rel:1e-2,downlink=fedsz:eb=rel:1e-3;lossless=zstd,"
      "downmode=delta,ef=on");
  EXPECT_DOUBLE_EQ(spec.bound.value, 1e-2);
  EXPECT_TRUE(spec.downlink_delta);
  EXPECT_TRUE(spec.error_feedback);
  // The stored downlink spec is canonical comma form, directly parseable.
  const CodecSpec inner = parse_codec_spec(spec.downlink);
  EXPECT_DOUBLE_EQ(inner.bound.value, 1e-3);
  EXPECT_EQ(inner.lossless_id, lossless::LosslessId::kZstd);

  EXPECT_EQ(parse_codec_spec("fedsz:downlink=identity").downlink, "identity");
  EXPECT_FALSE(parse_codec_spec("fedsz:ef=off").error_feedback);
  EXPECT_FALSE(parse_codec_spec("fedsz:downmode=full").downlink_delta);
  EXPECT_TRUE(parse_codec_spec("fedsz").downlink.empty());
}

TEST(CodecSpecParse, IdentityTakesCommKeysOnly) {
  // Raw uplink + compressed broadcast is a legitimate comm config, so the
  // identity family accepts (exactly) the comm-level keys.
  const CodecSpec spec = parse_codec_spec(
      "identity:downlink=fedsz:eb=rel:1e-3,ef=on");
  EXPECT_TRUE(spec.identity);
  EXPECT_TRUE(spec.error_feedback);
  EXPECT_DOUBLE_EQ(parse_codec_spec(spec.downlink).bound.value, 1e-3);
  // The canonical form round-trips the comm keys.
  const std::string canonical = format_codec_spec(spec);
  EXPECT_EQ(canonical.rfind("identity:", 0), 0u);
  EXPECT_EQ(format_codec_spec(parse_codec_spec(canonical)), canonical);
  // Codec-level keys stay rejected.
  EXPECT_THROW(parse_codec_spec("identity:eb=rel:1e-3"), InvalidArgument);
  EXPECT_THROW(parse_codec_spec("uncompressed:policy=schedule"),
               InvalidArgument);
}

TEST(CodecSpecParse, TopologyAndBackhaulCommKeys) {
  const CodecSpec spec = parse_codec_spec(
      "fedsz:eb=rel:1e-2,topology=hier:32,"
      "backhaul=fedsz:eb=rel:1e-3;lossless=zstd");
  ASSERT_EQ(spec.hier_tiers.size(), 1u);
  EXPECT_EQ(spec.hier_tiers[0], 32u);
  // The stored backhaul spec is canonical comma form, directly parseable.
  const CodecSpec inner = parse_codec_spec(spec.backhaul);
  EXPECT_DOUBLE_EQ(inner.bound.value, 1e-3);
  EXPECT_EQ(inner.lossless_id, lossless::LosslessId::kZstd);
  // flat is the default and an explicit no-op; suffixes scale the fan-ins.
  EXPECT_TRUE(parse_codec_spec("fedsz").hier_tiers.empty());
  EXPECT_TRUE(parse_codec_spec("fedsz:topology=flat").hier_tiers.empty());
  EXPECT_EQ(parse_codec_spec("fedsz:topology=hier:1k").hier_tiers,
            std::vector<std::size_t>{1024});
  // The identity family accepts the topology keys too (raw uplink through
  // a sharded tree is a legitimate comm config).
  const CodecSpec identity = parse_codec_spec(
      "identity:topology=hier:8,backhaul=identity");
  EXPECT_TRUE(identity.identity);
  EXPECT_EQ(identity.hier_tiers, std::vector<std::size_t>{8});
  EXPECT_EQ(identity.backhaul, "identity");
  const std::string canonical = format_codec_spec(identity);
  EXPECT_EQ(format_codec_spec(parse_codec_spec(canonical)), canonical);
}

TEST(CodecSpecParse, MultiTierTopologyAndPerTierOverrides) {
  const CodecSpec spec = parse_codec_spec(
      "fedsz:topology=hier:32x16x4,backhaul=identity,"
      "backhaul2=fedsz:eb=rel:1e-3;lossless=zstd,"
      "edgemode=buffered:3,edgeef=on,shard=shuffled");
  EXPECT_EQ(spec.hier_tiers, (std::vector<std::size_t>{32, 16, 4}));
  EXPECT_EQ(spec.backhaul, "identity");
  // backhaul2= lands at entry 1 (1-based tiers) with no trailing empties.
  ASSERT_EQ(spec.tier_backhauls.size(), 2u);
  EXPECT_TRUE(spec.tier_backhauls[0].empty());
  EXPECT_DOUBLE_EQ(parse_codec_spec(spec.tier_backhauls[1]).bound.value,
                   1e-3);
  EXPECT_TRUE(spec.edge_buffered);
  EXPECT_EQ(spec.edge_buffer, 3u);
  EXPECT_TRUE(spec.edge_error_feedback);
  EXPECT_TRUE(spec.shard_shuffled);
  // Every new key round-trips through the canonical form.
  const std::string canonical = format_codec_spec(spec);
  EXPECT_NE(canonical.find(",topology=hier:32x16x4"), std::string::npos);
  EXPECT_NE(canonical.find(",backhaul2=fedsz:"), std::string::npos);
  EXPECT_NE(canonical.find(",edgemode=buffered:3"), std::string::npos);
  EXPECT_NE(canonical.find(",edgeef=on"), std::string::npos);
  EXPECT_NE(canonical.find(",shard=shuffled"), std::string::npos);
  EXPECT_EQ(format_codec_spec(parse_codec_spec(canonical)), canonical);
  // The off-spellings are explicit no-ops.
  const CodecSpec off = parse_codec_spec(
      "fedsz:edgemode=sync,edgeef=off,shard=contiguous");
  EXPECT_FALSE(off.edge_buffered);
  EXPECT_EQ(off.edge_buffer, 0u);
  EXPECT_FALSE(off.edge_error_feedback);
  EXPECT_FALSE(off.shard_shuffled);
}

TEST(CodecSpecErrors, MalformedCommKeysThrow) {
  for (const char* spec :
       {"fedsz:ef=maybe", "fedsz:downmode=sideways", "fedsz:downlink=",
        "fedsz:downlink=szip",
        // comm keys cannot nest inside a downlink spec
        "fedsz:downlink=fedsz:ef=on",
        "fedsz:downlink=fedsz:downlink=identity",
        // degenerate topologies: missing/zero/non-numeric fanout, unknown
        // shapes, malformed or comm-carrying backhaul specs
        "fedsz:topology=hier", "fedsz:topology=hier:", "fedsz:topology=hier:0",
        "fedsz:topology=hier:two", "fedsz:topology=ring", "fedsz:topology=",
        // multi-tier vectors: dangling/zero/non-numeric fan-ins
        "fedsz:topology=hier:4x", "fedsz:topology=hier:4x0",
        "fedsz:topology=hier:x4", "fedsz:topology=hier:4xtwo",
        "fedsz:backhaul=", "fedsz:backhaul=szip",
        "fedsz:backhaul=fedsz:ef=on",
        "fedsz:backhaul=fedsz:topology=hier:4",
        // per-tier overrides: 1-based, numeric, comm-free
        "fedsz:backhaul0=identity", "fedsz:backhaul1=",
        "fedsz:backhaul2=fedsz:ef=on",
        // edge mode / edge EF / sharding
        "fedsz:edgemode=", "fedsz:edgemode=buffered",
        "fedsz:edgemode=buffered:", "fedsz:edgemode=buffered:0",
        "fedsz:edgemode=lazy", "fedsz:edgeef=maybe",
        "fedsz:shard=random"}) {
    EXPECT_THROW(parse_codec_spec(spec), InvalidArgument) << spec;
  }
}

TEST(CodecSpecFormat, CommKeysRoundTripThroughTheCanonicalForm) {
  const std::string canonical = normalize(
      "fedsz:downlink=fedsz:eb=rel:1e-3;lossy=sz3,downmode=delta,ef=on");
  EXPECT_NE(canonical.find(",downlink=fedsz:lossy=sz3;eb=rel:0.001;"),
            std::string::npos);
  EXPECT_NE(canonical.find(",downmode=delta"), std::string::npos);
  EXPECT_NE(canonical.find(",ef=on"), std::string::npos);
  // The canonical form is a fixed point.
  EXPECT_EQ(normalize(canonical), canonical);
  // Off/full/empty comm keys normalize away entirely.
  EXPECT_EQ(normalize("fedsz:ef=off,downmode=full"), normalize("fedsz"));
  EXPECT_EQ(normalize("fedsz:topology=flat"), normalize("fedsz"));
  // Topology keys render after the downlink trio, backhaul ';'-separated.
  const std::string hier = normalize(
      "fedsz:topology=hier:16,backhaul=fedsz:eb=rel:1e-3;lossless=zstd");
  EXPECT_NE(hier.find(",topology=hier:16"), std::string::npos);
  EXPECT_NE(hier.find(",backhaul=fedsz:lossy=sz2;eb=rel:0.001;"),
            std::string::npos);
  EXPECT_EQ(normalize(hier), hier);
}

TEST(CodecSpecParse, ChunkSuffixes) {
  EXPECT_EQ(parse_codec_spec("fedsz:chunk=512").chunk_elements, 512u);
  EXPECT_EQ(parse_codec_spec("fedsz:chunk=16k").chunk_elements, 16u * 1024u);
  EXPECT_EQ(parse_codec_spec("fedsz:chunk=2m").chunk_elements,
            2u * 1024u * 1024u);
}

TEST(CodecSpecParse, ExplicitDefaultsSeedOmittedKeys) {
  CodecSpec defaults;
  defaults.lossy_id = lossy::LossyId::kZfp;
  defaults.bound = lossy::ErrorBound::relative(1e-5);
  const CodecSpec spec = parse_codec_spec("fedsz:lossless=xz", defaults);
  EXPECT_EQ(spec.lossy_id, lossy::LossyId::kZfp);       // from defaults
  EXPECT_DOUBLE_EQ(spec.bound.value, 1e-5);             // from defaults
  EXPECT_EQ(spec.lossless_id, lossless::LosslessId::kXz);  // overridden
}

// ---- malformed specs: InvalidArgument naming the valid options ----

TEST(CodecSpecErrors, UnknownFamilyListsFamilies) {
  try {
    parse_codec_spec("szip");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("fedsz"), std::string::npos);
    EXPECT_NE(what.find("identity"), std::string::npos);
  }
}

TEST(CodecSpecErrors, UnknownLossyCodecListsCodecs) {
  try {
    parse_codec_spec("fedsz:lossy=mgard");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("sz2"), std::string::npos);
    EXPECT_NE(what.find("zfp"), std::string::npos);
  }
}

TEST(CodecSpecErrors, UnknownPolicyListsPolicies) {
  try {
    parse_codec_spec("fedsz:policy=oracle");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& error) {
    const std::string what = error.what();
    for (const std::string& name : compression_policy_names())
      EXPECT_NE(what.find(name), std::string::npos) << name;
  }
}

TEST(CodecSpecErrors, MalformedSpecsThrow) {
  for (const char* spec :
       {"fedsz:", "fedsz:eb=", "fedsz:eb=abs", "fedsz:eb=fast:1e-2",
        "fedsz:chunk=0", "fedsz:chunk=12q", "fedsz:threads=-1",
        "fedsz:=1e-2", "fedsz:eb", "fedsz:unknown=1", "identity:eb=1e-2",
        "fedsz:policy=schedule:0", "fedsz:policy=magnitude:0.5",
        "fedsz:eb=rel:nan", "fedsz:eb=rel:0", "",
        // Out-of-range counts: strtoull saturation and k/m multiplier wrap
        // must be parse errors, not silent truncation.
        "fedsz:threads=18446744073709551616",
        "fedsz:chunk=18014398509481985k"}) {
    EXPECT_THROW(parse_codec_spec(spec), InvalidArgument) << spec;
  }
}

TEST(CodecSpecErrors, AbsoluteBoundRejectedForRelativePolicies) {
  EXPECT_THROW(
      codec_spec_config(parse_codec_spec("fedsz:eb=abs:0.1,policy=schedule")),
      InvalidArgument);
  EXPECT_THROW(
      codec_spec_config(
          parse_codec_spec("fedsz:eb=abs:0.1,policy=magnitude")),
      InvalidArgument);
}

// ---- normalization and the fuzz round trip ----

TEST(CodecSpecFormat, CanonicalFormIsStable) {
  EXPECT_EQ(normalize("identity"), "identity");
  EXPECT_EQ(normalize("uncompressed"), "identity");
  EXPECT_EQ(normalize("fedsz"),
            "fedsz:lossy=sz2,eb=rel:0.01,lossless=blosc-lz,policy=threshold,"
            "chunk=65536,threads=1,threshold=1000");
  // fedsz-parallel is sugar for threads=0.
  EXPECT_EQ(normalize("fedsz-parallel"),
            "fedsz:lossy=sz2,eb=rel:0.01,lossless=blosc-lz,policy=threshold,"
            "chunk=65536,threads=0,threshold=1000");
  // Suffixes and mode shorthands normalize away.
  EXPECT_EQ(normalize("fedsz:chunk=64k,eb=1e-3"),
            "fedsz:lossy=sz2,eb=rel:0.001,lossless=blosc-lz,policy=threshold,"
            "chunk=65536,threads=1,threshold=1000");
}

TEST(CodecSpecFormat, FormatParseFuzzRoundTrip) {
  // format(parse(format(spec))) == format(spec) over random specs: the
  // canonical form is a fixed point of parse∘format.
  Rng rng(20260731);
  const auto lossy_codecs = lossy::all_lossy_codecs();
  const auto lossless_codecs = lossless::all_lossless_codecs();
  const std::vector<std::string> policies = compression_policy_names();
  for (int iter = 0; iter < 200; ++iter) {
    SCOPED_TRACE("iteration " + std::to_string(iter));
    CodecSpec spec;
    spec.identity = rng.uniform() < 0.1;
    spec.sparse = !spec.identity && rng.uniform() < 0.25;
    if (spec.sparse) {
      // The sparse family renders no lossy=; its knobs ride instead.
      if (rng.uniform() < 0.5) spec.sparsity = rng.uniform(0.05, 0.95);
      if (rng.uniform() < 0.5)
        spec.sparse_bits = 1 + static_cast<unsigned>(rng.uniform_index(31));
    } else {
      spec.lossy_id =
          lossy_codecs[rng.uniform_index(lossy_codecs.size())]->id();
    }
    spec.lossless_id =
        lossless_codecs[rng.uniform_index(lossless_codecs.size())]->id();
    const double exponent = rng.uniform(-6.0, -1.0);
    spec.bound = lossy::ErrorBound::relative(std::pow(10.0, exponent));
    spec.policy = policies[rng.uniform_index(policies.size())];
    if (spec.policy == "threshold" && rng.uniform() < 0.3) {
      // Only the threshold policy accepts absolute bounds.
      spec.bound.mode = lossy::BoundMode::kAbsolute;
    }
    spec.schedule_factor = rng.uniform(0.1, 1.5);
    spec.gradaware_beta = rng.uniform(0.05, 0.95);
    if (rng.uniform() < 0.2) spec.dirichlet_alpha = rng.uniform(0.1, 5.0);
    if (rng.uniform() < 0.2) spec.sizeskew_s = rng.uniform(0.1, 3.0);
    if (rng.uniform() < 0.2) {
      const char* populations[] = {"mixed", "mobile:avail=always",
                                   "iot_fleet:avail=flat:0.5",
                                   "custom:mix=laptop*2+iot*1;drop=0.1"};
      spec.population = format_population_spec(parse_population_spec(
          populations[rng.uniform_index(std::size(populations))]));
    }
    spec.chunk_elements = 1 + rng.uniform_index(1 << 20);
    spec.threads = rng.uniform_index(9);
    spec.lossy_threshold = rng.uniform_index(5000);
    if (rng.uniform() < 0.3)
      spec.downlink = format_codec_spec(parse_codec_spec(
          rng.uniform() < 0.5 ? "identity" : "fedsz:lossy=sz3,eb=rel:1e-3"));
    spec.downlink_delta = rng.uniform() < 0.25;
    spec.error_feedback = rng.uniform() < 0.25;
    if (rng.uniform() < 0.3) {
      const std::size_t depth = 1 + rng.uniform_index(3);
      for (std::size_t t = 0; t < depth; ++t)
        spec.hier_tiers.push_back(1 + rng.uniform_index(256));
      if (rng.uniform() < 0.5)
        spec.backhaul = format_codec_spec(parse_codec_spec(
            rng.uniform() < 0.5 ? "identity" : "fedsz:eb=rel:1e-3"));
      if (rng.uniform() < 0.4) {
        // Per-tier overrides: pick one tier, no trailing empties (the
        // canonical-form invariant the generator must respect).
        const std::size_t tier = 1 + rng.uniform_index(depth);
        spec.tier_backhauls.resize(tier);
        spec.tier_backhauls[tier - 1] =
            format_codec_spec(parse_codec_spec("fedsz:eb=rel:1e-4"));
      }
      if (rng.uniform() < 0.3) {
        spec.edge_buffered = true;
        spec.edge_buffer = 1 + rng.uniform_index(8);
      }
      spec.edge_error_feedback = rng.uniform() < 0.25;
      spec.shard_shuffled = rng.uniform() < 0.25;
    }

    const std::string canonical = format_codec_spec(spec);
    const CodecSpec reparsed = parse_codec_spec(canonical);
    EXPECT_EQ(format_codec_spec(reparsed), canonical);
    // Comm-level keys round-trip for every family, identity included.
    EXPECT_EQ(reparsed.downlink, spec.downlink);
    EXPECT_EQ(reparsed.downlink_delta, spec.downlink_delta);
    EXPECT_EQ(reparsed.error_feedback, spec.error_feedback);
    EXPECT_EQ(reparsed.hier_tiers, spec.hier_tiers);
    EXPECT_EQ(reparsed.backhaul, spec.backhaul);
    EXPECT_EQ(reparsed.tier_backhauls, spec.tier_backhauls);
    EXPECT_EQ(reparsed.edge_buffered, spec.edge_buffered);
    EXPECT_EQ(reparsed.edge_buffer, spec.edge_buffer);
    EXPECT_EQ(reparsed.edge_error_feedback, spec.edge_error_feedback);
    EXPECT_EQ(reparsed.shard_shuffled, spec.shard_shuffled);
    EXPECT_DOUBLE_EQ(reparsed.dirichlet_alpha, spec.dirichlet_alpha);
    EXPECT_DOUBLE_EQ(reparsed.sizeskew_s, spec.sizeskew_s);
    EXPECT_EQ(reparsed.population, spec.population);
    if (!spec.identity) {
      EXPECT_EQ(reparsed.sparse, spec.sparse);
      if (spec.sparse) {
        EXPECT_DOUBLE_EQ(reparsed.sparsity, spec.sparsity);
        EXPECT_EQ(reparsed.sparse_bits, spec.sparse_bits);
      } else {
        EXPECT_EQ(reparsed.lossy_id, spec.lossy_id);
      }
      EXPECT_EQ(reparsed.lossless_id, spec.lossless_id);
      EXPECT_EQ(reparsed.bound.mode, spec.bound.mode);
      EXPECT_DOUBLE_EQ(reparsed.bound.value, spec.bound.value);
      EXPECT_EQ(reparsed.policy, spec.policy);
      EXPECT_EQ(reparsed.chunk_elements, spec.chunk_elements);
      EXPECT_EQ(reparsed.threads, spec.threads);
      EXPECT_EQ(reparsed.lossy_threshold, spec.lossy_threshold);
      if (spec.policy == "schedule") {
        EXPECT_DOUBLE_EQ(reparsed.schedule_factor, spec.schedule_factor);
      }
      if (spec.policy == "gradaware") {
        EXPECT_DOUBLE_EQ(reparsed.gradaware_beta, spec.gradaware_beta);
      }
    }
  }
}

// ---- construction ----

TEST(MakeCodecFromSpecString, BuildsTheCodecASpecDescribes) {
  // The preferred string entry point: parse + make_codec in one step.
  EXPECT_EQ(make_codec("identity")->name(), "uncompressed");
  EXPECT_EQ(make_codec("fedsz:lossy=sz3,eb=rel:1e-3")->name(), "fedsz-sz3");
}

TEST(MakeCodecFromSpecString, CommKeysAreRejected) {
  // A bare codec cannot honor comm-level keys; dropping them silently would
  // hide a misconfigured run.
  for (const char* spec :
       {"fedsz:ef=on", "fedsz:downlink=identity", "fedsz:topology=hier:8",
        "identity:topology=hier:4x2,backhaul=identity",
        "fedsz:edgemode=buffered:2", "fedsz:edgeef=on",
        "fedsz:shard=shuffled"}) {
    EXPECT_THROW(make_codec(std::string(spec)), InvalidArgument) << spec;
  }
}

TEST(MakeCodecByName, LegacyNamesStillResolve) {
  EXPECT_EQ(make_codec_by_name("identity")->name(), "uncompressed");
  EXPECT_EQ(make_codec_by_name("uncompressed")->name(), "uncompressed");
  EXPECT_EQ(make_codec_by_name("fedsz")->name(), "fedsz-sz2");
  EXPECT_EQ(make_codec_by_name("fedsz-parallel")->name(), "fedsz-sz2");
}

TEST(MakeCodecByName, SpecStringsConfigureTheCodec) {
  const auto codec = make_codec_by_name("fedsz:lossy=sz3,eb=rel:1e-3");
  EXPECT_EQ(codec->name(), "fedsz-sz3");
  const auto* fedsz = dynamic_cast<const FedSzCodec*>(codec.get());
  ASSERT_NE(fedsz, nullptr);
  EXPECT_DOUBLE_EQ(fedsz->fedsz().config().bound.value, 1e-3);
  EXPECT_EQ(fedsz->fedsz().policy().name(), "threshold");

  const auto scheduled = make_codec_by_name("fedsz:policy=schedule:0.5");
  const auto* scheduled_fedsz =
      dynamic_cast<const FedSzCodec*>(scheduled.get());
  ASSERT_NE(scheduled_fedsz, nullptr);
  EXPECT_EQ(scheduled_fedsz->fedsz().policy().name(), "schedule");
}

TEST(MakeCodecByName, CallerConfigSeedsDefaults) {
  FedSzConfig config;
  config.bound = lossy::ErrorBound::relative(1e-4);
  config.parallelism = 3;
  const auto codec = make_codec_by_name("fedsz:lossless=zstd", config);
  const auto* fedsz = dynamic_cast<const FedSzCodec*>(codec.get());
  ASSERT_NE(fedsz, nullptr);
  EXPECT_DOUBLE_EQ(fedsz->fedsz().config().bound.value, 1e-4);
  EXPECT_EQ(fedsz->fedsz().config().parallelism, 3u);
  EXPECT_EQ(fedsz->fedsz().config().lossless_id, lossless::LosslessId::kZstd);
}

TEST(MakeCodecByName, ExplicitThresholdBeatsCallerPolicy) {
  // An explicit policy=threshold request must stay the Algorithm-1 default
  // even when the caller's config carries a policy object; only a spec
  // that omits `policy=` inherits it.
  FedSzConfig config;
  config.policy = make_bound_schedule_policy({});
  const auto explicit_codec =
      make_codec_by_name("fedsz:policy=threshold", config);
  const auto* explicit_fedsz =
      dynamic_cast<const FedSzCodec*>(explicit_codec.get());
  ASSERT_NE(explicit_fedsz, nullptr);
  EXPECT_EQ(explicit_fedsz->fedsz().policy().name(), "threshold");

  const auto inherited_codec = make_codec_by_name("fedsz", config);
  const auto* inherited_fedsz =
      dynamic_cast<const FedSzCodec*>(inherited_codec.get());
  ASSERT_NE(inherited_fedsz, nullptr);
  EXPECT_EQ(inherited_fedsz->fedsz().policy().name(), "schedule");
}

TEST(MakeCodecByName, UnknownNameThrowsWithOptions) {
  EXPECT_THROW(make_codec_by_name("gzip-only"), InvalidArgument);
  EXPECT_THROW(make_codec_by_name(""), InvalidArgument);
}

TEST(MakeCodecByName, CommKeysItCannotHonorAreRejected) {
  // A bare codec entry point would silently drop downlink/downmode/ef;
  // refuse instead so harnesses either honor them via apply_comm_spec or
  // fail loudly.
  for (const char* spec :
       {"fedsz:ef=on", "fedsz:downlink=identity",
        "identity:downlink=fedsz:eb=rel:1e-3",
        "fedsz:eb=rel:1e-2,downmode=delta", "fedsz:topology=hier:8",
        "identity:backhaul=fedsz:eb=rel:1e-3,topology=hier:4"}) {
    EXPECT_THROW(make_codec_by_name(spec), InvalidArgument) << spec;
  }
}

}  // namespace
}  // namespace fedsz::core

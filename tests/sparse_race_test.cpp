// The policy race harness the sparse subsystem ships with — and this PR's
// acceptance pin. One seeded workload runs once per contender uplink spec
// (plain FedSZ, sparse, sparse+error-feedback, sparse+gradaware+EF), flat
// and again under a two-edge hierarchy with sparse backhaul tiers, and the
// harness asserts the subsystem's claim directly:
//
//   sparse+EF matches plain FedSZ's final accuracy within a stated margin
//   (kAccuracyMargin) while uploading strictly fewer bytes — a strictly
//   higher uplink compression ratio — on BOTH topologies, and under the
//   hierarchy the sparse backhaul beats the FedSZ backhaul too.
//
// Everything is seeded, so the race is a regression pin, not a flaky
// benchmark: if a codec or policy change shifts the trade-off, this fails
// loudly with the full race table in the log.
#include <gtest/gtest.h>

#include <cstddef>
#include <iostream>
#include <string>
#include <vector>

#include "core/codec_spec.hpp"
#include "core/fl/coordinator.hpp"
#include "core/fl/topology.hpp"
#include "data/synthetic.hpp"

namespace fedsz::core {
namespace {

constexpr std::size_t kClients = 4;
constexpr int kRounds = 3;
constexpr std::size_t kTake = kClients * 24;
constexpr std::uint64_t kSeed = 20260809;

/// The stated accuracy margin of the acceptance criterion: sparse+EF must
/// land within this of the plain-FedSZ trajectory on the pinned workload.
/// The 64-sample eval quantizes accuracy to 1/64 steps and three rounds on
/// the tiny synthetic task sit barely above chance, so the margin covers
/// that granularity (observed gap: 0.109 flat, 0.094 hier), not a drift
/// allowance — the trajectory itself is seeded and byte-deterministic.
constexpr double kAccuracyMargin = 0.15;

const char* kFedSzSpec = "fedsz:eb=rel:1e-2";
const char* kSparseSpec = "sparse:eb=rel:1e-2,sparsity=0.9,bits=8";
const char* kSparseEfSpec = "sparse:eb=rel:1e-2,sparsity=0.9,bits=8,ef=on";
const char* kSparseGradAwareEfSpec =
    "sparse:eb=rel:1e-2,sparsity=0.9,bits=8,policy=gradaware:0.5,ef=on";

nn::ModelConfig tiny_model() {
  nn::ModelConfig model;
  model.arch = "mobilenet_v2";
  model.scale = nn::ModelScale::kTiny;
  return model;
}

struct RaceResult {
  std::string name;
  double accuracy = 0.0;
  double uplink_ratio = 0.0;    // raw / sent over all rounds
  double backhaul_ratio = 0.0;  // raw / sent over all rounds, hier only
  double max_ef_residual = 0.0;
  std::vector<std::size_t> round_bytes;
};

RaceResult run_contender(const std::string& name, const std::string& spec_str,
                         bool hier, std::size_t threads = 2) {
  const CodecSpec spec = parse_codec_spec(spec_str);
  FlRunConfig config;
  config.apply_comm_spec(spec);  // honors ef=on
  config.clients = kClients;
  config.rounds = kRounds;
  config.threads = threads;
  config.seed = kSeed;
  config.eval_limit = 64;
  config.client.batch_size = 8;
  config.client.sgd.learning_rate = 0.05f;
  if (hier) {
    config.topology.mode = TopologyMode::kHier;
    config.topology.tiers = {2};
    // The backhaul races the same family as the uplink, with a per-tier
    // override so the sparse contenders exercise tier_backhaul_specs too.
    if (spec.sparse) {
      config.topology.backhaul_spec = kSparseSpec;
      config.topology.tier_backhaul_specs = {
          "sparse:eb=rel:1e-2,sparsity=0.8,bits=6"};
    } else {
      config.topology.backhaul_spec = kFedSzSpec;
    }
  }

  auto [train, test] = data::make_dataset("cifar10");
  FlCoordinator coordinator(tiny_model(), data::take(train, kTake),
                            data::take(test, 64), config, make_codec(spec));
  const FlRunResult result = coordinator.run();

  RaceResult out;
  out.name = name;
  out.accuracy = result.final_accuracy;
  std::size_t raw = 0, sent = 0, backhaul_raw = 0, backhaul_sent = 0;
  for (const RoundRecord& record : result.rounds) {
    raw += record.raw_bytes;
    sent += record.bytes_sent;
    backhaul_raw += record.backhaul_raw_bytes;
    backhaul_sent += record.backhaul_bytes;
    out.max_ef_residual =
        std::max(out.max_ef_residual, record.mean_ef_residual_norm);
    out.round_bytes.push_back(record.bytes_sent);
  }
  out.uplink_ratio =
      sent ? static_cast<double>(raw) / static_cast<double>(sent) : 0.0;
  out.backhaul_ratio = backhaul_sent ? static_cast<double>(backhaul_raw) /
                                           static_cast<double>(backhaul_sent)
                                     : 0.0;
  return out;
}

void print_table(const char* heading, const std::vector<RaceResult>& rows) {
  std::cout << heading << "\n";
  for (const RaceResult& row : rows)
    std::cout << "  " << row.name << ": accuracy=" << row.accuracy
              << " uplink_ratio=" << row.uplink_ratio
              << " backhaul_ratio=" << row.backhaul_ratio
              << " max_ef_residual=" << row.max_ef_residual << "\n";
}

void check_race(const std::vector<RaceResult>& rows, bool hier) {
  const RaceResult& fedsz = rows[0];
  ASSERT_EQ(fedsz.name, "fedsz");
  EXPECT_GT(fedsz.uplink_ratio, 1.0);
  for (std::size_t i = 1; i < rows.size(); ++i) {
    const RaceResult& sparse = rows[i];
    // The headline claim: every sparse contender uploads strictly fewer
    // bytes than plain FedSZ on the identical workload.
    EXPECT_GT(sparse.uplink_ratio, fedsz.uplink_ratio) << sparse.name;
    // ... while staying inside the stated accuracy margin.
    EXPECT_NEAR(sparse.accuracy, fedsz.accuracy, kAccuracyMargin)
        << sparse.name;
    if (hier) {
      EXPECT_GT(sparse.backhaul_ratio, fedsz.backhaul_ratio) << sparse.name;
    } else {
      EXPECT_EQ(sparse.backhaul_ratio, 0.0) << sparse.name;
    }
  }
}

TEST(SparseRace, FlatSparseEfMatchesFedSzAccuracyAtHigherRatio) {
  const std::vector<RaceResult> rows = {
      run_contender("fedsz", kFedSzSpec, false),
      run_contender("sparse", kSparseSpec, false),
      run_contender("sparse+ef", kSparseEfSpec, false),
      run_contender("sparse+gradaware+ef", kSparseGradAwareEfSpec, false),
  };
  print_table("flat race:", rows);
  check_race(rows, false);
  // EF actually engaged: the accumulator carried a nonzero residual (the
  // dropped 90% of coefficients) into later rounds.
  EXPECT_GT(rows[2].max_ef_residual, 0.0);
  EXPECT_GT(rows[3].max_ef_residual, 0.0);
  // ... and with EF off the coordinator tracked no residual at all.
  EXPECT_EQ(rows[0].max_ef_residual, 0.0);
  EXPECT_EQ(rows[1].max_ef_residual, 0.0);
}

TEST(SparseRace, HierarchicalRaceHoldsPerTierToo) {
  const std::vector<RaceResult> rows = {
      run_contender("fedsz", kFedSzSpec, true),
      run_contender("sparse", kSparseSpec, true),
      run_contender("sparse+ef", kSparseEfSpec, true),
      run_contender("sparse+gradaware+ef", kSparseGradAwareEfSpec, true),
  };
  print_table("hier race:", rows);
  check_race(rows, true);
}

TEST(SparseRace, SparseEfRaceIsThreadCountDeterministic) {
  // The race table is a regression pin only because the trajectory is: the
  // sparse encode must be byte-identical at any thread count even with the
  // EF accumulator in the loop.
  const RaceResult one = run_contender("sparse+ef", kSparseEfSpec, false, 1);
  const RaceResult four = run_contender("sparse+ef", kSparseEfSpec, false, 4);
  EXPECT_EQ(four.round_bytes, one.round_bytes);
  EXPECT_DOUBLE_EQ(four.accuracy, one.accuracy);
}

}  // namespace
}  // namespace fedsz::core

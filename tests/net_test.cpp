// Tests for the bandwidth model and the Eqn (1) compression decision rule.
#include <gtest/gtest.h>

#include "net/bandwidth.hpp"
#include "util/common.hpp"

namespace fedsz::net {
namespace {

TEST(SimulatedNetworkTest, TransferTimeMatchesBandwidth) {
  const SimulatedNetwork net({10.0, 0.0});  // 10 Mbps
  // 10 Mbps = 1.25e6 bytes/s; 1.25 MB should take 1 second.
  EXPECT_NEAR(net.transfer_seconds(1250000), 1.0, 1e-9);
  EXPECT_NEAR(net.transfer_seconds(0), 0.0, 1e-12);
}

TEST(SimulatedNetworkTest, LatencyAdds) {
  const SimulatedNetwork net({10.0, 0.05});
  EXPECT_NEAR(net.transfer_seconds(0), 0.05, 1e-12);
  EXPECT_NEAR(net.transfer_seconds(1250000), 1.05, 1e-9);
}

TEST(SimulatedNetworkTest, PaperExampleTenGbUpdateAtTenMbps) {
  // Section I: a 10 GB update at 10 Mbps takes ~133 minutes (the paper
  // rounds to "approximately 150 minutes").
  const SimulatedNetwork net({10.0, 0.0});
  const double seconds = net.transfer_seconds(10ull * 1000 * 1000 * 1000);
  EXPECT_NEAR(seconds / 60.0, 133.3, 1.0);
}

TEST(SimulatedNetworkTest, InvalidProfilesThrow) {
  EXPECT_THROW(SimulatedNetwork({0.0, 0.0}), InvalidArgument);
  EXPECT_THROW(SimulatedNetwork({-5.0, 0.0}), InvalidArgument);
  EXPECT_THROW(SimulatedNetwork({10.0, -1.0}), InvalidArgument);
}

TEST(CompressionDecisionTest, WorthwhileOnSlowLink) {
  const SimulatedNetwork slow({10.0, 0.0});
  // 10 MB update, 5x compression, 1s codec overhead total.
  const CompressionDecision d =
      evaluate_compression(10000000, 2000000, 0.7, 0.3, slow);
  EXPECT_TRUE(d.worthwhile);
  EXPECT_NEAR(d.uncompressed_seconds, 8.0, 1e-9);
  EXPECT_NEAR(d.compressed_seconds, 1.0 + 1.6, 1e-9);
  EXPECT_GT(d.speedup(), 3.0);
}

TEST(CompressionDecisionTest, NotWorthwhileOnFastLink) {
  const SimulatedNetwork fast({10000.0, 0.0});  // 10 Gbps
  const CompressionDecision d =
      evaluate_compression(10000000, 2000000, 0.7, 0.3, fast);
  EXPECT_FALSE(d.worthwhile);
}

TEST(CompressionDecisionTest, CrossoverBandwidthExists) {
  // Somewhere between 10 Mbps and 10 Gbps the decision flips — the Figure 8
  // crossover phenomenon.
  bool was_worthwhile = true;
  bool flipped = false;
  for (double mbps = 1.0; mbps <= 10000.0; mbps *= 2.0) {
    const SimulatedNetwork net({mbps, 0.0});
    const CompressionDecision d =
        evaluate_compression(10000000, 2000000, 0.7, 0.3, net);
    if (was_worthwhile && !d.worthwhile) flipped = true;
    EXPECT_FALSE(!was_worthwhile && d.worthwhile)
        << "decision should be monotone in bandwidth";
    was_worthwhile = d.worthwhile;
  }
  EXPECT_TRUE(flipped);
}

TEST(CompressionDecisionTest, ZeroOverheadAlwaysWorthwhileWhenSmaller) {
  const SimulatedNetwork net({100.0, 0.0});
  const CompressionDecision d =
      evaluate_compression(1000, 999, 0.0, 0.0, net);
  EXPECT_TRUE(d.worthwhile);
}

}  // namespace
}  // namespace fedsz::net

// Tests for the bandwidth model, the Eqn (1) compression decision rule,
// the event-queue virtual clock, and heterogeneous per-client networks.
#include <gtest/gtest.h>

#include <cmath>

#include "net/bandwidth.hpp"
#include "net/heterogeneous.hpp"
#include "net/virtual_clock.hpp"
#include "util/common.hpp"

namespace fedsz::net {
namespace {

TEST(SimulatedNetworkTest, TransferTimeMatchesBandwidth) {
  const SimulatedNetwork net({10.0, 0.0});  // 10 Mbps
  // 10 Mbps = 1.25e6 bytes/s; 1.25 MB should take 1 second.
  EXPECT_NEAR(net.transfer_seconds(1250000), 1.0, 1e-9);
  EXPECT_NEAR(net.transfer_seconds(0), 0.0, 1e-12);
}

TEST(SimulatedNetworkTest, LatencyAdds) {
  const SimulatedNetwork net({10.0, 0.05});
  EXPECT_NEAR(net.transfer_seconds(0), 0.05, 1e-12);
  EXPECT_NEAR(net.transfer_seconds(1250000), 1.05, 1e-9);
}

TEST(SimulatedNetworkTest, PaperExampleTenGbUpdateAtTenMbps) {
  // Section I: a 10 GB update at 10 Mbps takes ~133 minutes (the paper
  // rounds to "approximately 150 minutes").
  const SimulatedNetwork net({10.0, 0.0});
  const double seconds = net.transfer_seconds(10ull * 1000 * 1000 * 1000);
  EXPECT_NEAR(seconds / 60.0, 133.3, 1.0);
}

TEST(SimulatedNetworkTest, InvalidProfilesThrow) {
  EXPECT_THROW(SimulatedNetwork({0.0, 0.0}), InvalidArgument);
  EXPECT_THROW(SimulatedNetwork({-5.0, 0.0}), InvalidArgument);
  EXPECT_THROW(SimulatedNetwork({10.0, -1.0}), InvalidArgument);
}

TEST(CompressionDecisionTest, WorthwhileOnSlowLink) {
  const SimulatedNetwork slow({10.0, 0.0});
  // 10 MB update, 5x compression, 1s codec overhead total.
  const CompressionDecision d =
      evaluate_compression(10000000, 2000000, 0.7, 0.3, slow);
  EXPECT_TRUE(d.worthwhile);
  EXPECT_NEAR(d.uncompressed_seconds, 8.0, 1e-9);
  EXPECT_NEAR(d.compressed_seconds, 1.0 + 1.6, 1e-9);
  EXPECT_GT(d.speedup(), 3.0);
}

TEST(CompressionDecisionTest, NotWorthwhileOnFastLink) {
  const SimulatedNetwork fast({10000.0, 0.0});  // 10 Gbps
  const CompressionDecision d =
      evaluate_compression(10000000, 2000000, 0.7, 0.3, fast);
  EXPECT_FALSE(d.worthwhile);
}

TEST(CompressionDecisionTest, CrossoverBandwidthExists) {
  // Somewhere between 10 Mbps and 10 Gbps the decision flips — the Figure 8
  // crossover phenomenon.
  bool was_worthwhile = true;
  bool flipped = false;
  for (double mbps = 1.0; mbps <= 10000.0; mbps *= 2.0) {
    const SimulatedNetwork net({mbps, 0.0});
    const CompressionDecision d =
        evaluate_compression(10000000, 2000000, 0.7, 0.3, net);
    if (was_worthwhile && !d.worthwhile) flipped = true;
    EXPECT_FALSE(!was_worthwhile && d.worthwhile)
        << "decision should be monotone in bandwidth";
    was_worthwhile = d.worthwhile;
  }
  EXPECT_TRUE(flipped);
}

TEST(CompressionDecisionTest, ZeroOverheadAlwaysWorthwhileWhenSmaller) {
  const SimulatedNetwork net({100.0, 0.0});
  const CompressionDecision d =
      evaluate_compression(1000, 999, 0.0, 0.0, net);
  EXPECT_TRUE(d.worthwhile);
  EXPECT_GT(d.speedup(), 1.0);
}

TEST(CompressionDecisionTest, ZeroCompressedTimeSpeedupIsInfinite) {
  // A zero-cost compressed path is infinitely faster, not 0x faster.
  CompressionDecision d;
  d.uncompressed_seconds = 5.0;
  d.compressed_seconds = 0.0;
  EXPECT_TRUE(std::isinf(d.speedup()));
  EXPECT_GT(d.speedup(), 0.0);
}

TEST(CompressionDecisionTest, ZeroBytesOnZeroLatencyLink) {
  // Degenerate but reachable: an empty update over an instantaneous link.
  // Both paths take zero seconds; nothing is strictly faster.
  const SimulatedNetwork net({100.0, 0.0});
  const CompressionDecision d = evaluate_compression(0, 0, 0.0, 0.0, net);
  EXPECT_EQ(d.uncompressed_seconds, 0.0);
  EXPECT_EQ(d.compressed_seconds, 0.0);
  EXPECT_FALSE(d.worthwhile);
  EXPECT_TRUE(std::isinf(d.speedup()));
}

TEST(CompressionDecisionTest, LatencyOnlyLinkNeverWorthwhile) {
  // With latency dominating (zero payloads), compression adds codec time on
  // top of the same latency, so it can never win.
  const SimulatedNetwork net({100.0, 0.25});
  const CompressionDecision d = evaluate_compression(0, 0, 0.1, 0.1, net);
  EXPECT_NEAR(d.uncompressed_seconds, 0.25, 1e-12);
  EXPECT_NEAR(d.compressed_seconds, 0.45, 1e-12);
  EXPECT_FALSE(d.worthwhile);
  EXPECT_LT(d.speedup(), 1.0);
}

TEST(EventQueueTest, RunsEventsInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule_at(3.0, [&] { order.push_back(3); });
  queue.schedule_at(1.0, [&] { order.push_back(1); });
  queue.schedule_at(2.0, [&] { order.push_back(2); });
  while (queue.run_next()) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_NEAR(queue.now(), 3.0, 1e-12);
}

TEST(EventQueueTest, TiesBreakByInsertionOrder) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i)
    queue.schedule_at(1.0, [&, i] { order.push_back(i); });
  while (queue.run_next()) {
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(EventQueueTest, EventsCanScheduleFurtherEvents) {
  EventQueue queue;
  std::vector<double> times;
  queue.schedule_after(1.0, [&] {
    times.push_back(queue.now());
    queue.schedule_after(0.5, [&] { times.push_back(queue.now()); });
  });
  while (queue.run_next()) {
  }
  ASSERT_EQ(times.size(), 2u);
  EXPECT_NEAR(times[0], 1.0, 1e-12);
  EXPECT_NEAR(times[1], 1.5, 1e-12);
}

TEST(EventQueueTest, RejectsPastAndInvalidSchedules) {
  EventQueue queue;
  queue.schedule_at(2.0, [] {});
  EXPECT_TRUE(queue.run_next());
  EXPECT_THROW(queue.schedule_at(1.0, [] {}), InvalidArgument);
  EXPECT_THROW(queue.schedule_after(-0.1, [] {}), InvalidArgument);
  EXPECT_THROW(queue.schedule_after(std::nan(""), [] {}), InvalidArgument);
  EXPECT_THROW(queue.schedule_at(3.0, nullptr), InvalidArgument);
  EXPECT_FALSE(queue.run_next());
}

TEST(EventQueueTest, ClearDropsPendingEvents) {
  EventQueue queue;
  int fired = 0;
  queue.schedule_at(1.0, [&] { ++fired; });
  queue.clear();
  EXPECT_FALSE(queue.run_next());
  EXPECT_EQ(fired, 0);
}

TEST(HeterogeneousNetworkTest, HomogeneousSharesOneProfile) {
  const auto network =
      HeterogeneousNetwork::homogeneous({10.0, 0.01}, 5);
  ASSERT_EQ(network.size(), 5u);
  for (std::size_t i = 0; i < network.size(); ++i) {
    EXPECT_DOUBLE_EQ(network.link(i).profile().bandwidth_mbps, 10.0);
    EXPECT_DOUBLE_EQ(network.link(i).profile().latency_s, 0.01);
  }
  EXPECT_DOUBLE_EQ(network.min_bandwidth_mbps(), 10.0);
  EXPECT_DOUBLE_EQ(network.max_bandwidth_mbps(), 10.0);
}

TEST(HeterogeneousNetworkTest, UniformEdgeStaysInRangeAndIsSeeded) {
  HeterogeneousNetworkConfig config;
  config.distribution = LinkDistribution::kUniformEdge;
  config.edge_min_mbps = 4.0;
  config.edge_max_mbps = 20.0;
  config.seed = 7;
  const HeterogeneousNetwork a(config, 32);
  const HeterogeneousNetwork b(config, 32);
  for (std::size_t i = 0; i < 32; ++i) {
    const double mbps = a.link(i).profile().bandwidth_mbps;
    EXPECT_GE(mbps, 4.0);
    EXPECT_LE(mbps, 20.0);
    EXPECT_DOUBLE_EQ(mbps, b.link(i).profile().bandwidth_mbps);
  }
  config.seed = 8;
  const HeterogeneousNetwork c(config, 32);
  bool any_different = false;
  for (std::size_t i = 0; i < 32; ++i)
    any_different |= c.link(i).profile().bandwidth_mbps !=
                     a.link(i).profile().bandwidth_mbps;
  EXPECT_TRUE(any_different);
}

TEST(HeterogeneousNetworkTest, LogNormalWanIsPositiveAndSpread) {
  HeterogeneousNetworkConfig config;
  config.distribution = LinkDistribution::kLogNormalWan;
  config.wan_median_mbps = 50.0;
  config.wan_log_sigma = 1.0;
  const HeterogeneousNetwork network(config, 64);
  for (std::size_t i = 0; i < 64; ++i)
    EXPECT_GT(network.link(i).profile().bandwidth_mbps, 0.0);
  EXPECT_GT(network.max_bandwidth_mbps(),
            2.0 * network.min_bandwidth_mbps());
}

TEST(HeterogeneousNetworkTest, TwoTierHasExactTierSizes) {
  HeterogeneousNetworkConfig config;
  config.distribution = LinkDistribution::kTwoTier;
  config.two_tier_fast_fraction = 0.3;
  config.two_tier_fast_mbps = 1000.0;
  config.two_tier_slow_mbps = 10.0;
  const HeterogeneousNetwork network(config, 10);
  std::size_t fast = 0;
  for (std::size_t i = 0; i < 10; ++i) {
    const double mbps = network.link(i).profile().bandwidth_mbps;
    EXPECT_TRUE(mbps == 1000.0 || mbps == 10.0);
    if (mbps == 1000.0) ++fast;
  }
  EXPECT_EQ(fast, 3u);  // exactly round(0.3 * 10)
}

TEST(HeterogeneousNetworkTest, InvalidConfigsThrow) {
  HeterogeneousNetworkConfig config;
  config.edge_min_mbps = 0.0;
  EXPECT_THROW(HeterogeneousNetwork(config, 4), InvalidArgument);
  config = {};
  config.edge_max_mbps = config.edge_min_mbps - 1.0;
  EXPECT_THROW(HeterogeneousNetwork(config, 4), InvalidArgument);
  config = {};
  config.distribution = LinkDistribution::kLogNormalWan;
  config.wan_median_mbps = -1.0;
  EXPECT_THROW(HeterogeneousNetwork(config, 4), InvalidArgument);
  config = {};
  config.distribution = LinkDistribution::kTwoTier;
  config.two_tier_fast_fraction = 1.5;
  EXPECT_THROW(HeterogeneousNetwork(config, 4), InvalidArgument);
  config = {};
  config.latency_s = -0.1;
  EXPECT_THROW(HeterogeneousNetwork(config, 4), InvalidArgument);
  EXPECT_THROW(HeterogeneousNetwork(HeterogeneousNetworkConfig{}, 0),
               InvalidArgument);
}

TEST(HeterogeneousNetworkTest, LinkIndexIsRangeChecked) {
  const auto network = HeterogeneousNetwork::homogeneous({10.0, 0.0}, 2);
  EXPECT_NO_THROW(network.link(1));
  EXPECT_THROW(network.link(2), InvalidArgument);
}

TEST(HeterogeneousNetworkTest, DistributionNamesRoundTrip) {
  for (const LinkDistribution d :
       {LinkDistribution::kUniformEdge, LinkDistribution::kLogNormalWan,
        LinkDistribution::kTwoTier})
    EXPECT_EQ(link_distribution_from_name(link_distribution_name(d)), d);
  EXPECT_THROW(link_distribution_from_name("5g"), InvalidArgument);
}

}  // namespace
}  // namespace fedsz::net

// Tests for the FL-compression baselines (Top-K sparsification, QSGD-style
// quantization) and the "FedSZ as last step" composition from Section III-C.
#include <gtest/gtest.h>

#include <cmath>

#include "core/baselines.hpp"
#include "nn/models.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace fedsz::core {
namespace {

StateDict model_dict() {
  nn::ModelConfig cfg;
  cfg.arch = "alexnet";
  cfg.scale = nn::ModelScale::kTiny;
  return nn::build_model(cfg).model.state_dict();
}

// ---- Top-K ----

TEST(TopK, RoundTripPreservesStructure) {
  const StateDict dict = model_dict();
  const auto codec = make_topk_codec({0.1, 1000});
  const auto encoded = codec->encode(dict);
  const StateDict back =
      codec->decode({encoded.payload.data(), encoded.payload.size()});
  ASSERT_EQ(back.size(), dict.size());
  for (const auto& [name, tensor] : dict)
    EXPECT_TRUE(back.get(name).same_shape(tensor)) << name;
}

TEST(TopK, KeepsLargestMagnitudesZeroesRest) {
  StateDict dict;
  std::vector<float> values(2000);
  for (std::size_t i = 0; i < values.size(); ++i)
    values[i] = static_cast<float>(i) - 1000.0f;  // |.| largest at both ends
  dict.set("layer.weight", Tensor::from_data({2000}, values));
  const auto codec = make_topk_codec({0.01, 1000});  // keep 20 entries
  const auto encoded = codec->encode(dict);
  const StateDict back =
      codec->decode({encoded.payload.data(), encoded.payload.size()});
  const Tensor& tensor = back.get("layer.weight");
  std::size_t nonzero = 0;
  for (std::size_t i = 0; i < tensor.numel(); ++i)
    if (tensor[i] != 0.0f) {
      ++nonzero;
      EXPECT_GE(std::fabs(tensor[i]), 989.0f);  // only extreme entries kept
      EXPECT_EQ(tensor[i], values[i]);          // kept values exact
    }
  EXPECT_EQ(nonzero, 20u);
}

TEST(TopK, SubThresholdTensorsAreExact) {
  const StateDict dict = model_dict();
  const auto codec = make_topk_codec({0.05, 1000});
  const auto encoded = codec->encode(dict);
  const StateDict back =
      codec->decode({encoded.payload.data(), encoded.payload.size()});
  for (const auto& [name, tensor] : dict) {
    if (!is_lossy_entry(name, tensor.numel(), 1000)) {
      EXPECT_TRUE(back.get(name).equals(tensor)) << name;
    }
  }
}

TEST(TopK, SmallerKeepFractionShrinksPayload) {
  const StateDict dict = model_dict();
  const auto big = make_topk_codec({0.5, 1000})->encode(dict);
  const auto small = make_topk_codec({0.05, 1000})->encode(dict);
  EXPECT_LT(small.payload.size(), big.payload.size());
  EXPECT_LT(small.payload.size(), small.stats.original_bytes / 2);
}

TEST(TopK, InvalidConfigThrows) {
  EXPECT_THROW(TopKCodec({0.0, 1000}), InvalidArgument);
  EXPECT_THROW(TopKCodec({1.5, 1000}), InvalidArgument);
}

TEST(TopK, CorruptPayloadThrows) {
  const StateDict dict = model_dict();
  const auto codec = make_topk_codec({0.1, 1000});
  auto encoded = codec->encode(dict);
  encoded.payload[0] = 'X';
  EXPECT_THROW(codec->decode({encoded.payload.data(),
                              encoded.payload.size()}),
               CorruptStream);
}

// ---- QSGD ----

TEST(Qsgd, RoundTripBoundedByStep) {
  const StateDict dict = model_dict();
  const QsgdConfig config{256, 1000, 7};
  const auto codec = make_qsgd_codec(config);
  const auto encoded = codec->encode(dict);
  const StateDict back =
      codec->decode({encoded.payload.data(), encoded.payload.size()});
  for (const auto& [name, tensor] : dict) {
    if (!is_lossy_entry(name, tensor.numel(), 1000)) continue;
    float max_abs = 0.0f;
    for (std::size_t i = 0; i < tensor.numel(); ++i)
      max_abs = std::max(max_abs, std::fabs(tensor[i]));
    const double step = max_abs / 256.0;
    const double err =
        stats::max_abs_error(tensor.span(), back.get(name).span());
    EXPECT_LE(err, step * (1 + 1e-5)) << name;
  }
}

TEST(Qsgd, StochasticRoundingIsUnbiasedOnAverage) {
  StateDict dict;
  dict.set("w.weight", Tensor::full({4096}, 0.31f));
  double sum = 0.0;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const auto codec = make_qsgd_codec({16, 1000, seed});
    const auto encoded = codec->encode(dict);
    const StateDict back =
        codec->decode({encoded.payload.data(), encoded.payload.size()});
    const Tensor& tensor = back.get("w.weight");
    for (std::size_t i = 0; i < tensor.numel(); ++i) sum += tensor[i];
  }
  const double mean = sum / (8.0 * 4096.0);
  EXPECT_NEAR(mean, 0.31, 0.005);
}

TEST(Qsgd, FewerLevelsSmallerPayload) {
  const StateDict dict = model_dict();
  const auto coarse = make_qsgd_codec({4, 1000, 1})->encode(dict);
  const auto fine = make_qsgd_codec({4096, 1000, 1})->encode(dict);
  EXPECT_LT(coarse.payload.size(), fine.payload.size());
  EXPECT_LT(coarse.payload.size(), coarse.stats.original_bytes / 2);
}

TEST(Qsgd, InvalidLevelsThrow) {
  EXPECT_THROW(QsgdCodec({1, 1000, 0}), InvalidArgument);
  EXPECT_THROW(QsgdCodec({70000, 1000, 0}), InvalidArgument);
}

TEST(Qsgd, SubThresholdTensorsAreExact) {
  const StateDict dict = model_dict();
  const auto codec = make_qsgd_codec({64, 1000, 3});
  const auto encoded = codec->encode(dict);
  const StateDict back =
      codec->decode({encoded.payload.data(), encoded.payload.size()});
  for (const auto& [name, tensor] : dict) {
    if (!is_lossy_entry(name, tensor.numel(), 1000)) {
      EXPECT_TRUE(back.get(name).equals(tensor)) << name;
    }
  }
}

// ---- composition (the Section III-C "last step" claim) ----

TEST(Composition, TopKThenFedSzShrinksFurther) {
  const StateDict dict = model_dict();
  const auto topk = make_topk_codec({0.2, 1000});
  const auto composed =
      make_composed_codec(make_topk_codec({0.2, 1000}), make_fedsz_codec());
  const auto alone = topk->encode(dict);
  const auto stacked = composed->encode(dict);
  // Sparsified tensors are mostly zeros; the FedSZ pass compresses them
  // dramatically better than shipping index/value pairs raw.
  EXPECT_LT(stacked.payload.size(), alone.payload.size());
  const StateDict back = composed->decode(
      {stacked.payload.data(), stacked.payload.size()});
  EXPECT_EQ(back.size(), dict.size());
}

TEST(Composition, NamesConcatenate) {
  const auto composed =
      make_composed_codec(make_qsgd_codec(), make_fedsz_codec());
  EXPECT_EQ(composed->name(), "qsgd+fedsz-sz2");
}

TEST(Composition, QsgdThenFedSzRoundTrips) {
  const StateDict dict = model_dict();
  const auto composed =
      make_composed_codec(make_qsgd_codec({64, 1000, 5}),
                          make_fedsz_codec());
  const auto encoded = composed->encode(dict);
  const StateDict back =
      composed->decode({encoded.payload.data(), encoded.payload.size()});
  for (const auto& [name, tensor] : dict)
    EXPECT_TRUE(back.get(name).same_shape(tensor));
}

TEST(Composition, NullStageThrows) {
  EXPECT_THROW(ComposedCodec(nullptr, make_fedsz_codec()), InvalidArgument);
  EXPECT_THROW(ComposedCodec(make_fedsz_codec(), nullptr), InvalidArgument);
}

}  // namespace
}  // namespace fedsz::core

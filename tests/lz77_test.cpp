// Tests for the shared LZ77 match finder and the byte-shuffle transform.
#include <gtest/gtest.h>

#include <cstring>

#include "compress/lossless/lz77.hpp"
#include "util/rng.hpp"

namespace fedsz::lossless {
namespace {

Bytes ascii(const std::string& s) {
  return Bytes(s.begin(), s.end());
}

Bytes roundtrip(ByteSpan data, const LzParams& params) {
  const auto seqs = lz77_parse(data, params);
  return lz77_reconstruct(data, seqs, data.size());
}

TEST(Lz77, EmptyInputProducesNoSequences) {
  EXPECT_TRUE(lz77_parse({}, LzParams{}).empty());
}

TEST(Lz77, AllLiteralInputRoundTrips) {
  const Bytes data = ascii("abcdefgh");
  const auto seqs = lz77_parse({data.data(), data.size()}, LzParams{});
  ASSERT_EQ(seqs.size(), 1u);
  EXPECT_EQ(seqs[0].match_len, 0u);
  EXPECT_EQ(seqs[0].literal_len, data.size());
  EXPECT_EQ(roundtrip({data.data(), data.size()}, LzParams{}), data);
}

TEST(Lz77, RepeatedPatternFindsMatches) {
  Bytes data;
  for (int i = 0; i < 50; ++i) {
    const Bytes chunk = ascii("pattern!");
    data.insert(data.end(), chunk.begin(), chunk.end());
  }
  const auto seqs = lz77_parse({data.data(), data.size()}, LzParams{});
  EXPECT_LT(seqs.size(), 6u);  // nearly everything collapses to matches
  EXPECT_EQ(roundtrip({data.data(), data.size()}, LzParams{}), data);
}

TEST(Lz77, OverlappingMatchRunLengthEncoding) {
  const Bytes data(500, 0x55);  // RLE degenerates to offset-1 matches
  const auto seqs = lz77_parse({data.data(), data.size()}, LzParams{});
  ASSERT_GE(seqs.size(), 1u);
  EXPECT_EQ(seqs[0].match_offset, 1u);
  EXPECT_EQ(roundtrip({data.data(), data.size()}, LzParams{}), data);
}

TEST(Lz77, RandomDataRoundTrips) {
  Rng rng(3);
  Bytes data(20000);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.uniform_index(256));
  EXPECT_EQ(roundtrip({data.data(), data.size()}, LzParams{}), data);
}

TEST(Lz77, TextLikeDataRoundTripsWithLazyMatching) {
  Rng rng(5);
  Bytes data;
  const char* words[] = {"federated", "learning", "compression", "error",
                         "bounded", "lossy", "the", "of"};
  for (int i = 0; i < 2000; ++i) {
    const char* word = words[rng.uniform_index(8)];
    data.insert(data.end(), word, word + std::strlen(word));
    data.push_back(' ');
  }
  LzParams lazy;
  lazy.lazy = true;
  lazy.max_chain = 64;
  EXPECT_EQ(roundtrip({data.data(), data.size()}, lazy), data);
  // Lazy matching should not produce more sequences than greedy.
  LzParams greedy = lazy;
  greedy.lazy = false;
  EXPECT_LE(lz77_parse({data.data(), data.size()}, lazy).size(),
            lz77_parse({data.data(), data.size()}, greedy).size() + 50);
}

TEST(Lz77, MinMatchThreeSupported) {
  LzParams params;
  params.min_match = 3;
  Bytes data = ascii("abcXabcYabcZ");
  const auto seqs = lz77_parse({data.data(), data.size()}, params);
  EXPECT_EQ(roundtrip({data.data(), data.size()}, params), data);
  bool found_match = false;
  for (const auto& s : seqs)
    if (s.match_len >= 3) found_match = true;
  EXPECT_TRUE(found_match);
}

TEST(Lz77, MinMatchBelowThreeThrows) {
  LzParams params;
  params.min_match = 2;
  const Bytes data = ascii("xx");
  EXPECT_THROW(lz77_parse({data.data(), data.size()}, params),
               InvalidArgument);
}

TEST(Lz77, WindowLimitRespected) {
  LzParams params;
  params.window_log = 8;  // 256-byte window
  Rng rng(7);
  Bytes data(4096);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.uniform_index(4));
  const auto seqs = lz77_parse({data.data(), data.size()}, params);
  for (const auto& s : seqs)
    EXPECT_LE(s.match_offset, (1u << 8) + 0u);
  EXPECT_EQ(roundtrip({data.data(), data.size()}, params), data);
}

TEST(Lz77, MaxMatchCapRespected) {
  LzParams params;
  params.max_match = 64;
  const Bytes data(1000, 0xAA);
  const auto seqs = lz77_parse({data.data(), data.size()}, params);
  for (const auto& s : seqs) EXPECT_LE(s.match_len, 64u);
  EXPECT_EQ(roundtrip({data.data(), data.size()}, params), data);
}

TEST(Lz77, ReconstructValidatesBounds) {
  const Bytes data = ascii("abc");
  std::vector<LzSequence> bad{{0, 3, 5, 10}};  // offset 10 > output size
  EXPECT_THROW(lz77_reconstruct({data.data(), data.size()}, bad, 8),
               CorruptStream);
}

TEST(Shuffle, RoundTrip) {
  Rng rng(9);
  Bytes data(4000);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.uniform_index(256));
  const Bytes shuffled = shuffle_bytes({data.data(), data.size()}, 4);
  EXPECT_NE(shuffled, data);
  EXPECT_EQ(unshuffle_bytes({shuffled.data(), shuffled.size()}, 4), data);
}

TEST(Shuffle, GroupsBytesByPosition) {
  const Bytes data{0x01, 0x02, 0x03, 0x04, 0x11, 0x12, 0x13, 0x14};
  const Bytes shuffled = shuffle_bytes({data.data(), data.size()}, 4);
  const Bytes expected{0x01, 0x11, 0x02, 0x12, 0x03, 0x13, 0x04, 0x14};
  EXPECT_EQ(shuffled, expected);
}

TEST(Shuffle, RejectsNonDivisibleSize) {
  const Bytes data(7, 0);
  EXPECT_THROW(shuffle_bytes({data.data(), data.size()}, 4), InvalidArgument);
  EXPECT_THROW(unshuffle_bytes({data.data(), data.size()}, 4),
               InvalidArgument);
}

TEST(Shuffle, ImprovesFloatCompressibility) {
  // Similar floats share exponent/high-mantissa bytes; shuffling groups them.
  Rng rng(11);
  std::vector<float> values(4096);
  for (auto& v : values) v = 1.0f + static_cast<float>(rng.uniform()) * 0.01f;
  ByteSpan raw = as_bytes({values.data(), values.size()});
  const Bytes shuffled = shuffle_bytes(raw, 4);
  // Count zero-deltas as a cheap LZ-ability proxy.
  auto repeats = [](ByteSpan d) {
    std::size_t count = 0;
    for (std::size_t i = 1; i < d.size(); ++i)
      if (d[i] == d[i - 1]) ++count;
    return count;
  };
  EXPECT_GT(repeats({shuffled.data(), shuffled.size()}), repeats(raw) * 2);
}

}  // namespace
}  // namespace fedsz::lossless

// Cross-process federation: the distributed runtime must be BIT-IDENTICAL
// to the in-process coordinator on every virtual-clock-deterministic field
// — pinned here over the loopback transport (workers as threads), over
// real TCP with fedsz_edge_worker processes (when the build provides
// FEDSZ_BIN_DIR), and through churn (a worker that dies after the
// handshake gets its cohort dropped for the round and re-homed after).
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/codec_spec.hpp"
#include "core/fl/coordinator.hpp"
#include "core/fl/federation.hpp"
#include "data/synthetic.hpp"
#include "net/transport.hpp"
#include "util/bytebuffer.hpp"

namespace fedsz::core {
namespace {

constexpr std::size_t kClients = 4;
constexpr int kRounds = 2;
constexpr std::size_t kTake = kClients * 16;

const char* kSpec = "fedsz:eb=rel:1e-2,topology=hier:2";

nn::ModelConfig tiny_model() {
  nn::ModelConfig model;
  model.arch = "mobilenet_v2";
  model.scale = nn::ModelScale::kTiny;
  return model;
}

FlRunConfig base_config(const CodecSpec& spec) {
  FlRunConfig config;
  config.apply_comm_spec(spec);
  config.clients = kClients;
  config.rounds = kRounds;
  config.seed = 42;
  config.eval_limit = 64;
  config.threads = kClients;
  config.client.batch_size = 16;
  config.client.sgd.learning_rate = 0.05f;
  return config;
}

FlRunResult run_in_process(const char* spec_string = kSpec) {
  const CodecSpec spec = parse_codec_spec(spec_string);
  auto [train, test] = data::make_dataset("cifar10", 7);
  FlCoordinator coordinator(tiny_model(), data::take(train, kTake),
                            data::take(test, 256), base_config(spec),
                            make_codec(spec));
  return coordinator.run();
}

// Every field the virtual clock determines; wall-clock timings excluded.
void expect_rounds_identical(const RoundRecord& a, const RoundRecord& b) {
  EXPECT_EQ(a.round, b.round);
  EXPECT_EQ(a.accuracy, b.accuracy);
  EXPECT_EQ(a.bytes_sent, b.bytes_sent);
  EXPECT_EQ(a.raw_bytes, b.raw_bytes);
  EXPECT_EQ(a.participants, b.participants);
  EXPECT_EQ(a.eligible_clients, b.eligible_clients);
  EXPECT_EQ(a.ineligible_clients, b.ineligible_clients);
  EXPECT_EQ(a.virtual_seconds, b.virtual_seconds);
  EXPECT_EQ(a.comm_seconds, b.comm_seconds);
  EXPECT_EQ(a.aggregate_weight, b.aggregate_weight);
  EXPECT_EQ(a.backhaul_bytes, b.backhaul_bytes);
  EXPECT_EQ(a.backhaul_raw_bytes, b.backhaul_raw_bytes);
  EXPECT_EQ(a.mean_ef_residual_norm, b.mean_ef_residual_norm);
  EXPECT_EQ(a.mean_loss, b.mean_loss);
  ASSERT_EQ(a.clients.size(), b.clients.size());
  for (std::size_t k = 0; k < a.clients.size(); ++k) {
    const ClientTraceEntry& x = a.clients[k];
    const ClientTraceEntry& y = b.clients[k];
    EXPECT_EQ(x.client, y.client) << "trace " << k;
    EXPECT_EQ(x.arrival_seconds, y.arrival_seconds) << "trace " << k;
    EXPECT_EQ(x.payload_bytes, y.payload_bytes) << "trace " << k;
    EXPECT_EQ(x.weight, y.weight) << "trace " << k;
    EXPECT_EQ(x.status, y.status) << "trace " << k;
    EXPECT_EQ(x.device_class, y.device_class) << "trace " << k;
    EXPECT_EQ(x.eligible, y.eligible) << "trace " << k;
  }
  EXPECT_EQ(a.edges.size(), b.edges.size());
}

void expect_results_identical(const FlRunResult& a, const FlRunResult& b) {
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  for (std::size_t r = 0; r < a.rounds.size(); ++r)
    expect_rounds_identical(a.rounds[r], b.rounds[r]);
  EXPECT_EQ(a.final_accuracy, b.final_accuracy);
  EXPECT_EQ(a.total_virtual_seconds, b.total_virtual_seconds);
}

TEST(FederationTest, ManifestRoundtrip) {
  const CodecSpec spec = parse_codec_spec(kSpec);
  auto [train, test] = data::make_dataset("cifar10", 7);
  (void)train;
  FederatedRoot root(tiny_model(), DatasetSpec{"cifar10", 7, kTake},
                     data::take(test, 256), base_config(spec), spec);
  ASSERT_EQ(root.edge_count(), 2u);
  for (std::uint32_t e = 0; e < 2; ++e) {
    const RunManifest manifest = root.manifest(e);
    EXPECT_EQ(manifest.edge, e);
    EXPECT_EQ(manifest.edges, 2u);
    EXPECT_EQ(manifest.clients, kClients);
    EXPECT_EQ(manifest.dataset.take, kTake);
    EXPECT_NE(manifest.fingerprint, 0u);
    const Bytes blob = serialize_manifest(manifest);
    const RunManifest parsed = parse_manifest({blob.data(), blob.size()});
    EXPECT_EQ(parsed.codec_spec, manifest.codec_spec);
    EXPECT_EQ(parsed.seed, manifest.seed);
    EXPECT_EQ(parsed.shard_seed, manifest.shard_seed);
    EXPECT_EQ(parsed.edge, manifest.edge);
    EXPECT_EQ(parsed.fingerprint, manifest.fingerprint);
    EXPECT_EQ(serialize_manifest(parsed), blob);
  }
  // Corrupt manifests must throw, never construct a half-parsed run.
  Bytes blob = serialize_manifest(root.manifest(0));
  blob.resize(blob.size() / 2);
  EXPECT_THROW(parse_manifest({blob.data(), blob.size()}), CorruptStream);
}

TEST(FederationTest, CtorRejectsUnsupportedConfigs) {
  auto [train, test] = data::make_dataset("cifar10", 7);
  (void)train;
  const DatasetSpec dataset{"cifar10", 7, kTake};
  auto make_root = [&](const std::string& spec_string) {
    const CodecSpec spec = parse_codec_spec(spec_string);
    FederatedRoot root(tiny_model(), dataset, data::take(test, 256),
                       base_config(spec), spec);
  };
  // Flat topology: nothing to distribute.
  EXPECT_THROW(make_root("fedsz:eb=rel:1e-2"), InvalidArgument);
  // Multi-tier trees stay in process.
  EXPECT_THROW(make_root("fedsz:eb=rel:1e-2,topology=hier:2x2"),
               InvalidArgument);
  // Checkpointing is the in-process coordinator's job.
  EXPECT_THROW(
      make_root("fedsz:eb=rel:1e-2,topology=hier:2,checkpoint=/tmp/x.ck:1"),
      InvalidArgument);
  // A downlink spec needs the in-process broadcast machinery.
  EXPECT_THROW(
      make_root("fedsz:eb=rel:1e-2,topology=hier:2,downlink=fedsz:eb=rel:1e-2"),
      InvalidArgument);
}

TEST(FederationTest, LoopbackRunMatchesInProcess) {
  const FlRunResult reference = run_in_process();
  ASSERT_EQ(reference.rounds.size(), static_cast<std::size_t>(kRounds));

  const CodecSpec spec = parse_codec_spec(kSpec);
  auto [train, test] = data::make_dataset("cifar10", 7);
  (void)train;
  FederatedRoot root(tiny_model(), DatasetSpec{"cifar10", 7, kTake},
                     data::take(test, 256), base_config(spec), spec);
  std::vector<net::StreamPtr> root_ends;
  std::vector<std::thread> workers;
  for (std::size_t e = 0; e < root.edge_count(); ++e) {
    auto [root_end, worker_end] = net::make_loopback_pair();
    root_ends.push_back(std::move(root_end));
    workers.emplace_back(
        [stream = std::move(worker_end)]() mutable {
          run_edge_worker(std::move(stream));
        });
  }
  const FlRunResult distributed = root.run_with_streams(std::move(root_ends));
  for (std::thread& worker : workers) worker.join();
  expect_results_identical(distributed, reference);
}

// A client population must cross the wire bit-identically: the manifest's
// codec spec rebuilds the same device classes, links, and data weights on
// every worker, and the root replays the in-process availability draws in
// the same (edge, member) order.
TEST(FederationTest, PopulationLoopbackMatchesInProcess) {
  const char* pop_spec =
      "fedsz:eb=rel:1e-2,topology=hier:2,population=mixed:seed=9";
  const FlRunResult reference = run_in_process(pop_spec);
  ASSERT_EQ(reference.rounds.size(), static_cast<std::size_t>(kRounds));

  const CodecSpec spec = parse_codec_spec(pop_spec);
  auto [train, test] = data::make_dataset("cifar10", 7);
  (void)train;
  FederatedRoot root(tiny_model(), DatasetSpec{"cifar10", 7, kTake},
                     data::take(test, 256), base_config(spec), spec);
  std::vector<net::StreamPtr> root_ends;
  std::vector<std::thread> workers;
  for (std::size_t e = 0; e < root.edge_count(); ++e) {
    auto [root_end, worker_end] = net::make_loopback_pair();
    root_ends.push_back(std::move(root_end));
    workers.emplace_back(
        [stream = std::move(worker_end)]() mutable {
          run_edge_worker(std::move(stream));
        });
  }
  const FlRunResult distributed = root.run_with_streams(std::move(root_ends));
  for (std::thread& worker : workers) worker.join();
  expect_results_identical(distributed, reference);
  for (const RoundRecord& r : distributed.rounds)
    EXPECT_EQ(r.eligible_clients + r.ineligible_clients, kClients);
}

// Population mid-round dropout rides the in-process dropout machinery and
// stays there.
TEST(FederationTest, CtorRejectsPopulationDropout) {
  auto [train, test] = data::make_dataset("cifar10", 7);
  (void)train;
  const CodecSpec spec = parse_codec_spec(
      "fedsz:eb=rel:1e-2,topology=hier:2,population=mixed:drop=0.2");
  EXPECT_THROW(FederatedRoot(tiny_model(), DatasetSpec{"cifar10", 7, kTake},
                             data::take(test, 256), base_config(spec), spec),
               InvalidArgument);
}

// A worker that completes the handshake and then dies: its round-0 cohort
// is traced as dropped, and from round 1 its members are re-homed onto the
// survivor — the campaign finishes with full participation.
TEST(FederationTest, CrashedWorkerIsRehomed) {
  const CodecSpec spec = parse_codec_spec(kSpec);
  auto [train, test] = data::make_dataset("cifar10", 7);
  (void)train;
  FlRunConfig config = base_config(spec);
  FederationOptions options;
  // The deserter's close() surfaces as an EOF event immediately, so crash
  // detection never waits on this; keep the timeout generous enough that a
  // loaded CI box cannot starve the SURVIVOR's heartbeat thread into a
  // false positive.
  options.heartbeat_timeout_seconds = 15.0;
  FederatedRoot root(tiny_model(), DatasetSpec{"cifar10", 7, kTake},
                     data::take(test, 256), config, spec, nullptr, options);
  ASSERT_EQ(root.edge_count(), 2u);

  auto [root0, worker0] = net::make_loopback_pair();
  auto [root1, worker1] = net::make_loopback_pair();
  std::thread survivor([stream = std::move(worker0)]() mutable {
    run_edge_worker(std::move(stream));
  });
  std::thread deserter([stream = std::move(worker1)]() mutable {
    net::FrameChannel chan(std::move(stream));
    const auto hello = chan.recv();
    ASSERT_TRUE(hello.has_value());
    ASSERT_EQ(hello->type, net::FrameType::kHello);
    const RunManifest manifest =
        parse_manifest({hello->payload.data(), hello->payload.size()});
    ByteWriter ack;
    ack.put_u32(manifest.fingerprint);
    ack.put_varint(manifest.edge);
    const Bytes bytes = ack.finish();
    chan.send(net::FrameType::kAck, {bytes.data(), bytes.size()});
    chan.close();  // dies right after the handshake
  });

  std::vector<net::StreamPtr> streams;
  streams.push_back(std::move(root0));
  streams.push_back(std::move(root1));
  const FlRunResult result = root.run_with_streams(std::move(streams));
  survivor.join();
  deserter.join();

  ASSERT_EQ(result.rounds.size(), static_cast<std::size_t>(kRounds));
  // Round 0: only the survivor's cohort aggregates; the dead edge's two
  // members appear as dropped trace entries.
  EXPECT_EQ(result.rounds[0].participants, 2u);
  std::size_t dropped = 0;
  for (const ClientTraceEntry& t : result.rounds[0].clients)
    if (t.status == DeliveryStatus::kDropped) ++dropped;
  EXPECT_EQ(dropped, 2u);
  // Round 1: the crash is recorded and everyone trains again.
  ASSERT_EQ(result.rounds[1].crashed_nodes.size(), 1u);
  EXPECT_EQ(result.rounds[1].participants, kClients);
}

#ifdef FEDSZ_BIN_DIR

TEST(FederationTest, TcpWorkersMatchInProcess) {
  const std::filesystem::path worker_binary =
      std::filesystem::path(FEDSZ_BIN_DIR) / "fedsz_edge_worker";
  if (!std::filesystem::exists(worker_binary))
    GTEST_SKIP() << "fedsz_edge_worker not built at " << worker_binary;

  const FlRunResult reference = run_in_process();

  const CodecSpec spec = parse_codec_spec(kSpec);
  auto [train, test] = data::make_dataset("cifar10", 7);
  (void)train;
  FlRunConfig config = base_config(spec);
  config.transport = "tcp:0";
  FederatedRoot root(tiny_model(), DatasetSpec{"cifar10", 7, kTake},
                     data::take(test, 256), config, spec);
  const std::string endpoint = "127.0.0.1:" + std::to_string(root.port());
  std::vector<pid_t> workers;
  for (std::size_t e = 0; e < root.edge_count(); ++e) {
    const pid_t pid = ::fork();
    if (pid == 0) {
      ::execl(worker_binary.c_str(), worker_binary.c_str(), "--connect",
              endpoint.c_str(), static_cast<char*>(nullptr));
      ::_exit(127);
    }
    workers.push_back(pid);
  }
  const FlRunResult distributed = root.run();
  for (const pid_t pid : workers) {
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
        << "worker exited abnormally";
  }
  expect_results_identical(distributed, reference);
}

#endif  // FEDSZ_BIN_DIR

}  // namespace
}  // namespace fedsz::core

// Unit tests for the adaptive sparse-quantization codec: the bound-on-
// survivors guarantee across thresholding modes and bit-width caps, the
// zeros-for-dropped contract, both mask encodings, the verbatim fallback,
// parameter validation, and a corrupt-stream battery (targeted field
// mutations plus a single-byte fuzz sweep) over the self-contained payload.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>

#include "compress/sparse/sparse_codec.hpp"
#include "util/bytebuffer.hpp"
#include "util/rng.hpp"

namespace fedsz::sparse {
namespace {

const lossless::LosslessCodec& backend() {
  return lossless::lossless_codec(lossless::LosslessId::kZstd);
}

std::vector<float> laplace_weights(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.laplace(0.0, 0.05));
  return v;
}

/// Every survivor within eps (plus a float-rounding hair), every dropped
/// element exactly zero, and the kept tally consistent with the decode.
void check_contract(const std::vector<float>& original,
                    const std::vector<float>& decoded, double eps,
                    std::size_t kept) {
  ASSERT_EQ(decoded.size(), original.size());
  // eps exactly, plus the float rounding of the reconstructed value (a
  // half-step tie can land exactly on eps in double, then round up when
  // narrowed to float).
  const double tol = eps * (1.0 + 1e-6) + 1e-6;
  std::size_t nonzero = 0;
  for (std::size_t i = 0; i < decoded.size(); ++i) {
    if (decoded[i] == 0.0f) continue;
    ++nonzero;
    EXPECT_LE(std::fabs(static_cast<double>(decoded[i]) -
                        static_cast<double>(original[i])),
              tol)
        << "survivor " << i;
  }
  // Survivors that happen to quantize to 0.0f are indistinguishable from
  // dropped elements in the decode, so nonzero <= kept.
  EXPECT_LE(nonzero, kept);
}

TEST(SparseCodec, AdaptiveThresholdRoundtrip) {
  const auto values = laplace_weights(4096, 11);
  const double eps = 1e-3;
  Bytes blob;
  const SparseEncodeInfo info = sparse_codec().compress_into(
      {values.data(), values.size()}, eps, {}, backend(), blob);
  EXPECT_GT(info.kept, 0u);
  EXPECT_LT(info.kept, values.size());
  const auto decoded = sparse_codec().decompress({blob.data(), blob.size()});
  check_contract(values, decoded, eps, info.kept);
  // Every dropped element must be exactly zero.
  for (std::size_t i = 0; i < decoded.size(); ++i) {
    if (decoded[i] != 0.0f) {
      EXPECT_NE(values[i], 0.0f);
    }
  }
}

TEST(SparseCodec, ExplicitSparsityKeepsTopK) {
  const auto values = laplace_weights(1000, 23);
  const double eps = 1e-3;
  Bytes blob;
  const SparseEncodeInfo info = sparse_codec().compress_into(
      {values.data(), values.size()}, eps, {0.9, 0}, backend(), blob);
  EXPECT_EQ(info.kept, 100u);  // (1 - 0.9) * 1000
  const auto decoded = sparse_codec().decompress({blob.data(), blob.size()});
  check_contract(values, decoded, eps, info.kept);
  // The survivors are the top-k by magnitude: min surviving magnitude >=
  // max dropped magnitude.
  float min_kept = std::numeric_limits<float>::max();
  float max_dropped = 0.0f;
  for (std::size_t i = 0; i < decoded.size(); ++i) {
    const float mag = std::fabs(values[i]);
    if (decoded[i] != 0.0f)
      min_kept = std::min(min_kept, mag);
    else
      max_dropped = std::max(max_dropped, mag);
  }
  EXPECT_GE(min_kept + static_cast<float>(eps), max_dropped);
}

TEST(SparseCodec, BitsCapNeverLoosensBound) {
  const auto values = laplace_weights(2048, 31);
  const double eps = 1e-2;
  for (const unsigned bits : {1u, 2u, 4u, 8u, 16u}) {
    Bytes blob;
    const SparseEncodeInfo info = sparse_codec().compress_into(
        {values.data(), values.size()}, eps, {0.5, bits}, backend(), blob);
    const auto decoded = sparse_codec().decompress({blob.data(), blob.size()});
    check_contract(values, decoded, eps, info.kept);
  }
}

TEST(SparseCodec, ExplicitBitsRefinePrecisionNotLoosenIt) {
  // bits= is a precision floor: it can force a finer step than the bound
  // needs (bigger payload, tighter error) but never a coarser one. At a
  // loose bound the adaptive width is narrow, so bits=16 must cost more.
  const auto values = laplace_weights(1 << 14, 37);
  Bytes wide, adaptive;
  sparse_codec().compress_into({values.data(), values.size()}, 1e-2,
                               {0.5, 16}, backend(), wide);
  sparse_codec().compress_into({values.data(), values.size()}, 1e-2, {0.5, 0},
                               backend(), adaptive);
  EXPECT_GT(wide.size(), adaptive.size());
  check_contract(values,
                 sparse_codec().decompress({wide.data(), wide.size()}), 1e-2,
                 values.size());
}

TEST(SparseCodec, AdaptiveOnConstantTensorKeepsNothing) {
  // tau = mean + stddev = |c| + 0; no magnitude is strictly greater.
  const std::vector<float> values(256, 0.75f);
  Bytes blob;
  const SparseEncodeInfo info = sparse_codec().compress_into(
      {values.data(), values.size()}, 1e-3, {}, backend(), blob);
  EXPECT_EQ(info.kept, 0u);
  const auto decoded = sparse_codec().decompress({blob.data(), blob.size()});
  for (const float v : decoded) EXPECT_EQ(v, 0.0f);
}

TEST(SparseCodec, ExplicitSparsityOnConstantTensorIsExact) {
  // All survivors equal -> range 0 -> every code 0 -> shared-value tag.
  const std::vector<float> values(256, -1.25f);
  Bytes blob;
  const SparseEncodeInfo info = sparse_codec().compress_into(
      {values.data(), values.size()}, 1e-3, {0.75, 0}, backend(), blob);
  EXPECT_EQ(info.kept, 64u);
  const auto decoded = sparse_codec().decompress({blob.data(), blob.size()});
  std::size_t survivors = 0;
  for (const float v : decoded) {
    if (v == 0.0f) continue;
    ++survivors;
    EXPECT_EQ(v, -1.25f);
  }
  EXPECT_EQ(survivors, 64u);
}

TEST(SparseCodec, VerbatimFallbackIsExact) {
  // eps so tight the code space would exceed 2^31: survivors stored as
  // verbatim f32, decode is bit-exact.
  const auto values = laplace_weights(512, 41);
  Bytes blob;
  const SparseEncodeInfo info = sparse_codec().compress_into(
      {values.data(), values.size()}, 1e-13, {0.5, 0}, backend(), blob);
  const auto decoded = sparse_codec().decompress({blob.data(), blob.size()});
  std::size_t survivors = 0;
  for (std::size_t i = 0; i < decoded.size(); ++i) {
    if (decoded[i] == 0.0f) continue;
    ++survivors;
    EXPECT_EQ(decoded[i], values[i]);
  }
  EXPECT_LE(survivors, info.kept);
}

TEST(SparseCodec, EmptyTensorRoundtrip) {
  Bytes blob;
  const SparseEncodeInfo info =
      sparse_codec().compress_into({}, 1e-3, {}, backend(), blob);
  EXPECT_EQ(info.kept, 0u);
  EXPECT_TRUE(sparse_codec().decompress({blob.data(), blob.size()}).empty());
}

TEST(SparseCodec, MaskEncodingTracksSurvivorDensity) {
  // Very sparse large tensor -> delta-varint indices beat the bitmap;
  // dense survivors -> bitmap. The mask tag is the byte right after the
  // numel varint (3 bytes for 1 << 16), eps f64 and kept varint.
  const auto values = laplace_weights(1 << 16, 43);
  Bytes sparse_blob, dense_blob;
  sparse_codec().compress_into({values.data(), values.size()}, 1e-3,
                               {0.999, 0}, backend(), sparse_blob);
  sparse_codec().compress_into({values.data(), values.size()}, 1e-3,
                               {0.25, 0}, backend(), dense_blob);
  auto mask_tag = [](const Bytes& blob) {
    ByteReader r({blob.data(), blob.size()});
    (void)r.get_varint();
    (void)r.get_f64();
    (void)r.get_varint();
    return r.get_u8();
  };
  EXPECT_EQ(mask_tag(sparse_blob), 1);  // delta-varint indices
  EXPECT_EQ(mask_tag(dense_blob), 0);   // bitmap
  check_contract(values,
                 sparse_codec().decompress(
                     {sparse_blob.data(), sparse_blob.size()}),
                 1e-3, values.size());
  check_contract(values,
                 sparse_codec().decompress(
                     {dense_blob.data(), dense_blob.size()}),
                 1e-3, values.size());
}

TEST(SparseCodec, SurvivorsRouteThroughDeclaredBackend) {
  const auto values = laplace_weights(4096, 47);
  for (const lossless::LosslessCodec* codec :
       lossless::all_lossless_codecs()) {
    Bytes blob;
    const SparseEncodeInfo info = sparse_codec().compress_into(
        {values.data(), values.size()}, 1e-3, {0.9, 8}, *codec, blob);
    const auto decoded = sparse_codec().decompress({blob.data(), blob.size()});
    check_contract(values, decoded, 1e-3, info.kept);
  }
}

TEST(SparseCodec, ParamValidation) {
  EXPECT_THROW((SparseParams{-0.1, 0}.validate()), InvalidArgument);
  EXPECT_THROW((SparseParams{1.0, 0}.validate()), InvalidArgument);
  EXPECT_THROW((SparseParams{std::nan(""), 0}.validate()), InvalidArgument);
  EXPECT_THROW((SparseParams{0.5, 32}.validate()), InvalidArgument);
  EXPECT_NO_THROW((SparseParams{0.5, 31}.validate()));
  EXPECT_NO_THROW(SparseParams{}.validate());
}

TEST(SparseCodec, EncodeInputValidation) {
  std::vector<float> values = {1.0f, 2.0f, 3.0f};
  Bytes blob;
  EXPECT_THROW(sparse_codec().compress_into({values.data(), values.size()},
                                            0.0, {}, backend(), blob),
               InvalidArgument);
  EXPECT_THROW(sparse_codec().compress_into({values.data(), values.size()},
                                            -1.0, {}, backend(), blob),
               InvalidArgument);
  values[1] = std::numeric_limits<float>::quiet_NaN();
  EXPECT_THROW(sparse_codec().compress_into({values.data(), values.size()},
                                            1e-3, {}, backend(), blob),
               InvalidArgument);
}

// ---- corrupt streams ----
//
// Fixed 4-element tensor with sparsity 0.5: kept = 2 (indices 1 and 2),
// single-byte varints throughout, so the frame layout is byte-addressable:
//   [0] numel  [1..8] eps  [9] kept  [10] mask_tag  [11] bits
//   [12..15] lo  [16..23] step  [24] bitmap  [25] lossless id  [26..] blob
Bytes corrupt_fixture() {
  const std::vector<float> values = {1.0f, -2.0f, 3.0f, 0.5f};
  Bytes blob;
  sparse_codec().compress_into({values.data(), values.size()}, 0.25,
                               {0.5, 0}, backend(), blob);
  return blob;
}

TEST(SparseCodecCorrupt, FixtureLayoutIsAsDocumented) {
  const Bytes blob = corrupt_fixture();
  ASSERT_GT(blob.size(), 26u);
  EXPECT_EQ(blob[0], 4);   // numel
  EXPECT_EQ(blob[9], 2);   // kept
  EXPECT_EQ(blob[10], 0);  // bitmap mask
  EXPECT_EQ(blob[24], 0b110);
}

TEST(SparseCodecCorrupt, TargetedFieldMutationsAreRejected) {
  const Bytes valid = corrupt_fixture();
  ASSERT_NO_THROW(sparse_codec().decompress({valid.data(), valid.size()}));

  auto expect_reject = [&](Bytes blob, const char* what) {
    EXPECT_THROW((void)sparse_codec().decompress({blob.data(), blob.size()}),
                 CorruptStream)
        << what;
  };

  {
    Bytes blob = valid;
    const double bad_eps = -1.0;
    std::memcpy(blob.data() + 1, &bad_eps, sizeof(bad_eps));
    expect_reject(std::move(blob), "negative eps");
  }
  {
    Bytes blob = valid;
    blob[9] = 5;  // kept > numel
    expect_reject(std::move(blob), "kept > numel");
  }
  {
    Bytes blob = valid;
    blob[10] = 2;
    expect_reject(std::move(blob), "unknown mask tag");
  }
  {
    Bytes blob = valid;
    blob[11] = 33;
    expect_reject(std::move(blob), "bit width > 32");
  }
  {
    Bytes blob = valid;
    blob[24] = 0b0001;  // popcount 1, declared kept 2
    expect_reject(std::move(blob), "mask population mismatch");
  }
  {
    Bytes blob = valid;
    blob[25] = 0xEE;
    expect_reject(std::move(blob), "unknown lossless id");
  }
  {
    Bytes blob = valid;
    blob.push_back(0);
    expect_reject(std::move(blob), "trailing bytes");
  }
  {
    Bytes blob = valid;
    blob.resize(blob.size() / 2);
    expect_reject(std::move(blob), "truncated payload");
  }
}

TEST(SparseCodecCorrupt, ImplausibleElementCountIsRejectedBeforeAllocating) {
  // Declares 2^40 elements in a handful of bytes: the bomb guard must fire
  // before the zero-fill allocation.
  ByteWriter w;
  w.put_varint(std::uint64_t{1} << 40);
  w.put_f64(0.5);
  w.put_varint(0);  // kept
  w.put_u8(0);      // bitmap
  w.put_u8(0);      // bits
  const Bytes blob = w.finish();
  EXPECT_THROW((void)sparse_codec().decompress({blob.data(), blob.size()}),
               CorruptStream);
}

TEST(SparseCodecCorrupt, NonIncreasingIndexIsRejected) {
  // Handcraft an index-mask frame with a zero delta after the first index.
  ByteWriter w;
  w.put_varint(8);    // numel
  w.put_f64(0.5);     // eps
  w.put_varint(2);    // kept
  w.put_u8(1);        // index mask
  w.put_u8(0);        // bits: shared value
  w.put_f32(1.0f);    // lo
  w.put_f64(1.0);     // step
  w.put_varint(3);    // first index
  w.put_varint(0);    // zero delta -> non-increasing
  w.put_u8(static_cast<std::uint8_t>(lossless::LosslessId::kZstd));
  w.put_varint(0);    // packed_len
  const Bytes empty_stream = backend().compress({});
  w.put_blob({empty_stream.data(), empty_stream.size()});
  const Bytes blob = w.finish();
  EXPECT_THROW((void)sparse_codec().decompress({blob.data(), blob.size()}),
               CorruptStream);
}

TEST(SparseCodecCorrupt, SingleByteFuzzNeverCrashes) {
  // Every single-byte overwrite must either decode cleanly or throw
  // CorruptStream — never crash, hang, or over-allocate.
  const Bytes valid = corrupt_fixture();
  for (std::size_t pos = 0; pos < valid.size(); ++pos) {
    for (const std::uint8_t byte : {0x00, 0x01, 0x7F, 0x80, 0xFF}) {
      Bytes blob = valid;
      if (blob[pos] == byte) continue;
      blob[pos] = byte;
      try {
        (void)sparse_codec().decompress({blob.data(), blob.size()});
      } catch (const CorruptStream&) {
      }
    }
  }
}

}  // namespace
}  // namespace fedsz::sparse

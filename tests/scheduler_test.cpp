// Tests for the federation runtime's participation policies: sync barrier,
// seeded client sampling, and FedBuff-style buffered async.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "core/fl/scheduler.hpp"
#include "util/common.hpp"

namespace fedsz::core {
namespace {

TEST(SyncSchedulerTest, DispatchesEveryoneAndBarriersOnAll) {
  auto scheduler = make_sync_scheduler();
  EXPECT_EQ(scheduler->name(), "sync");
  EXPECT_FALSE(scheduler->continuous());
  Rng rng(1);
  const auto cohort = scheduler->cohort(0, 5, rng);
  ASSERT_EQ(cohort.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(cohort[i], i);
  EXPECT_EQ(scheduler->aggregation_goal(5), 5u);
  EXPECT_DOUBLE_EQ(scheduler->staleness_scale(0, 3), 1.0);
}

TEST(SampledSyncSchedulerTest, SamplesDistinctSortedFraction) {
  auto scheduler = make_sampled_sync_scheduler(0.25);
  EXPECT_EQ(scheduler->name(), "sampled_sync");
  EXPECT_FALSE(scheduler->continuous());
  Rng rng(42);
  const auto cohort = scheduler->cohort(0, 64, rng);
  ASSERT_EQ(cohort.size(), 16u);  // ceil(0.25 * 64)
  EXPECT_TRUE(std::is_sorted(cohort.begin(), cohort.end()));
  const std::set<std::size_t> unique(cohort.begin(), cohort.end());
  EXPECT_EQ(unique.size(), cohort.size());
  for (const std::size_t i : cohort) EXPECT_LT(i, 64u);
  EXPECT_EQ(scheduler->aggregation_goal(cohort.size()), cohort.size());
}

TEST(SampledSyncSchedulerTest, SamplingIsSeededAndVaries) {
  auto scheduler = make_sampled_sync_scheduler(0.5);
  Rng a(7), b(7);
  EXPECT_EQ(scheduler->cohort(0, 32, a), scheduler->cohort(0, 32, b));
  // Successive rounds from the same stream draw different cohorts (with
  // overwhelming probability for 16-of-32).
  Rng d(7);
  const auto first = scheduler->cohort(0, 32, d);
  const auto second = scheduler->cohort(1, 32, d);
  EXPECT_NE(first, second);
}

TEST(SampledSyncSchedulerTest, AlwaysAtLeastOneClient) {
  auto scheduler = make_sampled_sync_scheduler(0.01);
  Rng rng(3);
  EXPECT_EQ(scheduler->cohort(0, 4, rng).size(), 1u);
  // Full fraction keeps everyone.
  auto full = make_sampled_sync_scheduler(1.0);
  EXPECT_EQ(full->cohort(0, 4, rng).size(), 4u);
}

TEST(SampledSyncSchedulerTest, FractionOutsideUnitIntervalThrows) {
  EXPECT_THROW(make_sampled_sync_scheduler(0.0), InvalidArgument);
  EXPECT_THROW(make_sampled_sync_scheduler(-0.5), InvalidArgument);
  EXPECT_THROW(make_sampled_sync_scheduler(1.5), InvalidArgument);
}

TEST(BufferedAsyncSchedulerTest, BuffersKAndWeighsStaleness) {
  auto scheduler = make_buffered_async_scheduler({4, 0.5});
  EXPECT_EQ(scheduler->name(), "buffered_async");
  EXPECT_TRUE(scheduler->continuous());
  Rng rng(1);
  EXPECT_EQ(scheduler->cohort(0, 6, rng).size(), 6u);  // everyone trains
  EXPECT_EQ(scheduler->aggregation_goal(6), 4u);
  // Goal never exceeds the population, or the pump would starve.
  EXPECT_EQ(scheduler->aggregation_goal(2), 2u);
  // 1/(1+staleness)^0.5: fresh = 1, stale decays monotonically.
  EXPECT_DOUBLE_EQ(scheduler->staleness_scale(3, 3), 1.0);
  EXPECT_NEAR(scheduler->staleness_scale(2, 3), 1.0 / std::sqrt(2.0), 1e-12);
  EXPECT_GT(scheduler->staleness_scale(2, 3),
            scheduler->staleness_scale(0, 3));
}

TEST(BufferedAsyncSchedulerTest, InvalidConfigThrows) {
  EXPECT_THROW(make_buffered_async_scheduler({0, 0.5}), InvalidArgument);
  EXPECT_THROW(make_buffered_async_scheduler({4, -1.0}), InvalidArgument);
}

}  // namespace
}  // namespace fedsz::core

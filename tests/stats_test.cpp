// Tests for the statistics utilities behind Figures 2, 3 and 10.
#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace fedsz::stats {
namespace {

std::vector<double> laplace_samples(std::size_t n, double mu, double b,
                                    std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out(n);
  for (auto& v : out) v = rng.laplace(mu, b);
  return out;
}

std::vector<double> normal_samples(std::size_t n, double mu, double sigma,
                                   std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out(n);
  for (auto& v : out) v = rng.normal(mu, sigma);
  return out;
}

TEST(Summary, BasicStatistics) {
  const std::vector<float> values{1.0f, 2.0f, 3.0f, 4.0f};
  const Summary s = summarize(FloatSpan{values.data(), values.size()});
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_NEAR(s.stddev, std::sqrt(1.25), 1e-9);
  EXPECT_DOUBLE_EQ(s.range(), 3.0);
}

TEST(Summary, EmptyInput) {
  const Summary s = summarize(FloatSpan{});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.range(), 0.0);
}

TEST(Summary, ConstantInputHasZeroStddev) {
  const std::vector<float> values(100, 5.0f);
  const Summary s = summarize(FloatSpan{values.data(), values.size()});
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.range(), 0.0);
}

TEST(HistogramTest, CountsSumToTotal) {
  const auto values = normal_samples(10000, 0.0, 1.0, 3);
  const Histogram h = histogram(values, 50);
  std::size_t total = 0;
  for (const auto c : h.counts) total += c;
  EXPECT_EQ(total, h.total);
  EXPECT_EQ(h.total, values.size());
}

TEST(HistogramTest, ValuesOutsideRangeIgnored) {
  const std::vector<double> values{-10.0, 0.5, 0.6, 10.0};
  const Histogram h = histogram(values, 4, 0.0, 1.0);
  EXPECT_EQ(h.total, 2u);
}

TEST(HistogramTest, MaxValueLandsInLastBin) {
  const std::vector<double> values{1.0};
  const Histogram h = histogram(values, 10, 0.0, 1.0);
  EXPECT_EQ(h.counts.back(), 1u);
}

TEST(HistogramTest, DensityIntegratesToOne) {
  const auto values = normal_samples(20000, 0.0, 1.0, 5);
  const Histogram h = histogram(values, 40, -4.0, 4.0);
  double integral = 0.0;
  for (std::size_t i = 0; i < h.counts.size(); ++i)
    integral += h.density(i) * h.bin_width();
  EXPECT_NEAR(integral, 1.0, 0.01);  // a few samples fall outside +-4
}

TEST(HistogramTest, InvalidArgumentsThrow) {
  const std::vector<double> values{1.0};
  EXPECT_THROW(histogram(values, 0, 0.0, 1.0), InvalidArgument);
  EXPECT_THROW(histogram(values, 4, 1.0, 1.0), InvalidArgument);
}

TEST(LaplaceFitTest, RecoversParameters) {
  const auto values = laplace_samples(50000, 0.3, 0.08, 7);
  const LaplaceFit fit = fit_laplace(values);
  EXPECT_NEAR(fit.mu, 0.3, 0.01);
  EXPECT_NEAR(fit.b, 0.08, 0.005);
}

TEST(LaplaceFitTest, CdfProperties) {
  const LaplaceFit fit{0.0, 1.0};
  EXPECT_NEAR(fit.cdf(0.0), 0.5, 1e-12);
  EXPECT_LT(fit.cdf(-5.0), 0.01);
  EXPECT_GT(fit.cdf(5.0), 0.99);
  EXPECT_LT(fit.cdf(-1.0), fit.cdf(1.0));
}

TEST(NormalFitTest, RecoversParameters) {
  const auto values = normal_samples(50000, -1.0, 2.0, 9);
  const NormalFit fit = fit_normal(values);
  EXPECT_NEAR(fit.mu, -1.0, 0.05);
  EXPECT_NEAR(fit.sigma, 2.0, 0.05);
}

TEST(NormalFitTest, CdfAtMeanIsHalf) {
  const NormalFit fit{2.0, 0.5};
  EXPECT_NEAR(fit.cdf(2.0), 0.5, 1e-9);
}

TEST(KsStatistic, LaplaceDataPrefersLaplaceFit) {
  const auto values = laplace_samples(20000, 0.0, 1.0, 11);
  const LaplaceFit lap = fit_laplace(values);
  const NormalFit norm = fit_normal(values);
  const double ks_lap =
      ks_statistic(values, [&](double x) { return lap.cdf(x); });
  const double ks_norm =
      ks_statistic(values, [&](double x) { return norm.cdf(x); });
  EXPECT_LT(ks_lap, ks_norm);
  EXPECT_LT(ks_lap, 0.02);
}

TEST(KsStatistic, NormalDataPrefersNormalFit) {
  const auto values = normal_samples(20000, 0.0, 1.0, 13);
  const LaplaceFit lap = fit_laplace(values);
  const NormalFit norm = fit_normal(values);
  const double ks_lap =
      ks_statistic(values, [&](double x) { return lap.cdf(x); });
  const double ks_norm =
      ks_statistic(values, [&](double x) { return norm.cdf(x); });
  EXPECT_LT(ks_norm, ks_lap);
  EXPECT_LT(ks_norm, 0.02);
}

TEST(KsStatistic, PerfectFitIsNearZero) {
  // ECDF of uniform samples against the uniform CDF.
  Rng rng(15);
  std::vector<double> values(50000);
  for (auto& v : values) v = rng.uniform();
  const double ks = ks_statistic(values, [](double x) {
    return std::clamp(x, 0.0, 1.0);
  });
  EXPECT_LT(ks, 0.01);
}

TEST(Roughness, SpikySignalScoresHigherThanSmooth) {
  Rng rng(17);
  std::vector<float> spiky(2000), smooth(2000);
  for (std::size_t i = 0; i < spiky.size(); ++i) {
    spiky[i] = static_cast<float>(rng.laplace(0.0, 0.1));
    smooth[i] = std::sin(static_cast<float>(i) * 0.01f);
  }
  const double r_spiky = roughness({spiky.data(), spiky.size()});
  const double r_smooth = roughness({smooth.data(), smooth.size()});
  EXPECT_GT(r_spiky, 10.0 * r_smooth);
}

TEST(Roughness, ConstantSignalIsZero) {
  const std::vector<float> values(100, 3.0f);
  EXPECT_EQ(roughness({values.data(), values.size()}), 0.0);
}

TEST(MaxAbsError, DetectsWorstDeviation) {
  const std::vector<float> a{1.0f, 2.0f, 3.0f};
  const std::vector<float> b{1.0f, 2.5f, 2.9f};
  EXPECT_NEAR(max_abs_error({a.data(), a.size()}, {b.data(), b.size()}), 0.5,
              1e-7);
}

TEST(MaxAbsError, SizeMismatchThrows) {
  const std::vector<float> a{1.0f}, b{1.0f, 2.0f};
  EXPECT_THROW(max_abs_error({a.data(), a.size()}, {b.data(), b.size()}),
               InvalidArgument);
}

TEST(Psnr, ExactReconstructionIsSentinel) {
  const std::vector<float> a{1.0f, 2.0f, 3.0f};
  EXPECT_EQ(psnr({a.data(), a.size()}, {a.data(), a.size()}), 999.0);
}

TEST(Psnr, IncreasesWithFidelity) {
  Rng rng(19);
  std::vector<float> original(1000), noisy_small(1000), noisy_large(1000);
  for (std::size_t i = 0; i < original.size(); ++i) {
    original[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
    noisy_small[i] = original[i] + static_cast<float>(rng.normal(0.0, 0.001));
    noisy_large[i] = original[i] + static_cast<float>(rng.normal(0.0, 0.1));
  }
  EXPECT_GT(psnr({original.data(), original.size()},
                 {noisy_small.data(), noisy_small.size()}),
            psnr({original.data(), original.size()},
                 {noisy_large.data(), noisy_large.size()}));
}

TEST(Correlation, PerfectPositiveAndNegative) {
  const std::vector<float> a{1.0f, 2.0f, 3.0f, 4.0f};
  std::vector<float> b{2.0f, 4.0f, 6.0f, 8.0f};
  EXPECT_NEAR(correlation({a.data(), a.size()}, {b.data(), b.size()}), 1.0,
              1e-6);
  for (auto& v : b) v = -v;
  EXPECT_NEAR(correlation({a.data(), a.size()}, {b.data(), b.size()}), -1.0,
              1e-6);
}

TEST(Correlation, ConstantInputGivesZero) {
  const std::vector<float> a{1.0f, 1.0f, 1.0f};
  const std::vector<float> b{1.0f, 2.0f, 3.0f};
  EXPECT_EQ(correlation({a.data(), a.size()}, {b.data(), b.size()}), 0.0);
}

}  // namespace
}  // namespace fedsz::stats

// Tests for bit/byte serialization primitives, the RNG, and the thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "util/bitstream.hpp"
#include "util/bytebuffer.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace fedsz {
namespace {

// ---- BitWriter / BitReader ----

TEST(BitStream, EmptyFinishProducesNoBytes) {
  BitWriter w;
  EXPECT_TRUE(w.finish().empty());
}

TEST(BitStream, SingleBitRoundTrip) {
  BitWriter w;
  w.write_bit(true);
  const Bytes bytes = w.finish();
  ASSERT_EQ(bytes.size(), 1u);
  BitReader r({bytes.data(), bytes.size()});
  EXPECT_TRUE(r.read_bit());
}

TEST(BitStream, CrossByteBoundaryValues) {
  BitWriter w;
  w.write(0b101, 3);
  w.write(0xABCD, 16);
  w.write(0b1, 1);
  w.write(0xFFFFFFFFu, 32);
  const Bytes bytes = w.finish();
  BitReader r({bytes.data(), bytes.size()});
  EXPECT_EQ(r.read(3), 0b101u);
  EXPECT_EQ(r.read(16), 0xABCDu);
  EXPECT_EQ(r.read(1), 1u);
  EXPECT_EQ(r.read(32), 0xFFFFFFFFu);
}

TEST(BitStream, SixtyFourBitValue) {
  BitWriter w;
  const std::uint64_t value = 0x123456789ABCDEF0ull;
  w.write(value, 64);
  const Bytes bytes = w.finish();
  BitReader r({bytes.data(), bytes.size()});
  EXPECT_EQ(r.read(64), value);
}

TEST(BitStream, ZeroCountWriteIsNoop) {
  BitWriter w;
  w.write(0xFF, 0);
  w.write(1, 1);
  const Bytes bytes = w.finish();
  BitReader r({bytes.data(), bytes.size()});
  EXPECT_EQ(r.read(0), 0u);
  EXPECT_EQ(r.read(1), 1u);
}

TEST(BitStream, WriteMasksHighBits) {
  BitWriter w;
  w.write(0xFF, 4);  // only low 4 bits kept
  const Bytes bytes = w.finish();
  BitReader r({bytes.data(), bytes.size()});
  EXPECT_EQ(r.read(4), 0xFu);
  EXPECT_EQ(r.read(4), 0u);  // padding
}

TEST(BitStream, ReadPastEndThrows) {
  BitWriter w;
  w.write(1, 1);
  const Bytes bytes = w.finish();
  BitReader r({bytes.data(), bytes.size()});
  r.read(8);  // consumes the padded byte
  EXPECT_THROW(r.read(1), CorruptStream);
}

TEST(BitStream, CountAbove64Throws) {
  BitWriter w;
  EXPECT_THROW(w.write(0, 65), InvalidArgument);
  const Bytes bytes{0, 0};
  BitReader r({bytes.data(), bytes.size()});
  EXPECT_THROW(r.read(65), InvalidArgument);
}

TEST(BitStream, ManyRandomValuesRoundTrip) {
  Rng rng(1234);
  std::vector<std::pair<std::uint64_t, unsigned>> values;
  BitWriter w;
  for (int i = 0; i < 5000; ++i) {
    const unsigned count = 1 + static_cast<unsigned>(rng.uniform_index(64));
    std::uint64_t v = rng.next_u64();
    if (count < 64) v &= (std::uint64_t{1} << count) - 1;
    values.emplace_back(v, count);
    w.write(v, count);
  }
  const Bytes bytes = w.finish();
  BitReader r({bytes.data(), bytes.size()});
  for (const auto& [v, count] : values) EXPECT_EQ(r.read(count), v);
}

// ---- ByteWriter / ByteReader ----

TEST(ByteBuffer, FixedWidthRoundTrip) {
  ByteWriter w;
  w.put_u8(0xAB);
  w.put_u16(0xCDEF);
  w.put_u32(0x12345678u);
  w.put_u64(0xFEDCBA9876543210ull);
  w.put_f32(3.14159f);
  w.put_f64(-2.718281828459045);
  const Bytes bytes = w.finish();
  ByteReader r({bytes.data(), bytes.size()});
  EXPECT_EQ(r.get_u8(), 0xAB);
  EXPECT_EQ(r.get_u16(), 0xCDEF);
  EXPECT_EQ(r.get_u32(), 0x12345678u);
  EXPECT_EQ(r.get_u64(), 0xFEDCBA9876543210ull);
  EXPECT_FLOAT_EQ(r.get_f32(), 3.14159f);
  EXPECT_DOUBLE_EQ(r.get_f64(), -2.718281828459045);
  EXPECT_TRUE(r.done());
}

TEST(ByteBuffer, LittleEndianLayout) {
  ByteWriter w;
  w.put_u32(0x04030201u);
  const Bytes bytes = w.finish();
  ASSERT_EQ(bytes.size(), 4u);
  EXPECT_EQ(bytes[0], 1);
  EXPECT_EQ(bytes[1], 2);
  EXPECT_EQ(bytes[2], 3);
  EXPECT_EQ(bytes[3], 4);
}

TEST(ByteBuffer, VarintBoundaries) {
  const std::uint64_t cases[] = {0,       1,       127,        128,
                                 16383,   16384,   0xFFFFFFFF, (1ull << 62),
                                 ~0ull};
  ByteWriter w;
  for (const auto v : cases) w.put_varint(v);
  const Bytes bytes = w.finish();
  ByteReader r({bytes.data(), bytes.size()});
  for (const auto v : cases) EXPECT_EQ(r.get_varint(), v);
}

TEST(ByteBuffer, VarintSingleByteForSmallValues) {
  ByteWriter w;
  w.put_varint(127);
  EXPECT_EQ(w.size(), 1u);
}

TEST(ByteBuffer, StringAndBlobRoundTrip) {
  ByteWriter w;
  w.put_string("features.0.weight");
  w.put_string("");
  const Bytes blob{1, 2, 3, 255};
  w.put_blob({blob.data(), blob.size()});
  const Bytes bytes = w.finish();
  ByteReader r({bytes.data(), bytes.size()});
  EXPECT_EQ(r.get_string(), "features.0.weight");
  EXPECT_EQ(r.get_string(), "");
  EXPECT_EQ(r.get_blob(), blob);
}

TEST(ByteBuffer, TruncatedReadThrows) {
  ByteWriter w;
  w.put_u16(7);
  const Bytes bytes = w.finish();
  ByteReader r({bytes.data(), bytes.size()});
  EXPECT_THROW(r.get_u32(), CorruptStream);
}

TEST(ByteBuffer, OversizedBlobLengthThrows) {
  ByteWriter w;
  w.put_varint(1000);  // claims 1000 bytes, provides none
  const Bytes bytes = w.finish();
  ByteReader r({bytes.data(), bytes.size()});
  EXPECT_THROW(r.get_blob(), CorruptStream);
}

TEST(ByteBuffer, MalformedVarintThrows) {
  const Bytes bytes(11, 0x80);  // continuation bit forever
  ByteReader r({bytes.data(), bytes.size()});
  EXPECT_THROW(r.get_varint(), CorruptStream);
}

// ---- Rng ----

TEST(Rng, DeterministicForSameSeed) {
  Rng a(99), b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIndexCoversRange) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_index(8));
  EXPECT_EQ(seen.size(), 8u);
  EXPECT_EQ(*seen.rbegin(), 7u);
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(11);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(Rng, LaplaceMomentsMatchParameters) {
  Rng rng(13);
  const double mu = 0.5, b = 2.0;
  double sum = 0.0, abs_dev = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.laplace(mu, b);
  const double mean = sum / n;
  EXPECT_NEAR(mean, mu, 0.1);
  Rng rng2(13);
  for (int i = 0; i < n; ++i) abs_dev += std::fabs(rng2.laplace(mu, b) - mu);
  EXPECT_NEAR(abs_dev / n, b, 0.1);
}

TEST(Rng, GammaMeanMatchesShape) {
  Rng rng(17);
  for (const double shape : {0.3, 1.0, 4.0}) {
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) sum += rng.gamma(shape);
    EXPECT_NEAR(sum / n, shape, shape * 0.1 + 0.03);
  }
}

TEST(Rng, ForkProducesIndependentStreams) {
  Rng base(21);
  Rng a = base.fork(0);
  Rng b = base.fork(1);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 3);
}

// ---- Timer ----

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  volatile double sink = 0.0;
  for (int i = 0; i < 2000000; ++i) sink = sink + i;
  EXPECT_GT(t.seconds(), 0.0);
}

TEST(StopWatch, AccumulatesIntervals) {
  StopWatch sw;
  sw.start();
  sw.stop();
  sw.start();
  sw.stop();
  EXPECT_GE(sw.total_seconds(), 0.0);
  sw.clear();
  EXPECT_EQ(sw.total_seconds(), 0.0);
}

// ---- ThreadPool ----

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  auto future = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, PropagatesTaskException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(4,
                        [](std::size_t i) {
                          if (i == 2) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  std::atomic<int> count{0};
  pool.parallel_for(10, [&](std::size_t) { count++; });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, ManyTasksComplete) {
  ThreadPool pool(8);
  std::atomic<std::int64_t> sum{0};
  pool.parallel_for(1000, [&](std::size_t i) {
    sum += static_cast<std::int64_t>(i);
  });
  EXPECT_EQ(sum.load(), 999 * 1000 / 2);
}

}  // namespace
}  // namespace fedsz

// Training-dynamics tests: SGD semantics and the end-to-end property that
// every architecture can fit data (the paper's accuracy experiments are
// meaningless without it).
#include <gtest/gtest.h>

#include "data/dataloader.hpp"
#include "data/synthetic.hpp"
#include "nn/loss.hpp"
#include "nn/metrics.hpp"
#include "nn/models.hpp"
#include "nn/optimizer.hpp"

namespace fedsz::nn {
namespace {

TEST(Sgd, VanillaStepIsGradientDescent) {
  Tensor w = Tensor::from_data({2}, {1.0f, -2.0f});
  Tensor g = Tensor::from_data({2}, {0.5f, 0.5f});
  std::vector<ParamRef> params{{"w", &w, &g}};
  Sgd sgd(params, {0.1f, 0.0f, 0.0f});
  sgd.step();
  EXPECT_FLOAT_EQ(w[0], 0.95f);
  EXPECT_FLOAT_EQ(w[1], -2.05f);
}

TEST(Sgd, MomentumAccumulatesVelocity) {
  Tensor w = Tensor::from_data({1}, {0.0f});
  Tensor g = Tensor::from_data({1}, {1.0f});
  std::vector<ParamRef> params{{"w", &w, &g}};
  Sgd sgd(params, {0.1f, 0.9f, 0.0f});
  sgd.step();  // v=1, w=-0.1
  EXPECT_FLOAT_EQ(w[0], -0.1f);
  sgd.step();  // v=1.9, w=-0.29
  EXPECT_FLOAT_EQ(w[0], -0.29f);
}

TEST(Sgd, WeightDecayShrinksWeights) {
  Tensor w = Tensor::from_data({1}, {10.0f});
  Tensor g = Tensor::from_data({1}, {0.0f});
  std::vector<ParamRef> params{{"w", &w, &g}};
  Sgd sgd(params, {0.1f, 0.0f, 0.5f});
  sgd.step();
  EXPECT_FLOAT_EQ(w[0], 10.0f - 0.1f * 0.5f * 10.0f);
}

TEST(Sgd, LearningRateIsAdjustable) {
  Tensor w = Tensor::from_data({1}, {1.0f});
  Tensor g = Tensor::from_data({1}, {1.0f});
  std::vector<ParamRef> params{{"w", &w, &g}};
  Sgd sgd(params, {0.1f, 0.0f, 0.0f});
  sgd.set_learning_rate(1.0f);
  sgd.step();
  EXPECT_FLOAT_EQ(w[0], 0.0f);
}

class ArchitectureLearns : public ::testing::TestWithParam<std::string> {};

TEST_P(ArchitectureLearns, OverfitsASmallBatch) {
  ModelConfig cfg;
  cfg.arch = GetParam();
  cfg.scale = ModelScale::kTiny;
  BuiltModel built = build_model(cfg);
  auto [train, test] = data::make_dataset("cifar10");
  data::DataLoader loader(data::take(train, 32), 32, false, 3);
  data::Batch batch;
  ASSERT_TRUE(loader.next(batch));
  Sgd opt(built.model.parameters(), {0.03f, 0.9f, 0.0f});
  double first_loss = 0.0, last_loss = 0.0;
  for (int step = 0; step < 60; ++step) {
    built.model.zero_grad();
    const Tensor logits = built.model.forward(batch.images, true);
    const LossResult loss = softmax_cross_entropy(
        logits, {batch.labels.data(), batch.labels.size()});
    built.model.backward(loss.grad_logits);
    opt.step();
    if (step == 0) first_loss = loss.loss;
    last_loss = loss.loss;
  }
  EXPECT_LT(last_loss, first_loss * 0.6)
      << cfg.arch << " failed to fit 32 samples";
}

INSTANTIATE_TEST_SUITE_P(AllArchitectures, ArchitectureLearns,
                         ::testing::Values("alexnet", "mobilenet_v2",
                                           "resnet"));

TEST(Training, GeneralizesAboveChanceOnSyntheticTask) {
  ModelConfig cfg;
  cfg.arch = "mobilenet_v2";
  cfg.scale = ModelScale::kTiny;
  BuiltModel built = build_model(cfg);
  auto [train, test] = data::make_dataset("cifar10");
  data::DataLoader loader(data::take(train, 512), 32, true, 5);
  Sgd opt(built.model.parameters(), {0.05f, 0.9f, 0.0f});
  for (int epoch = 0; epoch < 3; ++epoch) {
    loader.reset();
    data::Batch batch;
    while (loader.next(batch)) {
      built.model.zero_grad();
      const Tensor logits = built.model.forward(batch.images, true);
      const LossResult loss = softmax_cross_entropy(
          logits, {batch.labels.data(), batch.labels.size()});
      built.model.backward(loss.grad_logits);
      opt.step();
    }
  }
  const data::Batch eval = data::full_batch(*data::take(test, 200));
  const Tensor logits = built.model.forward(eval.images, false);
  const double acc =
      top1_accuracy(logits, {eval.labels.data(), eval.labels.size()});
  EXPECT_GT(acc, 0.35) << "expected well above 10% chance";
}

}  // namespace
}  // namespace fedsz::nn

// Tests for the bidirectional comm model: DownlinkChannel full/delta
// broadcast sessions, coordinator runs that charge broadcast bytes on the
// virtual clock, and the error-feedback accuracy regression at aggressive
// bounds.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/codec_spec.hpp"
#include "core/fl/coordinator.hpp"
#include "core/fl/downlink.hpp"
#include "data/synthetic.hpp"

namespace fedsz::core {
namespace {

nn::ModelConfig tiny_model() {
  nn::ModelConfig cfg;
  cfg.arch = "mobilenet_v2";
  cfg.scale = nn::ModelScale::kTiny;
  return cfg;
}

StateDict synthetic_global(float shift = 0.0f) {
  StateDict dict;
  {
    std::vector<float> values(3000);
    for (std::size_t i = 0; i < values.size(); ++i)
      values[i] = std::sin(static_cast<float>(i) * 0.013f) + shift;
    dict.set("features.0.weight", Tensor::from_data({30, 100}, values));
  }
  {
    std::vector<float> values(40);
    for (std::size_t i = 0; i < values.size(); ++i)
      values[i] = 0.01f * static_cast<float>(i) - shift;
    dict.set("features.0.bias", Tensor::from_data({40}, values));
  }
  return dict;
}

double max_abs_error(const StateDict& a, const StateDict& b) {
  double worst = 0.0;
  for (const auto& [name, tensor] : a) {
    const Tensor& other = b.get(name);
    for (std::size_t i = 0; i < tensor.numel(); ++i)
      worst = std::max(worst, std::abs(static_cast<double>(tensor[i]) -
                                       static_cast<double>(other[i])));
  }
  return worst;
}

TEST(DownlinkChannelTest, FullBroadcastRoundTripsWithinBound) {
  DownlinkConfig config;
  config.codec = make_codec("fedsz:eb=abs:1e-3,threshold=100");
  DownlinkChannel channel(config, 4);
  const StateDict global = synthetic_global();
  const BroadcastPayload broadcast = channel.encode_broadcast(global, 0);
  EXPECT_GT(broadcast.payload.size(), 0u);
  EXPECT_LT(broadcast.payload.size(), global.total_bytes());
  CompressionStats stats;
  const StateDict decoded = channel.decode_broadcast(
      {broadcast.payload.data(), broadcast.payload.size()}, &stats);
  EXPECT_EQ(decoded.size(), global.size());
  EXPECT_LE(max_abs_error(global, decoded), 1e-3 + 1e-9);
  EXPECT_GT(stats.decompress_seconds, 0.0);
}

TEST(DownlinkChannelTest, DeltaSessionsTrackTheGlobalAcrossRounds) {
  DownlinkConfig config;
  config.mode = DownlinkMode::kDelta;
  config.codec = make_codec("fedsz:eb=abs:1e-3,threshold=100");
  DownlinkChannel channel(config, 2);
  EXPECT_TRUE(channel.acknowledged(0).empty());

  // Round 0: first contact ships the full model.
  StateDict global = synthetic_global();
  BroadcastPayload first = channel.encode_for_client(0, global, 0);
  StateDict model = channel.receive(
      0, {first.payload.data(), first.payload.size()});
  EXPECT_LE(max_abs_error(global, model), 1e-3 + 1e-9);
  EXPECT_FALSE(channel.acknowledged(0).empty());
  // The session cache IS the client's reconstruction.
  EXPECT_TRUE(channel.acknowledged(0).equals(model));

  // Round 1: only the delta rides the wire, and the reconstruction still
  // tracks the new global within the bound (error does not compound:
  // the delta is taken against the acknowledged reconstruction).
  global = synthetic_global(0.25f);
  BroadcastPayload second = channel.encode_for_client(0, global, 1);
  model = channel.receive(0, {second.payload.data(), second.payload.size()});
  EXPECT_LE(max_abs_error(global, model), 1e-3 + 1e-9);

  // Client 1 never received anything; its session is untouched.
  EXPECT_TRUE(channel.acknowledged(1).empty());
}

TEST(DownlinkChannelTest, InvalidConstructionThrows) {
  EXPECT_THROW(DownlinkChannel({DownlinkMode::kFull, nullptr}, 2),
               InvalidArgument);
  EXPECT_THROW(
      DownlinkChannel({DownlinkMode::kFull, make_identity_codec()}, 0),
      InvalidArgument);
}

TEST(FlRunConfigTest, ValidateRejectsMalformedDownlinkSpecs) {
  FlRunConfig config;
  config.downlink_spec = "fedsz:eb=rel:1e-3";
  EXPECT_NO_THROW(config.validate());
  config.downlink_spec = "identity";
  EXPECT_NO_THROW(config.validate());
  config.downlink_spec = "szip";
  EXPECT_THROW(config.validate(), InvalidArgument);
  config.downlink_spec = "fedsz:ef=on";  // comm keys cannot nest
  EXPECT_THROW(config.validate(), InvalidArgument);
  // Delta mode without a downlink codec would silently no-op; reject it.
  config.downlink_spec = "";
  config.downlink_mode = DownlinkMode::kDelta;
  EXPECT_THROW(config.validate(), InvalidArgument);
}

TEST(FlRunConfigTest, ApplyCommSpecFoldsTheCommKeys) {
  FlRunConfig config;
  config.apply_comm_spec(parse_codec_spec(
      "fedsz:eb=rel:1e-2,downlink=fedsz:eb=rel:1e-3,downmode=delta,ef=on"));
  EXPECT_EQ(config.downlink_mode, DownlinkMode::kDelta);
  EXPECT_TRUE(config.error_feedback);
  EXPECT_FALSE(config.downlink_spec.empty());
  EXPECT_NO_THROW(config.validate());
  // The stored spec is canonical and names the 1e-3 bound.
  EXPECT_NE(config.downlink_spec.find("eb=rel:0.001"), std::string::npos);
}

// ---- coordinator runs ----

struct BidirectionalRun {
  FlRunResult result;
  FlRunConfig config;
};

BidirectionalRun run_eight_clients(const std::string& uplink_spec,
                                   const std::string& downlink_spec,
                                   DownlinkMode mode, bool error_feedback,
                                   std::uint64_t seed = 11) {
  auto [train, test] = data::make_dataset("cifar10");
  FlRunConfig config;
  config.clients = 8;
  config.rounds = 2;
  config.eval_limit = 32;
  config.threads = 4;
  config.seed = seed;
  config.client.batch_size = 8;
  config.evaluate_every_round = false;
  config.downlink_spec = downlink_spec;
  config.downlink_mode = mode;
  config.error_feedback = error_feedback;
  net::HeterogeneousNetworkConfig links;
  links.distribution = net::LinkDistribution::kUniformEdge;
  links.edge_min_mbps = 4.0;
  links.edge_max_mbps = 20.0;
  config.heterogeneous = links;
  FlCoordinator coordinator(tiny_model(), data::take(train, 128),
                            data::take(test, 32), config,
                            make_codec(uplink_spec));
  return {coordinator.run(), config};
}

// The kFull and uplink-only baseline runs are shared across tests (each is
// a full 8-client federation; re-running identical configs only burns CI
// minutes).
const BidirectionalRun& shared_full_run() {
  static const BidirectionalRun run = run_eight_clients(
      "fedsz", "fedsz:eb=rel:1e-3", DownlinkMode::kFull, false);
  return run;
}

const BidirectionalRun& shared_uplink_only_run() {
  static const BidirectionalRun run =
      run_eight_clients("fedsz", "", DownlinkMode::kFull, false);
  return run;
}

TEST(FlCoordinatorDownlinkTest, BroadcastBytesAndSecondsAppearInTheTrace) {
  const BidirectionalRun& down = shared_full_run();
  const BidirectionalRun& up_only = shared_uplink_only_run();

  ASSERT_EQ(down.result.rounds.size(), 2u);
  for (const RoundRecord& record : down.result.rounds) {
    EXPECT_EQ(record.participants, 8u);
    EXPECT_GT(record.downlink_bytes, 0u);
    EXPECT_GT(record.downlink_raw_bytes, record.downlink_bytes);
    EXPECT_GT(record.downlink_seconds, 0.0);
    EXPECT_GT(record.downlink_encode_seconds, 0.0);
    EXPECT_GT(record.downlink_decode_seconds, 0.0);
    EXPECT_GT(record.downlink_compression_ratio(), 1.0);
    ASSERT_EQ(record.clients.size(), 8u);
    for (const ClientTraceEntry& entry : record.clients) {
      EXPECT_GT(entry.downlink_bytes, 0u);
      EXPECT_GT(entry.downlink_seconds, 0.0);
      // Training cannot start before the broadcast landed.
      EXPECT_GE(entry.dispatch_seconds, entry.downlink_seconds);
    }
  }
  // The uplink-only run never charges the broadcast.
  for (const RoundRecord& record : up_only.result.rounds) {
    EXPECT_EQ(record.downlink_bytes, 0u);
    EXPECT_DOUBLE_EQ(record.downlink_seconds, 0.0);
  }
  // Same seed, same uplink codec: charging the broadcast makes every round
  // take strictly longer on the virtual clock.
  EXPECT_GT(down.result.total_virtual_seconds,
            up_only.result.total_virtual_seconds);
}

TEST(FlCoordinatorDownlinkTest, FullModeEncodesOncePerRound) {
  // In kFull mode every participant ships the SAME payload: per-client
  // downlink bytes are identical, so the round total is 8x the payload.
  const BidirectionalRun& down = shared_full_run();
  for (const RoundRecord& record : down.result.rounds) {
    const std::size_t payload = record.clients.front().downlink_bytes;
    for (const ClientTraceEntry& entry : record.clients)
      EXPECT_EQ(entry.downlink_bytes, payload);
    EXPECT_EQ(record.downlink_bytes, payload * record.participants);
  }
}

TEST(FlCoordinatorDownlinkTest, DeltaModeShrinksLaterBroadcasts) {
  // An ABSOLUTE downlink bound is where delta mode pays: the full model
  // spans a wide range (many quantization levels) while one aggregation
  // step's delta spans a tiny one (few levels). A relative bound would
  // rescale with the delta and ship similar bytes either way.
  const BidirectionalRun delta = run_eight_clients(
      "fedsz", "fedsz:eb=abs:1e-3,threshold=100", DownlinkMode::kDelta,
      false);
  ASSERT_EQ(delta.result.rounds.size(), 2u);
  // Round 0 is first contact (full model); round 1 ships deltas of one
  // local-SGD aggregation step, which compress much harder.
  const RoundRecord& first = delta.result.rounds[0];
  const RoundRecord& second = delta.result.rounds[1];
  EXPECT_GT(first.downlink_bytes, 0u);
  EXPECT_GT(second.downlink_bytes, 0u);
  EXPECT_LT(second.downlink_bytes, first.downlink_bytes);
}

TEST(FlCoordinatorDownlinkTest, DownlinkRunsAreDeterministic) {
  const BidirectionalRun a = run_eight_clients(
      "fedsz", "fedsz:eb=rel:1e-3", DownlinkMode::kDelta, true);
  const BidirectionalRun b = run_eight_clients(
      "fedsz", "fedsz:eb=rel:1e-3", DownlinkMode::kDelta, true);
  ASSERT_EQ(a.result.rounds.size(), b.result.rounds.size());
  EXPECT_DOUBLE_EQ(a.result.final_accuracy, b.result.final_accuracy);
  for (std::size_t r = 0; r < a.result.rounds.size(); ++r) {
    EXPECT_EQ(a.result.rounds[r].bytes_sent, b.result.rounds[r].bytes_sent);
    EXPECT_EQ(a.result.rounds[r].downlink_bytes,
              b.result.rounds[r].downlink_bytes);
    EXPECT_DOUBLE_EQ(a.result.rounds[r].virtual_seconds,
                     b.result.rounds[r].virtual_seconds);
    EXPECT_DOUBLE_EQ(a.result.rounds[r].mean_ef_residual_norm,
                     b.result.rounds[r].mean_ef_residual_norm);
  }
}

// The sampled-scheduler x delta-downlink interaction was untested: delta
// sessions advance only for SAMPLED clients, so the per-client acknowledged
// models diverge across rounds, and none of it may depend on the worker
// pool. Same seed => byte-identical RoundRecords at any thread count.
TEST(FlCoordinatorDownlinkTest, SampledDeltaDownlinkIsThreadCountInvariant) {
  auto [train, test] = data::make_dataset("cifar10");
  auto run_once = [&](std::size_t threads) {
    FlRunConfig config;
    config.clients = 8;
    config.rounds = 3;
    config.eval_limit = 32;
    config.threads = threads;
    config.seed = 321;
    config.client.batch_size = 4;
    config.evaluate_every_round = false;
    config.apply_comm_spec(parse_codec_spec(
        "identity:downlink=fedsz:eb=abs:1e-3,downmode=delta"));
    net::HeterogeneousNetworkConfig links;
    links.distribution = net::LinkDistribution::kUniformEdge;
    links.edge_min_mbps = 2.0;
    links.edge_max_mbps = 20.0;
    config.heterogeneous = links;
    FlCoordinator coordinator(tiny_model(), data::take(train, 64),
                              data::take(test, 32), config,
                              make_codec("fedsz:eb=rel:1e-2"),
                              make_sampled_sync_scheduler(0.5));
    return coordinator.run();
  };
  const FlRunResult a = run_once(1);
  const FlRunResult b = run_once(4);
  ASSERT_EQ(a.rounds.size(), 3u);
  ASSERT_EQ(b.rounds.size(), 3u);
  EXPECT_DOUBLE_EQ(a.final_accuracy, b.final_accuracy);
  for (std::size_t r = 0; r < a.rounds.size(); ++r) {
    const RoundRecord& ra = a.rounds[r];
    const RoundRecord& rb = b.rounds[r];
    EXPECT_EQ(ra.participants, 4u);  // ceil(0.5 * 8)
    EXPECT_EQ(ra.bytes_sent, rb.bytes_sent);
    EXPECT_EQ(ra.raw_bytes, rb.raw_bytes);
    EXPECT_EQ(ra.downlink_bytes, rb.downlink_bytes);
    EXPECT_EQ(ra.downlink_raw_bytes, rb.downlink_raw_bytes);
    EXPECT_DOUBLE_EQ(ra.virtual_seconds, rb.virtual_seconds);
    ASSERT_EQ(ra.clients.size(), rb.clients.size());
    for (std::size_t c = 0; c < ra.clients.size(); ++c) {
      EXPECT_EQ(ra.clients[c].client, rb.clients[c].client);
      EXPECT_EQ(ra.clients[c].payload_bytes, rb.clients[c].payload_bytes);
      EXPECT_EQ(ra.clients[c].downlink_bytes, rb.clients[c].downlink_bytes);
      EXPECT_DOUBLE_EQ(ra.clients[c].arrival_seconds,
                       rb.clients[c].arrival_seconds);
      EXPECT_DOUBLE_EQ(ra.clients[c].weight, rb.clients[c].weight);
    }
  }
  // Delta sessions must actually engage: later rounds re-broadcast only to
  // resampled clients, and at least one broadcast is a session delta
  // smaller than the first-contact full model.
  std::size_t first_contact = 0, later = 0;
  for (const ClientTraceEntry& entry : a.rounds[0].clients)
    first_contact = std::max(first_contact, entry.downlink_bytes);
  for (std::size_t r = 1; r < a.rounds.size(); ++r)
    for (const ClientTraceEntry& entry : a.rounds[r].clients)
      later = later == 0 ? entry.downlink_bytes
                         : std::min(later, entry.downlink_bytes);
  EXPECT_GT(first_contact, 0u);
  EXPECT_GT(later, 0u);
  EXPECT_LT(later, first_contact);
}

TEST(FlCoordinatorDownlinkTest, IdentityDownlinkChargesFullBytes) {
  const BidirectionalRun down = run_eight_clients(
      "identity", "identity", DownlinkMode::kFull, false);
  for (const RoundRecord& record : down.result.rounds) {
    EXPECT_GT(record.downlink_bytes, 0u);
    // Identity broadcast: on-wire == raw.
    EXPECT_EQ(record.downlink_bytes, record.downlink_raw_bytes);
  }
}

TEST(FlCoordinatorDownlinkTest, ErrorFeedbackTracksResidualNorms) {
  const BidirectionalRun run = run_eight_clients(
      "fedsz:eb=rel:1e-1", "", DownlinkMode::kFull, true);
  // A lossy uplink leaves a nonzero residual on every client, and the
  // extra decode EF pays for it is priced in the round record.
  for (const RoundRecord& record : run.result.rounds) {
    EXPECT_GT(record.mean_ef_residual_norm, 0.0);
    EXPECT_GT(record.ef_decode_seconds, 0.0);
    for (const ClientTraceEntry& entry : record.clients)
      EXPECT_GT(entry.ef_residual_norm, 0.0);
  }
  // A lossless uplink leaves none.
  const BidirectionalRun lossless = run_eight_clients(
      "identity", "", DownlinkMode::kFull, true);
  for (const RoundRecord& record : lossless.result.rounds)
    EXPECT_DOUBLE_EQ(record.mean_ef_residual_norm, 0.0);
}

// The error-feedback acceptance regression: at an aggressive bound where
// plain FedSZ visibly degrades, folding the dropped residual back into the
// next round's update must recover accuracy by a pinned margin.
TEST(FlCoordinatorDownlinkTest, ErrorFeedbackRecoversAccuracyAtRel1e1) {
  auto run_at = [&](bool ef) {
    auto [train, test] = data::make_dataset("cifar10");
    FlRunConfig config;
    config.clients = 4;
    config.rounds = 4;
    config.eval_limit = 192;
    config.threads = 4;
    config.seed = 3;
    config.client.batch_size = 16;
    config.client.sgd.learning_rate = 0.05f;
    config.evaluate_every_round = false;
    config.error_feedback = ef;
    FlCoordinator coordinator(tiny_model(), data::take(train, 256),
                              data::take(test, 192), config,
                              make_codec("fedsz:eb=rel:1e-1"));
    return coordinator.run().final_accuracy;
  };
  const double with_ef = run_at(true);
  const double without_ef = run_at(false);
  std::printf("rel:1e-1 final accuracy: EF on %.4f, EF off %.4f\n", with_ef,
              without_ef);
  // Margin pinned from the seeded run; fails if EF regresses.
  EXPECT_GT(with_ef, without_ef + 0.02);
}

}  // namespace
}  // namespace fedsz::core

// Tests for the LZMA-style adaptive binary range coder.
#include <gtest/gtest.h>

#include "compress/lossless/range_coder.hpp"
#include "util/rng.hpp"

namespace fedsz::lossless {
namespace {

TEST(RangeCoder, SingleBitRoundTrip) {
  for (const unsigned bit : {0u, 1u}) {
    RangeEncoder enc;
    BitProb prob;
    enc.encode_bit(prob, bit);
    const Bytes data = enc.finish();
    RangeDecoder dec({data.data(), data.size()});
    BitProb prob2;
    EXPECT_EQ(dec.decode_bit(prob2), bit);
  }
}

TEST(RangeCoder, RandomBitsRoundTrip) {
  Rng rng(1);
  std::vector<unsigned> bits(20000);
  for (auto& b : bits) b = static_cast<unsigned>(rng.uniform_index(2));
  RangeEncoder enc;
  BitProb prob;
  for (const unsigned b : bits) enc.encode_bit(prob, b);
  const Bytes data = enc.finish();
  RangeDecoder dec({data.data(), data.size()});
  BitProb prob2;
  for (const unsigned b : bits) EXPECT_EQ(dec.decode_bit(prob2), b);
}

TEST(RangeCoder, SkewedBitsCompressBelowOneBitEach) {
  Rng rng(3);
  std::vector<unsigned> bits(50000);
  for (auto& b : bits) b = rng.uniform() < 0.02 ? 1u : 0u;
  RangeEncoder enc;
  BitProb prob;
  for (const unsigned b : bits) enc.encode_bit(prob, b);
  const Bytes data = enc.finish();
  // Entropy ~0.14 bits/symbol; adaptive coder should get well under 1/2.
  EXPECT_LT(data.size(), bits.size() / 16);
  RangeDecoder dec({data.data(), data.size()});
  BitProb prob2;
  for (const unsigned b : bits) ASSERT_EQ(dec.decode_bit(prob2), b);
}

TEST(RangeCoder, DirectBitsRoundTrip) {
  Rng rng(5);
  std::vector<std::pair<std::uint32_t, unsigned>> values;
  RangeEncoder enc;
  for (int i = 0; i < 5000; ++i) {
    const unsigned count = 1 + static_cast<unsigned>(rng.uniform_index(24));
    const std::uint32_t v =
        static_cast<std::uint32_t>(rng.next_u64()) & ((1u << count) - 1);
    values.emplace_back(v, count);
    enc.encode_direct(v, count);
  }
  const Bytes data = enc.finish();
  RangeDecoder dec({data.data(), data.size()});
  for (const auto& [v, count] : values) EXPECT_EQ(dec.decode_direct(count), v);
}

TEST(RangeCoder, BitTreeRoundTrip) {
  Rng rng(7);
  std::vector<BitProb> enc_probs(256), dec_probs(256);
  std::vector<std::uint32_t> values(10000);
  for (auto& v : values) v = static_cast<std::uint32_t>(rng.uniform_index(256));
  RangeEncoder enc;
  for (const auto v : values) enc.encode_tree(enc_probs, 8, v);
  const Bytes data = enc.finish();
  RangeDecoder dec({data.data(), data.size()});
  for (const auto v : values) EXPECT_EQ(dec.decode_tree(dec_probs, 8), v);
}

TEST(RangeCoder, BitTreeAdaptsToSkewedSymbols) {
  std::vector<BitProb> enc_probs(16);
  RangeEncoder enc;
  for (int i = 0; i < 20000; ++i) enc.encode_tree(enc_probs, 4, 5);
  const Bytes data = enc.finish();
  EXPECT_LT(data.size(), 20000u / 8);  // far below 4 bits/symbol
  std::vector<BitProb> dec_probs(16);
  RangeDecoder dec({data.data(), data.size()});
  for (int i = 0; i < 20000; ++i) ASSERT_EQ(dec.decode_tree(dec_probs, 4), 5u);
}

TEST(RangeCoder, MixedOperationsRoundTrip) {
  Rng rng(9);
  RangeEncoder enc;
  BitProb flag;
  std::vector<BitProb> enc_tree(64);
  std::vector<std::pair<int, std::uint32_t>> script;
  for (int i = 0; i < 3000; ++i) {
    const int op = static_cast<int>(rng.uniform_index(3));
    if (op == 0) {
      const unsigned b = static_cast<unsigned>(rng.uniform_index(2));
      enc.encode_bit(flag, b);
      script.emplace_back(0, b);
    } else if (op == 1) {
      const std::uint32_t v =
          static_cast<std::uint32_t>(rng.uniform_index(1 << 12));
      enc.encode_direct(v, 12);
      script.emplace_back(1, v);
    } else {
      const std::uint32_t v =
          static_cast<std::uint32_t>(rng.uniform_index(64));
      enc.encode_tree(enc_tree, 6, v);
      script.emplace_back(2, v);
    }
  }
  const Bytes data = enc.finish();
  RangeDecoder dec({data.data(), data.size()});
  BitProb flag2;
  std::vector<BitProb> dec_tree(64);
  for (const auto& [op, v] : script) {
    if (op == 0) {
      EXPECT_EQ(dec.decode_bit(flag2), v);
    } else if (op == 1) {
      EXPECT_EQ(dec.decode_direct(12), v);
    } else {
      EXPECT_EQ(dec.decode_tree(dec_tree, 6), v);
    }
  }
}

TEST(RangeCoder, EmptyStreamFinishes) {
  RangeEncoder enc;
  const Bytes data = enc.finish();
  EXPECT_EQ(data.size(), 5u);  // flush writes exactly 5 bytes
}

}  // namespace
}  // namespace fedsz::lossless

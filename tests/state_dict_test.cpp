// Tests for StateDict — the torch state_dict analogue FedSZ operates on.
#include <gtest/gtest.h>

#include "tensor/state_dict.hpp"

namespace fedsz {
namespace {

StateDict sample_dict() {
  StateDict dict;
  dict.set("conv.weight", Tensor::from_data({2, 2}, {1, 2, 3, 4}));
  dict.set("conv.bias", Tensor::from_data({2}, {0.5f, -0.5f}));
  dict.set("bn.running_mean", Tensor::from_data({2}, {0.1f, 0.2f}));
  return dict;
}

TEST(StateDict, PreservesInsertionOrder) {
  const StateDict dict = sample_dict();
  ASSERT_EQ(dict.size(), 3u);
  EXPECT_EQ(dict.entries()[0].first, "conv.weight");
  EXPECT_EQ(dict.entries()[1].first, "conv.bias");
  EXPECT_EQ(dict.entries()[2].first, "bn.running_mean");
}

TEST(StateDict, SetOverwritesExistingKeepingPosition) {
  StateDict dict = sample_dict();
  dict.set("conv.bias", Tensor::from_data({2}, {9, 9}));
  EXPECT_EQ(dict.size(), 3u);
  EXPECT_EQ(dict.entries()[1].first, "conv.bias");
  EXPECT_EQ(dict.get("conv.bias")[0], 9.0f);
}

TEST(StateDict, GetMissingThrows) {
  const StateDict dict = sample_dict();
  EXPECT_THROW(dict.get("nope"), InvalidArgument);
  EXPECT_FALSE(dict.contains("nope"));
  EXPECT_TRUE(dict.contains("conv.weight"));
}

TEST(StateDict, TotalCounts) {
  const StateDict dict = sample_dict();
  EXPECT_EQ(dict.total_parameters(), 8u);
  EXPECT_EQ(dict.total_bytes(), 32u);
}

TEST(StateDict, EqualsChecksNamesShapesValues) {
  const StateDict a = sample_dict();
  StateDict b = sample_dict();
  EXPECT_TRUE(a.equals(b));
  b.get_mutable("conv.weight")[0] = 42.0f;
  EXPECT_FALSE(a.equals(b));
}

TEST(StateDict, EqualsDetectsOrderDifference) {
  StateDict a, b;
  a.set("x", Tensor::from_data({1}, {1}));
  a.set("y", Tensor::from_data({1}, {2}));
  b.set("y", Tensor::from_data({1}, {2}));
  b.set("x", Tensor::from_data({1}, {1}));
  EXPECT_FALSE(a.equals(b));
}

TEST(StateDict, AddScaledIsFedAvgStep) {
  StateDict acc = sample_dict().zeros_like();
  acc.add_scaled(sample_dict(), 0.25f);
  acc.add_scaled(sample_dict(), 0.75f);
  EXPECT_TRUE(acc.equals(sample_dict()));
}

TEST(StateDict, AddScaledValidatesStructure) {
  StateDict a = sample_dict();
  StateDict b;
  b.set("other", Tensor({1}));
  EXPECT_THROW(a.add_scaled(b, 1.0f), InvalidArgument);
}

TEST(StateDict, ScaleMultipliesEverything) {
  StateDict dict = sample_dict();
  dict.scale(2.0f);
  EXPECT_EQ(dict.get("conv.weight")[3], 8.0f);
  EXPECT_EQ(dict.get("bn.running_mean")[0], 0.2f);
}

TEST(StateDict, ZerosLikeKeepsStructure) {
  const StateDict dict = sample_dict();
  const StateDict zeros = dict.zeros_like();
  EXPECT_EQ(zeros.size(), dict.size());
  EXPECT_TRUE(zeros.get("conv.weight").same_shape(dict.get("conv.weight")));
  EXPECT_EQ(zeros.get("conv.weight")[0], 0.0f);
}

TEST(StateDict, SerializeRoundTripIsExact) {
  const StateDict dict = sample_dict();
  const Bytes bytes = dict.serialize();
  const StateDict back = StateDict::deserialize({bytes.data(), bytes.size()});
  EXPECT_TRUE(dict.equals(back));
}

TEST(StateDict, SerializeEmptyDict) {
  const StateDict dict;
  const Bytes bytes = dict.serialize();
  const StateDict back = StateDict::deserialize({bytes.data(), bytes.size()});
  EXPECT_TRUE(back.empty());
}

TEST(StateDict, SerializePreservesScalarTensors) {
  StateDict dict;
  Tensor scalar;
  scalar[0] = 7.0f;
  dict.set("num_batches_tracked", scalar);
  const Bytes bytes = dict.serialize();
  const StateDict back = StateDict::deserialize({bytes.data(), bytes.size()});
  EXPECT_EQ(back.get("num_batches_tracked").rank(), 0u);
  EXPECT_EQ(back.get("num_batches_tracked")[0], 7.0f);
}

TEST(StateDict, DeserializeRejectsTruncated) {
  const Bytes bytes = sample_dict().serialize();
  ByteSpan truncated{bytes.data(), bytes.size() - 3};
  EXPECT_THROW(StateDict::deserialize(truncated), CorruptStream);
}

TEST(StateDict, DeserializeRejectsTrailingGarbage) {
  Bytes bytes = sample_dict().serialize();
  bytes.push_back(0xFF);
  EXPECT_THROW(StateDict::deserialize({bytes.data(), bytes.size()}),
               CorruptStream);
}

TEST(StateDict, SerializedSizeIsPredictable) {
  StateDict dict;
  dict.set("w", Tensor({100}));
  // 4 (count) + (1+1 name) + 1 (rank) + 1 (dim varint) + 400 payload
  EXPECT_EQ(dict.serialize().size(), 4u + 2u + 1u + 1u + 400u);
}

}  // namespace
}  // namespace fedsz

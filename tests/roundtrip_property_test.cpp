// Property-based round-trip test for the FedSZ pipeline, in the style of
// small-model PBT (generate many tiny random inputs, assert a strong
// invariant on each): randomized StateDicts — random entry names, shapes,
// codec ids, bounds, chunk sizes, thresholds and parallelism — must satisfy
//
//   decompress(compress(dict)) preserves names and shapes,
//   every lossless-partition entry round-trips byte-identically,
//   every lossy-partition entry stays within the resolved error bound
//   (for codecs that guarantee a pointwise bound), and
//   the emitted bitstream does not depend on the parallelism setting.
//
// Failures print the iteration index; the generator is seeded, so a failing
// case replays deterministically.
#include <gtest/gtest.h>

#include <cmath>
#include <iterator>
#include <string>
#include <vector>

#include "core/fedsz.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace fedsz::core {
namespace {

Shape random_shape(Rng& rng) {
  const std::size_t rank = 1 + rng.uniform_index(3);
  Shape shape;
  for (std::size_t d = 0; d < rank; ++d)
    shape.push_back(1 + static_cast<std::int64_t>(rng.uniform_index(16)));
  return shape;
}

Tensor random_tensor(Rng& rng) {
  Shape shape = random_shape(rng);
  std::vector<float> values(shape_numel(shape));
  const double scale = std::pow(10.0, rng.uniform(-2.0, 2.0));
  if (rng.uniform() < 0.1) {
    // Occasional constant tensor: REL bound resolves to epsilon 0.
    const float v = static_cast<float>(scale * rng.normal());
    for (float& x : values) x = v;
  } else {
    for (float& x : values) x = static_cast<float>(scale * rng.normal());
  }
  return Tensor::from_data(std::move(shape), std::move(values));
}

std::string random_name(Rng& rng, std::size_t index) {
  static const char* kSuffixes[] = {".weight",       ".bias",
                                    ".weight_v",     ".running_mean",
                                    ".scale",        ".weight_scale"};
  return "layer" + std::to_string(index) +
         kSuffixes[rng.uniform_index(std::size(kSuffixes))];
}

FedSzConfig random_config(Rng& rng) {
  FedSzConfig config;
  const auto lossy_codecs = lossy::all_lossy_codecs();
  const auto lossless_codecs = lossless::all_lossless_codecs();
  config.lossy_id = lossy_codecs[rng.uniform_index(lossy_codecs.size())]->id();
  config.lossless_id =
      lossless_codecs[rng.uniform_index(lossless_codecs.size())]->id();
  EXPECT_TRUE(
      lossy::is_lossy_id(static_cast<std::uint8_t>(config.lossy_id)));
  EXPECT_TRUE(lossless::is_lossless_id(
      static_cast<std::uint8_t>(config.lossless_id)));
  const double exponent = rng.uniform(-4.0, -1.0);
  config.bound = rng.uniform() < 0.5
                     ? lossy::ErrorBound::relative(std::pow(10.0, exponent))
                     : lossy::ErrorBound::absolute(std::pow(10.0, exponent));
  // Tiny chunks on tiny tensors: every chunk-edge case (single element,
  // exact-fit, ragged tail) appears within a few dozen iterations.
  config.chunk_elements = 1 + rng.uniform_index(900);
  static const std::size_t kThresholds[] = {0, 10, 1000};
  config.lossy_threshold = kThresholds[rng.uniform_index(3)];
  static const std::size_t kParallelism[] = {1, 2, 4};
  config.parallelism = kParallelism[rng.uniform_index(3)];
  return config;
}

TEST(RoundTripProperty, RandomStateDictsSatisfyTheFedSzContract) {
  Rng rng(20260731);
  const int iterations = 60;
  for (int iter = 0; iter < iterations; ++iter) {
    SCOPED_TRACE("iteration " + std::to_string(iter));
    const FedSzConfig config = random_config(rng);
    const bool strictly_bounded =
        lossy::lossy_codec(config.lossy_id).strictly_bounded();

    StateDict dict;
    const std::size_t entries = 1 + rng.uniform_index(6);
    for (std::size_t i = 0; i < entries; ++i)
      dict.set(random_name(rng, i), random_tensor(rng));

    const FedSz fedsz{config};
    CompressionStats stats;
    const Bytes blob = fedsz.compress(dict, &stats);
    const StateDict back = fedsz.decompress({blob.data(), blob.size()});

    ASSERT_EQ(back.size(), dict.size());
    std::size_t expected_chunks = 0;
    for (const auto& [name, tensor] : dict) {
      ASSERT_TRUE(back.contains(name)) << name;
      const Tensor& decoded = back.get(name);
      ASSERT_TRUE(decoded.same_shape(tensor)) << name;
      if (is_lossy_entry(name, tensor.numel(), config.lossy_threshold)) {
        expected_chunks += fedsz.chunk_count(tensor.numel());
        if (strictly_bounded) {
          const double eps = config.bound.absolute_for(tensor.span());
          const double err =
              stats::max_abs_error(tensor.span(), decoded.span());
          EXPECT_LE(err, eps * (1 + 1e-5) + 1e-12) << name;
        }
      } else {
        // Lossless partition: byte-identical reconstruction.
        EXPECT_TRUE(decoded.equals(tensor)) << name;
      }
    }
    EXPECT_EQ(stats.lossy_chunks, expected_chunks);
    EXPECT_EQ(stats.compressed_bytes, blob.size());
    EXPECT_EQ(stats.lossy_original_bytes + stats.lossless_original_bytes,
              stats.original_bytes);

    // The container must not depend on the worker count: re-encode with a
    // different parallelism setting and demand identical bytes.
    if (iter % 4 == 0) {
      FedSzConfig other = config;
      other.parallelism = config.parallelism == 1 ? 4 : 1;
      EXPECT_EQ(FedSz{other}.compress(dict), blob);
    }
  }
}

}  // namespace
}  // namespace fedsz::core

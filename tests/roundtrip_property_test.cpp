// Property-based round-trip test for the FedSZ pipeline, in the style of
// small-model PBT (generate many tiny random inputs, assert a strong
// invariant on each): randomized StateDicts — random entry names, shapes,
// codec ids, bounds, chunk sizes, thresholds and parallelism — must satisfy
//
//   decompress(compress(dict)) preserves names and shapes,
//   every lossless-partition entry round-trips byte-identically,
//   every lossy-partition entry stays within the resolved error bound
//   (for codecs that guarantee a pointwise bound), and
//   the emitted bitstream does not depend on the parallelism setting.
//
// A second property covers the v3 per-tensor-plan container: a randomized
// CompressionPolicy assigns every tensor its own path/codec/bound (mixed
// codecs and bounds in one stream), and the same invariants must hold plan
// by plan.
//
// Failures print the iteration index; the generator is seeded, so a failing
// case replays deterministically.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <iterator>
#include <string>
#include <vector>

#include "compress/lossy/quantizer.hpp"
#include "core/fedsz.hpp"
#include "core/policy.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace fedsz::core {
namespace {

Shape random_shape(Rng& rng) {
  const std::size_t rank = 1 + rng.uniform_index(3);
  Shape shape;
  for (std::size_t d = 0; d < rank; ++d)
    shape.push_back(1 + static_cast<std::int64_t>(rng.uniform_index(16)));
  return shape;
}

Tensor random_tensor(Rng& rng) {
  Shape shape = random_shape(rng);
  std::vector<float> values(shape_numel(shape));
  const double scale = std::pow(10.0, rng.uniform(-2.0, 2.0));
  if (rng.uniform() < 0.1) {
    // Occasional constant tensor: REL bound resolves to epsilon 0.
    const float v = static_cast<float>(scale * rng.normal());
    for (float& x : values) x = v;
  } else {
    for (float& x : values) x = static_cast<float>(scale * rng.normal());
  }
  return Tensor::from_data(std::move(shape), std::move(values));
}

std::string random_name(Rng& rng, std::size_t index) {
  static const char* kSuffixes[] = {".weight",       ".bias",
                                    ".weight_v",     ".running_mean",
                                    ".scale",        ".weight_scale"};
  return "layer" + std::to_string(index) +
         kSuffixes[rng.uniform_index(std::size(kSuffixes))];
}

FedSzConfig random_config(Rng& rng) {
  FedSzConfig config;
  const auto lossy_codecs = lossy::all_lossy_codecs();
  const auto lossless_codecs = lossless::all_lossless_codecs();
  config.lossy_id = lossy_codecs[rng.uniform_index(lossy_codecs.size())]->id();
  config.lossless_id =
      lossless_codecs[rng.uniform_index(lossless_codecs.size())]->id();
  EXPECT_TRUE(
      lossy::is_lossy_id(static_cast<std::uint8_t>(config.lossy_id)));
  EXPECT_TRUE(lossless::is_lossless_id(
      static_cast<std::uint8_t>(config.lossless_id)));
  const double exponent = rng.uniform(-4.0, -1.0);
  config.bound = rng.uniform() < 0.5
                     ? lossy::ErrorBound::relative(std::pow(10.0, exponent))
                     : lossy::ErrorBound::absolute(std::pow(10.0, exponent));
  // Tiny chunks on tiny tensors: every chunk-edge case (single element,
  // exact-fit, ragged tail) appears within a few dozen iterations.
  config.chunk_elements = 1 + rng.uniform_index(900);
  static const std::size_t kThresholds[] = {0, 10, 1000};
  config.lossy_threshold = kThresholds[rng.uniform_index(3)];
  static const std::size_t kParallelism[] = {1, 2, 4};
  config.parallelism = kParallelism[rng.uniform_index(3)];
  return config;
}

TEST(RoundTripProperty, RandomStateDictsSatisfyTheFedSzContract) {
  Rng rng(20260731);
  const int iterations = 60;
  for (int iter = 0; iter < iterations; ++iter) {
    SCOPED_TRACE("iteration " + std::to_string(iter));
    const FedSzConfig config = random_config(rng);
    const bool strictly_bounded =
        lossy::lossy_codec(config.lossy_id).strictly_bounded();

    StateDict dict;
    const std::size_t entries = 1 + rng.uniform_index(6);
    for (std::size_t i = 0; i < entries; ++i)
      dict.set(random_name(rng, i), random_tensor(rng));

    const FedSz fedsz{config};
    CompressionStats stats;
    const Bytes blob = fedsz.compress(dict, &stats);
    const StateDict back = fedsz.decompress({blob.data(), blob.size()});

    ASSERT_EQ(back.size(), dict.size());
    std::size_t expected_chunks = 0;
    for (const auto& [name, tensor] : dict) {
      ASSERT_TRUE(back.contains(name)) << name;
      const Tensor& decoded = back.get(name);
      ASSERT_TRUE(decoded.same_shape(tensor)) << name;
      if (is_lossy_entry(name, tensor.numel(), config.lossy_threshold)) {
        expected_chunks += fedsz.chunk_count(tensor.numel());
        if (strictly_bounded) {
          const double eps = config.bound.absolute_for(tensor.span());
          const double err =
              stats::max_abs_error(tensor.span(), decoded.span());
          EXPECT_LE(err, eps * (1 + 1e-5) + 1e-12) << name;
        }
      } else {
        // Lossless partition: byte-identical reconstruction.
        EXPECT_TRUE(decoded.equals(tensor)) << name;
      }
    }
    EXPECT_EQ(stats.lossy_chunks, expected_chunks);
    EXPECT_EQ(stats.compressed_bytes, blob.size());
    EXPECT_EQ(stats.lossy_original_bytes + stats.lossless_original_bytes,
              stats.original_bytes);

    // The container must not depend on the worker count: re-encode with a
    // different parallelism setting and demand identical bytes.
    if (iter % 4 == 0) {
      FedSzConfig other = config;
      other.parallelism = config.parallelism == 1 ? 4 : 1;
      EXPECT_EQ(FedSz{other}.compress(dict), blob);
    }
  }
}

/// Deterministic per-tensor randomized planner: the plan is a pure function
/// of (seed, tensor name), so the test can recompute any tensor's plan when
/// checking its reconstruction. Mixes all four lossy codecs, absolute and
/// relative bounds, and the raw path within a single stream.
class RandomPlanPolicy final : public CompressionPolicy {
 public:
  explicit RandomPlanPolicy(std::uint64_t seed) : seed_(seed) {}
  std::string name() const override { return "random-plan"; }

  TensorPlan plan(const std::string& name, const Tensor&,
                  const EncodeContext&) const override {
    Rng rng(seed_ ^ std::hash<std::string>{}(name));
    const double which = rng.uniform();
    if (which < 0.2) return TensorPlan::lossless();
    if (which < 0.35) return TensorPlan::raw();
    if (which < 0.55) {
      // Sparse path: random threshold mode and bit-width cap, both bound
      // flavors, mixed into the same v3 stream as the lossy codecs.
      const double sparsity =
          rng.uniform() < 0.4 ? 0.0 : rng.uniform(0.5, 0.99);
      const unsigned bits =
          rng.uniform() < 0.4 ? 0u
                              : 1u + static_cast<unsigned>(
                                         rng.uniform_index(16));
      const double sparse_exp = rng.uniform(-4.0, -1.0);
      const lossy::ErrorBound sparse_bound =
          rng.uniform() < 0.5
              ? lossy::ErrorBound::relative(std::pow(10.0, sparse_exp))
              : lossy::ErrorBound::absolute(std::pow(10.0, sparse_exp));
      return TensorPlan::sparse(sparse_bound, sparsity, bits);
    }
    const auto codecs = lossy::all_lossy_codecs();
    const lossy::LossyId id = codecs[rng.uniform_index(codecs.size())]->id();
    const double exponent = rng.uniform(-4.0, -1.0);
    const lossy::ErrorBound bound =
        rng.uniform() < 0.5
            ? lossy::ErrorBound::relative(std::pow(10.0, exponent))
            : lossy::ErrorBound::absolute(std::pow(10.0, exponent));
    return TensorPlan::lossy(id, bound);
  }

 private:
  std::uint64_t seed_;
};

TEST(RoundTripProperty, RandomPerTensorPlansSatisfyTheV3Contract) {
  Rng rng(911);
  const int iterations = 40;
  for (int iter = 0; iter < iterations; ++iter) {
    SCOPED_TRACE("iteration " + std::to_string(iter));
    const auto policy =
        std::make_shared<RandomPlanPolicy>(0xBEEFull * (iter + 1));
    FedSzConfig config;
    config.policy = policy;
    config.chunk_elements = 1 + rng.uniform_index(700);
    static const std::size_t kParallelism[] = {1, 2, 4};
    config.parallelism = kParallelism[rng.uniform_index(3)];

    StateDict dict;
    const std::size_t entries = 1 + rng.uniform_index(6);
    for (std::size_t i = 0; i < entries; ++i)
      dict.set(random_name(rng, i), random_tensor(rng));

    const FedSz fedsz{config};
    CompressionStats stats;
    const Bytes blob = fedsz.compress(dict, &stats);
    CompressionStats decode_stats;
    const StateDict back =
        fedsz.decompress({blob.data(), blob.size()}, &decode_stats);

    ASSERT_EQ(back.size(), dict.size());
    std::size_t lossy_count = 0, lossless_count = 0, raw_count = 0;
    std::size_t sparse_count = 0;
    for (const auto& [name, tensor] : dict) {
      ASSERT_TRUE(back.contains(name)) << name;
      const Tensor& decoded = back.get(name);
      ASSERT_TRUE(decoded.same_shape(tensor)) << name;
      const TensorPlan plan = policy->plan(name, tensor, {});
      switch (plan.path) {
        case TensorPath::kLossy: {
          ++lossy_count;
          if (lossy::lossy_codec(plan.lossy_id).strictly_bounded()) {
            const double eps = plan.bound.absolute_for(tensor.span());
            const double err =
                stats::max_abs_error(tensor.span(), decoded.span());
            EXPECT_LE(err, eps * (1 + 1e-5) + 1e-12) << name;
          }
          break;
        }
        case TensorPath::kLossless:
          ++lossless_count;
          EXPECT_TRUE(decoded.equals(tensor)) << name;
          break;
        case TensorPath::kRaw:
          ++raw_count;
          EXPECT_TRUE(decoded.equals(tensor)) << name;
          break;
        case TensorPath::kSparse: {
          ++sparse_count;
          // Every element either dropped (exactly zero) or a survivor
          // within the resolved bound.
          const double eps = std::max(plan.bound.absolute_for(tensor.span()),
                                      1e-300);
          const double tol = eps * (1 + 1e-5) + 1e-6;
          const FloatSpan orig = tensor.span();
          const FloatSpan dec = decoded.span();
          for (std::size_t i = 0; i < orig.size(); ++i) {
            if (dec[i] == 0.0f) continue;
            EXPECT_LE(std::fabs(static_cast<double>(dec[i]) -
                                static_cast<double>(orig[i])),
                      tol)
                << name << "[" << i << "]";
          }
          break;
        }
      }
    }
    EXPECT_EQ(stats.lossy_tensors, lossy_count);
    EXPECT_EQ(stats.lossless_tensors, lossless_count);
    EXPECT_EQ(stats.raw_tensors, raw_count);
    EXPECT_EQ(stats.sparse_tensors, sparse_count);
    EXPECT_EQ(decode_stats.lossy_tensors, lossy_count);
    EXPECT_EQ(decode_stats.raw_tensors, raw_count);
    EXPECT_EQ(decode_stats.sparse_tensors, sparse_count);
    // The decoder recovers the byte accounting from the stream itself.
    EXPECT_EQ(decode_stats.lossy_compressed_bytes,
              stats.lossy_compressed_bytes);
    EXPECT_EQ(decode_stats.lossless_compressed_bytes,
              stats.lossless_compressed_bytes);
    EXPECT_EQ(decode_stats.lossy_original_bytes, stats.lossy_original_bytes);
    EXPECT_EQ(decode_stats.lossless_original_bytes,
              stats.lossless_original_bytes);
    EXPECT_EQ(decode_stats.sparse_original_bytes, stats.sparse_original_bytes);
    EXPECT_EQ(decode_stats.sparse_kept_elements, stats.sparse_kept_elements);
    EXPECT_EQ(decode_stats.sparse_total_elements,
              stats.sparse_total_elements);
    EXPECT_EQ(stats.compressed_bytes, blob.size());
    EXPECT_EQ(stats.lossy_original_bytes + stats.lossless_original_bytes +
                  stats.raw_original_bytes + stats.sparse_original_bytes,
              stats.original_bytes);

    // Plan-driven streams are as parallelism-independent as uniform ones.
    if (iter % 4 == 0) {
      FedSzConfig other = config;
      other.parallelism = config.parallelism == 1 ? 4 : 1;
      EXPECT_EQ(FedSz{other}.compress(dict), blob);
    }
  }
}

// Scalar reference for the branchless inline LinearQuantizer: the
// historical out-of-line implementation, double op for double op (scale by
// the precomputed reciprocal, reject on the pre-round magnitude test,
// reconstruct as bin * 2eps). The vectorization-friendly rewrite must agree
// bit-for-bit on every residual, since its codes and midpoints feed streams
// pinned by the golden fixtures.
struct ScalarQuantizerReference {
  double eps;
  std::uint32_t radius;

  std::uint32_t quantize(double residual) const {
    const double clamped_eps = eps > 0.0 ? eps : 1e-300;
    const double scaled = residual * (1.0 / (2.0 * clamped_eps));
    if (!(std::fabs(scaled) < static_cast<double>(radius) - 1.0))
      return lossy::LinearQuantizer::kUnpredictable;
    const auto bin = static_cast<std::int64_t>(std::llround(scaled));
    const std::int64_t code = bin + static_cast<std::int64_t>(radius);
    if (code < 1 || code >= 2 * static_cast<std::int64_t>(radius))
      return lossy::LinearQuantizer::kUnpredictable;
    return static_cast<std::uint32_t>(code);
  }

  double reconstruct(std::uint32_t code) const {
    const double clamped_eps = eps > 0.0 ? eps : 1e-300;
    const auto bin =
        static_cast<std::int64_t>(code) - static_cast<std::int64_t>(radius);
    return static_cast<double>(bin) * 2.0 * clamped_eps;
  }
};

TEST(RoundTripProperty, QuantizerMatchesScalarReferenceBitExactly) {
  Rng rng(0x5CA1A);
  static const std::uint32_t kRadii[] = {2, 5, 256,
                                         lossy::LinearQuantizer::kDefaultRadius};
  for (int iter = 0; iter < 200; ++iter) {
    SCOPED_TRACE("iteration " + std::to_string(iter));
    const double eps =
        rng.uniform() < 0.05 ? 0.0 : std::pow(10.0, rng.uniform(-8.0, 1.0));
    const std::uint32_t radius = kRadii[rng.uniform_index(std::size(kRadii))];
    const lossy::LinearQuantizer quantizer(eps, radius);
    const ScalarQuantizerReference reference{eps, radius};
    for (int k = 0; k < 64; ++k) {
      // Residual magnitudes spanning well inside to well outside the code
      // range, plus exact zero and sign flips.
      double residual =
          std::pow(10.0, rng.uniform(-10.0, 6.0)) * (k % 2 ? -1.0 : 1.0);
      if (k == 0) residual = 0.0;
      const std::uint32_t code = quantizer.quantize(residual);
      ASSERT_EQ(code, reference.quantize(residual))
          << "eps=" << eps << " radius=" << radius << " r=" << residual;
      if (code != lossy::LinearQuantizer::kUnpredictable) {
        ASSERT_EQ(quantizer.reconstruct(code), reference.reconstruct(code))
            << "eps=" << eps << " radius=" << radius << " code=" << code;
      }
    }
  }
}

TEST(RoundTripProperty, DirtyArenaReuseIsByteIdenticalAcrossSizes) {
  // Every codec encode on this thread shares one EncodeArena whose buffers
  // only ever grow. Interleaving encodes of wildly different sizes leaves
  // stale bytes and oversized capacities behind; re-encoding any input must
  // still produce the bytes a pristine encode produced, both through the
  // one-shot compress() and through compress_into() with a dirty `out`.
  Rng rng(0xD127A);
  const auto codecs = lossy::all_lossy_codecs();
  struct Recorded {
    const lossy::LossyCodec* codec;
    std::vector<float> values;
    lossy::ErrorBound bound;
    Bytes pristine;
  };
  std::vector<Recorded> recorded;
  for (int iter = 0; iter < 24; ++iter) {
    SCOPED_TRACE("iteration " + std::to_string(iter));
    std::vector<float> values(1 + rng.uniform_index(6000));
    const double scale = std::pow(10.0, rng.uniform(-2.0, 2.0));
    for (float& x : values) x = static_cast<float>(scale * rng.normal());
    const double exponent = rng.uniform(-4.0, -1.0);
    const lossy::ErrorBound bound =
        rng.uniform() < 0.5
            ? lossy::ErrorBound::relative(std::pow(10.0, exponent))
            : lossy::ErrorBound::absolute(std::pow(10.0, exponent));
    const lossy::LossyCodec* codec = codecs[rng.uniform_index(codecs.size())];
    recorded.push_back({codec, std::move(values), bound, Bytes{}});
    Recorded& r = recorded.back();
    r.pristine = r.codec->compress({r.values.data(), r.values.size()}, bound);
  }
  // Re-encode everything in reverse order: by now the arena has been dirtied
  // by every later (often larger) input.
  Bytes reused;  // deliberately never cleared between codecs
  for (auto it = recorded.rbegin(); it != recorded.rend(); ++it) {
    const FloatSpan span{it->values.data(), it->values.size()};
    EXPECT_EQ(it->codec->compress(span, it->bound), it->pristine);
    it->codec->compress_into(span, it->bound, reused);
    EXPECT_EQ(reused, it->pristine);
  }
}

TEST(RoundTripProperty, ReusedWorkspaceEmitsIdenticalBytesAcrossThreadCounts) {
  // The FedSz encode workspace (chunk payload slots, metadata/frame
  // writers) is leased and re-used across compress() calls. Dirty it with
  // differently-shaped dicts between encodes and demand the same bytes as a
  // fresh instance, at every parallelism setting.
  Rng rng(0xF1EE7);
  for (int iter = 0; iter < 8; ++iter) {
    SCOPED_TRACE("iteration " + std::to_string(iter));
    FedSzConfig config = random_config(rng);
    StateDict dict, other;
    const std::size_t entries = 1 + rng.uniform_index(5);
    for (std::size_t i = 0; i < entries; ++i)
      dict.set(random_name(rng, i), random_tensor(rng));
    for (std::size_t i = 0; i < entries + 2; ++i)
      other.set(random_name(rng, i), random_tensor(rng));

    config.parallelism = 1;
    const Bytes reference = FedSz{config}.compress(dict);
    for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                      std::size_t{4}}) {
      config.parallelism = threads;
      const FedSz fedsz{config};
      EXPECT_EQ(fedsz.compress(dict), reference) << threads;
      (void)fedsz.compress(other);  // dirty the leased workspace
      EXPECT_EQ(fedsz.compress(dict), reference) << threads;
    }
  }
}

}  // namespace
}  // namespace fedsz::core

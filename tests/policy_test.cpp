// Tests for the CompressionPolicy layer: ThresholdPolicy's regression pin
// against the pre-policy v2 writer (same partition, same bytes), the
// layerwise/schedule/magnitude policies' plans, the raw path, the v3
// per-tensor-plan container (round trip, determinism, corruption handling),
// and EncodeContext plumbing through a federation run.
#include <gtest/gtest.h>

#include <cstring>

#include "core/fl/coordinator.hpp"
#include "core/policy.hpp"
#include "core/update_codec.hpp"
#include "data/synthetic.hpp"
#include "util/bytebuffer.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace fedsz::core {
namespace {

Tensor random_tensor(Shape shape, Rng& rng, float scale = 1.0f) {
  std::vector<float> values(shape_numel(shape));
  for (float& v : values) v = scale * static_cast<float>(rng.normal());
  return Tensor::from_data(std::move(shape), std::move(values));
}

/// A dict exercising both partitions: two large weights (lossy under the
/// default rule), a small weight, a bias, and BatchNorm stats.
StateDict mixed_dict(Rng& rng) {
  StateDict dict;
  dict.set("features.0.weight", random_tensor({3000}, rng));
  dict.set("classifier.weight", random_tensor({2000}, rng, 0.1f));
  dict.set("small.weight", random_tensor({20}, rng));
  dict.set("features.0.bias", random_tensor({16}, rng));
  dict.set("bn.running_mean", random_tensor({16}, rng));
  return dict;
}

std::uint16_t stream_version(const Bytes& blob) {
  EXPECT_GE(blob.size(), 6u);
  return static_cast<std::uint16_t>(blob[4]) |
         (static_cast<std::uint16_t>(blob[5]) << 8);
}

double max_error_vs(const StateDict& a, const StateDict& b,
                    const std::string& name) {
  return stats::max_abs_error(a.get(name).span(), b.get(name).span());
}

// ---- ThresholdPolicy: Algorithm 1 and the byte-stability pin ----

TEST(ThresholdPolicyTest, PlanMatchesAlgorithmOnePartition) {
  const auto policy = make_threshold_policy({});
  Rng rng(1);
  const StateDict dict = mixed_dict(rng);
  for (const auto& [name, tensor] : dict) {
    const TensorPlan plan = policy->plan(name, tensor, {});
    const bool lossy = is_lossy_entry(name, tensor.numel(), 1000);
    EXPECT_EQ(plan.path == TensorPath::kLossy, lossy) << name;
  }
}

/// Reference reimplementation of the pre-policy v2 writer (serial, one
/// codec, one bound), mirroring make_v1_stream in chunk_container_test: an
/// independent double-entry pin on the default wire bytes.
Bytes make_reference_v2_stream(const StateDict& dict,
                               const FedSzConfig& config) {
  const lossy::LossyCodec& lossy_codec = lossy::lossy_codec(config.lossy_id);
  const lossless::LosslessCodec& lossless_codec =
      lossless::lossless_codec(config.lossless_id);
  StateDict lossless_partition;
  ByteWriter w;
  const char magic[4] = {'F', 'S', 'Z', '1'};
  w.put_bytes({reinterpret_cast<const std::uint8_t*>(magic), 4});
  w.put_u16(2);
  w.put_u8(static_cast<std::uint8_t>(config.lossy_id));
  w.put_u8(static_cast<std::uint8_t>(config.lossless_id));
  w.put_u8(static_cast<std::uint8_t>(config.bound.mode));
  w.put_f64(config.bound.value);
  w.put_varint(config.chunk_elements);
  std::vector<const StateDict::Entry*> lossy_entries;
  for (const auto& entry : dict) {
    if (is_lossy_entry(entry.first, entry.second.numel(),
                       config.lossy_threshold))
      lossy_entries.push_back(&entry);
    else
      lossless_partition.set(entry.first, entry.second);
  }
  w.put_u32(static_cast<std::uint32_t>(lossy_entries.size()));
  for (const StateDict::Entry* entry : lossy_entries) {
    w.put_string(entry->first);
    const Shape& shape = entry->second.shape();
    w.put_u8(static_cast<std::uint8_t>(shape.size()));
    for (const std::int64_t d : shape)
      w.put_varint(static_cast<std::uint64_t>(d));
    const double eps =
        std::max(config.bound.absolute_for(entry->second.span()), 1e-300);
    w.put_f64(eps);
    const FloatSpan values = entry->second.span();
    const std::size_t chunks = ceil_div(values.size(), config.chunk_elements);
    w.put_varint(chunks);
    std::vector<Bytes> payloads(chunks);
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t begin = c * config.chunk_elements;
      const std::size_t len =
          std::min(config.chunk_elements, values.size() - begin);
      payloads[c] = lossy_codec.compress(values.subspan(begin, len),
                                         lossy::ErrorBound::absolute(eps));
      w.put_varint(payloads[c].size());
    }
    for (const Bytes& payload : payloads)
      w.put_bytes({payload.data(), payload.size()});
  }
  const Bytes serialized = lossless_partition.serialize();
  const Bytes lossless_payload =
      lossless_codec.compress({serialized.data(), serialized.size()});
  w.put_blob({lossless_payload.data(), lossless_payload.size()});
  return w.finish();
}

TEST(ThresholdPolicyTest, DefaultPolicyPinnedToPrePolicyV2Bytes) {
  Rng rng(2);
  const StateDict dict = mixed_dict(rng);
  FedSzConfig config;
  config.chunk_elements = 777;  // force multi-chunk tensors
  const Bytes blob = FedSz{config}.compress(dict);
  EXPECT_EQ(stream_version(blob), 2u);
  EXPECT_EQ(blob, make_reference_v2_stream(dict, config));
}

TEST(ThresholdPolicyTest, ExplicitThresholdPolicyEmitsTheSameBytes) {
  Rng rng(3);
  const StateDict dict = mixed_dict(rng);
  FedSzConfig implicit;
  FedSzConfig explicit_config;
  explicit_config.policy = make_threshold_policy(
      {implicit.lossy_id, implicit.bound, implicit.lossy_threshold});
  CompressionStats stats;
  const Bytes a = FedSz{implicit}.compress(dict, &stats);
  const Bytes b = FedSz{explicit_config}.compress(dict);
  EXPECT_EQ(a, b);
  EXPECT_EQ(stream_version(a), 2u);
  EXPECT_EQ(stats.lossy_tensors, 2u);
  EXPECT_EQ(stats.lossless_tensors, 3u);
  EXPECT_EQ(stats.raw_tensors, 0u);
  EXPECT_DOUBLE_EQ(stats.mean_bound_value, implicit.bound.value);
}

TEST(ThresholdPolicyTest, NonDefaultThresholdInPolicyUpgradesToV3) {
  // A policy whose partition disagrees with the config's Algorithm-1 default
  // cannot ride the uniform v2 container.
  Rng rng(4);
  const StateDict dict = mixed_dict(rng);
  FedSzConfig config;
  config.policy = make_threshold_policy({config.lossy_id, config.bound, 10});
  CompressionStats stats;
  const Bytes blob = FedSz{config}.compress(dict, &stats);
  EXPECT_EQ(stream_version(blob), 3u);
  EXPECT_EQ(stats.lossy_tensors, 3u);  // small.weight now routes lossy
  const StateDict back =
      FedSz{config}.decompress({blob.data(), blob.size()});
  ASSERT_EQ(back.size(), dict.size());
  EXPECT_TRUE(back.get("features.0.bias").equals(dict.get("features.0.bias")));
}

// ---- LayerwiseBoundPolicy ----

TEST(LayerwisePolicyTest, FirstMatchingRuleDecidesTheBound) {
  LayerwiseBoundConfig config;
  config.rules = {{"classifier", lossy::ErrorBound::relative(1e-4)},
                  {"features", lossy::ErrorBound::relative(1e-3)}};
  config.fallback = lossy::ErrorBound::relative(1e-2);
  const auto policy = make_layerwise_policy(config);
  Rng rng(5);
  const Tensor big = random_tensor({2000}, rng);
  EXPECT_DOUBLE_EQ(policy->plan("classifier.weight", big, {}).bound.value,
                   1e-4);
  EXPECT_DOUBLE_EQ(policy->plan("features.9.weight", big, {}).bound.value,
                   1e-3);
  EXPECT_DOUBLE_EQ(policy->plan("head.weight", big, {}).bound.value, 1e-2);
  EXPECT_EQ(policy->plan("features.bias", big, {}).path,
            TensorPath::kLossless);
}

TEST(LayerwisePolicyTest, PerTensorBoundsHoldThroughTheV3Container) {
  Rng rng(6);
  const StateDict dict = mixed_dict(rng);
  FedSzConfig config;
  LayerwiseBoundConfig layerwise;
  layerwise.rules = {{"classifier", lossy::ErrorBound::relative(1e-4)}};
  layerwise.fallback = lossy::ErrorBound::relative(1e-2);
  config.policy = make_layerwise_policy(layerwise);
  const FedSz fedsz{config};
  const Bytes blob = fedsz.compress(dict);
  EXPECT_EQ(stream_version(blob), 3u);
  const StateDict back = fedsz.decompress({blob.data(), blob.size()});
  const double tight_eps = lossy::ErrorBound::relative(1e-4).absolute_for(
      dict.get("classifier.weight").span());
  const double loose_eps = lossy::ErrorBound::relative(1e-2).absolute_for(
      dict.get("features.0.weight").span());
  EXPECT_LE(max_error_vs(dict, back, "classifier.weight"),
            tight_eps * (1 + 1e-5));
  EXPECT_LE(max_error_vs(dict, back, "features.0.weight"),
            loose_eps * (1 + 1e-5));
  EXPECT_TRUE(back.get("bn.running_mean").equals(dict.get("bn.running_mean")));
}

TEST(LayerwisePolicyTest, EmptyPatternRejected) {
  LayerwiseBoundConfig config;
  config.rules = {{"", lossy::ErrorBound::relative(1e-3)}};
  EXPECT_THROW(LayerwiseBoundPolicy{config}, InvalidArgument);
}

// ---- BoundSchedulePolicy ----

TEST(SchedulePolicyTest, BoundDecaysGeometricallyAndClampsAtFloor) {
  BoundScheduleConfig config;
  config.initial = 1e-2;
  config.factor = 0.5;
  config.floor = 1e-3;
  config.ceiling = 1e-1;
  const BoundSchedulePolicy policy{config};
  EXPECT_DOUBLE_EQ(policy.bound_at(0), 1e-2);
  EXPECT_DOUBLE_EQ(policy.bound_at(1), 5e-3);
  EXPECT_DOUBLE_EQ(policy.bound_at(2), 2.5e-3);
  EXPECT_DOUBLE_EQ(policy.bound_at(10), 1e-3);  // clamped
  EXPECT_DOUBLE_EQ(policy.bound_at(-3), 1e-2);  // negative rounds clamp to 0
}

TEST(SchedulePolicyTest, RoundContextChangesTheEmittedStream) {
  Rng rng(7);
  const StateDict dict = mixed_dict(rng);
  FedSzConfig config;
  BoundScheduleConfig schedule;
  schedule.initial = 1e-1;
  schedule.factor = 0.1;
  schedule.floor = 1e-5;
  config.policy = make_bound_schedule_policy(schedule);
  const FedSz fedsz{config};
  CompressionStats early, late;
  EncodeContext ctx;
  ctx.round = 0;
  const Bytes blob0 = fedsz.compress(dict, &early, ctx);
  ctx.round = 3;
  const Bytes blob3 = fedsz.compress(dict, &late, ctx);
  EXPECT_DOUBLE_EQ(early.mean_bound_value, 1e-1);
  EXPECT_DOUBLE_EQ(late.mean_bound_value, 1e-4);
  // A 1000x tighter bound must cost bytes.
  EXPECT_GT(blob3.size(), blob0.size());
  // Both streams still round-trip within their own bound.
  const StateDict back = fedsz.decompress({blob3.data(), blob3.size()});
  const double eps = lossy::ErrorBound::relative(1e-4).absolute_for(
      dict.get("features.0.weight").span());
  EXPECT_LE(max_error_vs(dict, back, "features.0.weight"),
            eps * (1 + 1e-5));
}

TEST(SchedulePolicyTest, DegenerateConfigsRejected) {
  BoundScheduleConfig bad_factor;
  bad_factor.factor = 0.0;
  EXPECT_THROW(BoundSchedulePolicy{bad_factor}, InvalidArgument);
  BoundScheduleConfig bad_clamp;
  bad_clamp.floor = 1e-2;
  bad_clamp.ceiling = 1e-3;
  EXPECT_THROW(BoundSchedulePolicy{bad_clamp}, InvalidArgument);
}

// ---- MagnitudeAwarePolicy ----

TEST(MagnitudePolicyTest, SmallUpdatesGetTighterBounds) {
  MagnitudeAwareConfig config;
  config.base = 1e-2;
  config.reference_rms = 1e-1;
  const auto policy = make_magnitude_aware_policy(config);
  Rng rng(8);
  const Tensor quiet = random_tensor({2000}, rng, 1e-3f);
  const Tensor loud = random_tensor({2000}, rng, 10.0f);
  const TensorPlan quiet_plan = policy->plan("a.weight", quiet, {});
  const TensorPlan loud_plan = policy->plan("b.weight", loud, {});
  ASSERT_EQ(quiet_plan.path, TensorPath::kLossy);
  ASSERT_EQ(loud_plan.path, TensorPath::kLossy);
  EXPECT_LT(quiet_plan.bound.value, loud_plan.bound.value);
  // Clamps: quiet is ~1e-2 of reference -> min_scale (0.1); loud is ~100x
  // reference -> max_scale (10).
  EXPECT_DOUBLE_EQ(quiet_plan.bound.value, config.base * config.min_scale);
  EXPECT_DOUBLE_EQ(loud_plan.bound.value, config.base * config.max_scale);
}

TEST(MagnitudePolicyTest, AllZeroUpdateRoutesLossless) {
  // A zero update reconstructs exactly and compresses to almost nothing on
  // the lossless path; lossy (or raw) would only add overhead.
  const auto policy = make_magnitude_aware_policy({});
  const Tensor zero = Tensor::zeros({2000});
  EXPECT_EQ(policy->plan("z.weight", zero, {}).path, TensorPath::kLossless);
}

// ---- raw path and the v3 container ----

/// Routes every lossy-eligible tensor raw — exercises the raw path without
/// depending on a built-in policy's heuristics.
class RawEverythingPolicy final : public CompressionPolicy {
 public:
  std::string name() const override { return "raw-everything"; }
  TensorPlan plan(const std::string& name, const Tensor& tensor,
                  const EncodeContext&) const override {
    if (is_lossy_entry(name, tensor.numel(), 1000)) return TensorPlan::raw();
    return TensorPlan::lossless();
  }
};

TEST(RawPathTest, RawTensorsRoundTripBitExact) {
  Rng rng(9);
  const StateDict dict = mixed_dict(rng);
  FedSzConfig config;
  config.policy = std::make_shared<RawEverythingPolicy>();
  const FedSz fedsz{config};
  CompressionStats stats;
  const Bytes blob = fedsz.compress(dict, &stats);
  EXPECT_EQ(stream_version(blob), 3u);
  EXPECT_EQ(stats.raw_tensors, 2u);
  EXPECT_EQ(stats.lossy_tensors, 0u);
  EXPECT_EQ(stats.raw_original_bytes, (3000u + 2000u) * sizeof(float));
  CompressionStats decode_stats;
  const StateDict back =
      fedsz.decompress({blob.data(), blob.size()}, &decode_stats);
  ASSERT_EQ(back.size(), dict.size());
  for (const auto& [name, tensor] : dict)
    EXPECT_TRUE(back.get(name).equals(tensor)) << name;
  EXPECT_EQ(decode_stats.raw_tensors, 2u);
  EXPECT_EQ(decode_stats.lossless_tensors, 3u);
}

TEST(V3Container, ByteIdenticalAcrossParallelism) {
  Rng rng(10);
  const StateDict dict = mixed_dict(rng);
  Bytes serial;
  for (const std::size_t parallelism :
       {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{0}}) {
    FedSzConfig config;
    config.chunk_elements = 333;
    config.parallelism = parallelism;
    LayerwiseBoundConfig layerwise;
    layerwise.rules = {{"classifier", lossy::ErrorBound::relative(1e-4)}};
    config.policy = make_layerwise_policy(layerwise);
    const Bytes blob = FedSz{config}.compress(dict);
    EXPECT_EQ(stream_version(blob), 3u);
    if (parallelism == 1)
      serial = blob;
    else
      EXPECT_EQ(blob, serial) << "parallelism=" << parallelism;
  }
}

TEST(V3Container, MixedCodecsInOneStreamRoundTrip) {
  // A per-tensor policy can put SZ3 and SZx tensors in the same stream.
  class MixedCodecPolicy final : public CompressionPolicy {
   public:
    std::string name() const override { return "mixed"; }
    TensorPlan plan(const std::string& name, const Tensor& tensor,
                    const EncodeContext&) const override {
      if (!is_lossy_entry(name, tensor.numel(), 1000))
        return TensorPlan::lossless();
      const lossy::LossyId id = name.find("classifier") != std::string::npos
                                    ? lossy::LossyId::kSzx
                                    : lossy::LossyId::kSz3;
      return TensorPlan::lossy(id, lossy::ErrorBound::relative(1e-3));
    }
  };
  Rng rng(11);
  const StateDict dict = mixed_dict(rng);
  FedSzConfig config;
  config.policy = std::make_shared<MixedCodecPolicy>();
  const FedSz fedsz{config};
  const Bytes blob = fedsz.compress(dict);
  EXPECT_EQ(stream_version(blob), 3u);
  const StateDict back = fedsz.decompress({blob.data(), blob.size()});
  ASSERT_EQ(back.size(), dict.size());
  for (const std::string name : {"features.0.weight", "classifier.weight"}) {
    const double eps = lossy::ErrorBound::relative(1e-3).absolute_for(
        dict.get(name).span());
    EXPECT_LE(max_error_vs(dict, back, name), eps * (1 + 1e-5)) << name;
  }
}

TEST(V3Container, UnknownPathByteThrows) {
  FedSzConfig config;
  ByteWriter w;
  const char magic[4] = {'F', 'S', 'Z', '1'};
  w.put_bytes({reinterpret_cast<const std::uint8_t*>(magic), 4});
  w.put_u16(3);
  w.put_u8(static_cast<std::uint8_t>(config.lossless_id));
  w.put_varint(512);  // chunk_elements
  w.put_u32(1);
  w.put_string("t.weight");
  w.put_u8(1);
  w.put_varint(1200);
  w.put_u8(0x7E);  // not a TensorPath
  const Bytes blob = w.finish();
  const FedSz fedsz{config};
  EXPECT_THROW(fedsz.decompress({blob.data(), blob.size()}), CorruptStream);
}

TEST(V3Container, UnknownPerTensorCodecIdThrows) {
  FedSzConfig config;
  ByteWriter w;
  const char magic[4] = {'F', 'S', 'Z', '1'};
  w.put_bytes({reinterpret_cast<const std::uint8_t*>(magic), 4});
  w.put_u16(3);
  w.put_u8(static_cast<std::uint8_t>(config.lossless_id));
  w.put_varint(512);
  w.put_u32(1);
  w.put_string("t.weight");
  w.put_u8(1);
  w.put_varint(1200);
  w.put_u8(0);     // TensorPath::kLossy
  w.put_u8(0x7F);  // unknown lossy codec id
  const Bytes blob = w.finish();
  const FedSz fedsz{config};
  EXPECT_THROW(fedsz.decompress({blob.data(), blob.size()}), CorruptStream);
}

TEST(V3Container, TruncatedRawPayloadThrows) {
  Rng rng(12);
  const StateDict dict = mixed_dict(rng);
  FedSzConfig config;
  config.policy = std::make_shared<RawEverythingPolicy>();
  const FedSz fedsz{config};
  const Bytes blob = fedsz.compress(dict);
  for (const double frac : {0.2, 0.6, 0.95}) {
    Bytes cut(blob.begin(),
              blob.begin() + static_cast<std::ptrdiff_t>(blob.size() * frac));
    EXPECT_THROW(fedsz.decompress({cut.data(), cut.size()}), CorruptStream);
  }
}

// ---- gradient-aware bounds ----

Tensor constant_tensor(std::size_t n, float value) {
  return Tensor::from_data({static_cast<std::int64_t>(n)},
                           std::vector<float>(n, value));
}

TEST(GradAwarePolicyTest, HighSensitivityTightensTheBound) {
  GradientAwareConfig config;
  config.base = 1e-2;
  config.reference_sensitivity = 0.1;
  const auto policy = make_gradient_aware_policy(config);
  EncodeContext ctx;
  ctx.client_id = 0;
  // A constant tensor's rms is |value|: rms 1.0 is 10x the reference (scale
  // 0.1, tighter), rms 0.01 is 0.1x (scale 10, looser).
  const TensorPlan hot =
      policy->plan("hot.weight", constant_tensor(2048, 1.0f), ctx);
  const TensorPlan cold =
      policy->plan("cold.weight", constant_tensor(2048, 0.01f), ctx);
  ASSERT_EQ(hot.path, TensorPath::kLossy);
  ASSERT_EQ(cold.path, TensorPath::kLossy);
  EXPECT_DOUBLE_EQ(hot.bound.value, 1e-3);   // base * 0.1
  EXPECT_DOUBLE_EQ(cold.bound.value, 1e-1);  // base * 10
  EXPECT_LT(hot.bound.value, cold.bound.value);
}

TEST(GradAwarePolicyTest, ScaleClampsAtTheConfiguredRails) {
  GradientAwareConfig config;
  config.base = 1e-2;
  config.reference_sensitivity = 0.1;
  config.min_scale = 0.5;
  config.max_scale = 2.0;
  const auto policy = make_gradient_aware_policy(config);
  EncodeContext ctx;
  const TensorPlan loud =
      policy->plan("loud.weight", constant_tensor(2048, 100.0f), ctx);
  const TensorPlan quiet =
      policy->plan("quiet.weight", constant_tensor(2048, 1e-6f), ctx);
  EXPECT_DOUBLE_EQ(loud.bound.value, 1e-2 * 0.5);
  EXPECT_DOUBLE_EQ(quiet.bound.value, 1e-2 * 2.0);
}

TEST(GradAwarePolicyTest, SameRoundReplansAreIdempotent) {
  // Re-encoding an update (workspace retry, thread race) must not advance
  // the EMA: the plan for (client, round, tensor) is a fixed point.
  const auto policy = make_gradient_aware_policy({});
  const auto* gradaware =
      dynamic_cast<const GradientAwareBoundPolicy*>(policy.get());
  ASSERT_NE(gradaware, nullptr);
  EncodeContext ctx;
  ctx.client_id = 3;
  ctx.round = 0;
  const Tensor tensor = constant_tensor(2048, 0.5f);
  const TensorPlan first = policy->plan("layer.weight", tensor, ctx);
  const double sensitivity_once = gradaware->sensitivity(3, "layer.weight");
  const TensorPlan second = policy->plan("layer.weight", tensor, ctx);
  EXPECT_DOUBLE_EQ(first.bound.value, second.bound.value);
  EXPECT_DOUBLE_EQ(gradaware->sensitivity(3, "layer.weight"),
                   sensitivity_once);
}

TEST(GradAwarePolicyTest, SensitivityIsAnEmaAcrossRounds) {
  GradientAwareConfig config;
  config.beta = 0.5;
  const auto policy = make_gradient_aware_policy(config);
  const auto* gradaware =
      dynamic_cast<const GradientAwareBoundPolicy*>(policy.get());
  ASSERT_NE(gradaware, nullptr);
  EncodeContext ctx;
  ctx.client_id = 1;
  ctx.round = 0;
  (void)policy->plan("layer.weight", constant_tensor(2048, 1.0f), ctx);
  EXPECT_DOUBLE_EQ(gradaware->sensitivity(1, "layer.weight"), 1.0);
  ctx.round = 1;
  (void)policy->plan("layer.weight", constant_tensor(2048, 0.5f), ctx);
  // beta * 1.0 + (1 - beta) * 0.5 = 0.75
  EXPECT_DOUBLE_EQ(gradaware->sensitivity(1, "layer.weight"), 0.75);
  // Per-client state: another client's EMA is untouched.
  EXPECT_DOUBLE_EQ(gradaware->sensitivity(2, "layer.weight"), 0.0);
}

TEST(GradAwarePolicyTest, SmallAndZeroTensorsRouteLossless) {
  const auto policy = make_gradient_aware_policy({});
  EncodeContext ctx;
  EXPECT_EQ(policy->plan("tiny.weight", constant_tensor(4, 1.0f), ctx).path,
            TensorPath::kLossless);
  EXPECT_EQ(policy->plan("zero.weight", constant_tensor(2048, 0.0f), ctx).path,
            TensorPath::kLossless);
  EXPECT_EQ(policy->plan("big.bias", constant_tensor(2048, 1.0f), ctx).path,
            TensorPath::kLossless);
}

TEST(GradAwarePolicyTest, DegenerateConfigsRejected) {
  GradientAwareConfig bad_beta;
  bad_beta.beta = 1.0;
  EXPECT_THROW(make_gradient_aware_policy(bad_beta), InvalidArgument);
  GradientAwareConfig bad_reference;
  bad_reference.reference_sensitivity = 0.0;
  EXPECT_THROW(make_gradient_aware_policy(bad_reference), InvalidArgument);
  GradientAwareConfig bad_rails;
  bad_rails.min_scale = 2.0;
  bad_rails.max_scale = 1.0;
  EXPECT_THROW(make_gradient_aware_policy(bad_rails), InvalidArgument);
}

// ---- sparse overlay ----

TEST(SparseOverlayTest, ReroutesLossyPlansOntoTheSparsePath) {
  const auto policy =
      make_sparse_overlay_policy(make_threshold_policy({}), 0.9, 8);
  EXPECT_EQ(policy->name(), "sparse+threshold");
  EncodeContext ctx;
  const TensorPlan big =
      policy->plan("layer.weight", constant_tensor(2048, 1.0f), ctx);
  EXPECT_EQ(big.path, TensorPath::kSparse);
  EXPECT_DOUBLE_EQ(big.sparsity, 0.9);
  EXPECT_EQ(big.sparse_bits, 8u);
  // Non-lossy inner plans pass through untouched.
  EXPECT_EQ(policy->plan("small.bias", constant_tensor(4, 1.0f), ctx).path,
            TensorPath::kLossless);
}

TEST(SparseOverlayTest, InheritsTheInnerPolicysBound) {
  GradientAwareConfig config;
  config.base = 1e-2;
  config.reference_sensitivity = 0.1;
  const auto policy =
      make_sparse_overlay_policy(make_gradient_aware_policy(config), 0.5, 0);
  EXPECT_EQ(policy->name(), "sparse+gradaware");
  EncodeContext ctx;
  const TensorPlan plan =
      policy->plan("hot.weight", constant_tensor(2048, 1.0f), ctx);
  ASSERT_EQ(plan.path, TensorPath::kSparse);
  EXPECT_DOUBLE_EQ(plan.bound.value, 1e-3);  // gradaware's tightened bound
}

TEST(SparseOverlayTest, InvalidCompositionsRejected) {
  EXPECT_THROW(make_sparse_overlay_policy(nullptr, 0.5, 8), InvalidArgument);
  EXPECT_THROW(make_sparse_overlay_policy(make_threshold_policy({}), 1.5, 8),
               InvalidArgument);
  EXPECT_THROW(make_sparse_overlay_policy(make_threshold_policy({}), 0.5, 40),
               InvalidArgument);
}

// ---- EncodeContext through a federation run ----

TEST(PolicyFlIntegration, SchedulePolicyBoundsShowInPerClientTrace) {
  auto [train, test] = data::make_dataset("cifar10");
  nn::ModelConfig model;
  model.arch = "alexnet";  // FC-dominated: tiny scale still has lossy tensors
  model.scale = nn::ModelScale::kTiny;
  FlRunConfig config;
  config.clients = 4;
  config.rounds = 3;
  config.eval_limit = 16;
  config.threads = 4;
  config.client.batch_size = 16;
  config.evaluate_every_round = false;
  FedSzConfig codec_config;
  BoundScheduleConfig schedule;
  schedule.initial = 1e-1;
  schedule.factor = 0.5;
  schedule.floor = 1e-4;
  codec_config.policy = make_bound_schedule_policy(schedule);
  FlCoordinator coordinator(model, data::take(train, 128),
                            data::take(test, 32), config,
                            make_fedsz_codec(codec_config));
  const FlRunResult result = coordinator.run();
  ASSERT_EQ(result.rounds.size(), 3u);
  for (int round = 0; round < 3; ++round) {
    const RoundRecord& record = result.rounds[round];
    ASSERT_EQ(record.clients.size(), 4u);
    const double expected = 1e-1 * std::pow(0.5, round);
    for (const ClientTraceEntry& entry : record.clients) {
      EXPECT_EQ(entry.dispatch_round, round);
      EXPECT_DOUBLE_EQ(entry.bound_value, expected)
          << "round " << round << " client " << entry.client;
      EXPECT_GT(entry.lossy_tensors, 0u);
    }
  }
  // The tightening schedule must grow the per-round payload.
  EXPECT_GT(result.rounds[2].bytes_sent, result.rounds[0].bytes_sent);
}

}  // namespace
}  // namespace fedsz::core

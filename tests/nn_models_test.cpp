// Model-zoo tests: construction across architectures/scales, PyTorch-style
// state-dict naming (which FedSZ's partition rule depends on), forward
// shapes, and state-dict load/save semantics.
#include <gtest/gtest.h>

#include "nn/metrics.hpp"
#include "nn/models.hpp"
#include "util/rng.hpp"

namespace fedsz::nn {
namespace {

Tensor random_images(std::int64_t n, std::int64_t c, std::int64_t s,
                     std::uint64_t seed) {
  Rng rng(seed);
  Tensor t({n, c, s, s});
  for (std::size_t i = 0; i < t.numel(); ++i)
    t[i] = static_cast<float>(rng.normal(0.0, 1.0));
  return t;
}

class ModelZoo : public ::testing::TestWithParam<std::string> {};

TEST_P(ModelZoo, BuildsAndRunsForward) {
  ModelConfig cfg;
  cfg.arch = GetParam();
  cfg.scale = ModelScale::kTiny;
  BuiltModel built = build_model(cfg);
  const Tensor logits =
      built.model.forward(random_images(2, 3, 32, 1), false);
  EXPECT_EQ(logits.shape(), (Shape{2, 10}));
  EXPECT_GT(built.flops, 0.0);
  EXPECT_GT(built.model.parameter_count(), 1000u);
}

TEST_P(ModelZoo, StateDictNamesFollowConventions) {
  ModelConfig cfg;
  cfg.arch = GetParam();
  cfg.scale = ModelScale::kTiny;
  BuiltModel built = build_model(cfg);
  StateDict dict = built.model.state_dict();
  std::size_t weight_entries = 0;
  for (const auto& [name, tensor] : dict) {
    if (name.find("weight") != std::string::npos) ++weight_entries;
    // No empty or duplicate-dot names.
    EXPECT_FALSE(name.empty());
    EXPECT_EQ(name.find(".."), std::string::npos) << name;
  }
  EXPECT_GT(weight_entries, 2u);
}

TEST_P(ModelZoo, ScalesAreOrderedBySize) {
  ModelConfig cfg;
  cfg.arch = GetParam();
  cfg.scale = ModelScale::kTiny;
  const std::size_t tiny = build_model(cfg).model.parameter_count();
  cfg.scale = ModelScale::kBench;
  const std::size_t bench = build_model(cfg).model.parameter_count();
  EXPECT_GT(bench, tiny);
}

TEST_P(ModelZoo, DeterministicInitializationFromSeed) {
  ModelConfig cfg;
  cfg.arch = GetParam();
  cfg.scale = ModelScale::kTiny;
  cfg.seed = 77;
  BuiltModel a = build_model(cfg);
  BuiltModel b = build_model(cfg);
  EXPECT_TRUE(a.model.state_dict().equals(b.model.state_dict()));
  cfg.seed = 78;
  BuiltModel c = build_model(cfg);
  EXPECT_FALSE(a.model.state_dict().equals(c.model.state_dict()));
}

TEST_P(ModelZoo, LoadStateDictRestoresOutputs) {
  ModelConfig cfg;
  cfg.arch = GetParam();
  cfg.scale = ModelScale::kTiny;
  BuiltModel a = build_model(cfg);
  cfg.seed = 1234;
  BuiltModel b = build_model(cfg);
  const Tensor input = random_images(2, 3, 32, 5);
  const Tensor out_a = a.model.forward(input, false);
  b.model.load_state_dict(a.model.state_dict());
  const Tensor out_b = b.model.forward(input, false);
  ASSERT_EQ(out_a.numel(), out_b.numel());
  for (std::size_t i = 0; i < out_a.numel(); ++i)
    EXPECT_FLOAT_EQ(out_a[i], out_b[i]);
}

TEST_P(ModelZoo, EvalForwardIsDeterministic) {
  ModelConfig cfg;
  cfg.arch = GetParam();
  cfg.scale = ModelScale::kTiny;
  BuiltModel built = build_model(cfg);
  const Tensor input = random_images(2, 3, 32, 9);
  const Tensor a = built.model.forward(input, false);
  const Tensor b = built.model.forward(input, false);
  EXPECT_TRUE(a.equals(b));
}

TEST_P(ModelZoo, CustomInputGeometryAndClasses) {
  ModelConfig cfg;
  cfg.arch = GetParam();
  cfg.scale = ModelScale::kTiny;
  cfg.in_channels = 1;
  cfg.image_size = 28;
  cfg.num_classes = 7;
  BuiltModel built = build_model(cfg);
  const Tensor logits =
      built.model.forward(random_images(3, 1, 28, 11), false);
  EXPECT_EQ(logits.shape(), (Shape{3, 7}));
}

INSTANTIATE_TEST_SUITE_P(Architectures, ModelZoo,
                         ::testing::Values("alexnet", "mobilenet_v2",
                                           "resnet"));

TEST(ModelZooGlobal, UnknownArchitectureThrows) {
  ModelConfig cfg;
  cfg.arch = "vgg";
  EXPECT_THROW(build_model(cfg), InvalidArgument);
}

TEST(ModelZooGlobal, TooSmallImageThrows) {
  ModelConfig cfg;
  cfg.image_size = 4;
  EXPECT_THROW(build_model(cfg), InvalidArgument);
}

TEST(ModelZooGlobal, DisplayNames) {
  EXPECT_EQ(model_display_name("alexnet"), "AlexNet");
  EXPECT_EQ(model_display_name("mobilenet_v2"), "MobileNet-V2");
  EXPECT_EQ(model_display_name("resnet"), "ResNet50");
  EXPECT_THROW(model_display_name("vgg"), InvalidArgument);
  EXPECT_EQ(model_architectures().size(), 3u);
}

TEST(ModelZooGlobal, MobileNetHasManySmallBatchNormTensors) {
  // The Table III structure: MobileNetV2's state dict is rich in small
  // non-lossy tensors (BN weight/bias/running stats), AlexNet's is not.
  ModelConfig cfg;
  cfg.scale = ModelScale::kBench;
  cfg.arch = "mobilenet_v2";
  StateDict mobile = build_model(cfg).model.state_dict();
  cfg.arch = "alexnet";
  StateDict alex = build_model(cfg).model.state_dict();
  auto count_running = [](const StateDict& d) {
    std::size_t n = 0;
    for (const auto& [name, t] : d)
      if (name.find("running_") != std::string::npos) ++n;
    return n;
  };
  EXPECT_GT(count_running(mobile), 10u);
  EXPECT_EQ(count_running(alex), 0u);
}

TEST(ModelZooGlobal, AlexNetIsFcDominated) {
  ModelConfig cfg;
  cfg.arch = "alexnet";
  cfg.scale = ModelScale::kBench;
  BuiltModel built = build_model(cfg);
  StateDict dict = built.model.state_dict();
  std::size_t largest = 0;
  for (const auto& [name, t] : dict) largest = std::max(largest, t.numel());
  // The biggest tensor (an FC weight) dominates total parameters.
  EXPECT_GT(static_cast<double>(largest) /
                static_cast<double>(built.model.parameter_count()),
            0.4);
}

TEST(ModelZooGlobal, PaperScaleMobileNetMatchesPublishedSize) {
  ModelConfig cfg;
  cfg.arch = "mobilenet_v2";
  cfg.scale = ModelScale::kPaper;
  cfg.num_classes = 1000;  // the published 3.5M count includes the ImageNet head
  BuiltModel built = build_model(cfg);
  // Table III: 3.5e6 parameters. Accept the analogue within ~15%.
  EXPECT_NEAR(static_cast<double>(built.model.parameter_count()), 3.5e6,
              0.55e6);
}

TEST(ModelZooGlobal, ZeroGradClearsAccumulatedGradients) {
  ModelConfig cfg;
  cfg.arch = "alexnet";
  cfg.scale = ModelScale::kTiny;
  BuiltModel built = build_model(cfg);
  const Tensor input = random_images(2, 3, 32, 13);
  built.model.forward(input, true);
  Tensor grad({2, 10});
  grad.fill(0.1f);
  built.model.backward(grad);
  bool any_nonzero = false;
  for (const ParamRef& p : built.model.parameters())
    for (std::size_t i = 0; i < p.grad->numel(); ++i)
      if ((*p.grad)[i] != 0.0f) any_nonzero = true;
  EXPECT_TRUE(any_nonzero);
  built.model.zero_grad();
  for (const ParamRef& p : built.model.parameters())
    for (std::size_t i = 0; i < p.grad->numel(); ++i)
      ASSERT_EQ((*p.grad)[i], 0.0f);
}

TEST(ModelZooGlobal, LoadStateDictValidatesStructure) {
  ModelConfig cfg;
  cfg.arch = "alexnet";
  cfg.scale = ModelScale::kTiny;
  BuiltModel built = build_model(cfg);
  StateDict dict = built.model.state_dict();
  dict.set("extra.weight", Tensor({3}));
  EXPECT_THROW(built.model.load_state_dict(dict), InvalidArgument);
  StateDict missing;
  EXPECT_THROW(built.model.load_state_dict(missing), InvalidArgument);
}

TEST(Metrics, Top1AccuracyCountsArgmaxMatches) {
  Tensor logits = Tensor::from_data({3, 3},
                                    {5, 1, 1,   // argmax 0
                                     0, 2, 9,   // argmax 2
                                     1, 8, 3}); // argmax 1
  EXPECT_DOUBLE_EQ(top1_accuracy(logits, std::vector<int>{0, 2, 1}), 1.0);
  EXPECT_NEAR(top1_accuracy(logits, std::vector<int>{0, 2, 0}), 2.0 / 3.0,
              1e-9);
  EXPECT_DOUBLE_EQ(top1_accuracy(logits, std::vector<int>{1, 0, 2}), 0.0);
}

}  // namespace
}  // namespace fedsz::nn

// Tests for the ordered JSON emitter (util/json.hpp): RFC 8259 string
// escaping (quotes, backslashes, every control character below 0x20 —
// workflow artifacts must survive arbitrary codec-spec strings and error
// messages), number rendering, insertion order, and type misuse.
#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>
#include <string>

#include "util/json.hpp"

namespace fedsz::util {
namespace {

TEST(JsonValueTest, EscapesControlCharactersAndQuotes) {
  JsonValue value(std::string("a\"b\\c\nd\re\tf"));
  EXPECT_EQ(value.dump(), "\"a\\\"b\\\\c\\nd\\re\\tf\"");
  // Control characters without short escapes render as \u00XX.
  std::string raw;
  raw.push_back('\x01');
  raw.push_back('\x1f');
  raw.push_back('x');
  EXPECT_EQ(JsonValue(raw).dump(), "\"\\u0001\\u001fx\"");
  // NUL embedded mid-string survives as an escape.
  std::string with_nul("a");
  with_nul.push_back('\0');
  with_nul.push_back('b');
  EXPECT_EQ(JsonValue(with_nul).dump(), "\"a\\u0000b\"");
  // Printable ASCII and bytes >= 0x20 pass through untouched.
  EXPECT_EQ(JsonValue("fedsz:eb=rel:1e-3").dump(), "\"fedsz:eb=rel:1e-3\"");
}

TEST(JsonValueTest, ObjectKeysAreEscapedToo) {
  JsonValue object = JsonValue::object();
  object.set("bad\nkey", 1);
  const std::string out = object.dump(0);
  EXPECT_NE(out.find("\"bad\\nkey\""), std::string::npos);
  EXPECT_EQ(out.find("bad\nkey"), std::string::npos);  // no raw newline
}

TEST(JsonValueTest, NumberRendering) {
  EXPECT_EQ(JsonValue(42).dump(), "42");
  EXPECT_EQ(JsonValue(std::size_t{7}).dump(), "7");
  EXPECT_EQ(JsonValue(-3.0).dump(), "-3");  // integral doubles drop the dot
  EXPECT_EQ(JsonValue(1.5).dump(), "1.5");
  // JSON has no inf/nan; both render as null.
  EXPECT_EQ(JsonValue(std::numeric_limits<double>::infinity()).dump(),
            "null");
  EXPECT_EQ(JsonValue(std::numeric_limits<double>::quiet_NaN()).dump(),
            "null");
}

TEST(JsonValueTest, PreservesInsertionOrderAndNesting) {
  JsonValue object = JsonValue::object();
  object.set("z", 1).set("a", JsonValue::array().push(true).push("x"));
  object.set("empty_obj", JsonValue::object());
  object.set("empty_arr", JsonValue::array());
  const std::string out = object.dump(2);
  EXPECT_LT(out.find("\"z\""), out.find("\"a\""));
  EXPECT_NE(out.find("\"empty_obj\": {}"), std::string::npos);
  EXPECT_NE(out.find("\"empty_arr\": []"), std::string::npos);
  EXPECT_NE(out.find("true"), std::string::npos);
  // Null default and bool render as JSON literals.
  EXPECT_EQ(JsonValue().dump(), "null");
  EXPECT_EQ(JsonValue(false).dump(), "false");
}

TEST(JsonValueTest, TypeMisuseThrows) {
  JsonValue array = JsonValue::array();
  EXPECT_THROW(array.set("k", 1), std::runtime_error);
  JsonValue object = JsonValue::object();
  EXPECT_THROW(object.push(1), std::runtime_error);
  // A null value adopts the first container operation applied to it.
  JsonValue adopt;
  adopt.push(1);
  EXPECT_THROW(adopt.set("k", 1), std::runtime_error);
}

}  // namespace
}  // namespace fedsz::util

// Tests for the Tensor value type.
#include <gtest/gtest.h>

#include <cmath>

#include "tensor/tensor.hpp"

namespace fedsz {
namespace {

TEST(Tensor, DefaultIsScalarZero) {
  Tensor t;
  EXPECT_EQ(t.rank(), 0u);
  EXPECT_EQ(t.numel(), 1u);
  EXPECT_EQ(t[0], 0.0f);
}

TEST(Tensor, ZerosHasCorrectShapeAndContents) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.rank(), 3u);
  EXPECT_EQ(t.numel(), 24u);
  for (std::size_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, NonPositiveDimThrows) {
  EXPECT_THROW(Tensor({2, 0}), InvalidArgument);
  EXPECT_THROW(Tensor({-1}), InvalidArgument);
}

TEST(Tensor, FullFillsValue) {
  Tensor t = Tensor::full({3}, 2.5f);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(t[i], 2.5f);
}

TEST(Tensor, FromDataValidatesSize) {
  EXPECT_NO_THROW(Tensor::from_data({2, 2}, {1, 2, 3, 4}));
  EXPECT_THROW(Tensor::from_data({2, 2}, {1, 2, 3}), InvalidArgument);
}

TEST(Tensor, MultiIndexAccessIsRowMajor) {
  Tensor t = Tensor::from_data({2, 3}, {0, 1, 2, 3, 4, 5});
  EXPECT_EQ(t.at({0, 0}), 0.0f);
  EXPECT_EQ(t.at({0, 2}), 2.0f);
  EXPECT_EQ(t.at({1, 0}), 3.0f);
  EXPECT_EQ(t.at({1, 2}), 5.0f);
  t.at({1, 1}) = 9.0f;
  EXPECT_EQ(t[4], 9.0f);
}

TEST(Tensor, AtValidatesRankAndRange) {
  Tensor t({2, 3});
  EXPECT_THROW(t.at({0}), InvalidArgument);
  EXPECT_THROW(t.at({2, 0}), InvalidArgument);
  EXPECT_THROW((void)t.at({0, 3}), InvalidArgument);
}

TEST(Tensor, DimAccessor) {
  Tensor t({4, 5});
  EXPECT_EQ(t.dim(0), 4);
  EXPECT_EQ(t.dim(1), 5);
  EXPECT_THROW(t.dim(2), InvalidArgument);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t = Tensor::from_data({2, 3}, {0, 1, 2, 3, 4, 5});
  Tensor r = t.reshaped({3, 2});
  EXPECT_EQ(r.rank(), 2u);
  EXPECT_EQ(r.dim(0), 3);
  for (std::size_t i = 0; i < 6; ++i) EXPECT_EQ(r[i], t[i]);
  EXPECT_THROW(t.reshaped({5}), InvalidArgument);
}

TEST(Tensor, AddSubScale) {
  Tensor a = Tensor::from_data({3}, {1, 2, 3});
  Tensor b = Tensor::from_data({3}, {10, 20, 30});
  a += b;
  EXPECT_EQ(a[1], 22.0f);
  a -= b;
  EXPECT_EQ(a[1], 2.0f);
  a *= 3.0f;
  EXPECT_EQ(a[2], 9.0f);
}

TEST(Tensor, ElementwiseOpsValidateShape) {
  Tensor a({2}), b({3});
  EXPECT_THROW(a += b, InvalidArgument);
  EXPECT_THROW(a -= b, InvalidArgument);
  EXPECT_THROW(a.add_scaled(b, 1.0f), InvalidArgument);
}

TEST(Tensor, AddScaled) {
  Tensor a = Tensor::from_data({2}, {1, 1});
  Tensor b = Tensor::from_data({2}, {2, 4});
  a.add_scaled(b, 0.5f);
  EXPECT_EQ(a[0], 2.0f);
  EXPECT_EQ(a[1], 3.0f);
}

TEST(Tensor, EqualsIsBitExact) {
  Tensor a = Tensor::from_data({2}, {1.0f, 2.0f});
  Tensor b = Tensor::from_data({2}, {1.0f, 2.0f});
  Tensor c = Tensor::from_data({2}, {1.0f, std::nextafter(2.0f, 3.0f)});
  Tensor d = Tensor::from_data({1, 2}, {1.0f, 2.0f});
  EXPECT_TRUE(a.equals(b));
  EXPECT_FALSE(a.equals(c));
  EXPECT_FALSE(a.equals(d));  // same data, different shape
}

TEST(Tensor, ShapeString) {
  Tensor t({2, 3});
  EXPECT_EQ(t.shape_string(), "[2, 3]");
  EXPECT_EQ(Tensor().shape_string(), "[]");
}

TEST(Tensor, ShapeNumelValidates) {
  EXPECT_EQ(shape_numel({2, 3, 4}), 24u);
  EXPECT_EQ(shape_numel({}), 1u);
  EXPECT_THROW(shape_numel({0}), InvalidArgument);
}

TEST(Tensor, SpanViewsStorage) {
  Tensor t = Tensor::from_data({2}, {5.0f, 6.0f});
  FloatSpan s = t.span();
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s[0], 5.0f);
  EXPECT_EQ(s[1], 6.0f);
}

}  // namespace
}  // namespace fedsz

// Property tests for ErrorFeedbackAccumulator: over any sequence of lossy
// round trips, accumulated residual + the decoded stream reconstructs the
// true update sum (nothing is silently dropped), independent of the codec's
// thread count.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/codec_spec.hpp"
#include "core/error_feedback.hpp"
#include "util/rng.hpp"

namespace fedsz::core {
namespace {

StateDict random_update(Rng& rng, float scale) {
  StateDict dict;
  {
    std::vector<float> values(2100);
    for (float& v : values)
      v = scale * static_cast<float>(rng.uniform(-1.0, 1.0));
    dict.set("features.0.weight", Tensor::from_data({21, 100}, values));
  }
  {
    std::vector<float> values(350);
    for (float& v : values)
      v = scale * static_cast<float>(rng.uniform(-0.1, 0.1));
    dict.set("classifier.weight", Tensor::from_data({350}, values));
  }
  {
    std::vector<float> values(24);
    for (float& v : values)
      v = scale * static_cast<float>(rng.uniform(-0.01, 0.01));
    dict.set("features.0.bias", Tensor::from_data({24}, values));
  }
  return dict;
}

void run_stream_property(const std::string& spec, std::uint64_t seed) {
  SCOPED_TRACE(spec);
  const UpdateCodecPtr codec = make_codec(spec);
  Rng rng(seed);
  ErrorFeedbackAccumulator feedback;
  EXPECT_TRUE(feedback.empty());
  EXPECT_DOUBLE_EQ(feedback.residual_norm(), 0.0);

  StateDict true_sum;      // sum of raw updates, as the client produced them
  StateDict decoded_sum;   // sum of what the server decoded
  const int kRounds = 7;
  for (int round = 0; round < kRounds; ++round) {
    const StateDict update = random_update(rng, 1.0f / (1.0f + round));
    if (true_sum.empty())
      true_sum = update;
    else
      true_sum.add_scaled(update.reordered_like(true_sum), 1.0f);

    const StateDict compensated = feedback.apply(update);
    EncodeContext ctx;
    ctx.round = round;
    const UpdateCodec::Encoded encoded = codec->encode(compensated, ctx);
    const StateDict decoded =
        codec->decode({encoded.payload.data(), encoded.payload.size()});
    feedback.absorb(compensated, decoded);

    if (decoded_sum.empty())
      decoded_sum = decoded.reordered_like(update);
    else
      decoded_sum.add_scaled(decoded.reordered_like(decoded_sum), 1.0f);
  }

  // The invariant: sum of true updates == sum of decoded updates + final
  // residual, elementwise, up to float accumulation noise — the codec's
  // per-round error never leaks out of the feedback loop.
  StateDict reconstructed = decoded_sum;
  reconstructed.add_scaled(
      feedback.residual().reordered_like(decoded_sum), 1.0f);
  ASSERT_EQ(reconstructed.size(), true_sum.size());
  for (const auto& [name, tensor] : true_sum) {
    const Tensor& other = reconstructed.get(name);
    for (std::size_t i = 0; i < tensor.numel(); ++i)
      EXPECT_NEAR(tensor[i], other[i], 2e-4f)
          << name << "[" << i << "]";
  }
}

TEST(ErrorFeedbackProperty, StreamReconstructsTrueSumAtAnyThreadCount) {
  for (const char* spec :
       {"fedsz:eb=rel:1e-1,threshold=100",
        "fedsz:eb=rel:1e-1,threshold=100,threads=4",
        "fedsz:eb=rel:1e-2,threshold=100,chunk=512,threads=3",
        "fedsz:eb=abs:0.05,threshold=100", "identity"}) {
    for (const std::uint64_t seed : {1ull, 77ull, 20260731ull})
      run_stream_property(spec, seed);
  }
}

TEST(ErrorFeedbackProperty, LosslessCodecLeavesZeroResidual) {
  const UpdateCodecPtr codec = make_codec("identity");
  Rng rng(5);
  ErrorFeedbackAccumulator feedback;
  for (int round = 0; round < 3; ++round) {
    const StateDict update = random_update(rng, 1.0f);
    const StateDict compensated = feedback.apply(update);
    const UpdateCodec::Encoded encoded = codec->encode(compensated);
    feedback.absorb(compensated, codec->decode({encoded.payload.data(),
                                                encoded.payload.size()}));
    EXPECT_DOUBLE_EQ(feedback.residual_norm(), 0.0) << "round " << round;
  }
}

TEST(ErrorFeedbackProperty, ApplyCompensatesThePreviousRoundsLoss) {
  const UpdateCodecPtr codec =
      make_codec("fedsz:eb=rel:1e-1,threshold=100");
  Rng rng(9);
  ErrorFeedbackAccumulator feedback;
  const StateDict update = random_update(rng, 1.0f);
  // First apply is the identity: no residual carried yet.
  EXPECT_TRUE(feedback.apply(update).equals(update));
  const UpdateCodec::Encoded encoded = codec->encode(update);
  feedback.absorb(update, codec->decode({encoded.payload.data(),
                                         encoded.payload.size()}));
  EXPECT_GT(feedback.residual_norm(), 0.0);
  // Second apply folds exactly that residual in.
  const StateDict next = random_update(rng, 1.0f);
  const StateDict compensated = feedback.apply(next);
  const Tensor& a = compensated.get("features.0.weight");
  const Tensor& b = next.get("features.0.weight");
  const Tensor& r = feedback.residual().get("features.0.weight");
  for (std::size_t i = 0; i < 32; ++i)
    EXPECT_FLOAT_EQ(a[i], b[i] + r[i]);
}

TEST(ErrorFeedbackProperty, AbsorbRejectsMismatchedStructures) {
  ErrorFeedbackAccumulator feedback;
  Rng rng(2);
  const StateDict update = random_update(rng, 1.0f);
  StateDict wrong;
  wrong.set("other", Tensor::zeros({4}));
  EXPECT_THROW(feedback.absorb(update, wrong), InvalidArgument);
}

}  // namespace
}  // namespace fedsz::core

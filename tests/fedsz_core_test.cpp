// Tests for the FedSZ pipeline itself: Algorithm 1's partition rule, the
// wire format, byte accounting, error-bound behaviour per partition, and
// corruption handling.
#include <gtest/gtest.h>

#include "core/fedsz.hpp"
#include "core/update_codec.hpp"
#include "nn/models.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace fedsz::core {
namespace {

StateDict model_dict(const std::string& arch = "alexnet",
                     nn::ModelScale scale = nn::ModelScale::kTiny) {
  nn::ModelConfig cfg;
  cfg.arch = arch;
  cfg.scale = scale;
  return nn::build_model(cfg).model.state_dict();
}

// ---- Algorithm 1 partition rule ----

TEST(PartitionRule, RequiresWeightInNameAndSizeAboveThreshold) {
  EXPECT_TRUE(is_lossy_entry("features.0.weight", 5000, 1000));
  EXPECT_FALSE(is_lossy_entry("features.0.bias", 5000, 1000));
  EXPECT_FALSE(is_lossy_entry("features.0.weight", 1000, 1000));  // strict >
  EXPECT_TRUE(is_lossy_entry("features.0.weight", 1001, 1000));
  EXPECT_FALSE(is_lossy_entry("bn.running_mean", 5000, 1000));
  EXPECT_FALSE(is_lossy_entry("bn.running_var", 5000, 1000));
  EXPECT_TRUE(is_lossy_entry("classifier.weight_v", 5000, 1000));
}

TEST(PartitionRule, CensusSplitsBytes) {
  StateDict dict;
  dict.set("big.weight", Tensor({2000}));        // lossy: 8000 bytes
  dict.set("small.weight", Tensor({10}));        // lossless: 40
  dict.set("big.bias", Tensor({2000}));          // lossless: 8000
  const Partition p = partition_state_dict(dict, 1000);
  EXPECT_EQ(p.lossy_names, std::vector<std::string>{"big.weight"});
  EXPECT_EQ(p.lossy_bytes, 8000u);
  EXPECT_EQ(p.lossless_bytes, 8040u);
  EXPECT_NEAR(p.lossy_fraction(), 8000.0 / 16040.0, 1e-12);
}

TEST(PartitionRule, AlexNetIsAlmostAllLossy) {
  const StateDict dict = model_dict("alexnet", nn::ModelScale::kBench);
  const Partition p = partition_state_dict(dict, 1000);
  EXPECT_GT(p.lossy_fraction(), 0.99);  // Table III: 99.98%
}

TEST(PartitionRule, MobileNetHasLowerLossyFraction) {
  const Partition alex =
      partition_state_dict(model_dict("alexnet", nn::ModelScale::kBench),
                           1000);
  const Partition mobile = partition_state_dict(
      model_dict("mobilenet_v2", nn::ModelScale::kBench), 1000);
  EXPECT_LT(mobile.lossy_fraction(), alex.lossy_fraction());
  EXPECT_GT(mobile.lossy_fraction(), 0.5);
}

// ---- round trip ----

TEST(FedSzRoundTrip, PreservesNamesAndShapes) {
  const StateDict dict = model_dict();
  const FedSz fedsz{FedSzConfig{}};
  const Bytes blob = fedsz.compress(dict);
  const StateDict back = fedsz.decompress({blob.data(), blob.size()});
  ASSERT_EQ(back.size(), dict.size());
  for (const auto& [name, tensor] : dict) {
    ASSERT_TRUE(back.contains(name)) << name;
    EXPECT_TRUE(back.get(name).same_shape(tensor)) << name;
  }
}

TEST(FedSzRoundTrip, LosslessPartitionIsBitExact) {
  const StateDict dict = model_dict();
  FedSzConfig config;
  const FedSz fedsz{config};
  const Bytes blob = fedsz.compress(dict);
  const StateDict back = fedsz.decompress({blob.data(), blob.size()});
  for (const auto& [name, tensor] : dict) {
    if (!is_lossy_entry(name, tensor.numel(), config.lossy_threshold)) {
      EXPECT_TRUE(back.get(name).equals(tensor)) << name;
    }
  }
}

TEST(FedSzRoundTrip, LossyPartitionWithinBound) {
  const StateDict dict = model_dict("alexnet", nn::ModelScale::kBench);
  FedSzConfig config;
  config.bound = lossy::ErrorBound::relative(1e-3);
  const FedSz fedsz{config};
  const Bytes blob = fedsz.compress(dict);
  const StateDict back = fedsz.decompress({blob.data(), blob.size()});
  for (const auto& [name, tensor] : dict) {
    if (!is_lossy_entry(name, tensor.numel(), config.lossy_threshold))
      continue;
    const double eps = config.bound.absolute_for(tensor.span());
    const double err =
        stats::max_abs_error(tensor.span(), back.get(name).span());
    EXPECT_LE(err, eps * (1 + 1e-5)) << name;
  }
}

TEST(FedSzRoundTrip, WorksWithEveryLossyCodec) {
  const StateDict dict = model_dict();
  for (const lossy::LossyCodec* codec : lossy::all_lossy_codecs()) {
    FedSzConfig config;
    config.lossy_id = codec->id();
    const FedSz fedsz{config};
    const Bytes blob = fedsz.compress(dict);
    const StateDict back = fedsz.decompress({blob.data(), blob.size()});
    EXPECT_EQ(back.size(), dict.size()) << codec->name();
  }
}

TEST(FedSzRoundTrip, WorksWithEveryLosslessCodec) {
  const StateDict dict = model_dict();
  for (const lossless::LosslessCodec* codec :
       lossless::all_lossless_codecs()) {
    FedSzConfig config;
    config.lossless_id = codec->id();
    const FedSz fedsz{config};
    const Bytes blob = fedsz.compress(dict);
    const StateDict back = fedsz.decompress({blob.data(), blob.size()});
    EXPECT_EQ(back.size(), dict.size()) << codec->name();
  }
}

TEST(FedSzRoundTrip, EmptyStateDict) {
  const FedSz fedsz{FedSzConfig{}};
  const Bytes blob = fedsz.compress(StateDict{});
  EXPECT_TRUE(fedsz.decompress({blob.data(), blob.size()}).empty());
}

TEST(FedSzRoundTrip, ThresholdZeroRoutesEveryWeightLossy) {
  StateDict dict;
  dict.set("tiny.weight", Tensor::from_data({4}, {1, 2, 3, 4}));
  FedSzConfig config;
  config.lossy_threshold = 0;
  CompressionStats stats;
  const FedSz fedsz{config};
  fedsz.compress(dict, &stats);
  EXPECT_EQ(stats.lossy_original_bytes, 16u);
  EXPECT_EQ(stats.lossless_original_bytes, 0u);
}

// ---- stats accounting ----

TEST(FedSzStats, BytesAddUpAndRatioComputed) {
  const StateDict dict = model_dict("alexnet", nn::ModelScale::kBench);
  CompressionStats stats;
  const FedSz fedsz{FedSzConfig{}};
  const Bytes blob = fedsz.compress(dict, &stats);
  EXPECT_EQ(stats.original_bytes, dict.total_bytes());
  EXPECT_EQ(stats.lossy_original_bytes + stats.lossless_original_bytes,
            stats.original_bytes);
  EXPECT_EQ(stats.compressed_bytes, blob.size());
  // Payloads plus headers: compressed bytes exceed the sum of payloads but
  // only by framing overhead.
  EXPECT_GE(stats.compressed_bytes,
            stats.lossy_compressed_bytes + stats.lossless_compressed_bytes);
  EXPECT_LT(stats.compressed_bytes, stats.lossy_compressed_bytes +
                                        stats.lossless_compressed_bytes +
                                        4096);
  EXPECT_GT(stats.ratio(), 3.0);
  EXPECT_GE(stats.compress_seconds, 0.0);
}

TEST(FedSzStats, TighterBoundLowersRatio) {
  const StateDict dict = model_dict("alexnet", nn::ModelScale::kBench);
  auto ratio_at = [&](double rel) {
    FedSzConfig config;
    config.bound = lossy::ErrorBound::relative(rel);
    CompressionStats stats;
    FedSz(config).compress(dict, &stats);
    return stats.ratio();
  };
  EXPECT_GT(ratio_at(1e-1), ratio_at(1e-2));
  EXPECT_GT(ratio_at(1e-2), ratio_at(1e-4));
}

// ---- wire format robustness ----

TEST(FedSzWireFormat, BadMagicThrows) {
  const FedSz fedsz{FedSzConfig{}};
  Bytes blob = fedsz.compress(model_dict());
  blob[0] = 'X';
  EXPECT_THROW(fedsz.decompress({blob.data(), blob.size()}), CorruptStream);
}

TEST(FedSzWireFormat, BadVersionThrows) {
  const FedSz fedsz{FedSzConfig{}};
  Bytes blob = fedsz.compress(model_dict());
  blob[4] = 0xEE;
  EXPECT_THROW(fedsz.decompress({blob.data(), blob.size()}), CorruptStream);
}

TEST(FedSzWireFormat, TruncationThrows) {
  const FedSz fedsz{FedSzConfig{}};
  Bytes blob = fedsz.compress(model_dict());
  for (const double frac : {0.1, 0.5, 0.9}) {
    Bytes cut(blob.begin(),
              blob.begin() + static_cast<std::ptrdiff_t>(blob.size() * frac));
    EXPECT_THROW(fedsz.decompress({cut.data(), cut.size()}), CorruptStream);
  }
}

TEST(FedSzWireFormat, TrailingGarbageThrows) {
  const FedSz fedsz{FedSzConfig{}};
  Bytes blob = fedsz.compress(model_dict());
  blob.push_back(0xAB);
  EXPECT_THROW(fedsz.decompress({blob.data(), blob.size()}), CorruptStream);
}

TEST(FedSzWireFormat, UnknownCodecIdThrows) {
  // An unknown codec id byte is stream corruption (the decode contract is
  // CorruptStream for every malformed-input failure).
  const FedSz fedsz{FedSzConfig{}};
  Bytes blob = fedsz.compress(model_dict());
  blob[6] = 0x7F;  // lossy codec id byte
  EXPECT_THROW(fedsz.decompress({blob.data(), blob.size()}), CorruptStream);
}

TEST(FedSzConfigTest, InvalidBoundRejectedAtConstruction) {
  FedSzConfig config;
  config.bound = lossy::ErrorBound::relative(-1.0);
  EXPECT_THROW(FedSz{config}, InvalidArgument);
}

// ---- update codecs ----

TEST(UpdateCodecs, IdentityRoundTripIsExact) {
  const StateDict dict = model_dict();
  const auto codec = make_identity_codec();
  const auto encoded = codec->encode(dict);
  EXPECT_EQ(encoded.stats.ratio(), 1.0);
  CompressionStats decode_stats;
  decode_stats.decompress_seconds = -1.0;
  const StateDict back =
      codec->decode({encoded.payload.data(), encoded.payload.size()},
                    &decode_stats);
  EXPECT_TRUE(back.equals(dict));
  EXPECT_GE(decode_stats.decompress_seconds, 0.0);
  EXPECT_EQ(decode_stats.lossless_tensors, dict.size());
  EXPECT_EQ(codec->name(), "uncompressed");
}

TEST(UpdateCodecs, FedSzCodecCompressesAndNames) {
  const StateDict dict = model_dict("alexnet", nn::ModelScale::kBench);
  const auto codec = make_fedsz_codec();
  EXPECT_EQ(codec->name(), "fedsz-sz2");
  const auto encoded = codec->encode(dict);
  EXPECT_GT(encoded.stats.ratio(), 3.0);
  const StateDict back =
      codec->decode({encoded.payload.data(), encoded.payload.size()});
  EXPECT_EQ(back.size(), dict.size());
}

}  // namespace
}  // namespace fedsz::core

// Tests for the server aggregation strategies (FedAvg / FedAvgM / FedAdam)
// and the Laplace-mechanism noise codec.
#include <gtest/gtest.h>

#include <cmath>

#include "core/dp_analysis.hpp"
#include "core/dp_noise.hpp"
#include "core/fl/aggregator.hpp"

namespace fedsz::core {
namespace {

StateDict scalar_dict(float value) {
  StateDict dict;
  dict.set("w", Tensor::full({4}, value));
  return dict;
}

TEST(WeightedMean, ComputesSampleWeightedAverage) {
  const StateDict reference = scalar_dict(0.0f);
  const StateDict mean = weighted_mean(
      reference, {{scalar_dict(1.0f), 10}, {scalar_dict(4.0f), 30}});
  EXPECT_FLOAT_EQ(mean.get("w")[0], 0.25f * 1.0f + 0.75f * 4.0f);
}

TEST(WeightedMean, RejectsDegenerateInputs) {
  const StateDict reference = scalar_dict(0.0f);
  EXPECT_THROW(weighted_mean(reference, {}), InvalidArgument);
  EXPECT_THROW(weighted_mean(reference, {{scalar_dict(1.0f), 0}}),
               InvalidArgument);
}

TEST(FedAvgAggregator, MatchesWeightedMean) {
  auto aggregator = make_fedavg();
  EXPECT_EQ(aggregator->name(), "fedavg");
  StateDict global = scalar_dict(0.0f);
  aggregator->aggregate(global, {{scalar_dict(2.0f), 1},
                                 {scalar_dict(4.0f), 1}});
  EXPECT_FLOAT_EQ(global.get("w")[0], 3.0f);
}

TEST(FedAvgMAggregator, FirstRoundEqualsFedAvg) {
  auto aggregator = make_fedavgm(0.9f);
  StateDict global = scalar_dict(0.0f);
  aggregator->aggregate(global, {{scalar_dict(1.0f), 1}});
  EXPECT_FLOAT_EQ(global.get("w")[0], 1.0f);  // v = 1-0, g = 0+1
}

TEST(FedAvgMAggregator, MomentumCarriesAcrossRounds) {
  auto aggregator = make_fedavgm(0.5f);
  StateDict global = scalar_dict(0.0f);
  aggregator->aggregate(global, {{scalar_dict(1.0f), 1}});  // g=1, v=1
  // Clients report the same state as the server: plain FedAvg would stop,
  // momentum overshoots.
  aggregator->aggregate(global, {{scalar_dict(1.0f), 1}});
  // v = 0.5*1 + (1-1) = 0.5; g = 1.5
  EXPECT_FLOAT_EQ(global.get("w")[0], 1.5f);
}

TEST(FedAvgMAggregator, InvalidBetaThrows) {
  EXPECT_THROW(make_fedavgm(1.0f), InvalidArgument);
  EXPECT_THROW(make_fedavgm(-0.1f), InvalidArgument);
}

TEST(FedAdamAggregator, ConvergesTowardUpdates) {
  // Clients keep reporting 1.0; the adaptive server step overshoots then
  // settles (Adam's momentum), so assert convergence, not monotonicity.
  auto aggregator = make_fedadam({0.3f, 0.9f, 0.99f, 1e-3f});
  EXPECT_EQ(aggregator->name(), "fedadam");
  StateDict global = scalar_dict(0.0f);
  double after_first = 0.0;
  for (int round = 0; round < 60; ++round) {
    aggregator->aggregate(global, {{scalar_dict(1.0f), 1}});
    if (round == 0) after_first = global.get("w")[0];
  }
  const double final_value = global.get("w")[0];
  EXPECT_LT(std::fabs(final_value - 1.0), std::fabs(after_first - 1.0));
  EXPECT_NEAR(final_value, 1.0, 0.3);
}

TEST(FedAdamAggregator, InvalidLearningRateThrows) {
  EXPECT_THROW(make_fedadam({0.0f, 0.9f, 0.99f, 1e-3f}), InvalidArgument);
}

// ---- streaming vs. batch equivalence ----
// The event-driven coordinator folds updates through begin_round /
// accumulate / finalize as they arrive; these tests pin that the streaming
// path matches batch aggregate() on the same updates for every strategy,
// including the stateful ones, across multiple rounds.

StateDict varied_dict(float base) {
  StateDict dict;
  Tensor w({8});
  for (std::size_t i = 0; i < w.numel(); ++i)
    w[i] = base + 0.37f * static_cast<float>(i) - 1.1f;
  dict.set("layer.weight", w);
  Tensor b({3});
  for (std::size_t i = 0; i < b.numel(); ++i)
    b[i] = -base + 0.05f * static_cast<float>(i);
  dict.set("layer.bias", b);
  return dict;
}

void expect_dicts_near(const StateDict& a, const StateDict& b,
                       float tolerance) {
  ASSERT_EQ(a.size(), b.size());
  for (const auto& [name, tensor] : a) {
    const Tensor& other = b.get(name);
    ASSERT_EQ(tensor.numel(), other.numel());
    for (std::size_t k = 0; k < tensor.numel(); ++k)
      EXPECT_NEAR(tensor[k], other[k], tolerance) << name << "[" << k << "]";
  }
}

void expect_streaming_matches_batch(const AggregatorPtr& streaming,
                                    const AggregatorPtr& batch) {
  StateDict global_streaming = varied_dict(0.0f);
  StateDict global_batch = varied_dict(0.0f);
  for (int round = 0; round < 3; ++round) {
    std::vector<std::pair<StateDict, std::size_t>> updates;
    for (int u = 0; u < 4; ++u)
      updates.emplace_back(
          varied_dict(0.5f * static_cast<float>(round + 1) +
                      0.25f * static_cast<float>(u)),
          static_cast<std::size_t>(3 * u + 1));  // uneven weights

    streaming->begin_round(global_streaming);
    for (const auto& [update, samples] : updates)
      streaming->accumulate(update, static_cast<double>(samples));
    streaming->finalize(global_streaming);

    batch->aggregate(global_batch, updates);
    expect_dicts_near(global_streaming, global_batch, 1e-5f);
  }
}

TEST(StreamingAggregation, FedAvgMatchesBatch) {
  expect_streaming_matches_batch(make_fedavg(), make_fedavg());
}

TEST(StreamingAggregation, FedAvgMMatchesBatch) {
  expect_streaming_matches_batch(make_fedavgm(0.7f), make_fedavgm(0.7f));
}

TEST(StreamingAggregation, FedAdamMatchesBatch) {
  expect_streaming_matches_batch(make_fedadam({0.3f, 0.9f, 0.99f, 1e-3f}),
                                 make_fedadam({0.3f, 0.9f, 0.99f, 1e-3f}));
}

TEST(StreamingAggregation, BatchEqualsWeightedMeanForFedAvg) {
  std::vector<std::pair<StateDict, std::size_t>> updates{
      {varied_dict(1.0f), 10}, {varied_dict(2.5f), 30}};
  StateDict global = varied_dict(0.0f);
  make_fedavg()->aggregate(global, updates);
  expect_dicts_near(global, weighted_mean(varied_dict(0.0f), updates), 0.0f);
}

TEST(StreamingAggregation, MeanOfIdenticalUpdatesIsBitExact) {
  // West's online update folds (update - mean) = 0 for identical updates,
  // so the mean stays bit-exact whatever the weights.
  const StateDict update = varied_dict(1.234f);
  StreamingMean mean;
  mean.begin(update.zeros_like());
  mean.add(update, 3.0);
  mean.add(update, 17.0);
  mean.add(update, 1.0);
  EXPECT_TRUE(mean.finalize().equals(update));
}

TEST(StreamingAggregation, ShuffledUpdateOrderMatchesPositionalBitExactly) {
  // StreamingMean::add takes the positional fast path when an update's
  // entries line up with the accumulator's order, and falls back to
  // name-keyed lookup otherwise. Both orders must fold the same tensors
  // with the same arithmetic, so the results are bit-identical.
  const StateDict a = varied_dict(1.0f);
  StateDict a_shuffled;  // same entries, reversed insertion order
  a_shuffled.set("layer.bias", a.get("layer.bias"));
  a_shuffled.set("layer.weight", a.get("layer.weight"));

  StreamingMean positional, shuffled;
  positional.begin(a.zeros_like());
  shuffled.begin(a.zeros_like());
  positional.add(a, 2.0);
  shuffled.add(a_shuffled, 2.0);
  positional.add(varied_dict(-0.5f), 5.0);
  shuffled.add(varied_dict(-0.5f), 5.0);
  EXPECT_TRUE(positional.finalize().equals(shuffled.finalize()));
}

TEST(StreamingAggregation, UpdatesWithExtraEntriesAreTolerated) {
  // The accumulator iterates its own structure, so an update carrying
  // additional tensors (e.g. optimizer state a client forgot to strip)
  // contributes only the matching entries.
  StateDict update = scalar_dict(4.0f);
  update.set("optimizer.step", Tensor::full({1}, 9.0f));
  StreamingMean mean;
  mean.begin(scalar_dict(0.0f));
  mean.add(update, 1.0);
  const StateDict result = mean.finalize();
  EXPECT_EQ(result.size(), 1u);
  EXPECT_FLOAT_EQ(result.get("w")[0], 4.0f);
}

TEST(StreamingAggregation, FractionalWeightsSupported) {
  // Staleness-scaled weights are fractional; 0.5 vs 1.5 weighs 1:3.
  StreamingMean mean;
  mean.begin(scalar_dict(0.0f));
  mean.add(scalar_dict(0.0f), 0.5);
  mean.add(scalar_dict(4.0f), 1.5);
  EXPECT_FLOAT_EQ(mean.finalize().get("w")[0], 3.0f);
}

TEST(StreamingAggregation, MismatchedUpdateStructureThrows) {
  StreamingMean mean;
  mean.begin(scalar_dict(0.0f));
  // Same name, wrong shape: must throw, never read out of bounds.
  StateDict short_update;
  short_update.set("w", Tensor::full({2}, 1.0f));
  EXPECT_THROW(mean.add(short_update, 1.0), InvalidArgument);
  // Missing entry entirely.
  StreamingMean missing;
  missing.begin(scalar_dict(0.0f));
  StateDict renamed;
  renamed.set("other", Tensor::full({4}, 1.0f));
  EXPECT_THROW(missing.add(renamed, 1.0), InvalidArgument);
}

TEST(StreamingAggregation, ApiMisuseThrows) {
  StreamingMean mean;
  EXPECT_THROW(mean.add(scalar_dict(1.0f), 1.0), InvalidArgument);
  EXPECT_THROW(mean.finalize(), InvalidArgument);
  mean.begin(scalar_dict(0.0f));
  EXPECT_THROW(mean.add(scalar_dict(1.0f), -1.0), InvalidArgument);
  EXPECT_THROW(mean.begin(scalar_dict(0.0f)), InvalidArgument);
  // Zero accumulated weight is degenerate, as in the batch path.
  mean.add(scalar_dict(1.0f), 0.0);
  EXPECT_THROW(mean.finalize(), InvalidArgument);

  auto aggregator = make_fedavg();
  StateDict global = scalar_dict(0.0f);
  EXPECT_THROW(aggregator->finalize(global), InvalidArgument);
  EXPECT_THROW(aggregator->accumulate(scalar_dict(1.0f), 1.0),
               InvalidArgument);
  // A failed batch round must not leave the aggregator stuck open.
  EXPECT_THROW(aggregator->aggregate(global, {}), InvalidArgument);
  EXPECT_FALSE(aggregator->round_open());
  aggregator->aggregate(global, {{scalar_dict(2.0f), 1}});
  EXPECT_FLOAT_EQ(global.get("w")[0], 2.0f);
}

TEST(LaplaceNoise, PerturbsOnlyLossyEligibleTensors) {
  StateDict dict;
  dict.set("big.weight", Tensor::full({2048}, 1.0f));
  dict.get_mutable("big.weight")[0] = -1.0f;  // give the tensor a range
  dict.set("small.bias", Tensor::full({4}, 0.5f));
  const auto codec = make_laplace_noise_codec({0.05, 1000, 42});
  const auto encoded = codec->encode(dict);
  const StateDict back =
      codec->decode({encoded.payload.data(), encoded.payload.size()});
  EXPECT_TRUE(back.get("small.bias").equals(dict.get("small.bias")));
  EXPECT_FALSE(back.get("big.weight").equals(dict.get("big.weight")));
}

TEST(LaplaceNoise, ErrorDistributionIsLaplacian) {
  StateDict dict;
  Tensor tensor({20000});
  for (std::size_t i = 0; i < tensor.numel(); ++i)
    tensor[i] = static_cast<float>(i % 100) / 50.0f - 1.0f;  // range 2
  dict.set("layer.weight", tensor);
  const auto codec = make_laplace_noise_codec({0.02, 1000, 7});
  const auto encoded = codec->encode(dict);
  const StateDict back =
      codec->decode({encoded.payload.data(), encoded.payload.size()});
  const ErrorDistribution dist = analyze_state_dict_errors(dict, back);
  EXPECT_TRUE(dist.laplace_fits_better());
  // b = 0.02 * range(2) = 0.04
  EXPECT_NEAR(dist.laplace.b, 0.04, 0.005);
}

TEST(LaplaceNoise, ComposesWithFedSz) {
  StateDict dict;
  Tensor tensor({4096});
  for (std::size_t i = 0; i < tensor.numel(); ++i)
    tensor[i] = static_cast<float>(i) / 4096.0f;
  dict.set("layer.weight", tensor);
  const auto codec =
      make_laplace_noise_codec({0.01, 1000, 3}, make_fedsz_codec());
  EXPECT_EQ(codec->name(), "laplace+fedsz-sz2");
  const auto encoded = codec->encode(dict);
  EXPECT_LT(encoded.payload.size(), dict.total_bytes());
  const StateDict back =
      codec->decode({encoded.payload.data(), encoded.payload.size()});
  EXPECT_TRUE(back.get("layer.weight").same_shape(tensor));
}

TEST(LaplaceNoise, InvalidScaleThrows) {
  EXPECT_THROW(make_laplace_noise_codec({0.0, 1000, 1}), InvalidArgument);
}

}  // namespace
}  // namespace fedsz::core

// Tests for the server aggregation strategies (FedAvg / FedAvgM / FedAdam)
// and the Laplace-mechanism noise codec.
#include <gtest/gtest.h>

#include <cmath>

#include "core/dp_analysis.hpp"
#include "core/dp_noise.hpp"
#include "core/fl/aggregator.hpp"

namespace fedsz::core {
namespace {

StateDict scalar_dict(float value) {
  StateDict dict;
  dict.set("w", Tensor::full({4}, value));
  return dict;
}

TEST(WeightedMean, ComputesSampleWeightedAverage) {
  const StateDict reference = scalar_dict(0.0f);
  const StateDict mean = weighted_mean(
      reference, {{scalar_dict(1.0f), 10}, {scalar_dict(4.0f), 30}});
  EXPECT_FLOAT_EQ(mean.get("w")[0], 0.25f * 1.0f + 0.75f * 4.0f);
}

TEST(WeightedMean, RejectsDegenerateInputs) {
  const StateDict reference = scalar_dict(0.0f);
  EXPECT_THROW(weighted_mean(reference, {}), InvalidArgument);
  EXPECT_THROW(weighted_mean(reference, {{scalar_dict(1.0f), 0}}),
               InvalidArgument);
}

TEST(FedAvgAggregator, MatchesWeightedMean) {
  auto aggregator = make_fedavg();
  EXPECT_EQ(aggregator->name(), "fedavg");
  StateDict global = scalar_dict(0.0f);
  aggregator->aggregate(global, {{scalar_dict(2.0f), 1},
                                 {scalar_dict(4.0f), 1}});
  EXPECT_FLOAT_EQ(global.get("w")[0], 3.0f);
}

TEST(FedAvgMAggregator, FirstRoundEqualsFedAvg) {
  auto aggregator = make_fedavgm(0.9f);
  StateDict global = scalar_dict(0.0f);
  aggregator->aggregate(global, {{scalar_dict(1.0f), 1}});
  EXPECT_FLOAT_EQ(global.get("w")[0], 1.0f);  // v = 1-0, g = 0+1
}

TEST(FedAvgMAggregator, MomentumCarriesAcrossRounds) {
  auto aggregator = make_fedavgm(0.5f);
  StateDict global = scalar_dict(0.0f);
  aggregator->aggregate(global, {{scalar_dict(1.0f), 1}});  // g=1, v=1
  // Clients report the same state as the server: plain FedAvg would stop,
  // momentum overshoots.
  aggregator->aggregate(global, {{scalar_dict(1.0f), 1}});
  // v = 0.5*1 + (1-1) = 0.5; g = 1.5
  EXPECT_FLOAT_EQ(global.get("w")[0], 1.5f);
}

TEST(FedAvgMAggregator, InvalidBetaThrows) {
  EXPECT_THROW(make_fedavgm(1.0f), InvalidArgument);
  EXPECT_THROW(make_fedavgm(-0.1f), InvalidArgument);
}

TEST(FedAdamAggregator, ConvergesTowardUpdates) {
  // Clients keep reporting 1.0; the adaptive server step overshoots then
  // settles (Adam's momentum), so assert convergence, not monotonicity.
  auto aggregator = make_fedadam({0.3f, 0.9f, 0.99f, 1e-3f});
  EXPECT_EQ(aggregator->name(), "fedadam");
  StateDict global = scalar_dict(0.0f);
  double after_first = 0.0;
  for (int round = 0; round < 60; ++round) {
    aggregator->aggregate(global, {{scalar_dict(1.0f), 1}});
    if (round == 0) after_first = global.get("w")[0];
  }
  const double final_value = global.get("w")[0];
  EXPECT_LT(std::fabs(final_value - 1.0), std::fabs(after_first - 1.0));
  EXPECT_NEAR(final_value, 1.0, 0.3);
}

TEST(FedAdamAggregator, InvalidLearningRateThrows) {
  EXPECT_THROW(make_fedadam({0.0f, 0.9f, 0.99f, 1e-3f}), InvalidArgument);
}

TEST(LaplaceNoise, PerturbsOnlyLossyEligibleTensors) {
  StateDict dict;
  dict.set("big.weight", Tensor::full({2048}, 1.0f));
  dict.get_mutable("big.weight")[0] = -1.0f;  // give the tensor a range
  dict.set("small.bias", Tensor::full({4}, 0.5f));
  const auto codec = make_laplace_noise_codec({0.05, 1000, 42});
  const auto encoded = codec->encode(dict);
  const StateDict back =
      codec->decode({encoded.payload.data(), encoded.payload.size()});
  EXPECT_TRUE(back.get("small.bias").equals(dict.get("small.bias")));
  EXPECT_FALSE(back.get("big.weight").equals(dict.get("big.weight")));
}

TEST(LaplaceNoise, ErrorDistributionIsLaplacian) {
  StateDict dict;
  Tensor tensor({20000});
  for (std::size_t i = 0; i < tensor.numel(); ++i)
    tensor[i] = static_cast<float>(i % 100) / 50.0f - 1.0f;  // range 2
  dict.set("layer.weight", tensor);
  const auto codec = make_laplace_noise_codec({0.02, 1000, 7});
  const auto encoded = codec->encode(dict);
  const StateDict back =
      codec->decode({encoded.payload.data(), encoded.payload.size()});
  const ErrorDistribution dist = analyze_state_dict_errors(dict, back);
  EXPECT_TRUE(dist.laplace_fits_better());
  // b = 0.02 * range(2) = 0.04
  EXPECT_NEAR(dist.laplace.b, 0.04, 0.005);
}

TEST(LaplaceNoise, ComposesWithFedSz) {
  StateDict dict;
  Tensor tensor({4096});
  for (std::size_t i = 0; i < tensor.numel(); ++i)
    tensor[i] = static_cast<float>(i) / 4096.0f;
  dict.set("layer.weight", tensor);
  const auto codec =
      make_laplace_noise_codec({0.01, 1000, 3}, make_fedsz_codec());
  EXPECT_EQ(codec->name(), "laplace+fedsz-sz2");
  const auto encoded = codec->encode(dict);
  EXPECT_LT(encoded.payload.size(), dict.total_bytes());
  const StateDict back =
      codec->decode({encoded.payload.data(), encoded.payload.size()});
  EXPECT_TRUE(back.get("layer.weight").same_shape(tensor));
}

TEST(LaplaceNoise, InvalidScaleThrows) {
  EXPECT_THROW(make_laplace_noise_codec({0.0, 1000, 1}), InvalidArgument);
}

}  // namespace
}  // namespace fedsz::core

// Wire-frame hardening: round-trips through the incremental decoder under
// adversarial read boundaries, plus a randomized corrupt-frame suite —
// every single-byte flip in the header region, truncations at every
// length, oversized length prefixes, unknown versions/types, and payload
// CRC damage must throw CorruptStream (and poison the decoder) before any
// payload byte is interpreted.
#include <gtest/gtest.h>

#include <cstring>

#include "net/wire.hpp"
#include "util/rng.hpp"

namespace fedsz::net {
namespace {

Bytes make_payload(std::size_t size, std::uint64_t seed) {
  Rng rng(seed);
  Bytes payload(size);
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next_u64() & 0xFF);
  return payload;
}

TEST(WireTest, RoundTripAllTypes) {
  for (const FrameType type :
       {FrameType::kHello, FrameType::kRoundOpen, FrameType::kUpdate,
        FrameType::kPartial, FrameType::kBroadcast, FrameType::kAck,
        FrameType::kHeartbeat, FrameType::kBye}) {
    const Bytes payload =
        make_payload(static_cast<std::size_t>(type) * 37, 1);
    const Bytes framed = encode_frame(type, {payload.data(), payload.size()});
    ASSERT_EQ(framed.size(), kWireHeaderBytes + payload.size());
    FrameDecoder decoder;
    decoder.feed({framed.data(), framed.size()});
    const auto frame = decoder.next();
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(frame->type, type);
    EXPECT_EQ(frame->payload, payload);
    EXPECT_FALSE(decoder.next().has_value());
    EXPECT_EQ(decoder.buffered(), 0u);
  }
}

TEST(WireTest, IncrementalFeedAnyBoundary) {
  // Three frames back to back, delivered at every possible split point —
  // the decoder must produce the same frames regardless of read chunking.
  Bytes stream;
  for (int k = 0; k < 3; ++k) {
    const Bytes payload = make_payload(17 * static_cast<std::size_t>(k), 7);
    const Bytes framed =
        encode_frame(FrameType::kPartial, {payload.data(), payload.size()});
    stream.insert(stream.end(), framed.begin(), framed.end());
  }
  for (std::size_t split = 0; split <= stream.size(); ++split) {
    FrameDecoder decoder;
    decoder.feed({stream.data(), split});
    std::size_t frames = 0;
    while (decoder.next()) ++frames;
    decoder.feed({stream.data() + split, stream.size() - split});
    while (decoder.next()) ++frames;
    EXPECT_EQ(frames, 3u) << "split at " << split;
    EXPECT_FALSE(decoder.mid_frame());
  }
}

TEST(WireTest, MidFrameReportsTruncation) {
  const Bytes payload = make_payload(64, 3);
  const Bytes framed =
      encode_frame(FrameType::kBroadcast, {payload.data(), payload.size()});
  for (const std::size_t cut : {std::size_t{1}, kWireHeaderBytes - 1,
                                kWireHeaderBytes, framed.size() - 1}) {
    FrameDecoder decoder;
    decoder.feed({framed.data(), cut});
    EXPECT_FALSE(decoder.next().has_value());
    EXPECT_TRUE(decoder.mid_frame()) << "cut at " << cut;
  }
  FrameDecoder decoder;
  decoder.feed({framed.data(), framed.size()});
  ASSERT_TRUE(decoder.next().has_value());
  EXPECT_FALSE(decoder.mid_frame());
}

TEST(WireTest, EverySingleHeaderByteFlipIsCorrupt) {
  // Flip each bit of each header byte in turn. The CRC covers the header
  // prefix as well as the payload, so every flip must either throw
  // CorruptStream (structural check or checksum) or leave the decoder
  // waiting for bytes that never come (a grown length prefix). No flip
  // may ever decode as a valid frame.
  const Bytes payload = make_payload(48, 11);
  const Bytes framed =
      encode_frame(FrameType::kRoundOpen, {payload.data(), payload.size()});
  std::size_t corrupt = 0, pending = 0, decoded = 0;
  for (std::size_t byte = 0; byte < kWireHeaderBytes; ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      Bytes damaged = framed;
      damaged[byte] = static_cast<std::uint8_t>(
          damaged[byte] ^ (1u << bit));
      FrameDecoder decoder;
      decoder.feed({damaged.data(), damaged.size()});
      try {
        const auto frame = decoder.next();
        if (frame.has_value()) {
          ++decoded;  // must never happen; asserted below
        } else {
          // A grown length prefix: the decoder waits for bytes that never
          // come. EOF handling upstream (FrameChannel) turns this into
          // CorruptStream via mid_frame().
          EXPECT_TRUE(decoder.mid_frame());
          ++pending;
        }
      } catch (const CorruptStream&) {
        ++corrupt;
        // Poisoned: every later call rethrows even with more bytes fed.
        decoder.feed({framed.data(), framed.size()});
        EXPECT_THROW(decoder.next(), CorruptStream);
      }
    }
  }
  EXPECT_EQ(decoded, 0u) << "a header flip produced a valid frame";
  EXPECT_EQ(corrupt + pending, 8 * kWireHeaderBytes);
  EXPECT_GT(corrupt, 0u);
}

TEST(WireTest, RandomPayloadDamageFailsCrc) {
  Rng rng(99);
  const Bytes payload = make_payload(256, 5);
  const Bytes framed =
      encode_frame(FrameType::kPartial, {payload.data(), payload.size()});
  for (int trial = 0; trial < 200; ++trial) {
    Bytes damaged = framed;
    const std::size_t at =
        kWireHeaderBytes +
        static_cast<std::size_t>(rng.next_u64() % payload.size());
    const auto flip = static_cast<std::uint8_t>(1u << (rng.next_u64() % 8));
    damaged[at] = static_cast<std::uint8_t>(damaged[at] ^ flip);
    FrameDecoder decoder;
    decoder.feed({damaged.data(), damaged.size()});
    EXPECT_THROW(decoder.next(), CorruptStream) << "flip at " << at;
  }
}

TEST(WireTest, OversizedLengthRejectedBeforeAllocation) {
  // A small decoder cap: a declared length just above it must throw from
  // the header alone — no payload bytes are ever required (or buffered).
  const Bytes payload = make_payload(32, 13);
  const Bytes framed =
      encode_frame(FrameType::kHello, {payload.data(), payload.size()});
  FrameDecoder decoder(/*max_payload=*/16);
  decoder.feed({framed.data(), kWireHeaderBytes});  // header only
  EXPECT_THROW(decoder.next(), CorruptStream);
}

TEST(WireTest, UnknownVersionAndTypeRejected) {
  const Bytes payload = make_payload(8, 17);
  {
    Bytes framed =
        encode_frame(FrameType::kAck, {payload.data(), payload.size()});
    framed[4] = kWireVersion + 1;  // version byte
    FrameDecoder decoder;
    decoder.feed({framed.data(), framed.size()});
    EXPECT_THROW(decoder.next(), CorruptStream);
  }
  for (const std::uint8_t bad_type : {std::uint8_t{0}, std::uint8_t{9},
                                      std::uint8_t{0x7F}, std::uint8_t{0xFF}}) {
    Bytes framed =
        encode_frame(FrameType::kAck, {payload.data(), payload.size()});
    framed[5] = bad_type;  // type byte
    FrameDecoder decoder;
    decoder.feed({framed.data(), framed.size()});
    EXPECT_THROW(decoder.next(), CorruptStream) << unsigned(bad_type);
  }
}

TEST(WireTest, NonZeroFlagsRejected) {
  // Flags are reserved-zero in version 1; a frame carrying any flag bit
  // comes from a future (incompatible) writer.
  const Bytes payload = make_payload(8, 19);
  Bytes framed =
      encode_frame(FrameType::kBye, {payload.data(), payload.size()});
  framed[6] = 0x01;
  FrameDecoder decoder;
  decoder.feed({framed.data(), framed.size()});
  EXPECT_THROW(decoder.next(), CorruptStream);
}

TEST(WireTest, RandomGarbageNeverDecodes) {
  // Random byte soup must never produce a frame: the magic + version +
  // type + CRC gauntlet rejects it (or leaves the decoder waiting, never
  // returning data it could not authenticate).
  Rng rng(2024);
  for (int trial = 0; trial < 300; ++trial) {
    const Bytes garbage =
        make_payload(1 + static_cast<std::size_t>(rng.next_u64() % 96),
                     rng.next_u64());
    FrameDecoder decoder;
    decoder.feed({garbage.data(), garbage.size()});
    try {
      const auto frame = decoder.next();
      EXPECT_FALSE(frame.has_value()) << "garbage decoded as a frame";
    } catch (const CorruptStream&) {
      // expected for most trials
    }
  }
}

}  // namespace
}  // namespace fedsz::net

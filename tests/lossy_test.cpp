// Parameterized conformance and property tests over the EBLC suite: the
// error-bound guarantee (the paper's core correctness property), compression
// ratio monotonicity in the bound, edge cases, and input validation.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "compress/lossy/lossy.hpp"
#include "data/scientific.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace fedsz::lossy {
namespace {

// ---- input distributions ----

std::vector<float> dist_laplace_weights(Rng& rng, std::size_t n) {
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.laplace(0.0, 0.05));
  return v;
}

std::vector<float> dist_uniform(Rng& rng, std::size_t n) {
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.uniform(-1.0, 1.0));
  return v;
}

std::vector<float> dist_smooth(Rng& rng, std::size_t n) {
  return data::smooth_field(n, rng.next_u64());
}

std::vector<float> dist_constant(Rng&, std::size_t n) {
  return std::vector<float>(n, 0.75f);
}

std::vector<float> dist_spiky_mixture(Rng& rng, std::size_t n) {
  std::vector<float> v(n);
  for (auto& x : v)
    x = rng.uniform() < 0.01 ? static_cast<float>(rng.uniform(-2.0, 2.0))
                             : static_cast<float>(rng.normal(0.0, 0.01));
  return v;
}

struct Distribution {
  const char* name;
  std::vector<float> (*make)(Rng&, std::size_t);
};

const Distribution kDistributions[] = {
    {"laplace_weights", dist_laplace_weights},
    {"uniform", dist_uniform},
    {"smooth_field", dist_smooth},
    {"constant", dist_constant},
    {"spiky_mixture", dist_spiky_mixture},
};

struct Case {
  LossyId codec;
  const Distribution* dist;
  double rel_bound;
};

std::vector<Case> all_cases() {
  std::vector<Case> cases;
  for (const LossyCodec* codec : all_lossy_codecs())
    for (const Distribution& d : kDistributions)
      for (const double bound : {1e-1, 1e-2, 1e-3, 1e-4})
        cases.push_back({codec->id(), &d, bound});
  return cases;
}

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  const int exponent =
      static_cast<int>(std::lround(-std::log10(info.param.rel_bound)));
  return lossy_codec(info.param.codec).name() + "_" + info.param.dist->name +
         "_1em" + std::to_string(exponent);
}

class LossyProperty : public ::testing::TestWithParam<Case> {};

TEST_P(LossyProperty, RoundTripSizeAndErrorBound) {
  const auto& [id, dist, rel] = GetParam();
  const LossyCodec& codec = lossy_codec(id);
  Rng rng(42);
  const auto data = dist->make(rng, 20000);
  const ErrorBound bound = ErrorBound::relative(rel);
  const Bytes compressed = codec.compress({data.data(), data.size()}, bound);
  const auto back = codec.decompress({compressed.data(), compressed.size()});
  ASSERT_EQ(back.size(), data.size());

  const double eps = bound.absolute_for({data.data(), data.size()});
  const double max_err = stats::max_abs_error({data.data(), data.size()},
                                              {back.data(), back.size()});
  if (codec.strictly_bounded()) {
    // Tiny slack for float32 rounding of the double-precision guarantee.
    EXPECT_LE(max_err, eps * (1.0 + 1e-5) + 1e-12)
        << codec.name() << " violated its bound";
  } else {
    // ZFP fixed-precision: calibrated, allow a small constant factor.
    EXPECT_LE(max_err, 8.0 * eps + 1e-12) << codec.name();
  }
}

TEST_P(LossyProperty, DecompressIsDeterministic) {
  const auto& [id, dist, rel] = GetParam();
  const LossyCodec& codec = lossy_codec(id);
  Rng rng(43);
  const auto data = dist->make(rng, 5000);
  const ErrorBound bound = ErrorBound::relative(rel);
  const Bytes c1 = codec.compress({data.data(), data.size()}, bound);
  const Bytes c2 = codec.compress({data.data(), data.size()}, bound);
  EXPECT_EQ(c1, c2);
  EXPECT_EQ(codec.decompress({c1.data(), c1.size()}),
            codec.decompress({c2.data(), c2.size()}));
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, LossyProperty,
                         ::testing::ValuesIn(all_cases()), case_name);

// ---- per-codec edge cases, parameterized over codec only ----

class LossyCodecTest : public ::testing::TestWithParam<LossyId> {
 protected:
  const LossyCodec& codec() const { return lossy_codec(GetParam()); }
};

TEST_P(LossyCodecTest, EmptyInput) {
  const Bytes compressed = codec().compress({}, ErrorBound::relative(1e-2));
  EXPECT_TRUE(codec().decompress({compressed.data(),
                                  compressed.size()}).empty());
}

TEST_P(LossyCodecTest, SingleElement) {
  const std::vector<float> data{3.14159f};
  const Bytes compressed =
      codec().compress({data.data(), data.size()}, ErrorBound::absolute(0.01));
  const auto back = codec().decompress({compressed.data(), compressed.size()});
  ASSERT_EQ(back.size(), 1u);
  EXPECT_NEAR(back[0], data[0], 0.011);
}

TEST_P(LossyCodecTest, TwoElements) {
  const std::vector<float> data{-1.0f, 1.0f};
  const Bytes compressed =
      codec().compress({data.data(), data.size()}, ErrorBound::relative(1e-3));
  const auto back = codec().decompress({compressed.data(), compressed.size()});
  ASSERT_EQ(back.size(), 2u);
  EXPECT_NEAR(back[0], -1.0f, 0.02);
  EXPECT_NEAR(back[1], 1.0f, 0.02);
}

TEST_P(LossyCodecTest, NonBlockAlignedLengths) {
  Rng rng(7);
  for (const std::size_t n : {1u, 3u, 4u, 5u, 127u, 128u, 129u, 255u, 257u,
                              1000u}) {
    std::vector<float> data(n);
    for (auto& v : data) v = static_cast<float>(rng.normal(0.0, 1.0));
    const Bytes compressed = codec().compress({data.data(), data.size()},
                                              ErrorBound::relative(1e-2));
    const auto back =
        codec().decompress({compressed.data(), compressed.size()});
    ASSERT_EQ(back.size(), n) << codec().name() << " n=" << n;
  }
}

TEST_P(LossyCodecTest, ConstantArrayReconstructsExactlyEnough) {
  const std::vector<float> data(1000, -2.5f);
  const Bytes compressed =
      codec().compress({data.data(), data.size()}, ErrorBound::relative(1e-2));
  const auto back = codec().decompress({compressed.data(), compressed.size()});
  for (const float v : back) EXPECT_NEAR(v, -2.5f, 1e-4);
  // Constant data is highly compressible for every codec design (ZFP still
  // spends a fixed per-block exponent + significance budget).
  EXPECT_LT(compressed.size(), data.size() * sizeof(float) / 4);
}

TEST_P(LossyCodecTest, RejectsNonFiniteInput) {
  std::vector<float> data(100, 1.0f);
  data[50] = std::numeric_limits<float>::quiet_NaN();
  EXPECT_THROW(codec().compress({data.data(), data.size()},
                                ErrorBound::relative(1e-2)),
               InvalidArgument);
  data[50] = std::numeric_limits<float>::infinity();
  EXPECT_THROW(codec().compress({data.data(), data.size()},
                                ErrorBound::relative(1e-2)),
               InvalidArgument);
}

TEST_P(LossyCodecTest, RejectsInvalidBound) {
  const std::vector<float> data(10, 1.0f);
  EXPECT_THROW(codec().compress({data.data(), data.size()},
                                ErrorBound::relative(0.0)),
               InvalidArgument);
}

TEST_P(LossyCodecTest, RatioDecreasesAsBoundTightens) {
  Rng rng(11);
  const auto data = dist_laplace_weights(rng, 50000);
  double previous_size = 0.0;
  for (const double rel : {1e-1, 1e-2, 1e-3, 1e-4}) {
    const Bytes compressed = codec().compress({data.data(), data.size()},
                                              ErrorBound::relative(rel));
    EXPECT_GE(static_cast<double>(compressed.size()) * 1.02,
              previous_size)
        << codec().name() << " at rel=" << rel;
    previous_size = static_cast<double>(compressed.size());
  }
}

TEST_P(LossyCodecTest, AbsoluteBoundRespected) {
  Rng rng(13);
  const auto data = dist_uniform(rng, 10000);
  const double eps = 0.005;
  const Bytes compressed =
      codec().compress({data.data(), data.size()}, ErrorBound::absolute(eps));
  const auto back = codec().decompress({compressed.data(), compressed.size()});
  const double max_err = stats::max_abs_error({data.data(), data.size()},
                                              {back.data(), back.size()});
  const double slack = codec().strictly_bounded() ? 1.0 + 1e-5 : 8.0;
  EXPECT_LE(max_err, eps * slack);
}

TEST_P(LossyCodecTest, SmoothDataCompressesBetterThanSpiky) {
  Rng rng(17);
  const auto smooth = dist_smooth(rng, 40000);
  const auto spiky = dist_uniform(rng, 40000);
  const ErrorBound bound = ErrorBound::relative(1e-3);
  const auto cs = codec().compress({smooth.data(), smooth.size()}, bound);
  const auto cp = codec().compress({spiky.data(), spiky.size()}, bound);
  EXPECT_LT(cs.size(), cp.size()) << codec().name();
}

TEST_P(LossyCodecTest, DecompressTruncatedThrows) {
  Rng rng(19);
  const auto data = dist_laplace_weights(rng, 5000);
  Bytes compressed = codec().compress({data.data(), data.size()},
                                      ErrorBound::relative(1e-2));
  compressed.resize(compressed.size() / 2);
  EXPECT_THROW(codec().decompress({compressed.data(), compressed.size()}),
               CorruptStream);
}

INSTANTIATE_TEST_SUITE_P(
    AllCodecs, LossyCodecTest,
    ::testing::Values(LossyId::kSz2, LossyId::kSz3, LossyId::kSzx,
                      LossyId::kZfp),
    [](const ::testing::TestParamInfo<LossyId>& info) {
      return lossy_codec(info.param).name();
    });

// ---- cross-codec expectations from Table I ----

TEST(LossyComparison, PredictionCodecsBeatZfpOnSpikyWeights) {
  Rng rng(23);
  const auto data = dist_laplace_weights(rng, 100000);
  const ErrorBound bound = ErrorBound::relative(1e-2);
  const auto sz2 =
      lossy_codec(LossyId::kSz2).compress({data.data(), data.size()}, bound);
  const auto zfp =
      lossy_codec(LossyId::kZfp).compress({data.data(), data.size()}, bound);
  EXPECT_LT(sz2.size(), zfp.size());
}

TEST(LossyComparison, Sz2AndSz3RatiosAreClose) {
  Rng rng(29);
  const auto data = dist_laplace_weights(rng, 100000);
  const ErrorBound bound = ErrorBound::relative(1e-2);
  const double sz2 = static_cast<double>(
      lossy_codec(LossyId::kSz2)
          .compress({data.data(), data.size()}, bound)
          .size());
  const double sz3 = static_cast<double>(
      lossy_codec(LossyId::kSz3)
          .compress({data.data(), data.size()}, bound)
          .size());
  EXPECT_LT(std::fabs(sz2 - sz3) / sz2, 0.35);
}

TEST(LossyComparison, StrictBoundednessFlags) {
  EXPECT_TRUE(lossy_codec(LossyId::kSz2).strictly_bounded());
  EXPECT_TRUE(lossy_codec(LossyId::kSz3).strictly_bounded());
  EXPECT_TRUE(lossy_codec(LossyId::kSzx).strictly_bounded());
  EXPECT_FALSE(lossy_codec(LossyId::kZfp).strictly_bounded());
}

TEST(LossyRegistry, LookupByNameAndId) {
  EXPECT_EQ(lossy_codec("sz2").id(), LossyId::kSz2);
  EXPECT_EQ(lossy_codec(LossyId::kSz3).name(), "sz3");
  EXPECT_THROW(lossy_codec("sz9"), InvalidArgument);
  EXPECT_THROW(lossy_codec(static_cast<LossyId>(0)), InvalidArgument);
  EXPECT_EQ(all_lossy_codecs().size(), 4u);
}

}  // namespace
}  // namespace fedsz::lossy

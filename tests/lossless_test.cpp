// Parameterized conformance tests over the whole lossless codec suite:
// every codec must round-trip every data pattern exactly, behave on empty
// and incompressible input, and stay within stored-raw overhead bounds.
#include <gtest/gtest.h>

#include <cstring>

#include "compress/lossless/lossless.hpp"
#include "util/rng.hpp"

namespace fedsz::lossless {
namespace {

// ---- data pattern generators ----

Bytes pattern_empty(Rng&) { return {}; }

Bytes pattern_single_byte(Rng&) { return {0x42}; }

Bytes pattern_zeros(Rng&) { return Bytes(10000, 0); }

Bytes pattern_constant(Rng&) { return Bytes(8192, 0xA5); }

Bytes pattern_random(Rng& rng) {
  Bytes data(30000);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.uniform_index(256));
  return data;
}

Bytes pattern_text(Rng& rng) {
  const char* words[] = {"client", "server", "gradient", "round", "epoch",
                         "model",  "update", "the",      "and"};
  Bytes data;
  while (data.size() < 30000) {
    const char* w = words[rng.uniform_index(9)];
    data.insert(data.end(), w, w + std::strlen(w));
    data.push_back(' ');
  }
  return data;
}

Bytes pattern_float_weights(Rng& rng) {
  std::vector<float> values(8000);
  for (auto& v : values) v = static_cast<float>(rng.laplace(0.0, 0.05));
  Bytes data(values.size() * sizeof(float));
  std::memcpy(data.data(), values.data(), data.size());
  return data;
}

Bytes pattern_ramp(Rng&) {
  Bytes data(20000);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<std::uint8_t>(i / 100);
  return data;
}

Bytes pattern_repeating_block(Rng& rng) {
  Bytes block(97);
  for (auto& b : block) b = static_cast<std::uint8_t>(rng.uniform_index(256));
  Bytes data;
  for (int i = 0; i < 300; ++i)
    data.insert(data.end(), block.begin(), block.end());
  return data;
}

struct PatternCase {
  const char* name;
  Bytes (*make)(Rng&);
  bool expect_compressible;
};

const PatternCase kPatterns[] = {
    {"empty", pattern_empty, false},
    {"single_byte", pattern_single_byte, false},
    {"zeros", pattern_zeros, true},
    {"constant", pattern_constant, true},
    {"random", pattern_random, false},
    {"text", pattern_text, true},
    {"float_weights", pattern_float_weights, false},
    {"ramp", pattern_ramp, true},
    {"repeating_block", pattern_repeating_block, true},
};

struct Case {
  LosslessId codec;
  const PatternCase* pattern;
};

std::vector<Case> all_cases() {
  std::vector<Case> cases;
  for (const LosslessCodec* codec : all_lossless_codecs())
    for (const PatternCase& p : kPatterns) cases.push_back({codec->id(), &p});
  return cases;
}

class LosslessRoundTrip : public ::testing::TestWithParam<Case> {};

TEST_P(LosslessRoundTrip, ExactReconstruction) {
  const auto& [id, pattern] = GetParam();
  const LosslessCodec& codec = lossless_codec(id);
  Rng rng(1001);
  const Bytes data = pattern->make(rng);
  const Bytes compressed = codec.compress({data.data(), data.size()});
  const Bytes back = codec.decompress({compressed.data(), compressed.size()});
  EXPECT_EQ(back, data);
}

TEST_P(LosslessRoundTrip, BoundedExpansion) {
  const auto& [id, pattern] = GetParam();
  const LosslessCodec& codec = lossless_codec(id);
  Rng rng(1002);
  const Bytes data = pattern->make(rng);
  const Bytes compressed = codec.compress({data.data(), data.size()});
  // Stored-raw fallback caps expansion at a small constant header.
  EXPECT_LE(compressed.size(), data.size() + 16);
}

TEST_P(LosslessRoundTrip, CompressibleDataShrinks) {
  const auto& [id, pattern] = GetParam();
  if (!pattern->expect_compressible) GTEST_SKIP();
  const LosslessCodec& codec = lossless_codec(id);
  Rng rng(1003);
  const Bytes data = pattern->make(rng);
  const Bytes compressed = codec.compress({data.data(), data.size()});
  // blosc-lz (fast LZ, no entropy stage) compresses text least; 2/3 is a
  // floor every codec clears, the entropy-coded ones by a wide margin.
  EXPECT_LT(compressed.size(), data.size() * 2 / 3)
      << codec.name() << " on " << pattern->name;
}

TEST_P(LosslessRoundTrip, DeterministicOutput) {
  const auto& [id, pattern] = GetParam();
  const LosslessCodec& codec = lossless_codec(id);
  Rng rng_a(1004), rng_b(1004);
  const Bytes a = pattern->make(rng_a);
  const Bytes b = pattern->make(rng_b);
  EXPECT_EQ(codec.compress({a.data(), a.size()}),
            codec.compress({b.data(), b.size()}));
}

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  std::string name = lossless_codec(info.param.codec).name() + "_" +
                     info.param.pattern->name;
  for (auto& c : name)
    if (c == '-') c = '_';
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllCodecsAllPatterns, LosslessRoundTrip,
                         ::testing::ValuesIn(all_cases()), case_name);

// ---- registry & codec-specific behaviour ----

TEST(LosslessRegistry, AllFiveCodecsPresent) {
  const auto codecs = all_lossless_codecs();
  ASSERT_EQ(codecs.size(), 5u);
  std::vector<std::string> names;
  for (const auto* c : codecs) names.push_back(c->name());
  EXPECT_EQ(names[0], "blosc-lz");
  EXPECT_EQ(names[1], "zlib");
  EXPECT_EQ(names[2], "zstd");
  EXPECT_EQ(names[3], "gzip");
  EXPECT_EQ(names[4], "xz");
}

TEST(LosslessRegistry, LookupByNameAndId) {
  EXPECT_EQ(lossless_codec("zstd").id(), LosslessId::kZstd);
  EXPECT_EQ(lossless_codec(LosslessId::kXz).name(), "xz");
  EXPECT_THROW(lossless_codec("lz999"), InvalidArgument);
  EXPECT_THROW(lossless_codec(static_cast<LosslessId>(99)), InvalidArgument);
}

TEST(Lossless, XzBeatsBloscOnText) {
  Rng rng(2001);
  const Bytes data = pattern_text(rng);
  const Bytes xz = lossless_codec(LosslessId::kXz).compress({data.data(),
                                                             data.size()});
  const Bytes blosc = lossless_codec(LosslessId::kBloscLz)
                          .compress({data.data(), data.size()});
  EXPECT_LT(xz.size(), blosc.size());
}

TEST(Lossless, ShuffleMakesBloscCompetitiveOnFloats) {
  // The Table II surprise: blosc-lz (shuffle + fast LZ) reaches xz-class
  // ratios on float metadata while deflate-family codecs lag.
  Rng rng(2002);
  std::vector<float> values(16384);
  for (auto& v : values) v = static_cast<float>(rng.normal(0.0, 0.02));
  ByteSpan raw = as_bytes({values.data(), values.size()});
  const std::size_t blosc =
      lossless_codec(LosslessId::kBloscLz).compress(raw).size();
  const std::size_t zlib =
      lossless_codec(LosslessId::kZlib).compress(raw).size();
  EXPECT_LT(blosc, raw.size());      // compresses at all
  EXPECT_LT(blosc, zlib + zlib / 4); // and is at least zlib-class
}

TEST(Lossless, DecompressGarbageThrowsOrFailsSafely) {
  Rng rng(2003);
  Bytes garbage(100);
  for (auto& b : garbage) b = static_cast<std::uint8_t>(rng.uniform_index(256));
  for (const LosslessCodec* codec : all_lossless_codecs()) {
    try {
      const Bytes out = codec->decompress({garbage.data(), garbage.size()});
      // Some random buffers happen to parse; that's acceptable as long as no
      // crash/UB occurs. Nothing to assert in that case.
      (void)out;
    } catch (const CorruptStream&) {
    } catch (const InvalidArgument&) {
    }
  }
}

TEST(Lossless, DecompressEmptyBufferThrows) {
  for (const LosslessCodec* codec : all_lossless_codecs())
    EXPECT_THROW(codec->decompress({}), CorruptStream) << codec->name();
}

TEST(Lossless, LargeInputRoundTrips) {
  Rng rng(2004);
  Bytes data(2 * 1024 * 1024);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<std::uint8_t>((i / 512 + rng.uniform_index(3)) % 256);
  for (const LosslessCodec* codec : all_lossless_codecs()) {
    const Bytes compressed = codec->compress({data.data(), data.size()});
    EXPECT_EQ(codec->decompress({compressed.data(), compressed.size()}), data)
        << codec->name();
    EXPECT_LT(compressed.size(), data.size()) << codec->name();
  }
}

}  // namespace
}  // namespace fedsz::lossless

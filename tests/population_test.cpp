// The client-population subsystem: spec grammar, device-class correlation,
// availability math, and the coordinator's eligibility machinery on the
// virtual clock. The pinned runs assert the load-bearing contracts: a
// diurnal population leaves somebody offline, a run WITHOUT a population
// is bit-identical to the pre-population coordinator (everyone eligible,
// no extra RNG draws), and a population trajectory is thread-count
// invariant.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "core/codec_spec.hpp"
#include "core/fl/coordinator.hpp"
#include "core/fl/population.hpp"
#include "core/fl/trace.hpp"
#include "data/synthetic.hpp"

namespace fedsz::core {
namespace {

constexpr std::size_t kClients = 6;
constexpr int kRounds = 3;
constexpr std::size_t kTake = kClients * 8;

nn::ModelConfig tiny_model() {
  nn::ModelConfig model;
  model.arch = "mobilenet_v2";
  model.scale = nn::ModelScale::kTiny;
  return model;
}

FlRunResult run_spec(const std::string& spec_string, std::size_t threads = 2) {
  const CodecSpec spec = parse_codec_spec(spec_string);
  FlRunConfig config;
  config.apply_comm_spec(spec);
  config.clients = kClients;
  config.rounds = kRounds;
  config.threads = threads;
  config.seed = 42;
  config.eval_limit = 32;
  config.client.batch_size = 8;
  config.client.sgd.learning_rate = 0.05f;
  auto [train, test] = data::make_dataset("cifar10");
  FlCoordinator coordinator(tiny_model(), data::take(train, kTake),
                            data::take(test, 64), config, make_codec(spec));
  return coordinator.run();
}

// ---- spec grammar ----

TEST(PopulationSpec, ParseDefaultsAndCanonicalForm) {
  const PopulationConfig config = parse_population_spec("mixed");
  EXPECT_EQ(config.preset, "mixed");
  EXPECT_TRUE(config.mix.empty());
  EXPECT_EQ(config.availability, AvailabilityMode::kDiurnal);
  EXPECT_EQ(config.period_seconds, 86400.0);
  EXPECT_EQ(config.phase_jitter, 0.25);
  EXPECT_EQ(config.dropout_rate, 0.0);
  EXPECT_EQ(config.seed, 0u);
  EXPECT_EQ(format_population_spec(config), "mixed");
}

TEST(PopulationSpec, FormatParseIsIdempotent) {
  const std::vector<std::string> specs = {
      "mixed",
      "mobile:avail=always",
      "iot_fleet:avail=flat:0.5",
      "uniform:period=3600;jitter=0.1",
      "mixed:drop=0.05;seed=7",
      "custom:mix=laptop*2+iot*1;avail=flat:0.6",
      "custom:mix=phone_lte*0.5+phone_wifi*0.5;period=7200;jitter=0;seed=3",
  };
  for (const std::string& s : specs) {
    const std::string once = format_population_spec(parse_population_spec(s));
    const std::string twice =
        format_population_spec(parse_population_spec(once));
    EXPECT_EQ(once, twice) << s;
    // Canonical specs never contain ',' -- they embed verbatim in the
    // comma-separated comm-key list.
    EXPECT_EQ(once.find(','), std::string::npos) << once;
  }
}

TEST(PopulationSpec, EmptyTextIsEmptyConfig) {
  const PopulationConfig config = parse_population_spec("");
  EXPECT_TRUE(config.empty());
  EXPECT_NO_THROW(config.validate());
  EXPECT_EQ(format_population_spec(config), "");
}

TEST(PopulationSpec, RejectsNonsense) {
  EXPECT_THROW(parse_population_spec("datacenter"), InvalidArgument);
  EXPECT_THROW(parse_population_spec("custom"), InvalidArgument);
  EXPECT_THROW(parse_population_spec("mixed:mix=laptop*1"), InvalidArgument);
  EXPECT_THROW(parse_population_spec("custom:mix=mainframe*1"),
               InvalidArgument);
  EXPECT_THROW(parse_population_spec("custom:mix=laptop*0"), InvalidArgument);
  EXPECT_THROW(parse_population_spec("custom:mix=laptop*1+laptop*2"),
               InvalidArgument);
  EXPECT_THROW(parse_population_spec("mixed:avail=flat:0"), InvalidArgument);
  EXPECT_THROW(parse_population_spec("mixed:avail=flat:1.5"),
               InvalidArgument);
  EXPECT_THROW(parse_population_spec("mixed:avail=weekly"), InvalidArgument);
  EXPECT_THROW(parse_population_spec("mixed:period=0"), InvalidArgument);
  EXPECT_THROW(parse_population_spec("mixed:jitter=2"), InvalidArgument);
  EXPECT_THROW(parse_population_spec("mixed:drop=1"), InvalidArgument);
  EXPECT_THROW(parse_population_spec("mixed:drop=nope"), InvalidArgument);
  EXPECT_THROW(parse_population_spec("mixed:color=blue"), InvalidArgument);
}

TEST(PopulationSpec, PresetMixesResolveToKnownClasses) {
  for (const char* preset : {"mixed", "mobile", "iot_fleet", "uniform"}) {
    PopulationConfig config;
    config.preset = preset;
    const std::vector<DeviceClassShare> mix = resolve_population_mix(config);
    ASSERT_FALSE(mix.empty()) << preset;
    double total = 0.0;
    for (const DeviceClassShare& share : mix) {
      EXPECT_NE(find_device_class(share.name), nullptr) << share.name;
      EXPECT_GT(share.weight, 0.0);
      total += share.weight;
    }
    EXPECT_GT(total, 0.0);
  }
}

// ---- per-client materialization ----

TEST(ClientPopulationTest, ClassAttributesAreCorrelated) {
  const PopulationConfig config = parse_population_spec("mixed:seed=5");
  ClientPopulation population(config, 32, 42);
  ASSERT_EQ(population.size(), 32u);
  ASSERT_EQ(population.link_profiles().size(), 32u);
  for (std::size_t i = 0; i < population.size(); ++i) {
    const DeviceClass& cls = population.device_class(i);
    EXPECT_EQ(cls.name, population.class_name(i));
    EXPECT_EQ(population.compute_multiplier(i), cls.compute_multiplier);
    EXPECT_EQ(population.data_weight(i), cls.data_weight);
    // The link draw is lognormal around the class median, but latency is a
    // fixed class attribute -- the correlation tests key on it.
    EXPECT_EQ(population.link_profiles()[i].latency_s, cls.latency_s);
    EXPECT_GT(population.link_profiles()[i].bandwidth_mbps, 0.0);
  }
}

TEST(ClientPopulationTest, SeededAndDeterministic) {
  const PopulationConfig config = parse_population_spec("mixed");
  ClientPopulation a(config, 16, 42);
  ClientPopulation b(config, 16, 42);
  ClientPopulation c(config, 16, 43);  // different run seed
  const PopulationConfig pinned = parse_population_spec("mixed:seed=9");
  ClientPopulation d(pinned, 16, 42);
  ClientPopulation e(pinned, 16, 777);  // pop seed overrides the run seed
  bool differs_from_c = false;
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(a.class_name(i), b.class_name(i));
    EXPECT_EQ(a.link_profiles()[i].bandwidth_mbps,
              b.link_profiles()[i].bandwidth_mbps);
    EXPECT_EQ(a.availability(i, 1234.5), b.availability(i, 1234.5));
    EXPECT_EQ(d.class_name(i), e.class_name(i));
    EXPECT_EQ(d.link_profiles()[i].bandwidth_mbps,
              e.link_profiles()[i].bandwidth_mbps);
    differs_from_c =
        differs_from_c || a.class_name(i) != c.class_name(i) ||
        a.link_profiles()[i].bandwidth_mbps !=
            c.link_profiles()[i].bandwidth_mbps;
  }
  EXPECT_TRUE(differs_from_c);
}

TEST(ClientPopulationTest, AvailabilityModes) {
  ClientPopulation always(
      parse_population_spec("custom:mix=laptop*1;avail=always"), 4, 1);
  ClientPopulation flat(
      parse_population_spec("custom:mix=laptop*1;avail=flat:0.6"), 4, 1);
  // jitter=0 pins every phase to 0, making the sinusoid exact.
  ClientPopulation diurnal(
      parse_population_spec("custom:mix=laptop*1;period=100;jitter=0"), 4, 1);
  const DeviceClass& laptop = *find_device_class("laptop");
  for (double t : {0.0, 25.0, 50.0, 75.0, 12345.0}) {
    for (std::size_t i = 0; i < 4; ++i) {
      EXPECT_EQ(always.availability(i, t), 1.0);
      EXPECT_EQ(flat.availability(i, t), 0.6);
    }
  }
  // Peak at a quarter period, trough at three quarters.
  EXPECT_NEAR(diurnal.availability(0, 25.0),
              laptop.availability_mean + laptop.diurnal_amplitude, 1e-12);
  EXPECT_NEAR(diurnal.availability(0, 75.0),
              laptop.availability_mean - laptop.diurnal_amplitude, 1e-12);
  EXPECT_NEAR(diurnal.availability(0, 0.0), laptop.availability_mean, 1e-12);
  for (double t = 0.0; t < 200.0; t += 7.0) {
    const double p = diurnal.availability(0, t);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(ClientPopulationTest, RejectsEmptyConfig) {
  EXPECT_THROW(ClientPopulation(PopulationConfig{}, 4, 1), InvalidArgument);
}

// ---- coordinator eligibility ----

TEST(PopulationRun, DiurnalPopulationLeavesClientsOffline) {
  const FlRunResult result =
      run_spec("fedsz:eb=rel:1e-2,population=mixed:avail=flat:0.5;seed=11");
  ASSERT_EQ(result.rounds.size(), static_cast<std::size_t>(kRounds));
  std::size_t total_ineligible = 0;
  for (const RoundRecord& r : result.rounds) {
    EXPECT_EQ(r.eligible_clients + r.ineligible_clients, kClients);
    EXPECT_GE(r.eligible_clients, 1u);  // zero-eligible fallback floor
    EXPECT_LE(r.participants, r.eligible_clients);
    total_ineligible += r.ineligible_clients;
    std::size_t ineligible_traces = 0;
    for (const ClientTraceEntry& t : r.clients) {
      EXPECT_FALSE(t.device_class.empty());
      if (t.status == DeliveryStatus::kIneligible) {
        ++ineligible_traces;
        EXPECT_FALSE(t.eligible);
        EXPECT_EQ(t.weight, 0.0);
      } else {
        EXPECT_TRUE(t.eligible);
      }
    }
    EXPECT_EQ(ineligible_traces, r.ineligible_clients);
  }
  // Bernoulli(~0.5) over 6 clients x 3 rounds: somebody sat out. The run
  // is seeded, so this is a pin, not a coin flip.
  EXPECT_GT(total_ineligible, 0u);

  // The diurnal default exercises the sinusoid end to end as well.
  const FlRunResult diurnal =
      run_spec("fedsz:eb=rel:1e-2,population=mixed:period=10;seed=11");
  for (const RoundRecord& r : diurnal.rounds)
    EXPECT_EQ(r.eligible_clients + r.ineligible_clients, kClients);
}

TEST(PopulationRun, NoPopulationMeansEveryoneEligible) {
  const FlRunResult result = run_spec("fedsz:eb=rel:1e-2");
  for (const RoundRecord& r : result.rounds) {
    EXPECT_EQ(r.eligible_clients, kClients);
    EXPECT_EQ(r.ineligible_clients, 0u);
    for (const ClientTraceEntry& t : r.clients) {
      EXPECT_NE(t.status, DeliveryStatus::kIneligible);
      EXPECT_TRUE(t.eligible);
      EXPECT_TRUE(t.device_class.empty());
    }
  }
}

// The trace also records wall-clock timer measurements (local-training,
// encode/decode seconds and the Eqn (1) decision built on them), which
// legitimately vary run to run. Zero those so the dump compares every
// virtual-clock-deterministic field — times, bytes, weights, eligibility,
// device classes — at full precision.
util::JsonValue deterministic_trace(FlRunResult result) {
  result.total_wall_seconds = 0.0;
  for (RoundRecord& r : result.rounds) {
    r.train_seconds = r.compress_seconds = r.decompress_seconds = 0.0;
    r.eval_seconds = 0.0;
    r.downlink_encode_seconds = r.downlink_decode_seconds = 0.0;
    r.ef_decode_seconds = 0.0;
    r.backhaul_encode_seconds = r.backhaul_decode_seconds = 0.0;
    for (ClientTraceEntry& t : r.clients) t.decision = {};
    for (EdgeTraceEntry& e : r.edges)
      e.encode_seconds = e.decode_seconds = 0.0;
  }
  return trace_json(result);
}

TEST(PopulationRun, TrajectoryIsThreadCountInvariant) {
  const std::string spec =
      "fedsz:eb=rel:1e-2,population=mobile:avail=flat:0.7;seed=3,"
      "topology=hier:2";
  const FlRunResult one = run_spec(spec, 1);
  const FlRunResult four = run_spec(spec, 4);
  EXPECT_EQ(deterministic_trace(one).dump(), deterministic_trace(four).dump());
}

TEST(PopulationRun, MidRoundDropoutRidesDeliveryStatus) {
  const FlRunResult result = run_spec(
      "fedsz:eb=rel:1e-2,population=mixed:avail=always;drop=0.45;seed=2");
  std::size_t dropped = 0;
  for (const RoundRecord& r : result.rounds) {
    EXPECT_EQ(r.eligible_clients, kClients);  // always-on: nobody ineligible
    for (const ClientTraceEntry& t : r.clients)
      if (t.status == DeliveryStatus::kDropped) ++dropped;
  }
  EXPECT_GT(dropped, 0u);  // seeded pin: drop=0.45 over 18 dispatches
}

TEST(PopulationRun, PopulationRequiresBarrierScheduler) {
  const CodecSpec spec =
      parse_codec_spec("fedsz:eb=rel:1e-2,population=mixed");
  FlRunConfig config;
  config.apply_comm_spec(spec);
  config.clients = kClients;
  config.rounds = 1;
  config.seed = 1;
  auto [train, test] = data::make_dataset("cifar10");
  EXPECT_THROW(
      FlCoordinator(tiny_model(), data::take(train, kTake),
                    data::take(test, 64), config, make_codec(spec),
                    make_buffered_async_scheduler()),
      InvalidArgument);
}

TEST(PopulationRun, TraceJsonCarriesDeviceFields) {
  const FlRunResult result =
      run_spec("fedsz:eb=rel:1e-2,population=iot_fleet:avail=flat:0.5;seed=4");
  const std::string json = trace_json(result).dump();
  EXPECT_NE(json.find("\"device_class\""), std::string::npos);
  EXPECT_NE(json.find("\"eligible\""), std::string::npos);
  EXPECT_NE(json.find("\"eligible_clients\""), std::string::npos);
  EXPECT_NE(json.find("\"ineligible\""), std::string::npos);
  EXPECT_NE(json.find("\"iot\""), std::string::npos);
}

}  // namespace
}  // namespace fedsz::core

// Tests for the error-bounded linear quantizer and ErrorBound semantics.
#include <gtest/gtest.h>

#include <cmath>

#include "compress/lossy/error_bound.hpp"
#include "compress/lossy/quantizer.hpp"
#include "util/rng.hpp"

namespace fedsz::lossy {
namespace {

TEST(Quantizer, ZeroResidualMapsToCenter) {
  const LinearQuantizer q(0.01);
  const std::uint32_t code = q.quantize(0.0);
  EXPECT_EQ(code, q.radius());
  EXPECT_EQ(q.reconstruct(code), 0.0);
}

TEST(Quantizer, ReconstructionWithinEps) {
  const double eps = 0.01;
  const LinearQuantizer q(eps);
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double r = rng.uniform(-1.0, 1.0);
    const std::uint32_t code = q.quantize(r);
    ASSERT_NE(code, LinearQuantizer::kUnpredictable);
    EXPECT_LE(std::fabs(q.reconstruct(code) - r), eps * (1 + 1e-12));
  }
}

TEST(Quantizer, OutOfRangeResidualIsUnpredictable) {
  const LinearQuantizer q(1e-9);
  EXPECT_EQ(q.quantize(1.0), LinearQuantizer::kUnpredictable);
  EXPECT_EQ(q.quantize(-1.0), LinearQuantizer::kUnpredictable);
}

TEST(Quantizer, BoundaryResidualsStayInCodeRange) {
  const double eps = 0.5;
  const LinearQuantizer q(eps, 16);
  for (double r = -20.0; r <= 20.0; r += 0.25) {
    const std::uint32_t code = q.quantize(r);
    if (code != LinearQuantizer::kUnpredictable) {
      EXPECT_GE(code, 1u);
      EXPECT_LT(code, 32u);
      EXPECT_LE(std::fabs(q.reconstruct(code) - r), eps * (1 + 1e-12));
    }
  }
}

TEST(Quantizer, DegenerateEpsTreatsAllAsUnpredictable) {
  const LinearQuantizer q(0.0);  // clamped internally
  EXPECT_EQ(q.quantize(0.5), LinearQuantizer::kUnpredictable);
  EXPECT_NE(q.quantize(0.0), LinearQuantizer::kUnpredictable);
}

TEST(Quantizer, InvalidRadiusThrows) {
  // Invalid-code checking moved out of the reconstruct hot loop: the decode
  // paths validate entropy-decoded codes against the radius up front (see
  // the sz2/sz3 corrupt-code tests), so reconstruct itself only carries a
  // debug assert and the constructor remains the only throwing entry point.
  EXPECT_THROW(LinearQuantizer(0.1, 1), InvalidArgument);
}

TEST(Quantizer, PrecomputedStepMatchesHistoricalExpression) {
  // reconstruct() multiplies by a precomputed step = 2*eps; the historical
  // expression was (bin * 2.0) * eps. Both round the same exact product, so
  // every valid code must reconstruct bit-identically.
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double eps = std::exp(rng.uniform(-20.0, 2.0));
    const LinearQuantizer q(eps);
    const std::uint32_t code =
        1 + static_cast<std::uint32_t>(rng.uniform_index(2 * q.radius() - 1));
    const auto bin =
        static_cast<std::int64_t>(code) - static_cast<std::int64_t>(q.radius());
    const double historical = static_cast<double>(bin) * 2.0 * eps;
    EXPECT_EQ(q.reconstruct(code), historical);
  }
}

TEST(Quantizer, NegativePositiveSymmetry) {
  const LinearQuantizer q(0.05);
  const auto pos = q.quantize(0.123);
  const auto neg = q.quantize(-0.123);
  EXPECT_EQ(static_cast<std::int64_t>(pos) - q.radius(),
            -(static_cast<std::int64_t>(neg) - q.radius()));
}

TEST(ErrorBoundTest, AbsoluteModePassesThrough) {
  const std::vector<float> data{0.0f, 10.0f};
  EXPECT_DOUBLE_EQ(
      ErrorBound::absolute(0.5).absolute_for({data.data(), data.size()}), 0.5);
}

TEST(ErrorBoundTest, RelativeModeScalesByRange) {
  const std::vector<float> data{-1.0f, 3.0f};  // range 4
  EXPECT_DOUBLE_EQ(
      ErrorBound::relative(0.01).absolute_for({data.data(), data.size()}),
      0.04);
}

TEST(ErrorBoundTest, ConstantDataGivesZeroRelativeEps) {
  const std::vector<float> data(10, 2.0f);
  EXPECT_DOUBLE_EQ(
      ErrorBound::relative(0.01).absolute_for({data.data(), data.size()}),
      0.0);
}

TEST(ErrorBoundTest, InvalidValuesThrow) {
  const std::vector<float> data{0.0f, 1.0f};
  EXPECT_THROW(
      ErrorBound::relative(0.0).absolute_for({data.data(), data.size()}),
      InvalidArgument);
  EXPECT_THROW(
      ErrorBound::absolute(-1.0).absolute_for({data.data(), data.size()}),
      InvalidArgument);
  EXPECT_THROW(ErrorBound::relative(
                   std::numeric_limits<double>::infinity())
                   .validate(),
               InvalidArgument);
}

}  // namespace
}  // namespace fedsz::lossy

// Tests for the chunked FedSZ container (bitstream v2): chunk-count
// accounting, chunk boundaries landing exactly on tensor edges, byte-for-byte
// determinism across parallelism settings, parallel decode, legacy-v1
// backward decoding, and container-specific corruption handling.
#include <gtest/gtest.h>

#include <limits>

#include "core/fedsz.hpp"
#include "util/bytebuffer.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace fedsz::core {
namespace {

Tensor random_tensor(Shape shape, Rng& rng, float scale = 1.0f) {
  std::vector<float> values(shape_numel(shape));
  for (float& v : values)
    v = scale * static_cast<float>(rng.normal());
  return Tensor::from_data(std::move(shape), std::move(values));
}

/// A dict with one big lossy tensor, one small lossless tensor and one bias.
StateDict mixed_dict(std::size_t lossy_numel, Rng& rng) {
  StateDict dict;
  dict.set("features.0.weight",
           random_tensor({static_cast<std::int64_t>(lossy_numel)}, rng));
  dict.set("features.0.bias", random_tensor({16}, rng));
  dict.set("bn.running_mean", random_tensor({16}, rng));
  return dict;
}

double max_error_vs(const StateDict& a, const StateDict& b,
                    const std::string& name) {
  return stats::max_abs_error(a.get(name).span(), b.get(name).span());
}

// ---- chunk accounting ----

TEST(ChunkContainer, EmptyDictRoundTripsAtAnyParallelism) {
  for (const std::size_t parallelism : {std::size_t{1}, std::size_t{4}}) {
    FedSzConfig config;
    config.parallelism = parallelism;
    const FedSz fedsz{config};
    CompressionStats stats;
    const Bytes blob = fedsz.compress(StateDict{}, &stats);
    EXPECT_EQ(stats.lossy_chunks, 0u);
    EXPECT_TRUE(fedsz.decompress({blob.data(), blob.size()}).empty());
  }
}

TEST(ChunkContainer, SingleChunkWhenTensorFitsChunkSize) {
  Rng rng(1);
  FedSzConfig config;
  config.chunk_elements = 4096;
  const FedSz fedsz{config};
  CompressionStats stats;
  const StateDict dict = mixed_dict(2000, rng);
  const Bytes blob = fedsz.compress(dict, &stats);
  EXPECT_EQ(stats.lossy_chunks, 1u);
  EXPECT_EQ(fedsz.decompress({blob.data(), blob.size()}).size(), dict.size());
}

TEST(ChunkContainer, SplitsLargeTensorsIntoCeilNumelOverChunk) {
  Rng rng(2);
  FedSzConfig config;
  config.chunk_elements = 512;
  const FedSz fedsz{config};
  CompressionStats stats;
  fedsz.compress(mixed_dict(1281, rng), &stats);  // 512 + 512 + 257
  EXPECT_EQ(stats.lossy_chunks, 3u);
  EXPECT_EQ(fedsz.chunk_count(1281), 3u);
  EXPECT_EQ(fedsz.chunk_count(512), 1u);
  EXPECT_EQ(fedsz.chunk_count(0), 0u);
}

TEST(ChunkContainer, ChunkBoundaryExactlyAtTensorEdge) {
  Rng rng(3);
  FedSzConfig config;
  config.chunk_elements = 640;
  config.lossy_threshold = 100;  // both sizes below must route lossy
  config.bound = lossy::ErrorBound::relative(1e-3);
  const FedSz fedsz{config};
  // numel == chunk_elements and numel == 2 * chunk_elements: the final chunk
  // is full-width in both cases, no partial tail.
  for (const std::size_t numel : {std::size_t{640}, std::size_t{1280}}) {
    CompressionStats stats;
    const StateDict dict = mixed_dict(numel, rng);
    const Bytes blob = fedsz.compress(dict, &stats);
    EXPECT_EQ(stats.lossy_chunks, numel / 640);
    const StateDict back = fedsz.decompress({blob.data(), blob.size()});
    const Tensor& original = dict.get("features.0.weight");
    const double eps = config.bound.absolute_for(original.span());
    EXPECT_LE(max_error_vs(dict, back, "features.0.weight"),
              eps * (1 + 1e-5));
    EXPECT_TRUE(back.get("features.0.bias")
                    .equals(dict.get("features.0.bias")));
  }
}

TEST(ChunkContainer, ChunkingDoesNotLoosenTheRelativeBound) {
  // The REL bound must be resolved over the whole tensor, not per chunk:
  // build a tensor whose value range differs wildly between chunks, and
  // check every element against the whole-tensor epsilon.
  FedSzConfig config;
  config.chunk_elements = 256;
  config.bound = lossy::ErrorBound::relative(1e-3);
  const FedSz fedsz{config};
  std::vector<float> values(1024);
  Rng rng(4);
  for (std::size_t i = 0; i < values.size(); ++i) {
    const float scale = i < 256 ? 100.0f : 0.01f;  // first chunk dominates
    values[i] = scale * static_cast<float>(rng.normal());
  }
  StateDict dict;
  dict.set("w.weight", Tensor::from_data({1024}, values));
  const Bytes blob = fedsz.compress(dict);
  const StateDict back = fedsz.decompress({blob.data(), blob.size()});
  const double eps =
      config.bound.absolute_for(dict.get("w.weight").span());
  EXPECT_LE(max_error_vs(dict, back, "w.weight"), eps * (1 + 1e-5));
}

TEST(ChunkContainer, ConstantTensorUnderRelativeBoundIsExact) {
  FedSzConfig config;
  config.chunk_elements = 100;
  const FedSz fedsz{config};
  StateDict dict;
  dict.set("c.weight", Tensor::full({1500}, 3.5f));
  const Bytes blob = fedsz.compress(dict);
  const StateDict back = fedsz.decompress({blob.data(), blob.size()});
  EXPECT_TRUE(back.get("c.weight").equals(dict.get("c.weight")));
}

// ---- determinism across parallelism ----

TEST(ChunkContainer, ParallelismOneEqualsParallelOutputByteForByte) {
  Rng rng(5);
  const StateDict dict = mixed_dict(10000, rng);
  Bytes serial;
  for (const std::size_t parallelism :
       {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{0}}) {
    FedSzConfig config;
    config.chunk_elements = 777;  // deliberately unaligned chunk edges
    config.parallelism = parallelism;
    const Bytes blob = FedSz{config}.compress(dict);
    if (parallelism == 1) {
      serial = blob;
    } else {
      EXPECT_EQ(blob, serial) << "parallelism=" << parallelism;
    }
  }
}

TEST(ChunkContainer, ParallelDecompressEqualsSerialDecompress) {
  Rng rng(6);
  const StateDict dict = mixed_dict(10000, rng);
  FedSzConfig serial_config;
  serial_config.chunk_elements = 1000;
  const Bytes blob = FedSz{serial_config}.compress(dict);

  FedSzConfig parallel_config = serial_config;
  parallel_config.parallelism = 4;
  const StateDict serial_out =
      FedSz{serial_config}.decompress({blob.data(), blob.size()});
  const StateDict parallel_out =
      FedSz{parallel_config}.decompress({blob.data(), blob.size()});
  EXPECT_TRUE(parallel_out.equals(serial_out));
}

// ---- legacy v1 container ----

/// Reproduce the original (pre-chunking) v1 writer so the decoder's
/// backward-compatibility path is exercised against the real layout.
Bytes make_v1_stream(const StateDict& dict, const FedSzConfig& config) {
  const lossy::LossyCodec& lossy_codec = lossy::lossy_codec(config.lossy_id);
  const lossless::LosslessCodec& lossless_codec =
      lossless::lossless_codec(config.lossless_id);
  StateDict lossless_partition;
  ByteWriter w;
  const char magic[4] = {'F', 'S', 'Z', '1'};
  w.put_bytes({reinterpret_cast<const std::uint8_t*>(magic), 4});
  w.put_u16(1);
  w.put_u8(static_cast<std::uint8_t>(config.lossy_id));
  w.put_u8(static_cast<std::uint8_t>(config.lossless_id));
  w.put_u8(static_cast<std::uint8_t>(config.bound.mode));
  w.put_f64(config.bound.value);
  std::vector<const StateDict::Entry*> lossy_entries;
  for (const auto& entry : dict) {
    if (is_lossy_entry(entry.first, entry.second.numel(),
                       config.lossy_threshold)) {
      lossy_entries.push_back(&entry);
    } else {
      lossless_partition.set(entry.first, entry.second);
    }
  }
  w.put_u32(static_cast<std::uint32_t>(lossy_entries.size()));
  for (const StateDict::Entry* entry : lossy_entries) {
    w.put_string(entry->first);
    const Shape& shape = entry->second.shape();
    w.put_u8(static_cast<std::uint8_t>(shape.size()));
    for (const std::int64_t d : shape)
      w.put_varint(static_cast<std::uint64_t>(d));
    const Bytes payload =
        lossy_codec.compress(entry->second.span(), config.bound);
    w.put_blob({payload.data(), payload.size()});
  }
  const Bytes serialized = lossless_partition.serialize();
  const Bytes lossless_payload =
      lossless_codec.compress({serialized.data(), serialized.size()});
  w.put_blob({lossless_payload.data(), lossless_payload.size()});
  return w.finish();
}

TEST(ChunkContainer, LegacyV1StreamStillDecodes) {
  Rng rng(7);
  const StateDict dict = mixed_dict(5000, rng);
  FedSzConfig config;
  config.bound = lossy::ErrorBound::relative(1e-3);
  const Bytes v1 = make_v1_stream(dict, config);
  const FedSz fedsz{config};
  const StateDict back = fedsz.decompress({v1.data(), v1.size()});
  ASSERT_EQ(back.size(), dict.size());
  EXPECT_TRUE(back.get("features.0.bias").equals(dict.get("features.0.bias")));
  const double eps =
      config.bound.absolute_for(dict.get("features.0.weight").span());
  EXPECT_LE(max_error_vs(dict, back, "features.0.weight"), eps * (1 + 1e-5));
}

// ---- container corruption ----

TEST(ChunkContainer, ChunkCountMismatchThrows) {
  FedSzConfig config;
  ByteWriter w;
  const char magic[4] = {'F', 'S', 'Z', '1'};
  w.put_bytes({reinterpret_cast<const std::uint8_t*>(magic), 4});
  w.put_u16(2);
  w.put_u8(static_cast<std::uint8_t>(config.lossy_id));
  w.put_u8(static_cast<std::uint8_t>(config.lossless_id));
  w.put_u8(static_cast<std::uint8_t>(config.bound.mode));
  w.put_f64(config.bound.value);
  w.put_varint(512);  // chunk_elements
  w.put_u32(1);
  w.put_string("t.weight");
  w.put_u8(1);
  w.put_varint(1280);  // numel => 3 chunks expected
  w.put_f64(1e-3);
  w.put_varint(1);  // claims a single chunk
  const Bytes blob = w.finish();
  const FedSz fedsz{config};
  EXPECT_THROW(fedsz.decompress({blob.data(), blob.size()}), CorruptStream);
}

TEST(ChunkContainer, ZeroChunkElementsInStreamThrows) {
  FedSzConfig config;
  ByteWriter w;
  const char magic[4] = {'F', 'S', 'Z', '1'};
  w.put_bytes({reinterpret_cast<const std::uint8_t*>(magic), 4});
  w.put_u16(2);
  w.put_u8(static_cast<std::uint8_t>(config.lossy_id));
  w.put_u8(static_cast<std::uint8_t>(config.lossless_id));
  w.put_u8(static_cast<std::uint8_t>(config.bound.mode));
  w.put_f64(config.bound.value);
  w.put_varint(0);  // invalid chunk_elements
  w.put_u32(0);
  const Bytes blob = w.finish();
  const FedSz fedsz{config};
  EXPECT_THROW(fedsz.decompress({blob.data(), blob.size()}), CorruptStream);
}

TEST(ChunkContainer, TruncatedChunkPayloadThrows) {
  Rng rng(8);
  FedSzConfig config;
  config.chunk_elements = 256;
  const FedSz fedsz{config};
  const Bytes blob = fedsz.compress(mixed_dict(4000, rng));
  for (const double frac : {0.3, 0.6, 0.95}) {
    Bytes cut(blob.begin(),
              blob.begin() + static_cast<std::ptrdiff_t>(blob.size() * frac));
    EXPECT_THROW(fedsz.decompress({cut.data(), cut.size()}), CorruptStream);
  }
}

TEST(ChunkContainer, HugeChunkElementsConfigRoundTrips) {
  // chunk_elements far above any tensor size must degrade to one chunk per
  // tensor (the naive ceil-division `(n + chunk - 1) / chunk` wraps to 0
  // chunks here and silently drops the data).
  Rng rng(9);
  FedSzConfig config;
  config.chunk_elements = std::numeric_limits<std::size_t>::max();
  const FedSz fedsz{config};
  const StateDict dict = mixed_dict(2000, rng);
  CompressionStats stats;
  const Bytes blob = fedsz.compress(dict, &stats);
  EXPECT_EQ(stats.lossy_chunks, 1u);
  const StateDict back = fedsz.decompress({blob.data(), blob.size()});
  ASSERT_EQ(back.size(), dict.size());
  EXPECT_TRUE(back.get("features.0.bias").equals(dict.get("features.0.bias")));
  const double eps =
      config.bound.absolute_for(dict.get("features.0.weight").span());
  EXPECT_LE(max_error_vs(dict, back, "features.0.weight"), eps * (1 + 1e-5));
}

TEST(ChunkContainer, HugeDeclaredShapeThrowsInsteadOfAllocating) {
  // A tiny stream declaring a ~2^56-element tensor must die with
  // CorruptStream while parsing the chunk table, not attempt a multi-GB
  // allocation for the size table or the output tensor.
  FedSzConfig config;
  ByteWriter w;
  const char magic[4] = {'F', 'S', 'Z', '1'};
  w.put_bytes({reinterpret_cast<const std::uint8_t*>(magic), 4});
  w.put_u16(2);
  w.put_u8(static_cast<std::uint8_t>(config.lossy_id));
  w.put_u8(static_cast<std::uint8_t>(config.lossless_id));
  w.put_u8(static_cast<std::uint8_t>(config.bound.mode));
  w.put_f64(config.bound.value);
  w.put_varint(1);  // chunk_elements = 1 -> one chunk per element
  w.put_u32(1);
  w.put_string("t.weight");
  w.put_u8(3);
  w.put_varint(1u << 20);
  w.put_varint(1u << 20);
  w.put_varint(1u << 16);  // numel = 2^56
  w.put_f64(1e-3);
  w.put_varint(std::uint64_t{1} << 56);  // chunk count matches numel
  const Bytes blob = w.finish();
  const FedSz fedsz{config};
  EXPECT_THROW(fedsz.decompress({blob.data(), blob.size()}), CorruptStream);
}

TEST(ChunkContainer, OversizedChunkElementsInStreamThrows) {
  // chunk_elements above the writer's hard cap cannot come from our own
  // writer; reject it before it can scale any allocation (a huge chunk size
  // with a single declared chunk would otherwise bypass the chunk-table
  // guard and zero-fill a multi-TB tensor).
  FedSzConfig config;
  ByteWriter w;
  const char magic[4] = {'F', 'S', 'Z', '1'};
  w.put_bytes({reinterpret_cast<const std::uint8_t*>(magic), 4});
  w.put_u16(2);
  w.put_u8(static_cast<std::uint8_t>(config.lossy_id));
  w.put_u8(static_cast<std::uint8_t>(config.lossless_id));
  w.put_u8(static_cast<std::uint8_t>(config.bound.mode));
  w.put_f64(config.bound.value);
  w.put_varint(std::uint64_t{1} << 56);  // chunk_elements far beyond the cap
  w.put_u32(1);
  w.put_string("t.weight");
  w.put_u8(3);
  w.put_varint(1u << 20);
  w.put_varint(1u << 20);
  w.put_varint(1u << 16);  // numel = 2^56, a single declared chunk
  w.put_f64(1e-3);
  w.put_varint(1);
  w.put_varint(1);  // one 1-byte chunk payload
  w.put_u8(0);
  const Bytes blob = w.finish();
  const FedSz fedsz{config};
  EXPECT_THROW(fedsz.decompress({blob.data(), blob.size()}), CorruptStream);
}

TEST(ChunkContainer, ZeroChunkElementsConfigRejected) {
  FedSzConfig config;
  config.chunk_elements = 0;
  EXPECT_THROW(FedSz{config}, InvalidArgument);
}

}  // namespace
}  // namespace fedsz::core

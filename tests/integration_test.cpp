// End-to-end integration tests reproducing the paper's core claims in
// miniature: FedSZ-compressed training matches uncompressed accuracy at
// moderate bounds, communication bytes shrink by the compression ratio, and
// the Eqn (1) decision holds on a slow link.
#include <gtest/gtest.h>

#include "core/fl/coordinator.hpp"
#include "data/synthetic.hpp"
#include "util/stats.hpp"

namespace fedsz::core {
namespace {

nn::ModelConfig tiny_model(const std::string& arch = "mobilenet_v2") {
  nn::ModelConfig cfg;
  cfg.arch = arch;
  cfg.scale = nn::ModelScale::kTiny;
  return cfg;
}

FlRunConfig small_run(int rounds) {
  FlRunConfig config;
  config.clients = 2;
  config.rounds = rounds;
  config.eval_limit = 128;
  config.threads = 2;
  config.client.batch_size = 16;
  config.client.sgd.learning_rate = 0.05f;
  return config;
}

TEST(Integration, FederatedTrainingImprovesAccuracy) {
  auto [train, test] = data::make_dataset("cifar10");
  FlCoordinator coordinator(tiny_model(), data::take(train, 512),
                            data::take(test, 128), small_run(4),
                            make_fedsz_codec());
  const FlRunResult result = coordinator.run();
  EXPECT_GT(result.final_accuracy, 0.25)
      << "4 rounds of FedSZ-compressed FedAvg should beat 10% chance";
}

TEST(Integration, ModerateBoundMatchesUncompressedAccuracy) {
  // The headline claim: at REL <= 1e-2 the compressed run tracks the
  // uncompressed run's accuracy closely (paper: within ~0.5%; we allow a
  // wider band at miniature scale where run-to-run variance is larger).
  auto [train, test] = data::make_dataset("cifar10");
  auto run_with = [&](UpdateCodecPtr codec) {
    FlCoordinator coordinator(tiny_model(), data::take(train, 512),
                              data::take(test, 128), small_run(4),
                              std::move(codec));
    return coordinator.run().final_accuracy;
  };
  const double uncompressed = run_with(make_identity_codec());
  FedSzConfig config;
  config.bound = lossy::ErrorBound::relative(1e-2);
  const double compressed = run_with(make_fedsz_codec(config));
  EXPECT_NEAR(compressed, uncompressed, 0.15);
}

TEST(Integration, HugeBoundDegradesAccuracy) {
  // Figure 5's cliff: REL bounds far above 1e-2 destroy the model. AlexNet
  // exposes it most directly: its accuracy lives in large FC "weight"
  // tensors that all take the lossy path. (A BN-heavy tiny MobileNet can
  // survive coarse bounds because SZ2's per-block regression preserves the
  // low-frequency structure of its few lossy tensors.)
  auto [train, test] = data::make_dataset("cifar10");
  auto run_with = [&](double rel) {
    FedSzConfig config;
    config.bound = lossy::ErrorBound::relative(rel);
    FlCoordinator coordinator(tiny_model("alexnet"), data::take(train, 384),
                              data::take(test, 128), small_run(3),
                              make_fedsz_codec(config));
    return coordinator.run().final_accuracy;
  };
  const double moderate = run_with(1e-2);
  const double destroyed = run_with(1.0);  // error bound = full value range
  EXPECT_GT(moderate, destroyed + 0.05);
}

TEST(Integration, CompressionSavesWallClockOnSlowLink) {
  // Eqn (1) end to end: at 10 Mbps the compressed round's comm+codec time is
  // far below the uncompressed round's comm time.
  auto [train, test] = data::make_dataset("cifar10");
  auto round_cost = [&](UpdateCodecPtr codec) {
    FlRunConfig config = small_run(1);
    config.network.bandwidth_mbps = 10.0;
    FlCoordinator coordinator(tiny_model("alexnet"), data::take(train, 64),
                              data::take(test, 32), config, std::move(codec));
    const RoundRecord r = coordinator.run().rounds[0];
    return r.comm_seconds + r.compress_seconds + r.decompress_seconds;
  };
  const double uncompressed = round_cost(make_identity_codec());
  const double compressed = round_cost(make_fedsz_codec());
  EXPECT_LT(compressed, uncompressed / 1.5);
}

TEST(Integration, SmallBoundPreservesUpdateSemantics) {
  // A FedSZ round trip at a tight bound must yield an aggregate nearly
  // identical to aggregating the raw updates.
  auto [train, test] = data::make_dataset("cifar10");
  ClientConfig client_config;
  client_config.batch_size = 16;
  FlClient client(0, tiny_model(), data::take(train, 64), client_config);
  FlServer server_raw(tiny_model());
  FlServer server_compressed(tiny_model());
  const ClientRoundResult round = client.run_round(server_raw.global_state());

  FedSzConfig config;
  config.bound = lossy::ErrorBound::relative(1e-5);
  const auto codec = make_fedsz_codec(config);
  const auto encoded = codec->encode(round.update);
  const StateDict decoded =
      codec->decode({encoded.payload.data(), encoded.payload.size()});

  server_raw.aggregate({{round.update, round.samples}});
  server_compressed.aggregate({{decoded, round.samples}});
  for (const auto& [name, tensor] : server_raw.global_state()) {
    const Tensor& other = server_compressed.global_state().get(name);
    const double err = stats::max_abs_error(tensor.span(), other.span());
    const double range = stats::summarize(tensor.span()).range();
    EXPECT_LE(err, std::max(1e-4, range * 1e-4)) << name;
  }
}

TEST(Integration, AblationLossyEverythingBreaksBatchNorm) {
  // The partition rule's justification (Section V-C): lossy-compressing BN
  // running statistics at a coarse bound corrupts inference badly compared
  // with partitioned FedSZ at the same bound.
  auto [train, test] = data::make_dataset("cifar10");
  auto final_accuracy_with_threshold = [&](std::size_t threshold,
                                           double rel) {
    FedSzConfig config;
    config.bound = lossy::ErrorBound::relative(rel);
    config.lossy_threshold = threshold;
    FlCoordinator coordinator(tiny_model(), data::take(train, 512),
                              data::take(test, 128), small_run(3),
                              make_fedsz_codec(config));
    return coordinator.run().final_accuracy;
  };
  // Note: threshold 0 routes every "weight" tensor lossy including the tiny
  // BN gammas; running stats stay lossless either way (name rule), so use a
  // coarse bound to surface the difference.
  const double partitioned = final_accuracy_with_threshold(1000, 5e-2);
  const double aggressive = final_accuracy_with_threshold(0, 5e-2);
  // The partitioned variant should never be materially worse.
  EXPECT_GE(partitioned + 0.1, aggressive);
}

}  // namespace
}  // namespace fedsz::core

// Tests for the error-distribution / differential-privacy analysis
// (Section VII-D, Figure 10).
#include <gtest/gtest.h>

#include "compress/lossy/lossy.hpp"
#include "core/dp_analysis.hpp"
#include "util/rng.hpp"

namespace fedsz::core {
namespace {

TEST(DpAnalysis, RecognizesSyntheticLaplaceNoise) {
  Rng rng(1);
  std::vector<float> original(20000), noisy(20000);
  for (std::size_t i = 0; i < original.size(); ++i) {
    original[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
    noisy[i] = original[i] + static_cast<float>(rng.laplace(0.0, 0.01));
  }
  const ErrorDistribution dist = analyze_errors(
      {original.data(), original.size()}, {noisy.data(), noisy.size()});
  EXPECT_TRUE(dist.laplace_fits_better());
  EXPECT_NEAR(dist.laplace.b, 0.01, 0.002);
  EXPECT_NEAR(dist.laplace.mu, 0.0, 0.002);
  EXPECT_LT(dist.ks_laplace, 0.05);
}

TEST(DpAnalysis, RecognizesGaussianNoiseAsNotLaplace) {
  Rng rng(2);
  std::vector<float> original(20000), noisy(20000);
  for (std::size_t i = 0; i < original.size(); ++i) {
    original[i] = 0.0f;
    noisy[i] = static_cast<float>(rng.normal(0.0, 0.02));
  }
  const ErrorDistribution dist = analyze_errors(
      {original.data(), original.size()}, {noisy.data(), noisy.size()});
  EXPECT_FALSE(dist.laplace_fits_better());
}

TEST(DpAnalysis, ExactReconstructionGivesDegenerateErrors) {
  const std::vector<float> values{1.0f, 2.0f, 3.0f};
  const ErrorDistribution dist =
      analyze_errors({values.data(), values.size()},
                     {values.data(), values.size()});
  EXPECT_EQ(dist.summary.max, 0.0);
  EXPECT_EQ(dist.summary.min, 0.0);
  EXPECT_EQ(dist.laplace.b, 0.0);
}

TEST(DpAnalysis, SizeMismatchThrows) {
  const std::vector<float> a{1.0f}, b{1.0f, 2.0f};
  EXPECT_THROW(analyze_errors({a.data(), a.size()}, {b.data(), b.size()}),
               InvalidArgument);
}

TEST(DpAnalysis, StateDictVariantConcatenatesEntries) {
  StateDict original, reconstructed;
  original.set("a", Tensor::from_data({2}, {1.0f, 2.0f}));
  original.set("b", Tensor::from_data({2}, {3.0f, 4.0f}));
  reconstructed.set("a", Tensor::from_data({2}, {1.5f, 2.0f}));
  reconstructed.set("b", Tensor::from_data({2}, {3.0f, 3.0f}));
  const ErrorDistribution dist =
      analyze_state_dict_errors(original, reconstructed);
  ASSERT_EQ(dist.errors.size(), 4u);
  EXPECT_DOUBLE_EQ(dist.errors[0], -0.5);
  EXPECT_DOUBLE_EQ(dist.errors[3], 1.0);
}

TEST(DpAnalysis, StateDictShapeMismatchThrows) {
  StateDict original, reconstructed;
  original.set("a", Tensor({2}));
  reconstructed.set("a", Tensor({3}));
  EXPECT_THROW(analyze_state_dict_errors(original, reconstructed),
               InvalidArgument);
}

TEST(DpAnalysis, Sz2ErrorsOnWeightsLookLaplacianAtLargeBounds) {
  // The paper's Figure 10 observation: at a large REL bound (0.5) the
  // quantizer collapses almost all values into the central bin, so the
  // decompression error inherits the (Laplacian) shape of the weights and
  // the Laplace fit beats the Gaussian fit. At tighter bounds (0.1/0.05)
  // this implementation's error mixes per-bin uniform components and the
  // Laplacian advantage fades — a divergence from the paper recorded in
  // EXPERIMENTS.md; here we assert the 0.5 case and zero-centering for all.
  Rng rng(3);
  std::vector<float> weights(100000);
  for (auto& w : weights) w = static_cast<float>(rng.laplace(0.0, 0.05));
  const lossy::LossyCodec& sz2 = lossy::lossy_codec(lossy::LossyId::kSz2);
  for (const double rel : {0.5, 0.1, 0.05}) {
    const Bytes blob = sz2.compress({weights.data(), weights.size()},
                                    lossy::ErrorBound::relative(rel));
    const auto back = sz2.decompress({blob.data(), blob.size()});
    const ErrorDistribution dist =
        analyze_errors({weights.data(), weights.size()},
                       {back.data(), back.size()});
    if (rel == 0.5) {
      EXPECT_LT(dist.ks_laplace, dist.ks_normal);
    }
    EXPECT_GT(dist.laplace.b, 0.0) << "rel=" << rel;
    EXPECT_NEAR(dist.laplace.mu, 0.0, 0.01) << "rel=" << rel;
  }
}

TEST(DpAnalysis, HistogramCoversErrors) {
  Rng rng(4);
  std::vector<float> original(5000), noisy(5000);
  for (std::size_t i = 0; i < original.size(); ++i) {
    original[i] = 0.0f;
    noisy[i] = static_cast<float>(rng.laplace(0.0, 0.05));
  }
  const ErrorDistribution dist = analyze_errors(
      {original.data(), original.size()}, {noisy.data(), noisy.size()}, 31);
  EXPECT_EQ(dist.histogram.counts.size(), 31u);
  EXPECT_EQ(dist.histogram.total, 5000u);
}

}  // namespace
}  // namespace fedsz::core

// Tests for the canonical Huffman coder shared by SZ2/SZ3 and the
// deflate/zstd-like lossless codecs.
#include <gtest/gtest.h>

#include "compress/lossless/huffman.hpp"
#include "util/rng.hpp"

namespace fedsz::lossless {
namespace {

std::vector<std::uint32_t> roundtrip(std::span<const std::uint32_t> symbols) {
  const Bytes encoded = huffman_encode(symbols);
  return huffman_decode({encoded.data(), encoded.size()});
}

TEST(Huffman, EmptyInput) {
  const std::vector<std::uint32_t> symbols;
  EXPECT_EQ(roundtrip(symbols), symbols);
}

TEST(Huffman, SingleSymbolRepeated) {
  const std::vector<std::uint32_t> symbols(1000, 42);
  EXPECT_EQ(roundtrip(symbols), symbols);
  // One distinct symbol should cost ~1 bit each.
  const Bytes encoded = huffman_encode(symbols);
  EXPECT_LT(encoded.size(), 1000u / 8 + 32);
}

TEST(Huffman, TwoSymbols) {
  std::vector<std::uint32_t> symbols;
  for (int i = 0; i < 100; ++i) symbols.push_back(i % 2 ? 7 : 9);
  EXPECT_EQ(roundtrip(symbols), symbols);
}

TEST(Huffman, SkewedDistributionCompresses) {
  Rng rng(3);
  std::vector<std::uint32_t> symbols(20000);
  for (auto& s : symbols)
    s = rng.uniform() < 0.95 ? 0 : static_cast<std::uint32_t>(
                                       rng.uniform_index(200));
  EXPECT_EQ(roundtrip(symbols), symbols);
  const Bytes encoded = huffman_encode(symbols);
  // ~0.95*log2(1/0.95) + ... entropy well under 1 bit/symbol; allow slack.
  EXPECT_LT(encoded.size(), symbols.size() / 2);
}

TEST(Huffman, UniformDistributionRoundTrips) {
  Rng rng(5);
  std::vector<std::uint32_t> symbols(5000);
  for (auto& s : symbols)
    s = static_cast<std::uint32_t>(rng.uniform_index(256));
  EXPECT_EQ(roundtrip(symbols), symbols);
}

TEST(Huffman, LargeSparseAlphabet) {
  Rng rng(7);
  std::vector<std::uint32_t> symbols(5000);
  for (auto& s : symbols)
    s = 30000 + static_cast<std::uint32_t>(rng.uniform_index(5000));
  EXPECT_EQ(roundtrip(symbols), symbols);
}

TEST(Huffman, QuantizationCodeShapedData) {
  // Codes clustered around a radius midpoint, like SZ quantization output.
  Rng rng(9);
  std::vector<std::uint32_t> symbols(50000);
  for (auto& s : symbols)
    s = static_cast<std::uint32_t>(32768.0 + rng.laplace(0.0, 3.0));
  EXPECT_EQ(roundtrip(symbols), symbols);
  const Bytes encoded = huffman_encode(symbols);
  EXPECT_LT(encoded.size(), symbols.size());  // well under 8 bits each
}

TEST(Huffman, ExtremeSkewTriggersLengthLimit) {
  // Exponentially decaying frequencies force the unlimited Huffman tree past
  // 16 levels; the length-limit repair must keep the code decodable.
  std::vector<std::uint32_t> symbols;
  std::size_t count = 1;
  for (std::uint32_t s = 0; s < 24; ++s) {
    for (std::size_t i = 0; i < count; ++i) symbols.push_back(s);
    count *= 2;
    if (count > 500000) count = 500000;
  }
  EXPECT_EQ(roundtrip(symbols), symbols);
}

TEST(Huffman, CodebookCodeLengthsAreOrderedByFrequency) {
  std::vector<std::pair<std::uint32_t, std::uint64_t>> freqs{
      {0, 1000}, {1, 100}, {2, 10}, {3, 1}};
  const HuffmanCodebook book = HuffmanCodebook::from_frequencies(freqs);
  EXPECT_LE(book.code_length(0), book.code_length(1));
  EXPECT_LE(book.code_length(1), book.code_length(2));
  EXPECT_LE(book.code_length(2), book.code_length(3));
  EXPECT_EQ(book.code_length(99), 0u);  // not in book
}

TEST(Huffman, CodebookEncodeUnknownSymbolThrows) {
  const HuffmanCodebook book = HuffmanCodebook::from_frequencies({{1, 5},
                                                                  {2, 5}});
  BitWriter bits;
  EXPECT_THROW(book.encode(bits, 3), InvalidArgument);
}

TEST(Huffman, TableRoundTripViaByteWriter) {
  Rng rng(11);
  std::vector<std::uint32_t> symbols(2000);
  for (auto& s : symbols) s = static_cast<std::uint32_t>(rng.uniform_index(50));
  const HuffmanCodebook book = HuffmanCodebook::from_symbols(symbols);
  ByteWriter w;
  book.write_table(w);
  const Bytes table = w.finish();
  ByteReader r({table.data(), table.size()});
  const HuffmanCodebook back = HuffmanCodebook::read_table(r);
  EXPECT_EQ(back.distinct_symbols(), book.distinct_symbols());
  // Codes must agree: encode with one, decode with the other.
  BitWriter bits;
  for (const auto s : symbols) book.encode(bits, s);
  const Bytes payload = bits.finish();
  BitReader br({payload.data(), payload.size()});
  for (const auto s : symbols) EXPECT_EQ(back.decode(br), s);
}

TEST(Huffman, DecodeCorruptStreamThrows) {
  // A codebook with lengths >1 cannot decode a stream of pure 1-bits longer
  // than any code if 0b111... is not assigned.
  const HuffmanCodebook book = HuffmanCodebook::from_frequencies(
      {{0, 8}, {1, 4}, {2, 2}, {3, 1}, {4, 1}});
  const Bytes all_ones(4, 0xFF);
  BitReader r({all_ones.data(), all_ones.size()});
  // Either decodes valid symbols or throws; drain and accept both, but a
  // truncated stream must eventually throw.
  EXPECT_THROW(
      {
        for (int i = 0; i < 100; ++i) (void)book.decode(r);
      },
      CorruptStream);
}

TEST(Huffman, TooManyDistinctSymbolsThrows) {
  std::vector<std::pair<std::uint32_t, std::uint64_t>> freqs;
  freqs.reserve(65537);
  for (std::uint32_t s = 0; s < 65537; ++s) freqs.emplace_back(s, 1);
  EXPECT_THROW(HuffmanCodebook::from_frequencies(freqs), InvalidArgument);
}

TEST(Huffman, DeterministicEncoding) {
  Rng rng(13);
  std::vector<std::uint32_t> symbols(3000);
  for (auto& s : symbols) s = static_cast<std::uint32_t>(rng.uniform_index(99));
  EXPECT_EQ(huffman_encode(symbols), huffman_encode(symbols));
}

TEST(Huffman, CallerBufferEncodeMatchesOneShotEncode) {
  Rng rng(47);
  ByteWriter out;
  BitWriter bits;
  // Dirty, reused buffers across wildly different payload sizes: the
  // appended bytes must always equal the self-contained one-shot encoding.
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                              std::size_t{4096}, std::size_t{33},
                              std::size_t{20000}, std::size_t{2}}) {
    std::vector<std::uint32_t> symbols(n);
    for (auto& s : symbols)
      s = static_cast<std::uint32_t>(rng.uniform_index(300));
    const Bytes reference = huffman_encode(symbols);
    out.reset();
    huffman_encode(symbols, out, bits);
    const ByteSpan view = out.view();
    EXPECT_EQ(Bytes(view.begin(), view.end()), reference) << "n=" << n;
  }
}

TEST(Huffman, CallerBufferDecodeMatchesOneShotDecode) {
  Rng rng(48);
  std::vector<std::uint32_t> decoded;
  decoded.assign(999, 0xDEADBEEF);  // stale content must be discarded
  for (const std::size_t n :
       {std::size_t{0}, std::size_t{512}, std::size_t{3}, std::size_t{9000}}) {
    std::vector<std::uint32_t> symbols(n);
    for (auto& s : symbols)
      s = static_cast<std::uint32_t>(rng.uniform_index(64));
    const Bytes encoded = huffman_encode(symbols);
    huffman_decode({encoded.data(), encoded.size()}, decoded);
    EXPECT_EQ(decoded, symbols) << "n=" << n;
  }
}

TEST(Huffman, CallerBufferEncodeAppendsAfterExistingBytes) {
  // The overload appends to whatever `out` already holds (the sz2/sz3
  // arena writes a codec header first), so a prefix must survive intact.
  std::vector<std::uint32_t> symbols{5, 5, 5, 9, 9, 2};
  ByteWriter out;
  out.put_u8(0xAB);
  out.put_u8(0xCD);
  BitWriter bits;
  huffman_encode(symbols, out, bits);
  const ByteSpan view = out.view();
  ASSERT_GE(view.size(), 2u);
  EXPECT_EQ(view[0], 0xAB);
  EXPECT_EQ(view[1], 0xCD);
  const Bytes reference = huffman_encode(symbols);
  EXPECT_EQ(Bytes(view.begin() + 2, view.end()), reference);
}

}  // namespace
}  // namespace fedsz::lossless

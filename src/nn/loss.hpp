// Softmax cross-entropy, the loss used by every experiment in the paper's
// evaluation (image classification with FedAvg local SGD).
#pragma once

#include <span>
#include <vector>

#include "tensor/tensor.hpp"

namespace fedsz::nn {

struct LossResult {
  double loss = 0.0;      // mean cross-entropy over the batch
  Tensor grad_logits;     // d loss / d logits (already divided by batch)
};

/// logits: {N, num_classes}; labels: N class indices.
LossResult softmax_cross_entropy(const Tensor& logits,
                                 std::span<const int> labels);

/// Row-wise softmax probabilities (numerically stabilized).
Tensor softmax(const Tensor& logits);

}  // namespace fedsz::nn

#include "nn/conv.hpp"

#include "nn/layers.hpp"

namespace fedsz::nn {

Conv2d::Conv2d(std::int64_t in_channels, std::int64_t out_channels, int kernel,
               int stride, int padding, std::int64_t groups, bool bias,
               Rng& rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      groups_(groups),
      kernel_(kernel),
      stride_(stride),
      padding_(padding),
      has_bias_(bias),
      weight_({out_channels, in_channels / groups, kernel, kernel}),
      bias_({out_channels}),
      weight_grad_({out_channels, in_channels / groups, kernel, kernel}),
      bias_grad_({out_channels}) {
  if (in_channels % groups != 0 || out_channels % groups != 0)
    throw InvalidArgument("Conv2d: channels must divide groups");
  if (kernel <= 0 || stride <= 0 || padding < 0)
    throw InvalidArgument("Conv2d: bad kernel/stride/padding");
  const std::int64_t fan_in = (in_channels / groups) * kernel * kernel;
  kaiming_uniform(weight_, fan_in, rng);
  if (has_bias_) kaiming_uniform(bias_, fan_in, rng);
}

Tensor Conv2d::forward(const Tensor& input, bool /*training*/) {
  if (input.rank() != 4 || input.dim(1) != in_channels_)
    throw InvalidArgument("Conv2d: expected NCHW with C=" +
                          std::to_string(in_channels_) + ", got " +
                          input.shape_string());
  cached_input_ = input;
  const std::int64_t N = input.dim(0), H = input.dim(2), W = input.dim(3);
  const std::int64_t Ho = (H + 2 * padding_ - kernel_) / stride_ + 1;
  const std::int64_t Wo = (W + 2 * padding_ - kernel_) / stride_ + 1;
  if (Ho <= 0 || Wo <= 0) throw InvalidArgument("Conv2d: input too small");
  Tensor out({N, out_channels_, Ho, Wo});

  const std::int64_t cin_per_group = in_channels_ / groups_;
  const std::int64_t cout_per_group = out_channels_ / groups_;
  const float* x = input.data();
  const float* w = weight_.data();
  float* y = out.data();

  for (std::int64_t n = 0; n < N; ++n) {
    for (std::int64_t oc = 0; oc < out_channels_; ++oc) {
      const std::int64_t g = oc / cout_per_group;
      float* yp = y + (n * out_channels_ + oc) * Ho * Wo;
      const float b = has_bias_ ? bias_[static_cast<std::size_t>(oc)] : 0.0f;
      for (std::int64_t i = 0; i < Ho * Wo; ++i) yp[i] = b;
      for (std::int64_t ic = 0; ic < cin_per_group; ++ic) {
        const float* xp =
            x + (n * in_channels_ + g * cin_per_group + ic) * H * W;
        const float* wp =
            w + ((oc * cin_per_group) + ic) * kernel_ * kernel_;
        for (std::int64_t ho = 0; ho < Ho; ++ho) {
          const std::int64_t h0 = ho * stride_ - padding_;
          for (std::int64_t wo = 0; wo < Wo; ++wo) {
            const std::int64_t w0 = wo * stride_ - padding_;
            float acc = 0.0f;
            for (int kh = 0; kh < kernel_; ++kh) {
              const std::int64_t h = h0 + kh;
              if (h < 0 || h >= H) continue;
              const float* xrow = xp + h * W;
              const float* wrow = wp + kh * kernel_;
              for (int kw = 0; kw < kernel_; ++kw) {
                const std::int64_t ww = w0 + kw;
                if (ww < 0 || ww >= W) continue;
                acc += xrow[ww] * wrow[kw];
              }
            }
            yp[ho * Wo + wo] += acc;
          }
        }
      }
    }
  }
  return out;
}

Tensor Conv2d::backward(const Tensor& grad_output) {
  const Tensor& input = cached_input_;
  const std::int64_t N = input.dim(0), H = input.dim(2), W = input.dim(3);
  const std::int64_t Ho = grad_output.dim(2), Wo = grad_output.dim(3);
  if (grad_output.rank() != 4 || grad_output.dim(0) != N ||
      grad_output.dim(1) != out_channels_)
    throw InvalidArgument("Conv2d::backward: bad grad shape");
  Tensor grad_input(input.shape());

  const std::int64_t cin_per_group = in_channels_ / groups_;
  const std::int64_t cout_per_group = out_channels_ / groups_;
  const float* x = input.data();
  const float* w = weight_.data();
  const float* g = grad_output.data();
  float* gx = grad_input.data();
  float* gw = weight_grad_.data();
  float* gb = bias_grad_.data();

  for (std::int64_t n = 0; n < N; ++n) {
    for (std::int64_t oc = 0; oc < out_channels_; ++oc) {
      const std::int64_t grp = oc / cout_per_group;
      const float* gp = g + (n * out_channels_ + oc) * Ho * Wo;
      if (has_bias_) {
        float acc = 0.0f;
        for (std::int64_t i = 0; i < Ho * Wo; ++i) acc += gp[i];
        gb[oc] += acc;
      }
      for (std::int64_t ic = 0; ic < cin_per_group; ++ic) {
        const std::int64_t in_c = grp * cin_per_group + ic;
        const float* xp = x + (n * in_channels_ + in_c) * H * W;
        float* gxp = gx + (n * in_channels_ + in_c) * H * W;
        const float* wp = w + ((oc * cin_per_group) + ic) * kernel_ * kernel_;
        float* gwp = gw + ((oc * cin_per_group) + ic) * kernel_ * kernel_;
        for (std::int64_t ho = 0; ho < Ho; ++ho) {
          const std::int64_t h0 = ho * stride_ - padding_;
          for (std::int64_t wo = 0; wo < Wo; ++wo) {
            const std::int64_t w0 = wo * stride_ - padding_;
            const float go = gp[ho * Wo + wo];
            if (go == 0.0f) continue;
            for (int kh = 0; kh < kernel_; ++kh) {
              const std::int64_t h = h0 + kh;
              if (h < 0 || h >= H) continue;
              for (int kw = 0; kw < kernel_; ++kw) {
                const std::int64_t ww = w0 + kw;
                if (ww < 0 || ww >= W) continue;
                gwp[kh * kernel_ + kw] += go * xp[h * W + ww];
                gxp[h * W + ww] += go * wp[kh * kernel_ + kw];
              }
            }
          }
        }
      }
    }
  }
  return grad_input;
}

void Conv2d::collect(const std::string& prefix, std::vector<ParamRef>& params,
                     std::vector<BufferRef>& /*buffers*/) {
  params.push_back({prefix + "weight", &weight_, &weight_grad_});
  if (has_bias_) params.push_back({prefix + "bias", &bias_, &bias_grad_});
}

}  // namespace fedsz::nn

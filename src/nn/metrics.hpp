// Evaluation metrics: Top-1 accuracy, the quantity reported throughout the
// paper's tables and accuracy figures.
#pragma once

#include <span>

#include "tensor/tensor.hpp"

namespace fedsz::nn {

/// Fraction of rows whose argmax matches the label, in [0, 1].
double top1_accuracy(const Tensor& logits, std::span<const int> labels);

}  // namespace fedsz::nn

#include "nn/models.hpp"

#include <memory>

#include "nn/batchnorm.hpp"
#include "nn/conv.hpp"
#include "nn/layers.hpp"
#include "nn/sequential.hpp"
#include "util/rng.hpp"

namespace fedsz::nn {

namespace {

/// Tracks activation dimensions and accumulated FLOPs while stacking layers.
struct Builder {
  Rng rng;
  std::int64_t channels;
  std::int64_t height;
  std::int64_t width;
  double flops = 0.0;

  Builder(std::uint64_t seed, std::int64_t c, std::int64_t hw)
      : rng(seed), channels(c), height(hw), width(hw) {}

  ModulePtr conv(std::int64_t out_c, int kernel, int stride, int padding,
                 std::int64_t groups = 1, bool bias = true) {
    auto layer = std::make_shared<Conv2d>(channels, out_c, kernel, stride,
                                          padding, groups, bias, rng);
    const std::int64_t ho = (height + 2 * padding - kernel) / stride + 1;
    const std::int64_t wo = (width + 2 * padding - kernel) / stride + 1;
    flops += 2.0 * static_cast<double>(kernel) * kernel *
             static_cast<double>(channels / groups) *
             static_cast<double>(out_c) * static_cast<double>(ho * wo);
    channels = out_c;
    height = ho;
    width = wo;
    return layer;
  }

  ModulePtr bn() { return std::make_shared<BatchNorm2d>(channels); }

  ModulePtr maxpool(int kernel, int stride) {
    auto layer = std::make_shared<MaxPool2d>(kernel, stride);
    height = (height - kernel) / stride + 1;
    width = (width - kernel) / stride + 1;
    if (height <= 0 || width <= 0)
      throw InvalidArgument("model builder: image too small for pooling");
    return layer;
  }

  ModulePtr global_pool() {
    auto layer = std::make_shared<GlobalAvgPool>();
    height = 1;
    width = 1;
    return layer;
  }

  ModulePtr linear(std::int64_t in, std::int64_t out) {
    flops += 2.0 * static_cast<double>(in) * static_cast<double>(out);
    return std::make_shared<Linear>(in, out, rng);
  }

  std::int64_t flat_features() const { return channels * height * width; }
};

// ---- AlexNet analogue ----

BuiltModel build_alexnet(const ModelConfig& cfg) {
  struct Widths {
    std::int64_t c1, c2, c3, fc;
  };
  Widths w{};
  switch (cfg.scale) {
    case ModelScale::kTiny:
      w = {8, 12, 16, 64};
      break;
    case ModelScale::kBench:
      w = {24, 48, 64, 512};
      break;
    case ModelScale::kPaper:
      w = {64, 192, 384, 4096};
      break;
  }
  Builder b(cfg.seed, cfg.in_channels, cfg.image_size);
  auto features = std::make_shared<Sequential>();
  features->add(b.conv(w.c1, 3, 1, 1));
  features->add(std::make_shared<ReLU>());
  features->add(b.maxpool(2, 2));
  features->add(b.conv(w.c2, 3, 1, 1));
  features->add(std::make_shared<ReLU>());
  features->add(b.maxpool(2, 2));
  features->add(b.conv(w.c3, 3, 1, 1));
  features->add(std::make_shared<ReLU>());
  features->add(b.conv(w.c3, 3, 1, 1));
  features->add(std::make_shared<ReLU>());
  features->add(b.conv(w.c2, 3, 1, 1));
  features->add(std::make_shared<ReLU>());
  features->add(b.maxpool(2, 2));

  auto classifier = std::make_shared<Sequential>();
  classifier->add(std::make_shared<Dropout>(0.5f, cfg.seed ^ 0xD06));
  classifier->add(b.linear(b.flat_features(), w.fc));
  classifier->add(std::make_shared<ReLU>());
  classifier->add(std::make_shared<Dropout>(0.5f, cfg.seed ^ 0xD07));
  classifier->add(b.linear(w.fc, w.fc));
  classifier->add(std::make_shared<ReLU>());
  classifier->add(b.linear(w.fc, cfg.num_classes));

  auto root = std::make_shared<Sequential>();
  root->add(features);
  root->add(std::make_shared<Flatten>());
  root->add(classifier);
  return {Model(root), b.flops};
}

// ---- MobileNetV2 analogue ----

ModulePtr inverted_residual(Builder& b, std::int64_t out_c, int stride,
                            std::int64_t expand) {
  const std::int64_t in_c = b.channels;
  const std::int64_t hidden = in_c * expand;
  auto main = std::make_shared<Sequential>();
  if (expand != 1) {
    main->add(b.conv(hidden, 1, 1, 0, 1, /*bias=*/false));
    main->add(b.bn());
    main->add(std::make_shared<ReLU>(6.0f));
  }
  main->add(b.conv(hidden, 3, stride, 1, /*groups=*/hidden, /*bias=*/false));
  main->add(b.bn());
  main->add(std::make_shared<ReLU>(6.0f));
  main->add(b.conv(out_c, 1, 1, 0, 1, /*bias=*/false));
  main->add(b.bn());
  if (stride == 1 && in_c == out_c)
    return std::make_shared<Residual>(main, nullptr, /*post_relu=*/false);
  return main;
}

BuiltModel build_mobilenet_v2(const ModelConfig& cfg) {
  struct BlockSpec {
    std::int64_t expand, out_c;
    int repeats, stride;
  };
  std::int64_t stem = 0, head = 0;
  std::vector<BlockSpec> blocks;
  switch (cfg.scale) {
    case ModelScale::kTiny:
      // Sized so a few expand/project convolutions exceed FedSZ's default
      // 1000-element lossy threshold (as every real MobileNet does).
      stem = 8;
      head = 64;
      blocks = {{1, 8, 1, 1}, {4, 16, 2, 2}, {4, 24, 1, 2}};
      break;
    case ModelScale::kBench:
      stem = 16;
      head = 128;
      blocks = {{1, 16, 1, 1}, {6, 24, 2, 2}, {6, 32, 2, 2}, {6, 64, 2, 1}};
      break;
    case ModelScale::kPaper:
      stem = 32;
      head = 1280;
      blocks = {{1, 16, 1, 1},  {6, 24, 2, 2}, {6, 32, 3, 2}, {6, 64, 4, 2},
                {6, 96, 3, 1},  {6, 160, 3, 2}, {6, 320, 1, 1}};
      break;
  }
  Builder b(cfg.seed, cfg.in_channels, cfg.image_size);
  auto features = std::make_shared<Sequential>();
  features->add(b.conv(stem, 3, 1, 1, 1, /*bias=*/false));
  features->add(b.bn());
  features->add(std::make_shared<ReLU>(6.0f));
  for (const BlockSpec& spec : blocks) {
    for (int i = 0; i < spec.repeats; ++i) {
      const int stride = i == 0 ? spec.stride : 1;
      features->add(inverted_residual(b, spec.out_c, stride, spec.expand));
    }
  }
  features->add(b.conv(head, 1, 1, 0, 1, /*bias=*/false));
  features->add(b.bn());
  features->add(std::make_shared<ReLU>(6.0f));
  features->add(b.global_pool());

  auto root = std::make_shared<Sequential>();
  root->add(features);
  root->add(std::make_shared<Flatten>());
  root->add(b.linear(head, cfg.num_classes));
  return {Model(root), b.flops};
}

// ---- ResNet analogue (bottleneck blocks) ----

ModulePtr bottleneck(Builder& b, std::int64_t mid_c, int stride) {
  constexpr std::int64_t kExpansion = 4;
  const std::int64_t in_c = b.channels;
  const std::int64_t out_c = mid_c * kExpansion;
  // The shortcut sees the block's input geometry; snapshot it.
  const std::int64_t in_h = b.height, in_w = b.width;

  auto main = std::make_shared<Sequential>();
  main->add(b.conv(mid_c, 1, 1, 0, 1, /*bias=*/false));
  main->add(b.bn());
  main->add(std::make_shared<ReLU>());
  main->add(b.conv(mid_c, 3, stride, 1, 1, /*bias=*/false));
  main->add(b.bn());
  main->add(std::make_shared<ReLU>());
  main->add(b.conv(out_c, 1, 1, 0, 1, /*bias=*/false));
  main->add(b.bn());

  ModulePtr shortcut;
  if (stride != 1 || in_c != out_c) {
    Builder side(b.rng.next_u64(), in_c, 1);
    side.height = in_h;
    side.width = in_w;
    auto sc = std::make_shared<Sequential>();
    sc->add(side.conv(out_c, 1, stride, 0, 1, /*bias=*/false));
    sc->add(side.bn());
    b.flops += side.flops;
    shortcut = sc;
  }
  return std::make_shared<Residual>(main, shortcut, /*post_relu=*/true);
}

BuiltModel build_resnet(const ModelConfig& cfg) {
  std::int64_t base = 0;
  std::vector<int> block_counts;
  switch (cfg.scale) {
    case ModelScale::kTiny:
      base = 8;
      block_counts = {1, 1};
      break;
    case ModelScale::kBench:
      base = 16;
      block_counts = {2, 2, 2};
      break;
    case ModelScale::kPaper:
      base = 64;
      block_counts = {3, 4, 6, 3};  // ResNet50
      break;
  }
  Builder b(cfg.seed, cfg.in_channels, cfg.image_size);
  auto features = std::make_shared<Sequential>();
  features->add(b.conv(base, 3, 1, 1, 1, /*bias=*/false));
  features->add(b.bn());
  features->add(std::make_shared<ReLU>());
  std::int64_t mid = base;
  for (std::size_t stage = 0; stage < block_counts.size(); ++stage) {
    for (int i = 0; i < block_counts[stage]; ++i) {
      const int stride = (stage > 0 && i == 0) ? 2 : 1;
      features->add(bottleneck(b, mid, stride));
    }
    mid *= 2;
  }
  features->add(b.global_pool());

  auto root = std::make_shared<Sequential>();
  root->add(features);
  root->add(std::make_shared<Flatten>());
  root->add(b.linear(b.flat_features(), cfg.num_classes));
  return {Model(root), b.flops};
}

}  // namespace

BuiltModel build_model(const ModelConfig& config) {
  if (config.image_size < 8)
    throw InvalidArgument("build_model: image_size must be >= 8");
  if (config.arch == "alexnet") return build_alexnet(config);
  if (config.arch == "mobilenet_v2") return build_mobilenet_v2(config);
  if (config.arch == "resnet") return build_resnet(config);
  throw InvalidArgument("build_model: unknown architecture '" + config.arch +
                        "'");
}

std::vector<std::string> model_architectures() {
  return {"mobilenet_v2", "resnet", "alexnet"};
}

std::string model_display_name(const std::string& arch) {
  if (arch == "alexnet") return "AlexNet";
  if (arch == "mobilenet_v2") return "MobileNet-V2";
  if (arch == "resnet") return "ResNet50";
  throw InvalidArgument("model_display_name: unknown architecture");
}

}  // namespace fedsz::nn

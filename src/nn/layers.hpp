// Elementary layers: Linear, activations, pooling, flatten, dropout.
// Convolution and BatchNorm live in their own translation units (conv.hpp,
// batchnorm.hpp); containers in sequential.hpp.
#pragma once

#include "nn/module.hpp"
#include "util/rng.hpp"

namespace fedsz::nn {

/// Fully connected layer: y = x W^T + b, weight shape {out, in}.
class Linear final : public Module {
 public:
  Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  void collect(const std::string& prefix, std::vector<ParamRef>& params,
               std::vector<BufferRef>& buffers) override;
  std::string type_name() const override { return "Linear"; }

  std::int64_t in_features() const { return in_; }
  std::int64_t out_features() const { return out_; }

 private:
  std::int64_t in_, out_;
  Tensor weight_, bias_;
  Tensor weight_grad_, bias_grad_;
  Tensor cached_input_;
};

/// ReLU with an optional upper clamp (clamp = 6 gives ReLU6, used by
/// MobileNetV2; clamp <= 0 means unclamped).
class ReLU final : public Module {
 public:
  explicit ReLU(float clamp = 0.0f) : clamp_(clamp) {}

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string type_name() const override {
    return clamp_ > 0.0f ? "ReLU6" : "ReLU";
  }

 private:
  float clamp_;
  std::vector<std::uint8_t> pass_mask_;
};

/// 2D max pooling over NCHW input.
class MaxPool2d final : public Module {
 public:
  MaxPool2d(int kernel, int stride);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string type_name() const override { return "MaxPool2d"; }

 private:
  int kernel_, stride_;
  Shape input_shape_;
  std::vector<std::uint32_t> argmax_;  // flat input index per output element
};

/// Global average pooling: NCHW -> NC11 (AdaptiveAvgPool2d(1)).
class GlobalAvgPool final : public Module {
 public:
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string type_name() const override { return "GlobalAvgPool"; }

 private:
  Shape input_shape_;
};

/// Collapse all non-batch dimensions: {N, ...} -> {N, prod(...)}.
class Flatten final : public Module {
 public:
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string type_name() const override { return "Flatten"; }

 private:
  Shape input_shape_;
};

/// Inverted dropout: active only in training mode.
class Dropout final : public Module {
 public:
  Dropout(float probability, std::uint64_t seed);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string type_name() const override { return "Dropout"; }

 private:
  float probability_;
  Rng rng_;
  std::vector<float> scale_mask_;
  bool was_training_ = false;
};

/// Uniform Kaiming-style initialization used by Linear/Conv2d:
/// U(-1/sqrt(fan_in), 1/sqrt(fan_in)).
void kaiming_uniform(Tensor& tensor, std::int64_t fan_in, Rng& rng);

}  // namespace fedsz::nn

// 2D convolution over NCHW tensors with stride, zero padding and grouped
// channels (groups == in_channels gives the depthwise convolutions of
// MobileNetV2). Direct-loop implementation: the reproduction's models are
// deliberately laptop-scale, so clarity wins over an im2col/GEMM path.
#pragma once

#include "nn/module.hpp"
#include "util/rng.hpp"

namespace fedsz::nn {

class Conv2d final : public Module {
 public:
  Conv2d(std::int64_t in_channels, std::int64_t out_channels, int kernel,
         int stride, int padding, std::int64_t groups, bool bias, Rng& rng);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  void collect(const std::string& prefix, std::vector<ParamRef>& params,
               std::vector<BufferRef>& buffers) override;
  std::string type_name() const override { return "Conv2d"; }

  std::int64_t in_channels() const { return in_channels_; }
  std::int64_t out_channels() const { return out_channels_; }

 private:
  std::int64_t in_channels_, out_channels_, groups_;
  int kernel_, stride_, padding_;
  bool has_bias_;
  Tensor weight_;  // {out_c, in_c/groups, k, k}
  Tensor bias_;    // {out_c}
  Tensor weight_grad_, bias_grad_;
  Tensor cached_input_;
};

}  // namespace fedsz::nn

#include "nn/metrics.hpp"

#include "util/common.hpp"

namespace fedsz::nn {

double top1_accuracy(const Tensor& logits, std::span<const int> labels) {
  if (logits.rank() != 2)
    throw InvalidArgument("top1_accuracy: expected {N, C}");
  const std::int64_t N = logits.dim(0), C = logits.dim(1);
  if (labels.size() != static_cast<std::size_t>(N))
    throw InvalidArgument("top1_accuracy: label count mismatch");
  if (N == 0) return 0.0;
  std::int64_t correct = 0;
  for (std::int64_t n = 0; n < N; ++n) {
    const float* row = logits.data() + n * C;
    std::int64_t best = 0;
    for (std::int64_t c = 1; c < C; ++c)
      if (row[c] > row[best]) best = c;
    if (best == labels[static_cast<std::size_t>(n)]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(N);
}

}  // namespace fedsz::nn

// Containers: Sequential (children named "0", "1", ... PyTorch-style) and
// Residual (two-branch add, the building block of the ResNet and MobileNetV2
// analogues).
#pragma once

#include "nn/module.hpp"

namespace fedsz::nn {

class Sequential final : public Module {
 public:
  Sequential() = default;
  explicit Sequential(std::vector<ModulePtr> children)
      : children_(std::move(children)) {}

  void add(ModulePtr child) { children_.push_back(std::move(child)); }
  std::size_t size() const { return children_.size(); }

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  void collect(const std::string& prefix, std::vector<ParamRef>& params,
               std::vector<BufferRef>& buffers) override;
  std::string type_name() const override { return "Sequential"; }

 private:
  std::vector<ModulePtr> children_;
};

/// y = main(x) + shortcut(x); a null shortcut is the identity. The optional
/// post-activation (ReLU after the add, as in ResNet) is applied when
/// `post_relu` is set.
class Residual final : public Module {
 public:
  Residual(ModulePtr main, ModulePtr shortcut, bool post_relu)
      : main_(std::move(main)),
        shortcut_(std::move(shortcut)),
        post_relu_(post_relu) {}

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  void collect(const std::string& prefix, std::vector<ParamRef>& params,
               std::vector<BufferRef>& buffers) override;
  std::string type_name() const override { return "Residual"; }

 private:
  ModulePtr main_;
  ModulePtr shortcut_;  // nullptr -> identity
  bool post_relu_;
  std::vector<std::uint8_t> relu_mask_;
};

}  // namespace fedsz::nn

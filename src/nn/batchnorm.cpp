#include "nn/batchnorm.hpp"

#include <cmath>

namespace fedsz::nn {

BatchNorm2d::BatchNorm2d(std::int64_t channels, float momentum, float eps)
    : channels_(channels),
      momentum_(momentum),
      eps_(eps),
      weight_({channels}),
      bias_({channels}),
      weight_grad_({channels}),
      bias_grad_({channels}),
      running_mean_({channels}),
      running_var_({channels}),
      num_batches_tracked_() {
  weight_.fill(1.0f);
  running_var_.fill(1.0f);
}

Tensor BatchNorm2d::forward(const Tensor& input, bool training) {
  if (input.rank() != 4 || input.dim(1) != channels_)
    throw InvalidArgument("BatchNorm2d: expected NCHW with C=" +
                          std::to_string(channels_));
  was_training_ = training;
  const std::int64_t N = input.dim(0), C = channels_, H = input.dim(2),
                     W = input.dim(3);
  const std::int64_t per_channel = N * H * W;
  Tensor out(input.shape());
  const float* x = input.data();
  float* y = out.data();

  batch_mean_.assign(static_cast<std::size_t>(C), 0.0f);
  batch_inv_std_.assign(static_cast<std::size_t>(C), 0.0f);

  for (std::int64_t c = 0; c < C; ++c) {
    double mean, var;
    if (training) {
      double sum = 0.0, sum_sq = 0.0;
      for (std::int64_t n = 0; n < N; ++n) {
        const float* plane = x + (n * C + c) * H * W;
        for (std::int64_t i = 0; i < H * W; ++i) {
          sum += plane[i];
          sum_sq += static_cast<double>(plane[i]) * plane[i];
        }
      }
      mean = sum / static_cast<double>(per_channel);
      var = std::max(0.0, sum_sq / static_cast<double>(per_channel) -
                              mean * mean);
      // PyTorch tracks the unbiased variance in running_var.
      const double unbiased =
          per_channel > 1
              ? var * static_cast<double>(per_channel) /
                    static_cast<double>(per_channel - 1)
              : var;
      running_mean_[static_cast<std::size_t>(c)] = static_cast<float>(
          (1.0 - momentum_) * running_mean_[static_cast<std::size_t>(c)] +
          momentum_ * mean);
      running_var_[static_cast<std::size_t>(c)] = static_cast<float>(
          (1.0 - momentum_) * running_var_[static_cast<std::size_t>(c)] +
          momentum_ * unbiased);
    } else {
      mean = running_mean_[static_cast<std::size_t>(c)];
      var = running_var_[static_cast<std::size_t>(c)];
    }
    const float inv_std = static_cast<float>(1.0 / std::sqrt(var + eps_));
    batch_mean_[static_cast<std::size_t>(c)] = static_cast<float>(mean);
    batch_inv_std_[static_cast<std::size_t>(c)] = inv_std;
    const float gamma = weight_[static_cast<std::size_t>(c)];
    const float beta = bias_[static_cast<std::size_t>(c)];
    for (std::int64_t n = 0; n < N; ++n) {
      const float* xp = x + (n * C + c) * H * W;
      float* yp = y + (n * C + c) * H * W;
      for (std::int64_t i = 0; i < H * W; ++i)
        yp[i] = (xp[i] - static_cast<float>(mean)) * inv_std * gamma + beta;
    }
  }
  if (training) num_batches_tracked_[0] += 1.0f;
  cached_input_ = input;
  return out;
}

Tensor BatchNorm2d::backward(const Tensor& grad_output) {
  const Tensor& input = cached_input_;
  if (!grad_output.same_shape(input))
    throw InvalidArgument("BatchNorm2d::backward: shape mismatch");
  const std::int64_t N = input.dim(0), C = channels_, H = input.dim(2),
                     W = input.dim(3);
  const std::int64_t per_channel = N * H * W;
  Tensor grad_input(input.shape());
  const float* x = input.data();
  const float* g = grad_output.data();
  float* gx = grad_input.data();

  for (std::int64_t c = 0; c < C; ++c) {
    const float mean = batch_mean_[static_cast<std::size_t>(c)];
    const float inv_std = batch_inv_std_[static_cast<std::size_t>(c)];
    const float gamma = weight_[static_cast<std::size_t>(c)];

    double sum_g = 0.0, sum_gx = 0.0;  // sums of grad and grad*xhat
    for (std::int64_t n = 0; n < N; ++n) {
      const float* xp = x + (n * C + c) * H * W;
      const float* gp = g + (n * C + c) * H * W;
      for (std::int64_t i = 0; i < H * W; ++i) {
        const float xhat = (xp[i] - mean) * inv_std;
        sum_g += gp[i];
        sum_gx += static_cast<double>(gp[i]) * xhat;
      }
    }
    bias_grad_[static_cast<std::size_t>(c)] += static_cast<float>(sum_g);
    weight_grad_[static_cast<std::size_t>(c)] += static_cast<float>(sum_gx);

    if (was_training_) {
      const float m = static_cast<float>(per_channel);
      for (std::int64_t n = 0; n < N; ++n) {
        const float* xp = x + (n * C + c) * H * W;
        const float* gp = g + (n * C + c) * H * W;
        float* gxp = gx + (n * C + c) * H * W;
        for (std::int64_t i = 0; i < H * W; ++i) {
          const float xhat = (xp[i] - mean) * inv_std;
          gxp[i] = gamma * inv_std / m *
                   (m * gp[i] - static_cast<float>(sum_g) -
                    xhat * static_cast<float>(sum_gx));
        }
      }
    } else {
      // Eval-mode statistics are constants; gradient is a plain scale.
      for (std::int64_t n = 0; n < N; ++n) {
        const float* gp = g + (n * C + c) * H * W;
        float* gxp = gx + (n * C + c) * H * W;
        for (std::int64_t i = 0; i < H * W; ++i)
          gxp[i] = gp[i] * gamma * inv_std;
      }
    }
  }
  return grad_input;
}

void BatchNorm2d::collect(const std::string& prefix,
                          std::vector<ParamRef>& params,
                          std::vector<BufferRef>& buffers) {
  params.push_back({prefix + "weight", &weight_, &weight_grad_});
  params.push_back({prefix + "bias", &bias_, &bias_grad_});
  buffers.push_back({prefix + "running_mean", &running_mean_});
  buffers.push_back({prefix + "running_var", &running_var_});
  buffers.push_back({prefix + "num_batches_tracked", &num_batches_tracked_});
}

}  // namespace fedsz::nn

#include "nn/layers.hpp"

#include <algorithm>
#include <cmath>

namespace fedsz::nn {

void kaiming_uniform(Tensor& tensor, std::int64_t fan_in, Rng& rng) {
  // ReLU-gain Kaiming: variance 2/fan_in, i.e. U(-sqrt(6/fan_in), +...).
  // Networks without BatchNorm (the AlexNet analogue) depend on this being
  // variance-preserving; smaller gains collapse deep activations.
  const double bound =
      fan_in > 0 ? std::sqrt(6.0 / static_cast<double>(fan_in)) : 1.0;
  for (std::size_t i = 0; i < tensor.numel(); ++i)
    tensor[i] = static_cast<float>(rng.uniform(-bound, bound));
}

// ---- Model ----

std::vector<ParamRef> Model::parameters() {
  std::vector<ParamRef> params;
  std::vector<BufferRef> buffers;
  root_->collect("", params, buffers);
  return params;
}

std::vector<BufferRef> Model::buffers() {
  std::vector<ParamRef> params;
  std::vector<BufferRef> buffers;
  root_->collect("", params, buffers);
  return buffers;
}

std::size_t Model::parameter_count() {
  std::size_t n = 0;
  for (const ParamRef& p : parameters()) n += p.value->numel();
  return n;
}

void Model::zero_grad() {
  for (const ParamRef& p : parameters()) p.grad->fill(0.0f);
}

StateDict Model::state_dict() {
  std::vector<ParamRef> params;
  std::vector<BufferRef> buffers;
  root_->collect("", params, buffers);
  StateDict dict;
  for (const ParamRef& p : params) dict.set(p.name, *p.value);
  for (const BufferRef& b : buffers) dict.set(b.name, *b.value);
  return dict;
}

void Model::load_state_dict(const StateDict& dict) {
  std::vector<ParamRef> params;
  std::vector<BufferRef> buffers;
  root_->collect("", params, buffers);
  std::size_t loaded = 0;
  for (const ParamRef& p : params) {
    const Tensor& src = dict.get(p.name);
    if (!src.same_shape(*p.value))
      throw InvalidArgument("load_state_dict: shape mismatch for " + p.name);
    *p.value = src;
    ++loaded;
  }
  for (const BufferRef& b : buffers) {
    const Tensor& src = dict.get(b.name);
    if (!src.same_shape(*b.value))
      throw InvalidArgument("load_state_dict: shape mismatch for " + b.name);
    *b.value = src;
    ++loaded;
  }
  if (loaded != dict.size())
    throw InvalidArgument("load_state_dict: dict has extra entries");
}

// ---- Linear ----

Linear::Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng)
    : in_(in_features),
      out_(out_features),
      weight_({out_features, in_features}),
      bias_({out_features}),
      weight_grad_({out_features, in_features}),
      bias_grad_({out_features}) {
  kaiming_uniform(weight_, in_, rng);
  kaiming_uniform(bias_, in_, rng);
}

Tensor Linear::forward(const Tensor& input, bool /*training*/) {
  if (input.rank() != 2 || input.dim(1) != in_)
    throw InvalidArgument("Linear: expected input {N, " + std::to_string(in_) +
                          "}, got " + input.shape_string());
  cached_input_ = input;
  const std::int64_t batch = input.dim(0);
  Tensor out({batch, out_});
  const float* x = input.data();
  const float* w = weight_.data();
  float* y = out.data();
  for (std::int64_t n = 0; n < batch; ++n) {
    const float* xn = x + n * in_;
    float* yn = y + n * out_;
    for (std::int64_t o = 0; o < out_; ++o) {
      const float* wo = w + o * in_;
      float acc = bias_[static_cast<std::size_t>(o)];
      for (std::int64_t i = 0; i < in_; ++i) acc += xn[i] * wo[i];
      yn[o] = acc;
    }
  }
  return out;
}

Tensor Linear::backward(const Tensor& grad_output) {
  const std::int64_t batch = cached_input_.dim(0);
  if (grad_output.rank() != 2 || grad_output.dim(0) != batch ||
      grad_output.dim(1) != out_)
    throw InvalidArgument("Linear::backward: bad grad shape");
  Tensor grad_input({batch, in_});
  const float* x = cached_input_.data();
  const float* g = grad_output.data();
  const float* w = weight_.data();
  float* gx = grad_input.data();
  float* gw = weight_grad_.data();
  float* gb = bias_grad_.data();
  for (std::int64_t n = 0; n < batch; ++n) {
    const float* xn = x + n * in_;
    const float* gn = g + n * out_;
    float* gxn = gx + n * in_;
    for (std::int64_t o = 0; o < out_; ++o) {
      const float go = gn[o];
      gb[o] += go;
      const float* wo = w + o * in_;
      float* gwo = gw + o * in_;
      for (std::int64_t i = 0; i < in_; ++i) {
        gwo[i] += go * xn[i];
        gxn[i] += go * wo[i];
      }
    }
  }
  return grad_input;
}

void Linear::collect(const std::string& prefix, std::vector<ParamRef>& params,
                     std::vector<BufferRef>& /*buffers*/) {
  params.push_back({prefix + "weight", &weight_, &weight_grad_});
  params.push_back({prefix + "bias", &bias_, &bias_grad_});
}

// ---- ReLU / ReLU6 ----

Tensor ReLU::forward(const Tensor& input, bool /*training*/) {
  Tensor out = input;
  pass_mask_.assign(input.numel(), 0);
  for (std::size_t i = 0; i < out.numel(); ++i) {
    float v = out[i];
    if (v < 0.0f) {
      out[i] = 0.0f;
    } else if (clamp_ > 0.0f && v > clamp_) {
      out[i] = clamp_;
    } else {
      pass_mask_[i] = 1;
    }
  }
  return out;
}

Tensor ReLU::backward(const Tensor& grad_output) {
  if (grad_output.numel() != pass_mask_.size())
    throw InvalidArgument("ReLU::backward: size mismatch");
  Tensor grad = grad_output;
  for (std::size_t i = 0; i < grad.numel(); ++i)
    if (!pass_mask_[i]) grad[i] = 0.0f;
  return grad;
}

// ---- MaxPool2d ----

MaxPool2d::MaxPool2d(int kernel, int stride) : kernel_(kernel), stride_(stride) {
  if (kernel <= 0 || stride <= 0)
    throw InvalidArgument("MaxPool2d: kernel and stride must be positive");
}

Tensor MaxPool2d::forward(const Tensor& input, bool /*training*/) {
  if (input.rank() != 4) throw InvalidArgument("MaxPool2d: expected NCHW");
  input_shape_ = input.shape();
  const std::int64_t N = input.dim(0), C = input.dim(1), H = input.dim(2),
                     W = input.dim(3);
  const std::int64_t Ho = (H - kernel_) / stride_ + 1;
  const std::int64_t Wo = (W - kernel_) / stride_ + 1;
  if (Ho <= 0 || Wo <= 0) throw InvalidArgument("MaxPool2d: input too small");
  Tensor out({N, C, Ho, Wo});
  argmax_.assign(out.numel(), 0);
  const float* x = input.data();
  float* y = out.data();
  std::size_t oi = 0;
  for (std::int64_t n = 0; n < N; ++n) {
    for (std::int64_t c = 0; c < C; ++c) {
      const float* plane = x + (n * C + c) * H * W;
      for (std::int64_t ho = 0; ho < Ho; ++ho) {
        for (std::int64_t wo = 0; wo < Wo; ++wo, ++oi) {
          const std::int64_t h0 = ho * stride_, w0 = wo * stride_;
          float best = plane[h0 * W + w0];
          std::int64_t best_idx = h0 * W + w0;
          for (int kh = 0; kh < kernel_; ++kh) {
            for (int kw = 0; kw < kernel_; ++kw) {
              const std::int64_t idx = (h0 + kh) * W + (w0 + kw);
              if (plane[idx] > best) {
                best = plane[idx];
                best_idx = idx;
              }
            }
          }
          y[oi] = best;
          argmax_[oi] = static_cast<std::uint32_t>((n * C + c) * H * W +
                                                   best_idx);
        }
      }
    }
  }
  return out;
}

Tensor MaxPool2d::backward(const Tensor& grad_output) {
  if (grad_output.numel() != argmax_.size())
    throw InvalidArgument("MaxPool2d::backward: size mismatch");
  Tensor grad_input(input_shape_);
  for (std::size_t i = 0; i < argmax_.size(); ++i)
    grad_input[argmax_[i]] += grad_output[i];
  return grad_input;
}

// ---- GlobalAvgPool ----

Tensor GlobalAvgPool::forward(const Tensor& input, bool /*training*/) {
  if (input.rank() != 4) throw InvalidArgument("GlobalAvgPool: expected NCHW");
  input_shape_ = input.shape();
  const std::int64_t N = input.dim(0), C = input.dim(1), H = input.dim(2),
                     W = input.dim(3);
  Tensor out({N, C, 1, 1});
  const float inv = 1.0f / static_cast<float>(H * W);
  const float* x = input.data();
  for (std::int64_t n = 0; n < N; ++n) {
    for (std::int64_t c = 0; c < C; ++c) {
      const float* plane = x + (n * C + c) * H * W;
      float acc = 0.0f;
      for (std::int64_t i = 0; i < H * W; ++i) acc += plane[i];
      out[static_cast<std::size_t>(n * C + c)] = acc * inv;
    }
  }
  return out;
}

Tensor GlobalAvgPool::backward(const Tensor& grad_output) {
  const std::int64_t N = input_shape_[0], C = input_shape_[1],
                     H = input_shape_[2], W = input_shape_[3];
  if (grad_output.numel() != static_cast<std::size_t>(N * C))
    throw InvalidArgument("GlobalAvgPool::backward: size mismatch");
  Tensor grad_input(input_shape_);
  const float inv = 1.0f / static_cast<float>(H * W);
  float* gx = grad_input.data();
  for (std::int64_t n = 0; n < N; ++n) {
    for (std::int64_t c = 0; c < C; ++c) {
      const float g = grad_output[static_cast<std::size_t>(n * C + c)] * inv;
      float* plane = gx + (n * C + c) * H * W;
      for (std::int64_t i = 0; i < H * W; ++i) plane[i] = g;
    }
  }
  return grad_input;
}

// ---- Flatten ----

Tensor Flatten::forward(const Tensor& input, bool /*training*/) {
  if (input.rank() < 2) throw InvalidArgument("Flatten: rank must be >= 2");
  input_shape_ = input.shape();
  const std::int64_t batch = input.dim(0);
  const auto rest = static_cast<std::int64_t>(input.numel()) / batch;
  return input.reshaped({batch, rest});
}

Tensor Flatten::backward(const Tensor& grad_output) {
  return grad_output.reshaped(input_shape_);
}

// ---- Dropout ----

Dropout::Dropout(float probability, std::uint64_t seed)
    : probability_(probability), rng_(seed) {
  if (probability < 0.0f || probability >= 1.0f)
    throw InvalidArgument("Dropout: probability must be in [0, 1)");
}

Tensor Dropout::forward(const Tensor& input, bool training) {
  was_training_ = training;
  if (!training || probability_ == 0.0f) return input;
  Tensor out = input;
  scale_mask_.assign(input.numel(), 0.0f);
  const float keep_scale = 1.0f / (1.0f - probability_);
  for (std::size_t i = 0; i < out.numel(); ++i) {
    if (rng_.uniform() < probability_) {
      out[i] = 0.0f;
    } else {
      out[i] *= keep_scale;
      scale_mask_[i] = keep_scale;
    }
  }
  return out;
}

Tensor Dropout::backward(const Tensor& grad_output) {
  if (!was_training_ || probability_ == 0.0f) return grad_output;
  Tensor grad = grad_output;
  for (std::size_t i = 0; i < grad.numel(); ++i) grad[i] *= scale_mask_[i];
  return grad;
}

}  // namespace fedsz::nn

#include "nn/optimizer.hpp"

namespace fedsz::nn {

Sgd::Sgd(std::vector<ParamRef> params, SgdConfig config)
    : params_(std::move(params)), config_(config) {
  velocity_.reserve(params_.size());
  for (const ParamRef& p : params_)
    velocity_.push_back(Tensor::zeros(p.value->shape()));
}

void Sgd::step() {
  for (std::size_t k = 0; k < params_.size(); ++k) {
    Tensor& w = *params_[k].value;
    const Tensor& g = *params_[k].grad;
    Tensor& v = velocity_[k];
    const float lr = config_.learning_rate;
    const float mu = config_.momentum;
    const float wd = config_.weight_decay;
    for (std::size_t i = 0; i < w.numel(); ++i) {
      const float grad = g[i] + wd * w[i];
      v[i] = mu * v[i] + grad;
      w[i] -= lr * v[i];
    }
  }
}

}  // namespace fedsz::nn

#include "nn/loss.hpp"

#include <cmath>

#include "util/common.hpp"

namespace fedsz::nn {

Tensor softmax(const Tensor& logits) {
  if (logits.rank() != 2) throw InvalidArgument("softmax: expected {N, C}");
  const std::int64_t N = logits.dim(0), C = logits.dim(1);
  Tensor probs(logits.shape());
  for (std::int64_t n = 0; n < N; ++n) {
    const float* row = logits.data() + n * C;
    float* out = probs.data() + n * C;
    float max_logit = row[0];
    for (std::int64_t c = 1; c < C; ++c) max_logit = std::max(max_logit, row[c]);
    double denom = 0.0;
    for (std::int64_t c = 0; c < C; ++c) {
      out[c] = std::exp(row[c] - max_logit);
      denom += out[c];
    }
    const float inv = static_cast<float>(1.0 / denom);
    for (std::int64_t c = 0; c < C; ++c) out[c] *= inv;
  }
  return probs;
}

LossResult softmax_cross_entropy(const Tensor& logits,
                                 std::span<const int> labels) {
  if (logits.rank() != 2)
    throw InvalidArgument("softmax_cross_entropy: expected {N, C}");
  const std::int64_t N = logits.dim(0), C = logits.dim(1);
  if (labels.size() != static_cast<std::size_t>(N))
    throw InvalidArgument("softmax_cross_entropy: label count mismatch");
  LossResult result;
  result.grad_logits = softmax(logits);
  double loss = 0.0;
  const float inv_n = 1.0f / static_cast<float>(N);
  for (std::int64_t n = 0; n < N; ++n) {
    const int label = labels[static_cast<std::size_t>(n)];
    if (label < 0 || label >= C)
      throw InvalidArgument("softmax_cross_entropy: label out of range");
    float* row = result.grad_logits.data() + n * C;
    loss -= std::log(std::max(row[label], 1e-12f));
    row[label] -= 1.0f;
    for (std::int64_t c = 0; c < C; ++c) row[c] *= inv_n;
  }
  result.loss = loss / static_cast<double>(N);
  return result;
}

}  // namespace fedsz::nn

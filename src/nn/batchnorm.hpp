// BatchNorm2d with running statistics. Besides its training role, BatchNorm
// matters to FedSZ specifically: its running_mean / running_var buffers and
// small per-channel weight/bias are exactly the "metadata and non-weight
// parameters" (~1% of an update) that Algorithm 1 routes to the lossless
// path — lossy-compressing them destroys accuracy (Section V-C).
#pragma once

#include "nn/module.hpp"

namespace fedsz::nn {

class BatchNorm2d final : public Module {
 public:
  explicit BatchNorm2d(std::int64_t channels, float momentum = 0.1f,
                       float eps = 1e-5f);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  void collect(const std::string& prefix, std::vector<ParamRef>& params,
               std::vector<BufferRef>& buffers) override;
  std::string type_name() const override { return "BatchNorm2d"; }

 private:
  std::int64_t channels_;
  float momentum_, eps_;
  Tensor weight_, bias_;                  // gamma, beta
  Tensor weight_grad_, bias_grad_;
  Tensor running_mean_, running_var_;
  Tensor num_batches_tracked_;            // scalar counter buffer

  // Backward caches (training-mode statistics).
  Tensor cached_input_;
  std::vector<float> batch_mean_, batch_inv_std_;
  bool was_training_ = false;
};

}  // namespace fedsz::nn

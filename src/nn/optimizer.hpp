// SGD with momentum and weight decay — the local optimizer run by each
// FedAvg client (McMahan et al. 2017).
#pragma once

#include <vector>

#include "nn/module.hpp"

namespace fedsz::nn {

struct SgdConfig {
  float learning_rate = 0.01f;
  float momentum = 0.9f;
  float weight_decay = 0.0f;
};

class Sgd {
 public:
  Sgd(std::vector<ParamRef> params, SgdConfig config);

  /// Apply one update from the accumulated gradients.
  void step();

  const SgdConfig& config() const { return config_; }
  void set_learning_rate(float lr) { config_.learning_rate = lr; }

 private:
  std::vector<ParamRef> params_;
  std::vector<Tensor> velocity_;
  SgdConfig config_;
};

}  // namespace fedsz::nn

// Model zoo: structural analogues of the three networks the paper profiles
// (Table III) — AlexNet (FC-heavy classifier, ~99.98% of bytes in large
// "weight" tensors), MobileNetV2 (inverted residuals, depthwise convolutions
// and many BatchNorms, hence the lowest lossy fraction), and a
// bottleneck-block ResNet. Three width presets:
//
//   kTiny   unit-test scale (sub-second training steps)
//   kBench  benchmark scale (meaningful training on synthetic datasets,
//           hundreds of thousands to millions of parameters)
//   kPaper  the published widths (AlexNet-class FC sizes, MobileNetV2's
//           (t,c,n,s) table, ResNet50's [3,4,6,3] bottlenecks) — buildable
//           for compression experiments, too slow to train here
#pragma once

#include <string>

#include "nn/module.hpp"

namespace fedsz::nn {

enum class ModelScale { kTiny, kBench, kPaper };

struct ModelConfig {
  std::string arch = "alexnet";  // "alexnet" | "mobilenet_v2" | "resnet"
  int in_channels = 3;
  int image_size = 32;
  int num_classes = 10;
  ModelScale scale = ModelScale::kBench;
  std::uint64_t seed = 42;
};

struct BuiltModel {
  Model model;
  double flops = 0.0;  // multiply-accumulate * 2, one forward pass, batch 1
};

/// Build a model by architecture name. Throws InvalidArgument for unknown
/// arch strings or image sizes too small for the pooling pyramid.
BuiltModel build_model(const ModelConfig& config);

/// All architecture names accepted by build_model, in Table III order.
std::vector<std::string> model_architectures();

/// Human-readable display name ("AlexNet", "MobileNet-V2", "ResNet50").
std::string model_display_name(const std::string& arch);

}  // namespace fedsz::nn

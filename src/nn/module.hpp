// Minimal neural-network module system — the PyTorch analogue the FL stack
// trains and whose state_dict() FedSZ compresses. Modules own their
// parameters (trainable, with gradients) and buffers (non-trainable state
// such as BatchNorm running statistics). Naming follows PyTorch conventions
// ("<prefix>.weight", ".bias", ".running_mean", ...) because FedSZ's
// Algorithm 1 partitions tensors by exactly those names.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/state_dict.hpp"
#include "tensor/tensor.hpp"

namespace fedsz::nn {

/// Named view of a trainable parameter and its gradient accumulator.
struct ParamRef {
  std::string name;
  Tensor* value = nullptr;
  Tensor* grad = nullptr;
};

/// Named view of a non-trainable state tensor (running stats, counters).
struct BufferRef {
  std::string name;
  Tensor* value = nullptr;
};

class Module {
 public:
  virtual ~Module() = default;

  /// Forward pass. Modules cache whatever they need for backward(); a
  /// backward() must therefore follow the matching forward().
  virtual Tensor forward(const Tensor& input, bool training) = 0;

  /// Backward pass: gradient w.r.t. this module's input. Parameter gradients
  /// are *accumulated* into the ParamRef grads.
  virtual Tensor backward(const Tensor& grad_output) = 0;

  /// Append parameter/buffer references, names prefixed by `prefix`.
  virtual void collect(const std::string& prefix, std::vector<ParamRef>& params,
                       std::vector<BufferRef>& buffers) {
    (void)prefix;
    (void)params;
    (void)buffers;
  }

  virtual std::string type_name() const = 0;
};

using ModulePtr = std::shared_ptr<Module>;

/// A trained network: a root module plus the bookkeeping the FL stack needs
/// (state-dict export/import, gradient reset, parameter census).
class Model {
 public:
  Model() = default;
  explicit Model(ModulePtr root) : root_(std::move(root)) {}

  bool valid() const { return root_ != nullptr; }
  Module& root() { return *root_; }

  Tensor forward(const Tensor& input, bool training = false) {
    return root_->forward(input, training);
  }
  Tensor backward(const Tensor& grad_output) {
    return root_->backward(grad_output);
  }

  std::vector<ParamRef> parameters();
  std::vector<BufferRef> buffers();
  std::size_t parameter_count();

  void zero_grad();

  /// Snapshot of parameters and buffers, in module order — the analogue of
  /// torch.nn.Module.state_dict().
  StateDict state_dict();
  /// Load a snapshot; names and shapes must match exactly.
  void load_state_dict(const StateDict& dict);

 private:
  ModulePtr root_;
};

}  // namespace fedsz::nn

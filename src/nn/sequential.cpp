#include "nn/sequential.hpp"

namespace fedsz::nn {

Tensor Sequential::forward(const Tensor& input, bool training) {
  Tensor x = input;
  for (const ModulePtr& child : children_) x = child->forward(x, training);
  return x;
}

Tensor Sequential::backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (auto it = children_.rbegin(); it != children_.rend(); ++it)
    g = (*it)->backward(g);
  return g;
}

void Sequential::collect(const std::string& prefix,
                         std::vector<ParamRef>& params,
                         std::vector<BufferRef>& buffers) {
  for (std::size_t i = 0; i < children_.size(); ++i)
    children_[i]->collect(prefix + std::to_string(i) + ".", params, buffers);
}

Tensor Residual::forward(const Tensor& input, bool training) {
  Tensor main_out = main_->forward(input, training);
  Tensor shortcut_out =
      shortcut_ ? shortcut_->forward(input, training) : input;
  if (!main_out.same_shape(shortcut_out))
    throw InvalidArgument("Residual: branch shape mismatch " +
                          main_out.shape_string() + " vs " +
                          shortcut_out.shape_string());
  main_out += shortcut_out;
  if (post_relu_) {
    relu_mask_.assign(main_out.numel(), 0);
    for (std::size_t i = 0; i < main_out.numel(); ++i) {
      if (main_out[i] > 0.0f)
        relu_mask_[i] = 1;
      else
        main_out[i] = 0.0f;
    }
  }
  return main_out;
}

Tensor Residual::backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  if (post_relu_) {
    for (std::size_t i = 0; i < g.numel(); ++i)
      if (!relu_mask_[i]) g[i] = 0.0f;
  }
  Tensor grad_input = main_->backward(g);
  if (shortcut_) {
    grad_input += shortcut_->backward(g);
  } else {
    grad_input += g;
  }
  return grad_input;
}

void Residual::collect(const std::string& prefix,
                       std::vector<ParamRef>& params,
                       std::vector<BufferRef>& buffers) {
  main_->collect(prefix + "main.", params, buffers);
  if (shortcut_) shortcut_->collect(prefix + "shortcut.", params, buffers);
}

}  // namespace fedsz::nn

// Class-conditional procedural image datasets — the stand-ins for CIFAR-10,
// Fashion-MNIST and Caltech101 (Table IV). Each class owns a deterministic
// signature (grating orientation/frequency plus a Gaussian blob layout);
// samples add per-index jitter and pixel noise. The tasks are genuinely
// learnable by the model zoo, which is what the accuracy-vs-error-bound
// experiments (Figures 4/5) require; absolute accuracies are not expected to
// match the paper's real-image numbers (see DESIGN.md substitution table).
#pragma once

#include "data/dataset.hpp"

namespace fedsz::data {

struct SyntheticSpec {
  std::string name = "cifar10";
  int channels = 3;
  int image_size = 32;
  int classes = 10;
  std::size_t train_size = 50000;
  std::size_t test_size = 10000;
  float noise = 0.25f;
  std::uint64_t seed = 7;
};

/// Table IV presets.
SyntheticSpec cifar10_spec();        // 32x32x3, 10 classes, 60k samples
SyntheticSpec fashion_mnist_spec();  // 28x28x1, 10 classes, 70k samples
SyntheticSpec caltech101_spec();     // 64x64x3 (paper: 224), 101 classes, 9k
SyntheticSpec dataset_spec(const std::string& name);
std::vector<std::string> dataset_names();

class SyntheticImageDataset final : public Dataset {
 public:
  /// `split` 0 = train, 1 = test (affects size and the sample seed stream).
  SyntheticImageDataset(SyntheticSpec spec, int split);

  std::size_t size() const override;
  Sample get(std::size_t index) const override;
  int num_classes() const override { return spec_.classes; }
  Shape image_shape() const override;
  const SyntheticSpec& spec() const { return spec_; }

 private:
  SyntheticSpec spec_;
  int split_;
};

/// Convenience: (train, test) pair for a named dataset.
std::pair<DatasetPtr, DatasetPtr> make_dataset(const std::string& name,
                                               std::uint64_t seed = 7);

}  // namespace fedsz::data

// Mini-batch iteration over a Dataset with optional shuffling: assembles
// NCHW image batches and label vectors for the training loop.
#pragma once

#include "data/dataset.hpp"
#include "util/rng.hpp"

namespace fedsz::data {

struct Batch {
  Tensor images;            // {B, C, H, W}
  std::vector<int> labels;  // B entries
  std::size_t size() const { return labels.size(); }
};

class DataLoader {
 public:
  DataLoader(DatasetPtr dataset, std::size_t batch_size, bool shuffle,
             std::uint64_t seed = 1);

  /// Restart iteration (reshuffles when enabled).
  void reset();

  /// Fill the next batch; returns false when the epoch is exhausted.
  /// The final batch of an epoch may be smaller than batch_size.
  bool next(Batch& batch);

  std::size_t batches_per_epoch() const;

 private:
  DatasetPtr dataset_;
  std::size_t batch_size_;
  bool shuffle_;
  Rng rng_;
  std::vector<std::size_t> order_;
  std::size_t cursor_ = 0;
};

/// Materialize an entire dataset as one batch (used for evaluation).
Batch full_batch(const Dataset& dataset, std::size_t limit = 0);

}  // namespace fedsz::data

#include "data/dataloader.hpp"

#include <cstring>
#include <numeric>

namespace fedsz::data {

DataLoader::DataLoader(DatasetPtr dataset, std::size_t batch_size,
                       bool shuffle, std::uint64_t seed)
    : dataset_(std::move(dataset)),
      batch_size_(batch_size),
      shuffle_(shuffle),
      rng_(seed),
      order_(dataset_->size()) {
  if (batch_size_ == 0)
    throw InvalidArgument("DataLoader: batch_size must be > 0");
  std::iota(order_.begin(), order_.end(), 0);
  reset();
}

void DataLoader::reset() {
  cursor_ = 0;
  if (shuffle_) {
    for (std::size_t i = order_.size(); i > 1; --i)
      std::swap(order_[i - 1], order_[rng_.uniform_index(i)]);
  }
}

std::size_t DataLoader::batches_per_epoch() const {
  return (order_.size() + batch_size_ - 1) / batch_size_;
}

bool DataLoader::next(Batch& batch) {
  if (cursor_ >= order_.size()) return false;
  const std::size_t count =
      std::min(batch_size_, order_.size() - cursor_);
  const Shape img = dataset_->image_shape();
  batch.images = Tensor({static_cast<std::int64_t>(count), img[0], img[1],
                         img[2]});
  batch.labels.resize(count);
  const std::size_t sample_numel = shape_numel(img);
  for (std::size_t b = 0; b < count; ++b) {
    const Sample sample = dataset_->get(order_[cursor_ + b]);
    if (sample.image.numel() != sample_numel)
      throw InvalidArgument("DataLoader: inconsistent image shape");
    std::memcpy(batch.images.data() + b * sample_numel, sample.image.data(),
                sample_numel * sizeof(float));
    batch.labels[b] = sample.label;
  }
  cursor_ += count;
  return true;
}

Batch full_batch(const Dataset& dataset, std::size_t limit) {
  const std::size_t count =
      limit == 0 ? dataset.size() : std::min(limit, dataset.size());
  if (count == 0) throw InvalidArgument("full_batch: empty dataset");
  const Shape img = dataset.image_shape();
  Batch batch;
  batch.images = Tensor({static_cast<std::int64_t>(count), img[0], img[1],
                         img[2]});
  batch.labels.resize(count);
  const std::size_t sample_numel = shape_numel(img);
  for (std::size_t i = 0; i < count; ++i) {
    const Sample sample = dataset.get(i);
    std::memcpy(batch.images.data() + i * sample_numel, sample.image.data(),
                sample_numel * sizeof(float));
    batch.labels[i] = sample.label;
  }
  return batch;
}

}  // namespace fedsz::data

// Client data partitioning for federated simulation: IID round-robin-random
// shards and the standard Dirichlet(alpha) label-skew partitioner used in FL
// literature for non-IID experiments.
#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.hpp"
#include "util/rng.hpp"

namespace fedsz::data {

/// Shuffle [0, n) and deal out `clients` near-equal shards.
std::vector<std::vector<std::size_t>> partition_iid(std::size_t n,
                                                    std::size_t clients,
                                                    Rng& rng);

/// Label-skewed partition: for each class, split its samples by proportions
/// drawn from Dirichlet(alpha) over clients. Lower alpha = more skew.
std::vector<std::vector<std::size_t>> partition_dirichlet(
    const std::vector<int>& labels, std::size_t clients, double alpha,
    Rng& rng);

/// Materialize shards as SubsetDataset views.
std::vector<DatasetPtr> shard_dataset(
    DatasetPtr base, const std::vector<std::vector<std::size_t>>& shards);

}  // namespace fedsz::data

// Client data partitioning for federated simulation: IID round-robin-random
// shards and the standard Dirichlet(alpha) label-skew partitioner used in FL
// literature for non-IID experiments.
#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.hpp"
#include "util/rng.hpp"

namespace fedsz::data {

/// Shuffle [0, n) and deal out `clients` near-equal shards.
std::vector<std::vector<std::size_t>> partition_iid(std::size_t n,
                                                    std::size_t clients,
                                                    Rng& rng);

/// Label-skewed partition: for each class, split its samples by proportions
/// drawn from Dirichlet(alpha) over clients. Lower alpha = more skew.
std::vector<std::vector<std::size_t>> partition_dirichlet(
    const std::vector<int>& labels, std::size_t clients, double alpha,
    Rng& rng);

/// Seeded entry point: same partition, deterministic in (labels, clients,
/// alpha, seed) — what the coordinator's data=dirichlet:<alpha> comm key
/// and the codec-race benches call.
std::vector<std::vector<std::size_t>> partition_dirichlet(
    const std::vector<int>& labels, std::size_t clients, double alpha,
    std::uint64_t seed);

/// Power-law per-client sample-count skew over existing shards: clients are
/// assigned skew ranks by a seeded permutation of `rng`, and the shard at
/// rank r keeps the first ceil(size * (r+1)^-s) of its samples (never fewer
/// than `min_per_shard`, capped at the shard's size). s = 0 is a no-op;
/// larger s concentrates samples on fewer clients. Composes with any
/// upstream partitioner (IID deal or Dirichlet label skew).
void apply_sizeskew(std::vector<std::vector<std::size_t>>& shards, double s,
                    Rng& rng, std::size_t min_per_shard = 1);

/// partition_iid followed by apply_sizeskew with the same rng — the
/// data=sizeskew:<s> comm key without label skew.
std::vector<std::vector<std::size_t>> partition_sizeskew(std::size_t n,
                                                         std::size_t clients,
                                                         double s, Rng& rng);

/// Gather every sample's label (partition_dirichlet input) in index order.
std::vector<int> dataset_labels(const Dataset& dataset);

/// Deterministically move one sample from the largest shard into each empty
/// one (skewed Dirichlet draws can starve a client; an empty shard cannot
/// train). Total sample count and shard disjointness are preserved.
void ensure_nonempty_shards(std::vector<std::vector<std::size_t>>& shards);

/// Materialize shards as SubsetDataset views.
std::vector<DatasetPtr> shard_dataset(
    DatasetPtr base, const std::vector<std::vector<std::size_t>>& shards);

}  // namespace fedsz::data

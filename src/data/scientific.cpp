#include "data/scientific.hpp"

#include <cmath>

#include "util/rng.hpp"

namespace fedsz::data {

std::vector<float> smooth_field(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  constexpr int kModes = 6;
  double freq[kModes], phase[kModes], amp[kModes];
  for (int m = 0; m < kModes; ++m) {
    freq[m] = (m + 1) * rng.uniform(0.5, 1.5);
    phase[m] = rng.uniform(0.0, 6.28318530717958647692);
    amp[m] = 1.0 / (m + 1);
  }
  std::vector<float> field(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(n);
    double v = 1.5;  // baseline offset (density-like, positive)
    for (int m = 0; m < kModes; ++m)
      v += amp[m] * std::sin(6.28318530717958647692 * freq[m] * t + phase[m]);
    // Slow envelope adds large-scale structure.
    v *= 1.0 + 0.5 * std::sin(6.28318530717958647692 * 0.3 * t);
    field[i] = static_cast<float>(v);
  }
  return field;
}

}  // namespace fedsz::data

// Smooth "scientific simulation" field generator — the stand-in for the
// MIRANDA turbulence snapshots of Figure 2. The figure's point is purely the
// contrast between smooth, band-limited physical fields and spiky FL model
// parameters; any low-frequency field exhibits it (quantified here with
// stats::roughness and per-codec compression ratios).
#pragma once

#include <cstdint>
#include <vector>

namespace fedsz::data {

/// 1-D smooth field: a sum of low-frequency sinusoids with a slowly varying
/// envelope, values roughly in [-3, 6] like the paper's density slices.
std::vector<float> smooth_field(std::size_t n, std::uint64_t seed = 17);

}  // namespace fedsz::data

#include "data/synthetic.hpp"

#include <cmath>

#include "util/rng.hpp"

namespace fedsz::data {

namespace {
constexpr double kTau = 6.283185307179586476925286766559;

/// Per-class signature parameters, derived deterministically from the
/// dataset seed and class id.
struct ClassSignature {
  double freq_x, freq_y, phase;   // grating
  double blob_x, blob_y, blob_sigma, blob_amp;
  double channel_gain[4];         // per-channel sign/gain (up to 4 channels)
};

ClassSignature class_signature(std::uint64_t dataset_seed, int label) {
  Rng rng(dataset_seed * 0x9E3779B97F4A7C15ull + 0xC1A55 +
          static_cast<std::uint64_t>(label));
  ClassSignature sig{};
  sig.freq_x = 1.0 + rng.uniform() * 3.5;
  sig.freq_y = 1.0 + rng.uniform() * 3.5;
  sig.phase = rng.uniform() * kTau;
  sig.blob_x = 0.2 + rng.uniform() * 0.6;
  sig.blob_y = 0.2 + rng.uniform() * 0.6;
  sig.blob_sigma = 0.08 + rng.uniform() * 0.12;
  sig.blob_amp = 0.5 + rng.uniform() * 0.8;
  for (double& gain : sig.channel_gain)
    gain = rng.uniform() < 0.5 ? -(0.4 + rng.uniform() * 0.6)
                               : (0.4 + rng.uniform() * 0.6);
  return sig;
}

}  // namespace

SyntheticSpec cifar10_spec() {
  return SyntheticSpec{"cifar10", 3, 32, 10, 50000, 10000, 0.25f, 7};
}

SyntheticSpec fashion_mnist_spec() {
  return SyntheticSpec{"fmnist", 1, 28, 10, 60000, 10000, 0.25f, 11};
}

SyntheticSpec caltech101_spec() {
  // Paper uses 224x224; scaled to 64x64 so the Caltech-class task trains at
  // laptop scale while keeping the "more classes, bigger images" character.
  return SyntheticSpec{"caltech101", 3, 64, 101, 8000, 1000, 0.20f, 13};
}

SyntheticSpec dataset_spec(const std::string& name) {
  if (name == "cifar10") return cifar10_spec();
  if (name == "fmnist") return fashion_mnist_spec();
  if (name == "caltech101") return caltech101_spec();
  throw InvalidArgument("dataset_spec: unknown dataset '" + name + "'");
}

std::vector<std::string> dataset_names() {
  return {"cifar10", "fmnist", "caltech101"};
}

SyntheticImageDataset::SyntheticImageDataset(SyntheticSpec spec, int split)
    : spec_(std::move(spec)), split_(split) {
  if (split != 0 && split != 1)
    throw InvalidArgument("SyntheticImageDataset: split must be 0 or 1");
  if (spec_.channels < 1 || spec_.channels > 4)
    throw InvalidArgument("SyntheticImageDataset: 1-4 channels supported");
}

std::size_t SyntheticImageDataset::size() const {
  return split_ == 0 ? spec_.train_size : spec_.test_size;
}

Shape SyntheticImageDataset::image_shape() const {
  return {spec_.channels, spec_.image_size, spec_.image_size};
}

Sample SyntheticImageDataset::get(std::size_t index) const {
  if (index >= size())
    throw InvalidArgument("SyntheticImageDataset: index out of range");
  // Balanced labels; a disjoint seed stream per split keeps test samples
  // distinct from training samples.
  const int label = static_cast<int>(index % spec_.classes);
  Rng rng(spec_.seed ^ (split_ == 0 ? 0x5EEDull : 0x7E57ull) ^
          (0x9E3779B97F4A7C15ull * (index + 1)));
  const ClassSignature sig = class_signature(spec_.seed, label);

  const int S = spec_.image_size;
  Tensor image({spec_.channels, S, S});
  // Per-sample jitter: small translations and phase drift.
  const double jx = rng.uniform(-0.08, 0.08);
  const double jy = rng.uniform(-0.08, 0.08);
  const double jphase = rng.uniform(-0.5, 0.5);
  const double cx = sig.blob_x + jx, cy = sig.blob_y + jy;

  float* px = image.data();
  for (int c = 0; c < spec_.channels; ++c) {
    const double gain = sig.channel_gain[c];
    for (int y = 0; y < S; ++y) {
      const double fy = static_cast<double>(y) / S;
      for (int x = 0; x < S; ++x, ++px) {
        const double fx = static_cast<double>(x) / S;
        const double grating = std::sin(
            kTau * (sig.freq_x * (fx + jx) + sig.freq_y * (fy + jy)) +
            sig.phase + jphase);
        const double dx = fx - cx, dy = fy - cy;
        const double blob =
            sig.blob_amp *
            std::exp(-(dx * dx + dy * dy) /
                     (2.0 * sig.blob_sigma * sig.blob_sigma));
        const double noise = rng.normal(0.0, spec_.noise);
        *px = static_cast<float>(gain * (0.6 * grating + blob) + noise);
      }
    }
  }
  return Sample{std::move(image), label};
}

std::pair<DatasetPtr, DatasetPtr> make_dataset(const std::string& name,
                                               std::uint64_t seed) {
  SyntheticSpec spec = dataset_spec(name);
  spec.seed = seed;
  return {std::make_shared<SyntheticImageDataset>(spec, 0),
          std::make_shared<SyntheticImageDataset>(spec, 1)};
}

DatasetPtr take(DatasetPtr base, std::size_t count) {
  std::vector<std::size_t> indices;
  const std::size_t n = std::min(count, base->size());
  indices.reserve(n);
  for (std::size_t i = 0; i < n; ++i) indices.push_back(i);
  return std::make_shared<SubsetDataset>(std::move(base), std::move(indices));
}

}  // namespace fedsz::data

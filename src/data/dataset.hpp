// Dataset abstraction. Samples are generated procedurally and
// deterministically from (dataset seed, index), so datasets of any nominal
// size cost no storage and experiments are exactly reproducible.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace fedsz::data {

struct Sample {
  Tensor image;  // CHW float32, values roughly in [-1, 1]
  int label = 0;
};

class Dataset {
 public:
  virtual ~Dataset() = default;
  virtual std::size_t size() const = 0;
  virtual Sample get(std::size_t index) const = 0;
  virtual int num_classes() const = 0;
  virtual Shape image_shape() const = 0;  // {C, H, W}
};

using DatasetPtr = std::shared_ptr<const Dataset>;

/// View of a dataset through an index list (client shards, train subsets).
class SubsetDataset final : public Dataset {
 public:
  SubsetDataset(DatasetPtr base, std::vector<std::size_t> indices)
      : base_(std::move(base)), indices_(std::move(indices)) {}

  std::size_t size() const override { return indices_.size(); }
  Sample get(std::size_t index) const override {
    if (index >= indices_.size())
      throw InvalidArgument("SubsetDataset: index out of range");
    return base_->get(indices_[index]);
  }
  int num_classes() const override { return base_->num_classes(); }
  Shape image_shape() const override { return base_->image_shape(); }

 private:
  DatasetPtr base_;
  std::vector<std::size_t> indices_;
};

/// First `count` samples of `base` (clamped to its size).
DatasetPtr take(DatasetPtr base, std::size_t count);

}  // namespace fedsz::data

#include "data/partition.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace fedsz::data {

std::vector<std::vector<std::size_t>> partition_iid(std::size_t n,
                                                    std::size_t clients,
                                                    Rng& rng) {
  if (clients == 0) throw InvalidArgument("partition_iid: clients must be > 0");
  std::vector<std::size_t> indices(n);
  std::iota(indices.begin(), indices.end(), 0);
  for (std::size_t i = n; i > 1; --i)
    std::swap(indices[i - 1], indices[rng.uniform_index(i)]);
  std::vector<std::vector<std::size_t>> shards(clients);
  for (std::size_t i = 0; i < n; ++i)
    shards[i % clients].push_back(indices[i]);
  return shards;
}

std::vector<std::vector<std::size_t>> partition_dirichlet(
    const std::vector<int>& labels, std::size_t clients, double alpha,
    Rng& rng) {
  if (clients == 0)
    throw InvalidArgument("partition_dirichlet: clients must be > 0");
  if (!(alpha > 0.0))
    throw InvalidArgument("partition_dirichlet: alpha must be > 0");
  int num_classes = 0;
  for (const int label : labels) num_classes = std::max(num_classes, label + 1);

  std::vector<std::vector<std::size_t>> shards(clients);
  for (int c = 0; c < num_classes; ++c) {
    std::vector<std::size_t> class_indices;
    for (std::size_t i = 0; i < labels.size(); ++i)
      if (labels[i] == c) class_indices.push_back(i);
    if (class_indices.empty()) continue;
    // Dirichlet proportions via normalized Gamma draws.
    std::vector<double> weights(clients);
    double total = 0.0;
    for (double& w : weights) {
      w = rng.gamma(alpha);
      total += w;
    }
    if (total <= 0.0) total = 1.0;
    // Deal the class's samples by cumulative proportion.
    std::size_t assigned = 0;
    for (std::size_t k = 0; k < clients; ++k) {
      const std::size_t quota =
          (k + 1 == clients)
              ? class_indices.size() - assigned
              : static_cast<std::size_t>(weights[k] / total *
                                         static_cast<double>(
                                             class_indices.size()));
      for (std::size_t j = 0; j < quota && assigned < class_indices.size();
           ++j)
        shards[k].push_back(class_indices[assigned++]);
    }
  }
  return shards;
}

std::vector<std::vector<std::size_t>> partition_dirichlet(
    const std::vector<int>& labels, std::size_t clients, double alpha,
    std::uint64_t seed) {
  Rng rng(seed);
  return partition_dirichlet(labels, clients, alpha, rng);
}

void apply_sizeskew(std::vector<std::vector<std::size_t>>& shards, double s,
                    Rng& rng, std::size_t min_per_shard) {
  if (!(s >= 0.0))
    throw InvalidArgument("apply_sizeskew: exponent must be >= 0");
  if (s == 0.0 || shards.empty()) return;
  // Seeded rank permutation: which client lands on the heavy end of the
  // power law is a draw, not an index-order artifact.
  std::vector<std::size_t> rank(shards.size());
  std::iota(rank.begin(), rank.end(), std::size_t{0});
  for (std::size_t i = rank.size(); i > 1; --i)
    std::swap(rank[i - 1], rank[rng.uniform_index(i)]);
  for (std::size_t k = 0; k < shards.size(); ++k) {
    std::vector<std::size_t>& shard = shards[k];
    if (shard.empty()) continue;
    const double keep_fraction =
        std::pow(static_cast<double>(rank[k] + 1), -s);
    std::size_t keep = static_cast<std::size_t>(
        std::ceil(keep_fraction * static_cast<double>(shard.size())));
    keep = std::max(keep, std::min(min_per_shard, shard.size()));
    keep = std::min(keep, shard.size());
    shard.resize(keep);
  }
}

std::vector<std::vector<std::size_t>> partition_sizeskew(std::size_t n,
                                                         std::size_t clients,
                                                         double s, Rng& rng) {
  std::vector<std::vector<std::size_t>> shards = partition_iid(n, clients, rng);
  apply_sizeskew(shards, s, rng);
  return shards;
}

std::vector<int> dataset_labels(const Dataset& dataset) {
  std::vector<int> labels;
  labels.reserve(dataset.size());
  for (std::size_t i = 0; i < dataset.size(); ++i)
    labels.push_back(dataset.get(i).label);
  return labels;
}

void ensure_nonempty_shards(std::vector<std::vector<std::size_t>>& shards) {
  for (std::size_t k = 0; k < shards.size(); ++k) {
    if (!shards[k].empty()) continue;
    std::size_t donor = shards.size();
    for (std::size_t d = 0; d < shards.size(); ++d)
      if (donor == shards.size() || shards[d].size() > shards[donor].size())
        donor = d;
    if (donor == shards.size() || shards[donor].size() < 2) continue;
    shards[k].push_back(shards[donor].back());
    shards[donor].pop_back();
  }
}

std::vector<DatasetPtr> shard_dataset(
    DatasetPtr base, const std::vector<std::vector<std::size_t>>& shards) {
  std::vector<DatasetPtr> out;
  out.reserve(shards.size());
  for (const auto& shard : shards)
    out.push_back(std::make_shared<SubsetDataset>(base, shard));
  return out;
}

}  // namespace fedsz::data

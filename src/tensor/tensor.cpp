#include "tensor/tensor.hpp"

#include <sstream>

namespace fedsz {

std::size_t shape_numel(const Shape& shape) {
  std::size_t n = 1;
  for (const std::int64_t d : shape) {
    if (d <= 0) throw InvalidArgument("Tensor: dims must be positive");
    n *= static_cast<std::size_t>(d);
  }
  return n;
}

Tensor::Tensor(Shape shape) : shape_(std::move(shape)) {
  data_.assign(shape_numel(shape_), 0.0f);
}

Tensor Tensor::full(Shape shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::from_data(Shape shape, std::vector<float> data) {
  if (shape_numel(shape) != data.size())
    throw InvalidArgument("Tensor::from_data: shape/data size mismatch");
  Tensor t;
  t.shape_ = std::move(shape);
  t.data_ = std::move(data);
  return t;
}

std::int64_t Tensor::dim(std::size_t axis) const {
  if (axis >= shape_.size())
    throw InvalidArgument("Tensor::dim: axis out of range");
  return shape_[axis];
}

std::size_t Tensor::flat_offset(
    std::initializer_list<std::int64_t> idx) const {
  if (idx.size() != shape_.size())
    throw InvalidArgument("Tensor::at: rank mismatch");
  std::size_t offset = 0;
  std::size_t axis = 0;
  for (const std::int64_t i : idx) {
    if (i < 0 || i >= shape_[axis])
      throw InvalidArgument("Tensor::at: index out of range");
    offset = offset * static_cast<std::size_t>(shape_[axis]) +
             static_cast<std::size_t>(i);
    ++axis;
  }
  return offset;
}

float& Tensor::at(std::initializer_list<std::int64_t> idx) {
  return data_[flat_offset(idx)];
}

float Tensor::at(std::initializer_list<std::int64_t> idx) const {
  return data_[flat_offset(idx)];
}

Tensor Tensor::reshaped(Shape new_shape) const {
  if (shape_numel(new_shape) != numel())
    throw InvalidArgument("Tensor::reshaped: element count mismatch");
  return Tensor::from_data(std::move(new_shape), data_);
}

void Tensor::fill(float value) {
  for (auto& v : data_) v = value;
}

Tensor& Tensor::operator+=(const Tensor& other) {
  if (!same_shape(other)) throw InvalidArgument("Tensor +=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& other) {
  if (!same_shape(other)) throw InvalidArgument("Tensor -=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Tensor& Tensor::operator*=(float scalar) {
  for (auto& v : data_) v *= scalar;
  return *this;
}

void Tensor::add_scaled(const Tensor& other, float scale) {
  if (!same_shape(other))
    throw InvalidArgument("Tensor::add_scaled: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i)
    data_[i] += scale * other.data_[i];
}

void Tensor::fold_scaled(const Tensor& other, float c) {
  if (!same_shape(other))
    throw InvalidArgument("Tensor::fold_scaled: shape mismatch");
  float* dst = data_.data();
  const float* src = other.data_.data();
  const std::size_t n = data_.size();
  for (std::size_t i = 0; i < n; ++i) dst[i] += c * (src[i] - dst[i]);
}

bool Tensor::equals(const Tensor& other) const {
  return shape_ == other.shape_ && data_ == other.data_;
}

std::string Tensor::shape_string() const {
  std::ostringstream out;
  out << '[';
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i) out << ", ";
    out << shape_[i];
  }
  out << ']';
  return out.str();
}

}  // namespace fedsz

// Ordered mapping from parameter name to Tensor — the analogue of a PyTorch
// model.state_dict(). FedSZ's Algorithm 1 iterates this structure, routing
// each entry to the lossy or lossless pipeline by name and size.
//
// Insertion order is preserved (like Python dicts) so serialization is
// deterministic and aggregation can zip state dicts positionally.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "tensor/tensor.hpp"
#include "util/common.hpp"

namespace fedsz {

class ByteReader;

/// Reads a serialized tensor shape (u8 rank, then one dim varint each) and
/// returns its element count. Dims are stream data: zero dims, dims above
/// int64 range, and element-count products that wrap size_t all throw
/// CorruptStream (never a Tensor argument error), so downstream allocation
/// arithmetic cannot overflow. Shared by the StateDict and FedSZ-container
/// stream parsers.
std::size_t read_stream_shape(ByteReader& r, Shape* shape,
                              const std::string& name);

class StateDict {
 public:
  using Entry = std::pair<std::string, Tensor>;

  StateDict() = default;

  /// Insert or overwrite. New names keep insertion order.
  void set(const std::string& name, Tensor tensor);

  bool contains(const std::string& name) const;
  const Tensor& get(const std::string& name) const;
  Tensor& get_mutable(const std::string& name);

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  const std::vector<Entry>& entries() const { return entries_; }
  std::vector<Entry>& entries_mutable() { return entries_; }

  auto begin() const { return entries_.begin(); }
  auto end() const { return entries_.end(); }

  /// Total number of float parameters across all tensors.
  std::size_t total_parameters() const;
  /// Total storage in bytes (float32).
  std::size_t total_bytes() const { return total_parameters() * sizeof(float); }

  /// Bit-exact equality of names (in order), shapes and contents.
  bool equals(const StateDict& other) const;

  /// this += scale * other, elementwise per entry; structures must match.
  void add_scaled(const StateDict& other, float scale);
  /// this += scale * other with entries matched by NAME: a positional
  /// fast path (one string compare per entry when the layouts already
  /// agree) falling back to a name lookup — the allocation-free
  /// replacement for add_scaled(other.reordered_like(*this), scale).
  /// Entries of `other` absent from this dict throw InvalidArgument.
  void add_scaled_matched(const StateDict& other, float scale);
  /// this[k] += c * (other[k] - this[k]) per entry — the West online-mean
  /// fold behind StreamingMean/merge_partial. Entries are matched by name
  /// with the same positional fast path as add_scaled_matched; `other` may
  /// carry extra entries (ignored), missing or misshapen ones throw.
  void fold_scaled(const StateDict& other, float c);
  void scale(float factor);

  /// Copy of this dict with entries reordered to `reference`'s entry order,
  /// matched by name — the bridge to positional ops like add_scaled when
  /// this dict came from a decoder that groups entries by path. Throws
  /// InvalidArgument when the name sets differ.
  StateDict reordered_like(const StateDict& reference) const;

  /// Deep structural copy with all tensors zero-filled (aggregation buffer).
  StateDict zeros_like() const;

  // ---- serialization (the "pickle" analogue) ----
  // Format: u32 count, then per entry: string name, u8 rank, varint dims...,
  // raw little-endian float32 payload.
  Bytes serialize() const;
  static StateDict deserialize(ByteSpan bytes);

 private:
  std::size_t index_of(const std::string& name) const;  // npos if missing
  /// Entry of `other` pairing with this dict's entry i: positional when the
  /// names already line up, else by lookup (throws on a missing name).
  const Tensor& matched_entry(const StateDict& other, std::size_t i) const;
  std::vector<Entry> entries_;
};

}  // namespace fedsz

#include "tensor/state_dict.hpp"

#include <limits>

#include "util/bytebuffer.hpp"

namespace fedsz {

namespace {
constexpr std::size_t kNpos = std::numeric_limits<std::size_t>::max();
}

std::size_t StateDict::index_of(const std::string& name) const {
  for (std::size_t i = 0; i < entries_.size(); ++i)
    if (entries_[i].first == name) return i;
  return kNpos;
}

void StateDict::set(const std::string& name, Tensor tensor) {
  const std::size_t idx = index_of(name);
  if (idx == kNpos)
    entries_.emplace_back(name, std::move(tensor));
  else
    entries_[idx].second = std::move(tensor);
}

bool StateDict::contains(const std::string& name) const {
  return index_of(name) != kNpos;
}

const Tensor& StateDict::get(const std::string& name) const {
  const std::size_t idx = index_of(name);
  if (idx == kNpos) throw InvalidArgument("StateDict: no entry '" + name + "'");
  return entries_[idx].second;
}

Tensor& StateDict::get_mutable(const std::string& name) {
  const std::size_t idx = index_of(name);
  if (idx == kNpos) throw InvalidArgument("StateDict: no entry '" + name + "'");
  return entries_[idx].second;
}

std::size_t StateDict::total_parameters() const {
  std::size_t n = 0;
  for (const auto& [name, tensor] : entries_) n += tensor.numel();
  return n;
}

bool StateDict::equals(const StateDict& other) const {
  if (entries_.size() != other.entries_.size()) return false;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].first != other.entries_[i].first) return false;
    if (!entries_[i].second.equals(other.entries_[i].second)) return false;
  }
  return true;
}

void StateDict::add_scaled(const StateDict& other, float scale) {
  if (entries_.size() != other.entries_.size())
    throw InvalidArgument("StateDict::add_scaled: entry count mismatch");
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].first != other.entries_[i].first)
      throw InvalidArgument("StateDict::add_scaled: name mismatch at index " +
                            std::to_string(i));
    entries_[i].second.add_scaled(other.entries_[i].second, scale);
  }
}

const Tensor& StateDict::matched_entry(const StateDict& other,
                                       std::size_t i) const {
  const Entry& mine = entries_[i];
  if (i < other.entries_.size() && other.entries_[i].first == mine.first)
    return other.entries_[i].second;
  return other.get(mine.first);  // throws on a missing name
}

void StateDict::add_scaled_matched(const StateDict& other, float scale) {
  if (entries_.size() != other.entries_.size())
    throw InvalidArgument("StateDict::add_scaled_matched: entry count mismatch");
  for (std::size_t i = 0; i < entries_.size(); ++i)
    entries_[i].second.add_scaled(matched_entry(other, i), scale);
}

void StateDict::fold_scaled(const StateDict& other, float c) {
  for (std::size_t i = 0; i < entries_.size(); ++i)
    entries_[i].second.fold_scaled(matched_entry(other, i), c);
}

void StateDict::scale(float factor) {
  for (auto& [name, tensor] : entries_) tensor *= factor;
}

StateDict StateDict::reordered_like(const StateDict& reference) const {
  if (entries_.size() != reference.entries_.size())
    throw InvalidArgument("StateDict::reordered_like: entry count mismatch");
  StateDict out;
  for (const auto& [name, tensor] : reference.entries_) {
    (void)tensor;
    out.set(name, get(name));  // get() throws on a missing name
  }
  return out;
}

StateDict StateDict::zeros_like() const {
  StateDict out;
  for (const auto& [name, tensor] : entries_)
    out.set(name, Tensor::zeros(tensor.shape()));
  return out;
}

Bytes StateDict::serialize() const {
  ByteWriter w;
  w.put_u32(static_cast<std::uint32_t>(entries_.size()));
  for (const auto& [name, tensor] : entries_) {
    w.put_string(name);
    w.put_u8(static_cast<std::uint8_t>(tensor.rank()));
    for (const std::int64_t d : tensor.shape())
      w.put_varint(static_cast<std::uint64_t>(d));
    w.put_bytes(as_bytes(tensor.span()));
  }
  return w.finish();
}

std::size_t read_stream_shape(ByteReader& r, Shape* shape,
                              const std::string& name) {
  const std::uint8_t rank = r.get_u8();
  shape->clear();
  shape->reserve(rank);
  std::size_t numel = 1;
  for (std::uint8_t d = 0; d < rank; ++d) {
    const std::uint64_t dim = r.get_varint();
    if (dim == 0 ||
        dim > static_cast<std::uint64_t>(
                  std::numeric_limits<std::int64_t>::max()) ||
        numel > std::numeric_limits<std::size_t>::max() / dim)
      throw CorruptStream("invalid tensor shape in stream for " + name);
    numel *= static_cast<std::size_t>(dim);
    shape->push_back(static_cast<std::int64_t>(dim));
  }
  return numel;
}

StateDict StateDict::deserialize(ByteSpan bytes) {
  ByteReader r(bytes);
  const std::uint32_t count = r.get_u32();
  StateDict out;
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::string name = r.get_string();
    Shape shape;
    const std::size_t numel = read_stream_shape(r, &shape, name);
    // Every element is stored raw here, so the remaining bytes bound the
    // element count directly — a corrupt header can neither wrap
    // `numel * sizeof(float)` below nor force a huge allocation.
    if (numel > r.remaining() / sizeof(float))
      throw CorruptStream("StateDict: tensor larger than stream for " + name);
    ByteSpan raw = r.get_bytes(numel * sizeof(float));
    std::vector<float> data(numel);
    std::memcpy(data.data(), raw.data(), raw.size());
    out.set(name, Tensor::from_data(std::move(shape), std::move(data)));
  }
  if (!r.done()) throw CorruptStream("StateDict: trailing bytes");
  return out;
}

}  // namespace fedsz

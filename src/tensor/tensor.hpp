// Row-major N-dimensional float32 tensor. This is the single value type the
// whole stack shares: NN layers hold parameters as Tensors, the FL stack
// exchanges them, and FedSZ compresses their flattened storage — the C++
// analogue of the torch.Tensor entries in a PyTorch state_dict.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <numeric>
#include <string>
#include <vector>

#include "util/common.hpp"

namespace fedsz {

using Shape = std::vector<std::int64_t>;

class Tensor {
 public:
  /// Scalar (rank-0, one element) tensor of value 0.
  Tensor() : shape_{}, data_(1, 0.0f) {}

  /// Zero-filled tensor of the given shape. All dims must be positive.
  explicit Tensor(Shape shape);
  Tensor(std::initializer_list<std::int64_t> shape)
      : Tensor(Shape(shape)) {}

  static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor full(Shape shape, float value);
  static Tensor from_data(Shape shape, std::vector<float> data);

  const Shape& shape() const { return shape_; }
  std::int64_t dim(std::size_t axis) const;
  std::size_t rank() const { return shape_.size(); }
  std::size_t numel() const { return data_.size(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::vector<float>& storage() { return data_; }
  const std::vector<float>& storage() const { return data_; }
  FloatSpan span() const { return {data_.data(), data_.size()}; }

  float& operator[](std::size_t flat_index) { return data_[flat_index]; }
  float operator[](std::size_t flat_index) const { return data_[flat_index]; }

  /// Multi-index access (rank must match number of indices).
  float& at(std::initializer_list<std::int64_t> idx);
  float at(std::initializer_list<std::int64_t> idx) const;

  /// Same data, new shape; total element count must be preserved.
  Tensor reshaped(Shape new_shape) const;

  // Elementwise in-place helpers used by the optimizer and aggregation.
  void fill(float value);
  Tensor& operator+=(const Tensor& other);
  Tensor& operator-=(const Tensor& other);
  Tensor& operator*=(float scalar);
  void add_scaled(const Tensor& other, float scale);  // this += scale * other
  /// this[k] += c * (other[k] - this[k]) — the West online-mean fold, as one
  /// contiguous kernel over the raw storage (autovectorizable; shared by
  /// StreamingMean::add, merge_partial and the aggregation fast paths).
  void fold_scaled(const Tensor& other, float c);

  bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }
  /// Bit-exact equality of shape and contents.
  bool equals(const Tensor& other) const;

  std::string shape_string() const;

 private:
  std::size_t flat_offset(std::initializer_list<std::int64_t> idx) const;

  Shape shape_;
  std::vector<float> data_;
};

/// numel for a shape (product of dims); validates positivity.
std::size_t shape_numel(const Shape& shape);

}  // namespace fedsz

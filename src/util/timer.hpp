// Wall-clock timing for the runtime/throughput measurements reported by the
// benchmark harness (Tables I/II, Figures 6-9).
#pragma once

#include <chrono>

namespace fedsz {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates time across multiple scoped intervals (e.g. total compression
/// time over a training epoch).
class StopWatch {
 public:
  void start() { timer_.reset(); }
  void stop() { total_ += timer_.seconds(); }
  double total_seconds() const { return total_; }
  void clear() { total_ = 0.0; }

 private:
  Timer timer_;
  double total_ = 0.0;
};

}  // namespace fedsz

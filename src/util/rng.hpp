// Deterministic, seedable pseudo-random generation. All stochastic components
// of the library (weight init, synthetic data, data shuffling) use this
// generator so experiments are exactly reproducible from a seed.
#pragma once

#include <cmath>
#include <cstdint>

namespace fedsz {

/// xoshiro256** seeded via splitmix64. Small, fast, and reproducible across
/// platforms (unlike std::mt19937 distributions, whose output is
/// implementation-defined for e.g. std::normal_distribution).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) {
    std::uint64_t x = seed;
    for (auto& word : state_) word = splitmix64(x);
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform_index(std::uint64_t n) { return next_u64() % n; }

  /// Standard normal via Box-Muller (one value per call; caches the pair).
  double normal() {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u1 = uniform();
    while (u1 <= 0.0) u1 = uniform();
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 6.283185307179586476925286766559 * u2;
    cached_ = r * std::sin(theta);
    has_cached_ = true;
    return r * std::cos(theta);
  }

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Laplace(mu, b) via inverse CDF.
  double laplace(double mu, double b) {
    const double u = uniform() - 0.5;
    const double sign = u < 0 ? -1.0 : 1.0;
    return mu - b * sign * std::log(1.0 - 2.0 * std::fabs(u));
  }

  /// Gamma(shape, 1) via Marsaglia-Tsang; used by the Dirichlet partitioner.
  double gamma(double shape) {
    if (shape < 1.0) {
      const double u = uniform();
      return gamma(shape + 1.0) * std::pow(u, 1.0 / shape);
    }
    const double d = shape - 1.0 / 3.0;
    const double c = 1.0 / std::sqrt(9.0 * d);
    while (true) {
      double x = normal();
      double v = 1.0 + c * x;
      if (v <= 0) continue;
      v = v * v * v;
      const double u = uniform();
      if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
      if (std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) return d * v;
    }
  }

  /// Fork an independent stream (e.g. one per FL client / dataset sample).
  Rng fork(std::uint64_t stream_id) {
    return Rng(next_u64() ^ (0x9E3779B97F4A7C15ull * (stream_id + 1)));
  }

  /// Full generator state, including the Box-Muller cache — restoring it
  /// resumes the stream mid-sequence bit-exactly (the checkpoint/resume
  /// path depends on this; a reseed would replay draws already consumed).
  struct State {
    std::uint64_t words[4] = {0, 0, 0, 0};
    double cached = 0.0;
    bool has_cached = false;
  };

  State state() const {
    State s;
    for (int i = 0; i < 4; ++i) s.words[i] = state_[i];
    s.cached = cached_;
    s.has_cached = has_cached_;
    return s;
  }

  void restore(const State& s) {
    for (int i = 0; i < 4; ++i) state_[i] = s.words[i];
    cached_ = s.cached;
    has_cached_ = s.has_cached;
  }

 private:
  static std::uint64_t splitmix64(std::uint64_t& x) {
    x += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }
  static std::uint64_t rotl(std::uint64_t v, int k) {
    return (v << k) | (v >> (64 - k));
  }

  std::uint64_t state_[4];
  double cached_ = 0.0;
  bool has_cached_ = false;
};

}  // namespace fedsz

#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace fedsz::stats {

namespace {

template <typename T>
Summary summarize_impl(std::span<const T> values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  double sum = 0.0, sum_sq = 0.0;
  double lo = values[0], hi = values[0];
  for (const T v : values) {
    const double d = static_cast<double>(v);
    sum += d;
    sum_sq += d * d;
    lo = std::min(lo, d);
    hi = std::max(hi, d);
  }
  const double n = static_cast<double>(values.size());
  s.min = lo;
  s.max = hi;
  s.mean = sum / n;
  const double var = std::max(0.0, sum_sq / n - s.mean * s.mean);
  s.stddev = std::sqrt(var);
  return s;
}

}  // namespace

Summary summarize(FloatSpan values) { return summarize_impl(values); }
Summary summarize(std::span<const double> values) {
  return summarize_impl(values);
}

double Histogram::density(std::size_t i) const {
  if (total == 0 || counts.empty()) return 0.0;
  const double w = bin_width();
  if (w <= 0.0) return 0.0;
  return static_cast<double>(counts[i]) / (static_cast<double>(total) * w);
}

Histogram histogram(std::span<const double> values, std::size_t bins,
                    double lo, double hi) {
  if (bins == 0) throw InvalidArgument("histogram: bins must be > 0");
  if (!(hi > lo)) throw InvalidArgument("histogram: hi must exceed lo");
  Histogram h;
  h.lo = lo;
  h.hi = hi;
  h.counts.assign(bins, 0);
  const double scale = static_cast<double>(bins) / (hi - lo);
  for (double v : values) {
    if (v < lo || v > hi) continue;
    auto idx = static_cast<std::size_t>((v - lo) * scale);
    if (idx >= bins) idx = bins - 1;  // v == hi lands in the last bin
    ++h.counts[idx];
    ++h.total;
  }
  return h;
}

Histogram histogram(std::span<const double> values, std::size_t bins) {
  const Summary s = summarize(values);
  double lo = s.min, hi = s.max;
  if (!(hi > lo)) {  // constant input: widen to a degenerate-safe interval
    lo -= 0.5;
    hi += 0.5;
  }
  return histogram(values, bins, lo, hi);
}

double LaplaceFit::cdf(double x) const {
  const double scale = b > 0 ? b : 1e-300;
  if (x < mu) return 0.5 * std::exp((x - mu) / scale);
  return 1.0 - 0.5 * std::exp(-(x - mu) / scale);
}

LaplaceFit fit_laplace(std::span<const double> values) {
  LaplaceFit fit;
  if (values.empty()) return fit;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const std::size_t n = sorted.size();
  fit.mu = (n % 2 == 1) ? sorted[n / 2]
                        : 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
  double abs_dev = 0.0;
  for (double v : sorted) abs_dev += std::fabs(v - fit.mu);
  fit.b = abs_dev / static_cast<double>(n);
  return fit;
}

double NormalFit::cdf(double x) const {
  const double s = sigma > 0 ? sigma : 1e-300;
  return 0.5 * std::erfc(-(x - mu) / (s * std::sqrt(2.0)));
}

NormalFit fit_normal(std::span<const double> values) {
  const Summary s = summarize(values);
  return NormalFit{s.mean, s.stddev};
}

double roughness(FloatSpan values) {
  if (values.size() < 2) return 0.0;
  const Summary s = summarize(values);
  const double range = s.range();
  if (range <= 0.0) return 0.0;
  double tv = 0.0;
  for (std::size_t i = 1; i < values.size(); ++i)
    tv += std::fabs(static_cast<double>(values[i]) - values[i - 1]);
  return tv / (static_cast<double>(values.size() - 1) * range);
}

double max_abs_error(FloatSpan original, FloatSpan reconstructed) {
  if (original.size() != reconstructed.size())
    throw InvalidArgument("max_abs_error: size mismatch");
  double worst = 0.0;
  for (std::size_t i = 0; i < original.size(); ++i)
    worst = std::max(worst, std::fabs(static_cast<double>(original[i]) -
                                      reconstructed[i]));
  return worst;
}

double psnr(FloatSpan original, FloatSpan reconstructed) {
  if (original.size() != reconstructed.size())
    throw InvalidArgument("psnr: size mismatch");
  if (original.empty()) return 0.0;
  const Summary s = summarize(original);
  double mse = 0.0;
  for (std::size_t i = 0; i < original.size(); ++i) {
    const double d = static_cast<double>(original[i]) - reconstructed[i];
    mse += d * d;
  }
  mse /= static_cast<double>(original.size());
  if (mse <= 0.0) return 999.0;  // bit-exact reconstruction
  const double peak = s.range() > 0 ? s.range() : 1.0;
  return 10.0 * std::log10(peak * peak / mse);
}

double correlation(FloatSpan a, FloatSpan b) {
  if (a.size() != b.size()) throw InvalidArgument("correlation: size mismatch");
  if (a.size() < 2) return 0.0;
  const Summary sa = summarize(a), sb = summarize(b);
  if (sa.stddev == 0.0 || sb.stddev == 0.0) return 0.0;
  double cov = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    cov += (a[i] - sa.mean) * (b[i] - sb.mean);
  cov /= static_cast<double>(a.size());
  return cov / (sa.stddev * sb.stddev);
}

namespace detail {

void sort_values(std::vector<double>& values) {
  std::sort(values.begin(), values.end());
}

double ks_from_sorted(const std::vector<double>& sorted,
                      const std::vector<double>& cdf_at_points) {
  const double n = static_cast<double>(sorted.size());
  double d = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const double ecdf_hi = static_cast<double>(i + 1) / n;
    const double ecdf_lo = static_cast<double>(i) / n;
    d = std::max(d, std::fabs(ecdf_hi - cdf_at_points[i]));
    d = std::max(d, std::fabs(cdf_at_points[i] - ecdf_lo));
  }
  return d;
}

}  // namespace detail

}  // namespace fedsz::stats

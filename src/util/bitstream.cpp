#include "util/bitstream.hpp"

namespace fedsz {

void BitWriter::spill(std::uint64_t bits, unsigned count) {
  // Precondition (from write()): acc_bits_ < 64 and acc_bits_ + count >= 64.
  const unsigned take = 64 - acc_bits_;
  acc_ |= bits << acc_bits_;
  const std::size_t base = out_.size();
  out_.resize(base + 8);
  std::uint64_t word = acc_;
  for (int i = 0; i < 8; ++i) {  // little-endian spill == LSB-first stream
    out_[base + i] = static_cast<std::uint8_t>(word);
    word >>= 8;
  }
  acc_ = take >= count ? 0 : bits >> take;
  acc_bits_ = acc_bits_ + count - 64;
}

void BitWriter::flush_partial() {
  while (acc_bits_ > 0) {
    out_.push_back(static_cast<std::uint8_t>(acc_));
    acc_ >>= 8;
    acc_bits_ = acc_bits_ > 8 ? acc_bits_ - 8 : 0;
  }
  acc_ = 0;
}

Bytes BitWriter::finish() {
  flush_partial();
  Bytes result = std::move(out_);
  out_.clear();
  return result;
}

ByteSpan BitWriter::finish_view() {
  flush_partial();
  return {out_.data(), out_.size()};
}

std::uint64_t BitReader::read(unsigned count) {
  if (count > 64) throw InvalidArgument("BitReader::read: count > 64");
  if (pos_ + count > data_.size() * 8)
    throw CorruptStream("BitReader: read past end of stream");
  if (count <= 57) {  // single peek covers the whole request
    const std::uint64_t result = peek(count);
    pos_ += count;
    return result;
  }
  std::uint64_t result = 0;
  unsigned got = 0;
  while (got < count) {
    const std::size_t byte = pos_ >> 3;
    const unsigned offset = static_cast<unsigned>(pos_ & 7);
    const unsigned avail = 8 - offset;
    const unsigned take = (count - got) < avail ? (count - got) : avail;
    const std::uint64_t chunk = (data_[byte] >> offset) & ((1u << take) - 1);
    result |= chunk << got;
    got += take;
    pos_ += take;
  }
  return result;
}

}  // namespace fedsz


#include "util/bitstream.hpp"

namespace fedsz {

void BitWriter::write(std::uint64_t bits, unsigned count) {
  if (count > 64) throw InvalidArgument("BitWriter::write: count > 64");
  if (count < 64) bits &= (std::uint64_t{1} << count) - 1;
  while (count > 0) {
    if (used_ == 8) {
      out_.push_back(0);
      used_ = 0;
    }
    const unsigned space = 8 - used_;
    const unsigned take = count < space ? count : space;
    out_.back() |= static_cast<std::uint8_t>((bits & ((1u << take) - 1))
                                             << used_);
    bits >>= take;
    used_ += take;
    count -= take;
  }
}

Bytes BitWriter::finish() {
  Bytes result = std::move(out_);
  out_.clear();
  used_ = 8;
  return result;
}

std::uint64_t BitReader::read(unsigned count) {
  if (count > 64) throw InvalidArgument("BitReader::read: count > 64");
  if (pos_ + count > data_.size() * 8)
    throw CorruptStream("BitReader: read past end of stream");
  std::uint64_t result = 0;
  unsigned got = 0;
  while (got < count) {
    const std::size_t byte = pos_ >> 3;
    const unsigned offset = static_cast<unsigned>(pos_ & 7);
    const unsigned avail = 8 - offset;
    const unsigned take = (count - got) < avail ? (count - got) : avail;
    const std::uint64_t chunk = (data_[byte] >> offset) & ((1u << take) - 1);
    result |= chunk << got;
    got += take;
    pos_ += take;
  }
  return result;
}

}  // namespace fedsz

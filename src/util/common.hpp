// Common aliases and error types shared across the FedSZ library.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace fedsz {

using Bytes = std::vector<std::uint8_t>;
using ByteSpan = std::span<const std::uint8_t>;
using FloatSpan = std::span<const float>;

/// Thrown when a serialized stream fails validation (bad magic, truncated
/// payload, inconsistent section sizes, unknown codec id, ...).
class CorruptStream : public std::runtime_error {
 public:
  explicit CorruptStream(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown on API misuse detectable at run time (invalid argument combinations
/// that cannot be enforced by the type system).
class InvalidArgument : public std::invalid_argument {
 public:
  explicit InvalidArgument(const std::string& what)
      : std::invalid_argument(what) {}
};

/// Reinterpret a float span as its raw little-endian byte representation.
inline ByteSpan as_bytes(FloatSpan values) {
  return {reinterpret_cast<const std::uint8_t*>(values.data()),
          values.size() * sizeof(float)};
}

}  // namespace fedsz

#include "util/thread_pool.hpp"

#include <atomic>

namespace fedsz {

std::size_t ThreadPool::hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<std::size_t>(n);
}

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  // One claim-loop task per worker instead of one submit per index: queue
  // traffic and heap-allocated task wrappers are O(workers), not O(count),
  // and indices are load-balanced through the shared atomic cursor. The
  // caller blocks on the futures below, so the by-reference captures stay
  // valid for the tasks' lifetime. A throwing fn(i) ends that worker's
  // claim loop (later indices may be skipped), matching the serial
  // fallback's first-error-wins contract.
  std::atomic<std::size_t> next{0};
  const std::size_t n_tasks = std::min(count, workers_.size());
  std::vector<std::future<void>> futures;
  futures.reserve(n_tasks);
  for (std::size_t t = 0; t < n_tasks; ++t)
    futures.push_back(submit([&next, &fn, count] {
      for (std::size_t i = next.fetch_add(1); i < count;
           i = next.fetch_add(1))
        fn(i);
    }));
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace fedsz

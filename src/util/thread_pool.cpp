#include "util/thread_pool.hpp"

namespace fedsz {

std::size_t ThreadPool::hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<std::size_t>(n);
}

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  std::vector<std::future<void>> futures;
  futures.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    futures.push_back(submit([&fn, i] { fn(i); }));
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace fedsz

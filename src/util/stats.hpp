// Statistical utilities backing the paper's analyses:
//  - summary statistics & histograms (Figures 3 and 10),
//  - Laplace / Gaussian maximum-likelihood fits and Kolmogorov-Smirnov
//    goodness-of-fit (the Section VII-D differential-privacy observation),
//  - signal-roughness metrics (the Figure 2 "spiky vs smooth" contrast),
//  - reconstruction-error metrics for lossy codecs (max error, PSNR).
#pragma once

#include <cstddef>
#include <vector>

#include "util/common.hpp"

namespace fedsz::stats {

struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;  // population standard deviation
  double range() const { return max - min; }
};

Summary summarize(FloatSpan values);
Summary summarize(std::span<const double> values);

struct Histogram {
  double lo = 0.0;
  double hi = 0.0;
  std::vector<std::size_t> counts;
  std::size_t total = 0;

  double bin_width() const {
    return counts.empty() ? 0.0 : (hi - lo) / static_cast<double>(counts.size());
  }
  /// Probability density of bin `i` (counts normalized by total * width).
  double density(std::size_t i) const;
};

Histogram histogram(std::span<const double> values, std::size_t bins,
                    double lo, double hi);
Histogram histogram(std::span<const double> values, std::size_t bins);

/// Laplace(mu, b) fitted by maximum likelihood: mu = median, b = mean |x-mu|.
struct LaplaceFit {
  double mu = 0.0;
  double b = 0.0;
  double cdf(double x) const;
};
LaplaceFit fit_laplace(std::span<const double> values);

/// Normal(mu, sigma) fitted by maximum likelihood.
struct NormalFit {
  double mu = 0.0;
  double sigma = 0.0;
  double cdf(double x) const;
};
NormalFit fit_normal(std::span<const double> values);

/// One-sample Kolmogorov-Smirnov statistic of `values` against a CDF.
/// Smaller is a better fit. `Cdf` is any callable double -> double.
template <typename Cdf>
double ks_statistic(std::vector<double> values, Cdf&& cdf);

/// Total variation per element: mean |x[i+1] - x[i]| normalized by the value
/// range. Spiky FL weights score high; smooth scientific fields score low
/// (the Figure 2 contrast, as a single number).
double roughness(FloatSpan values);

/// Largest absolute pointwise difference; the quantity bounded by epsilon.
double max_abs_error(FloatSpan original, FloatSpan reconstructed);

/// Peak signal-to-noise ratio in dB (peak = value range of `original`).
double psnr(FloatSpan original, FloatSpan reconstructed);

/// Pearson correlation between two equally-sized sequences.
double correlation(FloatSpan a, FloatSpan b);

// ---- implementation of the templated KS statistic ----

namespace detail {
double ks_from_sorted(const std::vector<double>& sorted,
                      const std::vector<double>& cdf_at_points);
void sort_values(std::vector<double>& values);
}  // namespace detail

template <typename Cdf>
double ks_statistic(std::vector<double> values, Cdf&& cdf) {
  if (values.empty()) return 0.0;
  detail::sort_values(values);
  std::vector<double> cdf_vals;
  cdf_vals.reserve(values.size());
  for (double v : values) cdf_vals.push_back(cdf(v));
  return detail::ks_from_sorted(values, cdf_vals);
}

}  // namespace fedsz::stats

#include "util/bytebuffer.hpp"

namespace fedsz {

void ByteWriter::put_u16(std::uint16_t v) {
  put_u8(static_cast<std::uint8_t>(v));
  put_u8(static_cast<std::uint8_t>(v >> 8));
}

void ByteWriter::put_u32(std::uint32_t v) {
  put_u16(static_cast<std::uint16_t>(v));
  put_u16(static_cast<std::uint16_t>(v >> 16));
}

void ByteWriter::put_u64(std::uint64_t v) {
  put_u32(static_cast<std::uint32_t>(v));
  put_u32(static_cast<std::uint32_t>(v >> 32));
}

void ByteWriter::put_f32(float v) {
  std::uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u32(bits);
}

void ByteWriter::put_f64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(bits);
}

void ByteWriter::put_varint(std::uint64_t v) {
  while (v >= 0x80) {
    put_u8(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  put_u8(static_cast<std::uint8_t>(v));
}

void ByteWriter::put_bytes(ByteSpan data) {
  out_.insert(out_.end(), data.begin(), data.end());
}

void ByteWriter::put_blob(ByteSpan data) {
  put_varint(data.size());
  put_bytes(data);
}

void ByteWriter::put_string(const std::string& s) {
  put_blob({reinterpret_cast<const std::uint8_t*>(s.data()), s.size()});
}

void ByteReader::require(std::size_t count) const {
  if (pos_ + count > data_.size())
    throw CorruptStream("ByteReader: truncated stream");
}

std::uint8_t ByteReader::get_u8() {
  require(1);
  return data_[pos_++];
}

std::uint16_t ByteReader::get_u16() {
  const auto lo = get_u8();
  const auto hi = get_u8();
  return static_cast<std::uint16_t>(lo | (hi << 8));
}

std::uint32_t ByteReader::get_u32() {
  const std::uint32_t lo = get_u16();
  const std::uint32_t hi = get_u16();
  return lo | (hi << 16);
}

std::uint64_t ByteReader::get_u64() {
  const std::uint64_t lo = get_u32();
  const std::uint64_t hi = get_u32();
  return lo | (hi << 32);
}

float ByteReader::get_f32() {
  const std::uint32_t bits = get_u32();
  float v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

double ByteReader::get_f64() {
  const std::uint64_t bits = get_u64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::uint64_t ByteReader::get_varint() {
  std::uint64_t result = 0;
  unsigned shift = 0;
  while (true) {
    if (shift >= 64) throw CorruptStream("ByteReader: varint overflow");
    const std::uint8_t byte = get_u8();
    result |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  return result;
}

ByteSpan ByteReader::get_bytes(std::size_t count) {
  require(count);
  ByteSpan view = data_.subspan(pos_, count);
  pos_ += count;
  return view;
}

Bytes ByteReader::get_blob() {
  const auto len = get_varint();
  if (len > remaining()) throw CorruptStream("ByteReader: blob too long");
  ByteSpan view = get_bytes(static_cast<std::size_t>(len));
  return Bytes(view.begin(), view.end());
}

ByteSpan ByteReader::get_blob_view() {
  const auto len = get_varint();
  if (len > remaining()) throw CorruptStream("ByteReader: blob too long");
  return get_bytes(static_cast<std::size_t>(len));
}

std::string ByteReader::get_string() {
  const auto len = get_varint();
  if (len > remaining()) throw CorruptStream("ByteReader: string too long");
  ByteSpan view = get_bytes(static_cast<std::size_t>(len));
  return std::string(reinterpret_cast<const char*>(view.data()), view.size());
}

}  // namespace fedsz

// Bit-granular writer/reader used by the entropy coders (Huffman, ZFP
// bit-plane coding). Bits are packed LSB-first within each byte.
//
// The writer batches bits in a 64-bit accumulator and spills whole words,
// so per-symbol costs are a shift/or instead of a byte-at-a-time loop; the
// emitted byte stream is identical to the historical byte-loop encoder.
// The reader adds peek()/skip() so table-driven decoders can inspect a
// window of upcoming bits without consuming them.
#pragma once

#include <cstdint>

#include "util/common.hpp"

namespace fedsz {

class BitWriter {
 public:
  /// Append the low `count` bits of `bits` (0 <= count <= 64).
  void write(std::uint64_t bits, unsigned count) {
    if (count > 64) throw InvalidArgument("BitWriter::write: count > 64");
    if (count < 64) bits &= (std::uint64_t{1} << count) - 1;
    if (acc_bits_ + count < 64) {
      acc_ |= bits << acc_bits_;
      acc_bits_ += count;
      return;
    }
    spill(bits, count);
  }

  /// Append a single bit.
  void write_bit(bool bit) { write(bit ? 1u : 0u, 1); }

  /// Number of bits written so far.
  std::size_t bit_count() const { return out_.size() * 8 + acc_bits_; }

  /// Flush any partial byte and return the buffer. The writer is left empty.
  Bytes finish();

  /// Flush any partial byte and expose the encoded bytes without giving up
  /// the buffer (arena reuse: capacity survives the next reset()). The view
  /// is invalidated by any subsequent write.
  ByteSpan finish_view();

  std::size_t capacity() const { return out_.capacity(); }

  /// Drop all written bits but keep the buffer capacity.
  void reset() {
    out_.clear();
    acc_ = 0;
    acc_bits_ = 0;
  }

 private:
  void spill(std::uint64_t bits, unsigned count);
  void flush_partial();

  Bytes out_;
  std::uint64_t acc_ = 0;  // pending bits, LSB-first
  unsigned acc_bits_ = 0;  // number of pending bits (< 64 between calls)
};

class BitReader {
 public:
  explicit BitReader(ByteSpan data) : data_(data) {}

  /// Read `count` bits (0 <= count <= 64). Throws CorruptStream past the end.
  std::uint64_t read(unsigned count);

  bool read_bit() { return read(1) != 0; }

  /// Return the next `count` bits (0 <= count <= 57) without consuming
  /// them. Bits past the end of the buffer read as zero — the caller is
  /// responsible for checking bits_left() before trusting more than that
  /// many bits.
  std::uint64_t peek(unsigned count) const {
    const std::size_t byte = pos_ >> 3;
    const unsigned offset = static_cast<unsigned>(pos_ & 7);
    std::uint64_t word = 0;
    const std::size_t have = byte < data_.size() ? data_.size() - byte : 0;
    const std::size_t take = have < 8 ? have : 8;
    for (std::size_t i = 0; i < take; ++i)
      word |= static_cast<std::uint64_t>(data_[byte + i]) << (8 * i);
    word >>= offset;
    return word & ((std::uint64_t{1} << count) - 1);
  }

  /// Advance past bits already examined with peek(). The caller must not
  /// skip past the end of the buffer.
  void skip(unsigned count) { pos_ += count; }

  /// Bits remaining in the underlying buffer.
  std::size_t bits_left() const { return data_.size() * 8 - pos_; }

 private:
  ByteSpan data_;
  std::size_t pos_ = 0;  // absolute bit position
};

}  // namespace fedsz

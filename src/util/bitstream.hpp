// Bit-granular writer/reader used by the entropy coders (Huffman, ZFP
// bit-plane coding). Bits are packed LSB-first within each byte.
#pragma once

#include <cstdint>

#include "util/common.hpp"

namespace fedsz {

class BitWriter {
 public:
  /// Append the low `count` bits of `bits` (0 <= count <= 64).
  void write(std::uint64_t bits, unsigned count);

  /// Append a single bit.
  void write_bit(bool bit) { write(bit ? 1u : 0u, 1); }

  /// Number of bits written so far.
  std::size_t bit_count() const { return out_.size() * 8 - (8 - used_) % 8; }

  /// Flush any partial byte and return the buffer. The writer is left empty.
  Bytes finish();

 private:
  Bytes out_;
  unsigned used_ = 8;  // bits used in the last byte; 8 == byte is full
};

class BitReader {
 public:
  explicit BitReader(ByteSpan data) : data_(data) {}

  /// Read `count` bits (0 <= count <= 64). Throws CorruptStream past the end.
  std::uint64_t read(unsigned count);

  bool read_bit() { return read(1) != 0; }

  /// Bits remaining in the underlying buffer.
  std::size_t bits_left() const { return data_.size() * 8 - pos_; }

 private:
  ByteSpan data_;
  std::size_t pos_ = 0;  // absolute bit position
};

}  // namespace fedsz

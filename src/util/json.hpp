// Minimal ordered JSON value (null/bool/number/string/array/object) and a
// file writer, so bench binaries and tools can emit machine-readable
// results without an external dependency. Insertion order is preserved,
// strings are escaped per RFC 8259 (quotes, backslashes, and every control
// character below 0x20 — \n/\r/\t short forms, \u00XX otherwise), and
// non-finite numbers render as null (JSON has no inf/nan).
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace fedsz::util {

class JsonValue {
 public:
  JsonValue() = default;  // null
  JsonValue(bool value);
  JsonValue(double value);
  JsonValue(int value);
  JsonValue(std::size_t value);
  JsonValue(const char* value);
  JsonValue(std::string value);

  static JsonValue object();
  static JsonValue array();

  /// Insert into an object (created on demand when null); returns *this.
  JsonValue& set(const std::string& key, JsonValue value);
  /// Append to an array (created on demand when null); returns *this.
  JsonValue& push(JsonValue value);

  std::string dump(int indent = 2) const;

 private:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  void render(std::string& out, int indent, int depth) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Write `value` to `path` (with trailing newline). Throws
/// std::runtime_error when the file cannot be written.
void write_json(const std::string& path, const JsonValue& value);

}  // namespace fedsz::util

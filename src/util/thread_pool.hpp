// Fixed-size thread pool used to run FL clients concurrently — the analogue
// of the paper's MPI-rank-per-client simulation on the Swing cluster
// (Figure 9 weak/strong scaling) — and to drive the chunked FedSZ
// compression pipeline (core::FedSz fans per-chunk codec work out over a
// pool). submit()/parallel_for() are safe to call from multiple threads at
// once; each caller waits only on its own futures.
#pragma once

#include <condition_variable>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace fedsz {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1).
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Hardware thread count, never 0 (std::thread::hardware_concurrency may
  /// report 0 when it cannot be determined).
  static std::size_t hardware_threads();

  /// Enqueue a task; the future resolves with its result (or exception).
  template <typename F>
  auto submit(F&& task) -> std::future<std::invoke_result_t<F>> {
    using Result = std::invoke_result_t<F>;
    auto packaged = std::make_shared<std::packaged_task<Result()>>(
        std::forward<F>(task));
    std::future<Result> future = packaged->get_future();
    {
      std::lock_guard lock(mutex_);
      if (stopping_) throw std::runtime_error("ThreadPool: submit after stop");
      queue_.emplace([packaged] { (*packaged)(); });
    }
    cv_.notify_one();
    return future;
  }

  /// Run `fn(i)` for i in [0, count) across the pool and wait for all.
  /// Exceptions from tasks are rethrown (the first one encountered).
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace fedsz

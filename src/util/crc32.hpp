// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over byte spans.
// Guards the wire-protocol frames and the checkpoint container the same way
// the bitstream containers guard their sections: a flipped bit anywhere in a
// payload fails loudly as CorruptStream instead of decoding garbage.
#pragma once

#include <array>
#include <cstdint>

#include "util/common.hpp"

namespace fedsz::util {

namespace detail {

inline const std::array<std::uint32_t, 256>& crc32_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace detail

/// Running update: fold `data` into a previous crc32() result to checksum a
/// logically-concatenated stream without materializing it.
inline std::uint32_t crc32_update(std::uint32_t crc, ByteSpan data) {
  const auto& table = detail::crc32_table();
  crc = ~crc;
  for (const std::uint8_t byte : data)
    crc = table[(crc ^ byte) & 0xFFu] ^ (crc >> 8);
  return ~crc;
}

inline std::uint32_t crc32(ByteSpan data) { return crc32_update(0, data); }

}  // namespace fedsz::util

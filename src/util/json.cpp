#include "util/json.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace fedsz::util {

JsonValue::JsonValue(bool value) : kind_(Kind::kBool), bool_(value) {}
JsonValue::JsonValue(double value) : kind_(Kind::kNumber), number_(value) {}
JsonValue::JsonValue(int value)
    : kind_(Kind::kNumber), number_(static_cast<double>(value)) {}
JsonValue::JsonValue(std::size_t value)
    : kind_(Kind::kNumber), number_(static_cast<double>(value)) {}
JsonValue::JsonValue(const char* value)
    : kind_(Kind::kString), string_(value) {}
JsonValue::JsonValue(std::string value)
    : kind_(Kind::kString), string_(std::move(value)) {}

JsonValue JsonValue::object() {
  JsonValue value;
  value.kind_ = Kind::kObject;
  return value;
}

JsonValue JsonValue::array() {
  JsonValue value;
  value.kind_ = Kind::kArray;
  return value;
}

JsonValue& JsonValue::set(const std::string& key, JsonValue value) {
  if (kind_ == Kind::kNull) kind_ = Kind::kObject;
  if (kind_ != Kind::kObject)
    throw std::runtime_error("JsonValue::set on a non-object");
  members_.emplace_back(key, std::move(value));
  return *this;
}

JsonValue& JsonValue::push(JsonValue value) {
  if (kind_ == Kind::kNull) kind_ = Kind::kArray;
  if (kind_ != Kind::kArray)
    throw std::runtime_error("JsonValue::push on a non-array");
  items_.push_back(std::move(value));
  return *this;
}

namespace {

void append_escaped(std::string& out, const std::string& text) {
  out.push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

}  // namespace

void JsonValue::render(std::string& out, int indent, int depth) const {
  const std::string pad(static_cast<std::size_t>(indent) *
                            static_cast<std::size_t>(depth + 1),
                        ' ');
  const std::string close_pad(
      static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth),
      ' ');
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      break;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::kNumber: {
      char buffer[48];
      if (!std::isfinite(number_)) {
        out += "null";  // JSON has no inf/nan (e.g. speedup() at zero cost)
        break;
      }
      if (std::abs(number_) < 1e15 &&
          number_ == static_cast<double>(static_cast<long long>(number_)))
        std::snprintf(buffer, sizeof(buffer), "%lld",
                      static_cast<long long>(number_));
      else
        std::snprintf(buffer, sizeof(buffer), "%.12g", number_);
      out += buffer;
      break;
    }
    case Kind::kString:
      append_escaped(out, string_);
      break;
    case Kind::kArray: {
      if (items_.empty()) {
        out += "[]";
        break;
      }
      out += "[\n";
      for (std::size_t i = 0; i < items_.size(); ++i) {
        out += pad;
        items_[i].render(out, indent, depth + 1);
        if (i + 1 < items_.size()) out += ",";
        out += "\n";
      }
      out += close_pad + "]";
      break;
    }
    case Kind::kObject: {
      if (members_.empty()) {
        out += "{}";
        break;
      }
      out += "{\n";
      for (std::size_t i = 0; i < members_.size(); ++i) {
        out += pad;
        append_escaped(out, members_[i].first);
        out += ": ";
        members_[i].second.render(out, indent, depth + 1);
        if (i + 1 < members_.size()) out += ",";
        out += "\n";
      }
      out += close_pad + "}";
      break;
    }
  }
}

std::string JsonValue::dump(int indent) const {
  std::string out;
  render(out, indent, 0);
  return out;
}

void write_json(const std::string& path, const JsonValue& value) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_json: cannot open " + path);
  out << value.dump() << "\n";
  if (!out) throw std::runtime_error("write_json: write failed for " + path);
}

}  // namespace fedsz::util

// Byte-granular serialization helpers: little-endian fixed-width integers,
// IEEE-754 floats, LEB128 varints, and length-prefixed strings/blobs.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>

#include "util/common.hpp"

namespace fedsz {

class ByteWriter {
 public:
  void put_u8(std::uint8_t v) { out_.push_back(v); }
  void put_u16(std::uint16_t v);
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  void put_f32(float v);
  void put_f64(double v);

  /// Unsigned LEB128.
  void put_varint(std::uint64_t v);

  /// Raw bytes, no length prefix.
  void put_bytes(ByteSpan data);

  /// Varint length prefix followed by the bytes.
  void put_blob(ByteSpan data);
  void put_string(const std::string& s);

  std::size_t size() const { return out_.size(); }
  Bytes finish() { return std::move(out_); }

  /// View of the bytes written so far (invalidated by further writes).
  ByteSpan view() const { return {out_.data(), out_.size()}; }

  /// Drop the contents but keep the capacity — the arena-reuse primitive:
  /// a reset writer re-encodes into the same heap block.
  void reset() { out_.clear(); }

  void reserve(std::size_t capacity) { out_.reserve(capacity); }

  std::size_t capacity() const { return out_.capacity(); }

 private:
  Bytes out_;
};

class ByteReader {
 public:
  explicit ByteReader(ByteSpan data) : data_(data) {}

  std::uint8_t get_u8();
  std::uint16_t get_u16();
  std::uint32_t get_u32();
  std::uint64_t get_u64();
  float get_f32();
  double get_f64();
  std::uint64_t get_varint();
  /// View of the next `count` bytes; advances the cursor.
  ByteSpan get_bytes(std::size_t count);
  Bytes get_blob();
  /// Zero-copy variant of get_blob(): a view into the underlying buffer.
  ByteSpan get_blob_view();
  std::string get_string();

  std::size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return pos_ == data_.size(); }

 private:
  void require(std::size_t count) const;
  ByteSpan data_;
  std::size_t pos_ = 0;
};

}  // namespace fedsz

#include "core/fedsz.hpp"

#include <cstring>

#include "util/bytebuffer.hpp"
#include "util/timer.hpp"

namespace fedsz::core {

namespace {
constexpr char kMagic[4] = {'F', 'S', 'Z', '1'};
constexpr std::uint16_t kVersion = 1;
}  // namespace

bool is_lossy_entry(const std::string& name, std::size_t numel,
                    std::size_t threshold) {
  return name.find("weight") != std::string::npos && numel > threshold;
}

Partition partition_state_dict(const StateDict& dict, std::size_t threshold) {
  Partition partition;
  for (const auto& [name, tensor] : dict) {
    if (is_lossy_entry(name, tensor.numel(), threshold)) {
      partition.lossy_names.push_back(name);
      partition.lossy_bytes += tensor.numel() * sizeof(float);
    } else {
      partition.lossless_names.push_back(name);
      partition.lossless_bytes += tensor.numel() * sizeof(float);
    }
  }
  return partition;
}

FedSz::FedSz(FedSzConfig config) : config_(config) {
  config_.bound.validate();
  // Resolve the codecs eagerly so a bad id fails at construction.
  (void)lossy::lossy_codec(config_.lossy_id);
  (void)lossless::lossless_codec(config_.lossless_id);
}

Bytes FedSz::compress(const StateDict& dict, CompressionStats* stats) const {
  Timer timer;
  const lossy::LossyCodec& lossy_codec = lossy::lossy_codec(config_.lossy_id);
  const lossless::LosslessCodec& lossless_codec =
      lossless::lossless_codec(config_.lossless_id);

  CompressionStats local;
  local.original_bytes = dict.total_bytes();

  // Algorithm 1: route each entry.
  StateDict lossless_partition;
  struct LossyEntry {
    const std::string* name;
    const Tensor* tensor;
  };
  std::vector<LossyEntry> lossy_entries;
  for (const auto& [name, tensor] : dict) {
    if (is_lossy_entry(name, tensor.numel(), config_.lossy_threshold)) {
      lossy_entries.push_back({&name, &tensor});
      local.lossy_original_bytes += tensor.numel() * sizeof(float);
    } else {
      lossless_partition.set(name, tensor);
      local.lossless_original_bytes += tensor.numel() * sizeof(float);
    }
  }

  ByteWriter w;
  w.put_bytes({reinterpret_cast<const std::uint8_t*>(kMagic), 4});
  w.put_u16(kVersion);
  w.put_u8(static_cast<std::uint8_t>(config_.lossy_id));
  w.put_u8(static_cast<std::uint8_t>(config_.lossless_id));
  w.put_u8(static_cast<std::uint8_t>(config_.bound.mode));
  w.put_f64(config_.bound.value);
  w.put_u32(static_cast<std::uint32_t>(lossy_entries.size()));

  // Lossy partition: each tensor flattened and compressed independently
  // (Algorithm 1 lines 3-5).
  for (const LossyEntry& entry : lossy_entries) {
    w.put_string(*entry.name);
    const Shape& shape = entry.tensor->shape();
    w.put_u8(static_cast<std::uint8_t>(shape.size()));
    for (const std::int64_t d : shape)
      w.put_varint(static_cast<std::uint64_t>(d));
    const Bytes payload =
        lossy_codec.compress(entry.tensor->span(), config_.bound);
    local.lossy_compressed_bytes += payload.size();
    w.put_blob({payload.data(), payload.size()});
  }

  // Lossless partition: serialize ("pickle") then compress as one block.
  const Bytes serialized = lossless_partition.serialize();
  const Bytes lossless_payload =
      lossless_codec.compress({serialized.data(), serialized.size()});
  local.lossless_compressed_bytes = lossless_payload.size();
  w.put_blob({lossless_payload.data(), lossless_payload.size()});

  Bytes out = w.finish();
  local.compressed_bytes = out.size();
  local.compress_seconds = timer.seconds();
  if (stats) *stats = local;
  return out;
}

StateDict FedSz::decompress(ByteSpan stream, double* seconds) const {
  Timer timer;
  ByteReader r(stream);
  ByteSpan magic = r.get_bytes(4);
  if (std::memcmp(magic.data(), kMagic, 4) != 0)
    throw CorruptStream("FedSz: bad magic");
  const std::uint16_t version = r.get_u16();
  if (version != kVersion)
    throw CorruptStream("FedSz: unsupported version " +
                        std::to_string(version));
  const auto lossy_id = static_cast<lossy::LossyId>(r.get_u8());
  const auto lossless_id = static_cast<lossless::LosslessId>(r.get_u8());
  (void)r.get_u8();   // bound mode (informational)
  (void)r.get_f64();  // bound value (informational)
  const lossy::LossyCodec& lossy_codec = lossy::lossy_codec(lossy_id);
  const lossless::LosslessCodec& lossless_codec =
      lossless::lossless_codec(lossless_id);

  const std::uint32_t n_lossy = r.get_u32();
  struct DecodedEntry {
    std::string name;
    Tensor tensor;
  };
  std::vector<DecodedEntry> lossy_entries;
  lossy_entries.reserve(n_lossy);
  for (std::uint32_t i = 0; i < n_lossy; ++i) {
    std::string name = r.get_string();
    const std::uint8_t rank = r.get_u8();
    Shape shape;
    shape.reserve(rank);
    for (std::uint8_t d = 0; d < rank; ++d)
      shape.push_back(static_cast<std::int64_t>(r.get_varint()));
    const Bytes payload = r.get_blob();
    std::vector<float> values =
        lossy_codec.decompress({payload.data(), payload.size()});
    if (values.size() != shape_numel(shape))
      throw CorruptStream("FedSz: decompressed size mismatch for " + name);
    lossy_entries.push_back(
        {std::move(name), Tensor::from_data(std::move(shape),
                                            std::move(values))});
  }
  const Bytes lossless_payload = r.get_blob();
  if (!r.done()) throw CorruptStream("FedSz: trailing bytes");
  const Bytes serialized = lossless_codec.decompress(
      {lossless_payload.data(), lossless_payload.size()});
  const StateDict lossless_partition =
      StateDict::deserialize({serialized.data(), serialized.size()});

  // Reassemble. Entry order is lossy entries first, then lossless; FedAvg
  // aggregation matches by name, so order differences from the original are
  // irrelevant — but we keep a deterministic layout.
  StateDict out;
  for (DecodedEntry& entry : lossy_entries)
    out.set(entry.name, std::move(entry.tensor));
  for (const auto& [name, tensor] : lossless_partition) out.set(name, tensor);
  if (seconds) *seconds = timer.seconds();
  return out;
}

}  // namespace fedsz::core

#include "core/fedsz.hpp"

#include <algorithm>
#include <cstring>
#include <limits>
#include <new>
#include <stdexcept>

#include "compress/sparse/sparse_codec.hpp"
#include "util/bytebuffer.hpp"
#include "util/timer.hpp"

namespace fedsz::core {

namespace {
constexpr char kMagic[4] = {'F', 'S', 'Z', '1'};
/// v1: one opaque blob per lossy tensor, serial-only layout.
constexpr std::uint16_t kVersionLegacy = 1;
/// v2: chunked container — ONE codec/bound for the whole stream in the
/// header, per-tensor resolved bound, chunk count and per-chunk size table,
/// enabling parallel decode at any offset. Still written whenever every
/// plan matches the uniform Algorithm-1 default, so the default policy's
/// bytes are identical to the pre-policy writer.
constexpr std::uint16_t kVersionUniform = 2;
/// v3: per-tensor plans — each planned tensor carries its own path tag and,
/// on the lossy path, its own codec id, policy bound and resolved epsilon.
/// Raw-path tensors ship untouched float bytes.
constexpr std::uint16_t kVersionPlanned = 3;
/// A relative bound over a constant tensor resolves to epsilon 0; clamp to a
/// tiny positive tolerance so the per-chunk absolute bound stays valid (any
/// exact reconstruction satisfies it either way).
constexpr double kMinEpsilon = 1e-300;
/// Decompression-bomb guard: elements a declared tensor may claim per byte
/// of its declared chunk payloads. The most compressible legitimate input
/// (a constant tensor under SZ2, the best of the four codecs) measures
/// ~618 elements/byte at every size, so 2^13 gives ~13x headroom while
/// capping what a malicious header can make the decoder allocate at 32 KiB
/// per stream byte.
constexpr std::uint64_t kMaxElementsPerPayloadByte = 1u << 13;
}  // namespace

bool is_lossy_entry(const std::string& name, std::size_t numel,
                    std::size_t threshold) {
  return name.find("weight") != std::string::npos && numel > threshold;
}

Partition partition_state_dict(const StateDict& dict, std::size_t threshold) {
  Partition partition;
  for (const auto& [name, tensor] : dict) {
    if (is_lossy_entry(name, tensor.numel(), threshold)) {
      partition.lossy_names.push_back(name);
      partition.lossy_bytes += tensor.numel() * sizeof(float);
    } else {
      partition.lossless_names.push_back(name);
      partition.lossless_bytes += tensor.numel() * sizeof(float);
    }
  }
  return partition;
}

/// Everything one compress() call needs beyond the output buffer. Leased
/// from the FedSz instance and returned afterwards, so in steady state every
/// round reuses the same heap blocks: payload slots keep their capacity and
/// are refilled through compress_into, the task list is a flat struct array
/// (no per-chunk std::function), and the metadata partition serializes into
/// a reusable writer instead of a deep-copied StateDict.
struct FedSz::EncodeWorkspace {
  struct ChunkJob {
    /// Lossy chunk when non-null; a whole-tensor sparse job when null
    /// (sparse masks/statistics are per-tensor, so the sparse path never
    /// chunks — one job per tensor keeps byte-identity trivial).
    const lossy::LossyCodec* codec;
    FloatSpan chunk;
    double eps;
    Bytes* slot;
    double sparsity = 0.0;    // sparse jobs only
    unsigned sparse_bits = 0; // sparse jobs only
    std::size_t kept = 0;     // filled by sparse jobs for the stats tally
  };
  std::vector<std::vector<Bytes>> chunk_payloads;  // per planned entry
  std::vector<ChunkJob> jobs;
  ByteWriter metadata;  // serialized lossless partition
  ByteWriter frame;     // assembled container
  Bytes lossless_payload;
};

void FedSz::WorkspaceReturner::operator()(
    EncodeWorkspace* workspace) const noexcept {
  owner->return_workspace(workspace);
}

FedSz::WorkspaceLease FedSz::lease_workspace() const {
  {
    std::lock_guard lock(workspace_mutex_);
    if (!workspaces_.empty()) {
      EncodeWorkspace* workspace = workspaces_.back().release();
      workspaces_.pop_back();
      return WorkspaceLease(workspace, WorkspaceReturner{this});
    }
  }
  return WorkspaceLease(new EncodeWorkspace, WorkspaceReturner{this});
}

void FedSz::return_workspace(EncodeWorkspace* workspace) const noexcept {
  try {
    std::lock_guard lock(workspace_mutex_);
    workspaces_.emplace_back(workspace);
  } catch (...) {
    delete workspace;  // failed to pool it; drop rather than leak
  }
}

FedSz::~FedSz() = default;

FedSz::FedSz(FedSzConfig config) : config_(std::move(config)) {
  config_.bound.validate();
  if (config_.chunk_elements == 0)
    throw InvalidArgument("FedSz: chunk_elements must be >= 1");
  config_.chunk_elements =
      std::min(config_.chunk_elements, FedSzConfig::kMaxChunkElements);
  // Resolve the codecs eagerly so a bad id fails at construction (and the
  // registry singletons exist before any worker thread touches them).
  (void)lossy::lossy_codec(config_.lossy_id);
  (void)lossless::lossless_codec(config_.lossless_id);
  policy_ = config_.policy
                ? config_.policy
                : make_threshold_policy({config_.lossy_id, config_.bound,
                                         config_.lossy_threshold});
}

std::size_t FedSz::resolved_parallelism() const {
  if (config_.parallelism == 0) return ThreadPool::hardware_threads();
  return config_.parallelism;
}

ThreadPool& FedSz::pool(std::size_t workers) const {
  std::lock_guard lock(pool_mutex_);
  if (!pool_) pool_ = std::make_unique<ThreadPool>(workers);
  return *pool_;
}

void FedSz::run_indexed(std::size_t count,
                        const std::function<void(std::size_t)>& fn) const {
  const std::size_t workers = resolved_parallelism();
  if (workers <= 1 || count <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  pool(workers).parallel_for(count, fn);
}

Bytes FedSz::compress(const StateDict& dict, CompressionStats* stats,
                      const EncodeContext& ctx) const {
  Timer timer;
  const lossless::LosslessCodec& lossless_codec =
      lossless::lossless_codec(config_.lossless_id);

  CompressionStats local;
  local.original_bytes = dict.total_bytes();

  // Plan every entry through the policy. `planned` keeps lossy and raw
  // entries in dict order; lossless entries collect into one partition.
  struct PlannedEntry {
    const std::string* name;
    const Tensor* tensor;
    TensorPlan plan;
    const lossy::LossyCodec* codec = nullptr;  // lossy path only
    double eps = 0.0;         // bound resolved over the whole tensor
    std::size_t chunks = 0;
  };
  std::vector<const StateDict::Entry*> lossless_entries;
  std::vector<PlannedEntry> planned;
  // True while every plan is expressible as the uniform v2 container: the
  // Algorithm-1 partition under this config, one codec, one bound, nothing
  // raw. Uniform updates keep emitting the exact pre-policy v2 bytes.
  bool uniform = true;
  double rel_bound_sum = 0.0;
  std::size_t rel_bound_count = 0;
  for (const StateDict::Entry& dict_entry : dict.entries()) {
    const std::string& name = dict_entry.first;
    const Tensor& tensor = dict_entry.second;
    const TensorPlan plan = policy_->plan(name, tensor, ctx);
    const std::size_t bytes = tensor.numel() * sizeof(float);
    const bool default_lossy =
        is_lossy_entry(name, tensor.numel(), config_.lossy_threshold);
    switch (plan.path) {
      case TensorPath::kLossless:
        uniform = uniform && !default_lossy;
        lossless_entries.push_back(&dict_entry);
        local.lossless_original_bytes += bytes;
        ++local.lossless_tensors;
        break;
      case TensorPath::kRaw:
        uniform = false;
        planned.push_back({&name, &tensor, plan, nullptr, 0.0, 0});
        local.raw_original_bytes += bytes;
        ++local.raw_tensors;
        break;
      case TensorPath::kLossy: {
        plan.bound.validate();
        uniform = uniform && default_lossy &&
                  plan.lossy_id == config_.lossy_id &&
                  plan.bound.mode == config_.bound.mode &&
                  plan.bound.value == config_.bound.value;
        planned.push_back(
            {&name, &tensor, plan, &lossy::lossy_codec(plan.lossy_id), 0.0,
             0});
        local.lossy_original_bytes += bytes;
        ++local.lossy_tensors;
        if (plan.bound.mode == lossy::BoundMode::kRelative) {
          rel_bound_sum += plan.bound.value;
          ++rel_bound_count;
        }
        break;
      }
      case TensorPath::kSparse: {
        plan.bound.validate();
        sparse::SparseParams{plan.sparsity, plan.sparse_bits}.validate();
        uniform = false;
        planned.push_back({&name, &tensor, plan, nullptr, 0.0, 0});
        local.sparse_original_bytes += bytes;
        local.sparse_total_elements += tensor.numel();
        ++local.sparse_tensors;
        if (plan.bound.mode == lossy::BoundMode::kRelative) {
          rel_bound_sum += plan.bound.value;
          ++rel_bound_count;
        }
        break;
      }
      default:
        throw InvalidArgument("FedSz: policy '" + policy_->name() +
                              "' returned an unknown TensorPath");
    }
  }
  if (rel_bound_count > 0)
    local.mean_bound_value =
        rel_bound_sum / static_cast<double>(rel_bound_count);

  // Resolve each (possibly relative) bound per tensor BEFORE chunking, so a
  // chunk sees the same absolute tolerance it would in an unchunked stream.
  std::size_t total_chunks = 0;
  for (PlannedEntry& entry : planned) {
    if (entry.plan.path == TensorPath::kRaw) continue;
    entry.eps = std::max(entry.plan.bound.absolute_for(entry.tensor->span()),
                         kMinEpsilon);
    if (entry.plan.path != TensorPath::kLossy) continue;
    entry.chunks = chunk_count(entry.tensor->numel());
    total_chunks += entry.chunks;
  }
  local.lossy_chunks = total_chunks;

  // One job per lossy chunk plus one for the lossless partition, all on the
  // same queue: metadata compression overlaps the lossy work instead of
  // trailing it. Chunks are compressed out of order but written in order, so
  // the bitstream is identical at every parallelism setting. Raw entries
  // need no work. All working storage comes from a leased workspace, so in
  // steady state the chunk loop performs no allocation: payload slots keep
  // their capacity and codecs refill them through compress_into.
  WorkspaceLease workspace = lease_workspace();
  EncodeWorkspace& ws = *workspace;
  ws.chunk_payloads.resize(planned.size());
  ws.jobs.clear();
  for (std::size_t i = 0; i < planned.size(); ++i) {
    const PlannedEntry& entry = planned[i];
    if (entry.plan.path == TensorPath::kSparse) {
      // One whole-tensor job: the keep-mask derives from per-tensor
      // magnitude statistics, so the sparse path never chunks.
      ws.chunk_payloads[i].resize(1);
      ws.jobs.push_back({nullptr, entry.tensor->span(), entry.eps,
                         &ws.chunk_payloads[i][0], entry.plan.sparsity,
                         entry.plan.sparse_bits, 0});
      continue;
    }
    if (entry.plan.path != TensorPath::kLossy) {
      ws.chunk_payloads[i].clear();
      continue;
    }
    ws.chunk_payloads[i].resize(entry.chunks);
    const FloatSpan values = entry.tensor->span();
    for (std::size_t c = 0; c < entry.chunks; ++c) {
      const std::size_t begin = c * config_.chunk_elements;
      const std::size_t len =
          std::min(config_.chunk_elements, values.size() - begin);
      ws.jobs.push_back({entry.codec, values.subspan(begin, len), entry.eps,
                         &ws.chunk_payloads[i][c]});
    }
  }

  // Serialize the lossless partition straight from the borrowed entries —
  // byte-for-byte StateDict::serialize() format, without deep-copying the
  // tensors into a scratch dict.
  ByteWriter& metadata = ws.metadata;
  metadata.reset();
  metadata.put_u32(static_cast<std::uint32_t>(lossless_entries.size()));
  for (const StateDict::Entry* entry : lossless_entries) {
    metadata.put_string(entry->first);
    const Tensor& tensor = entry->second;
    metadata.put_u8(static_cast<std::uint8_t>(tensor.rank()));
    for (const std::int64_t d : tensor.shape())
      metadata.put_varint(static_cast<std::uint64_t>(d));
    metadata.put_bytes(as_bytes(tensor.span()));
  }

  run_indexed(ws.jobs.size() + 1, [&ws, &lossless_codec,
                                   &metadata](std::size_t t) {
    if (t == 0) {
      lossless_codec.compress_into(metadata.view(), ws.lossless_payload);
      return;
    }
    EncodeWorkspace::ChunkJob& job = ws.jobs[t - 1];
    if (job.codec == nullptr) {
      job.kept = sparse::sparse_codec()
                     .compress_into(job.chunk, job.eps,
                                    {job.sparsity, job.sparse_bits},
                                    lossless_codec, *job.slot)
                     .kept;
      return;
    }
    job.codec->compress_into(job.chunk, lossy::ErrorBound::absolute(job.eps),
                             *job.slot);
  });
  const Bytes& lossless_payload = ws.lossless_payload;
  for (const EncodeWorkspace::ChunkJob& job : ws.jobs)
    if (job.codec == nullptr) local.sparse_kept_elements += job.kept;

  // Shared per-entry serialization, so the v2 and v3 branches can never
  // drift apart: the name/shape prefix, and the resolved-eps + chunk-size
  // table + payload tail (identical in both formats).
  const auto write_entry_header = [](ByteWriter& writer,
                                     const PlannedEntry& entry) {
    writer.put_string(*entry.name);
    const Shape& shape = entry.tensor->shape();
    writer.put_u8(static_cast<std::uint8_t>(shape.size()));
    for (const std::int64_t d : shape)
      writer.put_varint(static_cast<std::uint64_t>(d));
  };
  const auto write_chunk_payloads = [&local](ByteWriter& writer,
                                             const PlannedEntry& entry,
                                             const std::vector<Bytes>&
                                                 payloads) {
    writer.put_f64(entry.eps);
    writer.put_varint(entry.chunks);
    for (const Bytes& payload : payloads) {
      writer.put_varint(payload.size());
      local.lossy_compressed_bytes += payload.size();
    }
    for (const Bytes& payload : payloads)
      writer.put_bytes({payload.data(), payload.size()});
  };

  ByteWriter& w = ws.frame;
  w.reset();
  w.put_bytes({reinterpret_cast<const std::uint8_t*>(kMagic), 4});
  if (uniform) {
    // v2: the pre-policy chunked container, byte-for-byte.
    w.put_u16(kVersionUniform);
    w.put_u8(static_cast<std::uint8_t>(config_.lossy_id));
    w.put_u8(static_cast<std::uint8_t>(config_.lossless_id));
    w.put_u8(static_cast<std::uint8_t>(config_.bound.mode));
    w.put_f64(config_.bound.value);
    w.put_varint(config_.chunk_elements);
    w.put_u32(static_cast<std::uint32_t>(planned.size()));
    for (std::size_t i = 0; i < planned.size(); ++i) {
      write_entry_header(w, planned[i]);
      write_chunk_payloads(w, planned[i], ws.chunk_payloads[i]);
    }
  } else {
    // v3: per-tensor plans in the header.
    w.put_u16(kVersionPlanned);
    w.put_u8(static_cast<std::uint8_t>(config_.lossless_id));
    w.put_varint(config_.chunk_elements);
    w.put_u32(static_cast<std::uint32_t>(planned.size()));
    for (std::size_t i = 0; i < planned.size(); ++i) {
      const PlannedEntry& entry = planned[i];
      write_entry_header(w, entry);
      w.put_u8(static_cast<std::uint8_t>(entry.plan.path));
      if (entry.plan.path == TensorPath::kRaw) {
        w.put_bytes(as_bytes(entry.tensor->span()));
        continue;
      }
      if (entry.plan.path == TensorPath::kSparse) {
        // Policy bound + resolved epsilon (informational, mirrors the lossy
        // layout), then one self-contained sparse payload.
        w.put_u8(static_cast<std::uint8_t>(entry.plan.bound.mode));
        w.put_f64(entry.plan.bound.value);
        w.put_f64(entry.eps);
        const Bytes& payload = ws.chunk_payloads[i][0];
        w.put_varint(payload.size());
        w.put_bytes({payload.data(), payload.size()});
        local.sparse_compressed_bytes += payload.size();
        continue;
      }
      w.put_u8(static_cast<std::uint8_t>(entry.plan.lossy_id));
      w.put_u8(static_cast<std::uint8_t>(entry.plan.bound.mode));
      w.put_f64(entry.plan.bound.value);
      write_chunk_payloads(w, entry, ws.chunk_payloads[i]);
    }
  }
  w.put_blob({lossless_payload.data(), lossless_payload.size()});
  local.lossless_compressed_bytes = lossless_payload.size();

  const ByteSpan frame = w.view();
  Bytes out(frame.begin(), frame.end());
  local.compressed_bytes = out.size();
  local.compress_seconds = timer.seconds();
  if (stats) *stats = local;
  return out;
}

namespace {

struct DecodedEntry {
  std::string name;
  Tensor tensor;
};

/// Reads one entry header (name + validated shape).
std::string read_entry_header(ByteReader& r, Shape* shape,
                              std::size_t* numel) {
  std::string name = r.get_string();
  *numel = read_stream_shape(r, shape, name);
  return name;
}

/// A chunk decode task: payload span -> disjoint destination range.
struct ChunkTask {
  const lossy::LossyCodec* codec;
  ByteSpan payload;
  float* dest;
  std::size_t expected;
};

/// A sparse decode task: one self-contained payload -> a whole tensor.
struct SparseTask {
  ByteSpan payload;
  float* dest;
  std::size_t expected;
};

/// Walk one tensor's chunk table and payload region (validating sizes and
/// the decompression-bomb bound BEFORE any allocation), materialize the
/// output tensor, append its decode tasks, and account its bytes in
/// `local`.
void read_chunked_tensor(ByteReader& r, const std::string& name, Shape shape,
                         std::size_t numel, std::uint64_t chunk_elements,
                         const lossy::LossyCodec& codec,
                         std::vector<DecodedEntry>* entries,
                         std::vector<ChunkTask>* chunks,
                         CompressionStats* local) {
  const std::uint64_t n_chunks = r.get_varint();
  const std::uint64_t expected_chunks =
      ceil_div(numel, static_cast<std::size_t>(chunk_elements));
  if (n_chunks != expected_chunks)
    throw CorruptStream("FedSz: chunk count mismatch for " + name);
  // Walk the whole chunk table and payload region BEFORE allocating the
  // output tensor: every size varint is >= 1 byte and get_bytes() throws
  // on truncation, so a malformed header cannot trigger a large
  // allocation backed by no stream bytes.
  if (n_chunks > r.remaining())
    throw CorruptStream("FedSz: chunk table larger than stream for " + name);
  std::vector<ByteSpan> payloads(n_chunks);
  {
    std::vector<std::uint64_t> sizes(n_chunks);
    std::uint64_t payload_bytes = 0;
    for (std::uint64_t c = 0; c < n_chunks; ++c) {
      sizes[c] = r.get_varint();
      if (sizes[c] > r.remaining())
        throw CorruptStream("FedSz: chunk size exceeds stream for " + name);
      payload_bytes += sizes[c];
    }
    // Even the most compressible legitimate tensor needs payload bytes in
    // proportion to its element count; a header claiming far more is a
    // decompression bomb, rejected before the output tensor is allocated.
    if (numel / kMaxElementsPerPayloadByte >
        static_cast<std::size_t>(payload_bytes))
      throw CorruptStream("FedSz: implausible tensor size for " + name);
    for (std::uint64_t c = 0; c < n_chunks; ++c)
      payloads[c] = r.get_bytes(sizes[c]);
    local->lossy_compressed_bytes +=
        static_cast<std::size_t>(payload_bytes);
    local->lossy_original_bytes += numel * sizeof(float);
  }
  // The payload bytes exist; materialize the output tensor. The declared
  // shape is still attacker-controlled, so a failed allocation is stream
  // corruption, not a caller error.
  try {
    entries->push_back({name, Tensor(std::move(shape))});
  } catch (const std::bad_alloc&) {
    throw CorruptStream("FedSz: declared tensor too large to materialize");
  } catch (const std::length_error&) {
    throw CorruptStream("FedSz: declared tensor too large to materialize");
  }
  float* dest = entries->back().tensor.data();
  for (std::uint64_t c = 0; c < n_chunks; ++c) {
    const std::size_t begin = c * chunk_elements;
    const std::size_t len =
        std::min<std::size_t>(chunk_elements, numel - begin);
    chunks->push_back({&codec, payloads[c], dest + begin, len});
  }
}

/// Legacy v1 container: one opaque blob per lossy tensor, decoded serially.
/// Kept so bitstreams written before the chunked container still decode.
StateDict decompress_v1(ByteReader& r, const lossy::LossyCodec& lossy_codec,
                        const lossless::LosslessCodec& lossless_codec,
                        CompressionStats* local) {
  const std::uint32_t n_lossy = r.get_u32();
  std::vector<DecodedEntry> lossy_entries;
  lossy_entries.reserve(std::min<std::size_t>(n_lossy, r.remaining()));
  for (std::uint32_t i = 0; i < n_lossy; ++i) {
    Shape shape;
    std::size_t numel = 0;
    std::string name = read_entry_header(r, &shape, &numel);
    const Bytes payload = r.get_blob();
    local->lossy_compressed_bytes += payload.size();
    local->lossy_original_bytes += numel * sizeof(float);
    std::vector<float> values =
        lossy_codec.decompress({payload.data(), payload.size()});
    if (values.size() != numel)
      throw CorruptStream("FedSz: decompressed size mismatch for " + name);
    lossy_entries.push_back(
        {std::move(name), Tensor::from_data(std::move(shape),
                                            std::move(values))});
  }
  const Bytes lossless_payload = r.get_blob();
  if (!r.done()) throw CorruptStream("FedSz: trailing bytes");
  const Bytes serialized = lossless_codec.decompress(
      {lossless_payload.data(), lossless_payload.size()});
  const StateDict lossless_partition =
      StateDict::deserialize({serialized.data(), serialized.size()});

  local->lossy_tensors = lossy_entries.size();
  local->lossless_tensors = lossless_partition.size();
  local->lossless_compressed_bytes = lossless_payload.size();
  local->lossless_original_bytes = lossless_partition.total_bytes();
  StateDict out;
  for (DecodedEntry& entry : lossy_entries)
    out.set(entry.name, std::move(entry.tensor));
  for (const auto& [name, tensor] : lossless_partition) out.set(name, tensor);
  return out;
}

}  // namespace

StateDict FedSz::decompress(ByteSpan stream, CompressionStats* stats) const {
  Timer timer;
  CompressionStats local;
  local.compressed_bytes = stream.size();
  ByteReader r(stream);
  ByteSpan magic = r.get_bytes(4);
  if (std::memcmp(magic.data(), kMagic, 4) != 0)
    throw CorruptStream("FedSz: bad magic");
  const std::uint16_t version = r.get_u16();
  if (version != kVersionPlanned && version != kVersionUniform &&
      version != kVersionLegacy)
    throw CorruptStream("FedSz: unsupported version " +
                        std::to_string(version));

  const lossless::LosslessCodec* lossless_codec = nullptr;
  const lossy::LossyCodec* uniform_lossy = nullptr;
  if (version == kVersionPlanned) {
    const std::uint8_t raw_lossless_id = r.get_u8();
    if (!lossless::is_lossless_id(raw_lossless_id))
      throw CorruptStream("FedSz: unknown codec id in stream");
    lossless_codec = &lossless::lossless_codec(
        static_cast<lossless::LosslessId>(raw_lossless_id));
  } else {
    const std::uint8_t raw_lossy_id = r.get_u8();
    const std::uint8_t raw_lossless_id = r.get_u8();
    // Codec-id bytes are stream data: an unknown value is corruption, not an
    // API-misuse InvalidArgument from the registry lookup.
    if (!lossy::is_lossy_id(raw_lossy_id) ||
        !lossless::is_lossless_id(raw_lossless_id))
      throw CorruptStream("FedSz: unknown codec id in stream");
    uniform_lossy =
        &lossy::lossy_codec(static_cast<lossy::LossyId>(raw_lossy_id));
    lossless_codec = &lossless::lossless_codec(
        static_cast<lossless::LosslessId>(raw_lossless_id));
    (void)r.get_u8();   // bound mode (informational)
    (void)r.get_f64();  // bound value (informational)
  }

  if (version == kVersionLegacy) {
    StateDict out = decompress_v1(r, *uniform_lossy, *lossless_codec, &local);
    local.original_bytes = out.total_bytes();
    local.decompress_seconds = timer.seconds();
    if (stats) *stats = local;
    return out;
  }

  const std::uint64_t chunk_elements = r.get_varint();
  if (chunk_elements == 0 ||
      chunk_elements > FedSzConfig::kMaxChunkElements)
    throw CorruptStream("FedSz: chunk size out of range");

  // Pass 1 (serial): walk the container, validate the chunk tables, and
  // pre-allocate every output tensor. Each chunk task then gets a disjoint
  // destination range, so pass 2 can decode all chunks concurrently.
  const std::uint32_t n_planned = r.get_u32();
  std::vector<DecodedEntry> planned_entries;
  planned_entries.reserve(std::min<std::size_t>(n_planned, r.remaining()));
  std::vector<ChunkTask> chunks;
  std::vector<SparseTask> sparse_tasks;
  for (std::uint32_t i = 0; i < n_planned; ++i) {
    Shape shape;
    std::size_t numel = 0;
    std::string name = read_entry_header(r, &shape, &numel);
    if (version == kVersionUniform) {
      (void)r.get_f64();  // resolved absolute epsilon (informational)
      read_chunked_tensor(r, name, std::move(shape), numel, chunk_elements,
                          *uniform_lossy, &planned_entries, &chunks, &local);
      ++local.lossy_tensors;
      continue;
    }
    // v3: per-tensor path tag.
    const std::uint8_t path = r.get_u8();
    if (path == static_cast<std::uint8_t>(TensorPath::kRaw)) {
      // Raw float bytes; the remaining stream bounds the element count, so
      // a corrupt shape cannot force a large unbacked allocation.
      if (numel > r.remaining() / sizeof(float))
        throw CorruptStream("FedSz: raw tensor larger than stream for " +
                            name);
      const ByteSpan raw = r.get_bytes(numel * sizeof(float));
      std::vector<float> values(numel);
      std::memcpy(values.data(), raw.data(), raw.size());
      planned_entries.push_back(
          {std::move(name),
           Tensor::from_data(std::move(shape), std::move(values))});
      ++local.raw_tensors;
      local.raw_original_bytes += numel * sizeof(float);
      continue;
    }
    if (path == static_cast<std::uint8_t>(TensorPath::kSparse)) {
      (void)r.get_u8();   // policy bound mode (informational)
      (void)r.get_f64();  // policy bound value (informational)
      (void)r.get_f64();  // resolved absolute epsilon (informational)
      const std::uint64_t payload_size = r.get_varint();
      if (payload_size > r.remaining())
        throw CorruptStream("FedSz: sparse payload exceeds stream for " +
                            name);
      // Same decompression-bomb rule as the chunked path: the sparse
      // encoder keeps every payload above this floor (bitmap fallback).
      if (numel / sparse::kMaxElementsPerPayloadByte >
          static_cast<std::size_t>(payload_size))
        throw CorruptStream("FedSz: implausible tensor size for " + name);
      const ByteSpan payload = r.get_bytes(payload_size);
      {
        // Peek the payload's own header so a container/payload element-count
        // mismatch fails serially (and the kept tally lands in the stats).
        ByteReader peek(payload);
        if (peek.get_varint() != numel)
          throw CorruptStream(
              "FedSz: sparse payload element count mismatch for " + name);
        (void)peek.get_f64();  // eps
        local.sparse_kept_elements +=
            static_cast<std::size_t>(peek.get_varint());
      }
      try {
        planned_entries.push_back({std::move(name), Tensor(std::move(shape))});
      } catch (const std::bad_alloc&) {
        throw CorruptStream("FedSz: declared tensor too large to materialize");
      } catch (const std::length_error&) {
        throw CorruptStream("FedSz: declared tensor too large to materialize");
      }
      sparse_tasks.push_back(
          {payload, planned_entries.back().tensor.data(), numel});
      ++local.sparse_tensors;
      local.sparse_compressed_bytes += payload_size;
      local.sparse_original_bytes += numel * sizeof(float);
      local.sparse_total_elements += numel;
      continue;
    }
    if (path != static_cast<std::uint8_t>(TensorPath::kLossy))
      throw CorruptStream("FedSz: unknown tensor path in stream for " + name);
    const std::uint8_t raw_lossy_id = r.get_u8();
    if (!lossy::is_lossy_id(raw_lossy_id))
      throw CorruptStream("FedSz: unknown codec id in stream");
    (void)r.get_u8();   // policy bound mode (informational)
    (void)r.get_f64();  // policy bound value (informational)
    (void)r.get_f64();  // resolved absolute epsilon (informational)
    read_chunked_tensor(r, name, std::move(shape), numel, chunk_elements,
                        lossy::lossy_codec(
                            static_cast<lossy::LossyId>(raw_lossy_id)),
                        &planned_entries, &chunks, &local);
    ++local.lossy_tensors;
  }
  const ByteSpan lossless_payload_span = [&r] {
    const std::uint64_t size = r.get_varint();
    return r.get_bytes(size);
  }();
  if (!r.done()) throw CorruptStream("FedSz: trailing bytes");

  // Pass 2: decode chunks and the lossless partition concurrently. The task
  // list is the flat ChunkTask array — no per-chunk closure allocation.
  StateDict lossless_partition;
  run_indexed(chunks.size() + sparse_tasks.size() + 1,
              [lossless_codec, lossless_payload_span, &lossless_partition,
               &chunks, &sparse_tasks](std::size_t t) {
    if (t == 0) {
      const Bytes serialized =
          lossless_codec->decompress(lossless_payload_span);
      lossless_partition =
          StateDict::deserialize({serialized.data(), serialized.size()});
      return;
    }
    if (t > chunks.size()) {
      const SparseTask& task = sparse_tasks[t - 1 - chunks.size()];
      const std::vector<float> values =
          sparse::sparse_codec().decompress(task.payload);
      if (values.size() != task.expected)
        throw CorruptStream("FedSz: decompressed sparse size mismatch");
      std::memcpy(task.dest, values.data(), values.size() * sizeof(float));
      return;
    }
    const ChunkTask& chunk = chunks[t - 1];
    const std::vector<float> values = chunk.codec->decompress(chunk.payload);
    if (values.size() != chunk.expected)
      throw CorruptStream("FedSz: decompressed chunk size mismatch");
    std::memcpy(chunk.dest, values.data(), values.size() * sizeof(float));
  });
  local.lossless_tensors = lossless_partition.size();
  local.lossless_compressed_bytes = lossless_payload_span.size();
  local.lossless_original_bytes = lossless_partition.total_bytes();

  // Reassemble. Entry order is planned entries first, then lossless; FedAvg
  // aggregation matches by name, so order differences from the original are
  // irrelevant — but we keep a deterministic layout.
  StateDict out;
  for (DecodedEntry& entry : planned_entries)
    out.set(entry.name, std::move(entry.tensor));
  for (const auto& [name, tensor] : lossless_partition) out.set(name, tensor);
  local.original_bytes = out.total_bytes();
  local.decompress_seconds = timer.seconds();
  if (stats) *stats = local;
  return out;
}

}  // namespace fedsz::core

#include "core/fedsz.hpp"

#include <algorithm>
#include <cstring>
#include <limits>
#include <new>
#include <stdexcept>

#include "util/bytebuffer.hpp"
#include "util/timer.hpp"

namespace fedsz::core {

namespace {
constexpr char kMagic[4] = {'F', 'S', 'Z', '1'};
/// v1: one opaque blob per lossy tensor, serial-only layout.
constexpr std::uint16_t kVersionLegacy = 1;
/// v2: chunked container — per-tensor resolved bound, chunk count and
/// per-chunk size table, enabling parallel decode at any offset.
constexpr std::uint16_t kVersion = 2;
/// A relative bound over a constant tensor resolves to epsilon 0; clamp to a
/// tiny positive tolerance so the per-chunk absolute bound stays valid (any
/// exact reconstruction satisfies it either way).
constexpr double kMinEpsilon = 1e-300;
/// Decompression-bomb guard: elements a declared tensor may claim per byte
/// of its declared chunk payloads. The most compressible legitimate input
/// (a constant tensor under SZ2, the best of the four codecs) measures
/// ~618 elements/byte at every size, so 2^13 gives ~13x headroom while
/// capping what a malicious header can make the decoder allocate at 32 KiB
/// per stream byte.
constexpr std::uint64_t kMaxElementsPerPayloadByte = 1u << 13;
}  // namespace

bool is_lossy_entry(const std::string& name, std::size_t numel,
                    std::size_t threshold) {
  return name.find("weight") != std::string::npos && numel > threshold;
}

Partition partition_state_dict(const StateDict& dict, std::size_t threshold) {
  Partition partition;
  for (const auto& [name, tensor] : dict) {
    if (is_lossy_entry(name, tensor.numel(), threshold)) {
      partition.lossy_names.push_back(name);
      partition.lossy_bytes += tensor.numel() * sizeof(float);
    } else {
      partition.lossless_names.push_back(name);
      partition.lossless_bytes += tensor.numel() * sizeof(float);
    }
  }
  return partition;
}

FedSz::FedSz(FedSzConfig config) : config_(config) {
  config_.bound.validate();
  if (config_.chunk_elements == 0)
    throw InvalidArgument("FedSz: chunk_elements must be >= 1");
  config_.chunk_elements =
      std::min(config_.chunk_elements, FedSzConfig::kMaxChunkElements);
  // Resolve the codecs eagerly so a bad id fails at construction (and the
  // registry singletons exist before any worker thread touches them).
  (void)lossy::lossy_codec(config_.lossy_id);
  (void)lossless::lossless_codec(config_.lossless_id);
}

std::size_t FedSz::resolved_parallelism() const {
  if (config_.parallelism == 0) return ThreadPool::hardware_threads();
  return config_.parallelism;
}

ThreadPool& FedSz::pool(std::size_t workers) const {
  std::lock_guard lock(pool_mutex_);
  if (!pool_) pool_ = std::make_unique<ThreadPool>(workers);
  return *pool_;
}

void FedSz::run_tasks(std::vector<std::function<void()>>& tasks) const {
  const std::size_t workers = resolved_parallelism();
  if (workers <= 1 || tasks.size() <= 1) {
    for (auto& task : tasks) task();
    return;
  }
  pool(workers).parallel_for(tasks.size(),
                             [&tasks](std::size_t i) { tasks[i](); });
}

Bytes FedSz::compress(const StateDict& dict, CompressionStats* stats) const {
  Timer timer;
  const lossy::LossyCodec& lossy_codec = lossy::lossy_codec(config_.lossy_id);
  const lossless::LosslessCodec& lossless_codec =
      lossless::lossless_codec(config_.lossless_id);

  CompressionStats local;
  local.original_bytes = dict.total_bytes();

  // Algorithm 1: route each entry.
  StateDict lossless_partition;
  struct LossyEntry {
    const std::string* name;
    const Tensor* tensor;
    double eps = 0.0;         // bound resolved over the whole tensor
    std::size_t chunks = 0;
  };
  std::vector<LossyEntry> lossy_entries;
  for (const auto& [name, tensor] : dict) {
    if (is_lossy_entry(name, tensor.numel(), config_.lossy_threshold)) {
      lossy_entries.push_back({&name, &tensor, 0.0, 0});
      local.lossy_original_bytes += tensor.numel() * sizeof(float);
    } else {
      lossless_partition.set(name, tensor);
      local.lossless_original_bytes += tensor.numel() * sizeof(float);
    }
  }

  // Resolve the (possibly relative) bound per tensor BEFORE chunking, so a
  // chunk sees the same absolute tolerance it would in an unchunked stream.
  std::size_t total_chunks = 0;
  for (LossyEntry& entry : lossy_entries) {
    entry.eps =
        std::max(config_.bound.absolute_for(entry.tensor->span()),
                 kMinEpsilon);
    entry.chunks = chunk_count(entry.tensor->numel());
    total_chunks += entry.chunks;
  }
  local.lossy_chunks = total_chunks;

  // One task per lossy chunk plus one for the lossless partition, all on the
  // same queue: metadata compression overlaps the lossy work instead of
  // trailing it. Chunks are compressed out of order but written in order, so
  // the bitstream is identical at every parallelism setting.
  std::vector<std::vector<Bytes>> chunk_payloads(lossy_entries.size());
  Bytes lossless_payload;
  std::vector<std::function<void()>> tasks;
  tasks.reserve(total_chunks + 1);
  tasks.push_back([&lossless_partition, &lossless_codec, &lossless_payload] {
    const Bytes serialized = lossless_partition.serialize();
    lossless_payload =
        lossless_codec.compress({serialized.data(), serialized.size()});
  });
  for (std::size_t i = 0; i < lossy_entries.size(); ++i) {
    const LossyEntry& entry = lossy_entries[i];
    chunk_payloads[i].resize(entry.chunks);
    const FloatSpan values = entry.tensor->span();
    for (std::size_t c = 0; c < entry.chunks; ++c) {
      const std::size_t begin = c * config_.chunk_elements;
      const std::size_t len =
          std::min(config_.chunk_elements, values.size() - begin);
      const FloatSpan chunk = values.subspan(begin, len);
      Bytes* slot = &chunk_payloads[i][c];
      const double eps = entry.eps;
      tasks.push_back([&lossy_codec, chunk, eps, slot] {
        *slot = lossy_codec.compress(chunk, lossy::ErrorBound::absolute(eps));
      });
    }
  }
  run_tasks(tasks);

  ByteWriter w;
  w.put_bytes({reinterpret_cast<const std::uint8_t*>(kMagic), 4});
  w.put_u16(kVersion);
  w.put_u8(static_cast<std::uint8_t>(config_.lossy_id));
  w.put_u8(static_cast<std::uint8_t>(config_.lossless_id));
  w.put_u8(static_cast<std::uint8_t>(config_.bound.mode));
  w.put_f64(config_.bound.value);
  w.put_varint(config_.chunk_elements);
  w.put_u32(static_cast<std::uint32_t>(lossy_entries.size()));

  for (std::size_t i = 0; i < lossy_entries.size(); ++i) {
    const LossyEntry& entry = lossy_entries[i];
    w.put_string(*entry.name);
    const Shape& shape = entry.tensor->shape();
    w.put_u8(static_cast<std::uint8_t>(shape.size()));
    for (const std::int64_t d : shape)
      w.put_varint(static_cast<std::uint64_t>(d));
    w.put_f64(entry.eps);
    w.put_varint(entry.chunks);
    for (const Bytes& payload : chunk_payloads[i]) {
      w.put_varint(payload.size());
      local.lossy_compressed_bytes += payload.size();
    }
    for (const Bytes& payload : chunk_payloads[i])
      w.put_bytes({payload.data(), payload.size()});
  }
  w.put_blob({lossless_payload.data(), lossless_payload.size()});
  local.lossless_compressed_bytes = lossless_payload.size();

  Bytes out = w.finish();
  local.compressed_bytes = out.size();
  local.compress_seconds = timer.seconds();
  if (stats) *stats = local;
  return out;
}

namespace {

struct DecodedEntry {
  std::string name;
  Tensor tensor;
};

/// Reads one lossy-entry header (name + validated shape).
std::string read_entry_header(ByteReader& r, Shape* shape,
                              std::size_t* numel) {
  std::string name = r.get_string();
  *numel = read_stream_shape(r, shape, name);
  return name;
}

/// Legacy v1 container: one opaque blob per lossy tensor, decoded serially.
/// Kept so bitstreams written before the chunked container still decode.
StateDict decompress_v1(ByteReader& r, const lossy::LossyCodec& lossy_codec,
                        const lossless::LosslessCodec& lossless_codec) {
  const std::uint32_t n_lossy = r.get_u32();
  std::vector<DecodedEntry> lossy_entries;
  lossy_entries.reserve(std::min<std::size_t>(n_lossy, r.remaining()));
  for (std::uint32_t i = 0; i < n_lossy; ++i) {
    Shape shape;
    std::size_t numel = 0;
    std::string name = read_entry_header(r, &shape, &numel);
    const Bytes payload = r.get_blob();
    std::vector<float> values =
        lossy_codec.decompress({payload.data(), payload.size()});
    if (values.size() != numel)
      throw CorruptStream("FedSz: decompressed size mismatch for " + name);
    lossy_entries.push_back(
        {std::move(name), Tensor::from_data(std::move(shape),
                                            std::move(values))});
  }
  const Bytes lossless_payload = r.get_blob();
  if (!r.done()) throw CorruptStream("FedSz: trailing bytes");
  const Bytes serialized = lossless_codec.decompress(
      {lossless_payload.data(), lossless_payload.size()});
  const StateDict lossless_partition =
      StateDict::deserialize({serialized.data(), serialized.size()});

  StateDict out;
  for (DecodedEntry& entry : lossy_entries)
    out.set(entry.name, std::move(entry.tensor));
  for (const auto& [name, tensor] : lossless_partition) out.set(name, tensor);
  return out;
}

}  // namespace

StateDict FedSz::decompress(ByteSpan stream, double* seconds) const {
  Timer timer;
  ByteReader r(stream);
  ByteSpan magic = r.get_bytes(4);
  if (std::memcmp(magic.data(), kMagic, 4) != 0)
    throw CorruptStream("FedSz: bad magic");
  const std::uint16_t version = r.get_u16();
  if (version != kVersion && version != kVersionLegacy)
    throw CorruptStream("FedSz: unsupported version " +
                        std::to_string(version));
  const std::uint8_t raw_lossy_id = r.get_u8();
  const std::uint8_t raw_lossless_id = r.get_u8();
  // Codec-id bytes are stream data: an unknown value is corruption, not an
  // API-misuse InvalidArgument from the registry lookup.
  if (!lossy::is_lossy_id(raw_lossy_id) ||
      !lossless::is_lossless_id(raw_lossless_id))
    throw CorruptStream("FedSz: unknown codec id in stream");
  const auto lossy_id = static_cast<lossy::LossyId>(raw_lossy_id);
  const auto lossless_id = static_cast<lossless::LosslessId>(raw_lossless_id);
  (void)r.get_u8();   // bound mode (informational)
  (void)r.get_f64();  // bound value (informational)
  const lossy::LossyCodec& lossy_codec = lossy::lossy_codec(lossy_id);
  const lossless::LosslessCodec& lossless_codec =
      lossless::lossless_codec(lossless_id);

  if (version == kVersionLegacy) {
    StateDict out = decompress_v1(r, lossy_codec, lossless_codec);
    if (seconds) *seconds = timer.seconds();
    return out;
  }

  const std::uint64_t chunk_elements = r.get_varint();
  if (chunk_elements == 0 ||
      chunk_elements > FedSzConfig::kMaxChunkElements)
    throw CorruptStream("FedSz: chunk size out of range");

  // Pass 1 (serial): walk the container, validate the chunk tables, and
  // pre-allocate every output tensor. Each chunk task then gets a disjoint
  // destination range, so pass 2 can decode all chunks concurrently.
  const std::uint32_t n_lossy = r.get_u32();
  std::vector<DecodedEntry> lossy_entries;
  lossy_entries.reserve(std::min<std::size_t>(n_lossy, r.remaining()));
  struct ChunkTask {
    ByteSpan payload;
    float* dest;
    std::size_t expected;
  };
  std::vector<ChunkTask> chunks;
  for (std::uint32_t i = 0; i < n_lossy; ++i) {
    Shape shape;
    std::size_t numel = 0;
    std::string name = read_entry_header(r, &shape, &numel);
    (void)r.get_f64();  // resolved absolute epsilon (informational)
    const std::uint64_t n_chunks = r.get_varint();
    const std::uint64_t expected_chunks =
        ceil_div(numel, static_cast<std::size_t>(chunk_elements));
    if (n_chunks != expected_chunks)
      throw CorruptStream("FedSz: chunk count mismatch for " + name);
    // Walk the whole chunk table and payload region BEFORE allocating the
    // output tensor: every size varint is >= 1 byte and get_bytes() throws
    // on truncation, so a malformed header cannot trigger a large
    // allocation backed by no stream bytes.
    if (n_chunks > r.remaining())
      throw CorruptStream("FedSz: chunk table larger than stream for " +
                          name);
    std::vector<ByteSpan> payloads(n_chunks);
    {
      std::vector<std::uint64_t> sizes(n_chunks);
      std::uint64_t payload_bytes = 0;
      for (std::uint64_t c = 0; c < n_chunks; ++c) {
        sizes[c] = r.get_varint();
        if (sizes[c] > r.remaining())
          throw CorruptStream("FedSz: chunk size exceeds stream for " + name);
        payload_bytes += sizes[c];
      }
      // Even the most compressible legitimate tensor needs payload bytes in
      // proportion to its element count; a header claiming far more is a
      // decompression bomb, rejected before the output tensor is allocated.
      if (numel / kMaxElementsPerPayloadByte >
          static_cast<std::size_t>(payload_bytes))
        throw CorruptStream("FedSz: implausible tensor size for " + name);
      for (std::uint64_t c = 0; c < n_chunks; ++c)
        payloads[c] = r.get_bytes(sizes[c]);
    }
    // The payload bytes exist; materialize the output tensor. The declared
    // shape is still attacker-controlled, so a failed allocation is stream
    // corruption, not a caller error.
    try {
      lossy_entries.push_back({std::move(name), Tensor(std::move(shape))});
    } catch (const std::bad_alloc&) {
      throw CorruptStream("FedSz: declared tensor too large to materialize");
    } catch (const std::length_error&) {
      throw CorruptStream("FedSz: declared tensor too large to materialize");
    }
    float* dest = lossy_entries.back().tensor.data();
    for (std::uint64_t c = 0; c < n_chunks; ++c) {
      const std::size_t begin = c * chunk_elements;
      const std::size_t len =
          std::min<std::size_t>(chunk_elements, numel - begin);
      chunks.push_back({payloads[c], dest + begin, len});
    }
  }
  const ByteSpan lossless_payload_span = [&r] {
    const std::uint64_t size = r.get_varint();
    return r.get_bytes(size);
  }();
  if (!r.done()) throw CorruptStream("FedSz: trailing bytes");

  // Pass 2: decode chunks and the lossless partition concurrently.
  StateDict lossless_partition;
  std::vector<std::function<void()>> tasks;
  tasks.reserve(chunks.size() + 1);
  tasks.push_back([&lossless_codec, lossless_payload_span,
                   &lossless_partition] {
    const Bytes serialized = lossless_codec.decompress(lossless_payload_span);
    lossless_partition =
        StateDict::deserialize({serialized.data(), serialized.size()});
  });
  for (const ChunkTask& chunk : chunks) {
    tasks.push_back([&lossy_codec, chunk] {
      const std::vector<float> values = lossy_codec.decompress(chunk.payload);
      if (values.size() != chunk.expected)
        throw CorruptStream("FedSz: decompressed chunk size mismatch");
      std::memcpy(chunk.dest, values.data(), values.size() * sizeof(float));
    });
  }
  run_tasks(tasks);

  // Reassemble. Entry order is lossy entries first, then lossless; FedAvg
  // aggregation matches by name, so order differences from the original are
  // irrelevant — but we keep a deterministic layout.
  StateDict out;
  for (DecodedEntry& entry : lossy_entries)
    out.set(entry.name, std::move(entry.tensor));
  for (const auto& [name, tensor] : lossless_partition) out.set(name, tensor);
  if (seconds) *seconds = timer.seconds();
  return out;
}

}  // namespace fedsz::core

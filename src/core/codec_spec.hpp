// Spec-string codec construction: one grammar that names every update-codec
// configuration, used by make_codec_by_name, the bench --codec flag and the
// examples, so there is a single construction path from text to codec.
//
//   spec     := family [ ":" kv ("," kv)* ]
//   family   := "fedsz" | "fedsz-parallel" | "sparse" | "identity"
//               | "uncompressed"
//   kv       := key "=" value
//   keys     := lossy=sz2|sz3|szx|zfp        (fedsz families only)
//               lossless=blosc-lz|zlib|zstd|gzip|xz
//               eb=[rel:|abs:]FLOAT          (bare FLOAT means rel)
//               policy=threshold|layerwise|schedule[:FACTOR]|magnitude
//                      |gradaware[:BETA]     (BETA = sensitivity-EMA
//                                             smoothing in (0,1))
//               sparsity=adaptive|FRACTION   (sparse family only: fraction
//                                             of elements dropped, (0,1);
//                                             adaptive = mean+stddev
//                                             magnitude threshold)
//               bits=adaptive|N              (sparse family only: survivor
//                                             quantization width cap 1..31;
//                                             never loosens the bound)
//               chunk=N[k|m]                 (elements per lossy chunk)
//               threads=N                    (0 = one per hardware thread)
//               threshold=N                  (Algorithm 1 lossy threshold)
//               downlink=SPEC                (server->client broadcast codec;
//                                             inner options separate with ';'
//                                             since ',' ends the outer pair)
//               downmode=full|delta          (broadcast whole model or the
//                                             per-client acknowledged delta)
//               ef=on|off                    (per-client uplink error
//                                             feedback)
//               topology=flat|hier:<N>[x<M>...]
//                                            (aggregation tree: flat star,
//                                             or fan-ins per tier bottom-up
//                                             — hier:32x16 = cohorts of 32
//                                             under tier-1 edges, 16 edges
//                                             per tier-2 node)
//               backhaul=SPEC                (partial re-encode codec shared
//                                             by every tier; inner options
//                                             ';'-separated like downlink)
//               backhaul<k>=SPEC             (per-tier override, 1-based:
//                                             backhaul2= recompresses only
//                                             tier 2's uplink)
//               edgemode=sync|buffered:<K>   (interior ship discipline:
//                                             barrier, or FedBuff-style
//                                             after K folds)
//               edgeef=on|off                (edge-side error feedback on
//                                             lossy backhauls)
//               shard=contiguous|shuffled    (client->edge assignment;
//                                             shuffled is a seeded
//                                             permutation)
//               transport=inproc|tcp:<port>  (how hier edges run: simulated
//                                             in-process, or each edge
//                                             cohort as its own process
//                                             over TCP; tcp:0 picks a free
//                                             port)
//               checkpoint=<path>:<K>        (atomically checkpoint the
//                                             coordinator to <path> every K
//                                             rounds; the path may not
//                                             contain ',' or ';')
//               data=PART[+PART...]          (client data sharding, '+'-
//                                             composable: iid (the default
//                                             deal), dirichlet:<alpha>
//                                             label skew, sizeskew:<s>
//                                             power-law per-client sample
//                                             counts — e.g.
//                                             data=dirichlet:0.5+sizeskew:1.2)
//               population=PRESET[:OPT;...]  (client population: device
//                                             classes + diurnal availability
//                                             driving per-round eligibility;
//                                             presets mixed|mobile|iot_fleet
//                                             |uniform|custom, options
//                                             ';'-separated — see
//                                             core/fl/population.hpp)
//
// The sparse family reroutes every would-be-lossy tensor through the
// sparse-quantization codec (threshold + adaptive-width quantization) at
// the spec's bound; it takes every key EXCEPT lossy= and composes with any
// policy= (the policy picks the bound, sparse picks the representation),
// e.g. "sparse:eb=rel:1e-2,sparsity=0.9,bits=8,policy=gradaware:0.5,ef=on".
//
// The identity family takes ONLY the comm keys (an uncompressed uplink
// can still configure the broadcast, error feedback and topology), e.g.
// "identity:downlink=fedsz:eb=rel:1e-3,ef=on".
//
// Examples:
//   "fedsz"
//   "fedsz:eb=rel:1e-3"
//   "fedsz:lossy=sz3,eb=rel:1e-3,lossless=zstd,policy=schedule,chunk=64k"
//   "fedsz:eb=rel:1e-2,downlink=fedsz:eb=rel:1e-3;lossless=zstd,ef=on"
//   "identity"
//
// parse_codec_spec() -> CodecSpec (throws InvalidArgument listing the valid
// options on any unknown family/key/value); format_codec_spec() renders the
// canonical normalized form ("fedsz-parallel" normalizes to threads=0,
// "uncompressed" to "identity", chunk suffixes to element counts), so
// format(parse(s)) is a normal form and format∘parse is idempotent.
#pragma once

#include <string>

#include "core/update_codec.hpp"

namespace fedsz::core {

struct CodecSpec {
  /// True for the uncompressed baseline; every other field is ignored.
  bool identity = false;
  /// True for the sparse family: would-be-lossy tensors ride the sparse
  /// path (lossy_id is ignored; sparsity/sparse_bits apply).
  bool sparse = false;
  /// Sparse keep-mask knob (sparsity= key): fraction of elements dropped in
  /// (0, 1), or 0 for the adaptive mean+stddev magnitude threshold.
  double sparsity = 0.0;
  /// Survivor quantization width cap (bits= key), 1..31; 0 = adaptive.
  unsigned sparse_bits = 0;
  lossy::LossyId lossy_id = lossy::LossyId::kSz2;
  lossless::LosslessId lossless_id = lossless::LosslessId::kBloscLz;
  lossy::ErrorBound bound = lossy::ErrorBound::relative(1e-2);
  /// One of compression_policy_names().
  std::string policy = "threshold";
  /// True when the spec spelled out `policy=` (an explicit policy must not
  /// be overridden by caller-side defaults in make_codec_by_name).
  bool policy_explicit = false;
  /// Per-round multiplier for policy=schedule (the optional :FACTOR arg).
  double schedule_factor = 0.7;
  /// Sensitivity-EMA smoothing for policy=gradaware (the optional :BETA
  /// arg), in (0, 1).
  double gradaware_beta = 0.5;
  std::size_t chunk_elements = 64 * 1024;
  /// Chunk-pipeline workers; 0 = one per hardware thread.
  std::size_t threads = 1;
  std::size_t lossy_threshold = 1000;
  /// Downlink broadcast codec spec in canonical (comma-separated) form —
  /// directly parseable by parse_codec_spec/make_codec. Empty means the
  /// broadcast is free and lossless (the uplink-only comm model). In the
  /// composite string the inner options are ';'-separated; parse/format
  /// translate.
  std::string downlink;
  /// Broadcast mode when `downlink` is set (downmode=delta).
  bool downlink_delta = false;
  /// Per-client uplink error feedback (ef=on).
  bool error_feedback = false;
  /// Aggregation topology (topology= comm key): empty = flat star (the
  /// default); otherwise the per-tier fan-ins bottom-up
  /// (topology=hier:<N>[x<M>...] — hier:8 is the one-tier sugar).
  std::vector<std::size_t> hier_tiers;
  /// Default partial re-encode codec spec for every tier, in canonical
  /// form (backhaul= comm key; inner options ';'-separated like downlink).
  /// Empty means partials ship through the identity codec.
  std::string backhaul;
  /// Per-tier overrides (backhaul<k>= comm keys): entry k-1 non-empty
  /// overrides `backhaul` for tier k. Never longer than the last override
  /// (no trailing empties), so format∘parse stays idempotent.
  std::vector<std::string> tier_backhauls;
  /// Interior ship discipline (edgemode=buffered:<K>): ship a node's
  /// partial after min(K, expected) folds instead of the full barrier.
  bool edge_buffered = false;
  std::size_t edge_buffer = 0;
  /// Edge-side error feedback on lossy backhauls (edgeef=on).
  bool edge_error_feedback = false;
  /// Seeded-shuffle client->edge sharding (shard=shuffled).
  bool shard_shuffled = false;
  /// Wire transport for hierarchical edges (transport= comm key), stored
  /// canonically: empty = in-process simulation (the default; an explicit
  /// transport=inproc normalizes to empty), or "tcp:<port>" — each edge
  /// cohort runs as its own process speaking the versioned frame protocol
  /// to the root (port 0 = pick a free port).
  std::string transport;
  /// Checkpoint/resume (checkpoint=<path>:<K> comm key): empty path = no
  /// checkpointing; otherwise the coordinator atomically rewrites `path`
  /// every `checkpoint_every` completed rounds.
  std::string checkpoint_path;
  std::size_t checkpoint_every = 0;
  /// Client data sharding (data= comm key): 0 = IID deal (the default),
  /// > 0 = Dirichlet label skew with this concentration alpha.
  double dirichlet_alpha = 0.0;
  /// Power-law per-client sample-count skew exponent (data=sizeskew:<s>):
  /// 0 = off, > 0 = shard at skew rank r keeps fraction (r+1)^-s of its
  /// samples (minimum one). Composes with dirichlet_alpha.
  double sizeskew_s = 0.0;
  /// Client population spec (population= comm key) in canonical form —
  /// directly parseable by parse_population_spec. Empty = the flat,
  /// always-available pool.
  std::string population;

  /// True when any comm-level key (downlink/downmode/ef/topology/backhaul/
  /// backhaul<k>/edgemode/edgeef/shard/transport/checkpoint/data/
  /// population) is set — the keys that configure an
  /// FL run rather than a codec. The single predicate behind every "this
  /// spec cannot carry comm keys" rejection (nested downlink/backhaul
  /// specs, make_codec_by_name), so a future comm key only needs adding
  /// here.
  bool has_comm_keys() const {
    return !downlink.empty() || downlink_delta || error_feedback ||
           !hier_tiers.empty() || !backhaul.empty() ||
           !tier_backhauls.empty() || edge_buffered ||
           edge_error_feedback || shard_shuffled || !transport.empty() ||
           !checkpoint_path.empty() || dirichlet_alpha > 0.0 ||
           sizeskew_s > 0.0 || !population.empty();
  }
};

/// Parse `spec` against library defaults. Throws InvalidArgument on
/// malformed input, naming the valid families/keys/values.
CodecSpec parse_codec_spec(const std::string& spec);

/// Parse `spec` with explicit defaults for every omitted key (how
/// make_codec_by_name folds a caller-supplied FedSzConfig in).
CodecSpec parse_codec_spec(const std::string& spec, CodecSpec defaults);

/// Canonical normalized rendering: "identity", or "fedsz:" followed by
/// every key in fixed order with canonical value spelling.
std::string format_codec_spec(const CodecSpec& spec);

/// Lower a (non-identity) spec to the FedSzConfig it describes, including
/// the constructed CompressionPolicy (null for policy=threshold, which is
/// FedSz's byte-stable default).
FedSzConfig codec_spec_config(const CodecSpec& spec);

/// Build the update codec a spec describes.
UpdateCodecPtr make_codec(const CodecSpec& spec);

/// Parse `spec` and build the codec it describes in one step — the
/// preferred construction path for call sites that hold a spec STRING
/// (benches, tests, tools). Throws InvalidArgument when the spec carries
/// comm keys: a bare codec cannot honor downlink/topology/... settings,
/// and dropping them silently would hide a misconfigured run.
UpdateCodecPtr make_codec(const std::string& spec);

}  // namespace fedsz::core

// FL-compression baselines from the paper's related-work taxonomy
// (Section III-C) and the composition the paper argues for: FedSZ is a
// "last-step" compressor, so gradient sparsification / quantization outputs
// can be FedSZ-compressed further.
//
//   TopKCodec      magnitude sparsification: per lossy-eligible tensor keep
//                  the top-K fraction of entries (indices + values), zero
//                  the rest; metadata ships losslessly.
//   QsgdCodec      QSGD-style stochastic uniform quantization to s levels
//                  per tensor (unbiased; norm + signs + level indices).
//   ComposedCodec  any baseline followed by a FedSZ pass over its dense
//                  reconstruction — the paper's "works in concert" claim.
#pragma once

#include "core/update_codec.hpp"
#include "util/rng.hpp"

namespace fedsz::core {

struct TopKConfig {
  double keep_fraction = 0.1;     // fraction of entries kept per tensor
  std::size_t lossy_threshold = 1000;  // same eligibility rule as FedSZ
};

class TopKCodec final : public UpdateCodec {
 public:
  using UpdateCodec::encode;
  explicit TopKCodec(TopKConfig config);
  std::string name() const override { return "topk"; }
  Encoded encode(const StateDict& dict,
                 const EncodeContext& ctx) const override;
  StateDict decode(ByteSpan payload, CompressionStats* stats) const override;

 private:
  TopKConfig config_;
};

struct QsgdConfig {
  unsigned levels = 64;           // quantization levels per tensor
  std::size_t lossy_threshold = 1000;
  std::uint64_t seed = 99;        // stochastic rounding stream
};

class QsgdCodec final : public UpdateCodec {
 public:
  using UpdateCodec::encode;
  explicit QsgdCodec(QsgdConfig config);
  std::string name() const override { return "qsgd"; }
  Encoded encode(const StateDict& dict,
                 const EncodeContext& ctx) const override;
  StateDict decode(ByteSpan payload, CompressionStats* stats) const override;

 private:
  QsgdConfig config_;
};

/// first(dict) -> reconstructed dict -> second(reconstructed). Decode runs
/// in reverse. Byte accounting reports the final payload against the
/// original update size.
class ComposedCodec final : public UpdateCodec {
 public:
  using UpdateCodec::encode;
  ComposedCodec(UpdateCodecPtr first, UpdateCodecPtr second);
  std::string name() const override;
  Encoded encode(const StateDict& dict,
                 const EncodeContext& ctx) const override;
  StateDict decode(ByteSpan payload, CompressionStats* stats) const override;

 private:
  UpdateCodecPtr first_;
  UpdateCodecPtr second_;
};

UpdateCodecPtr make_topk_codec(TopKConfig config = {});
UpdateCodecPtr make_qsgd_codec(QsgdConfig config = {});
UpdateCodecPtr make_composed_codec(UpdateCodecPtr first,
                                   UpdateCodecPtr second);

}  // namespace fedsz::core

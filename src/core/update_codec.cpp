#include "core/update_codec.hpp"

#include "core/codec_spec.hpp"
#include "util/timer.hpp"

namespace fedsz::core {

UpdateCodec::Encoded IdentityCodec::encode(const StateDict& dict,
                                           const EncodeContext&) const {
  Timer timer;
  Encoded encoded;
  encoded.payload = dict.serialize();
  // "Original" is what an uncompressed transfer would ship: the serialized
  // update (tensor payloads plus name/shape headers). Ratio is exactly 1.
  encoded.stats.original_bytes = encoded.payload.size();
  encoded.stats.compressed_bytes = encoded.payload.size();
  encoded.stats.lossless_original_bytes = encoded.stats.original_bytes;
  encoded.stats.lossless_compressed_bytes = encoded.payload.size();
  encoded.stats.lossless_tensors = dict.size();
  encoded.stats.compress_seconds = timer.seconds();
  return encoded;
}

StateDict IdentityCodec::decode(ByteSpan payload,
                                CompressionStats* stats) const {
  Timer timer;
  StateDict dict = StateDict::deserialize(payload);
  if (stats) {
    *stats = CompressionStats{};
    stats->compressed_bytes = payload.size();
    stats->original_bytes = dict.total_bytes();
    stats->lossless_tensors = dict.size();
    stats->decompress_seconds = timer.seconds();
  }
  return dict;
}

std::string FedSzCodec::name() const {
  return "fedsz-" + lossy::lossy_codec(fedsz_.config().lossy_id).name();
}

UpdateCodec::Encoded FedSzCodec::encode(const StateDict& dict,
                                        const EncodeContext& ctx) const {
  Encoded encoded;
  encoded.payload = fedsz_.compress(dict, &encoded.stats, ctx);
  return encoded;
}

StateDict FedSzCodec::decode(ByteSpan payload, CompressionStats* stats) const {
  return fedsz_.decompress(payload, stats);
}

UpdateCodecPtr make_identity_codec() {
  return std::make_shared<IdentityCodec>();
}

UpdateCodecPtr make_fedsz_codec(FedSzConfig config) {
  return std::make_shared<FedSzCodec>(std::move(config));
}

UpdateCodecPtr make_parallel_fedsz_codec(std::size_t parallelism,
                                         FedSzConfig config) {
  config.parallelism = parallelism;
  return std::make_shared<FedSzCodec>(std::move(config));
}

UpdateCodecPtr make_codec_by_name(const std::string& name,
                                  FedSzConfig config) {
  // Seed the spec defaults from the caller's config so bare families keep
  // behaving exactly as before the spec grammar existed.
  CodecSpec defaults;
  defaults.lossy_id = config.lossy_id;
  defaults.lossless_id = config.lossless_id;
  defaults.bound = config.bound;
  defaults.lossy_threshold = config.lossy_threshold;
  defaults.chunk_elements = config.chunk_elements;
  defaults.threads = config.parallelism;
  const CodecSpec spec = parse_codec_spec(name, defaults);
  // Comm-level keys configure an FL run, not a codec; building only the
  // uplink codec here would silently drop them. Callers that support them
  // parse the spec themselves and fold the comm keys into an FlRunConfig
  // via apply_comm_spec.
  if (spec.has_comm_keys())
    throw InvalidArgument(
        "make_codec_by_name: spec carries comm-level keys (downlink/"
        "downmode/ef/topology/backhaul) this entry point cannot honor — "
        "parse the spec and use FlRunConfig::apply_comm_spec, or drop the "
        "keys");
  if (spec.identity) return make_identity_codec();
  // A caller-constructed policy object wins only when the spec did not
  // spell out `policy=` at all; an explicit `policy=threshold` request
  // stays the byte-stable Algorithm-1 default.
  FedSzConfig resolved = codec_spec_config(spec);
  if (!resolved.policy && !spec.policy_explicit && config.policy)
    resolved.policy = config.policy;
  return make_fedsz_codec(std::move(resolved));
}

}  // namespace fedsz::core

#include "core/update_codec.hpp"

#include "util/timer.hpp"

namespace fedsz::core {

UpdateCodec::Encoded IdentityCodec::encode(const StateDict& dict) const {
  Timer timer;
  Encoded encoded;
  encoded.payload = dict.serialize();
  // "Original" is what an uncompressed transfer would ship: the serialized
  // update (tensor payloads plus name/shape headers). Ratio is exactly 1.
  encoded.stats.original_bytes = encoded.payload.size();
  encoded.stats.compressed_bytes = encoded.payload.size();
  encoded.stats.lossless_original_bytes = encoded.stats.original_bytes;
  encoded.stats.lossless_compressed_bytes = encoded.payload.size();
  encoded.stats.compress_seconds = timer.seconds();
  return encoded;
}

StateDict IdentityCodec::decode(ByteSpan payload,
                                double* decode_seconds) const {
  Timer timer;
  StateDict dict = StateDict::deserialize(payload);
  if (decode_seconds) *decode_seconds = timer.seconds();
  return dict;
}

std::string FedSzCodec::name() const {
  return "fedsz-" + lossy::lossy_codec(fedsz_.config().lossy_id).name();
}

UpdateCodec::Encoded FedSzCodec::encode(const StateDict& dict) const {
  Encoded encoded;
  encoded.payload = fedsz_.compress(dict, &encoded.stats);
  return encoded;
}

StateDict FedSzCodec::decode(ByteSpan payload, double* decode_seconds) const {
  return fedsz_.decompress(payload, decode_seconds);
}

UpdateCodecPtr make_identity_codec() {
  return std::make_shared<IdentityCodec>();
}

UpdateCodecPtr make_fedsz_codec(FedSzConfig config) {
  return std::make_shared<FedSzCodec>(config);
}

UpdateCodecPtr make_parallel_fedsz_codec(std::size_t parallelism,
                                         FedSzConfig config) {
  config.parallelism = parallelism;
  return std::make_shared<FedSzCodec>(config);
}

UpdateCodecPtr make_codec_by_name(const std::string& name,
                                  FedSzConfig config) {
  if (name == "identity" || name == "uncompressed")
    return make_identity_codec();
  if (name == "fedsz") return make_fedsz_codec(config);
  if (name == "fedsz-parallel") return make_parallel_fedsz_codec(0, config);
  throw InvalidArgument("make_codec_by_name: unknown codec '" + name +
                        "' (expected identity, uncompressed, fedsz or "
                        "fedsz-parallel)");
}

}  // namespace fedsz::core

#include "core/baselines.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>

#include "core/fedsz.hpp"
#include "util/bitstream.hpp"
#include "util/bytebuffer.hpp"
#include "util/timer.hpp"

namespace fedsz::core {

namespace {

constexpr char kTopKMagic[4] = {'T', 'P', 'K', '1'};
constexpr char kQsgdMagic[4] = {'Q', 'S', 'G', '1'};

void write_magic(ByteWriter& w, const char magic[4]) {
  w.put_bytes({reinterpret_cast<const std::uint8_t*>(magic), 4});
}

void check_magic(ByteReader& r, const char magic[4], const char* codec) {
  ByteSpan seen = r.get_bytes(4);
  if (std::memcmp(seen.data(), magic, 4) != 0)
    throw CorruptStream(std::string(codec) + ": bad magic");
}

}  // namespace

// ---- Top-K sparsification ----

TopKCodec::TopKCodec(TopKConfig config) : config_(config) {
  if (!(config_.keep_fraction > 0.0) || config_.keep_fraction > 1.0)
    throw InvalidArgument("TopKCodec: keep_fraction must be in (0, 1]");
}

UpdateCodec::Encoded TopKCodec::encode(const StateDict& dict,
                                       const EncodeContext&) const {
  Timer timer;
  ByteWriter w;
  write_magic(w, kTopKMagic);
  StateDict dense_partition;  // sub-threshold tensors, shipped losslessly
  std::uint32_t n_sparse = 0;
  for (const auto& [name, tensor] : dict)
    if (is_lossy_entry(name, tensor.numel(), config_.lossy_threshold))
      ++n_sparse;
  w.put_u32(n_sparse);
  for (const auto& [name, tensor] : dict) {
    if (!is_lossy_entry(name, tensor.numel(), config_.lossy_threshold)) {
      dense_partition.set(name, tensor);
      continue;
    }
    const std::size_t n = tensor.numel();
    const auto keep = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::llround(
               config_.keep_fraction * static_cast<double>(n))));
    // Partial-select the top-|keep| magnitudes.
    std::vector<std::uint32_t> order(n);
    for (std::size_t i = 0; i < n; ++i)
      order[i] = static_cast<std::uint32_t>(i);
    std::nth_element(order.begin(), order.begin() + (keep - 1), order.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                       return std::fabs(tensor[a]) > std::fabs(tensor[b]);
                     });
    order.resize(keep);
    std::sort(order.begin(), order.end());  // delta-encodable indices

    w.put_string(name);
    const Shape& shape = tensor.shape();
    w.put_u8(static_cast<std::uint8_t>(shape.size()));
    for (const std::int64_t d : shape)
      w.put_varint(static_cast<std::uint64_t>(d));
    w.put_varint(keep);
    std::uint32_t previous = 0;
    for (const std::uint32_t idx : order) {
      w.put_varint(idx - previous);  // delta encoding
      previous = idx;
    }
    for (const std::uint32_t idx : order) w.put_f32(tensor[idx]);
  }
  w.put_blob({});  // reserved
  const Bytes dense = dense_partition.serialize();
  w.put_blob({dense.data(), dense.size()});

  Encoded encoded;
  encoded.payload = w.finish();
  encoded.stats.original_bytes = dict.serialize().size();
  encoded.stats.compressed_bytes = encoded.payload.size();
  encoded.stats.compress_seconds = timer.seconds();
  return encoded;
}

StateDict TopKCodec::decode(ByteSpan payload, CompressionStats* stats) const {
  Timer timer;
  ByteReader r(payload);
  check_magic(r, kTopKMagic, "topk");
  const std::uint32_t n_sparse = r.get_u32();
  StateDict out;
  for (std::uint32_t t = 0; t < n_sparse; ++t) {
    const std::string name = r.get_string();
    const std::uint8_t rank = r.get_u8();
    Shape shape;
    for (std::uint8_t d = 0; d < rank; ++d)
      shape.push_back(static_cast<std::int64_t>(r.get_varint()));
    Tensor tensor(shape);
    const auto keep = static_cast<std::size_t>(r.get_varint());
    std::vector<std::uint32_t> indices(keep);
    std::uint32_t cursor = 0;
    for (auto& idx : indices) {
      cursor += static_cast<std::uint32_t>(r.get_varint());
      if (cursor >= tensor.numel())
        throw CorruptStream("topk: index out of range");
      idx = cursor;
    }
    for (const std::uint32_t idx : indices) tensor[idx] = r.get_f32();
    out.set(name, std::move(tensor));
  }
  (void)r.get_blob();  // reserved
  const Bytes dense = r.get_blob();
  const StateDict dense_partition =
      StateDict::deserialize({dense.data(), dense.size()});
  for (const auto& [name, tensor] : dense_partition) out.set(name, tensor);
  if (stats) {
    *stats = CompressionStats{};
    stats->compressed_bytes = payload.size();
    stats->original_bytes = out.total_bytes();
    stats->decompress_seconds = timer.seconds();
  }
  return out;
}

// ---- QSGD-style stochastic quantization ----

QsgdCodec::QsgdCodec(QsgdConfig config) : config_(config) {
  if (config_.levels < 2 || config_.levels > 65535)
    throw InvalidArgument("QsgdCodec: levels must be in [2, 65535]");
}

UpdateCodec::Encoded QsgdCodec::encode(const StateDict& dict,
                                       const EncodeContext&) const {
  Timer timer;
  Rng rng(config_.seed);
  ByteWriter w;
  write_magic(w, kQsgdMagic);
  w.put_u16(static_cast<std::uint16_t>(config_.levels));
  StateDict dense_partition;
  std::uint32_t n_quantized = 0;
  for (const auto& [name, tensor] : dict)
    if (is_lossy_entry(name, tensor.numel(), config_.lossy_threshold))
      ++n_quantized;
  w.put_u32(n_quantized);
  for (const auto& [name, tensor] : dict) {
    if (!is_lossy_entry(name, tensor.numel(), config_.lossy_threshold)) {
      dense_partition.set(name, tensor);
      continue;
    }
    float max_abs = 0.0f;
    for (std::size_t i = 0; i < tensor.numel(); ++i)
      max_abs = std::max(max_abs, std::fabs(tensor[i]));
    w.put_string(name);
    const Shape& shape = tensor.shape();
    w.put_u8(static_cast<std::uint8_t>(shape.size()));
    for (const std::int64_t d : shape)
      w.put_varint(static_cast<std::uint64_t>(d));
    w.put_f32(max_abs);
    // Stochastic rounding of |x|/max to `levels` buckets keeps the
    // estimator unbiased (Alistarh et al. 2017); sign packs with the level.
    const double scale = max_abs > 0.0f ? config_.levels / max_abs : 0.0;
    BitWriter bits;
    const unsigned level_bits = std::bit_width(config_.levels);
    for (std::size_t i = 0; i < tensor.numel(); ++i) {
      const float v = tensor[i];
      const double exact = std::fabs(v) * scale;
      auto level = static_cast<std::uint32_t>(exact);
      if (rng.uniform() < exact - static_cast<double>(level)) ++level;
      bits.write_bit(v < 0.0f);
      bits.write(level, level_bits);
    }
    w.put_blob(bits.finish());
  }
  const Bytes dense = dense_partition.serialize();
  w.put_blob({dense.data(), dense.size()});

  Encoded encoded;
  encoded.payload = w.finish();
  encoded.stats.original_bytes = dict.serialize().size();
  encoded.stats.compressed_bytes = encoded.payload.size();
  encoded.stats.compress_seconds = timer.seconds();
  return encoded;
}

StateDict QsgdCodec::decode(ByteSpan payload, CompressionStats* stats) const {
  Timer timer;
  ByteReader r(payload);
  check_magic(r, kQsgdMagic, "qsgd");
  const unsigned levels = r.get_u16();
  if (levels < 2) throw CorruptStream("qsgd: bad level count");
  const std::uint32_t n_quantized = r.get_u32();
  const unsigned level_bits = std::bit_width(levels);
  StateDict out;
  for (std::uint32_t t = 0; t < n_quantized; ++t) {
    const std::string name = r.get_string();
    const std::uint8_t rank = r.get_u8();
    Shape shape;
    for (std::uint8_t d = 0; d < rank; ++d)
      shape.push_back(static_cast<std::int64_t>(r.get_varint()));
    const float max_abs = r.get_f32();
    const Bytes packed = r.get_blob();
    BitReader bits({packed.data(), packed.size()});
    Tensor tensor(shape);
    const float step = levels > 0 ? max_abs / static_cast<float>(levels)
                                  : 0.0f;
    for (std::size_t i = 0; i < tensor.numel(); ++i) {
      const bool negative = bits.read_bit();
      const auto level = static_cast<float>(bits.read(level_bits));
      tensor[i] = (negative ? -1.0f : 1.0f) * level * step;
    }
    out.set(name, std::move(tensor));
  }
  const Bytes dense = r.get_blob();
  const StateDict dense_partition =
      StateDict::deserialize({dense.data(), dense.size()});
  for (const auto& [name, tensor] : dense_partition) out.set(name, tensor);
  if (stats) {
    *stats = CompressionStats{};
    stats->compressed_bytes = payload.size();
    stats->original_bytes = out.total_bytes();
    stats->decompress_seconds = timer.seconds();
  }
  return out;
}

// ---- composition ----

ComposedCodec::ComposedCodec(UpdateCodecPtr first, UpdateCodecPtr second)
    : first_(std::move(first)), second_(std::move(second)) {
  if (!first_ || !second_)
    throw InvalidArgument("ComposedCodec: null stage");
}

std::string ComposedCodec::name() const {
  return first_->name() + "+" + second_->name();
}

UpdateCodec::Encoded ComposedCodec::encode(const StateDict& dict,
                                           const EncodeContext& ctx) const {
  Timer timer;
  Encoded first_pass = first_->encode(dict, ctx);
  const StateDict intermediate = first_->decode(
      {first_pass.payload.data(), first_pass.payload.size()});
  Encoded second_pass = second_->encode(intermediate, ctx);
  Encoded encoded;
  encoded.payload = std::move(second_pass.payload);
  encoded.stats.original_bytes = first_pass.stats.original_bytes;
  encoded.stats.compressed_bytes = encoded.payload.size();
  encoded.stats.compress_seconds = timer.seconds();
  return encoded;
}

StateDict ComposedCodec::decode(ByteSpan payload,
                                CompressionStats* stats) const {
  return second_->decode(payload, stats);
}

UpdateCodecPtr make_topk_codec(TopKConfig config) {
  return std::make_shared<TopKCodec>(config);
}

UpdateCodecPtr make_qsgd_codec(QsgdConfig config) {
  return std::make_shared<QsgdCodec>(config);
}

UpdateCodecPtr make_composed_codec(UpdateCodecPtr first,
                                   UpdateCodecPtr second) {
  return std::make_shared<ComposedCodec>(std::move(first), std::move(second));
}

}  // namespace fedsz::core

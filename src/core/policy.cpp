#include "core/policy.hpp"

#include <algorithm>
#include <cmath>

#include "compress/sparse/sparse_codec.hpp"
#include "core/fedsz.hpp"

namespace fedsz::core {

namespace {

void validate_threshold_fields(const lossy::ErrorBound& bound,
                               lossy::LossyId lossy_id, const char* who) {
  bound.validate();
  // Resolve eagerly so a bad id fails at policy construction, mirroring
  // FedSz's own constructor check.
  (void)lossy::lossy_codec(lossy_id);
  (void)who;
}

double tensor_rms(const Tensor& tensor) {
  const FloatSpan values = tensor.span();
  if (values.empty()) return 0.0;
  double sum_sq = 0.0;
  for (const float v : values)
    sum_sq += static_cast<double>(v) * static_cast<double>(v);
  return std::sqrt(sum_sq / static_cast<double>(values.size()));
}

}  // namespace

// ---- ThresholdPolicy ----

ThresholdPolicy::ThresholdPolicy(ThresholdPolicyConfig config)
    : config_(config) {
  validate_threshold_fields(config_.bound, config_.lossy_id,
                            "ThresholdPolicy");
}

TensorPlan ThresholdPolicy::plan(const std::string& name, const Tensor& tensor,
                                 const EncodeContext&) const {
  if (is_lossy_entry(name, tensor.numel(), config_.lossy_threshold))
    return TensorPlan::lossy(config_.lossy_id, config_.bound);
  return TensorPlan::lossless();
}

// ---- LayerwiseBoundPolicy ----

LayerwiseBoundPolicy::LayerwiseBoundPolicy(LayerwiseBoundConfig config)
    : config_(std::move(config)) {
  validate_threshold_fields(config_.fallback, config_.lossy_id,
                            "LayerwiseBoundPolicy");
  for (const LayerwiseRule& rule : config_.rules) {
    if (rule.pattern.empty())
      throw InvalidArgument("LayerwiseBoundPolicy: empty rule pattern");
    rule.bound.validate();
  }
}

TensorPlan LayerwiseBoundPolicy::plan(const std::string& name,
                                      const Tensor& tensor,
                                      const EncodeContext&) const {
  if (!is_lossy_entry(name, tensor.numel(), config_.lossy_threshold))
    return TensorPlan::lossless();
  for (const LayerwiseRule& rule : config_.rules)
    if (name.find(rule.pattern) != std::string::npos)
      return TensorPlan::lossy(config_.lossy_id, rule.bound);
  return TensorPlan::lossy(config_.lossy_id, config_.fallback);
}

// ---- BoundSchedulePolicy ----

BoundSchedulePolicy::BoundSchedulePolicy(BoundScheduleConfig config)
    : config_(config) {
  validate_threshold_fields(lossy::ErrorBound::relative(config_.initial),
                            config_.lossy_id, "BoundSchedulePolicy");
  if (!(config_.factor > 0.0) || !std::isfinite(config_.factor))
    throw InvalidArgument(
        "BoundSchedulePolicy: factor must be positive and finite");
  if (!(config_.floor > 0.0) || !(config_.ceiling >= config_.floor))
    throw InvalidArgument(
        "BoundSchedulePolicy: need 0 < floor <= ceiling");
}

double BoundSchedulePolicy::bound_at(int round) const {
  const double scheduled =
      config_.initial * std::pow(config_.factor, std::max(0, round));
  return std::clamp(scheduled, config_.floor, config_.ceiling);
}

TensorPlan BoundSchedulePolicy::plan(const std::string& name,
                                     const Tensor& tensor,
                                     const EncodeContext& ctx) const {
  if (!is_lossy_entry(name, tensor.numel(), config_.lossy_threshold))
    return TensorPlan::lossless();
  return TensorPlan::lossy(config_.lossy_id,
                           lossy::ErrorBound::relative(bound_at(ctx.round)));
}

// ---- MagnitudeAwarePolicy ----

MagnitudeAwarePolicy::MagnitudeAwarePolicy(MagnitudeAwareConfig config)
    : config_(config) {
  validate_threshold_fields(lossy::ErrorBound::relative(config_.base),
                            config_.lossy_id, "MagnitudeAwarePolicy");
  if (!(config_.reference_rms > 0.0) || !std::isfinite(config_.reference_rms))
    throw InvalidArgument(
        "MagnitudeAwarePolicy: reference_rms must be positive and finite");
  if (!(config_.min_scale > 0.0) || !(config_.max_scale >= config_.min_scale))
    throw InvalidArgument(
        "MagnitudeAwarePolicy: need 0 < min_scale <= max_scale");
}

TensorPlan MagnitudeAwarePolicy::plan(const std::string& name,
                                      const Tensor& tensor,
                                      const EncodeContext&) const {
  if (!is_lossy_entry(name, tensor.numel(), config_.lossy_threshold))
    return TensorPlan::lossless();
  const double rms = tensor_rms(tensor);
  if (rms == 0.0) {
    // An all-zero update (frozen/unchanged layer) compresses to almost
    // nothing on the lossless path and reconstructs exactly; a lossy pass
    // would only add codec overhead.
    return TensorPlan::lossless();
  }
  const double scale = std::clamp(rms / config_.reference_rms,
                                  config_.min_scale, config_.max_scale);
  return TensorPlan::lossy(
      config_.lossy_id, lossy::ErrorBound::relative(config_.base * scale));
}

// ---- GradientAwareBoundPolicy ----

GradientAwareBoundPolicy::GradientAwareBoundPolicy(GradientAwareConfig config)
    : config_(config) {
  validate_threshold_fields(lossy::ErrorBound::relative(config_.base),
                            config_.lossy_id, "GradientAwareBoundPolicy");
  if (!(config_.beta > 0.0) || !(config_.beta < 1.0))
    throw InvalidArgument(
        "GradientAwareBoundPolicy: beta must be in (0, 1)");
  if (!(config_.reference_sensitivity > 0.0) ||
      !std::isfinite(config_.reference_sensitivity))
    throw InvalidArgument(
        "GradientAwareBoundPolicy: reference_sensitivity must be positive "
        "and finite");
  if (!(config_.min_scale > 0.0) || !(config_.max_scale >= config_.min_scale))
    throw InvalidArgument(
        "GradientAwareBoundPolicy: need 0 < min_scale <= max_scale");
}

TensorPlan GradientAwareBoundPolicy::plan(const std::string& name,
                                          const Tensor& tensor,
                                          const EncodeContext& ctx) const {
  if (!is_lossy_entry(name, tensor.numel(), config_.lossy_threshold))
    return TensorPlan::lossless();
  const double rms = tensor_rms(tensor);
  if (rms == 0.0) return TensorPlan::lossless();
  const std::string key = std::to_string(ctx.client_id) + '|' + name;
  double sensitivity = 0.0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    Accumulator& acc = sensitivity_[key];
    if (!acc.seeded) {
      acc.seeded = true;
      acc.round = ctx.round;
      acc.before = rms;
    } else if (ctx.round != acc.round) {
      acc.round = ctx.round;
      acc.before = acc.current;
    }
    // Recomputing from `before` keeps same-round re-encodes idempotent.
    acc.current = config_.beta * acc.before + (1.0 - config_.beta) * rms;
    sensitivity = acc.current;
  }
  const double scale =
      std::clamp(config_.reference_sensitivity / sensitivity,
                 config_.min_scale, config_.max_scale);
  return TensorPlan::lossy(
      config_.lossy_id, lossy::ErrorBound::relative(config_.base * scale));
}

double GradientAwareBoundPolicy::sensitivity(int client_id,
                                             const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = sensitivity_.find(std::to_string(client_id) + '|' + name);
  return it == sensitivity_.end() ? 0.0 : it->second.current;
}

// ---- SparseOverlayPolicy ----

SparseOverlayPolicy::SparseOverlayPolicy(CompressionPolicyPtr inner,
                                         double sparsity, unsigned bits)
    : inner_(std::move(inner)), sparsity_(sparsity), bits_(bits) {
  if (inner_ == nullptr)
    throw InvalidArgument("SparseOverlayPolicy: null inner policy");
  sparse::SparseParams{sparsity_, bits_}.validate();
}

TensorPlan SparseOverlayPolicy::plan(const std::string& name,
                                     const Tensor& tensor,
                                     const EncodeContext& ctx) const {
  const TensorPlan inner = inner_->plan(name, tensor, ctx);
  if (inner.path != TensorPath::kLossy) return inner;
  return TensorPlan::sparse(inner.bound, sparsity_, bits_);
}

// ---- factories ----

CompressionPolicyPtr make_threshold_policy(ThresholdPolicyConfig config) {
  return std::make_shared<ThresholdPolicy>(config);
}

CompressionPolicyPtr make_layerwise_policy(LayerwiseBoundConfig config) {
  return std::make_shared<LayerwiseBoundPolicy>(std::move(config));
}

CompressionPolicyPtr make_bound_schedule_policy(BoundScheduleConfig config) {
  return std::make_shared<BoundSchedulePolicy>(config);
}

CompressionPolicyPtr make_magnitude_aware_policy(MagnitudeAwareConfig config) {
  return std::make_shared<MagnitudeAwarePolicy>(config);
}

CompressionPolicyPtr make_gradient_aware_policy(GradientAwareConfig config) {
  return std::make_shared<GradientAwareBoundPolicy>(config);
}

CompressionPolicyPtr make_sparse_overlay_policy(CompressionPolicyPtr inner,
                                                double sparsity,
                                                unsigned bits) {
  return std::make_shared<SparseOverlayPolicy>(std::move(inner), sparsity,
                                               bits);
}

std::vector<std::string> compression_policy_names() {
  return {"threshold", "layerwise", "schedule", "magnitude", "gradaware"};
}

}  // namespace fedsz::core

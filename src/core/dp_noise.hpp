// Explicit Laplace-mechanism noise for FL updates — the comparison point for
// the paper's Section VII-D observation that lossy-compression error
// *resembles* Laplacian DP noise. LaplaceNoiseCodec perturbs every
// lossy-eligible tensor with Laplace(b) noise scaled to the tensor's value
// range before handing the update to an inner codec, so experiments can put
// genuine DP-style noise and compression-induced noise through the same FL
// pipeline and compare accuracy and error distributions.
#pragma once

#include "core/update_codec.hpp"
#include "util/rng.hpp"

namespace fedsz::core {

struct LaplaceNoiseConfig {
  /// Noise scale b as a fraction of each tensor's value range (mirrors the
  /// REL error-bound convention of the lossy codecs).
  double relative_scale = 1e-2;
  std::size_t lossy_threshold = 1000;  // same eligibility as Algorithm 1
  std::uint64_t seed = 1234;
};

class LaplaceNoiseCodec final : public UpdateCodec {
 public:
  using UpdateCodec::encode;
  LaplaceNoiseCodec(LaplaceNoiseConfig config, UpdateCodecPtr inner);

  std::string name() const override;
  Encoded encode(const StateDict& dict,
                 const EncodeContext& ctx) const override;
  StateDict decode(ByteSpan payload, CompressionStats* stats) const override;

 private:
  LaplaceNoiseConfig config_;
  UpdateCodecPtr inner_;
};

/// Laplace noise in front of `inner` (default inner: uncompressed).
UpdateCodecPtr make_laplace_noise_codec(LaplaceNoiseConfig config = {},
                                        UpdateCodecPtr inner = nullptr);

}  // namespace fedsz::core

// FedSZ — the paper's contribution (Section V, Algorithm 1): compress an FL
// client's model update (a StateDict) by
//   (i)   planning a path for every entry through a CompressionPolicy
//         (core/policy.hpp). The default ThresholdPolicy is Algorithm 1
//         verbatim: tensors whose name contains "weight" and whose flattened
//         size exceeds a threshold go lossy, everything else (biases,
//         BatchNorm running statistics, small tensors) goes lossless.
//         Policies may also route entries raw (untouched float bytes) and
//         may pick a different lossy codec/bound per tensor and per round.
//   (ii)  compressing each lossy tensor with its planned error-bounded lossy
//         codec and the serialized lossless partition with a fast lossless
//         codec (blosc-lz by default),
//   (iii) emitting a single self-describing bitstream for the server, which
//         decompresses and reshapes entries back into a StateDict.
//
// Compression time dominates the codec trade-off (Table I), so the hot path
// is a parallel chunked pipeline: each lossy tensor is split into fixed-size
// chunks that are compressed independently — concurrently on a
// util::ThreadPool when `parallelism` > 1 — and the lossless partition is
// compressed in parallel with the lossy work. The container records chunk
// counts, per-chunk sizes and the resolved error bound, so decompression is
// parallel too. Chunk boundaries and output bytes are independent of the
// thread count: any `parallelism` produces the identical bitstream.
//
// Wire formats: when every plan matches the uniform Algorithm-1 default
// (one codec, one bound, threshold partition, nothing raw) the writer emits
// the v2 chunked container byte-for-byte as before the policy redesign; any
// per-tensor divergence upgrades the stream to v3, whose header carries the
// lossy codec id and resolved bound *per tensor*. The decoder accepts v1,
// v2 and v3.
#pragma once

#include <memory>
#include <mutex>

#include "compress/lossless/lossless.hpp"
#include "compress/lossy/lossy.hpp"
#include "core/policy.hpp"
#include "tensor/state_dict.hpp"
#include "util/common.hpp"
#include "util/thread_pool.hpp"

namespace fedsz::core {

struct FedSzConfig {
  lossy::LossyId lossy_id = lossy::LossyId::kSz2;
  lossless::LosslessId lossless_id = lossless::LosslessId::kBloscLz;
  lossy::ErrorBound bound = lossy::ErrorBound::relative(1e-2);
  /// Algorithm 1's `threshold`: minimum flattened element count for the
  /// lossy path.
  std::size_t lossy_threshold = 1000;
  /// Per-tensor planner. Null means ThresholdPolicy built from the three
  /// fields above — the paper's Algorithm 1 and the byte-stable default.
  CompressionPolicyPtr policy;
  /// Hard ceiling on chunk_elements (1 GiB of float32 per chunk). Values
  /// above it are clamped at construction, and streams declaring more are
  /// rejected as corrupt — it bounds what a malicious header can make the
  /// decoder allocate.
  static constexpr std::size_t kMaxChunkElements = std::size_t{1} << 28;
  /// Elements per lossy chunk. Tensors larger than this are split into
  /// independent chunks ((de)compressed concurrently). A relative bound is
  /// always resolved over the WHOLE tensor before chunking, so chunking
  /// never changes error-bound semantics. Must be >= 1; clamped to
  /// kMaxChunkElements.
  std::size_t chunk_elements = 64 * 1024;
  /// Worker threads for the chunk pipeline: 1 = serial in the caller's
  /// thread (default), 0 = one per hardware thread, N = pool of N workers.
  /// The emitted bitstream is byte-identical for every setting.
  std::size_t parallelism = 1;
};

/// Algorithm 1, line 4: the partition predicate.
bool is_lossy_entry(const std::string& name, std::size_t numel,
                    std::size_t threshold);

/// Overflow-safe ceiling division (`n + d - 1` can wrap); shared by the
/// chunk writer and the container decoder so the two can never disagree.
inline std::size_t ceil_div(std::size_t n, std::size_t d) {
  return n / d + (n % d != 0 ? 1 : 0);
}

/// Partition census (drives Table III's "% lossy data" column and the
/// partition-rule tests).
struct Partition {
  std::vector<std::string> lossy_names;
  std::vector<std::string> lossless_names;
  std::size_t lossy_bytes = 0;
  std::size_t lossless_bytes = 0;
  double lossy_fraction() const {
    const double total =
        static_cast<double>(lossy_bytes + lossless_bytes);
    return total > 0 ? static_cast<double>(lossy_bytes) / total : 0.0;
  }
};

Partition partition_state_dict(const StateDict& dict, std::size_t threshold);

/// Byte accounting, plan census and timing for one compress or decompress
/// pass. compress() fills the compress-side fields; decompress() fills
/// `decompress_seconds` plus the byte/plan fields it can recover from the
/// stream, so callers no longer thread a separate seconds out-param.
struct CompressionStats {
  std::size_t original_bytes = 0;
  std::size_t compressed_bytes = 0;
  std::size_t lossy_original_bytes = 0;
  std::size_t lossy_compressed_bytes = 0;
  std::size_t lossless_original_bytes = 0;
  std::size_t lossless_compressed_bytes = 0;
  /// Raw-path bytes ship uncompressed, so original == on-wire payload.
  std::size_t raw_original_bytes = 0;
  /// Sparse-path accounting: byte totals plus kept/total element tallies
  /// (the survivors the keep-mask selected vs. everything the sparse path
  /// saw), from which the effective bit-rate derives.
  std::size_t sparse_original_bytes = 0;
  std::size_t sparse_compressed_bytes = 0;
  std::size_t sparse_kept_elements = 0;
  std::size_t sparse_total_elements = 0;
  /// Per-tensor plan census: how many tensors each path received.
  std::size_t lossy_tensors = 0;
  std::size_t lossless_tensors = 0;
  std::size_t raw_tensors = 0;
  std::size_t sparse_tensors = 0;
  /// Total lossy chunks in the container (0 when the lossy partition is
  /// empty; equals the lossy tensor count when nothing exceeds chunk size).
  std::size_t lossy_chunks = 0;
  /// Mean policy-requested bound over the lossy-path tensors planned with a
  /// RELATIVE bound (0 when there are none) — absolute-mode epsilons are not
  /// commensurable with range fractions, so they are excluded. Surfaces
  /// per-round schedule/magnitude decisions in traces.
  double mean_bound_value = 0.0;
  double compress_seconds = 0.0;
  double decompress_seconds = 0.0;

  double ratio() const {
    return compressed_bytes > 0 ? static_cast<double>(original_bytes) /
                                      static_cast<double>(compressed_bytes)
                                : 0.0;
  }
  /// Effective on-wire bits per element over everything routed through the
  /// sparse path (mask + quantized survivors + headers; 32 would mean no
  /// gain over raw f32). 0 when the sparse partition is empty.
  double sparse_bits_per_element() const {
    return sparse_total_elements > 0
               ? 8.0 * static_cast<double>(sparse_compressed_bytes) /
                     static_cast<double>(sparse_total_elements)
               : 0.0;
  }
};

class FedSz {
 public:
  explicit FedSz(FedSzConfig config);
  ~FedSz();

  /// Compress a state dict to the FedSZ bitstream. `ctx` reaches the policy
  /// so per-round/per-client plans resolve; optional stats out-param.
  Bytes compress(const StateDict& dict, CompressionStats* stats = nullptr,
                 const EncodeContext& ctx = {}) const;

  /// Decompress a FedSZ bitstream (the per-tensor-plan v3 container, the
  /// uniform chunked v2, or the legacy v1 single-blob-per-tensor format).
  /// Optional stats out-param (decompress_seconds, byte/plan census).
  /// Throws CorruptStream on malformed input.
  StateDict decompress(ByteSpan stream,
                       CompressionStats* stats = nullptr) const;

  const FedSzConfig& config() const { return config_; }
  /// The active planner (the configured policy, or the default
  /// ThresholdPolicy synthesized from the config fields).
  const CompressionPolicy& policy() const { return *policy_; }

  /// Chunks the pipeline will emit for a tensor of `numel` elements.
  std::size_t chunk_count(std::size_t numel) const {
    return ceil_div(numel, config_.chunk_elements);
  }

 private:
  /// Per-compress working set (chunk payload slots, task list, metadata
  /// scratch), leased from a pool so steady-state rounds reuse the same
  /// heap blocks. Defined in fedsz.cpp.
  struct EncodeWorkspace;
  struct WorkspaceReturner {
    const FedSz* owner;
    void operator()(EncodeWorkspace* workspace) const noexcept;
  };
  using WorkspaceLease = std::unique_ptr<EncodeWorkspace, WorkspaceReturner>;
  /// Borrow a workspace (fresh one on first use / under concurrency); the
  /// lease returns it to the pool when it goes out of scope.
  WorkspaceLease lease_workspace() const;
  void return_workspace(EncodeWorkspace* workspace) const noexcept;

  /// Run fn(0..count) inline when `parallelism` is 1 (or there is nothing
  /// to overlap), otherwise on the lazily-created pool.
  void run_indexed(std::size_t count,
                   const std::function<void(std::size_t)>& fn) const;
  std::size_t resolved_parallelism() const;
  ThreadPool& pool(std::size_t workers) const;

  FedSzConfig config_;
  CompressionPolicyPtr policy_;
  // The pool is an execution resource, not part of the codec's value; it is
  // created on first parallel use and shared by concurrent compress() /
  // decompress() calls (ThreadPool::submit is thread-safe).
  mutable std::mutex pool_mutex_;
  mutable std::unique_ptr<ThreadPool> pool_;
  mutable std::mutex workspace_mutex_;
  mutable std::vector<std::unique_ptr<EncodeWorkspace>> workspaces_;
};

}  // namespace fedsz::core

// FedSZ — the paper's contribution (Section V, Algorithm 1): compress an FL
// client's model update (a StateDict) by
//   (i)   partitioning entries into a lossy partition (tensors whose name
//         contains "weight" and whose flattened size exceeds a threshold)
//         and a lossless partition (everything else: biases, BatchNorm
//         running statistics, small tensors),
//   (ii)  compressing the lossy partition with an error-bounded lossy codec
//         (SZ2 by default) and the serialized lossless partition with a fast
//         lossless codec (blosc-lz by default),
//   (iii) emitting a single self-describing bitstream for the server, which
//         decompresses and reshapes entries back into a StateDict.
#pragma once

#include "compress/lossless/lossless.hpp"
#include "compress/lossy/lossy.hpp"
#include "tensor/state_dict.hpp"
#include "util/common.hpp"

namespace fedsz::core {

struct FedSzConfig {
  lossy::LossyId lossy_id = lossy::LossyId::kSz2;
  lossless::LosslessId lossless_id = lossless::LosslessId::kBloscLz;
  lossy::ErrorBound bound = lossy::ErrorBound::relative(1e-2);
  /// Algorithm 1's `threshold`: minimum flattened element count for the
  /// lossy path.
  std::size_t lossy_threshold = 1000;
};

/// Algorithm 1, line 4: the partition predicate.
bool is_lossy_entry(const std::string& name, std::size_t numel,
                    std::size_t threshold);

/// Partition census (drives Table III's "% lossy data" column and the
/// partition-rule tests).
struct Partition {
  std::vector<std::string> lossy_names;
  std::vector<std::string> lossless_names;
  std::size_t lossy_bytes = 0;
  std::size_t lossless_bytes = 0;
  double lossy_fraction() const {
    const double total =
        static_cast<double>(lossy_bytes + lossless_bytes);
    return total > 0 ? static_cast<double>(lossy_bytes) / total : 0.0;
  }
};

Partition partition_state_dict(const StateDict& dict, std::size_t threshold);

/// Byte accounting and timing for one compress/decompress cycle.
struct CompressionStats {
  std::size_t original_bytes = 0;
  std::size_t compressed_bytes = 0;
  std::size_t lossy_original_bytes = 0;
  std::size_t lossy_compressed_bytes = 0;
  std::size_t lossless_original_bytes = 0;
  std::size_t lossless_compressed_bytes = 0;
  double compress_seconds = 0.0;

  double ratio() const {
    return compressed_bytes > 0 ? static_cast<double>(original_bytes) /
                                      static_cast<double>(compressed_bytes)
                                : 0.0;
  }
};

class FedSz {
 public:
  explicit FedSz(FedSzConfig config);

  /// Compress a state dict to the FedSZ bitstream. Optional stats out-param.
  Bytes compress(const StateDict& dict,
                 CompressionStats* stats = nullptr) const;

  /// Decompress a FedSZ bitstream. Optional wall-clock out-param. Throws
  /// CorruptStream on malformed input.
  StateDict decompress(ByteSpan stream, double* seconds = nullptr) const;

  const FedSzConfig& config() const { return config_; }

 private:
  FedSzConfig config_;
};

}  // namespace fedsz::core

// Per-client error feedback for repeated lossy uplink transmission. A lossy
// codec biases every round's decoded update by its reconstruction error;
// over many rounds those errors compound instead of averaging out (the
// failure mode behind FedSparQ's and Convert-Compress-Correct's error
// feedback). The fix is the standard accumulator: before encoding, fold the
// residual carried over from the previous round into the update
// (`apply`); after encoding, store what the server will NOT see —
// compensated update minus the encoder's reconstruction — as the next
// round's residual (`absorb`). The invariant (exact up to float rounding):
//
//   sum_t true_update_t  ==  sum_t decoded_update_t  +  final residual
//
// so nothing is ever silently dropped — error the codec introduces in round
// t is re-sent in round t+1. With a lossless codec the reconstruction is
// exact and the residual stays zero.
//
// One accumulator per client; the coordinator guarantees a client has at
// most one update in flight, so no locking is needed. Interior tree nodes
// reuse the same accumulator for edge-side feedback on lossy backhauls
// (TopologyConfig::edge_error_feedback): a node folds its carried residual
// into each round's partial mean before the tier re-encode and absorbs
// what that encode dropped, serially on the event pump.
#pragma once

#include "tensor/state_dict.hpp"

namespace fedsz::core {

class ErrorFeedbackAccumulator {
 public:
  /// `update` plus the carried residual. Before the first absorb the
  /// residual is zero and `update` is returned unchanged; afterwards the
  /// update must keep the residual's structure (matched by name) or
  /// InvalidArgument is thrown.
  StateDict apply(const StateDict& update) const;

  /// Store the new residual: `compensated` minus `reconstruction` (what the
  /// encoder's lossy pass dropped). Entries are matched by name, so the
  /// reconstruction may order its entries differently (FedSZ's decoder
  /// re-groups by path). Throws InvalidArgument on a structure mismatch.
  void absorb(const StateDict& compensated, const StateDict& reconstruction);

  /// L2 norm over every element of the carried residual (0 before the
  /// first absorb).
  double residual_norm() const;

  /// Drop the carried residual (back to the pre-first-absorb state). Used
  /// when the carrier is reset wholesale — e.g. an interior node whose
  /// round was aborted by churn should not replay a stale residual.
  void reset() { residual_ = StateDict(); }

  const StateDict& residual() const { return residual_; }
  bool empty() const { return residual_.empty(); }

  /// Install a residual restored from a checkpoint (empty = pre-first-absorb
  /// state). Structure is validated lazily by the next apply/absorb.
  void restore_residual(StateDict residual) { residual_ = std::move(residual); }

 private:
  StateDict residual_;
};

}  // namespace fedsz::core

#include "core/dp_analysis.hpp"

namespace fedsz::core {

namespace {

ErrorDistribution analyze(std::vector<double> errors,
                          std::size_t histogram_bins) {
  ErrorDistribution dist;
  dist.errors = std::move(errors);
  dist.summary = stats::summarize(
      std::span<const double>(dist.errors.data(), dist.errors.size()));
  dist.laplace = stats::fit_laplace(dist.errors);
  dist.normal = stats::fit_normal(dist.errors);
  const auto laplace = dist.laplace;
  const auto normal = dist.normal;
  dist.ks_laplace = stats::ks_statistic(
      dist.errors, [laplace](double x) { return laplace.cdf(x); });
  dist.ks_normal = stats::ks_statistic(
      dist.errors, [normal](double x) { return normal.cdf(x); });
  if (!dist.errors.empty())
    dist.histogram = stats::histogram(dist.errors, histogram_bins);
  return dist;
}

}  // namespace

ErrorDistribution analyze_errors(FloatSpan original, FloatSpan reconstructed,
                                 std::size_t histogram_bins) {
  if (original.size() != reconstructed.size())
    throw InvalidArgument("analyze_errors: size mismatch");
  std::vector<double> errors;
  errors.reserve(original.size());
  for (std::size_t i = 0; i < original.size(); ++i)
    errors.push_back(static_cast<double>(original[i]) - reconstructed[i]);
  return analyze(std::move(errors), histogram_bins);
}

ErrorDistribution analyze_state_dict_errors(const StateDict& original,
                                            const StateDict& reconstructed,
                                            std::size_t histogram_bins) {
  std::vector<double> errors;
  errors.reserve(original.total_parameters());
  for (const auto& [name, tensor] : original) {
    const Tensor& other = reconstructed.get(name);
    if (!tensor.same_shape(other))
      throw InvalidArgument("analyze_state_dict_errors: shape mismatch for " +
                            name);
    for (std::size_t i = 0; i < tensor.numel(); ++i)
      errors.push_back(static_cast<double>(tensor[i]) - other[i]);
  }
  return analyze(std::move(errors), histogram_bins);
}

}  // namespace fedsz::core

// Pluggable update-compression boundary for the FL stack: the coordinator
// encodes every client->server update through an UpdateCodec, so the same
// training loop runs uncompressed (IdentityCodec, the paper's baseline) or
// with FedSZ under any lossy codec / error bound (FedSzCodec).
#pragma once

#include <memory>

#include "core/fedsz.hpp"

namespace fedsz::core {

class UpdateCodec {
 public:
  virtual ~UpdateCodec() = default;
  virtual std::string name() const = 0;

  struct Encoded {
    Bytes payload;
    CompressionStats stats;
  };
  virtual Encoded encode(const StateDict& dict) const = 0;
  /// `decode_seconds` (optional) receives the decompression wall time.
  virtual StateDict decode(ByteSpan payload,
                           double* decode_seconds = nullptr) const = 0;
};

using UpdateCodecPtr = std::shared_ptr<const UpdateCodec>;

/// Baseline: plain serialization, no compression.
class IdentityCodec final : public UpdateCodec {
 public:
  std::string name() const override { return "uncompressed"; }
  Encoded encode(const StateDict& dict) const override;
  StateDict decode(ByteSpan payload, double* decode_seconds) const override;
};

/// FedSZ compression with a given configuration. The chunked pipeline's
/// `parallelism` knob flows straight through FedSzConfig: a parallel codec
/// overlaps per-chunk lossy work and the lossless partition on a thread
/// pool, while emitting the same bytes as the serial setting.
class FedSzCodec final : public UpdateCodec {
 public:
  explicit FedSzCodec(FedSzConfig config) : fedsz_(config) {}

  std::string name() const override;
  Encoded encode(const StateDict& dict) const override;
  StateDict decode(ByteSpan payload, double* decode_seconds) const override;
  const FedSz& fedsz() const { return fedsz_; }

 private:
  FedSz fedsz_;
};

UpdateCodecPtr make_identity_codec();
UpdateCodecPtr make_fedsz_codec(FedSzConfig config = {});
/// FedSZ with the chunk pipeline fanned out over `parallelism` workers
/// (0 = one per hardware thread). Output is byte-identical to the serial
/// codec; only wall-clock changes.
UpdateCodecPtr make_parallel_fedsz_codec(std::size_t parallelism,
                                         FedSzConfig config = {});

/// CLI-facing registry: "identity"/"uncompressed", "fedsz", or
/// "fedsz-parallel" (chunk pipeline over all hardware threads). `config`
/// applies to the FedSZ variants. Throws InvalidArgument on unknown names.
UpdateCodecPtr make_codec_by_name(const std::string& name,
                                  FedSzConfig config = {});

}  // namespace fedsz::core

// Pluggable update-compression boundary for the FL stack: the coordinator
// encodes every client->server update through an UpdateCodec, so the same
// training loop runs uncompressed (IdentityCodec, the paper's baseline) or
// with FedSZ under any compression policy (FedSzCodec). encode() receives
// the EncodeContext the coordinator threads through (round, client, local
// steps), which is what lets round- and client-aware CompressionPolicies
// resolve per-update plans; decode() reports its timing and plan census via
// CompressionStats instead of a bare seconds out-param.
#pragma once

#include <memory>

#include "core/fedsz.hpp"

namespace fedsz::core {

class UpdateCodec {
 public:
  virtual ~UpdateCodec() = default;
  virtual std::string name() const = 0;

  /// True when decode(encode(x)) is bit-exact for every update. Error
  /// feedback is provably a no-op then, so the runtime skips its
  /// bookkeeping (the per-round payload decode and residual passes).
  virtual bool lossless() const { return false; }

  struct Encoded {
    Bytes payload;
    CompressionStats stats;
  };
  /// Encode one client update. `ctx` carries the round/client the update
  /// belongs to; policy-driven codecs use it, others ignore it.
  virtual Encoded encode(const StateDict& dict,
                         const EncodeContext& ctx) const = 0;
  /// Context-free convenience for standalone compression.
  Encoded encode(const StateDict& dict) const {
    return encode(dict, EncodeContext{});
  }
  /// `stats` (optional) receives decompress_seconds plus the byte/plan
  /// census the payload reveals.
  virtual StateDict decode(ByteSpan payload,
                           CompressionStats* stats = nullptr) const = 0;
};

using UpdateCodecPtr = std::shared_ptr<const UpdateCodec>;

/// Baseline: plain serialization, no compression.
class IdentityCodec final : public UpdateCodec {
 public:
  using UpdateCodec::encode;
  std::string name() const override { return "uncompressed"; }
  bool lossless() const override { return true; }
  Encoded encode(const StateDict& dict,
                 const EncodeContext& ctx) const override;
  StateDict decode(ByteSpan payload, CompressionStats* stats) const override;
};

/// FedSZ compression with a given configuration. The chunked pipeline's
/// `parallelism` knob flows straight through FedSzConfig: a parallel codec
/// overlaps per-chunk lossy work and the lossless partition on a thread
/// pool, while emitting the same bytes as the serial setting. The config's
/// CompressionPolicy decides every tensor's path/codec/bound (null policy =
/// the paper's ThresholdPolicy).
class FedSzCodec final : public UpdateCodec {
 public:
  using UpdateCodec::encode;
  explicit FedSzCodec(FedSzConfig config) : fedsz_(std::move(config)) {}

  std::string name() const override;
  Encoded encode(const StateDict& dict,
                 const EncodeContext& ctx) const override;
  StateDict decode(ByteSpan payload, CompressionStats* stats) const override;
  const FedSz& fedsz() const { return fedsz_; }

 private:
  FedSz fedsz_;
};

UpdateCodecPtr make_identity_codec();
UpdateCodecPtr make_fedsz_codec(FedSzConfig config = {});
/// FedSZ with the chunk pipeline fanned out over `parallelism` workers
/// (0 = one per hardware thread). Output is byte-identical to the serial
/// codec; only wall-clock changes.
UpdateCodecPtr make_parallel_fedsz_codec(std::size_t parallelism,
                                         FedSzConfig config = {});

/// DEPRECATED: prefer make_codec(spec_string) in core/codec_spec.hpp,
/// which rejects comm-key-carrying specs loudly instead of silently
/// building just the uplink codec. This entry point survives only for
/// callers that seed spec defaults from a caller-supplied FedSzConfig;
/// `name` is a codec spec string (core/codec_spec.hpp) — a bare family
/// ("identity", "uncompressed", "fedsz", "fedsz-parallel") or a full spec
/// such as "fedsz:lossy=sz3,eb=rel:1e-3,lossless=zstd,policy=schedule".
/// `config` seeds the defaults for every omitted key. Throws
/// InvalidArgument (listing the valid options) on malformed specs.
UpdateCodecPtr make_codec_by_name(const std::string& name,
                                  FedSzConfig config = {});

}  // namespace fedsz::core

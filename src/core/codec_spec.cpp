#include "core/codec_spec.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "core/fl/population.hpp"
#include "core/policy.hpp"

namespace fedsz::core {

namespace {

[[noreturn]] void bad_spec(const std::string& what) {
  throw InvalidArgument("codec spec: " + what);
}

std::string lossy_options() {
  std::string out;
  for (const lossy::LossyCodec* codec : lossy::all_lossy_codecs()) {
    if (!out.empty()) out += ", ";
    out += codec->name();
  }
  return out;
}

std::string lossless_options() {
  std::string out;
  for (const lossless::LosslessCodec* codec : lossless::all_lossless_codecs()) {
    if (!out.empty()) out += ", ";
    out += codec->name();
  }
  return out;
}

std::string policy_options() {
  std::string out;
  for (const std::string& name : compression_policy_names()) {
    if (!out.empty()) out += ", ";
    out += name;
  }
  return out;
}

double parse_double(const std::string& text, const std::string& key) {
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (text.empty() || end != text.c_str() + text.size() ||
      !std::isfinite(value))
    bad_spec("'" + key + "' wants a finite number, got '" + text + "'");
  return value;
}

std::size_t parse_count(const std::string& text, const std::string& key,
                        bool allow_suffix) {
  if (text.empty()) bad_spec("'" + key + "' wants a non-negative integer");
  std::string digits = text;
  std::size_t multiplier = 1;
  if (allow_suffix) {
    const char last = digits.back();
    if (last == 'k' || last == 'K') {
      multiplier = 1024;
      digits.pop_back();
    } else if (last == 'm' || last == 'M') {
      multiplier = 1024 * 1024;
      digits.pop_back();
    }
  }
  char* end = nullptr;
  errno = 0;
  const unsigned long long value = std::strtoull(digits.c_str(), &end, 10);
  // strtoull silently wraps a leading '-'; only bare digits are valid here.
  if (digits.empty() || digits.find_first_not_of("0123456789") !=
                            std::string::npos ||
      end != digits.c_str() + digits.size())
    bad_spec("'" + key + "' wants a non-negative integer" +
             (allow_suffix ? " (optionally suffixed k or m)" : "") +
             ", got '" + text + "'");
  // ERANGE saturation and multiplier wrap are both out-of-range, not data.
  if (errno == ERANGE ||
      value > std::numeric_limits<std::size_t>::max() / multiplier)
    bad_spec("'" + key + "' value out of range: '" + text + "'");
  return static_cast<std::size_t>(value) * multiplier;
}

/// Shortest decimal rendering that round-trips through strtod, so canonical
/// spec strings stay both stable and readable.
std::string format_double(double value) {
  char buffer[64];
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buffer, sizeof(buffer), "%.*g", precision, value);
    if (std::strtod(buffer, nullptr) == value) break;
  }
  return buffer;
}

lossy::ErrorBound parse_bound(const std::string& text) {
  std::string body = text;
  lossy::BoundMode mode = lossy::BoundMode::kRelative;
  if (const std::size_t colon = text.find(':'); colon != std::string::npos) {
    const std::string prefix = text.substr(0, colon);
    if (prefix == "rel")
      mode = lossy::BoundMode::kRelative;
    else if (prefix == "abs")
      mode = lossy::BoundMode::kAbsolute;
    else
      bad_spec("'eb' mode must be rel or abs, got '" + prefix + "'");
    body = text.substr(colon + 1);
  }
  lossy::ErrorBound bound{mode, parse_double(body, "eb")};
  try {
    bound.validate();
  } catch (const InvalidArgument& error) {
    bad_spec(std::string("'eb': ") + error.what());
  }
  return bound;
}

/// "backhaul<k>" with k >= 1: returns k, or 0 when `key` is not a per-tier
/// backhaul override.
std::size_t backhaul_tier_of(const std::string& key) {
  if (key.size() <= 8 || key.rfind("backhaul", 0) != 0) return 0;
  const std::string digits = key.substr(8);
  if (digits.find_first_not_of("0123456789") != std::string::npos) return 0;
  const std::size_t tier = parse_count(digits, key, /*allow_suffix=*/false);
  if (tier == 0) bad_spec("'" + key + "': tiers are 1-based (backhaul1=...)");
  return tier;
}

bool is_comm_key(const std::string& key) {
  return key == "downlink" || key == "downmode" || key == "ef" ||
         key == "topology" || key == "backhaul" || key == "edgemode" ||
         key == "edgeef" || key == "shard" || key == "transport" ||
         key == "checkpoint" || key == "data" || key == "population" ||
         backhaul_tier_of(key) != 0;
}

/// Parse a nested codec spec (downlink=/backhaul= value, ';'-separated
/// inner options) into its canonical comma form. Nested comm keys are
/// rejected — a broadcast or backhaul codec cannot itself carry a comm
/// model.
std::string parse_inner_spec(const std::string& key,
                             const std::string& value) {
  std::string inner = value;
  for (char& c : inner)
    if (c == ';') c = ',';
  CodecSpec parsed;
  try {
    parsed = parse_codec_spec(inner);
  } catch (const InvalidArgument& error) {
    bad_spec("'" + key + "': " + error.what());
  }
  if (parsed.has_comm_keys())
    bad_spec("'" + key + "' spec cannot itself carry comm keys");
  return format_codec_spec(parsed);
}

void apply_key(CodecSpec& spec, const std::string& key,
               const std::string& value) {
  if (key == "lossy") {
    if (spec.sparse)
      bad_spec(
          "the sparse family replaces the lossy codec; 'lossy=' does not "
          "apply");
    const std::string canonical = value;
    try {
      spec.lossy_id = lossy::lossy_codec(canonical).id();
    } catch (const InvalidArgument&) {
      bad_spec("unknown lossy codec '" + value + "' (expected " +
               lossy_options() + ")");
    }
  } else if (key == "sparsity") {
    if (!spec.sparse)
      bad_spec("'sparsity' applies only to the sparse family");
    if (value == "adaptive") {
      spec.sparsity = 0.0;
    } else {
      const double fraction = parse_double(value, "sparsity");
      if (!(fraction > 0.0 && fraction < 1.0))
        bad_spec("'sparsity' must be a fraction in (0, 1) or adaptive");
      spec.sparsity = fraction;
    }
  } else if (key == "bits") {
    if (!spec.sparse) bad_spec("'bits' applies only to the sparse family");
    if (value == "adaptive") {
      spec.sparse_bits = 0;
    } else {
      const std::size_t bits = parse_count(value, "bits",
                                           /*allow_suffix=*/false);
      if (bits < 1 || bits > 31)
        bad_spec("'bits' must be 1..31 or adaptive");
      spec.sparse_bits = static_cast<unsigned>(bits);
    }
  } else if (key == "lossless") {
    const std::string canonical = value == "blosclz" ? "blosc-lz" : value;
    try {
      spec.lossless_id = lossless::lossless_codec(canonical).id();
    } catch (const InvalidArgument&) {
      bad_spec("unknown lossless codec '" + value + "' (expected " +
               lossless_options() + ")");
    }
  } else if (key == "eb") {
    spec.bound = parse_bound(value);
  } else if (key == "policy") {
    std::string name = value;
    if (const std::size_t colon = value.find(':');
        colon != std::string::npos) {
      name = value.substr(0, colon);
      if (name == "schedule") {
        spec.schedule_factor =
            parse_double(value.substr(colon + 1), "policy=schedule");
        if (!(spec.schedule_factor > 0.0))
          bad_spec("policy=schedule factor must be positive");
      } else if (name == "gradaware") {
        spec.gradaware_beta =
            parse_double(value.substr(colon + 1), "policy=gradaware");
        if (!(spec.gradaware_beta > 0.0 && spec.gradaware_beta < 1.0))
          bad_spec("policy=gradaware beta must be in (0, 1)");
      } else {
        bad_spec(
            "only policy=schedule (:FACTOR) and policy=gradaware (:BETA) "
            "take a ':' argument, got '" + value + "'");
      }
    }
    bool known = false;
    for (const std::string& candidate : compression_policy_names())
      known = known || candidate == name;
    if (!known)
      bad_spec("unknown policy '" + name + "' (expected " + policy_options() +
               ")");
    spec.policy = name;
    spec.policy_explicit = true;
  } else if (key == "chunk") {
    spec.chunk_elements = parse_count(value, "chunk", /*allow_suffix=*/true);
    if (spec.chunk_elements == 0) bad_spec("'chunk' must be >= 1");
  } else if (key == "threads") {
    spec.threads = parse_count(value, "threads", /*allow_suffix=*/false);
  } else if (key == "threshold") {
    spec.lossy_threshold =
        parse_count(value, "threshold", /*allow_suffix=*/false);
  } else if (key == "downlink") {
    spec.downlink = parse_inner_spec("downlink", value);
  } else if (key == "backhaul") {
    spec.backhaul = parse_inner_spec("backhaul", value);
  } else if (const std::size_t tier = backhaul_tier_of(key); tier != 0) {
    if (spec.tier_backhauls.size() < tier) spec.tier_backhauls.resize(tier);
    spec.tier_backhauls[tier - 1] = parse_inner_spec(key, value);
  } else if (key == "topology") {
    if (value == "flat") {
      spec.hier_tiers.clear();
    } else if (value.rfind("hier", 0) == 0) {
      if (value.size() < 6 || value[4] != ':')
        bad_spec(
            "'topology=hier' wants fan-ins (topology=hier:<N>[x<M>...])");
      // 'x'-separated fan-ins, bottom-up: hier:32x16 = cohorts of 32 under
      // tier-1 edges, 16 edges per tier-2 node.
      spec.hier_tiers.clear();
      const std::string body = value.substr(5);
      std::size_t pos = 0;
      while (pos <= body.size()) {
        const std::size_t sep = body.find('x', pos);
        const std::string part = body.substr(
            pos, sep == std::string::npos ? std::string::npos : sep - pos);
        const std::size_t fan =
            parse_count(part, "topology=hier", /*allow_suffix=*/true);
        if (fan == 0) bad_spec("'topology=hier' fan-ins must be >= 1");
        spec.hier_tiers.push_back(fan);
        if (sep == std::string::npos) break;
        pos = sep + 1;
      }
    } else {
      bad_spec("'topology' must be flat or hier:<N>[x<M>...], got '" + value +
               "'");
    }
  } else if (key == "edgemode") {
    if (value == "sync") {
      spec.edge_buffered = false;
      spec.edge_buffer = 0;
    } else if (value.rfind("buffered", 0) == 0) {
      if (value.size() < 10 || value[8] != ':')
        bad_spec(
            "'edgemode=buffered' wants a buffer size "
            "(edgemode=buffered:<K>)");
      spec.edge_buffer = parse_count(value.substr(9), "edgemode=buffered",
                                     /*allow_suffix=*/true);
      if (spec.edge_buffer == 0)
        bad_spec("'edgemode=buffered' buffer must be >= 1");
      spec.edge_buffered = true;
    } else {
      bad_spec("'edgemode' must be sync or buffered:<K>, got '" + value +
               "'");
    }
  } else if (key == "edgeef") {
    if (value == "on")
      spec.edge_error_feedback = true;
    else if (value == "off")
      spec.edge_error_feedback = false;
    else
      bad_spec("'edgeef' must be on or off, got '" + value + "'");
  } else if (key == "shard") {
    if (value == "contiguous")
      spec.shard_shuffled = false;
    else if (value == "shuffled")
      spec.shard_shuffled = true;
    else
      bad_spec("'shard' must be contiguous or shuffled, got '" + value + "'");
  } else if (key == "transport") {
    if (value == "inproc") {
      spec.transport.clear();
    } else if (value.rfind("tcp", 0) == 0) {
      if (value.size() < 5 || value[3] != ':')
        bad_spec("'transport=tcp' wants a port (transport=tcp:<port>)");
      const std::size_t port =
          parse_count(value.substr(4), "transport=tcp", /*allow_suffix=*/false);
      if (port > 65535) bad_spec("'transport=tcp' port must be <= 65535");
      spec.transport = "tcp:" + std::to_string(port);
    } else {
      bad_spec("'transport' must be inproc or tcp:<port>, got '" + value +
               "'");
    }
  } else if (key == "checkpoint") {
    // <path>:<K> splits on the LAST colon so paths with drive-style or
    // scheme-style colons still parse; the path itself cannot contain ','
    // or ';' (the spec grammar's separators).
    const std::size_t colon = value.rfind(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 >= value.size())
      bad_spec("'checkpoint' wants <path>:<K>, got '" + value + "'");
    spec.checkpoint_path = value.substr(0, colon);
    spec.checkpoint_every =
        parse_count(value.substr(colon + 1), "checkpoint", /*allow_suffix=*/false);
    if (spec.checkpoint_every == 0)
      bad_spec("'checkpoint' interval must be >= 1");
  } else if (key == "data") {
    // '+'-composable parts: iid resets both skews, dirichlet:<alpha> and
    // sizeskew:<s> each set their own knob. Duplicated parts are rejected
    // so data=dirichlet:1+dirichlet:2 cannot silently last-write-win.
    spec.dirichlet_alpha = 0.0;
    spec.sizeskew_s = 0.0;
    bool saw_dirichlet = false;
    bool saw_sizeskew = false;
    std::size_t start = 0;
    while (start <= value.size()) {
      const std::size_t plus = value.find('+', start);
      const std::string part = value.substr(
          start, plus == std::string::npos ? std::string::npos : plus - start);
      if (part == "iid") {
        if (saw_dirichlet || saw_sizeskew || plus != std::string::npos)
          bad_spec("'data=iid' does not compose with other parts");
      } else if (part.rfind("dirichlet", 0) == 0) {
        if (saw_dirichlet) bad_spec("duplicate 'data' part 'dirichlet'");
        if (part.size() < 11 || part[9] != ':')
          bad_spec(
              "'data=dirichlet' wants a concentration "
              "(data=dirichlet:<alpha>)");
        spec.dirichlet_alpha = parse_double(part.substr(10), "data=dirichlet");
        if (!(spec.dirichlet_alpha > 0.0))
          bad_spec("'data=dirichlet' alpha must be positive");
        saw_dirichlet = true;
      } else if (part.rfind("sizeskew", 0) == 0) {
        if (saw_sizeskew) bad_spec("duplicate 'data' part 'sizeskew'");
        if (part.size() < 10 || part[8] != ':')
          bad_spec("'data=sizeskew' wants an exponent (data=sizeskew:<s>)");
        spec.sizeskew_s = parse_double(part.substr(9), "data=sizeskew");
        if (!(spec.sizeskew_s > 0.0))
          bad_spec("'data=sizeskew' exponent must be positive");
        saw_sizeskew = true;
      } else {
        bad_spec(
            "'data' parts must be iid, dirichlet:<alpha> or sizeskew:<s>, "
            "got '" + part + "'");
      }
      if (plus == std::string::npos) break;
      start = plus + 1;
    }
  } else if (key == "population") {
    // parse -> format canonicalizes the stored string (and validates it);
    // the population grammar uses ';' and '+' internally, never ',', so the
    // canonical value embeds verbatim in the comma-separated option list.
    try {
      spec.population =
          format_population_spec(parse_population_spec(value));
    } catch (const InvalidArgument& error) {
      bad_spec(std::string("'population': ") + error.what());
    }
  } else if (key == "downmode") {
    if (value == "full")
      spec.downlink_delta = false;
    else if (value == "delta")
      spec.downlink_delta = true;
    else
      bad_spec("'downmode' must be full or delta, got '" + value + "'");
  } else if (key == "ef") {
    if (value == "on")
      spec.error_feedback = true;
    else if (value == "off")
      spec.error_feedback = false;
    else
      bad_spec("'ef' must be on or off, got '" + value + "'");
  } else {
    bad_spec("unknown key '" + key +
             "' (expected lossy, lossless, eb, policy, sparsity, bits, "
             "chunk, threads, threshold, downlink, downmode, ef, topology, "
             "backhaul, backhaul<k>, edgemode, edgeef, shard, transport, "
             "checkpoint, data or population)");
  }
}

/// Parse the ','-separated kv list after the family. `comm_only` (identity
/// family) restricts the keys to the comm-level ones — an uncompressed
/// uplink can still configure the broadcast and error feedback.
void parse_options(CodecSpec& out, const std::string& body,
                   const std::string& family, bool comm_only) {
  if (body.empty()) bad_spec("empty option list after ':'");
  std::size_t pos = 0;
  while (pos <= body.size()) {
    // A policy/eb value may itself contain ':' + a number; the next comma
    // still terminates the pair, so splitting on ',' first is unambiguous.
    const std::size_t comma = body.find(',', pos);
    const std::string pair = body.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    const std::size_t eq = pair.find('=');
    if (pair.empty() || eq == std::string::npos || eq == 0)
      bad_spec("expected key=value, got '" + pair + "'");
    const std::string key = pair.substr(0, eq);
    if (comm_only && !is_comm_key(key))
      bad_spec("'" + family +
               "' takes only downlink, downmode, ef, topology, backhaul, "
               "backhaul<k>, edgemode, edgeef, shard, transport, "
               "checkpoint, data or population options");
    apply_key(out, key, pair.substr(eq + 1));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
}

}  // namespace

CodecSpec parse_codec_spec(const std::string& spec, CodecSpec defaults) {
  const std::size_t colon = spec.find(':');
  const std::string family = spec.substr(0, colon);
  CodecSpec out = defaults;
  if (family == "identity" || family == "uncompressed") {
    out.identity = true;
    out.sparse = false;
    if (colon != std::string::npos)
      parse_options(out, spec.substr(colon + 1), family, /*comm_only=*/true);
    return out;
  }
  if (family != "fedsz" && family != "fedsz-parallel" && family != "sparse")
    bad_spec("unknown family '" + family +
             "' (expected fedsz, fedsz-parallel, sparse, identity or "
             "uncompressed)");
  out.identity = false;
  out.sparse = family == "sparse";
  if (family == "fedsz-parallel") out.threads = 0;
  if (colon == std::string::npos) return out;
  parse_options(out, spec.substr(colon + 1), family, /*comm_only=*/false);
  return out;
}

CodecSpec parse_codec_spec(const std::string& spec) {
  return parse_codec_spec(spec, CodecSpec{});
}

namespace {

/// The ",downlink=...,downmode=...,ef=...,topology=...,backhaul=..."
/// suffix (empty when every comm field is at its default), shared by the
/// identity and fedsz renderings.
std::string comm_suffix(const CodecSpec& spec) {
  std::string out;
  if (!spec.downlink.empty()) {
    // The stored downlink spec is already canonical (apply_key normalizes
    // it); only the separators swap so the composite string still splits
    // on ',' unambiguously. No re-parse: a formatter must not throw on a
    // hand-set (possibly bogus) string — parse/validate report that.
    std::string inner = spec.downlink;
    for (char& c : inner)
      if (c == ',') c = ';';
    out += ",downlink=" + inner;
  }
  if (spec.downlink_delta) out += ",downmode=delta";
  if (spec.error_feedback) out += ",ef=on";
  if (!spec.hier_tiers.empty()) {
    out += ",topology=hier:";
    for (std::size_t l = 0; l < spec.hier_tiers.size(); ++l) {
      if (l > 0) out += 'x';
      out += std::to_string(spec.hier_tiers[l]);
    }
  }
  if (!spec.backhaul.empty()) {
    std::string inner = spec.backhaul;
    for (char& c : inner)
      if (c == ',') c = ';';
    out += ",backhaul=" + inner;
  }
  for (std::size_t k = 0; k < spec.tier_backhauls.size(); ++k) {
    if (spec.tier_backhauls[k].empty()) continue;
    std::string inner = spec.tier_backhauls[k];
    for (char& c : inner)
      if (c == ',') c = ';';
    out += ",backhaul" + std::to_string(k + 1) + "=" + inner;
  }
  if (spec.edge_buffered)
    out += ",edgemode=buffered:" + std::to_string(spec.edge_buffer);
  if (spec.edge_error_feedback) out += ",edgeef=on";
  if (spec.shard_shuffled) out += ",shard=shuffled";
  if (!spec.transport.empty()) out += ",transport=" + spec.transport;
  if (!spec.checkpoint_path.empty())
    out += ",checkpoint=" + spec.checkpoint_path + ":" +
           std::to_string(spec.checkpoint_every);
  if (spec.dirichlet_alpha > 0.0 || spec.sizeskew_s > 0.0) {
    std::string parts;
    if (spec.dirichlet_alpha > 0.0)
      parts += "dirichlet:" + format_double(spec.dirichlet_alpha);
    if (spec.sizeskew_s > 0.0) {
      if (!parts.empty()) parts += '+';
      parts += "sizeskew:" + format_double(spec.sizeskew_s);
    }
    out += ",data=" + parts;
  }
  // Stored canonically by apply_key; the population grammar never contains
  // ',' so no separator swap is needed.
  if (!spec.population.empty()) out += ",population=" + spec.population;
  return out;
}

}  // namespace

std::string format_codec_spec(const CodecSpec& spec) {
  if (spec.identity) {
    const std::string comm = comm_suffix(spec);
    return comm.empty() ? "identity" : "identity:" + comm.substr(1);
  }
  std::string out;
  if (spec.sparse) {
    out = "sparse:eb=";
  } else {
    out = "fedsz:lossy=";
    out += lossy::lossy_codec(spec.lossy_id).name();
    out += ",eb=";
  }
  out += spec.bound.mode == lossy::BoundMode::kAbsolute ? "abs:" : "rel:";
  out += format_double(spec.bound.value);
  out += ",lossless=";
  out += lossless::lossless_codec(spec.lossless_id).name();
  out += ",policy=" + spec.policy;
  if (spec.policy == "schedule")
    out += ":" + format_double(spec.schedule_factor);
  if (spec.policy == "gradaware")
    out += ":" + format_double(spec.gradaware_beta);
  if (spec.sparse) {
    if (spec.sparsity > 0.0) out += ",sparsity=" + format_double(spec.sparsity);
    if (spec.sparse_bits > 0)
      out += ",bits=" + std::to_string(spec.sparse_bits);
  }
  out += ",chunk=" + std::to_string(spec.chunk_elements);
  out += ",threads=" + std::to_string(spec.threads);
  out += ",threshold=" + std::to_string(spec.lossy_threshold);
  out += comm_suffix(spec);
  return out;
}

FedSzConfig codec_spec_config(const CodecSpec& spec) {
  if (spec.identity)
    throw InvalidArgument(
        "codec_spec_config: the identity spec has no FedSzConfig");
  if (!spec.sparse && (spec.sparsity > 0.0 || spec.sparse_bits > 0))
    throw InvalidArgument(
        "codec spec: sparsity/bits are set but the family is not sparse; "
        "only the sparse family can honor them");
  FedSzConfig config;
  config.lossy_id = spec.lossy_id;
  config.lossless_id = spec.lossless_id;
  config.bound = spec.bound;
  config.lossy_threshold = spec.lossy_threshold;
  config.chunk_elements = spec.chunk_elements;
  config.parallelism = spec.threads;
  // Build the base policy the spec names, then (for the sparse family)
  // wrap it in the overlay that reroutes its lossy plans onto the sparse
  // path. A null base means policy=threshold — FedSz's byte-stable
  // Algorithm-1 default.
  const auto finish = [&spec, &config](CompressionPolicyPtr base) {
    if (!spec.sparse) {
      config.policy = std::move(base);
      return config;
    }
    if (base == nullptr)
      base = make_threshold_policy(
          {spec.lossy_id, spec.bound, spec.lossy_threshold});
    config.policy = make_sparse_overlay_policy(std::move(base), spec.sparsity,
                                               spec.sparse_bits);
    return config;
  };
  if (spec.policy == "threshold") return finish(nullptr);
  if (spec.bound.mode != lossy::BoundMode::kRelative)
    throw InvalidArgument("codec spec: policy=" + spec.policy +
                          " requires a relative bound (eb=rel:...)");
  if (spec.policy == "layerwise") {
    // Cookbook rule set: the classifier head and the stem convolution are
    // the accuracy-sensitive layers, so they get a 10x tighter bound than
    // the spec's base bound.
    LayerwiseBoundConfig layerwise;
    layerwise.lossy_id = spec.lossy_id;
    layerwise.rules = {
        {"classifier", lossy::ErrorBound::relative(spec.bound.value / 10.0)},
        {"features.0.", lossy::ErrorBound::relative(spec.bound.value / 10.0)},
    };
    layerwise.fallback = spec.bound;
    layerwise.lossy_threshold = spec.lossy_threshold;
    config.policy = make_layerwise_policy(std::move(layerwise));
  } else if (spec.policy == "schedule") {
    BoundScheduleConfig schedule;
    schedule.lossy_id = spec.lossy_id;
    schedule.initial = spec.bound.value;
    schedule.factor = spec.schedule_factor;
    schedule.floor = spec.bound.value * 1e-2;
    schedule.ceiling = spec.bound.value * 1e2;
    schedule.lossy_threshold = spec.lossy_threshold;
    config.policy = make_bound_schedule_policy(schedule);
  } else if (spec.policy == "magnitude") {
    MagnitudeAwareConfig magnitude;
    magnitude.lossy_id = spec.lossy_id;
    magnitude.base = spec.bound.value;
    magnitude.lossy_threshold = spec.lossy_threshold;
    config.policy = make_magnitude_aware_policy(magnitude);
  } else if (spec.policy == "gradaware") {
    GradientAwareConfig gradaware;
    gradaware.lossy_id = spec.lossy_id;
    gradaware.base = spec.bound.value;
    gradaware.beta = spec.gradaware_beta;
    gradaware.lossy_threshold = spec.lossy_threshold;
    config.policy = make_gradient_aware_policy(gradaware);
  } else {
    throw InvalidArgument("codec spec: unknown policy '" + spec.policy + "'");
  }
  return finish(std::move(config.policy));
}

UpdateCodecPtr make_codec(const CodecSpec& spec) {
  if (spec.identity) return make_identity_codec();
  return make_fedsz_codec(codec_spec_config(spec));
}

UpdateCodecPtr make_codec(const std::string& spec) {
  const CodecSpec parsed = parse_codec_spec(spec);
  if (parsed.has_comm_keys())
    throw InvalidArgument(
        "make_codec: '" + spec +
        "' carries comm keys (downlink/topology/...) a bare codec cannot "
        "honor; use FlRunConfig::apply_comm_spec for those");
  return make_codec(parsed);
}

}  // namespace fedsz::core

// Error-distribution analysis behind the paper's differential-privacy
// observation (Section VII-D, Figure 10): collect the pairwise differences
// between original and decompressed parameters, fit Laplace and Normal
// distributions by maximum likelihood, and compare goodness of fit with the
// Kolmogorov-Smirnov statistic. The paper's finding — the error histogram is
// much closer to Laplacian than Gaussian — corresponds to ks_laplace <<
// ks_normal here.
#pragma once

#include "tensor/state_dict.hpp"
#include "util/stats.hpp"

namespace fedsz::core {

struct ErrorDistribution {
  std::vector<double> errors;  // original - reconstructed, per element
  stats::Summary summary;
  stats::LaplaceFit laplace;
  stats::NormalFit normal;
  double ks_laplace = 0.0;
  double ks_normal = 0.0;
  stats::Histogram histogram;

  bool laplace_fits_better() const { return ks_laplace < ks_normal; }
};

/// Analyze elementwise reconstruction error between two equal-sized arrays.
ErrorDistribution analyze_errors(FloatSpan original, FloatSpan reconstructed,
                                 std::size_t histogram_bins = 61);

/// Analyze across all matching entries of two state dicts (original vs
/// decompressed update). Entries are matched by name; shapes must agree.
ErrorDistribution analyze_state_dict_errors(const StateDict& original,
                                            const StateDict& reconstructed,
                                            std::size_t histogram_bins = 61);

}  // namespace fedsz::core

#include "core/dp_noise.hpp"

#include <atomic>

#include "core/fedsz.hpp"
#include "util/stats.hpp"

namespace fedsz::core {

LaplaceNoiseCodec::LaplaceNoiseCodec(LaplaceNoiseConfig config,
                                     UpdateCodecPtr inner)
    : config_(config), inner_(std::move(inner)) {
  if (!(config_.relative_scale > 0.0))
    throw InvalidArgument("LaplaceNoiseCodec: scale must be positive");
  if (!inner_) inner_ = make_identity_codec();
}

std::string LaplaceNoiseCodec::name() const {
  return "laplace+" + inner_->name();
}

UpdateCodec::Encoded LaplaceNoiseCodec::encode(const StateDict& dict,
                                               const EncodeContext& ctx) const {
  // A fresh stream per encode keeps concurrent clients independent while
  // remaining reproducible for a fixed call sequence.
  static std::atomic<std::uint64_t> invocation{0};
  Rng rng(config_.seed ^ (0x9E3779B97F4A7C15ull *
                          (invocation.fetch_add(1) + 1)));
  StateDict noised = dict;
  for (auto& [name, tensor] : noised.entries_mutable()) {
    if (!is_lossy_entry(name, tensor.numel(), config_.lossy_threshold))
      continue;
    const double range = stats::summarize(tensor.span()).range();
    const double b = config_.relative_scale * range;
    if (b <= 0.0) continue;
    for (std::size_t i = 0; i < tensor.numel(); ++i)
      tensor[i] += static_cast<float>(rng.laplace(0.0, b));
  }
  return inner_->encode(noised, ctx);
}

StateDict LaplaceNoiseCodec::decode(ByteSpan payload,
                                    CompressionStats* stats) const {
  return inner_->decode(payload, stats);
}

UpdateCodecPtr make_laplace_noise_codec(LaplaceNoiseConfig config,
                                        UpdateCodecPtr inner) {
  return std::make_shared<LaplaceNoiseCodec>(config, std::move(inner));
}

}  // namespace fedsz::core

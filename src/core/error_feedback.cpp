#include "core/error_feedback.hpp"

#include <cmath>

namespace fedsz::core {

StateDict ErrorFeedbackAccumulator::apply(const StateDict& update) const {
  if (residual_.empty()) return update;
  StateDict compensated = update;
  compensated.add_scaled_matched(residual_, 1.0f);
  return compensated;
}

void ErrorFeedbackAccumulator::absorb(const StateDict& compensated,
                                      const StateDict& reconstruction) {
  residual_ = compensated;
  residual_.add_scaled_matched(reconstruction, -1.0f);
}

double ErrorFeedbackAccumulator::residual_norm() const {
  double sum = 0.0;
  for (const auto& [name, tensor] : residual_) {
    (void)name;
    for (const float v : tensor.span())
      sum += static_cast<double>(v) * static_cast<double>(v);
  }
  return std::sqrt(sum);
}

}  // namespace fedsz::core

// Policy-driven compression planning: the seam between the FL runtime and
// the FedSZ pipeline. Algorithm 1 hardwires one global error bound and a
// name/size partition rule; the follow-on literature (Ye et al.'s
// gradient-aware per-layer bounds, FedSparQ's adaptive schedules) shows the
// win comes from per-tensor, per-round decisions. A CompressionPolicy maps
// (tensor name, tensor, EncodeContext) -> TensorPlan — which path the tensor
// takes and, for the lossy path, which codec and bound — so the bound/codec
// choice is pluggable instead of a struct field:
//
//   ThresholdPolicy       Algorithm 1 verbatim (the default): "weight" in
//                         the name and numel > threshold -> lossy at one
//                         global bound; everything else lossless.
//                         Regression-pinned to the paper's partition/bytes.
//   LayerwiseBoundPolicy  per-layer-pattern bounds: first substring rule
//                         that matches the tensor name decides the bound
//                         (e.g. tighter bounds on the classifier head).
//   BoundSchedulePolicy   the bound decays (or tightens) geometrically over
//                         rounds via EncodeContext::round — coarse early
//                         rounds, precise late rounds.
//   MagnitudeAwarePolicy  relative bound scaled by each tensor's update
//                         magnitude (RMS), after Ye et al.: small-magnitude
//                         layers get proportionally tighter bounds.
//   GradientAwareBoundPolicy  per-tensor bounds scaled by gradient
//                         sensitivity accumulated across rounds (an EMA of
//                         the update RMS keyed by client and tensor, driven
//                         by EncodeContext::round): layers whose updates
//                         stay large are sensitive and get tighter bounds.
//   SparseOverlayPolicy   reroutes an inner policy's lossy plans onto the
//                         sparse path (threshold + quantize + mask), keeping
//                         the inner policy's bound; everything else passes
//                         through untouched.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "compress/lossy/error_bound.hpp"
#include "compress/lossy/lossy.hpp"
#include "tensor/tensor.hpp"
#include "util/common.hpp"

namespace fedsz::core {

/// Which pipeline a tensor rides. kLossless entries are serialized together
/// and compressed with the container's lossless codec; kRaw entries ship
/// their float bytes untouched (exact, zero codec time — for tensors that
/// must not be perturbed and do not compress). kSparse entries go through
/// the sparse-quantization codec (threshold + adaptive-width quantization
/// of survivors); dropped elements decode to zero, which composes with the
/// error-feedback accumulator.
enum class TensorPath : std::uint8_t {
  kLossy = 0,
  kLossless = 1,
  kRaw = 2,
  kSparse = 3,
};

/// One tensor's compression decision. `lossy_id` is only meaningful on the
/// lossy path; `bound` on the lossy and sparse paths; `sparsity` /
/// `sparse_bits` on the sparse path (0 = adaptive for both — see
/// sparse::SparseParams).
struct TensorPlan {
  TensorPath path = TensorPath::kLossless;
  lossy::LossyId lossy_id = lossy::LossyId::kSz2;
  lossy::ErrorBound bound = lossy::ErrorBound::relative(1e-2);
  double sparsity = 0.0;
  unsigned sparse_bits = 0;

  static TensorPlan lossy(lossy::LossyId id, lossy::ErrorBound bound) {
    return TensorPlan{TensorPath::kLossy, id, bound};
  }
  static TensorPlan lossless() { return TensorPlan{}; }
  static TensorPlan raw() {
    TensorPlan plan;
    plan.path = TensorPath::kRaw;
    return plan;
  }
  static TensorPlan sparse(lossy::ErrorBound bound, double sparsity = 0.0,
                           unsigned bits = 0) {
    TensorPlan plan;
    plan.path = TensorPath::kSparse;
    plan.bound = bound;
    plan.sparsity = sparsity;
    plan.sparse_bits = bits;
    return plan;
  }
};

/// Round/client context threaded from the coordinator into every encode, so
/// policies can be round- and client-aware. Default-constructed context
/// (round 0, no client) is what standalone compression uses.
struct EncodeContext {
  int round = 0;        // server round the update was dispatched at
  int client_id = -1;   // -1 outside a federation run
  std::size_t steps = 0;  // local optimizer steps behind this update
};

/// Maps each tensor of an update to its TensorPlan. plan() is called
/// concurrently from codec pipelines, so implementations must be
/// thread-safe through const; most are pure functions of their arguments
/// and construction-time config, and stateful ones (GradientAware) must
/// keep plan() idempotent per (client, round) so re-encoding an update is
/// byte-identical at any thread count.
class CompressionPolicy {
 public:
  virtual ~CompressionPolicy() = default;
  virtual std::string name() const = 0;
  /// Decide the plan for one tensor. `tensor` carries shape and values
  /// (magnitude-aware policies read the values; most only look at numel).
  virtual TensorPlan plan(const std::string& name, const Tensor& tensor,
                          const EncodeContext& ctx) const = 0;
};

using CompressionPolicyPtr = std::shared_ptr<const CompressionPolicy>;

// ---- ThresholdPolicy (Algorithm 1, the default) ----

struct ThresholdPolicyConfig {
  lossy::LossyId lossy_id = lossy::LossyId::kSz2;
  lossy::ErrorBound bound = lossy::ErrorBound::relative(1e-2);
  /// Algorithm 1's minimum flattened element count for the lossy path.
  std::size_t lossy_threshold = 1000;
};

class ThresholdPolicy final : public CompressionPolicy {
 public:
  explicit ThresholdPolicy(ThresholdPolicyConfig config);
  std::string name() const override { return "threshold"; }
  TensorPlan plan(const std::string& name, const Tensor& tensor,
                  const EncodeContext& ctx) const override;

 private:
  ThresholdPolicyConfig config_;
};

// ---- LayerwiseBoundPolicy ----

struct LayerwiseRule {
  std::string pattern;  // substring of the tensor name
  lossy::ErrorBound bound;
};

struct LayerwiseBoundConfig {
  lossy::LossyId lossy_id = lossy::LossyId::kSz2;
  /// First rule whose pattern is a substring of the tensor name wins.
  std::vector<LayerwiseRule> rules;
  lossy::ErrorBound fallback = lossy::ErrorBound::relative(1e-2);
  std::size_t lossy_threshold = 1000;
};

class LayerwiseBoundPolicy final : public CompressionPolicy {
 public:
  explicit LayerwiseBoundPolicy(LayerwiseBoundConfig config);
  std::string name() const override { return "layerwise"; }
  TensorPlan plan(const std::string& name, const Tensor& tensor,
                  const EncodeContext& ctx) const override;

 private:
  LayerwiseBoundConfig config_;
};

// ---- BoundSchedulePolicy ----

struct BoundScheduleConfig {
  lossy::LossyId lossy_id = lossy::LossyId::kSz2;
  /// Relative bound at round 0.
  double initial = 1e-2;
  /// Per-round multiplier: < 1 tightens the bound over rounds (coarse early,
  /// precise late), > 1 loosens it. Must be positive and finite.
  double factor = 0.7;
  /// The scheduled bound is clamped to [floor, ceiling].
  double floor = 1e-4;
  double ceiling = 1e-1;
  std::size_t lossy_threshold = 1000;
};

class BoundSchedulePolicy final : public CompressionPolicy {
 public:
  explicit BoundSchedulePolicy(BoundScheduleConfig config);
  std::string name() const override { return "schedule"; }
  TensorPlan plan(const std::string& name, const Tensor& tensor,
                  const EncodeContext& ctx) const override;
  /// The relative bound the schedule resolves to at `round` (exposed for
  /// tests and traces).
  double bound_at(int round) const;

 private:
  BoundScheduleConfig config_;
};

// ---- MagnitudeAwarePolicy ----

struct MagnitudeAwareConfig {
  lossy::LossyId lossy_id = lossy::LossyId::kSz2;
  /// Relative bound applied when a tensor's RMS equals `reference_rms`.
  double base = 1e-2;
  /// Update-magnitude pivot: tensors with RMS below it get tighter bounds,
  /// above it looser (Ye et al.'s gradient-aware scaling).
  double reference_rms = 1e-2;
  /// The magnitude scale factor is clamped to [min_scale, max_scale].
  double min_scale = 0.1;
  double max_scale = 10.0;
  std::size_t lossy_threshold = 1000;
};

class MagnitudeAwarePolicy final : public CompressionPolicy {
 public:
  explicit MagnitudeAwarePolicy(MagnitudeAwareConfig config);
  std::string name() const override { return "magnitude"; }
  TensorPlan plan(const std::string& name, const Tensor& tensor,
                  const EncodeContext& ctx) const override;

 private:
  MagnitudeAwareConfig config_;
};

// ---- GradientAwareBoundPolicy ----

struct GradientAwareConfig {
  lossy::LossyId lossy_id = lossy::LossyId::kSz2;
  /// Relative bound applied when a tensor's sensitivity equals
  /// `reference_sensitivity`.
  double base = 1e-2;
  /// EMA smoothing for the cross-round sensitivity accumulator, in (0, 1):
  /// ema_r = beta * ema_{r-1} + (1 - beta) * rms_r.
  double beta = 0.5;
  /// Sensitivity pivot: tensors whose accumulated update RMS exceeds it
  /// (still moving -> perturbation-sensitive) get tighter bounds, quieter
  /// tensors looser ones (Ye et al.'s gradient-aware scaling, integrated
  /// over rounds instead of a single update).
  double reference_sensitivity = 1e-2;
  /// The sensitivity scale factor is clamped to [min_scale, max_scale].
  double min_scale = 0.1;
  double max_scale = 10.0;
  std::size_t lossy_threshold = 1000;
};

/// Stateful but deterministic: the per-(client, tensor) sensitivity EMA
/// advances exactly once per EncodeContext::round, and re-planning the same
/// round recomputes from the previous round's value, so repeated encodes of
/// one update are idempotent (the thread-count byte-identity invariant).
/// The accumulator is in-memory only — it is not checkpoint-serialized, so
/// a resumed run re-warms it from its defaults.
class GradientAwareBoundPolicy final : public CompressionPolicy {
 public:
  explicit GradientAwareBoundPolicy(GradientAwareConfig config);
  std::string name() const override { return "gradaware"; }
  TensorPlan plan(const std::string& name, const Tensor& tensor,
                  const EncodeContext& ctx) const override;
  /// The accumulated sensitivity for (client, tensor) after the most recent
  /// plan() — 0.0 when never planned (exposed for tests).
  double sensitivity(int client_id, const std::string& name) const;

 private:
  struct Accumulator {
    int round = 0;
    bool seeded = false;
    double before = 0.0;   // EMA entering `round`
    double current = 0.0;  // EMA including `round`
  };
  GradientAwareConfig config_;
  mutable std::mutex mutex_;
  mutable std::unordered_map<std::string, Accumulator> sensitivity_;
};

// ---- SparseOverlayPolicy ----

/// Decorates an inner policy: plans the inner policy would send through the
/// lossy path are rerouted to the sparse path at the same bound; lossless /
/// raw plans pass through. This is how `family:sparse` specs compose with
/// every existing policy (threshold, schedule, gradaware, ...).
class SparseOverlayPolicy final : public CompressionPolicy {
 public:
  SparseOverlayPolicy(CompressionPolicyPtr inner, double sparsity,
                      unsigned bits);
  std::string name() const override { return "sparse+" + inner_->name(); }
  TensorPlan plan(const std::string& name, const Tensor& tensor,
                  const EncodeContext& ctx) const override;

 private:
  CompressionPolicyPtr inner_;
  double sparsity_;
  unsigned bits_;
};

// ---- factories ----

CompressionPolicyPtr make_threshold_policy(ThresholdPolicyConfig config = {});
CompressionPolicyPtr make_layerwise_policy(LayerwiseBoundConfig config);
CompressionPolicyPtr make_bound_schedule_policy(
    BoundScheduleConfig config = {});
CompressionPolicyPtr make_magnitude_aware_policy(
    MagnitudeAwareConfig config = {});
CompressionPolicyPtr make_gradient_aware_policy(GradientAwareConfig config = {});
CompressionPolicyPtr make_sparse_overlay_policy(CompressionPolicyPtr inner,
                                                double sparsity = 0.0,
                                                unsigned bits = 0);

/// Names accepted by the spec parser's `policy=` key.
std::vector<std::string> compression_policy_names();

}  // namespace fedsz::core

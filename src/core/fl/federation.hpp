// Cross-process federation: the distributed twin of the in-process
// hierarchical coordinator. A FederatedRoot owns the server side of a
// single-tier `topology=hier:<N>` campaign — the global model, the cohort
// RNG, the aggregation strategy, evaluation — while each tier-1 edge
// cohort runs inside its own WORKER (a thread over a loopback stream in
// tests, a separate `fedsz_edge_worker` process over TCP in production)
// speaking the versioned frame protocol from net/wire.hpp:
//
//   root -> worker   HELLO      run manifest (everything the worker needs
//                               to rebuild its deterministic slice)
//   worker -> root   ACK        fingerprint echo + assigned edge index
//   root -> worker   ROUND_OPEN round index, virtual open time, cohort
//   root -> worker   BROADCAST  the serialized global model (bit-exact)
//   worker -> root   PARTIAL    one re-encoded partial mean + per-client
//                               virtual-time trace, ordering keys included
//   worker -> root   HEARTBEAT  liveness beacon (wall-clock cadence)
//   root -> worker   BYE        campaign over
//
// Determinism contract: the virtual clock never crosses the wire as a
// dependency — workers REPLICATE the event-runtime schedule analytically
// (upload = t_open + compute_i, arrival = upload + link_i(bytes)) and the
// root re-sorts everything it merges by the exact (time, tie-break) order
// the in-process event queue would have used. A TCP run with W workers is
// therefore BIT-IDENTICAL, round for round, to FlCoordinator::run() on the
// same config (the federation equality tests pin accuracy, bytes, virtual
// seconds, and aggregate weight).
//
// Churn: a worker that disconnects or misses heartbeats past the timeout
// is declared crashed; its outstanding cohort is traced as dropped and its
// members re-shard round-robin across the surviving workers for later
// rounds — the wire analogue of the in-process edge-failure machinery
// (workers train whatever cohort the root assigns, so re-homing needs no
// data movement).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/fl/coordinator.hpp"
#include "net/transport.hpp"

namespace fedsz::core {

struct CodecSpec;

/// How both sides construct the training data: by name through
/// data::make_dataset, so the manifest ships a recipe, never samples.
struct DatasetSpec {
  std::string name = "cifar10";
  std::uint64_t seed = 7;
  /// Nonzero: train on only the first `take` samples (data::take), the
  /// idiom every example/test uses to keep synthetic runs fast.
  std::size_t take = 0;
};

struct FederationOptions {
  /// Worker-side HEARTBEAT cadence (wall seconds).
  double heartbeat_interval_seconds = 0.25;
  /// Root-side silence budget while awaiting a worker's partial; past it
  /// the worker is declared crashed and its members re-shard.
  double heartbeat_timeout_seconds = 60.0;
};

/// Everything an edge worker needs to rebuild its deterministic slice of
/// the run: the canonical codec spec (comm keys included), the dataset
/// recipe, the model/client/network/compute configuration, the topology
/// knobs that live outside the spec grammar, and this worker's edge
/// assignment. `fingerprint` is run_fingerprint(config, model) — the ACK
/// echoes it so a mismatched worker build fails the handshake loudly.
struct RunManifest {
  std::string codec_spec;
  DatasetSpec dataset;
  nn::ModelConfig model;
  std::size_t clients = 0;
  int rounds = 0;
  std::uint64_t seed = 0;
  ClientConfig client;
  net::NetworkProfile network;
  std::optional<net::HeterogeneousNetworkConfig> heterogeneous;
  double compute_seconds_per_sample = 0.0;
  double compute_jitter = 0.0;
  net::NetworkProfile backhaul_network;
  std::optional<net::HeterogeneousNetworkConfig> backhaul_heterogeneous;
  /// Resolved shard-shuffle seed (the coordinator's seed derivation
  /// applied root-side, so both sides build the same tree).
  std::uint64_t shard_seed = 0;
  std::uint32_t edge = 0;   // this worker's tier-1 edge index
  std::uint32_t edges = 0;  // total edge count
  /// Worker HEARTBEAT cadence (from the root's FederationOptions).
  double heartbeat_interval_seconds = 0.25;
  std::uint32_t fingerprint = 0;
};

Bytes serialize_manifest(const RunManifest& manifest);
/// Throws CorruptStream on truncation or malformed fields.
RunManifest parse_manifest(ByteSpan bytes);

/// The server process of a distributed campaign. Restrictions (enforced in
/// the constructor) keep the replicated schedule exact: single-tier
/// hierarchy, barrier scheduler, sync edges, free lossless broadcast (no
/// downlink spec), no injected failure schedule (wire churn IS the failure
/// model here), no checkpointing (the root holds no client state to lose —
/// checkpoint in-process runs instead).
class FederatedRoot {
 public:
  /// `spec` is the FULL parsed codec spec (codec + comm keys); `config`
  /// must already agree with it (apply_comm_spec). With
  /// config.transport == "tcp:<port>" the constructor binds the listener
  /// immediately so port() is valid before any worker spawns.
  FederatedRoot(const nn::ModelConfig& model_config, DatasetSpec train,
                data::DatasetPtr test, FlRunConfig config,
                const CodecSpec& spec, SchedulerPtr scheduler = nullptr,
                FederationOptions options = {});
  ~FederatedRoot();

  /// Bound TCP port (only after constructing with a tcp transport).
  std::uint16_t port() const;
  std::size_t edge_count() const { return edge_count_; }
  /// The manifest worker `edge` would receive (test introspection).
  RunManifest manifest(std::uint32_t edge) const;

  /// TCP mode: accept edge_count() worker connections (assignment follows
  /// accept order), then drive the campaign to completion.
  FlRunResult run();
  /// Drive the campaign over caller-supplied connected streams, one per
  /// edge — the loopback-transport path (workers as in-process threads).
  FlRunResult run_with_streams(std::vector<net::StreamPtr> streams);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::size_t edge_count_ = 0;
};

/// The entire worker side: handshake, per-round replication of the edge
/// schedule (train cohort, encode, fold in event order, re-encode the
/// partial), heartbeats, clean BYE/EOF exit. Blocks until the campaign
/// ends or the stream dies; throws TransportError/CorruptStream on a
/// broken or malformed peer.
void run_edge_worker(net::StreamPtr stream);

}  // namespace fedsz::core

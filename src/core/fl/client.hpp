// FL client: owns a local model replica and a data shard; each round it
// loads the global state, runs local SGD epochs (FedAvg's client step), and
// returns its updated state dict — the object FedSZ compresses.
#pragma once

#include "data/dataloader.hpp"
#include "nn/loss.hpp"
#include "nn/models.hpp"
#include "nn/optimizer.hpp"

namespace fedsz::core {

struct ClientConfig {
  nn::SgdConfig sgd{0.02f, 0.9f, 0.0f};
  std::size_t batch_size = 32;
  int local_epochs = 1;
  std::uint64_t seed = 1;
};

struct ClientRoundResult {
  StateDict update;
  std::size_t samples = 0;
  /// Local optimizer steps behind this update (feeds EncodeContext::steps).
  std::size_t steps = 0;
  double train_seconds = 0.0;
  double mean_loss = 0.0;
};

class FlClient {
 public:
  FlClient(int id, const nn::ModelConfig& model_config,
           data::DatasetPtr shard, ClientConfig config);

  /// One FedAvg round: load global weights, train local epochs, snapshot.
  ClientRoundResult run_round(const StateDict& global_state);

  int id() const { return id_; }
  std::size_t dataset_size() const { return shard_->size(); }

 private:
  int id_;
  nn::Model model_;
  data::DatasetPtr shard_;
  ClientConfig config_;
};

}  // namespace fedsz::core

#include "core/fl/topology.hpp"

#include <numeric>
#include <utility>

#include "core/codec_spec.hpp"
#include "util/rng.hpp"

namespace fedsz::core {

namespace {

/// Standalone trees (tests, tools) get a fixed shuffle seed when the
/// config leaves shard_seed at 0; the coordinator derives one from the run
/// seed instead, so runs stay deterministic per seed.
constexpr std::uint64_t kDefaultShardSeed = 0x5AFEC0DEull;

}  // namespace

std::string topology_mode_name(TopologyMode mode) {
  switch (mode) {
    case TopologyMode::kFlat:
      return "flat";
    case TopologyMode::kHier:
      return "hier";
  }
  throw InvalidArgument("topology_mode_name: unknown mode");
}

std::string edge_mode_name(EdgeMode mode) {
  switch (mode) {
    case EdgeMode::kSync:
      return "sync";
    case EdgeMode::kBuffered:
      return "buffered";
  }
  throw InvalidArgument("edge_mode_name: unknown mode");
}

std::string shard_strategy_name(ShardStrategy strategy) {
  switch (strategy) {
    case ShardStrategy::kContiguous:
      return "contiguous";
    case ShardStrategy::kShuffled:
      return "shuffled";
  }
  throw InvalidArgument("shard_strategy_name: unknown strategy");
}

std::vector<std::size_t> TopologyConfig::resolved_tiers() const {
  if (!tiers.empty()) return tiers;
  if (fanout != 0) return {fanout};
  return {};
}

void TopologyConfig::validate() const {
  if (mode == TopologyMode::kFlat) {
    // A flat run silently dropping hier-only options is the
    // downmode=delta-without-downlink mistake all over again; refuse each
    // one loudly, naming the escape hatch.
    if (!tiers.empty() || fanout != 0)
      throw InvalidArgument(
          "TopologyConfig: tiers/fanout require mode=kHier "
          "(topology=hier:<N>[x<M>...])");
    if (!backhaul_spec.empty() || !tier_backhaul_specs.empty())
      throw InvalidArgument(
          "TopologyConfig: backhaul specs require mode=kHier");
    if (edge_mode != EdgeMode::kSync || edge_buffer != 0)
      throw InvalidArgument(
          "TopologyConfig: edge_mode/edge_buffer require mode=kHier "
          "(edgemode=sync|buffered:<K>)");
    if (edge_error_feedback)
      throw InvalidArgument(
          "TopologyConfig: edge_error_feedback requires mode=kHier "
          "(edgeef=on)");
    if (sharding != ShardStrategy::kContiguous)
      throw InvalidArgument(
          "TopologyConfig: sharding requires mode=kHier "
          "(shard=contiguous|shuffled)");
    return;
  }
  if (!tiers.empty() && fanout != 0)
    throw InvalidArgument(
        "TopologyConfig: set tiers OR the deprecated fanout, not both "
        "(fanout=N is sugar for tiers={N})");
  const std::vector<std::size_t> resolved = resolved_tiers();
  if (resolved.empty())
    throw InvalidArgument(
        "TopologyConfig: kHier needs at least one tier "
        "(topology=hier:<N>[x<M>...], every fan-in >= 1)");
  for (const std::size_t fan : resolved)
    if (fan == 0)
      throw InvalidArgument(
          "TopologyConfig: every tier fan-in must be >= 1 "
          "(topology=hier:<N>[x<M>...])");
  if (tier_backhaul_specs.size() > resolved.size())
    throw InvalidArgument(
        "TopologyConfig: more per-tier backhaul overrides (" +
        std::to_string(tier_backhaul_specs.size()) + ") than tiers (" +
        std::to_string(resolved.size()) + "); backhaul<k> wants 1 <= k <= " +
        std::to_string(resolved.size()));
  if (!backhaul_spec.empty()) {
    // Malformed specs throw InvalidArgument from the parser itself.
    if (parse_codec_spec(backhaul_spec).has_comm_keys())
      throw InvalidArgument(
          "TopologyConfig: backhaul_spec cannot itself carry comm keys");
  }
  for (std::size_t k = 0; k < tier_backhaul_specs.size(); ++k) {
    if (tier_backhaul_specs[k].empty()) continue;
    if (parse_codec_spec(tier_backhaul_specs[k]).has_comm_keys())
      throw InvalidArgument("TopologyConfig: backhaul" + std::to_string(k + 1) +
                            " spec cannot itself carry comm keys");
  }
  if (edge_mode == EdgeMode::kBuffered && edge_buffer == 0)
    throw InvalidArgument(
        "TopologyConfig: kBuffered needs edge_buffer >= 1 "
        "(edgemode=buffered:<K>)");
  if (edge_mode == EdgeMode::kSync && edge_buffer != 0)
    throw InvalidArgument(
        "TopologyConfig: edge_buffer requires edge_mode=kBuffered "
        "(edgemode=buffered:<K>)");
}

std::vector<std::vector<std::size_t>> shard_clients(std::size_t clients,
                                                    std::size_t fanout) {
  return shard_clients(clients, fanout, ShardStrategy::kContiguous, 0);
}

std::vector<std::vector<std::size_t>> shard_clients(std::size_t clients,
                                                    std::size_t fanout,
                                                    ShardStrategy strategy,
                                                    std::uint64_t seed) {
  if (clients == 0)
    throw InvalidArgument("shard_clients: need at least one client");
  if (fanout == 0) throw InvalidArgument("shard_clients: fanout must be >= 1");
  std::vector<std::size_t> order(clients);
  std::iota(order.begin(), order.end(), std::size_t{0});
  if (strategy == ShardStrategy::kShuffled && clients > 1) {
    // Seeded Fisher-Yates: deterministic per seed, so a shuffled topology
    // is as reproducible as a contiguous one.
    Rng rng(seed);
    for (std::size_t i = clients - 1; i > 0; --i)
      std::swap(order[i], order[rng.uniform_index(i + 1)]);
  }
  std::vector<std::vector<std::size_t>> shards;
  shards.reserve((clients + fanout - 1) / fanout);
  for (std::size_t start = 0; start < clients; start += fanout) {
    const std::size_t end = std::min(clients, start + fanout);
    shards.emplace_back(order.begin() + static_cast<std::ptrdiff_t>(start),
                        order.begin() + static_cast<std::ptrdiff_t>(end));
  }
  return shards;
}

EdgeAggregator::EdgeAggregator(std::size_t id, std::size_t tier,
                               std::vector<std::size_t> members,
                               UpdateCodecPtr codec, bool error_feedback)
    : id_(id),
      tier_(tier),
      members_(std::move(members)),
      codec_(std::move(codec)),
      aggregator_(make_fedavg()) {
  if (tier_ == 0) throw InvalidArgument("EdgeAggregator: tiers are 1-based");
  if (members_.empty())
    throw InvalidArgument("EdgeAggregator: empty member set");
  if (!codec_) throw InvalidArgument("EdgeAggregator: null backhaul codec");
  // EF against a lossless tier codec is provably a zero residual forever.
  ef_on_ = error_feedback && !codec_->lossless();
}

void EdgeAggregator::begin_round(const StateDict& reference) {
  aggregator_->begin_round(reference);
  leaves_ = 0;
}

void EdgeAggregator::fold(const StateDict& update, double weight,
                          std::size_t leaves) {
  aggregator_->accumulate(update, weight);
  leaves_ += leaves;
}

void EdgeAggregator::abort_round() {
  aggregator_->abort_round();
  leaves_ = 0;
}

EncodedPartial EdgeAggregator::finalize_and_encode(int round) {
  PartialAggregate partial = aggregator_->finalize_partial();
  EncodeContext ctx;
  ctx.round = round;
  ctx.client_id = -1 - static_cast<int>(id_);
  StateDict to_encode = std::move(partial.mean);
  if (ef_on_) to_encode = feedback_.apply(to_encode);
  UpdateCodec::Encoded encoded = codec_->encode(to_encode, ctx);
  EncodedPartial out;
  if (ef_on_) {
    // The parent will decode exactly this payload; what the lossy tier
    // codec dropped is carried into this node's next partial.
    const StateDict reconstruction = codec_->decode(
        {encoded.payload.data(), encoded.payload.size()});
    feedback_.absorb(to_encode, reconstruction);
    out.ef_residual_norm = feedback_.residual_norm();
  }
  out.payload = std::move(encoded.payload);
  out.stats = encoded.stats;
  out.weight = partial.weight;
  out.clients = leaves_;  // telescoped leaf count, not this node's fold count
  return out;
}

namespace {

/// Per-tier codec spec after override resolution: backhaul<k> when set,
/// else the shared default, else identity.
std::string tier_spec(const TopologyConfig& config, std::size_t level) {
  if (level < config.tier_backhaul_specs.size() &&
      !config.tier_backhaul_specs[level].empty())
    return config.tier_backhaul_specs[level];
  return config.backhaul_spec.empty() ? "identity" : config.backhaul_spec;
}

/// One uplink per node at `level`. Level 0 uses the heterogeneous config
/// as-is (the one-level regression pin); higher levels re-seed the draw so
/// tiers get independent link assignments.
net::HeterogeneousNetwork tier_links(const TopologyConfig& config,
                                     std::size_t level, std::size_t nodes) {
  std::optional<net::HeterogeneousNetworkConfig> het =
      config.backhaul_heterogeneous;
  if (het && level > 0) het->seed ^= 0x9E3779B97F4A7C15ull * level;
  return net::build_links(het, config.backhaul_network, nodes);
}

}  // namespace

AggregationTree::AggregationTree(const TopologyConfig& config,
                                 std::size_t clients) {
  config.validate();
  if (config.mode != TopologyMode::kHier)
    throw InvalidArgument("AggregationTree: config must be mode=kHier");
  if (clients == 0)
    throw InvalidArgument("AggregationTree: need at least one client");
  const std::vector<std::size_t> tiers = config.resolved_tiers();
  const std::uint64_t shard_seed =
      config.shard_seed != 0 ? config.shard_seed : kDefaultShardSeed;
  base_shards_ =
      shard_clients(clients, tiers[0], config.sharding, shard_seed);
  owner_.resize(clients);
  for (std::size_t e = 0; e < base_shards_.size(); ++e)
    for (const std::size_t client : base_shards_[e]) owner_[client] = e;

  levels_.reserve(tiers.size());
  std::size_t below = clients;  // children available to the next level
  for (std::size_t l = 0; l < tiers.size(); ++l) {
    const std::size_t count = (below + tiers[l] - 1) / tiers[l];
    Level level{make_codec(parse_codec_spec(tier_spec(config, l))),
                tier_links(config, l, count),
                {},
                total_nodes_,
                tiers[l]};
    level.nodes.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      std::vector<std::size_t> members;
      if (l == 0) {
        members = base_shards_[i];
      } else {
        const std::size_t start = i * tiers[l];
        const std::size_t end = std::min(below, start + tiers[l]);
        members.resize(end - start);
        std::iota(members.begin(), members.end(), start);
      }
      level.nodes.emplace_back(total_nodes_ + i, l + 1, std::move(members),
                               level.codec, config.edge_error_feedback);
    }
    total_nodes_ += count;
    below = count;
    levels_.push_back(std::move(level));
  }
}

std::size_t AggregationTree::level_size(std::size_t level) const {
  if (level >= levels_.size())
    throw InvalidArgument("AggregationTree: level out of range");
  return levels_[level].nodes.size();
}

std::size_t AggregationTree::flat_index(std::size_t level,
                                        std::size_t i) const {
  if (level >= levels_.size() || i >= levels_[level].nodes.size())
    throw InvalidArgument("AggregationTree: node index out of range");
  return levels_[level].flat_offset + i;
}

EdgeAggregator& AggregationTree::node(std::size_t level, std::size_t i) {
  if (level >= levels_.size() || i >= levels_[level].nodes.size())
    throw InvalidArgument("AggregationTree: node index out of range");
  return levels_[level].nodes[i];
}

const EdgeAggregator& AggregationTree::node(std::size_t level,
                                            std::size_t i) const {
  if (level >= levels_.size() || i >= levels_[level].nodes.size())
    throw InvalidArgument("AggregationTree: node index out of range");
  return levels_[level].nodes[i];
}

std::size_t AggregationTree::parent_of(std::size_t level,
                                       std::size_t i) const {
  if (level + 1 >= levels_.size())
    throw InvalidArgument(
        "AggregationTree: top-level nodes ship straight to the root");
  if (i >= levels_[level].nodes.size())
    throw InvalidArgument("AggregationTree: node index out of range");
  // Interior grouping is contiguous regardless of leaf shard strategy.
  return i / levels_[level + 1].fan;
}

const net::SimulatedNetwork& AggregationTree::uplink(std::size_t level,
                                                     std::size_t i) const {
  if (level >= levels_.size() || i >= levels_[level].nodes.size())
    throw InvalidArgument("AggregationTree: node index out of range");
  return levels_[level].links.link(i);
}

const UpdateCodec& AggregationTree::tier_codec(std::size_t level) const {
  if (level >= levels_.size())
    throw InvalidArgument("AggregationTree: level out of range");
  return *levels_[level].codec;
}

StateDict AggregationTree::decode_partial(std::size_t level, ByteSpan payload,
                                          CompressionStats* stats) const {
  if (level >= levels_.size())
    throw InvalidArgument("AggregationTree: level out of range");
  return levels_[level].codec->decode(payload, stats);
}

std::size_t AggregationTree::edge_of(std::size_t client) const {
  if (client >= owner_.size())
    throw InvalidArgument("AggregationTree: client index out of range");
  return owner_[client];
}

StateDict AggregationTree::decode_partial(ByteSpan payload,
                                          CompressionStats* stats) const {
  return levels_.back().codec->decode(payload, stats);
}

}  // namespace fedsz::core

#include "core/fl/topology.hpp"

#include <utility>

#include "core/codec_spec.hpp"

namespace fedsz::core {

std::string topology_mode_name(TopologyMode mode) {
  switch (mode) {
    case TopologyMode::kFlat:
      return "flat";
    case TopologyMode::kHier:
      return "hier";
  }
  throw InvalidArgument("topology_mode_name: unknown mode");
}

void TopologyConfig::validate() const {
  if (mode == TopologyMode::kFlat) {
    // A flat run silently dropping hier-only options is the
    // downmode=delta-without-downlink mistake all over again; refuse.
    if (fanout != 0)
      throw InvalidArgument(
          "TopologyConfig: fanout requires mode=kHier (topology=hier:<N>)");
    if (!backhaul_spec.empty())
      throw InvalidArgument(
          "TopologyConfig: backhaul_spec requires mode=kHier");
    return;
  }
  if (fanout == 0)
    throw InvalidArgument("TopologyConfig: kHier needs fanout >= 1");
  if (!backhaul_spec.empty()) {
    // Malformed specs throw InvalidArgument from the parser itself.
    if (parse_codec_spec(backhaul_spec).has_comm_keys())
      throw InvalidArgument(
          "TopologyConfig: backhaul_spec cannot itself carry comm keys");
  }
}

std::vector<std::vector<std::size_t>> shard_clients(std::size_t clients,
                                                    std::size_t fanout) {
  if (clients == 0)
    throw InvalidArgument("shard_clients: need at least one client");
  if (fanout == 0) throw InvalidArgument("shard_clients: fanout must be >= 1");
  std::vector<std::vector<std::size_t>> shards;
  shards.reserve((clients + fanout - 1) / fanout);
  for (std::size_t start = 0; start < clients; start += fanout) {
    std::vector<std::size_t> shard;
    const std::size_t end = std::min(clients, start + fanout);
    shard.reserve(end - start);
    for (std::size_t i = start; i < end; ++i) shard.push_back(i);
    shards.push_back(std::move(shard));
  }
  return shards;
}

EdgeAggregator::EdgeAggregator(std::size_t id, std::vector<std::size_t> members,
                               UpdateCodecPtr codec)
    : id_(id),
      members_(std::move(members)),
      codec_(std::move(codec)),
      aggregator_(make_fedavg()) {
  if (members_.empty())
    throw InvalidArgument("EdgeAggregator: empty member set");
  if (!codec_) throw InvalidArgument("EdgeAggregator: null backhaul codec");
}

void EdgeAggregator::begin_round(const StateDict& reference) {
  aggregator_->begin_round(reference);
}

void EdgeAggregator::fold(const StateDict& update, double weight) {
  aggregator_->accumulate(update, weight);
}

EncodedPartial EdgeAggregator::finalize_and_encode(int round) {
  PartialAggregate partial = aggregator_->finalize_partial();
  EncodeContext ctx;
  ctx.round = round;
  ctx.client_id = -1 - static_cast<int>(id_);
  UpdateCodec::Encoded encoded = codec_->encode(partial.mean, ctx);
  EncodedPartial out;
  out.payload = std::move(encoded.payload);
  out.stats = encoded.stats;
  out.weight = partial.weight;
  out.clients = partial.count;
  return out;
}

namespace {

/// Validates the config and draws the per-edge backhaul tier (runs first
/// in the constructor, so every AggregationTree is born validated).
net::HeterogeneousNetwork build_backhaul(const TopologyConfig& config,
                                         std::size_t clients) {
  config.validate();
  if (config.mode != TopologyMode::kHier)
    throw InvalidArgument("AggregationTree: config must be mode=kHier");
  if (clients == 0)
    throw InvalidArgument("AggregationTree: need at least one client");
  const std::size_t edges = (clients + config.fanout - 1) / config.fanout;
  return net::build_links(config.backhaul_heterogeneous,
                          config.backhaul_network, edges);
}

}  // namespace

AggregationTree::AggregationTree(const TopologyConfig& config,
                                 std::size_t clients)
    : backhaul_(build_backhaul(config, clients)),
      codec_(make_codec(parse_codec_spec(
          config.backhaul_spec.empty() ? "identity" : config.backhaul_spec))) {
  auto shards = shard_clients(clients, config.fanout);
  owner_.resize(clients);
  edges_.reserve(shards.size());
  for (std::size_t e = 0; e < shards.size(); ++e) {
    for (const std::size_t client : shards[e]) owner_[client] = e;
    edges_.emplace_back(e, std::move(shards[e]), codec_);
  }
}

EdgeAggregator& AggregationTree::edge(std::size_t index) {
  if (index >= edges_.size())
    throw InvalidArgument("AggregationTree: edge index out of range");
  return edges_[index];
}

const EdgeAggregator& AggregationTree::edge(std::size_t index) const {
  if (index >= edges_.size())
    throw InvalidArgument("AggregationTree: edge index out of range");
  return edges_[index];
}

std::size_t AggregationTree::edge_of(std::size_t client) const {
  if (client >= owner_.size())
    throw InvalidArgument("AggregationTree: client index out of range");
  return owner_[client];
}

const net::SimulatedNetwork& AggregationTree::backhaul_link(
    std::size_t edge) const {
  return backhaul_.link(edge);
}

StateDict AggregationTree::decode_partial(ByteSpan payload,
                                          CompressionStats* stats) const {
  return codec_->decode(payload, stats);
}

}  // namespace fedsz::core

#include "core/fl/population.hpp"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/common.hpp"

namespace fedsz::core {

namespace {

constexpr double kPi = 3.14159265358979323846;
// Same physical clamp as net::HeterogeneousNetwork applies to its draws.
constexpr double kMinDrawMbps = 0.05;
constexpr double kMaxDrawMbps = 1e6;
constexpr double kDefaultPeriodSeconds = 86400.0;
constexpr double kDefaultPhaseJitter = 0.25;

double clamp_mbps(double mbps) {
  return std::min(kMaxDrawMbps, std::max(kMinDrawMbps, mbps));
}

[[noreturn]] void bad_population(const std::string& why) {
  throw InvalidArgument("population spec: " + why);
}

double parse_double(const std::string& text, const std::string& key) {
  if (text.empty()) bad_population("empty value for '" + key + "'");
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (errno != 0 || end != text.c_str() + text.size() || !std::isfinite(value))
    bad_population("invalid number '" + text + "' for '" + key + "'");
  return value;
}

std::uint64_t parse_seed(const std::string& text) {
  if (text.empty()) bad_population("empty value for 'seed'");
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end != text.c_str() + text.size())
    bad_population("invalid seed '" + text + "'");
  return static_cast<std::uint64_t>(value);
}

std::string format_double(double value) {
  char buffer[64];
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buffer, sizeof(buffer), "%.*g", precision, value);
    if (std::strtod(buffer, nullptr) == value) break;
  }
  return buffer;
}

bool known_preset(const std::string& preset) {
  return preset == "mixed" || preset == "mobile" || preset == "iot_fleet" ||
         preset == "uniform" || preset == "custom";
}

std::vector<DeviceClassShare> parse_mix(const std::string& text) {
  std::vector<DeviceClassShare> mix;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t plus = text.find('+', start);
    const std::string part = text.substr(
        start, plus == std::string::npos ? std::string::npos : plus - start);
    const std::size_t star = part.find('*');
    if (part.empty() || star == std::string::npos || star == 0 ||
        star + 1 == part.size())
      bad_population("mix entries must look like CLASS*WEIGHT, got '" + part +
                     "'");
    DeviceClassShare share;
    share.name = part.substr(0, star);
    share.weight = parse_double(part.substr(star + 1), "mix");
    for (const DeviceClassShare& seen : mix)
      if (seen.name == share.name)
        bad_population("duplicate class '" + share.name + "' in mix");
    mix.push_back(std::move(share));
    if (plus == std::string::npos) break;
    start = plus + 1;
  }
  return mix;
}

std::string format_mix(const std::vector<DeviceClassShare>& mix) {
  std::string out;
  for (const DeviceClassShare& share : mix) {
    if (!out.empty()) out += '+';
    out += share.name + "*" + format_double(share.weight);
  }
  return out;
}

}  // namespace

const std::vector<DeviceClass>& device_class_table() {
  // Correlated on purpose: slower compute rides with slower links and
  // smaller local datasets (an LTE phone is weak on every axis; a laptop is
  // the laptop baseline the paper's homogeneous runs approximate). The iot
  // row is always-on but tiny and slow — the profile that makes compression
  // policy choices visible.
  static const std::vector<DeviceClass> kTable = {
      //            name      compute  bw_med  sigma  latency  data  avail  amp
      DeviceClass{"phone_lte", 2.5, 12.0, 0.5, 0.05, 0.35, 0.55, 0.35},
      DeviceClass{"phone_wifi", 2.0, 40.0, 0.4, 0.02, 0.5, 0.65, 0.30},
      DeviceClass{"laptop", 1.0, 100.0, 0.3, 0.005, 1.0, 0.8, 0.15},
      DeviceClass{"iot", 6.0, 2.0, 0.6, 0.1, 0.15, 0.9, 0.05},
  };
  return kTable;
}

const DeviceClass* find_device_class(const std::string& name) {
  for (const DeviceClass& device : device_class_table())
    if (device.name == name) return &device;
  return nullptr;
}

std::string availability_mode_name(AvailabilityMode mode) {
  switch (mode) {
    case AvailabilityMode::kDiurnal:
      return "diurnal";
    case AvailabilityMode::kFlat:
      return "flat";
    case AvailabilityMode::kAlways:
      return "always";
  }
  throw InvalidArgument("availability_mode_name: unknown mode");
}

void PopulationConfig::validate() const {
  if (preset.empty()) {
    if (!mix.empty())
      bad_population("class mix given without a preset");
    return;
  }
  if (!known_preset(preset))
    bad_population("unknown preset '" + preset +
                   "' (expected mixed, mobile, iot_fleet, uniform or custom)");
  if (preset == "custom") {
    if (mix.empty()) bad_population("preset 'custom' needs a non-empty mix=");
  } else if (!mix.empty()) {
    bad_population("mix= is only valid with preset 'custom'");
  }
  double total_weight = 0.0;
  for (const DeviceClassShare& share : mix) {
    if (!find_device_class(share.name))
      bad_population("unknown device class '" + share.name + "'");
    if (!std::isfinite(share.weight) || !(share.weight > 0.0))
      bad_population("class weight for '" + share.name + "' must be > 0");
    total_weight += share.weight;
  }
  if (preset == "custom" && !(total_weight > 0.0))
    bad_population("class mix has zero total weight");
  if (!std::isfinite(flat_availability) || !(flat_availability > 0.0) ||
      flat_availability > 1.0)
    bad_population("flat availability must be in (0, 1]");
  if (!std::isfinite(period_seconds) || !(period_seconds > 0.0))
    bad_population("period must be > 0 seconds");
  if (!std::isfinite(phase_jitter) || phase_jitter < 0.0 || phase_jitter > 1.0)
    bad_population("jitter must be in [0, 1]");
  if (!std::isfinite(dropout_rate) || dropout_rate < 0.0 ||
      dropout_rate >= 1.0)
    bad_population("drop must be in [0, 1)");
}

PopulationConfig parse_population_spec(const std::string& text) {
  PopulationConfig config;
  if (text.empty()) return config;
  const std::size_t colon = text.find(':');
  config.preset = text.substr(0, colon);
  if (colon != std::string::npos) {
    const std::string options = text.substr(colon + 1);
    std::size_t start = 0;
    while (start <= options.size()) {
      const std::size_t semi = options.find(';', start);
      const std::string option = options.substr(
          start, semi == std::string::npos ? std::string::npos : semi - start);
      const std::size_t eq = option.find('=');
      if (option.empty() || eq == std::string::npos)
        bad_population("options must look like key=value, got '" + option +
                       "'");
      const std::string key = option.substr(0, eq);
      const std::string value = option.substr(eq + 1);
      if (key == "mix") {
        config.mix = parse_mix(value);
      } else if (key == "avail") {
        if (value == "diurnal") {
          config.availability = AvailabilityMode::kDiurnal;
        } else if (value == "always") {
          config.availability = AvailabilityMode::kAlways;
        } else if (value.rfind("flat:", 0) == 0) {
          config.availability = AvailabilityMode::kFlat;
          config.flat_availability = parse_double(value.substr(5), "avail");
        } else {
          bad_population("avail must be diurnal, always or flat:P, got '" +
                         value + "'");
        }
      } else if (key == "period") {
        config.period_seconds = parse_double(value, "period");
      } else if (key == "jitter") {
        config.phase_jitter = parse_double(value, "jitter");
      } else if (key == "drop") {
        config.dropout_rate = parse_double(value, "drop");
      } else if (key == "seed") {
        config.seed = parse_seed(value);
      } else {
        bad_population("unknown option '" + key +
                       "' (expected mix, avail, period, jitter, drop or "
                       "seed)");
      }
      if (semi == std::string::npos) break;
      start = semi + 1;
    }
  }
  config.validate();
  return config;
}

std::string format_population_spec(const PopulationConfig& config) {
  if (config.empty()) return "";
  config.validate();
  std::vector<std::string> options;
  if (!config.mix.empty()) options.push_back("mix=" + format_mix(config.mix));
  if (config.availability == AvailabilityMode::kFlat)
    options.push_back("avail=flat:" + format_double(config.flat_availability));
  else if (config.availability == AvailabilityMode::kAlways)
    options.push_back("avail=always");
  if (config.period_seconds != kDefaultPeriodSeconds)
    options.push_back("period=" + format_double(config.period_seconds));
  if (config.phase_jitter != kDefaultPhaseJitter)
    options.push_back("jitter=" + format_double(config.phase_jitter));
  if (config.dropout_rate > 0.0)
    options.push_back("drop=" + format_double(config.dropout_rate));
  if (config.seed != 0) options.push_back("seed=" + std::to_string(config.seed));
  std::string out = config.preset;
  for (std::size_t i = 0; i < options.size(); ++i)
    out += (i == 0 ? ":" : ";") + options[i];
  return out;
}

std::vector<DeviceClassShare> resolve_population_mix(
    const PopulationConfig& config) {
  config.validate();
  if (config.preset == "custom") return config.mix;
  if (config.preset == "mixed")
    return {{"phone_lte", 0.35}, {"phone_wifi", 0.3}, {"laptop", 0.2},
            {"iot", 0.15}};
  if (config.preset == "mobile")
    return {{"phone_lte", 0.55}, {"phone_wifi", 0.45}};
  if (config.preset == "iot_fleet") return {{"iot", 0.8}, {"phone_lte", 0.2}};
  if (config.preset == "uniform")
    return {{"phone_lte", 0.25}, {"phone_wifi", 0.25}, {"laptop", 0.25},
            {"iot", 0.25}};
  bad_population("unknown preset '" + config.preset + "'");
}

ClientPopulation::ClientPopulation(const PopulationConfig& config,
                                   std::size_t clients, std::uint64_t run_seed)
    : config_(config) {
  config_.validate();
  if (config_.empty())
    throw InvalidArgument("ClientPopulation: config must name a preset");
  if (clients == 0)
    throw InvalidArgument("ClientPopulation: need at least one client");

  const std::vector<DeviceClassShare> mix = resolve_population_mix(config_);
  double total_weight = 0.0;
  for (const DeviceClassShare& share : mix) total_weight += share.weight;

  // One dedicated stream, consumed in client-index order: class draw, phase
  // draw, bandwidth draw per client. Everything downstream (links, compute,
  // shard truncation) derives from these values, never from more RNG.
  Rng rng(config_.seed ? config_.seed : run_seed ^ 0xDEC1A55Eull);
  class_index_.reserve(clients);
  phase_.reserve(clients);
  link_profiles_.reserve(clients);
  for (std::size_t i = 0; i < clients; ++i) {
    const double pick = rng.uniform() * total_weight;
    double cumulative = 0.0;
    std::size_t chosen = mix.size() - 1;
    for (std::size_t k = 0; k < mix.size(); ++k) {
      cumulative += mix[k].weight;
      if (pick < cumulative) {
        chosen = k;
        break;
      }
    }
    const DeviceClass* device = find_device_class(mix[chosen].name);
    std::size_t table_index = 0;
    for (std::size_t k = 0; k < device_class_table().size(); ++k)
      if (&device_class_table()[k] == device) table_index = k;
    class_index_.push_back(table_index);
    phase_.push_back(rng.uniform() * config_.phase_jitter);
    const double bandwidth =
        clamp_mbps(device->bandwidth_median_mbps *
                   std::exp(device->bandwidth_log_sigma * rng.normal()));
    link_profiles_.push_back(net::NetworkProfile{bandwidth, device->latency_s});
  }
}

const DeviceClass& ClientPopulation::device_class(std::size_t client) const {
  if (client >= class_index_.size())
    throw InvalidArgument("ClientPopulation: client index out of range");
  return device_class_table()[class_index_[client]];
}

const std::string& ClientPopulation::class_name(std::size_t client) const {
  return device_class(client).name;
}

double ClientPopulation::compute_multiplier(std::size_t client) const {
  return device_class(client).compute_multiplier;
}

double ClientPopulation::data_weight(std::size_t client) const {
  return device_class(client).data_weight;
}

double ClientPopulation::availability(std::size_t client,
                                      double virtual_seconds) const {
  const DeviceClass& device = device_class(client);
  switch (config_.availability) {
    case AvailabilityMode::kAlways:
      return 1.0;
    case AvailabilityMode::kFlat:
      return config_.flat_availability;
    case AvailabilityMode::kDiurnal: {
      const double phase =
          virtual_seconds / config_.period_seconds + phase_[client];
      const double p = device.availability_mean +
                       device.diurnal_amplitude * std::sin(2.0 * kPi * phase);
      return std::min(1.0, std::max(0.0, p));
    }
  }
  throw InvalidArgument("ClientPopulation: unknown availability mode");
}

}  // namespace fedsz::core
